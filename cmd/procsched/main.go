// Command procsched runs the generalized (future-work) scheduler:
// process-level placement on multiprogrammed hosts, with arbitrary
// cluster sizes.
//
// Usage:
//
//	procsched -switches 8 -clusters 11,17,20 -slots 2
//	procsched -switches 16 -clusters 16,16,16,16 -slots 1 -simulate
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"commsched/internal/distance"
	"commsched/internal/experiments"
	"commsched/internal/procsched"
	"commsched/internal/routing"
	"commsched/internal/runctl"
	"commsched/internal/runstate"
	"commsched/internal/simnet"
	"commsched/internal/telemetry"
	"commsched/internal/topology"
	"commsched/internal/traffic"
)

func main() {
	var (
		switches = flag.Int("switches", 8, "switch count")
		degree   = flag.Int("degree", 3, "inter-switch degree")
		topoSeed = flag.Int64("toposeed", 77, "topology seed")
		clusters = flag.String("clusters", "11,17,20", "comma-separated process counts per application")
		slots    = flag.Int("slots", 2, "process slots per workstation")
		seed     = flag.Int64("seed", 1, "search seed")
		simulate = flag.Bool("simulate", false, "also simulate scheduled vs random placement")

		metrics    = flag.String("metrics", "", "write an observability trace (JSON lines) to this file")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		serve      = flag.String("serve", "", "serve live telemetry (/metrics /events /runs /healthz /debug/pprof) on this address while running, e.g. :8080 or :0")
		trace      = flag.String("trace", "", "record a Chrome trace-event JSON file (view in Perfetto / chrome://tracing)")
	)
	durable := runctl.Flags(false)
	flag.Parse()
	svc, err := telemetry.Start(telemetry.Options{
		Serve: *serve, Trace: *trace, Metrics: *metrics,
		CPUProfile: *cpuprofile, MemProfile: *memprofile, Banner: os.Stderr,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "procsched:", err)
		os.Exit(1)
	}
	// Ctrl-C / SIGTERM cancels the run between units so the deferred
	// finish/Close paths still flush checkpoints and telemetry sinks.
	ctx, stop := runctl.Signals(context.Background(), os.Stderr)
	runErr := run(ctx, *switches, *degree, *topoSeed, *clusters, *slots, *seed, *simulate, *durable)
	stop()
	if err := svc.Close(); err != nil && runErr == nil {
		runErr = err
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "procsched:", runErr)
		os.Exit(1)
	}
}

func run(ctx context.Context, switches, degree int, topoSeed int64, clusters string, slots int, seed int64, simulate bool,
	durable runctl.Config) (retErr error) {
	sizes, err := parseSizes(clusters)
	if err != nil {
		return err
	}
	net, err := topology.RandomIrregular(switches, degree, rand.New(rand.NewSource(topoSeed)), topology.Config{})
	if err != nil {
		return err
	}
	man := experiments.NewManifest("procsched", experiments.Scale{})
	man.Seeds = map[string]int64{"topology": topoSeed, "search": seed}
	if err := man.AddTopology(net.Name(), net); err != nil {
		return err
	}
	id, err := man.RunstateIdentity()
	if err != nil {
		return err
	}
	finish, err := runctl.Activate(durable, id, os.Stderr)
	if err != nil {
		return err
	}
	defer func() {
		if ferr := finish(); ferr != nil && retErr == nil {
			retErr = ferr
		}
	}()
	rt, err := routing.NewUpDown(net, -1)
	if err != nil {
		return err
	}
	tab, err := distance.Compute(net, rt)
	if err != nil {
		return err
	}
	var clusterOf []int
	for c, size := range sizes {
		for i := 0; i < size; i++ {
			clusterOf = append(clusterOf, c)
		}
	}
	pr, err := procsched.NewProblem(net, tab, clusterOf, slots)
	if err != nil {
		return err
	}
	fmt.Printf("network %s: %d hosts × %d slots; %d processes in %d applications %v\n",
		net.Name(), net.Hosts(), slots, pr.Processes(), pr.Clusters(), sizes)

	res, err := tabuUnit(ctx, pr, sizes, slots, seed)
	if err != nil {
		return err
	}
	random := pr.RandomAssignment(rand.New(rand.NewSource(seed + 1)))
	fmt.Printf("scheduled objective: %.2f   random: %.2f (%.1fx better)\n",
		res.BestCost, pr.Cost(random), pr.Cost(random)/res.BestCost)

	// Per-application switch footprint of the scheduled placement.
	for c := 0; c < pr.Clusters(); c++ {
		used := map[int]bool{}
		for p, cl := range pr.ClusterOf {
			if cl == c {
				used[net.HostSwitch(res.Best.HostOf[p])] = true
			}
		}
		fmt.Printf("  application %d (%d processes) occupies %d switches\n", c, sizes[c], len(used))
	}

	if !simulate {
		return nil
	}
	cfg := simnet.Config{WarmupCycles: 1500, MeasureCycles: 6000, Seed: 3}
	rates := simnet.LinearRates(5, 0.4)
	tp := func(label string, hostOf []int) (float64, error) {
		pat, err := traffic.NewProcessIntra(net.Hosts(), hostOf, clusterOf)
		if err != nil {
			return 0, err
		}
		// Scope sweep units by placement so scheduled and random curves
		// never share checkpoint entries in a -resume directory.
		ctx := runstate.WithScope(ctx,
			fmt.Sprintf("procsched/%s/map=%s", label, runstate.KeyHash(hostOf)))
		points, err := simnet.Sweep(ctx, net, rt, pat, cfg, rates)
		if err != nil {
			return 0, err
		}
		return simnet.Throughput(points), nil
	}
	ts, err := tp("scheduled", res.Best.HostOf)
	if err != nil {
		return err
	}
	tr, err := tp("random", random.HostOf)
	if err != nil {
		return err
	}
	fmt.Printf("simulated throughput: scheduled %.4f vs random %.4f flits/switch/cycle (%.2fx)\n",
		ts, tr, ts/tr)
	return nil
}

// tabuPayload is the durable form of a completed process-level search:
// everything needed to rebuild the Result without recomputing it.
type tabuPayload struct {
	HostOf      []int   `json:"host_of"`
	BestCost    float64 `json:"best_cost"`
	Evaluations int     `json:"evaluations"`
	Iterations  int     `json:"iterations"`
}

// tabuUnit runs the Tabu search as one checkpoint unit: with a -resume
// store installed, a completed search replays from disk instead of
// recomputing. The store identity already pins the topology, so the key
// only needs the problem shape and seed.
func tabuUnit(ctx context.Context, pr *procsched.Problem, sizes []int, slots int, seed int64) (*procsched.Result, error) {
	key := fmt.Sprintf("proctabu/%s", runstate.KeyHash(struct {
		Sizes []int `json:"sizes"`
		Slots int   `json:"slots"`
		Seed  int64 `json:"seed"`
	}{sizes, slots, seed}))
	var pl tabuPayload
	if runstate.Lookup(key, &pl) {
		if best, err := pr.NewAssignment(pl.HostOf); err == nil {
			return &procsched.Result{
				Best: best, BestCost: pl.BestCost,
				Evaluations: pl.Evaluations, Iterations: pl.Iterations,
			}, nil
		}
	}
	res := procsched.Tabu(pr, procsched.TabuOptions{}, rand.New(rand.NewSource(seed)))
	if runstate.Enabled() {
		runstate.RecordCtx(ctx, key, tabuPayload{
			HostOf: res.Best.HostOf, BestCost: res.BestCost,
			Evaluations: res.Evaluations, Iterations: res.Iterations,
		})
	}
	return res, nil
}

func parseSizes(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	sizes := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad cluster size %q (want positive integers, e.g. 11,17,20)", p)
		}
		sizes = append(sizes, n)
	}
	if len(sizes) == 0 {
		return nil, fmt.Errorf("no cluster sizes given")
	}
	return sizes, nil
}
