package main

import (
	"commsched/internal/runctl"
	"context"

	"os"
	"strings"
	"testing"
)

func capture(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var b strings.Builder
		buf := make([]byte, 64<<10)
		for {
			n, err := r.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		done <- b.String()
	}()
	ferr := f()
	w.Close()
	os.Stdout = old
	out := <-done
	r.Close()
	return out, ferr
}

func TestParseSizes(t *testing.T) {
	sizes, err := parseSizes("11, 17,20")
	if err != nil {
		t.Fatal(err)
	}
	if len(sizes) != 3 || sizes[0] != 11 || sizes[2] != 20 {
		t.Fatalf("sizes = %v", sizes)
	}
	for _, bad := range []string{"", "a,b", "0", "-3", "4,,5"} {
		if _, err := parseSizes(bad); err == nil {
			t.Errorf("parseSizes(%q) accepted", bad)
		}
	}
}

func TestRunSchedulesProcesses(t *testing.T) {
	out, err := capture(t, func() error {
		return run(context.Background(), 8, 3, 77, "6,10", 2, 1, false, runctl.Config{})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"scheduled objective", "application 0", "application 1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunWithSimulation(t *testing.T) {
	out, err := capture(t, func() error {
		return run(context.Background(), 8, 3, 77, "8,8", 1, 1, true, runctl.Config{})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "simulated throughput") {
		t.Fatalf("simulation summary missing:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := capture(t, func() error {
		return run(context.Background(), 8, 3, 77, "bogus", 2, 1, false, runctl.Config{})
	}); err == nil {
		t.Fatal("bad cluster list accepted")
	}
	if _, err := capture(t, func() error {
		return run(context.Background(), 8, 3, 77, "100,100", 1, 1, false, runctl.Config{}) // over capacity
	}); err == nil {
		t.Fatal("over-capacity process count accepted")
	}
	if _, err := capture(t, func() error {
		return run(context.Background(), 8, 3, 77, "4,4", 0, 1, false, runctl.Config{}) // zero slots
	}); err == nil {
		t.Fatal("zero slots accepted")
	}
}
