package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: commsched
cpu: AMD EPYC 7B13
BenchmarkFig1TabuTrace-8   	     100	    118430 ns/op	   0.8021 Cc	      16 B/op	       2 allocs/op
BenchmarkSimulatorCycles-8 	       2	 512000000 ns/op
BenchmarkSub/case-a-8      	      10	      1000 ns/op
Benchmark log line that is not a result
PASS
ok  	commsched	1.234s
pkg: commsched/internal/obs
BenchmarkDisabledEvent     	1000000000	         0.5032 ns/op
ok  	commsched/internal/obs	0.700s
`

func TestParseSample(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.GoOS != "linux" || rep.GoArch != "amd64" || rep.CPU != "AMD EPYC 7B13" {
		t.Fatalf("context lines lost: %+v", rep)
	}
	if len(rep.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4: %+v", len(rep.Benchmarks), rep.Benchmarks)
	}

	b := rep.Benchmarks[0]
	if b.Name != "BenchmarkFig1TabuTrace" || b.Procs != 8 || b.Iterations != 100 {
		t.Fatalf("first benchmark header wrong: %+v", b)
	}
	if b.Pkg != "commsched" {
		t.Fatalf("pkg context not attached: %q", b.Pkg)
	}
	want := map[string]float64{"ns/op": 118430, "Cc": 0.8021, "B/op": 16, "allocs/op": 2}
	for unit, v := range want {
		if b.Metrics[unit] != v {
			t.Fatalf("metric %s = %v, want %v (all: %v)", unit, b.Metrics[unit], v, b.Metrics)
		}
	}

	// Sub-benchmark: only a pure-digit suffix is a GOMAXPROCS marker.
	sub := rep.Benchmarks[2]
	if sub.Name != "BenchmarkSub/case-a" || sub.Procs != 8 {
		t.Fatalf("sub-benchmark name split wrong: %+v", sub)
	}

	// Second package's context replaces the first.
	obs := rep.Benchmarks[3]
	if obs.Pkg != "commsched/internal/obs" || obs.Procs != 0 {
		t.Fatalf("second package context wrong: %+v", obs)
	}
	if obs.Metrics["ns/op"] != 0.5032 {
		t.Fatalf("fractional ns/op lost: %v", obs.Metrics)
	}
}

func TestParseSkipsNonResultLines(t *testing.T) {
	rep, err := parse(strings.NewReader("Benchmark: starting\nnonsense\nok pkg 1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 0 {
		t.Fatalf("non-result lines parsed as benchmarks: %+v", rep.Benchmarks)
	}
}
