package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeReport(t *testing.T, dir, name string, rep Report) string {
	t.Helper()
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func bench(name string, ns, allocs float64) Benchmark {
	return Benchmark{
		Pkg: "example.com/m", Name: name, Iterations: 10,
		Metrics: map[string]float64{"ns/op": ns, "allocs/op": allocs},
	}
}

func TestCompareNoRegression(t *testing.T) {
	dir := t.TempDir()
	oldF := writeReport(t, dir, "old.json", Report{Benchmarks: []Benchmark{bench("BenchmarkA", 1000, 50)}})
	newF := writeReport(t, dir, "new.json", Report{Benchmarks: []Benchmark{bench("BenchmarkA", 500, 10)}})
	var out strings.Builder
	code, err := runCompare([]string{oldF, newF}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit code %d for an improvement, want 0\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "no regressions") {
		t.Fatalf("summary missing: %s", out.String())
	}
}

func TestCompareRegressionFails(t *testing.T) {
	dir := t.TempDir()
	oldF := writeReport(t, dir, "old.json", Report{Benchmarks: []Benchmark{bench("BenchmarkA", 1000, 50)}})
	newF := writeReport(t, dir, "new.json", Report{Benchmarks: []Benchmark{bench("BenchmarkA", 1500, 50)}})
	var out strings.Builder
	code, err := runCompare([]string{"-threshold", "0.10", oldF, newF}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code == 0 {
		t.Fatalf("exit code 0 for a 50%% ns/op regression\n%s", out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Fatalf("regression marker missing: %s", out.String())
	}
}

func TestCompareWithinThresholdPasses(t *testing.T) {
	dir := t.TempDir()
	oldF := writeReport(t, dir, "old.json", Report{Benchmarks: []Benchmark{bench("BenchmarkA", 1000, 50)}})
	newF := writeReport(t, dir, "new.json", Report{Benchmarks: []Benchmark{bench("BenchmarkA", 1040, 50)}})
	var out strings.Builder
	code, err := runCompare([]string{"-threshold", "0.10", oldF, newF}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit code %d for a 4%% drift under a 10%% threshold\n%s", code, out.String())
	}
}

func TestCompareZeroToNonzeroAllocsRegresses(t *testing.T) {
	dir := t.TempDir()
	oldF := writeReport(t, dir, "old.json", Report{Benchmarks: []Benchmark{bench("BenchmarkA", 1000, 0)}})
	newF := writeReport(t, dir, "new.json", Report{Benchmarks: []Benchmark{bench("BenchmarkA", 1000, 3)}})
	var out strings.Builder
	code, err := runCompare([]string{oldF, newF}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code == 0 {
		t.Fatalf("exit code 0 when allocs went 0 -> 3\n%s", out.String())
	}
	if !strings.Contains(out.String(), "+inf") {
		t.Fatalf("infinite delta not rendered: %s", out.String())
	}
}

func TestCompareUnmatchedBenchmarksIgnored(t *testing.T) {
	dir := t.TempDir()
	oldF := writeReport(t, dir, "old.json", Report{Benchmarks: []Benchmark{bench("BenchmarkA", 1000, 5)}})
	newF := writeReport(t, dir, "new.json", Report{Benchmarks: []Benchmark{
		bench("BenchmarkA", 900, 5),
		bench("BenchmarkBrandNew", 1, 1),
	}})
	var out strings.Builder
	code, err := runCompare([]string{oldF, newF}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("a benchmark present only in the new report must not fail the gate\n%s", out.String())
	}
	if !strings.Contains(out.String(), "(new)") {
		t.Fatalf("new-only benchmark not reported: %s", out.String())
	}
}

func TestCompareNoOverlapErrors(t *testing.T) {
	dir := t.TempDir()
	oldF := writeReport(t, dir, "old.json", Report{Benchmarks: []Benchmark{bench("BenchmarkA", 1, 1)}})
	newF := writeReport(t, dir, "new.json", Report{Benchmarks: []Benchmark{bench("BenchmarkB", 1, 1)}})
	var out strings.Builder
	if _, err := runCompare([]string{oldF, newF}, &out); err == nil {
		t.Fatal("disjoint reports must error, not silently pass")
	}
}

func TestCompareBadArgs(t *testing.T) {
	var out strings.Builder
	if _, err := runCompare([]string{"only-one.json"}, &out); err == nil {
		t.Fatal("one file accepted")
	}
	if _, err := runCompare([]string{"nope1.json", "nope2.json"}, &out); err == nil {
		t.Fatal("missing files accepted")
	}
}
