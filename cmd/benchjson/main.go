// Command benchjson converts `go test -bench` text output into a stable
// JSON document, so benchmark runs can be archived as machine-readable
// artifacts (see `make bench-json` and the CI bench job), and diffs two
// such documents as a threshold gate:
//
//	go test -bench=. -benchmem -run '^$' . | benchjson -o BENCH.json
//	benchjson -o BENCH.json bench.out
//	benchjson compare -threshold 0.15 old.json new.json
//
// Every benchmark line is parsed into its name, GOMAXPROCS suffix,
// iteration count, and the full set of value/unit metric pairs —
// including the custom b.ReportMetric quantities the repro benchmarks
// emit (throughput gains, correlations, Cc), not just ns/op.
//
// The compare subcommand reports per-benchmark ns/op and allocs/op
// deltas between an old and a new report (matched by package + name) and
// exits nonzero when any tracked metric regresses by more than the
// threshold fraction — see `make bench-diff`.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Pkg is the import path from the preceding "pkg:" context line.
	Pkg string `json:"pkg,omitempty"`
	// Name is the benchmark name without the -GOMAXPROCS suffix.
	Name string `json:"name"`
	// Procs is the GOMAXPROCS the benchmark ran with (0 if unsuffixed).
	Procs int `json:"procs,omitempty"`
	// Iterations is b.N.
	Iterations int `json:"iterations"`
	// Metrics maps unit → value for every pair on the line
	// (ns/op, B/op, allocs/op, and custom ReportMetric units).
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the whole run.
type Report struct {
	GoOS       string      `json:"goos,omitempty"`
	GoArch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "compare" {
		code, err := runCompare(os.Args[2:], os.Stdout)
		if err != nil {
			fatal(err)
		}
		os.Exit(code)
	}
	out := flag.String("o", "", "write JSON here instead of stdout")
	flag.Parse()

	in := os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	rep, err := parse(in)
	if err != nil {
		fatal(err)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(rep.Benchmarks), *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

// parse reads `go test -bench` output. Context lines (goos/goarch/cpu/
// pkg) set fields for subsequent benchmarks; anything unrecognized
// (PASS, ok, test logs) is skipped.
func parse(r io.Reader) (*Report, error) {
	rep := &Report{Benchmarks: []Benchmark{}}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.GoOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.GoArch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseBenchLine(line)
			if ok {
				b.Pkg = pkg
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}

// parseBenchLine parses one result line:
//
//	BenchmarkName-8   	     100	  11843 ns/op	  0.8021 Cc	  16 B/op
//
// Returns ok=false for lines that merely start with "Benchmark" but are
// not results (e.g. a benchmark's own log output).
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	// name, iterations, then value/unit pairs.
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false
	}
	iters, err := strconv.Atoi(fields[1])
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	// Split a trailing -N GOMAXPROCS suffix off the name. Sub-benchmark
	// names can contain dashes, so only a pure-digit suffix counts.
	if i := strings.LastIndex(b.Name, "-"); i > 0 {
		if procs, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Name, b.Procs = b.Name[:i], procs
		}
	}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = val
	}
	return b, true
}
