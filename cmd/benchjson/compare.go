package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"strings"
)

// compareMetrics are the units the compare subcommand tracks and gates
// on. For both, higher is worse.
var compareMetrics = []string{"ns/op", "allocs/op"}

// runCompare implements `benchjson compare [-threshold f] [-filter re]
// old.json new.json`. It returns the process exit code: 0 when no tracked
// metric regressed beyond the threshold, 1 otherwise; errors (bad flags,
// unreadable files) are returned instead. -filter restricts the gate to
// benchmarks whose "pkg.Name" matches the regexp — how the CI gate diffs
// the observability-overhead probes against their own baseline
// (BENCH_obs.json) with the same machinery as the perf baseline.
func runCompare(args []string, w io.Writer) (int, error) {
	fs := flag.NewFlagSet("compare", flag.ContinueOnError)
	threshold := fs.Float64("threshold", 0.10,
		"fail when a tracked metric grows by more than this fraction")
	filter := fs.String("filter", "",
		"only compare benchmarks whose pkg.Name matches this regexp")
	fs.SetOutput(os.Stderr)
	if err := fs.Parse(args); err != nil {
		return 0, err
	}
	if fs.NArg() != 2 {
		return 0, fmt.Errorf("compare needs exactly two files: old.json new.json")
	}
	var filterRe *regexp.Regexp
	if *filter != "" {
		re, err := regexp.Compile(*filter)
		if err != nil {
			return 0, fmt.Errorf("bad -filter: %w", err)
		}
		filterRe = re
	}
	oldRep, err := loadReport(fs.Arg(0))
	if err != nil {
		return 0, err
	}
	newRep, err := loadReport(fs.Arg(1))
	if err != nil {
		return 0, err
	}

	key := func(b Benchmark) string { return b.Pkg + "\x00" + b.Name }
	oldBy := make(map[string]Benchmark, len(oldRep.Benchmarks))
	for _, b := range oldRep.Benchmarks {
		oldBy[key(b)] = b
	}

	regressions := 0
	matched := 0
	fmt.Fprintf(w, "%-44s %-10s %14s %14s %9s\n", "benchmark", "metric", "old", "new", "delta")
	for _, nb := range newRep.Benchmarks {
		if filterRe != nil && !filterRe.MatchString(nb.Pkg+"."+nb.Name) {
			continue
		}
		ob, ok := oldBy[key(nb)]
		if !ok {
			fmt.Fprintf(w, "%-44s %-10s %14s %14s %9s\n", displayName(nb), "-", "-", "(new)", "-")
			continue
		}
		matched++
		for _, unit := range compareMetrics {
			ov, ook := ob.Metrics[unit]
			nv, nok := nb.Metrics[unit]
			if !ook || !nok {
				continue
			}
			delta, regressed := relativeDelta(ov, nv, *threshold)
			mark := ""
			if regressed {
				mark = "  REGRESSION"
				regressions++
			}
			fmt.Fprintf(w, "%-44s %-10s %14.1f %14.1f %8s%%%s\n",
				displayName(nb), unit, ov, nv, formatDelta(delta), mark)
		}
	}
	if matched == 0 {
		return 0, fmt.Errorf("no benchmarks in common between the two reports")
	}
	if regressions > 0 {
		fmt.Fprintf(w, "\n%d metric(s) regressed beyond %.0f%%\n", regressions, *threshold*100)
		return 1, nil
	}
	fmt.Fprintf(w, "\nno regressions beyond %.0f%% across %d matched benchmarks\n", *threshold*100, matched)
	return 0, nil
}

// relativeDelta returns (nv-ov)/ov and whether that growth exceeds the
// threshold. A zero old value with a nonzero new value counts as an
// infinite regression; zero to zero is no change.
func relativeDelta(ov, nv, threshold float64) (float64, bool) {
	if ov == 0 {
		if nv == 0 {
			return 0, false
		}
		return math.Inf(1), true
	}
	d := (nv - ov) / ov
	return d, d > threshold
}

func formatDelta(d float64) string {
	if math.IsInf(d, 1) {
		return "+inf"
	}
	return fmt.Sprintf("%+.1f", d*100)
}

func displayName(b Benchmark) string {
	if b.Pkg == "" {
		return b.Name
	}
	// Keep only the last path element; full import paths blow the column.
	parts := strings.Split(b.Pkg, "/")
	return parts[len(parts)-1] + "." + b.Name
}

func loadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}
