// Command paperfigs regenerates every figure of the paper's evaluation
// (Orduña et al., ICPP 2000) as text tables/series:
//
//	paperfigs -fig 1        Tabu search trace (Figure 1)
//	paperfigs -fig 2        16-switch partition + coefficients (Figure 2)
//	paperfigs -fig 3        16-switch latency/traffic curves (Figure 3)
//	paperfigs -fig 4        24-switch rings partition (Figure 4)
//	paperfigs -fig 5        24-switch latency/traffic curves (Figure 5)
//	paperfigs -fig 6        Cc vs performance correlation (Figure 6)
//	paperfigs -fig claims   headline claims (gains, optimality, heuristics)
//	paperfigs -fig ablations design-choice ablations + future-work extensions
//	paperfigs -fig resilience link-failure injection and degraded-mode rescheduling
//	paperfigs -fig adversarial PISA-style adversarial DAG search: HEFT vs Tabu-refined placement
//	paperfigs -fig all      everything above
//
// Use -quick for a reduced simulation scale.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"commsched/internal/experiments"
	"commsched/internal/plot"
	"commsched/internal/runctl"
	"commsched/internal/telemetry"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 1..6, clustering, claims, ablations, model, resilience, adversarial, or all")
	quick := flag.Bool("quick", false, "reduced simulation scale (for smoke runs)")
	csvDir := flag.String("csv", "", "also write fig1/fig3/fig5/fig6 data as CSV files into this directory")
	metrics := flag.String("metrics", "", "write an observability trace (JSON lines) to this file")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	manifest := flag.String("manifest", "", "write a run manifest (seeds, topology hashes, timings) to this file")
	serve := flag.String("serve", "", "serve live telemetry (/metrics /events /runs /healthz /debug/pprof) on this address while running, e.g. :8080 or :0")
	trace := flag.String("trace", "", "record a Chrome trace-event JSON file (view in Perfetto / chrome://tracing)")
	durable := runctl.Flags(true)
	flag.Parse()

	opts := telemetry.Options{
		Serve: *serve, Trace: *trace, Metrics: *metrics,
		CPUProfile: *cpuprofile, MemProfile: *memprofile, Banner: os.Stderr,
	}
	if err := mainErr(*fig, *quick, *csvDir, opts, *manifest, *durable); err != nil {
		fmt.Fprintln(os.Stderr, "paperfigs:", err)
		os.Exit(1)
	}
}

func mainErr(fig string, quick bool, csvDir string, opts telemetry.Options, manifestPath string, durable runctl.Config) error {
	svc, err := telemetry.Start(opts)
	if err != nil {
		return err
	}

	sc := experiments.FullScale()
	if quick {
		sc = experiments.QuickScale()
		sc.RandomMappings = 5
	}
	man := experiments.NewManifest("paperfigs", sc)
	if net, err := experiments.Network16(); err == nil {
		man.AddTopology("irregular16", net)
	}
	if net, err := experiments.Network24Rings(); err == nil {
		man.AddTopology("rings24", net)
	}
	// Publish the manifest immediately so /runs identifies the run while
	// it is still executing; the final Emit refreshes the duration.
	man.Emit()

	id, err := man.RunstateIdentity()
	if err != nil {
		svc.Close()
		return err
	}
	finish, err := runctl.Activate(durable, id, os.Stderr)
	if err != nil {
		svc.Close()
		return err
	}

	// Ctrl-C / SIGTERM stops the experiment loops between units (via the
	// par root context — the experiment helpers pass nil contexts) so the
	// finish/Close paths below still flush checkpoints and sinks.
	_, stop := runctl.Signals(context.Background(), os.Stderr)
	runErr := func() error {
		if csvDir != "" {
			if err := writeCSVs(csvDir, fig, sc, quick); err != nil {
				return err
			}
		}
		return run(fig, sc, quick)
	}()
	stop()

	if err := finish(); err != nil && runErr == nil {
		runErr = err
	}

	man.Finish()
	man.Emit()
	if manifestPath == "" && csvDir != "" {
		manifestPath = filepath.Join(csvDir, "manifest.json")
	}
	if manifestPath != "" && runErr == nil {
		if err := man.Write(manifestPath); err != nil {
			runErr = err
		}
	}
	if err := svc.Close(); err != nil && runErr == nil {
		runErr = err
	}
	return runErr
}

// writeCSVs regenerates the plottable figures and stores their raw data.
// The set of files is figure-aware: `-fig adversarial` writes only the
// adversarial CSV, `-fig all` writes everything, and any other figure
// keeps the original fig1/fig3/fig5/fig6 set (so smoke runs comparing
// those files stay byte-stable).
func writeCSVs(dir string, fig string, sc experiments.Scale, quick bool) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	save := func(name string, write func(w io.Writer) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := write(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if fig == "adversarial" || fig == "all" {
		adv, err := experiments.Adversarial(nil, advConfig(quick))
		if err != nil {
			return err
		}
		if err := save("fig_adversarial.csv", adv.WriteCSV); err != nil {
			return err
		}
		if fig == "adversarial" {
			fmt.Printf("wrote adversarial CSV data to %s\n", dir)
			return nil
		}
	}
	f1, err := experiments.Fig1()
	if err != nil {
		return err
	}
	if err := save("fig1.csv", f1.WriteCSV); err != nil {
		return err
	}
	f3, err := experiments.Fig3(sc)
	if err != nil {
		return err
	}
	if err := save("fig3.csv", f3.WriteCSV); err != nil {
		return err
	}
	f5, err := experiments.Fig5(sc)
	if err != nil {
		return err
	}
	if err := save("fig5.csv", f5.WriteCSV); err != nil {
		return err
	}
	f6, err := experiments.CorrelationFromSim(f3)
	if err != nil {
		return err
	}
	if err := save("fig6.csv", f6.WriteCSV); err != nil {
		return err
	}
	fmt.Printf("wrote fig1/fig3/fig5/fig6 CSV data to %s\n", dir)
	return nil
}

// advConfig picks the adversarial-search scale; the climbs always fan
// out in parallel (results are byte-identical to the serial mode).
func advConfig(quick bool) experiments.AdvConfig {
	cfg := experiments.FullAdvConfig()
	if quick {
		cfg = experiments.QuickAdvConfig()
	}
	cfg.Parallel = true
	return cfg
}

func run(fig string, sc experiments.Scale, quick bool) error {
	switch fig {
	case "1":
		return fig1()
	case "2":
		return fig2(sc)
	case "3", "clustering": // "clustering" = the full 16-switch pipeline:
		// characterize, schedule, simulate OP vs random mappings.
		_, err := fig3(sc)
		return err
	case "4":
		return fig4(sc)
	case "5":
		return fig5(sc)
	case "6":
		return fig6(nil, sc)
	case "claims":
		return claims(sc)
	case "ablations":
		return ablations(sc)
	case "model":
		return model(sc)
	case "resilience":
		return resilience(sc)
	case "adversarial":
		return adversarial(quick)
	case "all":
		if err := fig1(); err != nil {
			return err
		}
		if err := fig2(sc); err != nil {
			return err
		}
		sim, err := fig3(sc)
		if err != nil {
			return err
		}
		if err := fig4(sc); err != nil {
			return err
		}
		if err := fig5(sc); err != nil {
			return err
		}
		if err := fig6(sim, sc); err != nil {
			return err
		}
		if err := claims(sc); err != nil {
			return err
		}
		if err := ablations(sc); err != nil {
			return err
		}
		if err := model(sc); err != nil {
			return err
		}
		if err := resilience(sc); err != nil {
			return err
		}
		return adversarial(quick)
	default:
		return fmt.Errorf("unknown figure %q", fig)
	}
}

func model(sc experiments.Scale) error {
	header("Foundation [2]: equivalent-distance model vs network performance")
	mv, err := experiments.ValidateModel(16, 8, sc)
	if err != nil {
		return err
	}
	fmt.Print(mv.Table())

	header("Ablation: up*/down* root election")
	ra, err := experiments.AblateRoot(4, sc)
	if err != nil {
		return err
	}
	fmt.Print(ra.Table())

	header("Scaling: throughput gain vs network size")
	ss, err := experiments.StudyScaling([]int{16, 20, 24}, sc)
	if err != nil {
		return err
	}
	fmt.Print(ss.Table())
	return nil
}

func ablations(sc experiments.Scale) error {
	header("Ablation: distance model (equivalent resistance vs hop counts)")
	ma, err := experiments.AblateMetric(sc)
	if err != nil {
		return err
	}
	fmt.Print(ma.Table())

	header("Extension: gain vs intra-cluster traffic fraction")
	mt, err := experiments.StudyMixedTraffic([]float64{1.0, 0.8, 0.6, 0.4}, sc)
	if err != nil {
		return err
	}
	fmt.Print(mt.Table())

	header("Extension: unequal communication requirements (heavy cluster x50)")
	we, err := experiments.StudyWeighted(50)
	if err != nil {
		return err
	}
	fmt.Print(we.Table())
	return nil
}

func header(title string) { fmt.Printf("\n==== %s ====\n\n", title) }

func adversarial(quick bool) error {
	header("Adversarial search: instances where HEFT trails the Tabu-refined placement")
	r, err := experiments.Adversarial(nil, advConfig(quick))
	if err != nil {
		return err
	}
	fmt.Print(r.Table())
	return nil
}

func resilience(sc experiments.Scale) error {
	header("Resilience: link failures, degraded-mode rescheduling, repair vs from-scratch")
	r, err := experiments.Resilience(nil, []int{1, 2, 3}, sc)
	if err != nil {
		return err
	}
	fmt.Print(r.Table())
	return nil
}

func fig1() error {
	header("Figure 1: Tabu search trace, 16-switch network")
	r, err := experiments.Fig1()
	if err != nil {
		return err
	}
	fmt.Print(r.Table())
	var xs, ys []float64
	for _, tp := range r.Trace {
		xs = append(xs, float64(tp.Iteration))
		ys = append(ys, tp.F)
	}
	chart, err := plot.New("F(P_i) over Tabu iterations (peaks = restarts)", 72, 16).
		Axes("iteration", "F").
		Add(plot.Series{Label: "F", X: xs, Y: ys}).
		Render()
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Print(chart)
	return nil
}

// plotSim renders a Figure 3/5-style latency-vs-traffic chart for the OP
// curve and up to three random curves.
func plotSim(r *experiments.SimResult) error {
	chart := plot.New("latency vs accepted traffic", 72, 18).
		Axes("accepted (flits/switch/cycle)", "latency (cycles)")
	addSeries := func(s experiments.SimSeries, label string) {
		var xs, ys []float64
		for _, p := range s.Points {
			xs = append(xs, p.Metrics.AcceptedTraffic)
			ys = append(ys, p.Metrics.AvgLatency)
		}
		chart.Add(plot.Series{Label: label, X: xs, Y: ys})
	}
	addSeries(r.OP, "OP")
	for i, s := range r.Randoms {
		if i >= 3 {
			break
		}
		addSeries(s, fmt.Sprintf("%d:%s", i+1, s.Mapping.Label))
	}
	out, err := chart.Render()
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Print(out)
	return nil
}

func fig2(sc experiments.Scale) error {
	header("Figure 2: 4-cluster partition, 16-switch network")
	r, err := experiments.Fig2(sc.RandomMappings)
	if err != nil {
		return err
	}
	fmt.Print(r.Table())
	return nil
}

func fig3(sc experiments.Scale) (*experiments.SimResult, error) {
	header("Figure 3: simulation results, 16-switch network")
	r, err := experiments.Fig3(sc)
	if err != nil {
		return nil, err
	}
	fmt.Print(r.Table())
	if err := plotSim(r); err != nil {
		return nil, err
	}
	return r, nil
}

func fig4(sc experiments.Scale) error {
	header("Figure 4: partition of the designed 24-switch rings network")
	r, err := experiments.Fig4(sc.RandomMappings)
	if err != nil {
		return err
	}
	fmt.Print(r.Table())
	return nil
}

func fig5(sc experiments.Scale) error {
	header("Figure 5: simulation results, 24-switch rings network")
	r, err := experiments.Fig5(sc)
	if err != nil {
		return err
	}
	fmt.Print(r.Table())
	return plotSim(r)
}

func fig6(sim *experiments.SimResult, sc experiments.Scale) error {
	header("Figure 6: correlation of Cc with network performance")
	var (
		r   *experiments.Fig6Result
		err error
	)
	if sim != nil {
		r, err = experiments.CorrelationFromSim(sim)
	} else {
		r, err = experiments.Fig6(sc)
	}
	if err != nil {
		return err
	}
	fmt.Print(r.Table())
	return nil
}

func claims(sc experiments.Scale) error {
	header("Claim: Tabu equals the exhaustive optimum on small networks")
	opt, err := experiments.TabuVsExhaustive(12, 500)
	if err != nil {
		return err
	}
	fmt.Print(opt.Table())

	header("Claim: Tabu matches or beats costlier heuristics")
	cmp, err := experiments.CompareHeuristics(16, 600)
	if err != nil {
		return err
	}
	fmt.Print(cmp.Table())

	header("Claim: Cc/performance correlation above 70% across networks")
	corr, err := experiments.CorrelationAcrossNetworks([]int{16, 20, 24}, sc)
	if err != nil {
		return err
	}
	fmt.Print(corr.Table())
	return nil
}
