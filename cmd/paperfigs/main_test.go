package main

import (
	"os"
	"strings"
	"testing"

	"commsched/internal/experiments"
)

func capture(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var b strings.Builder
		buf := make([]byte, 64<<10)
		for {
			n, err := r.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		done <- b.String()
	}()
	ferr := f()
	w.Close()
	os.Stdout = old
	out := <-done
	r.Close()
	return out, ferr
}

// tinyScale keeps the CLI tests fast.
func tinyScale() experiments.Scale {
	sc := experiments.QuickScale()
	sc.RandomMappings = 3
	return sc
}

func TestRunSingleFigures(t *testing.T) {
	cases := []struct {
		fig  string
		want string
	}{
		{"1", "best F"},
		{"2", "OP partition"},
		{"4", "identified: true"},
	}
	for _, c := range cases {
		out, err := capture(t, func() error { return run(c.fig, tinyScale()) })
		if err != nil {
			t.Fatalf("fig %s: %v", c.fig, err)
		}
		if !strings.Contains(out, c.want) {
			t.Fatalf("fig %s output missing %q:\n%s", c.fig, c.want, out)
		}
	}
}

func TestRunFig3And6(t *testing.T) {
	out, err := capture(t, func() error { return run("3", tinyScale()) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "gain over best random") {
		t.Fatalf("fig 3 output missing gain:\n%s", out)
	}
	sc := tinyScale()
	sc.RandomMappings = 5
	out, err = capture(t, func() error { return run("6", sc) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "r_accepted") {
		t.Fatalf("fig 6 output missing correlations:\n%s", out)
	}
}

func TestRunResilience(t *testing.T) {
	out, err := capture(t, func() error { return run("resilience", tinyScale()) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Cc_repair", "acc_resched", "irregular-16", "rings-24"} {
		if !strings.Contains(out, want) {
			t.Fatalf("resilience output missing %q:\n%s", want, out)
		}
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if _, err := capture(t, func() error { return run("42", tinyScale()) }); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestWriteCSVs(t *testing.T) {
	dir := t.TempDir()
	sc := tinyScale()
	sc.RandomMappings = 3
	if _, err := capture(t, func() error { return writeCSVs(dir, sc) }); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fig1.csv", "fig3.csv", "fig5.csv", "fig6.csv"} {
		data, err := os.ReadFile(dir + "/" + name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		lines := strings.Count(string(data), "\n")
		if lines < 2 {
			t.Fatalf("%s has only %d lines", name, lines)
		}
	}
	// fig3.csv carries one row per (mapping, point) plus header.
	data, _ := os.ReadFile(dir + "/fig3.csv")
	wantRows := (1 + sc.RandomMappings) * sc.SweepPoints
	if got := strings.Count(string(data), "\n") - 1; got != wantRows {
		t.Fatalf("fig3.csv rows = %d, want %d", got, wantRows)
	}
	if !strings.HasPrefix(string(data), "mapping,cc,point,") {
		t.Fatalf("fig3.csv header wrong: %q", strings.SplitN(string(data), "\n", 2)[0])
	}
}
