package main

import (
	"os"
	"strings"
	"testing"

	"commsched/internal/experiments"
)

func capture(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var b strings.Builder
		buf := make([]byte, 64<<10)
		for {
			n, err := r.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		done <- b.String()
	}()
	ferr := f()
	w.Close()
	os.Stdout = old
	out := <-done
	r.Close()
	return out, ferr
}

// tinyScale keeps the CLI tests fast.
func tinyScale() experiments.Scale {
	sc := experiments.QuickScale()
	sc.RandomMappings = 3
	return sc
}

func TestRunSingleFigures(t *testing.T) {
	cases := []struct {
		fig  string
		want string
	}{
		{"1", "best F"},
		{"2", "OP partition"},
		{"4", "identified: true"},
	}
	for _, c := range cases {
		out, err := capture(t, func() error { return run(c.fig, tinyScale(), true) })
		if err != nil {
			t.Fatalf("fig %s: %v", c.fig, err)
		}
		if !strings.Contains(out, c.want) {
			t.Fatalf("fig %s output missing %q:\n%s", c.fig, c.want, out)
		}
	}
}

func TestRunFig3And6(t *testing.T) {
	out, err := capture(t, func() error { return run("3", tinyScale(), true) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "gain over best random") {
		t.Fatalf("fig 3 output missing gain:\n%s", out)
	}
	sc := tinyScale()
	sc.RandomMappings = 5
	out, err = capture(t, func() error { return run("6", sc, true) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "r_accepted") {
		t.Fatalf("fig 6 output missing correlations:\n%s", out)
	}
}

func TestRunResilience(t *testing.T) {
	out, err := capture(t, func() error { return run("resilience", tinyScale(), true) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Cc_repair", "acc_resched", "irregular-16", "rings-24"} {
		if !strings.Contains(out, want) {
			t.Fatalf("resilience output missing %q:\n%s", want, out)
		}
	}
}

func TestRunAdversarial(t *testing.T) {
	out, err := capture(t, func() error { return run("adversarial", tinyScale(), true) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"best_ratio", "layered", "forkjoin", "random", "schedules validated"} {
		if !strings.Contains(out, want) {
			t.Fatalf("adversarial output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteCSVsAdversarialOnly(t *testing.T) {
	dir := t.TempDir()
	if _, err := capture(t, func() error { return writeCSVs(dir, "adversarial", tinyScale(), true) }); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(dir + "/fig_adversarial.csv")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "family,restart,tasks,edges,start_ratio,best_ratio,") {
		t.Fatalf("adversarial CSV header wrong: %q", strings.SplitN(string(data), "\n", 2)[0])
	}
	// -fig adversarial must write only its own data file.
	if _, err := os.Stat(dir + "/fig1.csv"); err == nil {
		t.Fatal("fig1.csv written for -fig adversarial")
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if _, err := capture(t, func() error { return run("42", tinyScale(), true) }); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestWriteCSVs(t *testing.T) {
	dir := t.TempDir()
	sc := tinyScale()
	sc.RandomMappings = 3
	if _, err := capture(t, func() error { return writeCSVs(dir, "3", sc, true) }); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fig1.csv", "fig3.csv", "fig5.csv", "fig6.csv"} {
		data, err := os.ReadFile(dir + "/" + name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		lines := strings.Count(string(data), "\n")
		if lines < 2 {
			t.Fatalf("%s has only %d lines", name, lines)
		}
	}
	// fig3.csv carries one row per (mapping, point) plus header.
	data, _ := os.ReadFile(dir + "/fig3.csv")
	wantRows := (1 + sc.RandomMappings) * sc.SweepPoints
	if got := strings.Count(string(data), "\n") - 1; got != wantRows {
		t.Fatalf("fig3.csv rows = %d, want %d", got, wantRows)
	}
	if !strings.HasPrefix(string(data), "mapping,cc,point,") {
		t.Fatalf("fig3.csv header wrong: %q", strings.SplitN(string(data), "\n", 2)[0])
	}
}
