package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

// distChildCmd re-executes this test binary as one distributed fig-3
// worker joining the shared workers directory.
func distChildCmd(csvDir, workersDir, workerID string) (*exec.Cmd, *bytes.Buffer) {
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		"PAPERFIGS_RESUME_CHILD=1",
		"PAPERFIGS_CHILD_FIG=3",
		"PAPERFIGS_CHILD_CSV="+csvDir,
		"PAPERFIGS_CHILD_WORKERS_DIR="+workersDir,
		"PAPERFIGS_CHILD_WORKER_ID="+workerID,
	)
	var log bytes.Buffer
	cmd.Stdout, cmd.Stderr = &log, &log
	return cmd, &log
}

var (
	reclaimedRe = regexp.MustCompile(`lease: .*?(\d+) reclaimed`)
	stolenRe    = regexp.MustCompile(`lease: .*?\((\d+) stolen\)`)
)

// TestDistributedWorkersSurviveSigkill is the crash-recovery acceptance
// test for distributed execution: three workers share a figure-3 sweep,
// one is SIGKILLed mid-unit and restarted under a fresh worker ID, and
// the run must still produce CSVs byte-identical to a serial run, with
// the victim's abandoned lease visibly reclaimed and zero determinism
// violations.
func TestDistributedWorkersSurviveSigkill(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec integration test")
	}
	base := t.TempDir()

	// Golden: one uninterrupted serial run.
	goldenDir := filepath.Join(base, "golden")
	golden := exec.Command(os.Args[0])
	golden.Env = append(os.Environ(),
		"PAPERFIGS_RESUME_CHILD=1",
		"PAPERFIGS_CHILD_FIG=3",
		"PAPERFIGS_CHILD_CSV="+goldenDir,
	)
	if out, err := golden.CombinedOutput(); err != nil {
		t.Fatalf("golden run failed: %v\n%s", err, out)
	}
	want, err := os.ReadFile(filepath.Join(goldenDir, "fig3.csv"))
	if err != nil {
		t.Fatal(err)
	}

	// Three workers join one shared checkpoint directory.
	shared := filepath.Join(base, "shared")
	type worker struct {
		id   string
		csv  string
		cmd  *exec.Cmd
		log  *bytes.Buffer
		done chan error
	}
	start := func(id string) *worker {
		w := &worker{id: id, csv: filepath.Join(base, "csv-"+id)}
		w.cmd, w.log = distChildCmd(w.csv, shared, id)
		if err := w.cmd.Start(); err != nil {
			t.Fatalf("starting %s: %v", id, err)
		}
		w.done = make(chan error, 1)
		go func() { w.done <- w.cmd.Wait() }()
		return w
	}
	workers := []*worker{start("w1"), start("w2"), start("w3")}
	victim := workers[1]

	// SIGKILL the victim the moment it is observed holding a unit lease,
	// so the kill lands mid-unit and the lease must be reclaimed.
	unitsDir := filepath.Join(shared, "lease", "units")
	deadline := time.After(2 * time.Minute)
	killed := true
poll:
	for {
		select {
		case err := <-victim.done:
			if err != nil {
				t.Fatalf("victim failed before the kill: %v\n%s", err, victim.log.String())
			}
			t.Log("victim finished before SIGKILL landed; restart still exercises late join")
			killed = false
			break poll
		case <-deadline:
			for _, w := range workers {
				w.cmd.Process.Kill()
			}
			t.Fatalf("victim never held a lease under %s\n%s", unitsDir, victim.log.String())
		default:
		}
		if len(victimLeases(t, shared)) > 0 {
			victim.cmd.Process.Kill()
			<-victim.done
			break
		}
	}
	t.Logf("victim killed mid-run: %v", killed)

	// If a w2-owned lease with no done marker survived the kill, the
	// protocol has no way to finish without reclaiming it.
	reclaimGuaranteed := killed && len(victimLeases(t, shared)) > 0
	t.Logf("abandoned lease left behind: %v", reclaimGuaranteed)

	// Restart the victim's share of the work under a fresh worker ID.
	replacement := start("w4")
	survivors := []*worker{workers[0], workers[2], replacement}
	for _, w := range survivors {
		if err := <-w.done; err != nil {
			t.Fatalf("worker %s failed: %v\n%s", w.id, err, w.log.String())
		}
	}

	// Every survivor's CSV must be byte-identical to the serial run.
	var all bytes.Buffer
	for _, w := range survivors {
		got, err := os.ReadFile(filepath.Join(w.csv, "fig3.csv"))
		if err != nil {
			t.Fatalf("worker %s wrote no fig3.csv: %v", w.id, err)
		}
		if !bytes.Equal(want, got) {
			t.Errorf("worker %s fig3.csv differs from serial run\nserial:\n%s\n%s:\n%s", w.id, want, w.id, got)
		}
		all.Write(w.log.Bytes())
		if !bytes.Contains(w.log.Bytes(), []byte("lease: worker "+w.id+" joined")) {
			t.Errorf("worker %s never printed its join banner:\n%s", w.id, w.log.String())
		}
	}

	// The merged run must be clean: no determinism violations anywhere.
	if bytes.Contains(all.Bytes(), []byte("determinism violation")) {
		t.Errorf("determinism violations reported:\n%s", all.String())
	}

	// The lease the victim abandoned must have been reclaimed (when one
	// was provably left behind), and the survivors must have picked up
	// the victim's share of the work.
	reclaimed, stolen := 0, 0
	for _, m := range reclaimedRe.FindAllStringSubmatch(all.String(), -1) {
		n, _ := strconv.Atoi(m[1])
		reclaimed += n
	}
	for _, m := range stolenRe.FindAllStringSubmatch(all.String(), -1) {
		n, _ := strconv.Atoi(m[1])
		stolen += n
	}
	t.Logf("survivors reclaimed %d lease(s), stole %d unit(s)", reclaimed, stolen)
	if reclaimGuaranteed && reclaimed == 0 {
		t.Errorf("no worker reported reclaiming the victim's abandoned lease:\n%s", all.String())
	}
	if killed && reclaimed+stolen == 0 {
		t.Errorf("survivors neither reclaimed nor stole after the SIGKILL:\n%s", all.String())
	}
}

// victimLeases lists the lease files currently owned by worker w2 whose
// unit has no done marker — leases that can only be resolved by a
// reclaim.
func victimLeases(t *testing.T, shared string) []string {
	t.Helper()
	entries, err := os.ReadDir(filepath.Join(shared, "lease", "units"))
	if err != nil {
		return nil
	}
	var held []string
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(shared, "lease", "units", e.Name()))
		if err != nil || !bytes.Contains(data, []byte(`owner="w2"`)) {
			continue
		}
		done := strings.TrimSuffix(e.Name(), ".lease") + ".done"
		if _, err := os.Stat(filepath.Join(shared, "lease", "done", done)); os.IsNotExist(err) {
			held = append(held, e.Name())
		}
	}
	return held
}
