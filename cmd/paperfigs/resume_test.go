package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"commsched/internal/runctl"
	"commsched/internal/telemetry"
)

// TestMain doubles as the child process of the kill-and-resume test: with
// PAPERFIGS_RESUME_CHILD set, the test binary re-executes mainErr like the
// real command would, so the parent can SIGKILL it mid-figure and resume
// it against the same checkpoint directory.
func TestMain(m *testing.M) {
	if os.Getenv("PAPERFIGS_RESUME_CHILD") == "1" {
		opts := telemetry.Options{Banner: os.Stderr}
		if os.Getenv("PAPERFIGS_CHILD_SERVE") == "1" {
			opts.Serve = "127.0.0.1:0"
		}
		fig := os.Getenv("PAPERFIGS_CHILD_FIG")
		if fig == "" {
			fig = "1"
		}
		durable := runctl.Config{ResumeDir: os.Getenv("PAPERFIGS_CHILD_RESUME")}
		if wd := os.Getenv("PAPERFIGS_CHILD_WORKERS_DIR"); wd != "" {
			durable = runctl.Config{
				WorkersDir: wd,
				WorkerID:   os.Getenv("PAPERFIGS_CHILD_WORKER_ID"),
				LeaseTTL:   time.Second,
			}
		}
		if err := mainErr(fig, true, os.Getenv("PAPERFIGS_CHILD_CSV"), opts, "", durable); err != nil {
			fmt.Fprintln(os.Stderr, "child:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// childCmd re-executes this test binary as a paperfigs run writing CSVs
// to csvDir, checkpointing into resumeDir (if any). GOMAXPROCS=1 keeps
// the child's units serial so a SIGKILL lands between journal records.
func childCmd(csvDir, resumeDir string, serve bool) *exec.Cmd {
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		"PAPERFIGS_RESUME_CHILD=1",
		"PAPERFIGS_CHILD_CSV="+csvDir,
		"PAPERFIGS_CHILD_RESUME="+resumeDir,
		"GOMAXPROCS=1",
	)
	if serve {
		cmd.Env = append(cmd.Env, "PAPERFIGS_CHILD_SERVE=1")
	}
	return cmd
}

var serveBanner = regexp.MustCompile(`telemetry: serving on http://([^\s]+)`)

// TestKillAndResumeBitIdenticalCSV is the durable-runs acceptance test:
// a figure run SIGKILLed mid-flight and resumed with -resume must emit
// CSVs byte-identical to an uninterrupted run, and the resumed process
// must report nonzero checkpoint-replay counters at /metrics.
func TestKillAndResumeBitIdenticalCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec integration test")
	}
	base := t.TempDir()

	// Golden: an uninterrupted run with durable execution off.
	goldenDir := filepath.Join(base, "golden")
	if out, err := childCmd(goldenDir, "", false).CombinedOutput(); err != nil {
		t.Fatalf("golden run failed: %v\n%s", err, out)
	}

	// Interrupted run: SIGKILL as soon as the journal holds a record.
	ckpt := filepath.Join(base, "ckpt")
	first := childCmd(filepath.Join(base, "out1"), ckpt, false)
	var firstLog bytes.Buffer
	first.Stdout, first.Stderr = &firstLog, &firstLog
	if err := first.Start(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- first.Wait() }()
	journal := filepath.Join(ckpt, "journal.jsonl")
	killed := false
	deadline := time.After(2 * time.Minute)
poll:
	for {
		select {
		case err := <-done:
			// Finished before the kill landed: the resume below still
			// replays a complete journal, so the test stays meaningful.
			if err != nil {
				t.Fatalf("first run failed on its own: %v\n%s", err, firstLog.String())
			}
			t.Log("first run completed before SIGKILL; resuming a finished journal")
			break poll
		case <-deadline:
			first.Process.Kill()
			t.Fatalf("journal never appeared at %s\n%s", journal, firstLog.String())
		default:
		}
		if st, err := os.Stat(journal); err == nil && st.Size() > 0 {
			first.Process.Kill()
			<-done
			killed = true
			break
		}
		time.Sleep(time.Millisecond)
	}
	if st, err := os.Stat(journal); err != nil || st.Size() == 0 {
		t.Fatalf("no journal survived the kill: %v", err)
	}
	t.Logf("killed mid-run: %v", killed)

	// Resume: must replay from the journal, finish cleanly, expose a
	// nonzero runstate.replayed gauge while running, and reproduce the
	// golden CSVs byte for byte.
	outDir := filepath.Join(base, "out2")
	resume := childCmd(outDir, ckpt, true)
	var resumeLog bytes.Buffer
	resume.Stdout, resume.Stderr = &resumeLog, &resumeLog
	if err := resume.Start(); err != nil {
		t.Fatal(err)
	}
	done = make(chan error, 1)
	go func() { done <- resume.Wait() }()

	metrics, exited := scrapeReplayedGauge(t, &resumeLog, done)
	if exited {
		t.Fatalf("resumed run exited before /metrics showed a nonzero runstate.replayed gauge\n%s", resumeLog.String())
	}
	if err := <-done; err != nil {
		t.Fatalf("resumed run failed: %v\n%s", err, resumeLog.String())
	}
	if !strings.Contains(resumeLog.String(), "resuming from") {
		t.Fatalf("resume banner missing:\n%s", resumeLog.String())
	}
	t.Logf("mid-run /metrics: %s", metrics)

	for _, name := range []string{"fig1.csv", "fig3.csv", "fig5.csv", "fig6.csv"} {
		want, err := os.ReadFile(filepath.Join(goldenDir, name))
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(filepath.Join(outDir, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, got) {
			t.Errorf("%s differs from the uninterrupted run\ngolden:\n%s\nresumed:\n%s", name, want, got)
		}
	}
}

// scrapeReplayedGauge polls the child's stderr for the telemetry banner,
// then its /metrics endpoint until commsched_value{name="runstate.replayed"}
// is nonzero. Returns the matching metric line, or exited=true if the
// child finished first.
func scrapeReplayedGauge(t *testing.T, log *bytes.Buffer, done chan error) (string, bool) {
	t.Helper()
	gauge := regexp.MustCompile(`commsched_value\{name="runstate\.replayed"\} ([1-9][0-9.e+]*)`)
	deadline := time.After(2 * time.Minute)
	addr := ""
	for {
		select {
		case err := <-done:
			done <- err // re-queue for the caller
			return "", true
		case <-deadline:
			t.Fatalf("timed out scraping /metrics\n%s", log.String())
		default:
		}
		if addr == "" {
			if m := serveBanner.FindStringSubmatch(log.String()); m != nil {
				addr = m[1]
			} else {
				time.Sleep(time.Millisecond)
				continue
			}
		}
		resp, err := http.Get("http://" + addr + "/metrics")
		if err == nil {
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if m := gauge.Find(body); m != nil {
				return string(m), false
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
}
