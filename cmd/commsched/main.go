// Command commsched runs the communication-aware scheduling technique on
// a network: it characterizes the topology (up*/down* routing + table of
// equivalent distances), searches for the best mapping of logical process
// clusters to switches, and prints the partition with its quality
// coefficients.
//
// Usage:
//
//	commsched -switches 16 -clusters 4 -seed 1          random irregular net
//	commsched -topo rings -rings 4 -ringsize 6          the Figure 4 network
//	commsched -topo file -in net.txt                    a network from disk
//	commsched ... -heuristic sa                         pick the searcher
//	commsched ... -table                                also dump the distance table
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"commsched/internal/core"
	"commsched/internal/experiments"
	"commsched/internal/runctl"
	"commsched/internal/search"
	"commsched/internal/telemetry"
	"commsched/internal/topology"
)

func main() {
	var (
		topo      = flag.String("topo", "irregular", "topology kind: irregular, rings, ring, mesh, torus, hypercube, file")
		switches  = flag.Int("switches", 16, "switch count (irregular/ring)")
		degree    = flag.Int("degree", 3, "inter-switch degree (irregular)")
		rings     = flag.Int("rings", 4, "ring count (rings topology)")
		ringSize  = flag.Int("ringsize", 6, "switches per ring (rings topology)")
		bridges   = flag.Int("bridges", 1, "links between consecutive rings")
		rows      = flag.Int("rows", 4, "rows (mesh/torus)")
		cols      = flag.Int("cols", 4, "columns (mesh/torus)")
		dim       = flag.Int("dim", 4, "dimension (hypercube)")
		in        = flag.String("in", "", "input topology file (file topology)")
		topoSeed  = flag.Int64("toposeed", 1, "topology generation seed")
		clusters  = flag.Int("clusters", 4, "number of logical clusters")
		weights   = flag.String("weights", "", "optional per-cluster traffic weights, e.g. \"50,1,1,1\" (weighted scheduling)")
		seed      = flag.Int64("seed", 42, "search seed")
		heuristic = flag.String("heuristic", "tabu", "searcher: tabu, greedy, sa, ga, gsa, random, exhaustive")
		metric    = flag.String("metric", "resistance", "distance model: resistance or hops")
		randoms   = flag.Int("randoms", 3, "random baseline mappings to report")
		dumpTable = flag.Bool("table", false, "print the table of equivalent distances")

		metricsOut = flag.String("metrics", "", "write an observability trace (JSON lines) to this file")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		serve      = flag.String("serve", "", "serve live telemetry (/metrics /events /runs /healthz /debug/pprof) on this address while running, e.g. :8080 or :0")
		trace      = flag.String("trace", "", "record a Chrome trace-event JSON file (view in Perfetto / chrome://tracing)")
	)
	durable := runctl.Flags(false)
	flag.Parse()

	svc, err := telemetry.Start(telemetry.Options{
		Serve: *serve, Trace: *trace, Metrics: *metricsOut,
		CPUProfile: *cpuprofile, MemProfile: *memprofile, Banner: os.Stderr,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "commsched:", err)
		os.Exit(1)
	}
	// Ctrl-C / SIGTERM cancels the search between units so the deferred
	// finish/Close paths still flush checkpoints and telemetry sinks.
	ctx, stop := runctl.Signals(context.Background(), os.Stderr)
	runErr := run(ctx, *topo, *switches, *degree, *rings, *ringSize, *bridges, *rows, *cols, *dim, *in,
		*topoSeed, *clusters, *weights, *seed, *heuristic, *metric, *randoms, *dumpTable, *durable)
	stop()
	if err := svc.Close(); err != nil && runErr == nil {
		runErr = err
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "commsched:", runErr)
		os.Exit(1)
	}
}

func run(ctx context.Context, topo string, switches, degree, rings, ringSize, bridges, rows, cols, dim int, in string,
	topoSeed int64, clusters int, weights string, seed int64, heuristic, metric string, randoms int, dumpTable bool,
	durable runctl.Config) (retErr error) {

	net, err := buildTopology(topo, switches, degree, rings, ringSize, bridges, rows, cols, dim, in, topoSeed)
	if err != nil {
		return err
	}
	man := experiments.NewManifest("commsched", experiments.Scale{})
	man.Seeds = map[string]int64{"topology": topoSeed, "search": seed}
	if err := man.AddTopology(net.Name(), net); err != nil {
		return err
	}
	id, err := man.RunstateIdentity()
	if err != nil {
		return err
	}
	finish, err := runctl.Activate(durable, id, os.Stderr)
	if err != nil {
		return err
	}
	defer func() {
		if ferr := finish(); ferr != nil && retErr == nil {
			retErr = ferr
		}
	}()
	opts := core.Options{}
	switch metric {
	case "resistance":
		opts.Metric = core.MetricResistance
	case "hops":
		opts.Metric = core.MetricHops
	default:
		return fmt.Errorf("unknown metric %q", metric)
	}
	sys, err := core.NewSystem(net, opts)
	if err != nil {
		return err
	}
	fmt.Printf("network %s: %d switches, %d hosts, %d links, up*/down* root %d\n",
		net.Name(), net.Switches(), net.Hosts(), net.NumLinks(), sys.Routing().Root())
	if dumpTable {
		fmt.Println("\ntable of equivalent distances:")
		fmt.Print(sys.DistanceTable().String())
	}

	searcher, err := pickSearcher(heuristic)
	if err != nil {
		return err
	}
	var sched *core.Schedule
	label := searcher.Name()
	if weights != "" {
		ws, err := parseWeights(weights)
		if err != nil {
			return err
		}
		if clusters <= 0 || net.Switches()%len(ws) != 0 {
			return fmt.Errorf("cannot split %d switches into %d weighted clusters", net.Switches(), len(ws))
		}
		sizes := make([]int, len(ws))
		for i := range sizes {
			sizes[i] = net.Switches() / len(ws)
		}
		clusters = len(ws)
		label = "weighted-tabu"
		sched, err = sys.ScheduleWeighted(ctx, sizes, ws, seed)
		if err != nil {
			return err
		}
	} else {
		sched, err = sys.Schedule(ctx, core.ScheduleOptions{Clusters: clusters, Searcher: searcher, Seed: seed})
		if err != nil {
			return err
		}
	}
	fmt.Printf("\nscheduled partition (%s): %s\n", label, sched.Partition)
	fmt.Printf("F_G = %.4f   D_G = %.4f   Cc = %.4f   (evaluations: %d)\n",
		sched.Quality.FG, sched.Quality.DG, sched.Quality.Cc, sched.Search.Evaluations)

	for i := 0; i < randoms; i++ {
		p, err := sys.RandomMapping(clusters, int64(100+i))
		if err != nil {
			return err
		}
		q, err := sys.Evaluate(p)
		if err != nil {
			return err
		}
		fmt.Printf("random R%d: Cc = %.4f   %s\n", i+1, q.Cc, p)
	}
	return nil
}

func buildTopology(kind string, switches, degree, rings, ringSize, bridges, rows, cols, dim int,
	in string, seed int64) (*topology.Network, error) {
	cfg := topology.Config{}
	switch kind {
	case "irregular":
		return topology.RandomIrregular(switches, degree, rand.New(rand.NewSource(seed)), cfg)
	case "rings":
		return topology.InterconnectedRings(rings, ringSize, bridges, cfg)
	case "ring":
		return topology.Ring(switches, cfg)
	case "mesh":
		return topology.Mesh2D(rows, cols, cfg)
	case "torus":
		return topology.Torus2D(rows, cols, cfg)
	case "hypercube":
		return topology.Hypercube(dim, cfg)
	case "file":
		if in == "" {
			return nil, fmt.Errorf("file topology needs -in")
		}
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return topology.ParseText(f)
	default:
		return nil, fmt.Errorf("unknown topology %q", kind)
	}
}

// parseWeights parses a comma-separated positive weight list.
func parseWeights(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	ws := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad weight %q (want positive numbers, e.g. 50,1,1,1)", p)
		}
		ws = append(ws, v)
	}
	return ws, nil
}

func pickSearcher(name string) (search.Searcher, error) {
	switch name {
	case "tabu":
		return search.NewTabu(), nil
	case "greedy":
		return search.NewGreedy(), nil
	case "sa":
		return search.NewAnneal(), nil
	case "ga":
		return search.NewGenetic(), nil
	case "gsa":
		return search.NewGSA(), nil
	case "random":
		return &search.RandomSample{Samples: 1000}, nil
	case "exhaustive":
		return search.NewExhaustive(), nil
	default:
		return nil, fmt.Errorf("unknown heuristic %q", name)
	}
}
