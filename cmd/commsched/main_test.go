package main

import (
	"commsched/internal/runctl"
	"context"

	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capture runs f with stdout redirected and returns what it printed.
func capture(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var b strings.Builder
		buf := make([]byte, 64<<10)
		for {
			n, err := r.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		done <- b.String()
	}()
	ferr := f()
	w.Close()
	os.Stdout = old
	out := <-done
	r.Close()
	return out, ferr
}

func TestRunIrregularTabu(t *testing.T) {
	out, err := capture(t, func() error {
		return run(context.Background(), "irregular", 12, 3, 0, 0, 0, 0, 0, 0, "", 1, 4, "", 42, "tabu", "resistance", 2, false, runctl.Config{})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"scheduled partition (tabu)", "Cc =", "random R1", "random R2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunRingsTopology(t *testing.T) {
	out, err := capture(t, func() error {
		return run(context.Background(), "rings", 0, 0, 4, 6, 1, 0, 0, 0, "", 1, 4, "", 42, "greedy", "resistance", 0, false, runctl.Config{})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "rings-4x6") {
		t.Fatalf("output missing topology name:\n%s", out)
	}
}

func TestRunHopMetricAndTableDump(t *testing.T) {
	out, err := capture(t, func() error {
		return run(context.Background(), "ring", 6, 0, 0, 0, 0, 0, 0, 0, "", 1, 2, "", 42, "tabu", "hops", 0, true, runctl.Config{})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "table of equivalent distances") {
		t.Fatalf("table dump missing:\n%s", out)
	}
}

func TestRunMeshTorusHypercube(t *testing.T) {
	cases := []struct {
		topo            string
		rows, cols, dim int
		clusters        int
	}{
		{"mesh", 4, 4, 0, 4},
		{"torus", 4, 4, 0, 4},
		{"hypercube", 0, 0, 4, 4},
	}
	for _, c := range cases {
		if _, err := capture(t, func() error {
			return run(context.Background(), c.topo, 0, 0, 0, 0, 0, c.rows, c.cols, c.dim, "", 1, c.clusters, "", 1, "greedy", "resistance", 0, false, runctl.Config{})
		}); err != nil {
			t.Fatalf("%s: %v", c.topo, err)
		}
	}
}

func TestRunFileTopology(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "net.txt")
	content := "network demo switches=4 ports=8 hosts=4\nlink 0 1\nlink 1 2\nlink 2 3\nlink 0 3\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, func() error {
		return run(context.Background(), "file", 0, 0, 0, 0, 0, 0, 0, 0, path, 1, 2, "", 1, "exhaustive", "resistance", 0, false, runctl.Config{})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "network demo") {
		t.Fatalf("file topology not loaded:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	cases := []func() error{
		func() error {
			return run(context.Background(), "unknown-topo", 8, 3, 0, 0, 0, 0, 0, 0, "", 1, 4, "", 1, "tabu", "resistance", 0, false, runctl.Config{})
		},
		func() error {
			return run(context.Background(), "irregular", 12, 3, 0, 0, 0, 0, 0, 0, "", 1, 4, "", 1, "no-such-heuristic", "resistance", 0, false, runctl.Config{})
		},
		func() error {
			return run(context.Background(), "irregular", 12, 3, 0, 0, 0, 0, 0, 0, "", 1, 4, "", 1, "tabu", "no-such-metric", 0, false, runctl.Config{})
		},
		func() error {
			return run(context.Background(), "file", 0, 0, 0, 0, 0, 0, 0, 0, "", 1, 4, "", 1, "tabu", "resistance", 0, false, runctl.Config{})
		},
		func() error {
			return run(context.Background(), "file", 0, 0, 0, 0, 0, 0, 0, 0, "/does/not/exist", 1, 4, "", 1, "tabu", "resistance", 0, false, runctl.Config{})
		},
		func() error { // indivisible clusters
			return run(context.Background(), "irregular", 10, 3, 0, 0, 0, 0, 0, 0, "", 1, 4, "", 1, "tabu", "resistance", 0, false, runctl.Config{})
		},
	}
	for i, f := range cases {
		if _, err := capture(t, f); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestPickSearcherAll(t *testing.T) {
	for _, name := range []string{"tabu", "greedy", "sa", "ga", "gsa", "random", "exhaustive"} {
		s, err := pickSearcher(name)
		if err != nil || s == nil {
			t.Fatalf("pickSearcher(%q) failed: %v", name, err)
		}
	}
	if _, err := pickSearcher("bogus"); err == nil {
		t.Fatal("bogus searcher accepted")
	}
}

func TestRunWeightedScheduling(t *testing.T) {
	out, err := capture(t, func() error {
		return run(context.Background(), "irregular", 12, 3, 0, 0, 0, 0, 0, 0, "", 1, 4, "50,1,1,1", 42, "tabu", "resistance", 0, false, runctl.Config{})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "weighted-tabu") {
		t.Fatalf("weighted scheduling not used:\n%s", out)
	}
}

func TestRunWeightedErrors(t *testing.T) {
	if _, err := capture(t, func() error {
		return run(context.Background(), "irregular", 12, 3, 0, 0, 0, 0, 0, 0, "", 1, 4, "a,b", 42, "tabu", "resistance", 0, false, runctl.Config{})
	}); err == nil {
		t.Fatal("bad weight list accepted")
	}
	if _, err := capture(t, func() error {
		// 12 switches cannot split into 5 weighted clusters.
		return run(context.Background(), "irregular", 12, 3, 0, 0, 0, 0, 0, 0, "", 1, 4, "1,1,1,1,1", 42, "tabu", "resistance", 0, false, runctl.Config{})
	}); err == nil {
		t.Fatal("indivisible weighted split accepted")
	}
}

func TestParseWeights(t *testing.T) {
	ws, err := parseWeights("50, 1,1, 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 4 || ws[0] != 50 {
		t.Fatalf("ws = %v", ws)
	}
	for _, bad := range []string{"", "x", "0", "-1", "1,,2"} {
		if _, err := parseWeights(bad); err == nil {
			t.Errorf("parseWeights(%q) accepted", bad)
		}
	}
}
