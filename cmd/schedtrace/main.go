// Command schedtrace reconstructs causal traces from this module's own
// telemetry and pretty-prints them as span trees with critical-path
// timing — the offline counterpart of the daemon's GET /trace/{id}.
//
// It reads two sources, separately or together:
//
//   - obs JSONL files (the -metrics flag of every CLI, or the daemon's
//     -obs sink): every record carrying a trace ID becomes a tree node —
//     spans nest under their parent span, events attach to the span that
//     emitted them;
//   - a daemon state directory (-state): the journaled job records are
//     synthesized into per-job nodes (state, queue wait, attempts) that
//     hang under their admission span when the span is present in a
//     JSONL file, and stand alone when it is not.
//
// Because trace identity survives SIGKILL (jobs journal their trace;
// resumable CLI runs derive theirs from the run identity), the tree
// printed after a crash-and-resume is ONE tree, with the pre-kill and
// post-resume work stitched under the same trace ID.
//
//	schedtrace state/obs.jsonl                 # all traces in the file
//	schedtrace -trace 0af7…319c a.jsonl b.jsonl
//	schedtrace -state ./state                  # job trees from the journal
//	schedtrace -list -state ./state            # trace IDs only
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"commsched/internal/obs"
	"commsched/internal/service"
)

func main() {
	var (
		traceID = flag.String("trace", "", "show only this trace ID (32 hex digits)")
		state   = flag.String("state", "", "daemon state directory: synthesize job nodes from the jobs journal")
		list    = flag.Bool("list", false, "list trace IDs and sizes instead of printing trees")
	)
	flag.Parse()
	if *state == "" && flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "schedtrace: need at least one obs JSONL file or -state directory")
		flag.Usage()
		os.Exit(2)
	}
	b := newBuilder()
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "schedtrace: %v\n", err)
			os.Exit(1)
		}
		err = b.addObs(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "schedtrace: reading %s: %v\n", path, err)
			os.Exit(1)
		}
	}
	if *state != "" {
		jobs, err := loadStateJobs(*state)
		if err != nil {
			fmt.Fprintf(os.Stderr, "schedtrace: %v\n", err)
			os.Exit(1)
		}
		b.addJobs(jobs)
	}
	trees := b.build()
	if *traceID != "" {
		var keep []*traceTree
		for _, t := range trees {
			if t.id == *traceID {
				keep = append(keep, t)
			}
		}
		if len(keep) == 0 {
			fmt.Fprintf(os.Stderr, "schedtrace: trace %s not found (%d trace(s) in input)\n", *traceID, len(trees))
			os.Exit(1)
		}
		trees = keep
	}
	if len(trees) == 0 {
		fmt.Fprintln(os.Stderr, "schedtrace: no traced records in input")
		os.Exit(1)
	}
	for i, t := range trees {
		if *list {
			fmt.Printf("%s  spans=%d events=%d jobs=%d\n", t.id, t.spans, t.events, t.jobs)
			continue
		}
		if i > 0 {
			fmt.Println()
		}
		renderTree(os.Stdout, t)
	}
}

// node is one vertex of a reconstructed trace tree: a span, an attached
// point event, or a synthesized job record.
type node struct {
	kind     string // "span", "event", "wide", "job"
	name     string
	span     string // own span ID ("" for events)
	parent   string // parent span ID ("" for roots)
	start    time.Time
	dur      time.Duration
	attrs    map[string]any
	children []*node
	crit     bool
}

// end is the node's own finish time (start for point events).
func (n *node) end() time.Time { return n.start.Add(n.dur) }

// subtreeEnd is the latest finish time anywhere in the subtree — the
// quantity the critical path follows.
func (n *node) subtreeEnd() time.Time {
	e := n.end()
	for _, c := range n.children {
		if ce := c.subtreeEnd(); ce.After(e) {
			e = ce
		}
	}
	return e
}

// traceTree is one fully assembled trace.
type traceTree struct {
	id           string
	roots        []*node
	spans        int
	events       int
	jobs         int
	start        time.Time
	criticalPath []string
	critical     time.Duration
}

type builder struct {
	nodes map[string][]*node // trace ID -> flat node list
}

func newBuilder() *builder { return &builder{nodes: map[string][]*node{}} }

// addObs ingests one obs JSONL stream: every record with a "trace" key
// becomes a node; everything else (untraced legacy records, progress
// noise) is skipped. Torn trailing lines are tolerated per the module's
// crash-safety contract.
func (b *builder) addObs(r io.Reader) error {
	_, err := obs.ScanJSONLines(r, func(line []byte) error {
		var obj map[string]any
		if err := json.Unmarshal(line, &obj); err != nil {
			return nil // not a record; ignore
		}
		trace, _ := obj["trace"].(string)
		if trace == "" {
			return nil
		}
		n := &node{attrs: map[string]any{}}
		n.kind, _ = obj["kind"].(string)
		n.name, _ = obj["name"].(string)
		n.span, _ = obj["span"].(string)
		n.parent, _ = obj["parent"].(string)
		if ts, ok := obj["ts"].(string); ok {
			n.start, _ = time.Parse(time.RFC3339Nano, ts)
		}
		if ms, ok := obj["dur_ms"].(float64); ok {
			n.dur = time.Duration(ms * float64(time.Millisecond))
		}
		for k, v := range obj {
			switch k {
			case "ts", "kind", "name", "dur_ms", "trace", "span", "parent":
			default:
				n.attrs[k] = v
			}
		}
		// A point event's own span is the span that emitted it; attach
		// there by treating that span as the event's parent.
		if n.kind != "span" {
			n.parent = n.span
			n.span = ""
		}
		b.nodes[trace] = append(b.nodes[trace], n)
		return nil
	})
	return err
}

// addJobs synthesizes one node per journaled job that carries a trace.
// The node's parent is the job's admission span, so it nests under the
// http.request span when a JSONL file supplied it and floats to the root
// otherwise.
func (b *builder) addJobs(jobs []service.Job) {
	for _, j := range jobs {
		if j.Trace == "" {
			continue
		}
		n := &node{
			kind:   "job",
			name:   "job " + j.ID,
			parent: j.Span,
			start:  j.SubmittedAt,
			attrs: map[string]any{
				"kind":     string(j.Spec.Kind),
				"state":    string(j.State),
				"attempts": j.Attempts,
			},
		}
		if j.QueueWaitMs > 0 {
			n.attrs["queue_wait_ms"] = j.QueueWaitMs
		}
		if j.Error != "" {
			n.attrs["err"] = j.Error
		}
		if !j.FinishedAt.IsZero() {
			n.dur = j.FinishedAt.Sub(j.SubmittedAt)
		}
		b.nodes[j.Trace] = append(b.nodes[j.Trace], n)
	}
}

// loadStateJobs reads the daemon jobs journal (snapshot plus journal
// lines, later records winning) directly from disk — read-only, so it
// works on a live daemon's state directory without taking its locks.
func loadStateJobs(stateDir string) ([]service.Job, error) {
	dir := filepath.Join(stateDir, "jobs")
	units := map[string]json.RawMessage{}
	if data, err := os.ReadFile(filepath.Join(dir, "snapshot.json")); err == nil {
		var snap struct {
			Units map[string]json.RawMessage `json:"units"`
		}
		if err := json.Unmarshal(data, &snap); err == nil {
			for k, v := range snap.Units {
				units[k] = v
			}
		}
	}
	if f, err := os.Open(filepath.Join(dir, "journal.jsonl")); err == nil {
		defer f.Close()
		if _, err := obs.ScanJSONLines(f, func(line []byte) error {
			var jl struct {
				Key     string          `json:"key"`
				Payload json.RawMessage `json:"payload"`
			}
			if json.Unmarshal(line, &jl) == nil && jl.Key != "" {
				units[jl.Key] = jl.Payload
			}
			return nil
		}); err != nil {
			return nil, fmt.Errorf("reading jobs journal: %w", err)
		}
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	var jobs []service.Job
	for key, payload := range units {
		if !strings.HasPrefix(key, "job/") {
			continue
		}
		var j service.Job
		if json.Unmarshal(payload, &j) == nil && j.ID != "" {
			jobs = append(jobs, j)
		}
	}
	sort.Slice(jobs, func(a, b int) bool { return jobs[a].Seq < jobs[b].Seq })
	if len(jobs) == 0 && len(units) == 0 {
		return nil, fmt.Errorf("no jobs journal under %s (expected %s)", stateDir, dir)
	}
	return jobs, nil
}

// build assembles the flat node lists into trees: spans index by span
// ID, children attach under their parent (or float to the root when the
// parent span never made it into the input — a crash can lose the final
// buffered second of trace), siblings sort by start time, and the
// critical path — the chain of spans ending at the subtree that finishes
// last — is marked. Traces come back sorted by earliest start.
func (b *builder) build() []*traceTree {
	var trees []*traceTree
	for id, nodes := range b.nodes {
		t := &traceTree{id: id}
		byID := map[string]*node{}
		for _, n := range nodes {
			if n.kind == "span" && n.span != "" {
				byID[n.span] = n
			}
		}
		for _, n := range nodes {
			switch n.kind {
			case "span":
				t.spans++
			case "job":
				t.jobs++
			default:
				t.events++
			}
			if p, ok := byID[n.parent]; ok && n.parent != "" && p != n {
				p.children = append(p.children, n)
			} else {
				t.roots = append(t.roots, n)
			}
		}
		sortNodes(t.roots)
		for _, n := range nodes {
			sortNodes(n.children)
		}
		if len(t.roots) > 0 {
			t.start = t.roots[0].start
			// The critical path starts at the root whose subtree ends last.
			root := t.roots[0]
			for _, r := range t.roots[1:] {
				if r.subtreeEnd().After(root.subtreeEnd()) {
					root = r
				}
			}
			markCritical(root, t)
			t.critical = root.subtreeEnd().Sub(root.start)
		}
		trees = append(trees, t)
	}
	sort.Slice(trees, func(a, b int) bool {
		if !trees[a].start.Equal(trees[b].start) {
			return trees[a].start.Before(trees[b].start)
		}
		return trees[a].id < trees[b].id
	})
	return trees
}

func sortNodes(ns []*node) {
	sort.SliceStable(ns, func(a, b int) bool {
		if !ns[a].start.Equal(ns[b].start) {
			return ns[a].start.Before(ns[b].start)
		}
		return ns[a].name < ns[b].name
	})
}

// markCritical walks from the given root into the timed child (span or
// job — point events carry no duration) whose subtree finishes last,
// marking the chain. A parent span always outlasts its children, so the
// walk descends unconditionally: the marked leaf is the work that
// determined the trace's end-to-end time.
func markCritical(n *node, t *traceTree) {
	n.crit = true
	t.criticalPath = append(t.criticalPath, n.name)
	var next *node
	for _, c := range n.children {
		if c.kind != "span" && c.kind != "job" {
			continue
		}
		if next == nil || c.subtreeEnd().After(next.subtreeEnd()) {
			next = c
		}
	}
	if next != nil {
		markCritical(next, t)
	}
}

// renderTree pretty-prints one trace: a header, the indented span tree
// (critical-path nodes marked with '*'), and the critical-path summary.
func renderTree(w io.Writer, t *traceTree) {
	fmt.Fprintf(w, "trace %s — %d span(s), %d event(s)", t.id, t.spans, t.events)
	if t.jobs > 0 {
		fmt.Fprintf(w, ", %d job(s)", t.jobs)
	}
	fmt.Fprintf(w, ", %s end-to-end\n", fmtDur(t.critical))
	for i, r := range t.roots {
		renderNode(w, r, "", i == len(t.roots)-1)
	}
	if len(t.criticalPath) > 1 {
		fmt.Fprintf(w, "critical path: %s  (%s)\n", strings.Join(t.criticalPath, " → "), fmtDur(t.critical))
	}
}

func renderNode(w io.Writer, n *node, prefix string, last bool) {
	branch, childPrefix := "├─ ", prefix+"│  "
	if last {
		branch, childPrefix = "└─ ", prefix+"   "
	}
	line := prefix + branch + n.name
	if n.dur > 0 {
		line += " " + fmtDur(n.dur)
	}
	if n.crit {
		line += " *"
	}
	if attrs := fmtAttrs(n.attrs); attrs != "" {
		line += "  " + attrs
	}
	fmt.Fprintln(w, line)
	for i, c := range n.children {
		renderNode(w, c, childPrefix, i == len(n.children)-1)
	}
}

// fmtAttrs renders a node's attributes deterministically (sorted keys),
// capped so wide events do not wrap the tree off the terminal.
func fmtAttrs(attrs map[string]any) string {
	if len(attrs) == 0 {
		return ""
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	const maxKeys = 8
	parts := make([]string, 0, len(keys))
	for i, k := range keys {
		if i == maxKeys {
			parts = append(parts, fmt.Sprintf("+%d more", len(keys)-maxKeys))
			break
		}
		parts = append(parts, fmt.Sprintf("%s=%v", k, attrs[k]))
	}
	return "{" + strings.Join(parts, " ") + "}"
}

func fmtDur(d time.Duration) string {
	switch {
	case d <= 0:
		return "0ms"
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}
