package main

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"commsched/internal/obs"
	"commsched/internal/service"
)

// emitSampleTrace drives the real obs pipeline into a JSONL buffer: a
// root span with two children (one clearly longer), an event inside the
// long child, and one untraced record that must be ignored.
func emitSampleTrace(t *testing.T) (string, *bytes.Buffer) {
	t.Helper()
	var buf bytes.Buffer
	sink := obs.NewJSONL(&buf)
	obs.SetSink(sink)
	defer obs.SetSink(nil)
	obs.SeedIDs(42)

	root, ctx := obs.StartSpanCtx(context.Background(), "service.run", obs.F("job", "j-1"))
	short, _ := obs.StartSpanCtx(ctx, "core.schedule")
	short.End(obs.F("cc", 3.25))
	long, lctx := obs.StartSpanCtx(ctx, "simnet.sweep", obs.F("points", 2))
	obs.EventCtx(lctx, "simnet.sweep_point", obs.F("rate", 0.1))
	time.Sleep(3 * time.Millisecond)
	long.End()
	root.End()
	obs.Event("untraced.noise") // no trace: must not appear in any tree
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	return root.Context().Trace.String(), &buf
}

func TestTreeFromJSONL(t *testing.T) {
	traceID, buf := emitSampleTrace(t)

	b := newBuilder()
	if err := b.addObs(buf); err != nil {
		t.Fatal(err)
	}
	trees := b.build()
	if len(trees) != 1 {
		t.Fatalf("got %d trace(s), want exactly 1 (untraced records must be dropped)", len(trees))
	}
	tr := trees[0]
	if tr.id != traceID {
		t.Fatalf("trace %s, want %s", tr.id, traceID)
	}
	if tr.spans != 3 || tr.events != 1 {
		t.Fatalf("spans=%d events=%d, want 3 spans and 1 event", tr.spans, tr.events)
	}
	if len(tr.roots) != 1 || tr.roots[0].name != "service.run" {
		t.Fatalf("roots = %+v, want the single service.run root", tr.roots)
	}

	var out bytes.Buffer
	renderTree(&out, tr)
	text := out.String()
	for _, want := range []string{
		"trace " + traceID,
		"service.run",
		"core.schedule",
		"simnet.sweep",
		"simnet.sweep_point",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("rendered tree missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "untraced.noise") {
		t.Fatalf("untraced record leaked into the tree:\n%s", text)
	}
	// The sweep slept; the schedule did not — the critical path must run
	// root → sweep, never through core.schedule.
	if want := "critical path: service.run → simnet.sweep"; !strings.Contains(text, want) {
		t.Fatalf("missing %q:\n%s", want, text)
	}
	if strings.Contains(text, "core.schedule *") {
		t.Fatalf("core.schedule wrongly marked critical:\n%s", text)
	}
}

// TestJobNodesNestUnderAdmissionSpan is the stitched view: a journaled
// job whose Span matches a span in the JSONL hangs under it; a job whose
// admission span was never captured floats to the root of its own trace.
func TestJobNodesNestUnderAdmissionSpan(t *testing.T) {
	traceID, buf := emitSampleTrace(t)

	b := newBuilder()
	if err := b.addObs(buf); err != nil {
		t.Fatal(err)
	}
	// Find the root span's ID to pose as the admission span.
	rootSpan := ""
	for _, n := range b.nodes[traceID] {
		if n.name == "service.run" {
			rootSpan = n.span
		}
	}
	if rootSpan == "" {
		t.Fatal("no service.run span captured")
	}
	now := time.Now()
	b.addJobs([]service.Job{
		{
			ID: "job-stitched", Trace: traceID, Span: rootSpan,
			State: service.StateDone, QueueWaitMs: 1.5, Attempts: 2,
			SubmittedAt: now, FinishedAt: now.Add(5 * time.Millisecond),
		},
		{
			ID: "job-orphan", Trace: "1bf7651916cd43dd8448eb211c80319d", Span: "deadbeefdeadbeef",
			State: service.StateQueued, SubmittedAt: now,
		},
		{ID: "job-untraced", State: service.StateDone}, // no trace: dropped
	})
	trees := b.build()
	if len(trees) != 2 {
		t.Fatalf("got %d trace(s), want 2", len(trees))
	}
	byID := map[string]*traceTree{}
	for _, tr := range trees {
		byID[tr.id] = tr
	}
	main := byID[traceID]
	if main == nil || main.jobs != 1 {
		t.Fatalf("stitched trace missing its job node: %+v", main)
	}
	var out bytes.Buffer
	renderTree(&out, main)
	text := out.String()
	if !strings.Contains(text, "job job-stitched") || !strings.Contains(text, "queue_wait_ms=1.5") {
		t.Fatalf("job node not rendered with its status attrs:\n%s", text)
	}
	// Nested: the job's tree line must be indented under the root span,
	// not a sibling of it.
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, "─ job job-stitched") && !strings.HasPrefix(line, "   ") {
			t.Fatalf("job node not nested under its admission span:\n%s", text)
		}
	}
	orphan := byID["1bf7651916cd43dd8448eb211c80319d"]
	if orphan == nil || len(orphan.roots) != 1 || orphan.roots[0].name != "job job-orphan" {
		t.Fatalf("orphan job must form its own single-root trace: %+v", orphan)
	}
}

func TestLoadStateJobsMissingDir(t *testing.T) {
	if _, err := loadStateJobs(t.TempDir()); err == nil {
		t.Fatal("an empty directory must be reported, not treated as zero jobs")
	}
}
