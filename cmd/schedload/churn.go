package main

// Churn mode: instead of firing HTTP load at commschedd, schedload
// exercises the distributed lease layer the way a hostile operator
// would — spawn a small fleet of worker processes over one shared
// checkpoint directory, SIGKILL a fraction of them mid-run, restart the
// casualties under fresh worker IDs, and audit the wreckage. The
// assertions mirror the load-test ones, transposed to the lease
// protocol:
//
//   - exactly-once results: the merged journal holds every unit exactly
//     once, with zero determinism violations (byte-divergent duplicates);
//   - bounded healing: reclaim latency — how long a dead worker's lease
//     sat past its deadline before a survivor took it over — is reported
//     as p50/p99 in the same summary block as the queue-wait percentiles.
//
// Workers are re-execs of this binary (SCHEDLOAD_CHURN_WORKER=1), each
// running the same deterministic unit set through the lease pool, so
// the harness needs no daemon and no extra binaries.

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"time"

	"commsched/internal/lease"
	"commsched/internal/runstate"
)

// churnIdentity is the shared-store identity every churn worker (and
// the audit pass) must agree on.
func churnIdentity(units int, seed int64) runstate.Identity {
	return runstate.Identity{
		Command: "schedload-churn",
		Seeds:   map[string]int64{"churn": seed, "units": int64(units)},
	}
}

// churnUnitKey is the journal key of unit i.
func churnUnitKey(i int) string { return fmt.Sprintf("churn/u%04d", i) }

// churnValue is the deterministic payload of unit i: an iterated FNV
// hash of (seed, i). Any two executions of the unit — original,
// reclaim, or speculation — journal identical bytes.
func churnValue(i int, seed int64) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%d", seed, i)
	v := h.Sum64()
	for k := 0; k < 1000; k++ {
		v = v*6364136223846793005 + 1442695040888963407
	}
	return v
}

// churnWorkerMain is the re-exec entry point: run the unit set through
// the lease pool against the shared directory, then print reclaim
// latencies and pool stats as one JSON line on stdout.
func churnWorkerMain() int {
	dir := os.Getenv("SCHEDLOAD_CHURN_DIR")
	id := os.Getenv("SCHEDLOAD_CHURN_ID")
	units, _ := strconv.Atoi(os.Getenv("SCHEDLOAD_CHURN_UNITS"))
	seed, _ := strconv.ParseInt(os.Getenv("SCHEDLOAD_CHURN_SEED"), 10, 64)
	ttl, _ := time.ParseDuration(os.Getenv("SCHEDLOAD_CHURN_TTL"))
	unitDur, _ := time.ParseDuration(os.Getenv("SCHEDLOAD_CHURN_UNIT_DUR"))
	if dir == "" || id == "" || units <= 0 {
		fmt.Fprintln(os.Stderr, "schedload: churn worker mis-invoked")
		return 2
	}
	st, err := runstate.OpenWorker(dir, churnIdentity(units, seed), id)
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedload:", err)
		return 1
	}
	defer st.Close()
	runstate.SetStore(st)
	defer runstate.SetStore(nil)
	mgr, err := lease.Open(dir, id, ttl)
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedload:", err)
		return 1
	}
	pool := lease.NewPool(mgr, lease.PoolOptions{})
	err = pool.RunLoop(context.Background(), "churn", units, func(ctx context.Context, i int) error {
		key := churnUnitKey(i)
		var v uint64
		if runstate.Lookup(key, &v) {
			return nil
		}
		// Real work takes time; simulate it so kills land mid-unit and
		// mid-renewal, not in the gaps.
		time.Sleep(unitDur)
		runstate.RecordCtx(ctx, key, churnValue(i, seed))
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedload:", err)
		return 1
	}
	var report churnWorkerReport
	for _, d := range mgr.ReclaimLatencies() {
		report.ReclaimMs = append(report.ReclaimMs, float64(d)/float64(time.Millisecond))
	}
	report.Stats = pool.Stats()
	json.NewEncoder(os.Stdout).Encode(report) //nolint:errcheck // stdout
	return 0
}

// churnWorkerReport is the JSON line a churn worker prints on exit.
type churnWorkerReport struct {
	ReclaimMs []float64       `json:"reclaim_ms"`
	Stats     lease.PoolStats `json:"stats"`
}

// churnConfig is the parent-side knob set.
type churnConfig struct {
	Fraction float64 // of workers SIGKILLed mid-run
	Workers  int
	Units    int
	Seed     int64
	TTL      time.Duration
	UnitDur  time.Duration
	Dir      string // "" = fresh temp dir
}

// runChurn drives the kill-and-restart scenario and fills the summary.
func runChurn(cfg churnConfig) (int, summary) {
	sum := summary{}
	fail := func(format string, args ...any) (int, summary) {
		sum.Violations = append(sum.Violations, fmt.Sprintf(format, args...))
		return 1, sum
	}
	dir := cfg.Dir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "schedload-churn-*")
		if err != nil {
			return fail("temp dir: %v", err)
		}
		defer os.RemoveAll(dir)
	}
	self, err := os.Executable()
	if err != nil {
		return fail("locating own binary: %v", err)
	}
	start := time.Now()

	spawn := func(gen, idx int) (*exec.Cmd, *os.File, error) {
		out, err := os.CreateTemp(dir, "worker-out-*")
		if err != nil {
			return nil, nil, err
		}
		cmd := exec.Command(self)
		cmd.Env = append(os.Environ(),
			"SCHEDLOAD_CHURN_WORKER=1",
			"SCHEDLOAD_CHURN_DIR="+dir,
			fmt.Sprintf("SCHEDLOAD_CHURN_ID=g%d-w%d", gen, idx),
			fmt.Sprintf("SCHEDLOAD_CHURN_UNITS=%d", cfg.Units),
			fmt.Sprintf("SCHEDLOAD_CHURN_SEED=%d", cfg.Seed),
			"SCHEDLOAD_CHURN_TTL="+cfg.TTL.String(),
			"SCHEDLOAD_CHURN_UNIT_DUR="+cfg.UnitDur.String(),
		)
		cmd.Stdout = out
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			out.Close()
			return nil, nil, err
		}
		return cmd, out, nil
	}

	type worker struct {
		cmd *exec.Cmd
		out *os.File
	}
	var fleet []worker
	for w := 0; w < cfg.Workers; w++ {
		cmd, out, err := spawn(0, w)
		if err != nil {
			return fail("spawning worker %d: %v", w, err)
		}
		fleet = append(fleet, worker{cmd, out})
	}

	// Kill the first ceil(fraction×W) workers once they have journaled
	// something (so the kill lands mid-run, with leases held), then
	// restart each casualty under a fresh ID — the crashed IDs stay dead,
	// exactly like a real replacement process.
	victims := int(cfg.Fraction*float64(cfg.Workers) + 0.999999)
	if victims > cfg.Workers {
		victims = cfg.Workers
	}
	for v := 0; v < victims; v++ {
		id := fmt.Sprintf("g0-w%d", v)
		journal := filepath.Join(dir, "journal-"+id+".jsonl")
		deadline := time.Now().Add(30 * time.Second)
		for {
			if fi, err := os.Stat(journal); err == nil && fi.Size() > 0 {
				break
			}
			if time.Now().After(deadline) || fleet[v].cmd.ProcessState != nil {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		fleet[v].cmd.Process.Kill() //nolint:errcheck // racing normal exit is fine
		fleet[v].cmd.Wait()         //nolint:errcheck // expected to be the kill signal
		fleet[v].out.Close()
		os.Remove(fleet[v].out.Name())
		cmd, out, err := spawn(1, v)
		if err != nil {
			return fail("restarting worker %d: %v", v, err)
		}
		fleet[v] = worker{cmd, out}
	}

	var reclaims []time.Duration
	for idx, wk := range fleet {
		if err := wk.cmd.Wait(); err != nil {
			return fail("worker %d exited: %v", idx, err)
		}
		if _, err := wk.out.Seek(0, 0); err == nil {
			sc := bufio.NewScanner(wk.out)
			for sc.Scan() {
				var rep churnWorkerReport
				if json.Unmarshal(sc.Bytes(), &rep) == nil {
					for _, ms := range rep.ReclaimMs {
						reclaims = append(reclaims, time.Duration(ms*float64(time.Millisecond)))
					}
					sum.Done += int(rep.Stats.Executed)
					sum.Accepted += int(rep.Stats.Executed + rep.Stats.Replayed)
				}
			}
		}
		wk.out.Close()
		os.Remove(wk.out.Name())
	}
	sum.Submitted = cfg.Units
	sum.ReclaimP50Ms, sum.ReclaimP99Ms, _ = percentiles(reclaims)
	sum.Reclaims = len(reclaims)
	sum.ElapsedMs = float64(time.Since(start)) / float64(time.Millisecond)

	// Audit the merged journal with a read-only shared-mode store: every
	// unit present exactly once (highest token winning), byte-identical
	// across duplicates, values matching an independent recomputation.
	st, err := runstate.OpenWorker(dir, churnIdentity(cfg.Units, cfg.Seed), "audit")
	if err != nil {
		return fail("audit open: %v", err)
	}
	defer st.Close()
	for i := 0; i < cfg.Units; i++ {
		var v uint64
		if !st.Lookup(churnUnitKey(i), &v) {
			sum.Lost = append(sum.Lost, churnUnitKey(i))
			continue
		}
		if want := churnValue(i, cfg.Seed); v != want {
			sum.Violations = append(sum.Violations,
				fmt.Sprintf("unit %s: merged value %d, want %d", churnUnitKey(i), v, want))
		}
	}
	stats := st.Stats()
	if len(sum.Lost) > 0 {
		sum.Violations = append(sum.Violations,
			fmt.Sprintf("%d unit(s) missing from the merged journal", len(sum.Lost)))
	}
	if stats.DeterminismViolations > 0 {
		sum.Violations = append(sum.Violations,
			fmt.Sprintf("%d determinism violation(s): duplicated executions journaled divergent bytes", stats.DeterminismViolations))
	}
	if victims > 0 && sum.Reclaims == 0 {
		sum.Violations = append(sum.Violations,
			"killed workers but observed zero lease reclaims — the healing path never ran")
	}
	if len(sum.Violations) > 0 {
		return 1, sum
	}
	return 0, sum
}
