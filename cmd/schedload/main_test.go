package main

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"commsched/internal/service"
)

func startDaemon(t *testing.T) *httptest.Server {
	t.Helper()
	svc, err := service.New(service.Config{
		Limits:  service.Limits{QueueDepth: 64},
		Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Drain(5 * time.Second) }) //nolint:errcheck // teardown
	ts := httptest.NewServer(svc.Mux(nil))
	t.Cleanup(ts.Close)
	return ts
}

// TestRunTraceContinuity drives the full harness against an in-process
// daemon: every accepted submission must come back in its own trace
// (echoed header and journaled job record), and the summary must report
// the daemon-measured queue-wait percentiles.
func TestRunTraceContinuity(t *testing.T) {
	ts := startDaemon(t)
	code, sum := run(ts.URL, 20, 4, 2, 7, 10*time.Second, time.Minute, 10*time.Second, 50, false)
	if code != 0 {
		t.Fatalf("run failed: %+v", sum)
	}
	if sum.Accepted == 0 {
		t.Fatal("nothing accepted")
	}
	if sum.TraceMismatches != 0 {
		t.Fatalf("%d trace mismatch(es): %+v", sum.TraceMismatches, sum)
	}
	if sum.Done+sum.Failed != sum.Accepted {
		t.Fatalf("accepted %d but only %d terminal", sum.Accepted, sum.Done+sum.Failed)
	}
	if sum.QueueP99Ms < sum.QueueP50Ms {
		t.Fatalf("queue percentiles inverted: p50=%v p99=%v", sum.QueueP50Ms, sum.QueueP99Ms)
	}
}

// TestTraceparentForDeterministic pins the mix contract: the traceparent
// stream is a pure function of (seed, i), distinct across i, and valid.
func TestTraceparentForDeterministic(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		tp := traceparentFor(i, 7)
		if tp != traceparentFor(i, 7) {
			t.Fatalf("traceparentFor(%d) not deterministic", i)
		}
		if len(tp) != 55 || !strings.HasPrefix(tp, "00-") || !strings.HasSuffix(tp, "-01") {
			t.Fatalf("malformed traceparent %q", tp)
		}
		id := traceOf(tp)
		if len(id) != 32 || id == strings.Repeat("0", 32) {
			t.Fatalf("bad trace ID %q", id)
		}
		if seen[id] {
			t.Fatalf("trace ID %s repeats within the mix", id)
		}
		seen[id] = true
	}
	if traceOf(traceparentFor(0, 1)) == traceOf(traceparentFor(0, 2)) {
		t.Fatal("different seeds produced the same trace ID")
	}
}
