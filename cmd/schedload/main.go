// Command schedload is the load-test harness for commschedd: it fires a
// seeded, multi-tenant mix of job submissions at a running daemon with
// bounded concurrency, honors the daemon's backpressure (429 +
// Retry-After), waits for every accepted job to reach a terminal state,
// and asserts the robustness contract:
//
//   - zero lost jobs: every accepted submission is retrievable and
//     reaches done/failed (nothing vanishes, nothing is duplicated);
//   - bounded admission latency: the p99 POST /jobs round trip stays
//     under -p99 even while the queue is pushing back;
//   - backpressure over collapse: at the queue watermark the daemon
//     answers 429, not timeouts;
//   - trace continuity: every submission carries a fresh seeded W3C
//     traceparent, and the daemon must echo the same trace ID back and
//     journal it on the job record — a mismatch is a violation.
//
// Beyond admission latency, the summary reports the daemon-measured
// queue wait (time from accept to run start, journaled per job as
// queue_wait_ms) as p50/p99 — the scheduling-delay half of the SLO that
// client-side round-trip times cannot see.
//
// It prints a JSON summary to stdout and exits nonzero when any
// assertion fails, so CI can gate on it directly:
//
//	schedload -base http://localhost:8844 -n 1000 -c 32 -tenants 8 -seed 1
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"

	"commsched/internal/service"
)

func main() {
	var (
		base     = flag.String("base", "http://localhost:8844", "daemon base URL")
		n        = flag.Int("n", 1000, "total submissions")
		c        = flag.Int("c", 32, "concurrent submitters")
		tenants  = flag.Int("tenants", 8, "distinct tenants in the mix")
		seed     = flag.Int64("seed", 1, "mix seed (same seed = same submission stream)")
		p99Limit = flag.Duration("p99", 2*time.Second, "max acceptable p99 admission latency")
		wait     = flag.Duration("wait", 2*time.Minute, "how long to wait for accepted jobs to finish")
		reqTO    = flag.Duration("request-timeout", 10*time.Second, "per-request timeout")
		maxRetry = flag.Int("max-retries", 50, "max backpressure retries per submission before counting it rejected")
		submit   = flag.Bool("submit-only", false, "submit without waiting for completion (drain/restart scenarios: the daemon may go away mid-run)")

		churn        = flag.Float64("churn", 0, "distributed-lease churn mode: SIGKILL this fraction of workers mid-run and restart them; audits exactly-once results and reports reclaim latency p50/p99 (skips the HTTP load test)")
		churnWorkers = flag.Int("churn-workers", 3, "worker processes in the churn fleet")
		churnUnits   = flag.Int("churn-units", 48, "units in the churn workload")
		churnTTL     = flag.Duration("churn-ttl", time.Second, "lease TTL for churn workers")
		churnUnitDur = flag.Duration("churn-unit-dur", 50*time.Millisecond, "simulated work per churn unit (kills must land mid-unit)")
	)
	if os.Getenv("SCHEDLOAD_CHURN_WORKER") == "1" {
		os.Exit(churnWorkerMain())
	}
	flag.Parse()
	if *churn > 0 {
		code, summary := runChurn(churnConfig{
			Fraction: *churn, Workers: *churnWorkers, Units: *churnUnits,
			Seed: *seed, TTL: *churnTTL, UnitDur: *churnUnitDur,
		})
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(summary) //nolint:errcheck // stdout
		os.Exit(code)
	}
	code, summary := run(*base, *n, *c, *tenants, *seed, *p99Limit, *wait, *reqTO, *maxRetry, *submit)
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	enc.Encode(summary) //nolint:errcheck // stdout
	os.Exit(code)
}

// summary is the machine-readable verdict.
type summary struct {
	Submitted  int            `json:"submitted"`
	Accepted   int            `json:"accepted"`
	Rejected   map[string]int `json:"rejected,omitempty"`
	Retries    int            `json:"backpressure_retries"`
	Errors     int            `json:"transport_errors"`
	Done       int            `json:"done"`
	Failed     int            `json:"failed"`
	Lost       []string       `json:"lost,omitempty"`
	Duplicated []string       `json:"duplicated,omitempty"`
	P50Ms      float64        `json:"p50_ms"`
	P99Ms      float64        `json:"p99_ms"`
	MaxMs      float64        `json:"max_ms"`
	// TraceMismatches counts accepted submissions whose echoed or
	// journaled trace ID differed from the traceparent we sent.
	TraceMismatches int `json:"trace_mismatches"`
	// QueueP50Ms / QueueP99Ms are percentiles of the daemon's own
	// queue-wait measurement (accept → run start) across finished jobs.
	QueueP50Ms float64 `json:"queue_p50_ms"`
	QueueP99Ms float64 `json:"queue_p99_ms"`
	// Reclaims and ReclaimP50Ms/ReclaimP99Ms report, in churn mode, how
	// many expired leases the surviving workers took over and how long
	// past their deadlines the dead leases sat first.
	Reclaims     int      `json:"reclaims,omitempty"`
	ReclaimP50Ms float64  `json:"reclaim_p50_ms,omitempty"`
	ReclaimP99Ms float64  `json:"reclaim_p99_ms,omitempty"`
	ElapsedMs    float64  `json:"elapsed_ms"`
	Violations   []string `json:"violations,omitempty"`
}

// traceparentFor mints submission i's W3C traceparent from the mix seed:
// deterministic per (seed, i), distinct across submissions, never the
// all-zero IDs the spec forbids.
func traceparentFor(i int, seed int64) string {
	rng := rand.New(rand.NewSource(seed*6364136223846793005 + int64(i)*1442695040888963407 + 1))
	var tr [16]byte
	var sp [8]byte
	for b := range tr {
		tr[b] = byte(rng.Intn(256))
	}
	for b := range sp {
		sp[b] = byte(rng.Intn(256))
	}
	tr[15] |= 1
	sp[7] |= 1
	return fmt.Sprintf("00-%x-%x-01", tr, sp)
}

// traceOf extracts the 32-hex trace ID from a traceparent header ("" when
// the header is not even shaped like one).
func traceOf(tp string) string {
	if len(tp) < 35 || tp[2] != '-' || tp[35] != '-' {
		return ""
	}
	return tp[3:35]
}

// specFor builds submission i of the seeded mix: a rotating tenant and a
// deterministic blend of cheap evaluate jobs, schedule searches, and the
// occasional short sweep — enough variety to exercise the batcher, the
// search path, and the checkpointing sweep path at once.
func specFor(i, tenants int, seed int64) service.JobSpec {
	rng := rand.New(rand.NewSource(seed + int64(i)*7919))
	spec := service.JobSpec{
		Tenant: "t" + strconv.Itoa(i%max(1, tenants)),
		Seed:   rng.Int63n(1 << 30),
	}
	switch {
	case i%10 < 6: // 60%: evaluate a fixed mapping on a small ring
		spec.Kind = service.KindEvaluate
		spec.Generate = &service.GenerateSpec{Kind: "ring", Switches: 8}
		spec.M = 4
		// A random rotation of a balanced assignment: every cluster keeps
		// two switches, so the mapping is always valid while the batch
		// still sees varied inputs.
		rot := rng.Intn(8)
		spec.Assign = make([]int, 8)
		for s := range spec.Assign {
			spec.Assign[s] = ((s + rot) / 2) % 4
		}
	case i%10 < 9: // 30%: schedule a small irregular network
		spec.Kind = service.KindSchedule
		spec.Generate = &service.GenerateSpec{Kind: "irregular", Switches: 8, Degree: 3, Seed: 1 + int64(i%4)}
		spec.Clusters = 4
		spec.Heuristic = "greedy"
	default: // 10%: a short two-point sweep
		spec.Kind = service.KindSweep
		spec.Generate = &service.GenerateSpec{Kind: "ring", Switches: 8}
		spec.Clusters = 4
		spec.Heuristic = "greedy"
		spec.Rates = []float64{0.1, 0.2}
		spec.WarmupCycles = 50
		spec.MeasureCycles = 200
	}
	return spec
}

func run(base string, n, c, tenants int, seed int64, p99Limit, wait, reqTO time.Duration, maxRetry int, submitOnly bool) (int, summary) {
	client := &http.Client{Timeout: reqTO}
	sum := summary{Submitted: n, Rejected: map[string]int{}}
	var (
		mu        sync.Mutex
		accepted  []string
		latencies []time.Duration
	)
	start := time.Now()
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < c; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				tp := traceparentFor(i, seed)
				id, lat, retries, reason, traceOK, terr := submit(client, base, specFor(i, tenants, seed), tp, maxRetry)
				mu.Lock()
				sum.Retries += retries
				switch {
				case terr != nil:
					sum.Errors++
				case id == "":
					sum.Rejected[reason]++
				default:
					accepted = append(accepted, id)
					latencies = append(latencies, lat)
					if !traceOK {
						sum.TraceMismatches++
					}
				}
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	sum.Accepted = len(accepted)
	sum.P50Ms, sum.P99Ms, sum.MaxMs = percentiles(latencies)
	sum.Duplicated = findDuplicates(accepted)

	// A submit-only run feeds drain/restart scenarios: the daemon is
	// expected to go away mid-storm, so skip the completion audit (and
	// the violations that presume a daemon still answering).
	if submitOnly {
		sum.ElapsedMs = float64(time.Since(start)) / float64(time.Millisecond)
		if len(sum.Duplicated) > 0 {
			sum.Violations = append(sum.Violations, fmt.Sprintf("%d duplicated job ID(s)", len(sum.Duplicated)))
			return 1, sum
		}
		return 0, sum
	}

	// Wait for every accepted job to reach a terminal state, then audit
	// the daemon's ledger against ours.
	deadline := time.Now().Add(wait)
	pending := map[string]bool{}
	for _, id := range accepted {
		pending[id] = true
	}
	var queueWaits []time.Duration
	for len(pending) > 0 && time.Now().Before(deadline) {
		states, err := listStates(client, base)
		if err != nil {
			time.Sleep(500 * time.Millisecond)
			continue
		}
		for id := range pending {
			switch states[id].State {
			case "done":
				sum.Done++
				delete(pending, id)
				queueWaits = append(queueWaits, time.Duration(states[id].QueueWaitMs*float64(time.Millisecond)))
			case "failed":
				sum.Failed++
				delete(pending, id)
				queueWaits = append(queueWaits, time.Duration(states[id].QueueWaitMs*float64(time.Millisecond)))
			}
		}
		if len(pending) > 0 {
			time.Sleep(200 * time.Millisecond)
		}
	}
	sum.QueueP50Ms, sum.QueueP99Ms, _ = percentiles(queueWaits)
	for id := range pending {
		sum.Lost = append(sum.Lost, id)
	}
	sort.Strings(sum.Lost)
	sum.ElapsedMs = float64(time.Since(start)) / float64(time.Millisecond)

	if len(sum.Lost) > 0 {
		sum.Violations = append(sum.Violations, fmt.Sprintf("%d accepted job(s) never reached a terminal state", len(sum.Lost)))
	}
	if len(sum.Duplicated) > 0 {
		sum.Violations = append(sum.Violations, fmt.Sprintf("%d duplicated job ID(s)", len(sum.Duplicated)))
	}
	if p99 := time.Duration(sum.P99Ms * float64(time.Millisecond)); p99 > p99Limit {
		sum.Violations = append(sum.Violations, fmt.Sprintf("p99 admission latency %s exceeds %s", p99, p99Limit))
	}
	if sum.Errors > 0 {
		sum.Violations = append(sum.Violations, fmt.Sprintf("%d transport error(s): the daemon must answer (even with 429), not hang or drop connections", sum.Errors))
	}
	if sum.TraceMismatches > 0 {
		sum.Violations = append(sum.Violations, fmt.Sprintf("%d accepted submission(s) came back in the wrong trace: the daemon must echo and journal the client's trace ID", sum.TraceMismatches))
	}
	if len(sum.Violations) > 0 {
		return 1, sum
	}
	return 0, sum
}

// submit POSTs one job with the given traceparent, retrying on
// backpressure per the daemon's own Retry-After advice (capped so a
// drain does not strand the harness). Returns the accepted job ID, the
// first-accept admission latency, the number of backpressure retries,
// the final rejection reason when the job was never accepted, whether
// the daemon kept the submission in the client's trace (echoed header
// AND journaled job record), and any transport error.
func submit(client *http.Client, base string, spec service.JobSpec, tp string, maxRetry int) (string, time.Duration, int, string, bool, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return "", 0, 0, "", false, err
	}
	retries := 0
	for {
		req, err := http.NewRequest("POST", base+"/jobs", bytes.NewReader(body))
		if err != nil {
			return "", 0, retries, "", false, err
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("traceparent", tp)
		t0 := time.Now()
		resp, err := client.Do(req)
		if err != nil {
			return "", 0, retries, "", false, err
		}
		lat := time.Since(t0)
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusAccepted:
			var job service.Job
			if err := json.Unmarshal(data, &job); err != nil || job.ID == "" {
				return "", 0, retries, "", false, fmt.Errorf("202 with undecodable job: %v", err)
			}
			want := traceOf(tp)
			traceOK := traceOf(resp.Header.Get("traceparent")) == want && job.Trace == want
			return job.ID, lat, retries, "", traceOK, nil
		case resp.StatusCode == http.StatusTooManyRequests && retries < maxRetry:
			retries++
			time.Sleep(retryAfter(resp, 50*time.Millisecond))
		default:
			var ae struct {
				Reason string `json:"reason"`
			}
			json.Unmarshal(data, &ae) //nolint:errcheck // best-effort reason
			if ae.Reason == "" {
				ae.Reason = strconv.Itoa(resp.StatusCode)
			}
			return "", 0, retries, ae.Reason, false, nil
		}
	}
}

// retryAfter parses the Retry-After header, clamped to keep the harness
// brisk (the daemon's advice is sized for polite clients, not load tests).
func retryAfter(resp *http.Response, fallback time.Duration) time.Duration {
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs > 0 {
			d := time.Duration(secs) * time.Second
			if d > 500*time.Millisecond {
				d = 500 * time.Millisecond
			}
			return d
		}
	}
	return fallback
}

// jobStatus is the slice of a job record the audit loop needs.
type jobStatus struct {
	State       string
	QueueWaitMs float64
}

// listStates fetches every job's state (and measured queue wait) in one call.
func listStates(client *http.Client, base string) (map[string]jobStatus, error) {
	resp, err := client.Get(base + "/jobs")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /jobs: %s", resp.Status)
	}
	var doc struct {
		Jobs []struct {
			ID          string  `json:"id"`
			State       string  `json:"state"`
			QueueWaitMs float64 `json:"queue_wait_ms"`
		} `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, err
	}
	out := make(map[string]jobStatus, len(doc.Jobs))
	for _, j := range doc.Jobs {
		out[j.ID] = jobStatus{State: j.State, QueueWaitMs: j.QueueWaitMs}
	}
	return out, nil
}

func percentiles(lats []time.Duration) (p50, p99, maxMs float64) {
	if len(lats) == 0 {
		return 0, 0, 0
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	idx := func(p float64) int {
		i := int(p * float64(len(lats)-1))
		return i
	}
	return ms(lats[idx(0.50)]), ms(lats[idx(0.99)]), ms(lats[len(lats)-1])
}

func findDuplicates(ids []string) []string {
	seen := map[string]int{}
	for _, id := range ids {
		seen[id]++
	}
	var dups []string
	for id, n := range seen {
		if n > 1 {
			dups = append(dups, id)
		}
	}
	sort.Strings(dups)
	return dups
}
