package main

import (
	"os"
	"strings"
	"testing"
)

func capture(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var b strings.Builder
		buf := make([]byte, 64<<10)
		for {
			n, err := r.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		done <- b.String()
	}()
	ferr := f()
	w.Close()
	os.Stdout = old
	out := <-done
	r.Close()
	return out, ferr
}

func TestParseApps(t *testing.T) {
	apps, err := parseApps("cfd:16:8:0.005, vod:8:0.05:0.4")
	if err != nil {
		t.Fatal(err)
	}
	if len(apps) != 2 || apps[0].Name != "cfd" || apps[1].Processes != 8 {
		t.Fatalf("apps = %+v", apps)
	}
	for _, bad := range []string{"", "x:1:2", "x:a:1:1", "x:1:a:1", "x:1:1:a"} {
		if _, err := parseApps(bad); err == nil {
			t.Errorf("parseApps(%q) accepted", bad)
		}
	}
}

func TestRunNetworkBoundMix(t *testing.T) {
	out, err := capture(t, func() error {
		return run(8, 3, 21, 0.5, 4, "vod:16:0.05:0.4,voe:16:0.05:0.4", 7)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "network-bound") || !strings.Contains(out, "communication-aware-tabu") {
		t.Fatalf("network-bound dispatch missing:\n%s", out)
	}
}

func TestRunCPUBoundMix(t *testing.T) {
	out, err := capture(t, func() error {
		return run(8, 3, 21, 0.5, 4, "cfd:16:8:0.001", 7)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "cpu-bound") || !strings.Contains(out, "computation-aware-mct") {
		t.Fatalf("cpu-bound dispatch missing:\n%s", out)
	}
	if !strings.Contains(out, "fast hosts") {
		t.Fatalf("placement footprint missing:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := capture(t, func() error {
		return run(8, 3, 21, 0.5, 4, "garbage", 7)
	}); err == nil {
		t.Fatal("bad app spec accepted")
	}
	if _, err := capture(t, func() error {
		return run(8, 3, 21, 1.5, 4, "a:8:1:0.1", 7)
	}); err == nil {
		t.Fatal("bad fastfrac accepted")
	}
	if _, err := capture(t, func() error {
		return run(8, 3, 21, 0.5, 4, "a:999:1:0.1", 7)
	}); err == nil {
		t.Fatal("over-capacity mix accepted")
	}
}
