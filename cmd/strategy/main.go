// Command strategy runs the integrated scheduling strategy of the paper's
// Section 1: it analyzes an application mix on a heterogeneous NOW,
// reports which resource is the bottleneck, and dispatches to the
// computation-aware or communication-aware scheduler.
//
// Applications are given as name:processes:cpu:comm tuples:
//
//	strategy -apps "cfd:16:8:0.005,vod:16:0.05:0.4"
//	strategy -switches 12 -fastfrac 0.5 -speedup 4 -apps "render:24:6:0.002"
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"commsched/internal/distance"
	"commsched/internal/routing"
	"commsched/internal/strategy"
	"commsched/internal/topology"
)

func main() {
	var (
		switches = flag.Int("switches", 12, "switch count")
		degree   = flag.Int("degree", 3, "inter-switch degree")
		topoSeed = flag.Int64("toposeed", 21, "topology seed")
		fastFrac = flag.Float64("fastfrac", 0.5, "fraction of workstations that are fast")
		speedup  = flag.Float64("speedup", 4, "relative speed of the fast workstations")
		apps     = flag.String("apps", "cfd:16:8:0.005,vod:16:0.05:0.4", "comma-separated name:processes:cpu:comm tuples")
		seed     = flag.Int64("seed", 7, "scheduling seed")
	)
	flag.Parse()
	if err := run(*switches, *degree, *topoSeed, *fastFrac, *speedup, *apps, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "strategy:", err)
		os.Exit(1)
	}
}

func run(switches, degree int, topoSeed int64, fastFrac, speedup float64, appSpec string, seed int64) error {
	applications, err := parseApps(appSpec)
	if err != nil {
		return err
	}
	if fastFrac < 0 || fastFrac > 1 || speedup <= 0 {
		return fmt.Errorf("invalid heterogeneity: fastfrac=%v speedup=%v", fastFrac, speedup)
	}
	net, err := topology.RandomIrregular(switches, degree, rand.New(rand.NewSource(topoSeed)), topology.Config{})
	if err != nil {
		return err
	}
	rt, err := routing.NewUpDown(net, -1)
	if err != nil {
		return err
	}
	tab, err := distance.Compute(net, rt)
	if err != nil {
		return err
	}
	speeds := make([]float64, net.Hosts())
	cut := int(fastFrac * float64(net.Hosts()))
	for h := range speeds {
		if h < cut {
			speeds[h] = speedup
		} else {
			speeds[h] = 1
		}
	}
	sys, err := strategy.NewSystem(net, rt, tab, speeds)
	if err != nil {
		return err
	}
	fmt.Printf("system: %d switches, %d workstations (%d fast × %.1fx)\n",
		net.Switches(), net.Hosts(), cut, speedup)
	for _, a := range applications {
		fmt.Printf("  %-10s %3d processes, cpu %.3f, comm %.3f flits/cycle\n",
			a.Name, a.Processes, a.CPUDemand, a.CommIntensity)
	}
	pl, err := sys.Schedule(applications, seed)
	if err != nil {
		return err
	}
	fmt.Printf("\nanalysis: cpu utilization %.2f, network utilization %.2f → %s\n",
		pl.Analysis.CPUUtilization, pl.Analysis.NetworkUtilization, pl.Analysis.Bottleneck)
	fmt.Printf("dispatched to %s\n", pl.Scheduler)
	// Per-application placement footprint.
	for c, a := range applications {
		switchesUsed := map[int]bool{}
		fast := 0
		for p, cl := range pl.ClusterOf {
			if cl != c {
				continue
			}
			h := pl.HostOf[p]
			switchesUsed[net.HostSwitch(h)] = true
			if h < cut {
				fast++
			}
		}
		fmt.Printf("  %-10s on %d switches, %d/%d processes on fast hosts\n",
			a.Name, len(switchesUsed), fast, a.Processes)
	}
	return nil
}

// parseApps parses name:processes:cpu:comm tuples.
func parseApps(s string) ([]strategy.Application, error) {
	var out []strategy.Application
	for _, tuple := range strings.Split(s, ",") {
		parts := strings.Split(strings.TrimSpace(tuple), ":")
		if len(parts) != 4 {
			return nil, fmt.Errorf("bad application %q (want name:processes:cpu:comm)", tuple)
		}
		procs, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, fmt.Errorf("bad process count in %q", tuple)
		}
		cpu, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			return nil, fmt.Errorf("bad cpu demand in %q", tuple)
		}
		comm, err := strconv.ParseFloat(parts[3], 64)
		if err != nil {
			return nil, fmt.Errorf("bad comm intensity in %q", tuple)
		}
		out = append(out, strategy.Application{
			Name: parts[0], Processes: procs, CPUDemand: cpu, CommIntensity: comm,
		})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no applications given")
	}
	return out, nil
}
