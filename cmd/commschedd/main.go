// Command commschedd is the scheduling-as-a-service daemon: a long-lived,
// multi-tenant HTTP/JSON front end over the commsched core. Clients
// submit topology + workload specs; the daemon runs mapping searches and
// simulation sweeps as queued jobs and serves results, progress, and
// telemetry from one port.
//
// It is built to stay up and degrade gracefully rather than fall over:
//
//   - a bounded queue with backpressure (429 + Retry-After), per-tenant
//     rate limits and quotas, and a heap watermark that sheds load;
//   - with -state, every job transition is journaled before the client
//     sees a 202: a SIGKILLed daemon restarts with no job lost, queued
//     jobs re-enqueued, and interrupted jobs resumed from checkpoints;
//   - per-job deadlines, retries, and error budgets via -timeout,
//     -retries, -errorbudget;
//   - SIGTERM drains: admission closes (503 from /readyz), running jobs
//     get -drain-timeout to finish or park, state is flushed, exit 0.
//
// Usage:
//
//	commschedd -addr :8844 -state /var/lib/commschedd
//	curl -s localhost:8844/readyz
//	curl -s -X POST localhost:8844/jobs -d '{"kind":"schedule","generate":{"kind":"rings","rings":4,"ring_size":6,"bridges":1},"clusters":4,"seed":42}'
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"commsched/internal/obs"
	"commsched/internal/par"
	"commsched/internal/service"
	"commsched/internal/telemetry"
)

func main() {
	var (
		addr    = flag.String("addr", ":8844", "HTTP listen address (API + telemetry; :0 picks a free port)")
		state   = flag.String("state", "", "state directory for durable jobs (empty = in-memory only; jobs do not survive a restart)")
		workers = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")

		queueDepth = flag.Int("queue", 64, "max queued jobs before submissions get 429 + Retry-After")
		rate       = flag.Float64("rate", 0, "per-tenant sustained submissions/second (0 = unlimited)")
		burst      = flag.Int("burst", 0, "per-tenant burst size (0 = derived from -rate)")
		tenantJobs = flag.Int("tenant-jobs", 0, "per-tenant cap on queued+running jobs (0 = unlimited)")
		shedMB     = flag.Int("shed-mb", 0, "heap watermark in MiB: above it new work is shed with 429 (0 = off)")

		timeout     = flag.Duration("timeout", 2*time.Minute, "per-unit deadline inside a job (one search, one sweep point); 0 disables")
		retries     = flag.Int("retries", 1, "per-unit retry budget for panics, timeouts, and transient errors")
		errorBudget = flag.Int("errorbudget", 0, "sweep points allowed to fail permanently per job; failed points are salvaged as incomplete (0 = fail the job)")
		jitterSeed  = flag.Int64("jitter-seed", 0, "seed perturbing per-unit backoff jitter (reproducible retry schedules)")

		batchMax  = flag.Int("batch-max", 16, "evaluation batch size flush threshold")
		batchWait = flag.Duration("batch-wait", 10*time.Millisecond, "evaluation batch age flush threshold")

		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long running jobs get to finish on SIGTERM before they are parked")

		metricsOut = flag.String("metrics", "", "also write the observability trace (JSON lines) to this file")
	)
	flag.Parse()
	if err := run(*addr, *state, *workers, *queueDepth, *rate, *burst, *tenantJobs, *shedMB,
		*timeout, *retries, *errorBudget, *jitterSeed, *batchMax, *batchWait, *drainTimeout, *metricsOut); err != nil {
		fmt.Fprintln(os.Stderr, "commschedd:", err)
		os.Exit(1)
	}
}

func run(addr, state string, workers, queueDepth int, rate float64, burst, tenantJobs, shedMB int,
	timeout time.Duration, retries, errorBudget int, jitterSeed int64,
	batchMax int, batchWait, drainTimeout time.Duration, metricsOut string) error {

	// Telemetry shares the daemon's port: the registry and hub feed
	// /metrics, /events, and /runs on the API mux instead of a second
	// listener.
	reg := telemetry.NewRegistry()
	hub := telemetry.NewHub()
	tel := telemetry.NewServer(reg, hub)
	// The bounded trace store backs GET /trace/{id}: recent traces stay
	// queryable as structured JSON without grepping the JSONL file.
	traces := telemetry.NewTraces(0, 0)
	tel.Traces = traces
	sinks := obs.Fanout{reg, hub, traces}
	var jsonl *obs.JSONL
	if metricsOut != "" {
		j, err := obs.OpenJSONL(metricsOut)
		if err != nil {
			return err
		}
		jsonl = j
		sinks = append(sinks, j)
	}
	obs.SetSink(sinks)
	defer obs.SetSink(nil)

	var store service.JobStore
	ckpt := ""
	if state != "" {
		ds, err := service.OpenDurableStore(state)
		if err != nil {
			return err
		}
		store = ds
		ckpt = service.CkptRoot(state)
		if err := os.MkdirAll(ckpt, 0o755); err != nil {
			return err
		}
	}

	svc, err := service.New(service.Config{
		Store: store,
		Limits: service.Limits{
			QueueDepth:  queueDepth,
			TenantRate:  rate,
			TenantBurst: burst,
			TenantJobs:  tenantJobs,
			ShedBytes:   uint64(shedMB) << 20,
		},
		Workers: workers,
		Policy: par.Policy{
			Timeout:     timeout,
			Retries:     retries,
			Backoff:     100 * time.Millisecond,
			ErrorBudget: errorBudget,
			Seed:        jitterSeed,
		},
		CkptRoot:  ckpt,
		BatchMax:  batchMax,
		BatchWait: batchWait,
	})
	if err != nil {
		return err
	}
	if err := svc.Start(context.Background()); err != nil {
		return err
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: svc.Mux(tel.Handler())}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "commschedd: serving on http://%s (POST /jobs, /evaluate; GET /jobs, /readyz, /metrics, /events)\n",
		ln.Addr().String())
	if state != "" {
		fmt.Fprintf(os.Stderr, "commschedd: durable state in %s\n", state)
	}

	// First SIGINT/SIGTERM starts the graceful drain; the handler is then
	// removed, so a second signal takes the default disposition and kills
	// a daemon that is stuck winding down.
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		signal.Stop(sigCh)
		fmt.Fprintf(os.Stderr, "commschedd: %v received; draining (running jobs get %s, signal again to kill)\n", sig, drainTimeout)
	case err := <-serveErr:
		return fmt.Errorf("http server: %w", err)
	}

	// Drain while still serving HTTP: clients keep polling /readyz (now
	// 503) and job status during the wind-down.
	drainErr := svc.Drain(drainTimeout)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		hs.Close() //nolint:errcheck // stragglers after the grace period
	}
	st := svc.Stats()
	fmt.Fprintf(os.Stderr, "commschedd: drained: %d done, %d failed, %d parked, %d still queued\n",
		st.Completed, st.Failed, st.Parked, st.Admission.Queued)
	if jsonl != nil {
		obs.SetSink(nil)
		if err := jsonl.Close(); err != nil && drainErr == nil {
			drainErr = err
		}
	}
	return drainErr
}
