package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestMain doubles as the child process of the kill-and-resume test:
// with COMMSCHEDD_CHILD set, the test binary runs the real daemon loop
// so the parent can SIGKILL it mid-job and restart it on the same state
// directory.
func TestMain(m *testing.M) {
	if os.Getenv("COMMSCHEDD_CHILD") == "1" {
		err := run("127.0.0.1:0", os.Getenv("COMMSCHEDD_CHILD_STATE"),
			1, 64, 0, 0, 0, 0,
			time.Minute, 1, 0, 0,
			16, 10*time.Millisecond, 30*time.Second, "")
		if err != nil {
			fmt.Fprintln(os.Stderr, "child:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

var daemonBanner = regexp.MustCompile(`commschedd: serving on http://([^\s]+)`)

type daemon struct {
	cmd  *exec.Cmd
	log  *bytes.Buffer
	addr string
	done chan error
}

// startDaemon re-executes this test binary as a durable commschedd on a
// free port and waits until /readyz answers 200.
func startDaemon(t *testing.T, stateDir string) *daemon {
	t.Helper()
	d := &daemon{cmd: exec.Command(os.Args[0]), log: &bytes.Buffer{}, done: make(chan error, 1)}
	d.cmd.Env = append(os.Environ(),
		"COMMSCHEDD_CHILD=1",
		"COMMSCHEDD_CHILD_STATE="+stateDir,
		"GOMAXPROCS=1", // serial jobs: a SIGKILL lands between checkpoint records
	)
	d.cmd.Stdout, d.cmd.Stderr = d.log, d.log
	if err := d.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	go func() { d.done <- d.cmd.Wait() }()
	t.Cleanup(func() {
		select {
		case <-d.done: // already gone
		default:
			d.cmd.Process.Kill() //nolint:errcheck // teardown
			<-d.done
		}
	})

	deadline := time.After(2 * time.Minute)
	for {
		select {
		case err := <-d.done:
			d.done <- err
			t.Fatalf("daemon exited before serving: %v\n%s", err, d.log.String())
		case <-deadline:
			t.Fatalf("daemon never announced its address\n%s", d.log.String())
		default:
		}
		if m := daemonBanner.FindStringSubmatch(d.log.String()); m != nil {
			d.addr = m[1]
			break
		}
		time.Sleep(time.Millisecond)
	}
	for {
		select {
		case <-deadline:
			t.Fatalf("daemon never became ready\n%s", d.log.String())
		default:
		}
		resp, err := http.Get("http://" + d.addr + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return d
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func (d *daemon) get(t *testing.T, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get("http://" + d.addr + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, body
}

func (d *daemon) submit(t *testing.T, spec string) map[string]any {
	t.Helper()
	resp, err := http.Post("http://"+d.addr+"/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatalf("POST /jobs: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, body)
	}
	var job map[string]any
	if err := json.Unmarshal(body, &job); err != nil {
		t.Fatalf("decoding job: %v\n%s", err, body)
	}
	return job
}

// waitResult polls /jobs/{id}/result until 200 and returns the raw bytes.
func (d *daemon) waitResult(t *testing.T, id string, timeout time.Duration) []byte {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		code, body := d.get(t, "/jobs/"+id+"/result")
		if code == http.StatusOK {
			return body
		}
		if time.Now().After(deadline) {
			_, rec := d.get(t, "/jobs/"+id)
			t.Fatalf("job %s never finished: last result %d %s\nrecord: %s\n%s", id, code, body, rec, d.log.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// An 8-point sweep slow enough for a SIGKILL to land between points.
const sweepSpec = `{
	"kind": "sweep",
	"generate": {"kind": "ring", "switches": 8},
	"assign": [0,0,1,1,2,2,3,3],
	"m": 4,
	"rates": [0.02, 0.04, 0.06, 0.08, 0.10, 0.12, 0.14, 0.16],
	"warmup_cycles": 500,
	"measure_cycles": 20000,
	"seed": 42
}`

// TestDaemonKillResumeByteIdentical is the daemon acceptance test: a job
// in flight when the process is SIGKILLed must survive the restart, be
// resumed from its checkpoints, and produce a result byte-identical to
// the same spec run without interruption. A final SIGTERM must drain
// cleanly to exit 0.
func TestDaemonKillResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec integration test")
	}
	state := t.TempDir()

	first := startDaemon(t, state)
	job := d1Submit(t, first)
	id := job["id"].(string)

	// SIGKILL once the job's checkpoint journal holds a sweep point —
	// mid-job, between points, never at a clean boundary.
	journal := filepath.Join(state, "ckpt", id, "journal.jsonl")
	deadline := time.After(2 * time.Minute)
	killedMidJob := true
	for {
		select {
		case err := <-first.done:
			t.Fatalf("first daemon exited on its own: %v\n%s", err, first.log.String())
		case <-deadline:
			t.Fatalf("no checkpoint appeared at %s\n%s", journal, first.log.String())
		default:
		}
		if data, err := os.ReadFile(journal); err == nil && bytes.Contains(data, []byte("point/")) {
			break
		}
		// The job may finish before a kill lands; the resume below then
		// recovers a completed record instead of a mid-flight one.
		if code, body := first.get(t, "/jobs/"+id); code == http.StatusOK && strings.Contains(string(body), `"state": "done"`) {
			killedMidJob = false
			break
		}
		time.Sleep(time.Millisecond)
	}
	first.cmd.Process.Kill() //nolint:errcheck // the point of the test
	<-first.done
	first.done <- nil // mark consumed for the Cleanup
	t.Logf("killed mid-job: %v", killedMidJob)

	// Restart on the same state: the job must be recovered and completed
	// without resubmission.
	second := startDaemon(t, state)
	resumed := second.waitResult(t, id, 2*time.Minute)

	// Golden: the identical spec as a brand-new job on the same daemon.
	golden := second.submit(t, sweepSpec)
	want := second.waitResult(t, golden["id"].(string), 2*time.Minute)
	if !bytes.Equal(resumed, want) {
		t.Errorf("resumed result differs from uninterrupted run\nresumed: %s\ngolden:  %s", resumed, want)
	}

	// The resumed job really did survive a restart: its record predates
	// the second daemon and was not silently re-created.
	if code, body := second.get(t, "/jobs/"+id); code != http.StatusOK || !strings.Contains(string(body), `"state": "done"`) {
		t.Fatalf("recovered job record = %d %s", code, body)
	}

	// SIGTERM: graceful drain, exit 0.
	if err := second.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-second.done:
		second.done <- nil
		if err != nil {
			t.Fatalf("SIGTERM drain must exit 0, got %v\n%s", err, second.log.String())
		}
	case <-time.After(2 * time.Minute):
		t.Fatalf("daemon never exited after SIGTERM\n%s", second.log.String())
	}
	if !strings.Contains(second.log.String(), "drained:") {
		t.Fatalf("drain banner missing\n%s", second.log.String())
	}
}

// d1Submit submits the canonical sweep and sanity-checks the daemon's
// surface while it is up: /healthz, /metrics, and the 202 contract.
func d1Submit(t *testing.T, d *daemon) map[string]any {
	t.Helper()
	if code, _ := d.get(t, "/healthz"); code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}
	if code, body := d.get(t, "/metrics"); code != http.StatusOK || !bytes.Contains(body, []byte("commsched")) {
		t.Fatalf("metrics = %d %s", code, body)
	}
	job := d.submit(t, sweepSpec)
	if job["state"] != "queued" && job["state"] != "running" {
		t.Fatalf("submitted job = %+v", job)
	}
	return job
}
