package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func capture(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var b strings.Builder
		buf := make([]byte, 64<<10)
		for {
			n, err := r.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		done <- b.String()
	}()
	ferr := f()
	w.Close()
	os.Stdout = old
	out := <-done
	r.Close()
	return out, ferr
}

func TestGenerateAndAnalyze(t *testing.T) {
	out, err := capture(t, func() error {
		return run("irregular", 12, 3, 0, 0, 0, 0, 0, 0, 1, "", "", true)
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"diameter", "up*/down* root", "equivalent distances", "triangle violations"} {
		if !strings.Contains(out, want) {
			t.Fatalf("analysis missing %q:\n%s", want, out)
		}
	}
}

func TestGenerateToFileAndReload(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "net.txt")
	if _, err := capture(t, func() error {
		return run("rings", 0, 0, 4, 6, 1, 0, 0, 0, 1, "", path, false)
	}); err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, func() error {
		return run("", 0, 0, 0, 0, 0, 0, 0, 0, 1, path, "", true)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "rings-4x6") {
		t.Fatalf("reloaded analysis missing name:\n%s", out)
	}
}

func TestWriteToStdout(t *testing.T) {
	out, err := capture(t, func() error {
		return run("ring", 5, 0, 0, 0, 0, 0, 0, 0, 1, "", "-", false)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "network ring-5") || !strings.Contains(out, "link 0 1") {
		t.Fatalf("stdout topology missing:\n%s", out)
	}
}

func TestSummaryWithoutFlags(t *testing.T) {
	out, err := capture(t, func() error {
		return run("mesh", 0, 0, 0, 0, 0, 3, 3, 0, 1, "", "", false)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "mesh-3x3") {
		t.Fatalf("summary missing:\n%s", out)
	}
}

func TestErrors(t *testing.T) {
	if _, err := capture(t, func() error {
		return run("bogus", 8, 3, 0, 0, 0, 0, 0, 0, 1, "", "", false)
	}); err == nil {
		t.Fatal("unknown topology accepted")
	}
	if _, err := capture(t, func() error {
		return run("", 0, 0, 0, 0, 0, 0, 0, 0, 1, "/does/not/exist", "", true)
	}); err == nil {
		t.Fatal("missing input file accepted")
	}
}
