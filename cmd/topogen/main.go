// Command topogen generates and analyzes the topologies the paper's
// evaluation uses: it emits the portable text format (consumable by
// `commsched -topo file`) and reports the structural and distance-model
// properties of a network.
//
// Usage:
//
//	topogen -switches 16 -seed 2000 -out net.txt     generate + save
//	topogen -topo rings -analyze                     properties of the Fig. 4 net
//	topogen -in net.txt -analyze                     analyze a saved network
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"

	"commsched/internal/distance"
	"commsched/internal/routing"
	"commsched/internal/topology"
)

func main() {
	var (
		topo     = flag.String("topo", "irregular", "topology kind: irregular, rings, ring, mesh, torus, hypercube")
		switches = flag.Int("switches", 16, "switch count (irregular/ring)")
		degree   = flag.Int("degree", 3, "inter-switch degree (irregular)")
		rings    = flag.Int("rings", 4, "ring count (rings)")
		ringSize = flag.Int("ringsize", 6, "switches per ring (rings)")
		bridges  = flag.Int("bridges", 1, "links between consecutive rings")
		rows     = flag.Int("rows", 4, "rows (mesh/torus)")
		cols     = flag.Int("cols", 4, "columns (mesh/torus)")
		dim      = flag.Int("dim", 4, "dimension (hypercube)")
		seed     = flag.Int64("seed", 2000, "generation seed")
		in       = flag.String("in", "", "analyze an existing topology file instead of generating")
		out      = flag.String("out", "", "write the topology to this file ('-' = stdout)")
		analyze  = flag.Bool("analyze", false, "print structural and distance-model properties")
	)
	flag.Parse()
	if err := run(*topo, *switches, *degree, *rings, *ringSize, *bridges, *rows, *cols, *dim,
		*seed, *in, *out, *analyze); err != nil {
		fmt.Fprintln(os.Stderr, "topogen:", err)
		os.Exit(1)
	}
}

func run(topo string, switches, degree, rings, ringSize, bridges, rows, cols, dim int,
	seed int64, in, out string, analyze bool) error {

	var (
		net *topology.Network
		err error
	)
	if in != "" {
		f, err2 := os.Open(in)
		if err2 != nil {
			return err2
		}
		defer f.Close()
		net, err = topology.ParseText(f)
	} else {
		cfg := topology.Config{}
		switch topo {
		case "irregular":
			net, err = topology.RandomIrregular(switches, degree, rand.New(rand.NewSource(seed)), cfg)
		case "rings":
			net, err = topology.InterconnectedRings(rings, ringSize, bridges, cfg)
		case "ring":
			net, err = topology.Ring(switches, cfg)
		case "mesh":
			net, err = topology.Mesh2D(rows, cols, cfg)
		case "torus":
			net, err = topology.Torus2D(rows, cols, cfg)
		case "hypercube":
			net, err = topology.Hypercube(dim, cfg)
		default:
			return fmt.Errorf("unknown topology %q", topo)
		}
	}
	if err != nil {
		return err
	}

	switch out {
	case "":
	case "-":
		if err := net.WriteText(os.Stdout); err != nil {
			return err
		}
	default:
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		if err := net.WriteText(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d switches, %d links)\n", out, net.Switches(), net.NumLinks())
	}

	if analyze {
		return report(net)
	}
	if out == "" {
		// Neither saved nor analyzed: at least summarize.
		fmt.Printf("%s: %d switches, %d hosts, %d links, diameter %d\n",
			net.Name(), net.Switches(), net.Hosts(), net.NumLinks(), net.Diameter())
	}
	return nil
}

func report(net *topology.Network) error {
	fmt.Printf("network %s\n", net.Name())
	fmt.Printf("  switches:       %d (%d-port, %d hosts each)\n", net.Switches(), net.Ports(), net.HostsPerSwitch())
	fmt.Printf("  hosts:          %d\n", net.Hosts())
	fmt.Printf("  links:          %d\n", net.NumLinks())
	fmt.Printf("  connected:      %v\n", net.Connected())
	fmt.Printf("  diameter:       %d hops\n", net.Diameter())
	fmt.Printf("  average degree: %.2f\n", net.AverageDegree())
	fmt.Printf("  bisection width (estimate): %d links\n",
		net.EstimateBisectionWidth(rand.New(rand.NewSource(1)), 5))
	hist := net.DegreeHistogram()
	degrees := make([]int, 0, len(hist))
	for d := range hist {
		degrees = append(degrees, d)
	}
	sort.Ints(degrees)
	fmt.Printf("  degree histogram:")
	for _, d := range degrees {
		fmt.Printf(" %d×deg%d", hist[d], d)
	}
	fmt.Println()

	ud, err := routing.NewUpDown(net, -1)
	if err != nil {
		return err
	}
	fmt.Printf("  up*/down* root: switch %d\n", ud.Root())
	tab, err := distance.Compute(net, ud)
	if err != nil {
		return err
	}
	sum, pairs, max := 0.0, 0, 0.0
	for i := 0; i < net.Switches(); i++ {
		for j := i + 1; j < net.Switches(); j++ {
			d := tab.At(i, j)
			sum += d
			pairs++
			if d > max {
				max = d
			}
		}
	}
	fmt.Printf("  equivalent distances: mean %.4f, max %.4f, quadratic mean %.4f\n",
		sum/float64(pairs), max, tab.QuadraticMean())
	fmt.Printf("  triangle violations:  %d ordered triples (the table is not a metric)\n",
		tab.TriangleViolations(1e-9))
	return nil
}
