// Command netsim simulates one mapping on one network across a load sweep
// and prints the latency/traffic rows of a Figure 3/5-style curve.
//
// Usage:
//
//	netsim -switches 16 -clusters 4                       scheduled (OP) mapping
//	netsim -switches 16 -clusters 4 -mapping random       a random mapping
//	netsim -points 9 -maxrate 0.45 -cycles 10000          the paper's ladder
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"commsched/internal/core"
	"commsched/internal/experiments"
	"commsched/internal/mapping"
	"commsched/internal/plot"
	"commsched/internal/runctl"
	"commsched/internal/simnet"
	"commsched/internal/stats"
	"commsched/internal/telemetry"
	"commsched/internal/topology"
)

func main() {
	var (
		switches = flag.Int("switches", 16, "switch count")
		degree   = flag.Int("degree", 3, "inter-switch degree")
		topoSeed = flag.Int64("toposeed", 2000, "topology seed")
		useRings = flag.Bool("rings", false, "use the 4x6 rings network instead of a random irregular one")
		clusters = flag.Int("clusters", 4, "number of logical clusters")
		mapKind  = flag.String("mapping", "scheduled", "mapping: scheduled or random")
		mapSeed  = flag.Int64("mapseed", 100, "random mapping seed")
		points   = flag.Int("points", 9, "number of load points (S1..Sn)")
		maxRate  = flag.Float64("maxrate", 0.45, "injection rate at the last point (flits/cycle/host)")
		warmup   = flag.Int("warmup", 2000, "warmup cycles")
		cycles   = flag.Int("cycles", 10000, "measurement cycles")
		msgFlits = flag.Int("msgflits", 16, "message length in flits")
		vcs      = flag.Int("vcs", 2, "virtual channels per link")
		simSeed  = flag.Int64("simseed", 7, "simulation seed")
		drawPlot = flag.Bool("plot", false, "draw an ASCII latency-vs-traffic chart")

		metrics    = flag.String("metrics", "", "write an observability trace (JSON lines) to this file")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		manifest   = flag.String("manifest", "", "write a run manifest (seeds, topology hash, timings) to this file")
		serve      = flag.String("serve", "", "serve live telemetry (/metrics /events /runs /healthz /debug/pprof) on this address while running, e.g. :8080 or :0")
		trace      = flag.String("trace", "", "record a Chrome trace-event JSON file (view in Perfetto / chrome://tracing)")
	)
	durable := runctl.Flags(true)
	flag.Parse()
	svc, err := telemetry.Start(telemetry.Options{
		Serve: *serve, Trace: *trace, Metrics: *metrics,
		CPUProfile: *cpuprofile, MemProfile: *memprofile, Banner: os.Stderr,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "netsim:", err)
		os.Exit(1)
	}
	// Ctrl-C / SIGTERM cancels the sweep between units so the deferred
	// finish/Close paths still flush checkpoints and telemetry sinks.
	ctx, stop := runctl.Signals(context.Background(), os.Stderr)
	runErr := run(ctx, *switches, *degree, *topoSeed, *useRings, *clusters, *mapKind, *mapSeed,
		*points, *maxRate, *warmup, *cycles, *msgFlits, *vcs, *simSeed, *drawPlot, *manifest, *durable)
	stop()
	if err := svc.Close(); err != nil && runErr == nil {
		runErr = err
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "netsim:", runErr)
		os.Exit(1)
	}
}

func run(ctx context.Context, switches, degree int, topoSeed int64, useRings bool, clusters int, mapKind string, mapSeed int64,
	points int, maxRate float64, warmup, cycles, msgFlits, vcs int, simSeed int64, drawPlot bool,
	manifestPath string, durable runctl.Config) (retErr error) {

	man := experiments.NewManifest("netsim", experiments.Scale{
		WarmupCycles: warmup, MeasureCycles: cycles, SweepPoints: points, MaxRate: maxRate,
	})
	man.Seeds = map[string]int64{"topology": topoSeed, "mapping": mapSeed, "sim": simSeed}

	var (
		net *topology.Network
		err error
	)
	if useRings {
		net, err = topology.InterconnectedRings(4, 6, 1, topology.Config{})
	} else {
		net, err = topology.RandomIrregular(switches, degree, rand.New(rand.NewSource(topoSeed)), topology.Config{})
	}
	if err != nil {
		return err
	}
	if err := man.AddTopology(net.Name(), net); err != nil {
		return err
	}
	// Publish the manifest immediately so /runs identifies the run while
	// it is still executing; the final Emit refreshes the duration.
	man.Emit()

	id, err := man.RunstateIdentity()
	if err != nil {
		return err
	}
	finish, err := runctl.Activate(durable, id, os.Stderr)
	if err != nil {
		return err
	}
	defer func() {
		if ferr := finish(); ferr != nil && retErr == nil {
			retErr = ferr
		}
	}()

	sys, err := core.NewSystem(net, core.Options{})
	if err != nil {
		return err
	}

	var p *mapping.Partition
	label := "OP"
	switch mapKind {
	case "scheduled":
		sched, err := sys.Schedule(ctx, core.ScheduleOptions{Clusters: clusters, Seed: 42})
		if err != nil {
			return err
		}
		p = sched.Partition
	case "random":
		label = "R"
		p, err = sys.RandomMapping(clusters, mapSeed)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown mapping kind %q", mapKind)
	}
	q, err := sys.Evaluate(p)
	if err != nil {
		return err
	}
	fmt.Printf("network %s, mapping %s: %s\nCc = %.4f (F_G %.4f, D_G %.4f)\n\n",
		net.Name(), label, p, q.Cc, q.FG, q.DG)

	cfg := simnet.Config{
		VirtualChannels: vcs, MessageFlits: msgFlits,
		WarmupCycles: warmup, MeasureCycles: cycles, Seed: simSeed,
	}
	sweep, err := sys.SimulateSweep(ctx, p, cfg, simnet.LinearRates(points, maxRate))
	if err != nil {
		return err
	}
	t := stats.NewTable("point", "rate", "offered", "accepted", "latency", "latency_q", "saturated")
	for _, pt := range sweep {
		t.AddRow(fmt.Sprintf("S%d", pt.Index),
			fmt.Sprintf("%.4f", pt.Rate),
			fmt.Sprintf("%.4f", pt.Metrics.OfferedTraffic),
			fmt.Sprintf("%.4f", pt.Metrics.AcceptedTraffic),
			fmt.Sprintf("%.1f", pt.Metrics.AvgLatency),
			fmt.Sprintf("%.1f", pt.Metrics.AvgTotalLatency),
			fmt.Sprintf("%v", pt.Metrics.Saturated()))
	}
	fmt.Print(t.String())
	fmt.Printf("\nthroughput (max accepted traffic): %.4f flits/switch/cycle\n", simnet.Throughput(sweep))
	if drawPlot {
		var xs, ys []float64
		for _, pt := range sweep {
			xs = append(xs, pt.Metrics.AcceptedTraffic)
			ys = append(ys, pt.Metrics.AvgLatency)
		}
		chart, err := plot.New("latency vs accepted traffic", 60, 16).
			Axes("accepted (flits/switch/cycle)", "latency (cycles)").
			Add(plot.Series{Label: label, X: xs, Y: ys}).
			Render()
		if err != nil {
			return err
		}
		fmt.Println()
		fmt.Print(chart)
	}
	man.Finish()
	man.Emit()
	if manifestPath != "" {
		return man.Write(manifestPath)
	}
	return nil
}
