package main

import (
	"commsched/internal/runctl"
	"context"

	"os"
	"strings"
	"testing"
)

func capture(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var b strings.Builder
		buf := make([]byte, 64<<10)
		for {
			n, err := r.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		done <- b.String()
	}()
	ferr := f()
	w.Close()
	os.Stdout = old
	out := <-done
	r.Close()
	return out, ferr
}

func TestRunScheduledMapping(t *testing.T) {
	out, err := capture(t, func() error {
		return run(context.Background(), 12, 3, 1, false, 4, "scheduled", 100, 3, 0.3, 200, 800, 16, 2, 7, false, "", runctl.Config{})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"mapping OP", "S1", "S3", "throughput"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunRandomMappingOnRings(t *testing.T) {
	out, err := capture(t, func() error {
		return run(context.Background(), 0, 0, 0, true, 4, "random", 5, 2, 0.2, 100, 500, 16, 2, 7, false, "", runctl.Config{})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "rings-4x6") || !strings.Contains(out, "mapping R") {
		t.Fatalf("rings/random output wrong:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := capture(t, func() error {
		return run(context.Background(), 12, 3, 1, false, 4, "bogus", 100, 3, 0.3, 100, 500, 16, 2, 7, false, "", runctl.Config{})
	}); err == nil {
		t.Fatal("unknown mapping kind accepted")
	}
	if _, err := capture(t, func() error {
		return run(context.Background(), 10, 3, 1, false, 4, "scheduled", 100, 3, 0.3, 100, 500, 16, 2, 7, false, "", runctl.Config{})
	}); err == nil {
		t.Fatal("indivisible cluster split accepted")
	}
	if _, err := capture(t, func() error {
		return run(context.Background(), 12, 3, 1, false, 4, "scheduled", 100, 3, 1.7, 100, 500, 16, 2, 7, false, "", runctl.Config{})
	}); err == nil {
		t.Fatal("out-of-range injection rate accepted")
	}
}

func TestRunWithPlot(t *testing.T) {
	out, err := capture(t, func() error {
		return run(context.Background(), 12, 3, 1, false, 4, "scheduled", 100, 3, 0.3, 200, 800, 16, 2, 7, true, "", runctl.Config{})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "latency vs accepted traffic") {
		t.Fatalf("plot missing:\n%s", out)
	}
}
