package main

import (
	"math/rand"
	"testing"

	"commsched/internal/core"
	"commsched/internal/simnet"
	"commsched/internal/topology"
)

// TestEndToEndPipeline drives the complete system through the public API
// at small scale: generate → characterize → schedule → evaluate →
// simulate → compare, asserting every paper-level property along the way.
func TestEndToEndPipeline(t *testing.T) {
	// 1. Topology under the paper's constraints.
	net, err := topology.RandomIrregular(16, 3, rand.New(rand.NewSource(321)), topology.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if net.Hosts() != 64 {
		t.Fatalf("hosts = %d, want 64", net.Hosts())
	}

	// 2. Characterization: routing + distance table.
	sys, err := core.NewSystem(net, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tab := sys.DistanceTable()
	for i := 0; i < 16; i++ {
		for j := 0; j < 16; j++ {
			if i == j && tab.At(i, j) != 0 {
				t.Fatal("nonzero diagonal")
			}
			if i != j && tab.At(i, j) <= 0 {
				t.Fatal("non-positive distance")
			}
		}
	}

	// 3. Communication-aware schedule.
	sched, err := sys.Schedule(nil, core.ScheduleOptions{Clusters: 4, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}

	// 4. Quality: scheduled beats random on Cc.
	rnd, err := sys.RandomMapping(4, 7)
	if err != nil {
		t.Fatal(err)
	}
	rq, err := sys.Evaluate(rnd)
	if err != nil {
		t.Fatal(err)
	}
	if sched.Quality.Cc <= rq.Cc {
		t.Fatalf("scheduled Cc %.3f not above random %.3f", sched.Quality.Cc, rq.Cc)
	}

	// 5. Simulation: scheduled delivers more at identical load.
	cfg := simnet.Config{InjectionRate: 0.3, WarmupCycles: 500, MeasureCycles: 2500, Seed: 5}
	opM, err := sys.Simulate(sched.Partition, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rdM, err := sys.Simulate(rnd, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if opM.AcceptedTraffic <= rdM.AcceptedTraffic {
		t.Fatalf("scheduled accepted %.4f <= random %.4f", opM.AcceptedTraffic, rdM.AcceptedTraffic)
	}
	// And with lower latency.
	if opM.AvgLatency >= rdM.AvgLatency {
		t.Fatalf("scheduled latency %.1f >= random %.1f", opM.AvgLatency, rdM.AvgLatency)
	}
}
