package experiments

// PISA-style adversarial instance search (PAPERS.md: "PISA: An
// Adversarial Approach To Comparing Task Graph Scheduling Algorithms"):
// scheduler comparisons on a fixed benchmark say little, because each
// scheduler has instance families where it loses. This driver actively
// *searches* for those instances: starting from a seeded task graph and
// a processor placement on the paper's 16-switch fabric, it hill-climbs
// over instance perturbations — compute costs, edge volumes, edge
// rewires, and processor-to-switch placement (which re-prices
// communication through the equivalent-distance table) — maximizing the
// makespan ratio between two schedulers of the portfolio. The emitted
// figure family reports, per DAG family and restart, how large a gap
// the adversary found between plain HEFT and the Tabu-refined placement.

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"commsched/internal/core"
	"commsched/internal/heft"
	"commsched/internal/metatask"
	"commsched/internal/obs"
	"commsched/internal/par"
	"commsched/internal/runstate"
	"commsched/internal/search"
	"commsched/internal/stats"
)

// AdvSeedBase numbers the adversarial climbs (one derived seed per
// family × restart).
const AdvSeedBase = 900

// AdvConfig shapes one adversarial search run. The result is a pure
// function of every field except Parallel, which only selects the
// execution mode (serial loop vs par.ForEach) and must not change any
// output byte.
type AdvConfig struct {
	// Families are the DAG generator families to attack
	// ("layered", "forkjoin", "random").
	Families []string
	// Restarts is the number of independent climbs per family.
	Restarts int
	// Steps is the number of perturbations attempted per climb.
	Steps int
	// Tasks sizes the baseline instances (family generators derive their
	// shape parameters from it).
	Tasks int
	// Procs is the processor count; processors live on switches of the
	// canonical 16-switch network and communicate at equivalent-distance
	// cost.
	Procs int
	// Seed drives every climb (combined with AdvSeedBase and the climb
	// index).
	Seed int64
	// Parallel fans the climbs out via par.ForEach.
	Parallel bool
}

// FullAdvConfig is the paper-scale adversarial search.
func FullAdvConfig() AdvConfig {
	return AdvConfig{
		Families: []string{"layered", "forkjoin", "random"},
		Restarts: 4, Steps: 60, Tasks: 40, Procs: 4, Seed: 1,
	}
}

// QuickAdvConfig is the reduced scale for tests and smoke runs.
func QuickAdvConfig() AdvConfig {
	return AdvConfig{
		Families: []string{"layered", "forkjoin", "random"},
		Restarts: 2, Steps: 48, Tasks: 24, Procs: 4, Seed: 1,
	}
}

// canonical strips the execution-mode field, so runstate keys and any
// other identity derived from the config are mode-independent.
func (c AdvConfig) canonical() AdvConfig {
	c.Parallel = false
	return c
}

// validate rejects configurations the climb cannot run.
func (c AdvConfig) validate() error {
	if len(c.Families) == 0 {
		return fmt.Errorf("experiments: no DAG families")
	}
	for _, f := range c.Families {
		switch f {
		case "layered", "forkjoin", "random":
		default:
			return fmt.Errorf("experiments: unknown DAG family %q", f)
		}
	}
	if c.Restarts < 1 || c.Steps < 0 {
		return fmt.Errorf("experiments: need restarts >= 1 and steps >= 0, got %d/%d", c.Restarts, c.Steps)
	}
	if c.Tasks < 8 || c.Procs < 2 {
		return fmt.Errorf("experiments: need tasks >= 8 and procs >= 2, got %d/%d", c.Tasks, c.Procs)
	}
	return nil
}

// AdvRow is one climb's outcome: how far the adversary pushed the
// makespan ratio scheduler A / scheduler B on this family.
type AdvRow struct {
	// Family is the DAG generator family under attack.
	Family string
	// Restart indexes the climb within the family.
	Restart int
	// Tasks and Edges describe the final adversarial instance.
	Tasks, Edges int
	// StartRatio is the makespan ratio of the unperturbed seeded
	// instance; BestRatio is the ratio of the worst instance found.
	StartRatio, BestRatio float64
	// HeftMakespan and RefinedMakespan are the two schedulers' makespans
	// on the best adversarial instance.
	HeftMakespan, RefinedMakespan float64
	// Accepted counts hill-climb steps that improved the ratio.
	Accepted int
	// Validated counts schedule pairs checked against the
	// schedule-validity invariants during the climb (every evaluation
	// validates both schedules).
	Validated int
}

// AdvResult aggregates the adversarial search.
type AdvResult struct {
	Rows []AdvRow
	// BestRatio is the largest gap across all climbs; BestFamily the
	// family it was found in.
	BestRatio  float64
	BestFamily string
	// Validated sums the per-climb validation counts.
	Validated int
}

// AdvGapTarget is the acceptance bar: the search must find at least one
// family where HEFT is ≥ 1.2× worse than the Tabu-refined placement.
const AdvGapTarget = 1.2

// advInstance is one point of the adversarial search space: a task
// graph plus a processor-to-switch placement.
type advInstance struct {
	dag        *metatask.DAG
	procSwitch []int
}

// clone deep-copies the instance so a rejected mutation can be
// discarded.
func (in advInstance) clone() advInstance {
	return advInstance{dag: in.dag.Clone(), procSwitch: append([]int(nil), in.procSwitch...)}
}

// seedInstance generates the unperturbed instance of a family. Shape
// parameters derive from cfg.Tasks; heterogeneity and CCR are fixed in
// the adversarial regime where list schedulers are known to be
// fallible (high heterogeneity, communication on par with compute).
func seedInstance(cfg AdvConfig, family string, switches int, rng *rand.Rand) (advInstance, error) {
	const (
		hetero = 2.0
		ccr    = 1.5
	)
	var (
		d   *metatask.DAG
		err error
	)
	switch family {
	case "layered":
		width := 4
		layers := cfg.Tasks / width
		if layers < 2 {
			layers = 2
		}
		d, err = metatask.GenerateLayeredDAG(layers, width, cfg.Procs, hetero, ccr, rng)
	case "forkjoin":
		fanout := 5
		stages := cfg.Tasks / (fanout + 1)
		if stages < 1 {
			stages = 1
		}
		d, err = metatask.GenerateForkJoinDAG(stages, fanout, cfg.Procs, hetero, ccr, rng)
	case "random":
		d, err = metatask.GenerateRandomDAG(cfg.Tasks, cfg.Procs, 0.2, hetero, ccr, rng)
	default:
		err = fmt.Errorf("experiments: unknown DAG family %q", family)
	}
	if err != nil {
		return advInstance{}, err
	}
	// Processors start spread evenly across the fabric.
	procSwitch := make([]int, cfg.Procs)
	for p := range procSwitch {
		procSwitch[p] = p * switches / cfg.Procs
	}
	return advInstance{dag: d, procSwitch: procSwitch}, nil
}

// mutate proposes one random perturbation of the instance. It returns
// the original unchanged when the drawn mutation is inapplicable (the
// rng consumption stays deterministic either way).
func mutate(in advInstance, switches int, rng *rand.Rand) advInstance {
	out := in.clone()
	d := out.dag
	switch rng.Intn(4) {
	case 0: // rescale one compute cost
		t := rng.Intn(d.Tasks())
		p := rng.Intn(d.Procs())
		f := 0.3 + 2.7*rng.Float64()
		c := d.Comp[t][p] * f
		if c < 0.1 {
			c = 0.1
		}
		if c > 1e4 {
			c = 1e4
		}
		d.Comp[t][p] = c
	case 1: // rescale one edge's data volume
		if len(d.Edges) == 0 {
			return in
		}
		e := rng.Intn(len(d.Edges))
		f := 0.3 + 2.7*rng.Float64()
		v := d.Edges[e].Data * f
		if v > 1e4 {
			v = 1e4
		}
		d.Edges[e].Data = v
	case 2: // rewire: drop one removable edge, add a fresh forward edge
		edges := append([]metatask.DAGEdge(nil), d.Edges...)
		if len(edges) > 1 {
			drop := rng.Intn(len(edges))
			// Removal must keep the single-entry contract: the target
			// needs another predecessor.
			if len(d.Pred(edges[drop].To)) > 1 {
				edges = append(edges[:drop], edges[drop+1:]...)
			}
		}
		i := rng.Intn(d.Tasks())
		j := rng.Intn(d.Tasks())
		if i > j {
			i, j = j, i
		}
		data := 0.5 + 4*rng.Float64()
		if i != j {
			edges = append(edges, metatask.DAGEdge{From: i, To: j, Data: data})
		}
		nd, err := metatask.NewDAG(d.Name, d.Comp, edges)
		if err != nil {
			// Duplicate edge or similar: skip this mutation.
			return in
		}
		out.dag = nd
	case 3: // move one processor to another switch
		p := rng.Intn(len(out.procSwitch))
		out.procSwitch[p] = rng.Intn(switches)
	}
	return out
}

// advEval scores an instance: both schedulers run, both schedules are
// validated, and the makespan ratio HEFT / Tabu-refined is returned
// (≥ 1 up to float noise — the refinement warm-starts at HEFT's
// placement). The evaluation is a pure function of the instance and
// climbSeed.
func advEval(ctx context.Context, tab *core.System, in advInstance, climbSeed int64) (ratio, heftMk, refinedMk float64, err error) {
	cm, err := heft.CommFromTable(tab.DistanceTable(), in.procSwitch)
	if err != nil {
		return 0, 0, 0, err
	}
	hs, err := heft.ScheduleDAG(in.dag, cm)
	if err != nil {
		return 0, 0, 0, err
	}
	if err := heft.Validate(in.dag, cm, hs); err != nil {
		return 0, 0, 0, fmt.Errorf("HEFT schedule invalid: %w", err)
	}
	rs, _, err := heft.RefinePlacement(ctx, in.dag, cm, hs, search.NewTabu(), rand.New(rand.NewSource(climbSeed)))
	if err != nil {
		return 0, 0, 0, err
	}
	if err := heft.Validate(in.dag, cm, rs); err != nil {
		return 0, 0, 0, fmt.Errorf("refined schedule invalid: %w", err)
	}
	if rs.Makespan <= 0 {
		return 0, 0, 0, fmt.Errorf("degenerate refined makespan %g", rs.Makespan)
	}
	return hs.Makespan / rs.Makespan, hs.Makespan, rs.Makespan, nil
}

// advClimb runs one hill-climb: Steps seeded perturbations, keeping
// every instance that widens the gap between the two schedulers.
func advClimb(ctx context.Context, cfg AdvConfig, sys *core.System, family string, restart int) (AdvRow, error) {
	climbSeed := cfg.Seed*1_000_003 + AdvSeedBase + int64(restart)
	for _, ch := range family {
		climbSeed = climbSeed*31 + int64(ch)
	}
	rng := rand.New(rand.NewSource(climbSeed))
	switches := sys.Network().Switches()

	cur, err := seedInstance(cfg, family, switches, rng)
	if err != nil {
		return AdvRow{}, err
	}
	row := AdvRow{Family: family, Restart: restart}
	ratio, hm, rm, err := advEval(ctx, sys, cur, climbSeed)
	if err != nil {
		return AdvRow{}, err
	}
	row.StartRatio, row.BestRatio = ratio, ratio
	row.HeftMakespan, row.RefinedMakespan = hm, rm
	row.Validated++

	for step := 0; step < cfg.Steps; step++ {
		if err := ctx.Err(); err != nil {
			return AdvRow{}, fmt.Errorf("experiments: adversarial climb cancelled: %w", err)
		}
		cand := mutate(cur, switches, rng)
		ratio, hm, rm, err = advEval(ctx, sys, cand, climbSeed)
		if err != nil {
			return AdvRow{}, err
		}
		row.Validated++
		if ratio > row.BestRatio+1e-12 {
			cur = cand
			row.BestRatio = ratio
			row.HeftMakespan, row.RefinedMakespan = hm, rm
			row.Accepted++
		}
	}
	row.Tasks = cur.dag.Tasks()
	row.Edges = len(cur.dag.Edges)
	obs.Event("experiments.adversarial_climb",
		obs.F("family", family),
		obs.F("restart", restart),
		obs.F("start_ratio", row.StartRatio),
		obs.F("best_ratio", row.BestRatio),
		obs.F("accepted", row.Accepted),
		obs.F("validated", row.Validated))
	return row, nil
}

// Adversarial runs the full adversarial search: one hill-climb per
// (family, restart), serial or fanned out via par.ForEach — byte-
// identical results either way. Each climb is one durable runstate
// unit, so interrupted sweeps resume without repeating completed
// climbs. A nil ctx means context.Background.
func Adversarial(ctx context.Context, cfg AdvConfig) (*AdvResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = par.RootContext()
	}
	net, err := Network16()
	if err != nil {
		return nil, err
	}
	sys, err := core.NewSystem(net, core.Options{})
	if err != nil {
		return nil, err
	}
	nClimbs := len(cfg.Families) * cfg.Restarts
	sp := obs.StartSpan("experiments.adversarial",
		obs.F("families", len(cfg.Families)),
		obs.F("restarts", cfg.Restarts),
		obs.F("steps", cfg.Steps),
		obs.F("parallel", cfg.Parallel))

	cfgHash := runstate.KeyHash(cfg.canonical())
	rows := make([]AdvRow, nClimbs)
	runOne := func(ctx context.Context, i int) error {
		family := cfg.Families[i/cfg.Restarts]
		restart := i % cfg.Restarts
		key := ""
		if runstate.Enabled() {
			key = fmt.Sprintf("adversarial/%s/r%d/%s", family, restart, cfgHash)
			var row AdvRow
			if runstate.Lookup(key, &row) {
				rows[i] = row
				return nil
			}
		}
		row, err := advClimb(ctx, cfg, sys, family, restart)
		if err != nil {
			return err
		}
		if key != "" {
			runstate.RecordCtx(ctx, key, row)
		}
		rows[i] = row
		return nil
	}
	if cfg.Parallel {
		err = par.ForEach(ctx, nClimbs, runOne)
	} else {
		for i := 0; i < nClimbs && err == nil; i++ {
			err = runOne(ctx, i)
			obs.Progress("experiments.adversarial", int64(i+1), int64(nClimbs))
		}
	}
	if err != nil {
		return nil, err
	}

	res := &AdvResult{Rows: rows}
	for _, row := range rows {
		res.Validated += row.Validated
		if row.BestRatio > res.BestRatio {
			res.BestRatio = row.BestRatio
			res.BestFamily = row.Family
		}
	}
	sp.End(obs.F("best_ratio", res.BestRatio), obs.F("best_family", res.BestFamily))
	return res, nil
}

// Table renders the adversarial study.
func (r *AdvResult) Table() string {
	var b strings.Builder
	t := stats.NewTable("family", "restart", "tasks", "edges", "start_ratio", "best_ratio",
		"heft_mk", "refined_mk", "accepted")
	for _, row := range r.Rows {
		t.AddRow(row.Family,
			fmt.Sprintf("%d", row.Restart),
			fmt.Sprintf("%d", row.Tasks),
			fmt.Sprintf("%d", row.Edges),
			fmt.Sprintf("%.4f", row.StartRatio),
			fmt.Sprintf("%.4f", row.BestRatio),
			fmt.Sprintf("%.2f", row.HeftMakespan),
			fmt.Sprintf("%.2f", row.RefinedMakespan),
			fmt.Sprintf("%d", row.Accepted))
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "\nbest adversarial gap %.2fx in family %s (target >= %.2fx: %v)\nschedules validated: %d\n",
		r.BestRatio, r.BestFamily, AdvGapTarget, r.BestRatio >= AdvGapTarget, r.Validated)
	return b.String()
}
