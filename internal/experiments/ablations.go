package experiments

import (
	"context"
	"fmt"

	"commsched/internal/core"
	"commsched/internal/par"
	"commsched/internal/simnet"
	"commsched/internal/stats"
	"commsched/internal/traffic"
)

// MetricAblation compares the paper's equivalent-resistance distance model
// against plain hop counts as the table driving the search, scoring both
// resulting mappings on the resistance-based Cc *and* on simulated
// throughput.
type MetricAblation struct {
	// CcResistance and CcHop score the two mappings on the resistance
	// table (comparable numbers).
	CcResistance, CcHop float64
	// ThroughputResistance and ThroughputHop are the simulated saturation
	// throughputs of the two mappings.
	ThroughputResistance, ThroughputHop float64
}

// AblateMetric runs the metric ablation on the canonical 16-switch
// network.
func AblateMetric(sc Scale) (*MetricAblation, error) {
	net, err := Network16()
	if err != nil {
		return nil, err
	}
	resSys, err := core.NewSystem(net, core.Options{Metric: core.MetricResistance})
	if err != nil {
		return nil, err
	}
	hopSys, err := core.NewSystem(net, core.Options{Metric: core.MetricHops})
	if err != nil {
		return nil, err
	}
	schedRes, err := resSys.Schedule(nil, core.ScheduleOptions{Clusters: 4, Seed: ScheduleSeed})
	if err != nil {
		return nil, err
	}
	schedHop, err := hopSys.Schedule(nil, core.ScheduleOptions{Clusters: 4, Seed: ScheduleSeed})
	if err != nil {
		return nil, err
	}
	rates := simnet.LinearRates(sc.SweepPoints, sc.MaxRate)
	cfg := simConfig(sc)
	sweepRes, err := resSys.SimulateSweep(nil, schedRes.Partition, cfg, rates)
	if err != nil {
		return nil, err
	}
	sweepHop, err := resSys.SimulateSweep(nil, schedHop.Partition, cfg, rates)
	if err != nil {
		return nil, err
	}
	hopOnRes, err := resSys.Evaluate(schedHop.Partition)
	if err != nil {
		return nil, err
	}
	return &MetricAblation{
		CcResistance:         schedRes.Quality.Cc,
		CcHop:                hopOnRes.Cc,
		ThroughputResistance: simnet.Throughput(sweepRes),
		ThroughputHop:        simnet.Throughput(sweepHop),
	}, nil
}

// Table renders the metric ablation.
func (r *MetricAblation) Table() string {
	t := stats.NewTable("table_metric", "Cc", "throughput")
	t.AddRow("equivalent-resistance", fmt.Sprintf("%.4f", r.CcResistance), fmt.Sprintf("%.4f", r.ThroughputResistance))
	t.AddRow("hop-count", fmt.Sprintf("%.4f", r.CcHop), fmt.Sprintf("%.4f", r.ThroughputHop))
	return t.String()
}

// MixedTrafficPoint is the scheduled-vs-random throughput gain at one
// intra-cluster traffic fraction.
type MixedTrafficPoint struct {
	// IntraFraction is the probability a message stays in its cluster.
	IntraFraction float64
	// Gain is scheduled throughput / random-mapping throughput.
	Gain float64
}

// MixedTrafficStudy is the future-work extension study: how the benefit of
// communication-aware scheduling decays as traffic declusters.
type MixedTrafficStudy struct {
	Points []MixedTrafficPoint
}

// StudyMixedTraffic evaluates the scheduled and a random mapping under
// mixtures of intra-cluster and global-uniform traffic.
func StudyMixedTraffic(fractions []float64, sc Scale) (*MixedTrafficStudy, error) {
	net, err := Network16()
	if err != nil {
		return nil, err
	}
	sys, err := core.NewSystem(net, core.Options{})
	if err != nil {
		return nil, err
	}
	sched, err := sys.Schedule(nil, core.ScheduleOptions{Clusters: 4, Seed: ScheduleSeed})
	if err != nil {
		return nil, err
	}
	rnd, err := sys.RandomMapping(4, RandomMappingSeedBase)
	if err != nil {
		return nil, err
	}
	uni, err := traffic.NewUniform(net.Hosts())
	if err != nil {
		return nil, err
	}
	rates := simnet.LinearRates(sc.SweepPoints, sc.MaxRate)
	cfg := simConfig(sc)
	study := &MixedTrafficStudy{Points: make([]MixedTrafficPoint, len(fractions))}
	// The fractions are independent operating points; they run
	// concurrently with results written by index.
	err = par.ForEach(nil, len(fractions), func(ctx context.Context, i int) error {
		frac := fractions[i]
		// Build patterns for each mapping at this fraction.
		schedIntra, err := sys.IntraClusterPattern(sched.Partition)
		if err != nil {
			return err
		}
		rndIntra, err := sys.IntraClusterPattern(rnd)
		if err != nil {
			return err
		}
		schedMix, err := traffic.NewMixed(schedIntra, uni, frac)
		if err != nil {
			return err
		}
		rndMix, err := traffic.NewMixed(rndIntra, uni, frac)
		if err != nil {
			return err
		}
		tp := func(pat traffic.Pattern) (float64, error) {
			points, err := simnet.Sweep(ctx, net, sys.Routing(), pat, cfg, rates)
			if err != nil {
				return 0, err
			}
			return simnet.Throughput(points), nil
		}
		ts, err := tp(schedMix)
		if err != nil {
			return err
		}
		tr, err := tp(rndMix)
		if err != nil {
			return err
		}
		gain := 0.0
		if tr > 0 {
			gain = ts / tr
		}
		study.Points[i] = MixedTrafficPoint{IntraFraction: frac, Gain: gain}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return study, nil
}

// Table renders the mixed-traffic study.
func (r *MixedTrafficStudy) Table() string {
	t := stats.NewTable("intra_fraction", "scheduled/random_gain")
	for _, p := range r.Points {
		t.AddRow(fmt.Sprintf("%.0f%%", p.IntraFraction*100), fmt.Sprintf("%.2fx", p.Gain))
	}
	return t.String()
}

// WeightedExtension demonstrates ScheduleWeighted: one heavy cluster and
// three light ones.
type WeightedExtension struct {
	// HeavyIntraWeighted and HeavyIntraPlain are the heavy cluster's
	// intra-cluster cost under weighted vs unweighted scheduling (lower is
	// better for the heavy application).
	HeavyIntraWeighted, HeavyIntraPlain float64
	// Partition is the weighted mapping.
	Partition string
}

// StudyWeighted runs the unequal-requirements extension on the canonical
// network.
func StudyWeighted(heavyWeight float64) (*WeightedExtension, error) {
	net, err := Network16()
	if err != nil {
		return nil, err
	}
	sys, err := core.NewSystem(net, core.Options{})
	if err != nil {
		return nil, err
	}
	sizes := []int{4, 4, 4, 4}
	weighted, err := sys.ScheduleWeighted(nil, sizes, []float64{heavyWeight, 1, 1, 1}, ScheduleSeed)
	if err != nil {
		return nil, err
	}
	plain, err := sys.Schedule(nil, core.ScheduleOptions{Clusters: 4, Seed: ScheduleSeed})
	if err != nil {
		return nil, err
	}
	ev := sys.Evaluator()
	return &WeightedExtension{
		HeavyIntraWeighted: ev.ClusterSimilarity(weighted.Partition, 0),
		HeavyIntraPlain:    ev.ClusterSimilarity(plain.Partition, 0),
		Partition:          weighted.Partition.String(),
	}, nil
}

// Table renders the weighted extension result.
func (r *WeightedExtension) Table() string {
	t := stats.NewTable("scheduler", "heavy_cluster_intra_cost")
	t.AddRow("weighted", fmt.Sprintf("%.4f", r.HeavyIntraWeighted))
	t.AddRow("unweighted", fmt.Sprintf("%.4f", r.HeavyIntraPlain))
	return t.String() + fmt.Sprintf("\nweighted partition: %s\n", r.Partition)
}
