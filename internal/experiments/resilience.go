package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"commsched/internal/core"
	"commsched/internal/fault"
	"commsched/internal/mapping"
	"commsched/internal/runstate"
	"commsched/internal/simnet"
	"commsched/internal/stats"
	"commsched/internal/topology"
)

// FaultSeedBase numbers the random failure plans (one per failure count).
const FaultSeedBase = 500

// ResilienceRow is one (network, failure count) operating point of the
// resilience study: the clustering coefficient and accepted traffic of
// the three ways to keep running after the failures, plus the delivery
// loss during the un-reconfigured window.
type ResilienceRow struct {
	// Network names the instance.
	Network string
	// LinkFailures is the number of permanent link failures injected.
	LinkFailures int
	// DeliveredFraction is the fraction of messages that still completed
	// when the links died mid-run, before any reconfiguration (routing
	// tables still reference the dead links).
	DeliveredFraction float64
	// CcUnrepaired/CcRepaired/CcRescheduled are the clustering
	// coefficients on the degraded network of: the old mapping carried
	// over unchanged, the warm-start Tabu repair, and a from-scratch
	// reschedule.
	CcUnrepaired, CcRepaired, CcRescheduled float64
	// MovedRepaired/MovedRescheduled count the switches that change
	// cluster when adopting each option (repair counts raw label
	// changes; reschedule is scored up to cluster relabeling).
	MovedRepaired, MovedRescheduled int
	// AccUnrepaired/AccRepaired/AccRescheduled are the accepted-traffic
	// measurements of the three mappings on the degraded network at the
	// common probe rate.
	AccUnrepaired, AccRepaired, AccRescheduled float64
	// ProbeRate is that common injection rate, flits/cycle/host.
	ProbeRate float64
}

// ResilienceResult aggregates the resilience study.
type ResilienceResult struct {
	Rows []ResilienceRow
}

// Resilience runs the fault-tolerance study: for each failure count it
// draws a connectivity-preserving random link-failure plan, measures the
// delivery loss of a mid-run failure on the healthy configuration, then
// degrades the system and compares three recoveries — keeping the old
// mapping, warm-start Tabu repair, and rescheduling from scratch — on
// quality (Cc) and on simulated accepted traffic at a common probe rate.
// A nil ctx means context.Background; cancellation aborts between and
// inside the simulation runs.
func Resilience(ctx context.Context, failures []int, sc Scale) (*ResilienceResult, error) {
	if len(failures) == 0 {
		return nil, fmt.Errorf("experiments: no failure counts")
	}
	nets := []struct {
		name  string
		build func() (*topology.Network, error)
	}{
		{"irregular-16", Network16},
		{"rings-24", Network24Rings},
	}
	res := &ResilienceResult{}
	for _, n := range nets {
		net, err := n.build()
		if err != nil {
			return nil, err
		}
		sys, err := core.NewSystem(net, core.Options{})
		if err != nil {
			return nil, err
		}
		sched, err := sys.Schedule(ctx, core.ScheduleOptions{Clusters: 4, Seed: ScheduleSeed})
		if err != nil {
			return nil, err
		}
		rows, err := resilienceOnNetwork(ctx, n.name, sys, sched, failures, sc)
		if err != nil {
			return nil, fmt.Errorf("experiments: resilience on %s: %w", n.name, err)
		}
		res.Rows = append(res.Rows, rows...)
	}
	return res, nil
}

func resilienceOnNetwork(ctx context.Context, name string, sys *core.System, sched *core.Schedule, failures []int, sc Scale) ([]ResilienceRow, error) {
	probe := 0.6 * sc.MaxRate
	cfg := simConfig(sc)
	cfg.InjectionRate = probe
	failAt := int64(sc.WarmupCycles + sc.MeasureCycles/4)

	var rows []ResilienceRow
	for i, k := range failures {
		if k <= 0 {
			return nil, fmt.Errorf("non-positive failure count %d", k)
		}
		// One (network, failure count) row is one durable unit: it is a
		// pure function of the network, the plan seed, and the scale, so a
		// resumed study replays completed rows and recomputes the rest.
		rowKey := ""
		if runstate.Enabled() {
			rowKey = fmt.Sprintf("resilience/%s/k=%d/seed=%d/%s",
				name, k, FaultSeedBase+int64(i), runstate.KeyHash(sc))
			var row ResilienceRow
			if runstate.Lookup(rowKey, &row) {
				rows = append(rows, row)
				continue
			}
		}
		rng := rand.New(rand.NewSource(FaultSeedBase + int64(i)))
		plan, err := fault.RandomPlan(sys.Network(), fault.PlanSpec{LinkFailures: k, At: failAt}, rng)
		if err != nil {
			return nil, err
		}

		// 1. The un-reconfigured window: links die mid-run while routing
		// still references them.
		midCfg := cfg
		midCfg.LinkEvents = sys.LinkEventsFromPlan(plan)
		pattern, err := sys.IntraClusterPattern(sched.Partition)
		if err != nil {
			return nil, err
		}
		midSim, err := simnet.New(sys.Network(), sys.Routing(), pattern, midCfg)
		if err != nil {
			return nil, err
		}
		midM, err := midSim.RunContext(ctx)
		if err != nil {
			return nil, err
		}

		// 2. Degrade and recover three ways.
		ds, err := sys.Degrade(plan)
		if err != nil {
			return nil, err
		}
		rep, err := ds.Repair(ctx, sched.Partition, ScheduleSeed)
		if err != nil {
			return nil, err
		}
		scratch, err := ds.Schedule(ctx, core.ScheduleOptions{Clusters: 4, Seed: ScheduleSeed})
		if err != nil {
			return nil, err
		}
		movedScratch, err := mapping.MinMoves(rep.From, scratch.Partition)
		if err != nil {
			return nil, err
		}

		// 3. Simulate the three mappings on the degraded network.
		accept := func(p *mapping.Partition) (float64, error) {
			pts, err := ds.SimulateSweep(ctx, p, simConfig(sc), []float64{probe})
			if err != nil {
				return 0, err
			}
			return pts[0].Metrics.AcceptedTraffic, nil
		}
		accUn, err := accept(rep.From)
		if err != nil {
			return nil, err
		}
		accRep, err := accept(rep.Schedule.Partition)
		if err != nil {
			return nil, err
		}
		accScr, err := accept(scratch.Partition)
		if err != nil {
			return nil, err
		}

		row := ResilienceRow{
			Network:           name,
			LinkFailures:      k,
			DeliveredFraction: midM.DeliveredFraction,
			CcUnrepaired:      rep.FromQuality.Cc,
			CcRepaired:        rep.Schedule.Quality.Cc,
			CcRescheduled:     scratch.Quality.Cc,
			MovedRepaired:     rep.Moved,
			MovedRescheduled:  movedScratch,
			AccUnrepaired:     accUn,
			AccRepaired:       accRep,
			AccRescheduled:    accScr,
			ProbeRate:         probe,
		}
		if rowKey != "" {
			runstate.RecordCtx(ctx, rowKey, row)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Table renders the resilience study.
func (r *ResilienceResult) Table() string {
	var b strings.Builder
	t := stats.NewTable("network", "fails", "delivered", "Cc_old", "Cc_repair", "Cc_resched",
		"moved_repair", "moved_resched", "acc_old", "acc_repair", "acc_resched")
	for _, row := range r.Rows {
		t.AddRow(row.Network,
			fmt.Sprintf("%d", row.LinkFailures),
			fmt.Sprintf("%.3f", row.DeliveredFraction),
			fmt.Sprintf("%.4f", row.CcUnrepaired),
			fmt.Sprintf("%.4f", row.CcRepaired),
			fmt.Sprintf("%.4f", row.CcRescheduled),
			fmt.Sprintf("%d", row.MovedRepaired),
			fmt.Sprintf("%d", row.MovedRescheduled),
			fmt.Sprintf("%.4f", row.AccUnrepaired),
			fmt.Sprintf("%.4f", row.AccRepaired),
			fmt.Sprintf("%.4f", row.AccRescheduled))
	}
	b.WriteString(t.String())
	b.WriteString(fmt.Sprintf("\nprobe rate %.3f flits/cycle/host; failures strike at warmup+measure/4\n",
		r.Rows[0].ProbeRate))
	return b.String()
}
