package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"time"

	"commsched/internal/obs"
	"commsched/internal/runstate"
	"commsched/internal/topology"
)

// Manifest records the provenance of one experiment run so that a figure
// or CSV file can be traced back to the exact code, seeds, and topology
// instances that produced it. Commands create one at startup, add the
// topologies they instantiate, and write it next to their outputs (and
// into the observability trace) when the run finishes.
type Manifest struct {
	// Command is the producing binary ("paperfigs", "netsim", ...).
	Command string `json:"command"`
	// Args are the command-line arguments of the run.
	Args []string `json:"args,omitempty"`
	// StartedAt is the wall-clock start of the run (UTC).
	StartedAt time.Time `json:"started_at"`
	// DurationMS is the run's total wall time, filled by Finish.
	DurationMS float64 `json:"duration_ms"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
	// Revision is the VCS revision baked into the build (empty for
	// plain `go run` / test binaries without VCS stamping).
	Revision string `json:"revision,omitempty"`
	// Dirty reports uncommitted changes at build time.
	Dirty bool `json:"dirty,omitempty"`
	// Scale is the simulation effort the run used.
	Scale Scale `json:"scale"`
	// Seeds are the canonical seeds of the reproduction.
	Seeds map[string]int64 `json:"seeds"`
	// Topologies maps instance names to the SHA-256 of their canonical
	// JSON serialization — two runs with equal hashes simulated the
	// exact same network.
	Topologies map[string]string `json:"topologies,omitempty"`
}

// NewManifest starts a manifest for a command at the given scale, stamping
// the start time, toolchain, VCS revision, and the package's canonical
// seeds.
func NewManifest(command string, sc Scale) *Manifest {
	m := &Manifest{
		Command:   command,
		Args:      os.Args[1:],
		StartedAt: time.Now().UTC(),
		GoVersion: runtime.Version(),
		Scale:     sc,
		Seeds: map[string]int64{
			"topology16":          TopologySeed16,
			"schedule":            ScheduleSeed,
			"random_mapping_base": RandomMappingSeedBase,
			"sim":                 SimSeed,
		},
	}
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			switch s.Key {
			case "vcs.revision":
				m.Revision = s.Value
			case "vcs.modified":
				m.Dirty = s.Value == "true"
			}
		}
	}
	return m
}

// AddTopology records the canonical hash of a network instance under name.
func (m *Manifest) AddTopology(name string, net *topology.Network) error {
	data, err := net.MarshalJSON()
	if err != nil {
		return fmt.Errorf("experiments: hashing topology %s: %w", name, err)
	}
	sum := sha256.Sum256(data)
	if m.Topologies == nil {
		m.Topologies = make(map[string]string)
	}
	m.Topologies[name] = hex.EncodeToString(sum[:])
	return nil
}

// RunstateIdentity derives the durable-run identity from the manifest's
// stable fields: command, scale, seeds, and topology hashes — but not
// timings, arguments, or toolchain, which legitimately differ between a
// run and its resume.
func (m *Manifest) RunstateIdentity() (runstate.Identity, error) {
	scale, err := json.Marshal(m.Scale)
	if err != nil {
		return runstate.Identity{}, fmt.Errorf("experiments: encoding scale: %w", err)
	}
	return runstate.Identity{
		Command:    m.Command,
		Scale:      scale,
		Seeds:      m.Seeds,
		Topologies: m.Topologies,
	}, nil
}

// Finish stamps the run duration. Safe to call more than once (the last
// call wins).
func (m *Manifest) Finish() {
	m.DurationMS = float64(time.Since(m.StartedAt)) / float64(time.Millisecond)
}

// Write stores the manifest as indented JSON at path.
func (m *Manifest) Write(path string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("experiments: encoding manifest: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Emit mirrors the manifest into the observability trace as one
// "run.manifest" event (no-op when no sink is installed).
func (m *Manifest) Emit() {
	if !obs.Enabled() {
		return
	}
	fields := []obs.Field{
		obs.F("command", m.Command),
		obs.F("go_version", m.GoVersion),
		obs.F("started_at", m.StartedAt.Format(time.RFC3339Nano)),
		obs.F("duration_ms", m.DurationMS),
		obs.F("seed_schedule", m.Seeds["schedule"]),
		obs.F("seed_sim", m.Seeds["sim"]),
	}
	if m.Revision != "" {
		fields = append(fields, obs.F("revision", m.Revision), obs.F("dirty", m.Dirty))
	}
	for name, hash := range m.Topologies {
		fields = append(fields, obs.F("topology_"+name, hash))
	}
	obs.Event("run.manifest", fields...)
}
