package experiments

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"commsched/internal/runstate"
)

// TestAdversarialQuick: the quick-scale adversarial search must find at
// least one family where plain HEFT trails the Tabu-refined placement by
// the acceptance gap (AdvGapTarget), with every evaluated schedule pair
// validated against the schedule-validity invariants.
func TestAdversarialQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("search-heavy")
	}
	cfg := QuickAdvConfig()
	r, err := Adversarial(nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(cfg.Families) * cfg.Restarts; len(r.Rows) != want {
		t.Fatalf("got %d rows, want %d", len(r.Rows), want)
	}
	for _, row := range r.Rows {
		if row.BestRatio < row.StartRatio-1e-9 {
			t.Fatalf("%s/r%d: climb lost ground: best %.4f < start %.4f",
				row.Family, row.Restart, row.BestRatio, row.StartRatio)
		}
		if row.BestRatio < 1-1e-6 {
			t.Fatalf("%s/r%d: ratio %.4f below 1 — refinement should never beat its own seed backwards",
				row.Family, row.Restart, row.BestRatio)
		}
		if want := cfg.Steps + 1; row.Validated != want {
			t.Fatalf("%s/r%d: validated %d schedule pairs, want %d",
				row.Family, row.Restart, row.Validated, want)
		}
		if row.Tasks < 8 || row.Edges == 0 {
			t.Fatalf("%s/r%d: degenerate final instance (%d tasks, %d edges)",
				row.Family, row.Restart, row.Tasks, row.Edges)
		}
	}
	if r.BestRatio < AdvGapTarget {
		t.Fatalf("best adversarial gap %.4f below the %.2f acceptance target", r.BestRatio, AdvGapTarget)
	}
	table := r.Table()
	for _, want := range []string{"best_ratio", "layered", "forkjoin", "random", "target >= 1.20x: true"} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}
}

func TestAdversarialValidation(t *testing.T) {
	bad := []AdvConfig{
		{},
		{Families: []string{"mesh"}, Restarts: 1, Tasks: 24, Procs: 4},
		{Families: []string{"layered"}, Restarts: 0, Tasks: 24, Procs: 4},
		{Families: []string{"layered"}, Restarts: 1, Tasks: 4, Procs: 4},
		{Families: []string{"layered"}, Restarts: 1, Tasks: 24, Procs: 1},
	}
	for i, cfg := range bad {
		if _, err := Adversarial(nil, cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestAdversarialCancellable(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Adversarial(ctx, QuickAdvConfig()); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestAdversarialDeterminism: the search result is a pure function of
// the config — the serial loop and the par.ForEach fan-out must emit
// byte-identical CSVs.
func TestAdversarialDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("search-heavy")
	}
	cfg := QuickAdvConfig()
	cfg.Restarts = 1
	cfg.Steps = 6

	emit := func(parallel bool) []byte {
		cfg.Parallel = parallel
		r, err := Adversarial(nil, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := r.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := emit(false)
	parallel := emit(true)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("serial and parallel CSVs differ:\nserial:\n%s\nparallel:\n%s", serial, parallel)
	}
	if !bytes.Equal(serial, emit(false)) {
		t.Fatal("repeat serial run differs")
	}
}

// TestAdversarialResume: each climb is one durable unit, so a rerun over
// the same store replays every row without recomputation.
func TestAdversarialResume(t *testing.T) {
	if testing.Short() {
		t.Skip("search-heavy")
	}
	cfg := QuickAdvConfig()
	cfg.Restarts = 1
	cfg.Steps = 4
	dir := t.TempDir()
	id := runstate.Identity{Command: "adversarial-test"}

	st, err := runstate.Open(dir, id)
	if err != nil {
		t.Fatal(err)
	}
	runstate.SetStore(st)
	first, err := Adversarial(nil, cfg)
	runstate.SetStore(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := st.Stats().Recorded, int64(len(cfg.Families)); got < want {
		t.Fatalf("recorded = %d, want >= %d (one unit per climb)", got, want)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := runstate.Open(dir, id)
	if err != nil {
		t.Fatal(err)
	}
	runstate.SetStore(st2)
	second, err := Adversarial(nil, cfg)
	runstate.SetStore(nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got, want := st2.Stats().Hits, int64(len(cfg.Families)); got < want {
		t.Fatalf("hits = %d, want >= %d (climbs must replay)", got, want)
	}
	if !reflect.DeepEqual(first.Rows, second.Rows) {
		t.Fatalf("resumed rows differ:\n got %+v\nwant %+v", second.Rows, first.Rows)
	}

	// The unit key must not depend on the execution mode: a parallel
	// rerun replays the serial run's units.
	st3, err := runstate.Open(dir, id)
	if err != nil {
		t.Fatal(err)
	}
	runstate.SetStore(st3)
	cfg.Parallel = true
	third, err := Adversarial(nil, cfg)
	runstate.SetStore(nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	if got, want := st3.Stats().Hits, int64(len(cfg.Families)); got < want {
		t.Fatalf("parallel rerun hits = %d, want >= %d", got, want)
	}
	if !reflect.DeepEqual(first.Rows, third.Rows) {
		t.Fatal("parallel resumed rows differ from serial originals")
	}
}

// TestGoldenAdversarialCSV pins the quick-scale adversarial study: the
// search is a pure function of its seeds, so the CSV must be byte-stable
// across runs and platforms.
func TestGoldenAdversarialCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("search-heavy")
	}
	r, err := Adversarial(nil, QuickAdvConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, "fig_adversarial_quick.csv", buf.Bytes())
}
