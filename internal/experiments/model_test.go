package experiments

import (
	"strings"
	"testing"
)

func TestValidateModelNegativeCorrelation(t *testing.T) {
	sc := QuickScale()
	r, err := ValidateModel(16, 6, sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.MeanDistances) != 6 || len(r.Throughputs) != 6 {
		t.Fatalf("samples: %d/%d, want 6/6", len(r.MeanDistances), len(r.Throughputs))
	}
	// The PDCS'99 foundation: larger mean equivalent distance ⇒ lower
	// throughput. Demand a clearly negative correlation.
	if r.R > -0.3 {
		t.Fatalf("model/performance correlation r = %.3f, want clearly negative\n%s", r.R, r.Table())
	}
	if !strings.Contains(r.Table(), "Pearson") {
		t.Fatal("table missing correlation")
	}
}

func TestValidateModelNeedsEnoughTopologies(t *testing.T) {
	if _, err := ValidateModel(16, 2, QuickScale()); err == nil {
		t.Fatal("two topologies accepted")
	}
}

func TestAblateRoot(t *testing.T) {
	sc := QuickScale()
	r, err := AblateRoot(8, sc) // roots 0, 8, and the elected one
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Roots) < 2 {
		t.Fatalf("too few roots evaluated: %v", r.Roots)
	}
	foundElected := false
	for i, root := range r.Roots {
		if r.Throughput[i] <= 0 || r.MeanDistance[i] <= 0 {
			t.Fatalf("degenerate measurement for root %d", root)
		}
		if root == r.ElectedRoot {
			foundElected = true
		}
	}
	if !foundElected {
		t.Fatal("elected root not among evaluated roots")
	}
	if !strings.Contains(r.Table(), "*") {
		t.Fatal("table does not mark the elected root")
	}
}

func TestStudyScaling(t *testing.T) {
	sc := QuickScale()
	r, err := StudyScaling([]int{16, 20}, sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Gains) != 2 {
		t.Fatalf("gains = %v", r.Gains)
	}
	for i, g := range r.Gains {
		if g <= 1 {
			t.Fatalf("size %d: gain %.2f, want > 1", r.Sizes[i], g)
		}
	}
	if !strings.Contains(r.Table(), "throughput_gain") {
		t.Fatal("table missing header")
	}
}
