package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"commsched/internal/core"
	"commsched/internal/search"
	"commsched/internal/stats"
)

// OptimalityResult checks the paper's claim that on small networks (up to
// 16 switches) the Tabu minimum equals the exhaustive optimum.
type OptimalityResult struct {
	// Switches is the network size tested.
	Switches int
	// TabuF and ExhaustiveF are the best F_G values found.
	TabuF, ExhaustiveF float64
	// Match reports whether they agree to numerical tolerance.
	Match bool
	// TabuEvals and ExhaustiveEvals compare search cost.
	TabuEvals, ExhaustiveEvals int
}

// TabuVsExhaustive runs both searchers on an irregular network of the
// given size (must keep the exhaustive enumeration tractable: ≤ 16).
func TabuVsExhaustive(switches int, topoSeed int64) (*OptimalityResult, error) {
	if switches > 16 {
		return nil, fmt.Errorf("experiments: exhaustive check limited to 16 switches, got %d", switches)
	}
	net, err := NetworkOfSize(switches, topoSeed)
	if err != nil {
		return nil, err
	}
	sys, err := core.NewSystem(net, core.Options{})
	if err != nil {
		return nil, err
	}
	spec, err := search.BalancedSpec(switches, 4)
	if err != nil {
		return nil, err
	}
	ex, err := search.NewExhaustive().Search(nil, sys.Evaluator(), spec, nil)
	if err != nil {
		return nil, err
	}
	tb, err := search.NewTabu().Search(nil, sys.Evaluator(), spec, rand.New(rand.NewSource(ScheduleSeed)))
	if err != nil {
		return nil, err
	}
	return &OptimalityResult{
		Switches:        switches,
		TabuF:           tb.BestF,
		ExhaustiveF:     ex.BestF,
		Match:           math.Abs(tb.BestF-ex.BestF) <= 1e-9,
		TabuEvals:       tb.Evaluations,
		ExhaustiveEvals: ex.Evaluations,
	}, nil
}

// Table renders the optimality check.
func (r *OptimalityResult) Table() string {
	t := stats.NewTable("method", "best_F", "evaluations")
	t.AddRow("tabu", fmt.Sprintf("%.6f", r.TabuF), fmt.Sprintf("%d", r.TabuEvals))
	t.AddRow("exhaustive", fmt.Sprintf("%.6f", r.ExhaustiveF), fmt.Sprintf("%d", r.ExhaustiveEvals))
	return t.String() + fmt.Sprintf("\n%d switches: tabu matches exhaustive optimum: %v\n", r.Switches, r.Match)
}

// HeuristicRow is one searcher's score in the comparison study.
type HeuristicRow struct {
	// Name identifies the heuristic.
	Name string
	// BestF is the best similarity value found.
	BestF float64
	// Evaluations counts objective evaluations (cost).
	Evaluations int
}

// HeuristicComparison reproduces the paper's Section 2/4 claim: Tabu
// matched or beat the other heuristics (GSA, SA, …) at equal or lower
// cost.
type HeuristicComparison struct {
	// Switches is the network size.
	Switches int
	// Rows holds one entry per searcher, in run order.
	Rows []HeuristicRow
	// TabuAtLeastAsGood reports whether no other heuristic found a
	// strictly better value than Tabu.
	TabuAtLeastAsGood bool
}

// CompareHeuristics runs every heuristic on the same instance.
func CompareHeuristics(switches int, topoSeed int64) (*HeuristicComparison, error) {
	net, err := NetworkOfSize(switches, topoSeed)
	if err != nil {
		return nil, err
	}
	sys, err := core.NewSystem(net, core.Options{})
	if err != nil {
		return nil, err
	}
	spec, err := search.BalancedSpec(switches, 4)
	if err != nil {
		return nil, err
	}
	searchers := []search.Searcher{
		search.NewTabu(), search.NewGreedy(), search.NewAnneal(),
		search.NewGenetic(), search.NewGSA(), &search.RandomSample{Samples: 200},
	}
	res := &HeuristicComparison{Switches: switches}
	var tabuF float64
	for _, s := range searchers {
		r, err := s.Search(nil, sys.Evaluator(), spec, rand.New(rand.NewSource(ScheduleSeed)))
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, HeuristicRow{Name: s.Name(), BestF: r.BestF, Evaluations: r.Evaluations})
		if s.Name() == "tabu" {
			tabuF = r.BestF
		}
	}
	res.TabuAtLeastAsGood = true
	for _, row := range res.Rows {
		if row.BestF < tabuF-1e-9 {
			res.TabuAtLeastAsGood = false
		}
	}
	return res, nil
}

// Table renders the comparison.
func (r *HeuristicComparison) Table() string {
	t := stats.NewTable("heuristic", "best_F", "evaluations")
	for _, row := range r.Rows {
		t.AddRow(row.Name, fmt.Sprintf("%.6f", row.BestF), fmt.Sprintf("%d", row.Evaluations))
	}
	return t.String() + fmt.Sprintf("\n%d switches: tabu at least as good as every other heuristic: %v\n",
		r.Switches, r.TabuAtLeastAsGood)
}

// MultiNetCorrelation reproduces the paper's closing claim of Section 5.2:
// across other network examples, the correlation of Cc with performance
// exceeds 70% at low load and in saturation. At low load the
// discriminating performance measure is latency (all mappings accept the
// whole offered load before saturation); in deep saturation it is accepted
// traffic — PointCorrelation.Best picks accordingly.
type MultiNetCorrelation struct {
	// Sizes are the network sizes evaluated.
	Sizes []int
	// LowLoadR and SaturationR hold the correlation at the first and last
	// load points of each network's sweep.
	LowLoadR, SaturationR []float64
}

// CorrelationAcrossNetworks evaluates the Cc/performance correlation on
// several irregular instances.
func CorrelationAcrossNetworks(sizes []int, sc Scale) (*MultiNetCorrelation, error) {
	res := &MultiNetCorrelation{}
	for _, n := range sizes {
		net, err := NetworkOfSize(n, int64(3000+n))
		if err != nil {
			return nil, err
		}
		sim, err := simExperiment(net, sc)
		if err != nil {
			return nil, err
		}
		corr, err := CorrelationFromSim(sim)
		if err != nil {
			return nil, err
		}
		first, last := corr.PerPoint[0], corr.PerPoint[len(corr.PerPoint)-1]
		lowR, _ := first.Best()
		satR, _ := last.Best()
		res.Sizes = append(res.Sizes, n)
		res.LowLoadR = append(res.LowLoadR, lowR)
		res.SaturationR = append(res.SaturationR, satR)
	}
	return res, nil
}

// Table renders the multi-network correlations.
func (r *MultiNetCorrelation) Table() string {
	t := stats.NewTable("switches", "r_low_load", "r_saturation")
	for i, n := range r.Sizes {
		t.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%.3f", r.LowLoadR[i]), fmt.Sprintf("%.3f", r.SaturationR[i]))
	}
	return t.String()
}
