package experiments

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// update rewrites the golden files instead of comparing against them:
//
//	go test ./internal/experiments -run Golden -update
var update = flag.Bool("update", false, "rewrite golden files with the current output")

// goldenCompare checks got against testdata/<name> byte for byte, or
// rewrites the file under -update.
func goldenCompare(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file %s unreadable (regenerate with -update): %v", path, err)
	}
	if bytes.Equal(got, want) {
		return
	}
	// Report the first diverging line so a mismatch is diagnosable
	// without external diff tooling.
	gotLines := bytes.Split(got, []byte("\n"))
	wantLines := bytes.Split(want, []byte("\n"))
	for i := 0; i < len(gotLines) && i < len(wantLines); i++ {
		if !bytes.Equal(gotLines[i], wantLines[i]) {
			t.Fatalf("%s differs at line %d:\n got: %s\nwant: %s", name, i+1, gotLines[i], wantLines[i])
		}
	}
	t.Fatalf("%s differs in length: got %d lines, want %d", name, len(gotLines), len(wantLines))
}

// TestGoldenFig1CSV pins the Figure 1 Tabu trace on the canonical
// 16-switch instance: the search is fully deterministic under its fixed
// seed, so the CSV must be byte-stable across runs and platforms.
func TestGoldenFig1CSV(t *testing.T) {
	r, err := Fig1()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, "fig1.csv", buf.Bytes())
}

// TestGoldenFig3AndFig6CSV pins the quick-scale Figure 3 simulation series
// and the Figure 6 correlation derived from it, both on the fixed
// 16-switch seed. One simulation feeds both files, so the figures stay
// mutually consistent.
func TestGoldenFig3AndFig6CSV(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation golden test skipped in -short mode")
	}
	sim, err := Fig3(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sim.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, "fig3_quick.csv", buf.Bytes())

	corr, err := CorrelationFromSim(sim)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := corr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, "fig6_quick.csv", buf.Bytes())
}

func TestManifestRoundTrip(t *testing.T) {
	man := NewManifest("test", QuickScale())
	net, err := Network16()
	if err != nil {
		t.Fatal(err)
	}
	if err := man.AddTopology("irregular16", net); err != nil {
		t.Fatal(err)
	}
	// The hash must be a function of the topology alone.
	net2, err := Network16()
	if err != nil {
		t.Fatal(err)
	}
	man2 := NewManifest("test", QuickScale())
	if err := man2.AddTopology("irregular16", net2); err != nil {
		t.Fatal(err)
	}
	if man.Topologies["irregular16"] != man2.Topologies["irregular16"] {
		t.Fatalf("topology hash not deterministic: %s vs %s",
			man.Topologies["irregular16"], man2.Topologies["irregular16"])
	}
	if len(man.Topologies["irregular16"]) != 64 {
		t.Fatalf("want hex SHA-256, got %q", man.Topologies["irregular16"])
	}

	man.Finish()
	path := filepath.Join(t.TempDir(), "manifest.json")
	if err := man.Write(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got Manifest
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("manifest not parseable: %v", err)
	}
	if got.Command != "test" || got.GoVersion == "" {
		t.Fatalf("manifest fields lost: %+v", got)
	}
	if got.Seeds["schedule"] != ScheduleSeed || got.Seeds["sim"] != SimSeed {
		t.Fatalf("manifest seeds wrong: %+v", got.Seeds)
	}
	if time.Since(got.StartedAt) > time.Hour {
		t.Fatalf("implausible start time %v", got.StartedAt)
	}
}

func TestManifestEmitIsNoOpWithoutSink(t *testing.T) {
	man := NewManifest(fmt.Sprintf("cmd-%d", os.Getpid()), QuickScale())
	man.Finish()
	man.Emit() // must not panic or block with observability off
}
