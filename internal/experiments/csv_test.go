package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestFig1CSV(t *testing.T) {
	r, err := Fig1()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "iter,restart,F" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) != len(r.Trace)+1 {
		t.Fatalf("rows = %d, want %d", len(lines)-1, len(r.Trace))
	}
}

func TestSimResultCSV(t *testing.T) {
	sc := QuickScale()
	r, err := Fig3(sc)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	want := 1 + (1+len(r.Randoms))*sc.SweepPoints
	if len(lines) != want {
		t.Fatalf("lines = %d, want %d", len(lines), want)
	}
	if !strings.HasPrefix(lines[1], "OP,") {
		t.Fatalf("first data row = %q, want OP series first", lines[1])
	}
}

func TestFig6CSV(t *testing.T) {
	sc := QuickScale()
	sc.RandomMappings = 5
	r, err := Fig6(sc)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "point,r_accepted,r_latency" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) != sc.SweepPoints+1 {
		t.Fatalf("rows = %d, want %d", len(lines)-1, sc.SweepPoints)
	}
}
