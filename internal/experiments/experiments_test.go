package experiments

import (
	"strings"
	"testing"
)

func TestNetwork16Canonical(t *testing.T) {
	net, err := Network16()
	if err != nil {
		t.Fatal(err)
	}
	if net.Switches() != 16 || net.Hosts() != 64 {
		t.Fatalf("switches=%d hosts=%d, want 16/64", net.Switches(), net.Hosts())
	}
	net2, err := Network16()
	if err != nil {
		t.Fatal(err)
	}
	la, lb := net.Links(), net2.Links()
	for i := range la {
		if la[i] != lb[i] {
			t.Fatal("Network16 is not deterministic")
		}
	}
}

func TestNetwork24Rings(t *testing.T) {
	net, err := Network24Rings()
	if err != nil {
		t.Fatal(err)
	}
	if net.Switches() != 24 || net.Hosts() != 96 {
		t.Fatalf("switches=%d hosts=%d, want 24/96", net.Switches(), net.Hosts())
	}
}

func TestFig1TraceShape(t *testing.T) {
	r, err := Fig1()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Trace) == 0 {
		t.Fatal("empty trace")
	}
	if r.Restarts != 10 {
		t.Fatalf("restarts = %d, want the paper's 10", r.Restarts)
	}
	if r.RestartsReachingBest < 1 || r.RestartsReachingBest > r.Restarts {
		t.Fatalf("RestartsReachingBest = %d out of range", r.RestartsReachingBest)
	}
	if r.BestF <= 0 || r.BestF >= 1 {
		t.Fatalf("best F = %v, want in (0,1) (better than random)", r.BestF)
	}
	if !strings.Contains(r.Table(), "best F") {
		t.Fatal("table missing summary")
	}
}

func TestFig2PartitionQuality(t *testing.T) {
	r, err := Fig2(3)
	if err != nil {
		t.Fatal(err)
	}
	if r.OP.Partition.M() != 4 {
		t.Fatal("OP partition not 4 clusters")
	}
	for c := 0; c < 4; c++ {
		if r.OP.Partition.Size(c) != 4 {
			t.Fatalf("cluster %d size %d, want 4 (paper: four clusters of four switches)", c, r.OP.Partition.Size(c))
		}
	}
	for _, m := range r.Randoms {
		if m.Cc >= r.OP.Cc {
			t.Fatalf("random %s Cc %.3f >= OP %.3f", m.Label, m.Cc, r.OP.Cc)
		}
	}
	if !strings.Contains(r.Table(), "OP") {
		t.Fatal("table missing OP row")
	}
}

func TestCanonicalPartitionStable(t *testing.T) {
	// Regression guard: the canonical 16-switch instance and seeds must
	// keep producing the exact partition recorded in EXPERIMENTS.md. If
	// this fails, a change altered rng consumption somewhere in the
	// pipeline — update EXPERIMENTS.md and the README consciously.
	r, err := Fig2(0)
	if err != nil {
		t.Fatal(err)
	}
	const want = "(0,4,6,14) (1,5,12,15) (2,7,8,9) (3,10,11,13)"
	if got := r.OP.Partition.String(); got != want {
		t.Fatalf("canonical partition drifted:\n got %s\nwant %s", got, want)
	}
}

func TestFig4IdentifiesRings(t *testing.T) {
	r, err := Fig4(3)
	if err != nil {
		t.Fatal(err)
	}
	if r.GroundTruth == nil {
		t.Fatal("no ground truth recorded")
	}
	if !r.MatchesGroundTruth {
		t.Fatalf("scheduling technique failed to identify the rings: got %s", r.OP.Partition)
	}
	// The designed network has better defined clusters: its OP coefficient
	// must exceed the 16-switch network's (paper, Section 5.2).
	f2, err := Fig2(0)
	if err != nil {
		t.Fatal(err)
	}
	if r.OP.Cc <= f2.OP.Cc {
		t.Fatalf("rings Cc %.3f not above irregular-16 Cc %.3f", r.OP.Cc, f2.OP.Cc)
	}
}

func TestFig3ThroughputGain(t *testing.T) {
	r, err := Fig3(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Randoms) != QuickScale().RandomMappings {
		t.Fatalf("got %d random curves", len(r.Randoms))
	}
	if r.ThroughputGain <= 1 {
		t.Fatalf("OP gain %.2fx, want > 1 (paper: ≈1.85x)", r.ThroughputGain)
	}
	if !strings.Contains(r.Table(), "gain over best random") {
		t.Fatal("table missing summary")
	}
}

func TestFig5LargerGainThanFig3(t *testing.T) {
	sc := QuickScale()
	f3, err := Fig3(sc)
	if err != nil {
		t.Fatal(err)
	}
	f5, err := Fig5(sc)
	if err != nil {
		t.Fatal(err)
	}
	if f5.ThroughputGain <= f3.ThroughputGain {
		t.Fatalf("rings gain %.2fx not above irregular gain %.2fx (paper: 5x vs 1.85x)",
			f5.ThroughputGain, f3.ThroughputGain)
	}
}

func TestFig6CorrelationPositive(t *testing.T) {
	sc := QuickScale()
	sc.RandomMappings = 5 // correlation needs enough mappings
	r, err := Fig6(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.PerPoint) != sc.SweepPoints {
		t.Fatalf("%d correlation points, want %d", len(r.PerPoint), sc.SweepPoints)
	}
	// At the highest load (deep saturation for random mappings) the
	// correlation must be clearly positive: higher Cc ⇒ more accepted
	// traffic.
	last := r.PerPoint[len(r.PerPoint)-1]
	if !last.Defined || last.R < 0.5 {
		t.Fatalf("saturation correlation = %+v, want defined and > 0.5", last)
	}
	// At the lowest load, latency is the discriminating measure and must
	// correlate positively with Cc (higher Cc ⇒ lower latency).
	first := r.PerPoint[0]
	if !first.LatencyDefined || first.RLatency < 0.3 {
		t.Fatalf("low-load latency correlation = %+v, want defined and > 0.3", first)
	}
	if !strings.Contains(r.Table(), "S1") {
		t.Fatal("table missing points")
	}
}

func TestPointCorrelationBest(t *testing.T) {
	both := PointCorrelation{R: 0.4, Defined: true, RLatency: 0.8, LatencyDefined: true}
	if v, ok := both.Best(); !ok || v != 0.8 {
		t.Fatalf("Best() = %v,%v, want 0.8,true", v, ok)
	}
	accOnly := PointCorrelation{R: 0.4, Defined: true}
	if v, ok := accOnly.Best(); !ok || v != 0.4 {
		t.Fatalf("Best() = %v,%v, want 0.4,true", v, ok)
	}
	latOnly := PointCorrelation{RLatency: -0.2, LatencyDefined: true}
	if v, ok := latOnly.Best(); !ok || v != -0.2 {
		t.Fatalf("Best() = %v,%v, want -0.2,true", v, ok)
	}
	if _, ok := (PointCorrelation{}).Best(); ok {
		t.Fatal("undefined correlation reported defined")
	}
}

func TestCorrelationFromSimValidation(t *testing.T) {
	sim := &SimResult{OP: SimSeries{}}
	if _, err := CorrelationFromSim(sim); err == nil {
		t.Fatal("too-few mappings accepted")
	}
}

func TestTabuVsExhaustiveSmall(t *testing.T) {
	r, err := TabuVsExhaustive(8, 500)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Match {
		t.Fatalf("tabu %.6f != exhaustive %.6f on 8 switches", r.TabuF, r.ExhaustiveF)
	}
	if r.TabuEvals <= 0 || r.ExhaustiveEvals <= 0 {
		t.Fatal("missing cost counters")
	}
	if !strings.Contains(r.Table(), "exhaustive") {
		t.Fatal("table missing rows")
	}
	if _, err := TabuVsExhaustive(24, 1); err == nil {
		t.Fatal("oversized exhaustive accepted")
	}
}

func TestCompareHeuristics(t *testing.T) {
	r, err := CompareHeuristics(12, 600)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("%d heuristics, want 6", len(r.Rows))
	}
	if !r.TabuAtLeastAsGood {
		t.Log(r.Table())
		t.Fatal("tabu beaten by another heuristic (paper claims parity or better)")
	}
}

func TestCorrelationAcrossNetworks(t *testing.T) {
	sc := QuickScale()
	sc.RandomMappings = 5
	r, err := CorrelationAcrossNetworks([]int{16, 20}, sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Sizes) != 2 {
		t.Fatalf("sizes = %v", r.Sizes)
	}
	for i, n := range r.Sizes {
		if r.SaturationR[i] < 0.5 {
			t.Fatalf("network %d: saturation correlation %.3f below 0.5", n, r.SaturationR[i])
		}
		if r.LowLoadR[i] < 0.3 {
			t.Fatalf("network %d: low-load correlation %.3f below 0.3", n, r.LowLoadR[i])
		}
	}
	if !strings.Contains(r.Table(), "r_low_load") {
		t.Fatal("table missing header")
	}
}
