package experiments

import (
	"fmt"
	"strings"

	"commsched/internal/core"
	"commsched/internal/mapping"
	"commsched/internal/search"
	"commsched/internal/simnet"
	"commsched/internal/stats"
	"commsched/internal/topology"
)

// Fig1Result is the Tabu trajectory of Figure 1: F(P_i) against the total
// iteration number across the ten restarts on the 16-switch network.
type Fig1Result struct {
	// Trace is the per-iteration value of F_G; restart boundaries appear
	// as the peaks the paper describes.
	Trace []search.TracePoint
	// BestF is the minimum reached.
	BestF float64
	// Restarts is the number of random seeds used.
	Restarts int
	// RestartsReachingBest counts seeds whose trajectory touched BestF —
	// the paper notes only some starting points reach the minimum.
	RestartsReachingBest int
}

// Fig1 reproduces Figure 1 (Tabu search trace in a 16-switch network).
func Fig1() (*Fig1Result, error) {
	net, err := Network16()
	if err != nil {
		return nil, err
	}
	sys, err := core.NewSystem(net, core.Options{})
	if err != nil {
		return nil, err
	}
	sched, err := sys.Schedule(nil, core.ScheduleOptions{Clusters: 4, Seed: ScheduleSeed, RecordTrace: true})
	if err != nil {
		return nil, err
	}
	res := &Fig1Result{Trace: sched.Search.Trace, BestF: sched.Search.BestF}
	reached := map[int]bool{}
	for _, tp := range sched.Search.Trace {
		if tp.Restart+1 > res.Restarts {
			res.Restarts = tp.Restart + 1
		}
		if tp.F <= res.BestF+1e-9 {
			reached[tp.Restart] = true
		}
	}
	res.RestartsReachingBest = len(reached)
	return res, nil
}

// Table renders the trace as iteration/restart/F rows.
func (r *Fig1Result) Table() string {
	t := stats.NewTable("iter", "restart", "F")
	for _, tp := range r.Trace {
		t.AddRow(fmt.Sprintf("%d", tp.Iteration), fmt.Sprintf("%d", tp.Restart), fmt.Sprintf("%.4f", tp.F))
	}
	return t.String() + fmt.Sprintf("\nbest F = %.4f, reached from %d of %d starting points\n",
		r.BestF, r.RestartsReachingBest, r.Restarts)
}

// PartitionResult is a Figure 2/4 artifact: the cluster partition the
// scheduling technique produces for a network, with baselines.
type PartitionResult struct {
	// Network names the instance.
	Network string
	// OP is the scheduled mapping.
	OP MappingPoint
	// Randoms are the R_i baselines.
	Randoms []MappingPoint
	// GroundTruth, when non-nil, is the designed partition the technique
	// is expected to find (Figure 4's rings).
	GroundTruth *MappingPoint
	// MatchesGroundTruth reports whether OP equals GroundTruth up to
	// cluster relabeling.
	MatchesGroundTruth bool
}

// Fig2 reproduces Figure 2: the 4-cluster partition the technique obtains
// for the 16-switch network, with the clustering coefficients of random
// mappings for comparison.
func Fig2(randoms int) (*PartitionResult, error) {
	net, err := Network16()
	if err != nil {
		return nil, err
	}
	return partitionExperiment(net, nil, randoms)
}

// Fig4 reproduces Figure 4: the partition for the specially designed
// 24-switch network of four interconnected rings — the technique must
// identify the rings.
func Fig4(randoms int) (*PartitionResult, error) {
	net, err := Network24Rings()
	if err != nil {
		return nil, err
	}
	truth := make([]int, net.Switches())
	for r, ring := range topology.RingClusters(4, 6) {
		for _, s := range ring {
			truth[s] = r
		}
	}
	return partitionExperiment(net, truth, randoms)
}

func partitionExperiment(net *topology.Network, truth []int, randoms int) (*PartitionResult, error) {
	sys, err := core.NewSystem(net, core.Options{})
	if err != nil {
		return nil, err
	}
	op, rs, err := buildMappings(sys, 4, randoms)
	if err != nil {
		return nil, err
	}
	res := &PartitionResult{Network: net.Name(), OP: op, Randoms: rs}
	if truth != nil {
		tp, err := mapping.New(truth, 4)
		if err != nil {
			return nil, err
		}
		tq, err := sys.Evaluate(tp)
		if err != nil {
			return nil, err
		}
		res.GroundTruth = &MappingPoint{Label: "rings", Partition: tp, Cc: tq.Cc}
		res.MatchesGroundTruth = op.Partition.Canonical().Equal(tp.Canonical())
	}
	return res, nil
}

// Table renders the partition and coefficient comparison.
func (r *PartitionResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "network %s\nOP partition: %s\n", r.Network, r.OP.Partition)
	if r.GroundTruth != nil {
		fmt.Fprintf(&b, "designed clusters: %s (identified: %v)\n", r.GroundTruth.Partition, r.MatchesGroundTruth)
	}
	t := stats.NewTable("mapping", "Cc")
	t.AddRow(r.OP.Label, fmt.Sprintf("%.4f", r.OP.Cc))
	for _, m := range r.Randoms {
		t.AddRow(m.Label, fmt.Sprintf("%.4f", m.Cc))
	}
	b.WriteString(t.String())
	return b.String()
}

// SimSeries is the latency-vs-traffic series of one mapping (one curve of
// Figure 3/5).
type SimSeries struct {
	// Mapping labels and scores the curve.
	Mapping MappingPoint
	// Points are the S1…Sn operating points.
	Points []simnet.SweepPoint
	// Throughput is the maximum accepted traffic over the sweep.
	Throughput float64
}

// SimResult is a full Figure 3/5 reproduction: all curves plus the
// headline throughput gain.
type SimResult struct {
	// Network names the instance.
	Network string
	// OP is the scheduled mapping's curve.
	OP SimSeries
	// Randoms are the baseline curves.
	Randoms []SimSeries
	// ThroughputGain = OP throughput / best random throughput (the paper
	// reports ≈1.85 on the 16-switch network and ≈5 on the 24-switch
	// rings network).
	ThroughputGain float64
}

// Fig3 reproduces Figure 3: simulation of the 16-switch network from low
// load to saturation for the OP mapping and the random mappings.
func Fig3(sc Scale) (*SimResult, error) {
	net, err := Network16()
	if err != nil {
		return nil, err
	}
	return simExperiment(net, sc)
}

// Fig5 reproduces Figure 5: the same simulation on the designed 24-switch
// rings network, where the gain is much larger.
func Fig5(sc Scale) (*SimResult, error) {
	net, err := Network24Rings()
	if err != nil {
		return nil, err
	}
	return simExperiment(net, sc)
}

func simExperiment(net *topology.Network, sc Scale) (*SimResult, error) {
	sys, err := core.NewSystem(net, core.Options{})
	if err != nil {
		return nil, err
	}
	op, rs, err := buildMappings(sys, 4, sc.RandomMappings)
	if err != nil {
		return nil, err
	}
	rates := simnet.LinearRates(sc.SweepPoints, sc.MaxRate)
	cfg := simConfig(sc)
	// All mappings (OP first, then the R_i baselines) sweep concurrently;
	// each run's seed depends only on (mapping, rate), so the curves are
	// identical to the former sequential loop.
	all := append([]MappingPoint{op}, rs...)
	parts := make([]*mapping.Partition, len(all))
	for i, m := range all {
		parts[i] = m.Partition
	}
	sweeps, err := sys.SimulateSweepMany(nil, parts, cfg, rates)
	if err != nil {
		return nil, err
	}
	res := &SimResult{Network: net.Name()}
	res.OP = SimSeries{Mapping: op, Points: sweeps[0], Throughput: simnet.Throughput(sweeps[0])}
	bestRandom := 0.0
	for i, m := range rs {
		s := SimSeries{Mapping: m, Points: sweeps[i+1], Throughput: simnet.Throughput(sweeps[i+1])}
		res.Randoms = append(res.Randoms, s)
		if s.Throughput > bestRandom {
			bestRandom = s.Throughput
		}
	}
	if bestRandom > 0 {
		res.ThroughputGain = res.OP.Throughput / bestRandom
	}
	return res, nil
}

// Table renders all curves: one row per (mapping, load point).
func (r *SimResult) Table() string {
	t := stats.NewTable("mapping", "Cc", "point", "offered", "accepted", "latency")
	add := func(s SimSeries) {
		for _, p := range s.Points {
			t.AddRow(s.Mapping.Label,
				fmt.Sprintf("%.3f", s.Mapping.Cc),
				fmt.Sprintf("S%d", p.Index),
				fmt.Sprintf("%.4f", p.Metrics.OfferedTraffic),
				fmt.Sprintf("%.4f", p.Metrics.AcceptedTraffic),
				fmt.Sprintf("%.1f", p.Metrics.AvgLatency))
		}
	}
	add(r.OP)
	for _, s := range r.Randoms {
		add(s)
	}
	return t.String() + fmt.Sprintf("\nnetwork %s: OP throughput %.4f, gain over best random = %.2fx\n",
		r.Network, r.OP.Throughput, r.ThroughputGain)
}

// PointCorrelation is the Figure 6 correlation at one load point. Two
// performance measures are correlated with Cc, because they differentiate
// in different regimes: below saturation every mapping accepts all offered
// traffic (accepted traffic is constant across mappings and its
// correlation is noise), but latency already separates good mappings; past
// saturation, accepted traffic is the discriminating measure.
type PointCorrelation struct {
	// Index is the S-point number.
	Index int
	// R is the Pearson correlation between Cc and accepted traffic across
	// mappings.
	R float64
	// Defined is false when R is undefined (constant data).
	Defined bool
	// RLatency is the Pearson correlation between Cc and negated average
	// latency (higher Cc ⇒ lower latency ⇒ positive correlation).
	RLatency float64
	// LatencyDefined is false when RLatency is undefined.
	LatencyDefined bool
}

// Best returns the stronger defined correlation at this point — the
// measure that discriminates in the point's load regime.
func (p PointCorrelation) Best() (float64, bool) {
	switch {
	case p.Defined && p.LatencyDefined:
		if p.R >= p.RLatency {
			return p.R, true
		}
		return p.RLatency, true
	case p.Defined:
		return p.R, true
	case p.LatencyDefined:
		return p.RLatency, true
	default:
		return 0, false
	}
}

// Fig6Result is the correlation study of Figure 6.
type Fig6Result struct {
	// PerPoint holds one correlation per load point S1…Sn.
	PerPoint []PointCorrelation
}

// Fig6 reproduces Figure 6: correlation of the clustering coefficient with
// accepted traffic at every load point, across all Figure 3 mappings.
func Fig6(sc Scale) (*Fig6Result, error) {
	sim, err := Fig3(sc)
	if err != nil {
		return nil, err
	}
	return CorrelationFromSim(sim)
}

// CorrelationFromSim computes the Figure 6 correlations from an existing
// simulation result (so Fig3 and Fig6 can share one set of runs).
func CorrelationFromSim(sim *SimResult) (*Fig6Result, error) {
	series := append([]SimSeries{sim.OP}, sim.Randoms...)
	if len(series) < 3 {
		return nil, fmt.Errorf("experiments: correlation needs >= 3 mappings, got %d", len(series))
	}
	nPoints := len(sim.OP.Points)
	res := &Fig6Result{}
	for pi := 0; pi < nPoints; pi++ {
		var cc, acc, negLat []float64
		for _, s := range series {
			if pi >= len(s.Points) {
				return nil, fmt.Errorf("experiments: ragged sweep in correlation input")
			}
			cc = append(cc, s.Mapping.Cc)
			acc = append(acc, s.Points[pi].Metrics.AcceptedTraffic)
			negLat = append(negLat, -s.Points[pi].Metrics.AvgLatency)
		}
		pc := PointCorrelation{Index: pi + 1}
		if r, err := stats.Pearson(cc, acc); err == nil {
			pc.R, pc.Defined = r, true
		}
		if r, err := stats.Pearson(cc, negLat); err == nil {
			pc.RLatency, pc.LatencyDefined = r, true
		}
		res.PerPoint = append(res.PerPoint, pc)
	}
	return res, nil
}

// Table renders the per-point correlations.
func (r *Fig6Result) Table() string {
	t := stats.NewTable("point", "r_accepted", "r_latency")
	fmtR := func(v float64, ok bool) string {
		if !ok {
			return "undefined"
		}
		return fmt.Sprintf("%.3f", v)
	}
	for _, p := range r.PerPoint {
		t.AddRow(fmt.Sprintf("S%d", p.Index),
			fmtR(p.R, p.Defined),
			fmtR(p.RLatency, p.LatencyDefined))
	}
	return t.String()
}
