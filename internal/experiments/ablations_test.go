package experiments

import (
	"strings"
	"testing"
)

func TestAblateMetric(t *testing.T) {
	r, err := AblateMetric(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	// The resistance-driven search cannot score worse than the hop-driven
	// one on the resistance-based coefficient it optimizes.
	if r.CcResistance < r.CcHop-1e-9 {
		t.Fatalf("resistance-driven Cc %.4f below hop-driven %.4f", r.CcResistance, r.CcHop)
	}
	if r.ThroughputResistance <= 0 || r.ThroughputHop <= 0 {
		t.Fatal("zero throughput in ablation")
	}
	if !strings.Contains(r.Table(), "hop-count") {
		t.Fatal("table missing rows")
	}
}

func TestStudyMixedTraffic(t *testing.T) {
	sc := QuickScale()
	r, err := StudyMixedTraffic([]float64{1.0, 0.5}, sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 2 {
		t.Fatalf("points = %d, want 2", len(r.Points))
	}
	// Pure intra-cluster traffic must benefit more from the scheduled
	// mapping than half-declustered traffic.
	if r.Points[0].Gain <= r.Points[1].Gain {
		t.Fatalf("gain at 100%% intra (%.2f) not above 50%% intra (%.2f)",
			r.Points[0].Gain, r.Points[1].Gain)
	}
	if r.Points[0].Gain <= 1 {
		t.Fatalf("scheduled mapping did not win at 100%% intra: %.2f", r.Points[0].Gain)
	}
	if !strings.Contains(r.Table(), "100%") {
		t.Fatal("table missing fraction rows")
	}
}

func TestStudyWeighted(t *testing.T) {
	r, err := StudyWeighted(50)
	if err != nil {
		t.Fatal(err)
	}
	// The weighted scheduler must give the heavy cluster an intra cost no
	// worse than the unweighted scheduler does.
	if r.HeavyIntraWeighted > r.HeavyIntraPlain+1e-9 {
		t.Fatalf("weighted heavy-cluster cost %.4f above unweighted %.4f",
			r.HeavyIntraWeighted, r.HeavyIntraPlain)
	}
	if r.Partition == "" {
		t.Fatal("missing partition rendering")
	}
	if !strings.Contains(r.Table(), "weighted") {
		t.Fatal("table missing rows")
	}
}
