package experiments

import (
	"context"
	"fmt"

	"commsched/internal/core"
	"commsched/internal/distance"
	"commsched/internal/par"
	"commsched/internal/routing"
	"commsched/internal/simnet"
	"commsched/internal/stats"
	"commsched/internal/traffic"
)

// ModelValidation reproduces the foundation the paper rests on (its
// reference [2], PDCS'99): the table of equivalent distances is strongly
// correlated with network performance, independent of traffic pattern.
// Across several random topologies of one size, the mean equivalent
// distance must correlate *negatively* with uniform-traffic throughput
// (larger effective distances ⇒ less deliverable bandwidth).
type ModelValidation struct {
	// Topologies is the number of instances evaluated.
	Topologies int
	// MeanDistances and Throughputs are the paired samples.
	MeanDistances, Throughputs []float64
	// R is their Pearson correlation (expected strongly negative).
	R float64
}

// ValidateModel runs the study on `count` random irregular topologies of
// the given size under global uniform traffic (no mapping involved — this
// isolates the distance model itself).
func ValidateModel(switches, count int, sc Scale) (*ModelValidation, error) {
	if count < 3 {
		return nil, fmt.Errorf("experiments: model validation needs >= 3 topologies, got %d", count)
	}
	res := &ModelValidation{
		Topologies:    count,
		MeanDistances: make([]float64, count),
		Throughputs:   make([]float64, count),
	}
	rates := simnet.LinearRates(sc.SweepPoints, sc.MaxRate)
	// Each topology is characterized and swept independently; the
	// instances run concurrently with results written by index.
	err := par.ForEach(nil, count, func(ctx context.Context, k int) error {
		net, err := NetworkOfSize(switches, int64(7000+17*k))
		if err != nil {
			return err
		}
		ud, err := routing.NewUpDown(net, -1)
		if err != nil {
			return err
		}
		tab, err := distance.Compute(net, ud)
		if err != nil {
			return err
		}
		// Mean equivalent distance over pairs.
		sum, pairs := 0.0, 0
		for i := 0; i < switches; i++ {
			for j := i + 1; j < switches; j++ {
				sum += tab.At(i, j)
				pairs++
			}
		}
		pattern, err := traffic.NewUniform(net.Hosts())
		if err != nil {
			return err
		}
		points, err := simnet.Sweep(ctx, net, ud, pattern, simConfig(sc), rates)
		if err != nil {
			return err
		}
		res.MeanDistances[k] = sum / float64(pairs)
		res.Throughputs[k] = simnet.Throughput(points)
		return nil
	})
	if err != nil {
		return nil, err
	}
	r, err := stats.Pearson(res.MeanDistances, res.Throughputs)
	if err != nil {
		return nil, fmt.Errorf("experiments: model validation correlation: %w", err)
	}
	res.R = r
	return res, nil
}

// Table renders the validation samples and correlation.
func (r *ModelValidation) Table() string {
	t := stats.NewTable("topology", "mean_equiv_distance", "uniform_throughput")
	for i := range r.MeanDistances {
		t.AddRow(fmt.Sprintf("#%d", i+1),
			fmt.Sprintf("%.4f", r.MeanDistances[i]),
			fmt.Sprintf("%.4f", r.Throughputs[i]))
	}
	return t.String() + fmt.Sprintf("\nPearson r = %.3f (expected strongly negative)\n", r.R)
}

// RootAblation studies the up*/down* root election: the root choice
// shapes the spanning tree, the legal paths, and hence both the distance
// table and real performance.
type RootAblation struct {
	// Roots are the evaluated root switches.
	Roots []int
	// MeanDistance is the table mean per root.
	MeanDistance []float64
	// Throughput is the uniform-traffic throughput per root.
	Throughput []float64
	// ElectedRoot is what the default heuristic picks.
	ElectedRoot int
}

// AblateRoot evaluates every switch of the canonical 16-switch network as
// the up*/down* root (stride selects a subset for speed: every stride-th
// switch plus the elected root).
func AblateRoot(stride int, sc Scale) (*RootAblation, error) {
	if stride < 1 {
		stride = 1
	}
	net, err := Network16()
	if err != nil {
		return nil, err
	}
	elected, err := routing.NewUpDown(net, -1)
	if err != nil {
		return nil, err
	}
	selected := map[int]bool{elected.Root(): true}
	for r := 0; r < net.Switches(); r += stride {
		selected[r] = true
	}
	var roots []int
	for r := 0; r < net.Switches(); r++ {
		if selected[r] {
			roots = append(roots, r)
		}
	}
	res := &RootAblation{
		ElectedRoot:  elected.Root(),
		Roots:        roots,
		MeanDistance: make([]float64, len(roots)),
		Throughput:   make([]float64, len(roots)),
	}
	rates := simnet.LinearRates(sc.SweepPoints, sc.MaxRate)
	pattern, err := traffic.NewUniform(net.Hosts())
	if err != nil {
		return nil, err
	}
	// Every candidate root re-characterizes the same network; the roots
	// are independent, so they run concurrently in root order.
	err = par.ForEach(nil, len(roots), func(ctx context.Context, i int) error {
		root := roots[i]
		sys, err := core.NewSystem(net, core.Options{Root: &root})
		if err != nil {
			return err
		}
		tab := sys.DistanceTable()
		sum, pairs := 0.0, 0
		for a := 0; a < net.Switches(); a++ {
			for b := a + 1; b < net.Switches(); b++ {
				sum += tab.At(a, b)
				pairs++
			}
		}
		points, err := simnet.Sweep(ctx, net, sys.Routing(), pattern, simConfig(sc), rates)
		if err != nil {
			return err
		}
		res.MeanDistance[i] = sum / float64(pairs)
		res.Throughput[i] = simnet.Throughput(points)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Table renders the per-root measurements.
func (r *RootAblation) Table() string {
	t := stats.NewTable("root", "mean_equiv_distance", "uniform_throughput", "elected")
	for i, root := range r.Roots {
		mark := ""
		if root == r.ElectedRoot {
			mark = "*"
		}
		t.AddRow(fmt.Sprintf("%d", root),
			fmt.Sprintf("%.4f", r.MeanDistance[i]),
			fmt.Sprintf("%.4f", r.Throughput[i]),
			mark)
	}
	return t.String()
}

// ScalingStudy measures the scheduling gain as the network grows — the
// trend a practitioner adopting the technique cares about.
type ScalingStudy struct {
	// Sizes are the evaluated switch counts.
	Sizes []int
	// Gains are the OP/best-random throughput ratios.
	Gains []float64
}

// StudyScaling runs the Figure 3 experiment across network sizes.
func StudyScaling(sizes []int, sc Scale) (*ScalingStudy, error) {
	res := &ScalingStudy{}
	for _, n := range sizes {
		net, err := NetworkOfSize(n, int64(9000+n))
		if err != nil {
			return nil, err
		}
		sim, err := simExperiment(net, sc)
		if err != nil {
			return nil, err
		}
		res.Sizes = append(res.Sizes, n)
		res.Gains = append(res.Gains, sim.ThroughputGain)
	}
	return res, nil
}

// Table renders the scaling trend.
func (r *ScalingStudy) Table() string {
	t := stats.NewTable("switches", "throughput_gain")
	for i, n := range r.Sizes {
		t.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%.2fx", r.Gains[i]))
	}
	return t.String()
}
