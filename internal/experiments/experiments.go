// Package experiments reproduces every figure of the paper's evaluation
// (Section 5) end to end: it builds the canonical network instances, runs
// the scheduling technique and the random-mapping baselines, drives the
// flit-level simulator across the S1…S9 load ladder, and reports the
// series/tables behind Figures 1–6 plus the paper's headline claims.
//
// All drivers are deterministic: the seeds of every topology, mapping,
// search, and simulation are fixed here.
package experiments

import (
	"fmt"
	"math/rand"

	"commsched/internal/core"
	"commsched/internal/mapping"
	"commsched/internal/simnet"
	"commsched/internal/topology"
)

// Canonical seeds of the reproduction. Changing them changes the concrete
// instances but not the qualitative results.
const (
	// TopologySeed16 generates the 16-switch irregular network standing in
	// for the paper's (unpublished) Figure 2/3 instance.
	TopologySeed16 = 2000
	// ScheduleSeed drives the Tabu restarts.
	ScheduleSeed = 42
	// RandomMappingSeedBase numbers the R_i baseline mappings.
	RandomMappingSeedBase = 100
	// SimSeed drives message generation.
	SimSeed = 7
)

// Scale selects the simulation effort. Full reproduces the paper-scale
// windows; Quick is for tests and smoke runs.
type Scale struct {
	// WarmupCycles precede measurement.
	WarmupCycles int
	// MeasureCycles is the measurement window.
	MeasureCycles int
	// RandomMappings is the number of R_i baselines.
	RandomMappings int
	// SweepPoints is the number of load points (the paper's 9: S1…S9).
	SweepPoints int
	// MaxRate is the injection rate of the last point, flits/cycle/host.
	MaxRate float64
}

// FullScale mirrors the paper's setup: 9 simulation points from low load
// to deep saturation, 9 random mappings on the 16-switch network.
func FullScale() Scale {
	return Scale{WarmupCycles: 2000, MeasureCycles: 10000, RandomMappings: 9, SweepPoints: 9, MaxRate: 0.45}
}

// QuickScale is a reduced-effort variant for tests.
func QuickScale() Scale {
	return Scale{WarmupCycles: 400, MeasureCycles: 1600, RandomMappings: 3, SweepPoints: 4, MaxRate: 0.4}
}

// Network16 builds the canonical 16-switch irregular instance (64
// workstations, degree 3, single links — the paper's Section 5.1
// constraints).
func Network16() (*topology.Network, error) {
	return topology.RandomIrregular(16, topology.DefaultSwitchDegree,
		rand.New(rand.NewSource(TopologySeed16)), topology.Config{})
}

// Network24Rings builds the specially designed 24-switch network of
// Figure 4: four interconnected rings of six switches.
func Network24Rings() (*topology.Network, error) {
	return topology.InterconnectedRings(4, 6, 1, topology.Config{})
}

// NetworkOfSize builds an irregular instance of the given size with a
// size-derived seed (the paper evaluates 16–24 switches).
func NetworkOfSize(switches int, seed int64) (*topology.Network, error) {
	return topology.RandomIrregular(switches, topology.DefaultSwitchDegree,
		rand.New(rand.NewSource(seed)), topology.Config{})
}

// MappingPoint is one labeled mapping with its clustering coefficient —
// a row of the paper's Figure 3/5 legends ("OP 2.31", "R1 1.05", …).
type MappingPoint struct {
	// Label is "OP" for the scheduled mapping or "R<i>" for random ones.
	Label string
	// Partition is the mapping itself.
	Partition *mapping.Partition
	// Cc is the clustering coefficient.
	Cc float64
}

// buildMappings produces the OP mapping (scheduling technique) and the
// random baselines for a system.
func buildMappings(sys *core.System, clusters, randoms int) (MappingPoint, []MappingPoint, error) {
	sched, err := sys.Schedule(nil, core.ScheduleOptions{Clusters: clusters, Seed: ScheduleSeed})
	if err != nil {
		return MappingPoint{}, nil, err
	}
	op := MappingPoint{Label: "OP", Partition: sched.Partition, Cc: sched.Quality.Cc}
	rs := make([]MappingPoint, 0, randoms)
	for i := 0; i < randoms; i++ {
		p, err := sys.RandomMapping(clusters, RandomMappingSeedBase+int64(i))
		if err != nil {
			return MappingPoint{}, nil, err
		}
		q, err := sys.Evaluate(p)
		if err != nil {
			return MappingPoint{}, nil, err
		}
		rs = append(rs, MappingPoint{
			Label:     fmt.Sprintf("R%d", i+1),
			Partition: p,
			Cc:        q.Cc,
		})
	}
	return op, rs, nil
}

// simConfig builds the simulator configuration for a scale.
func simConfig(sc Scale) simnet.Config {
	return simnet.Config{
		WarmupCycles:  sc.WarmupCycles,
		MeasureCycles: sc.MeasureCycles,
		Seed:          SimSeed,
	}
}
