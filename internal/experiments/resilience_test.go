package experiments

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"commsched/internal/runstate"
)

func TestResilienceQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	sc := QuickScale()
	r, err := Resilience(nil, []int{1, 2}, sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 { // 2 networks × 2 failure counts
		t.Fatalf("got %d rows, want 4", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.DeliveredFraction <= 0 || row.DeliveredFraction > 1 {
			t.Fatalf("%s k=%d: DeliveredFraction %v out of (0,1]",
				row.Network, row.LinkFailures, row.DeliveredFraction)
		}
		// Repair never worsens the carried-over mapping and stays within
		// 10% of the from-scratch reschedule (the acceptance bar).
		if row.CcRepaired < row.CcUnrepaired-1e-9 {
			t.Fatalf("%s k=%d: repair worsened Cc: %.4f < %.4f",
				row.Network, row.LinkFailures, row.CcRepaired, row.CcUnrepaired)
		}
		if row.CcRepaired < 0.9*row.CcRescheduled {
			t.Fatalf("%s k=%d: repaired Cc %.4f below 90%% of rescheduled %.4f",
				row.Network, row.LinkFailures, row.CcRepaired, row.CcRescheduled)
		}
		// Warm-start repair must be the cheaper migration.
		if row.MovedRescheduled > 0 && row.MovedRepaired >= row.MovedRescheduled {
			t.Fatalf("%s k=%d: repair moved %d switches, reschedule only %d",
				row.Network, row.LinkFailures, row.MovedRepaired, row.MovedRescheduled)
		}
		if row.AccUnrepaired <= 0 || row.AccRepaired <= 0 || row.AccRescheduled <= 0 {
			t.Fatalf("%s k=%d: degenerate accepted traffic %+v",
				row.Network, row.LinkFailures, row)
		}
	}
	table := r.Table()
	for _, col := range []string{"Cc_repair", "moved_resched", "irregular-16", "rings-24"} {
		if !strings.Contains(table, col) {
			t.Fatalf("table missing %q:\n%s", col, table)
		}
	}
}

func TestResilienceValidation(t *testing.T) {
	if _, err := Resilience(nil, nil, QuickScale()); err == nil {
		t.Fatal("empty failure list accepted")
	}
	if _, err := Resilience(nil, []int{0}, QuickScale()); err == nil {
		t.Fatal("zero failure count accepted")
	}
}

func TestResilienceCancellable(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Resilience(ctx, []int{1}, QuickScale()); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// A resumed resilience study must reproduce its rows exactly: each
// (network, failure count) row is one durable unit.
func TestResilienceResume(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	sc := QuickScale()
	dir := t.TempDir()
	id := runstate.Identity{Command: "resilience-test"}

	st, err := runstate.Open(dir, id)
	if err != nil {
		t.Fatal(err)
	}
	runstate.SetStore(st)
	first, err := Resilience(nil, []int{1}, sc)
	runstate.SetStore(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Stats().Recorded; got < 2 { // one row per network
		t.Fatalf("recorded = %d, want >= 2", got)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := runstate.Open(dir, id)
	if err != nil {
		t.Fatal(err)
	}
	runstate.SetStore(st2)
	second, err := Resilience(nil, []int{1}, sc)
	runstate.SetStore(nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Stats().Hits < 2 {
		t.Fatalf("hits = %d, want >= 2 (rows must replay)", st2.Stats().Hits)
	}
	if !reflect.DeepEqual(first.Rows, second.Rows) {
		t.Fatalf("resumed rows differ:\n got %+v\nwant %+v", second.Rows, first.Rows)
	}
}
