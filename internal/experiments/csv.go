package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV emits the Figure 1 trace as CSV (iter,restart,F) for external
// plotting tools.
func (r *Fig1Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"iter", "restart", "F"}); err != nil {
		return err
	}
	for _, tp := range r.Trace {
		rec := []string{
			strconv.Itoa(tp.Iteration),
			strconv.Itoa(tp.Restart),
			strconv.FormatFloat(tp.F, 'f', 6, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV emits the Figure 3/5 series as CSV
// (mapping,cc,point,rate,offered,accepted,latency,latency_q).
func (r *SimResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"mapping", "cc", "point", "rate", "offered", "accepted", "latency", "latency_with_queueing"}); err != nil {
		return err
	}
	write := func(s SimSeries) error {
		for _, p := range s.Points {
			rec := []string{
				s.Mapping.Label,
				strconv.FormatFloat(s.Mapping.Cc, 'f', 4, 64),
				fmt.Sprintf("S%d", p.Index),
				strconv.FormatFloat(p.Rate, 'f', 4, 64),
				strconv.FormatFloat(p.Metrics.OfferedTraffic, 'f', 6, 64),
				strconv.FormatFloat(p.Metrics.AcceptedTraffic, 'f', 6, 64),
				strconv.FormatFloat(p.Metrics.AvgLatency, 'f', 2, 64),
				strconv.FormatFloat(p.Metrics.AvgTotalLatency, 'f', 2, 64),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
		return nil
	}
	if err := write(r.OP); err != nil {
		return err
	}
	for _, s := range r.Randoms {
		if err := write(s); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV emits the adversarial-search study as CSV
// (family,restart,tasks,edges,start_ratio,best_ratio,heft_makespan,
// refined_makespan,accepted,validated).
func (r *AdvResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"family", "restart", "tasks", "edges", "start_ratio", "best_ratio",
		"heft_makespan", "refined_makespan", "accepted", "validated"}); err != nil {
		return err
	}
	for _, row := range r.Rows {
		rec := []string{
			row.Family,
			strconv.Itoa(row.Restart),
			strconv.Itoa(row.Tasks),
			strconv.Itoa(row.Edges),
			strconv.FormatFloat(row.StartRatio, 'f', 4, 64),
			strconv.FormatFloat(row.BestRatio, 'f', 4, 64),
			strconv.FormatFloat(row.HeftMakespan, 'f', 4, 64),
			strconv.FormatFloat(row.RefinedMakespan, 'f', 4, 64),
			strconv.Itoa(row.Accepted),
			strconv.Itoa(row.Validated),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV emits the Figure 6 correlations as CSV
// (point,r_accepted,r_latency).
func (r *Fig6Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"point", "r_accepted", "r_latency"}); err != nil {
		return err
	}
	fmtR := func(v float64, ok bool) string {
		if !ok {
			return ""
		}
		return strconv.FormatFloat(v, 'f', 4, 64)
	}
	for _, p := range r.PerPoint {
		rec := []string{
			fmt.Sprintf("S%d", p.Index),
			fmtR(p.R, p.Defined),
			fmtR(p.RLatency, p.LatencyDefined),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
