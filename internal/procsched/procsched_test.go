package procsched

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"commsched/internal/distance"
	"commsched/internal/mapping"
	"commsched/internal/quality"
	"commsched/internal/routing"
	"commsched/internal/search"
	"commsched/internal/topology"
)

// fixture builds a problem on a random irregular network.
func fixture(t *testing.T, switches int, clusterOf []int, slots int, topoSeed int64) *Problem {
	t.Helper()
	net, err := topology.RandomIrregular(switches, 3, rand.New(rand.NewSource(topoSeed)), topology.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ud, err := routing.NewUpDown(net, -1)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := distance.Compute(net, ud)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := NewProblem(net, tab, clusterOf, slots)
	if err != nil {
		t.Fatal(err)
	}
	return pr
}

// balancedClusters returns p processes split into m equal clusters.
func balancedClusters(p, m int) []int {
	out := make([]int, p)
	for i := range out {
		out[i] = i * m / p
	}
	return out
}

func TestNewProblemValidation(t *testing.T) {
	net, err := topology.RandomIrregular(8, 3, rand.New(rand.NewSource(1)), topology.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ud, err := routing.NewUpDown(net, -1)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := distance.Compute(net, ud)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewProblem(net, tab, nil, 1); err == nil {
		t.Fatal("empty process list accepted")
	}
	if _, err := NewProblem(net, tab, []int{0}, 0); err == nil {
		t.Fatal("zero slots accepted")
	}
	if _, err := NewProblem(net, tab, []int{-1}, 1); err == nil {
		t.Fatal("negative cluster accepted")
	}
	if _, err := NewProblem(net, tab, []int{0, 2}, 1); err == nil {
		t.Fatal("non-contiguous clusters accepted")
	}
	if _, err := NewProblem(net, tab, make([]int, 100), 1); err == nil {
		t.Fatal("over-capacity process count accepted (32 hosts)")
	}
	// Mismatched table.
	other, err := topology.RandomIrregular(12, 3, rand.New(rand.NewSource(2)), topology.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewProblem(other, tab, []int{0, 0}, 1); err == nil {
		t.Fatal("table/network mismatch accepted")
	}
}

func TestNewAssignmentValidation(t *testing.T) {
	pr := fixture(t, 8, balancedClusters(16, 4), 1, 3)
	good := make([]int, 16)
	for i := range good {
		good[i] = i // hosts 0..15 of 32
	}
	if _, err := pr.NewAssignment(good); err != nil {
		t.Fatalf("valid assignment rejected: %v", err)
	}
	if _, err := pr.NewAssignment(good[:5]); err == nil {
		t.Fatal("short assignment accepted")
	}
	bad := append([]int(nil), good...)
	bad[0] = 99
	if _, err := pr.NewAssignment(bad); err == nil {
		t.Fatal("out-of-range host accepted")
	}
	dup := append([]int(nil), good...)
	dup[1] = 0 // two processes on host 0 with 1 slot
	if _, err := pr.NewAssignment(dup); err == nil {
		t.Fatal("over-capacity host accepted")
	}
}

func TestRandomAssignmentRespectsCapacity(t *testing.T) {
	pr := fixture(t, 8, balancedClusters(60, 4), 2, 4) // 64 slots
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		a := pr.RandomAssignment(rng)
		for h := 0; h < pr.Net.Hosts(); h++ {
			if a.Load(h) > 2 {
				t.Fatalf("host %d overloaded: %d", h, a.Load(h))
			}
		}
	}
}

func TestCostZeroWhenColocated(t *testing.T) {
	// All processes of each cluster on the same switch => zero cost.
	pr := fixture(t, 8, balancedClusters(32, 8), 1, 6)
	hostOf := make([]int, 32)
	for p := range hostOf {
		hostOf[p] = p // process p on host p: switch p/4 == cluster p/4
	}
	a, err := pr.NewAssignment(hostOf)
	if err != nil {
		t.Fatal(err)
	}
	if c := pr.Cost(a); c != 0 {
		t.Fatalf("fully co-located cost = %v, want 0", c)
	}
}

func TestSwapAndMoveDeltaMatchRecompute(t *testing.T) {
	pr := fixture(t, 8, balancedClusters(24, 4), 2, 7)
	rng := rand.New(rand.NewSource(8))
	a := pr.RandomAssignment(rng)
	for trial := 0; trial < 200; trial++ {
		if trial%2 == 0 {
			p, q := rng.Intn(24), rng.Intn(24)
			before := pr.Cost(a)
			delta := pr.SwapDelta(a, p, q)
			a.SwapProcesses(p, q)
			if after := pr.Cost(a); math.Abs(after-before-delta) > 1e-9 {
				t.Fatalf("swap trial %d: delta %v, recompute %v", trial, delta, after-before)
			}
		} else {
			p := rng.Intn(24)
			h := rng.Intn(pr.Net.Hosts())
			if h == a.HostOf[p] || a.Load(h) >= pr.SlotsPerHost {
				continue
			}
			before := pr.Cost(a)
			delta := pr.MoveDelta(a, p, h)
			a.MoveProcess(p, h, pr.SlotsPerHost)
			if after := pr.Cost(a); math.Abs(after-before-delta) > 1e-9 {
				t.Fatalf("move trial %d: delta %v, recompute %v", trial, delta, after-before)
			}
		}
	}
}

func TestMoveProcessPanicsOnFullHost(t *testing.T) {
	pr := fixture(t, 8, balancedClusters(32, 4), 1, 9)
	a := pr.RandomAssignment(rand.New(rand.NewSource(1)))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic moving to a full host")
		}
	}()
	// All hosts are full (32 processes, 32 hosts, 1 slot).
	a.MoveProcess(0, a.HostOf[1], pr.SlotsPerHost)
}

func TestTabuBeatsRandom(t *testing.T) {
	pr := fixture(t, 12, balancedClusters(48, 4), 1, 10)
	rng := rand.New(rand.NewSource(11))
	res := Tabu(pr, TabuOptions{Restarts: 3, MaxIterations: 30}, rng)
	randCost := pr.Cost(pr.RandomAssignment(rand.New(rand.NewSource(99))))
	if res.BestCost >= randCost {
		t.Fatalf("tabu cost %v not below random %v", res.BestCost, randCost)
	}
	if res.Evaluations == 0 || res.Iterations == 0 {
		t.Fatal("missing cost counters")
	}
	// Capacity respected in the final assignment.
	for h := 0; h < pr.Net.Hosts(); h++ {
		if res.Best.Load(h) > pr.SlotsPerHost {
			t.Fatalf("host %d overloaded in result", h)
		}
	}
}

func TestTabuMatchesSwitchLevelOnAlignedInstance(t *testing.T) {
	// With one process per processor and cluster sizes equal to whole
	// switches, the process-level optimum corresponds to a switch-aligned
	// placement: hosts-per-switch² × the switch-level pair cost. The
	// process search must reach a cost <= the aligned cost built from the
	// switch-level Tabu result.
	net, err := topology.RandomIrregular(8, 3, rand.New(rand.NewSource(12)), topology.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ud, err := routing.NewUpDown(net, -1)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := distance.Compute(net, ud)
	if err != nil {
		t.Fatal(err)
	}
	// 32 processes in 4 clusters of 8 = 2 switches each.
	pr, err := NewProblem(net, tab, balancedClusters(32, 4), 1)
	if err != nil {
		t.Fatal(err)
	}
	// Switch-level result.
	ev := quality.NewEvaluator(tab)
	spec, err := search.BalancedSpec(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := search.NewTabu().Search(nil, ev, spec, rand.New(rand.NewSource(13)))
	if err != nil {
		t.Fatal(err)
	}
	// Build the aligned process placement from the switch partition.
	hostOf := make([]int, 32)
	next := map[int]int{} // cluster -> next process slot index
	byCluster := map[int][]int{}
	for c := 0; c < 4; c++ {
		byCluster[c] = sw.Best.Members(c)
	}
	for p := 0; p < 32; p++ {
		c := pr.ClusterOf[p]
		idx := next[c]
		next[c]++
		sw := byCluster[c][idx/4] // 4 hosts per switch
		hostOf[p] = net.SwitchHosts(sw)[idx%4]
	}
	aligned, err := pr.NewAssignment(hostOf)
	if err != nil {
		t.Fatal(err)
	}
	alignedCost := pr.Cost(aligned)
	// Aligned cost relates to the switch objective: each inter-switch
	// same-cluster pair contributes 4×4 process pairs.
	if math.Abs(alignedCost-16*sw.BestIntraSum) > 1e-6 {
		t.Fatalf("aligned cost %v != 16 × switch objective %v", alignedCost, 16*sw.BestIntraSum)
	}
	res := Tabu(pr, TabuOptions{Restarts: 6, MaxIterations: 60}, rand.New(rand.NewSource(14)))
	if res.BestCost > alignedCost+1e-9 {
		t.Fatalf("process-level tabu (%v) worse than the aligned switch-level solution (%v)",
			res.BestCost, alignedCost)
	}
}

func TestTabuMultiprogrammedConsolidates(t *testing.T) {
	// With 2 slots per host, a cluster of 8 processes fits on one switch
	// (4 hosts × 2). The search should reach zero (fully co-located) cost
	// on a small instance.
	pr := fixture(t, 8, balancedClusters(16, 2), 2, 15)
	res := Tabu(pr, TabuOptions{Restarts: 8, MaxIterations: 80}, rand.New(rand.NewSource(16)))
	if res.BestCost > 1e-9 {
		t.Fatalf("2 clusters × 8 procs with 2 slots/host: cost %v, want 0 (one switch per cluster)", res.BestCost)
	}
}

func TestTabuDeterministicPerSeed(t *testing.T) {
	pr := fixture(t, 8, balancedClusters(24, 3), 1, 17)
	a := Tabu(pr, TabuOptions{Restarts: 2, MaxIterations: 20}, rand.New(rand.NewSource(3)))
	b := Tabu(pr, TabuOptions{Restarts: 2, MaxIterations: 20}, rand.New(rand.NewSource(3)))
	if a.BestCost != b.BestCost {
		t.Fatalf("same seed, different costs: %v vs %v", a.BestCost, b.BestCost)
	}
}

// Property: the cost is invariant under relabeling processes within the
// same host (swapping co-hosted processes changes nothing).
func TestQuickCostInvariants(t *testing.T) {
	pr := fixture(t, 8, balancedClusters(24, 4), 2, 18)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := pr.RandomAssignment(rng)
		c := pr.Cost(a)
		if c < 0 {
			return false
		}
		p, q := rng.Intn(24), rng.Intn(24)
		if a.HostOf[p] == a.HostOf[q] {
			if pr.SwapDelta(a, p, q) != 0 {
				return false
			}
		}
		// Swap twice restores the cost.
		a.SwapProcesses(p, q)
		a.SwapProcesses(p, q)
		return math.Abs(pr.Cost(a)-c) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// The mapping package's aligned expansion and procsched must agree on the
// semantics of "cluster c on switches S": expanding a partition into a
// process map yields a zero-extra-cost assignment relative to the aligned
// formula.
func TestProcessMapAlignment(t *testing.T) {
	net, err := topology.RandomIrregular(8, 3, rand.New(rand.NewSource(19)), topology.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ud, err := routing.NewUpDown(net, -1)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := distance.Compute(net, ud)
	if err != nil {
		t.Fatal(err)
	}
	part, err := mapping.Balanced(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	pm, err := mapping.NewProcessMap(net, part)
	if err != nil {
		t.Fatal(err)
	}
	clusterOf := make([]int, net.Hosts())
	hostOf := make([]int, net.Hosts())
	for h := 0; h < net.Hosts(); h++ {
		clusterOf[h] = pm.HostCluster(h)
		hostOf[h] = h
	}
	pr, err := NewProblem(net, tab, clusterOf, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, err := pr.NewAssignment(hostOf)
	if err != nil {
		t.Fatal(err)
	}
	ev := quality.NewEvaluator(tab)
	if math.Abs(pr.Cost(a)-16*ev.IntraSum(part)) > 1e-6 {
		t.Fatalf("process cost %v != 16 × switch IntraSum %v", pr.Cost(a), 16*ev.IntraSum(part))
	}
}

func TestTabuContextCancelled(t *testing.T) {
	pr := fixture(t, 8, balancedClusters(16, 4), 4, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := TabuContext(ctx, pr, TabuOptions{}, rand.New(rand.NewSource(1)))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("cancelled search must still return the best-so-far result")
	}
}

func TestTabuContextMatchesTabu(t *testing.T) {
	pr := fixture(t, 8, balancedClusters(16, 4), 4, 1)
	plain := Tabu(pr, TabuOptions{}, rand.New(rand.NewSource(3)))
	withCtx, err := TabuContext(context.Background(), pr, TabuOptions{}, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if plain.BestCost != withCtx.BestCost || plain.Evaluations != withCtx.Evaluations ||
		plain.Iterations != withCtx.Iterations {
		t.Fatalf("TabuContext diverged from Tabu: %+v vs %+v", withCtx, plain)
	}
}
