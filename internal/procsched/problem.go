// Package procsched generalizes the paper's scheduling technique past its
// Section 4 simplifying assumptions — the future work of Section 6: it
// maps individual processes to processors (hosts), allowing several
// processes per processor, logical clusters of arbitrary sizes (no
// multiple-of-switch constraint), and co-location. Co-located processes
// communicate off the network, so the objective naturally rewards packing
// a cluster onto as few, and as well-connected, switches as possible.
//
// The objective is the process-level analogue of the paper's similarity
// function: the sum over intra-cluster process pairs of the squared
// equivalent distance between the switches hosting them (zero when they
// share a switch).
package procsched

import (
	"fmt"
	"math/rand"

	"commsched/internal/distance"
	"commsched/internal/topology"
)

// Problem is one process-placement instance.
type Problem struct {
	// Net is the target network.
	Net *topology.Network
	// Table is the equivalent-distance table for Net.
	Table *distance.Table
	// ClusterOf assigns every process to its logical cluster; clusters
	// must be numbered 0..max contiguously.
	ClusterOf []int
	// SlotsPerHost is the multiprogramming level of every processor
	// (>= 1). SlotsPerHost 1 is the paper's one-process-per-processor
	// setting.
	SlotsPerHost int

	clusters int
	t2       [][]float64
}

// NewProblem validates the instance and precomputes squared distances.
func NewProblem(net *topology.Network, tab *distance.Table, clusterOf []int, slotsPerHost int) (*Problem, error) {
	if tab.N() != net.Switches() {
		return nil, fmt.Errorf("procsched: table covers %d switches, network has %d", tab.N(), net.Switches())
	}
	if slotsPerHost < 1 {
		return nil, fmt.Errorf("procsched: need >= 1 slot per host, got %d", slotsPerHost)
	}
	if len(clusterOf) == 0 {
		return nil, fmt.Errorf("procsched: no processes")
	}
	capacity := net.Hosts() * slotsPerHost
	if len(clusterOf) > capacity {
		return nil, fmt.Errorf("procsched: %d processes exceed capacity %d (%d hosts × %d slots)",
			len(clusterOf), capacity, net.Hosts(), slotsPerHost)
	}
	maxC := -1
	for p, c := range clusterOf {
		if c < 0 {
			return nil, fmt.Errorf("procsched: process %d has negative cluster %d", p, c)
		}
		if c > maxC {
			maxC = c
		}
	}
	seen := make([]bool, maxC+1)
	for _, c := range clusterOf {
		seen[c] = true
	}
	for c, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("procsched: cluster %d has no processes (clusters must be contiguous)", c)
		}
	}
	n := net.Switches()
	t2 := make([][]float64, n)
	for i := 0; i < n; i++ {
		t2[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			d := tab.At(i, j)
			t2[i][j] = d * d
		}
	}
	return &Problem{
		Net:          net,
		Table:        tab,
		ClusterOf:    append([]int(nil), clusterOf...),
		SlotsPerHost: slotsPerHost,
		clusters:     maxC + 1,
		t2:           t2,
	}, nil
}

// Processes returns the process count.
func (pr *Problem) Processes() int { return len(pr.ClusterOf) }

// Clusters returns the number of logical clusters.
func (pr *Problem) Clusters() int { return pr.clusters }

// Assignment places every process on a host.
type Assignment struct {
	// HostOf maps process -> host.
	HostOf []int
	// load[h] = processes currently on host h.
	load []int
}

// NewAssignment validates an explicit placement against the problem.
func (pr *Problem) NewAssignment(hostOf []int) (*Assignment, error) {
	if len(hostOf) != pr.Processes() {
		return nil, fmt.Errorf("procsched: placement covers %d processes, problem has %d", len(hostOf), pr.Processes())
	}
	load := make([]int, pr.Net.Hosts())
	for p, h := range hostOf {
		if h < 0 || h >= pr.Net.Hosts() {
			return nil, fmt.Errorf("procsched: process %d on host %d, want [0,%d)", p, h, pr.Net.Hosts())
		}
		load[h]++
		if load[h] > pr.SlotsPerHost {
			return nil, fmt.Errorf("procsched: host %d over capacity (%d slots)", h, pr.SlotsPerHost)
		}
	}
	return &Assignment{HostOf: append([]int(nil), hostOf...), load: load}, nil
}

// RandomAssignment places processes on uniformly chosen free slots.
func (pr *Problem) RandomAssignment(rng *rand.Rand) *Assignment {
	slots := make([]int, 0, pr.Net.Hosts()*pr.SlotsPerHost)
	for h := 0; h < pr.Net.Hosts(); h++ {
		for s := 0; s < pr.SlotsPerHost; s++ {
			slots = append(slots, h)
		}
	}
	rng.Shuffle(len(slots), func(i, j int) { slots[i], slots[j] = slots[j], slots[i] })
	a := &Assignment{HostOf: make([]int, pr.Processes()), load: make([]int, pr.Net.Hosts())}
	for p := 0; p < pr.Processes(); p++ {
		a.HostOf[p] = slots[p]
		a.load[slots[p]]++
	}
	return a
}

// Clone returns an independent copy of the assignment.
func (a *Assignment) Clone() *Assignment {
	return &Assignment{
		HostOf: append([]int(nil), a.HostOf...),
		load:   append([]int(nil), a.load...),
	}
}

// Load returns the number of processes on host h.
func (a *Assignment) Load(h int) int { return a.load[h] }

// SwapProcesses exchanges the hosts of processes p and q.
func (a *Assignment) SwapProcesses(p, q int) {
	a.HostOf[p], a.HostOf[q] = a.HostOf[q], a.HostOf[p]
}

// MoveProcess relocates process p to host h. The caller must ensure h has
// a free slot; MoveProcess panics otherwise to expose scheduler bugs.
func (a *Assignment) MoveProcess(p, h, slotsPerHost int) {
	if a.load[h] >= slotsPerHost {
		panic(fmt.Sprintf("procsched: moving process %d to full host %d", p, h))
	}
	a.load[a.HostOf[p]]--
	a.HostOf[p] = h
	a.load[h]++
}

// Cost is the process-level similarity objective: Σ over same-cluster
// process pairs of T²(switch(p), switch(q)).
func (pr *Problem) Cost(a *Assignment) float64 {
	total := 0.0
	for p := 0; p < pr.Processes(); p++ {
		sp := pr.Net.HostSwitch(a.HostOf[p])
		row := pr.t2[sp]
		for q := p + 1; q < pr.Processes(); q++ {
			if pr.ClusterOf[p] != pr.ClusterOf[q] {
				continue
			}
			total += row[pr.Net.HostSwitch(a.HostOf[q])]
		}
	}
	return total
}

// SwapDelta returns the cost change of swapping processes p and q, in
// O(P) time. Swapping processes of the same cluster or on the same switch
// is cost-neutral only when their switch sets coincide; the general form
// is computed directly.
func (pr *Problem) SwapDelta(a *Assignment, p, q int) float64 {
	if p == q || a.HostOf[p] == a.HostOf[q] {
		return 0
	}
	sp := pr.Net.HostSwitch(a.HostOf[p])
	sq := pr.Net.HostSwitch(a.HostOf[q])
	if sp == sq {
		return 0 // same switch: distances unchanged
	}
	delta := 0.0
	for r := 0; r < pr.Processes(); r++ {
		if r == p || r == q {
			continue
		}
		sr := pr.Net.HostSwitch(a.HostOf[r])
		if pr.ClusterOf[r] == pr.ClusterOf[p] {
			delta += pr.t2[sq][sr] - pr.t2[sp][sr]
		}
		if pr.ClusterOf[r] == pr.ClusterOf[q] {
			delta += pr.t2[sp][sr] - pr.t2[sq][sr]
		}
	}
	// The (p,q) pair itself: both before and after, one sits at sp and the
	// other at sq, so its contribution (nonzero only when same cluster) is
	// unchanged.
	return delta
}

// MoveDelta returns the cost change of relocating process p to host h
// (which must have a free slot; validity is the caller's concern — the
// delta itself is well defined regardless).
func (pr *Problem) MoveDelta(a *Assignment, p, h int) float64 {
	oldS := pr.Net.HostSwitch(a.HostOf[p])
	newS := pr.Net.HostSwitch(h)
	if oldS == newS {
		return 0
	}
	delta := 0.0
	for r := 0; r < pr.Processes(); r++ {
		if r == p || pr.ClusterOf[r] != pr.ClusterOf[p] {
			continue
		}
		sr := pr.Net.HostSwitch(a.HostOf[r])
		delta += pr.t2[newS][sr] - pr.t2[oldS][sr]
	}
	return delta
}
