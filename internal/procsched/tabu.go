package procsched

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"commsched/internal/obs"
)

// TabuOptions parameterizes the process-level Tabu search; zero values
// select the paper-aligned defaults (10 restarts, 40 iterations, repeat
// limit 3, tenure 4). Iteration counts are higher than the switch-level
// searcher's because the move space (process swaps + relocations) is
// larger.
type TabuOptions struct {
	Restarts      int
	MaxIterations int
	RepeatLimit   int
	Tenure        int
}

func (o TabuOptions) withDefaults() TabuOptions {
	if o.Restarts == 0 {
		o.Restarts = 10
	}
	if o.MaxIterations == 0 {
		o.MaxIterations = 40
	}
	if o.RepeatLimit == 0 {
		o.RepeatLimit = 3
	}
	if o.Tenure == 0 {
		o.Tenure = 4
	}
	return o
}

// Result is the outcome of a process-level search.
type Result struct {
	// Best is the best placement found.
	Best *Assignment
	// BestCost is its objective value.
	BestCost float64
	// Evaluations counts candidate move evaluations.
	Evaluations int
	// Iterations counts applied moves.
	Iterations int
}

const epsilon = 1e-9

// Tabu runs the paper's Tabu procedure over the process-level move space:
// the best swap of two processes or relocation of one process to a free
// slot; least-bad uphill move with tabu tenure at local minima; random
// restarts. It is TabuContext without cancellation.
func Tabu(pr *Problem, opts TabuOptions, rng *rand.Rand) *Result {
	res, _ := TabuContext(context.Background(), pr, opts, rng)
	return res
}

// TabuContext is Tabu with cooperative cancellation: the context is
// checked every iteration, and a cancelled search returns the best
// placement found so far alongside an error wrapping ctx.Err() —
// matching the cancellation contract of every switch-level searcher.
// A nil ctx means context.Background.
func TabuContext(ctx context.Context, pr *Problem, opts TabuOptions, rng *rand.Rand) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	opts = opts.withDefaults()
	sp, ctx := obs.StartSpanCtx(ctx, "procsched.tabu",
		obs.F("restarts", opts.Restarts), obs.F("max_iterations", opts.MaxIterations))
	res := &Result{}
	for restart := 0; restart < opts.Restarts; restart++ {
		a := pr.RandomAssignment(rng)
		cur := pr.Cost(a)
		consider(res, a, cur)

		tabu := map[moveKey]int{}
		var localMinima []float64

		for iter := 0; iter < opts.MaxIterations; iter++ {
			if err := ctx.Err(); err != nil {
				sp.End(obs.F("cancelled", true))
				return res, fmt.Errorf("procsched: tabu cancelled at restart %d iteration %d: %w", restart, iter, err)
			}
			mv, delta, evals, found := bestMove(pr, a, tabu, iter, cur, res.BestCost)
			res.Evaluations += evals
			if !found {
				break
			}
			if delta >= -epsilon {
				repeats := 1
				for _, m := range localMinima {
					if math.Abs(m-cur) <= epsilon*(1+math.Abs(cur)) {
						repeats++
					}
				}
				localMinima = append(localMinima, cur)
				if repeats >= opts.RepeatLimit {
					break
				}
				tabu[mv.key()] = iter + 1 + opts.Tenure
			}
			mv.apply(pr, a)
			cur += delta
			res.Iterations++
			consider(res, a, cur)
		}
	}
	sp.End(obs.F("best_cost", res.BestCost), obs.F("evaluations", res.Evaluations), obs.F("iterations", res.Iterations))
	return res, nil
}

func consider(res *Result, a *Assignment, cost float64) {
	if res.Best == nil || cost < res.BestCost-epsilon {
		res.Best = a.Clone()
		res.BestCost = cost
	}
}

// move is either a swap (q >= 0) or a relocation of p to host (q < 0).
type move struct {
	p, q, host int
}

type moveKey struct{ a, b, host int }

func (m move) key() moveKey {
	if m.q >= 0 {
		a, b := m.p, m.q
		if a > b {
			a, b = b, a
		}
		return moveKey{a, b, -1}
	}
	return moveKey{m.p, -1, m.host}
}

func (m move) apply(pr *Problem, a *Assignment) {
	if m.q >= 0 {
		a.SwapProcesses(m.p, m.q)
		return
	}
	a.MoveProcess(m.p, m.host, pr.SlotsPerHost)
}

// bestMove scans all process swaps and all relocations to hosts with free
// slots, returning the best non-tabu move (aspiration: tabu moves that
// would beat the incumbent are admissible).
func bestMove(pr *Problem, a *Assignment, tabu map[moveKey]int, iter int, cur, globalBest float64) (move, float64, int, bool) {
	best := move{}
	bestDelta := math.Inf(1)
	evals := 0
	found := false
	admit := func(m move, d float64) {
		if until, isTabu := tabu[m.key()]; isTabu && iter < until {
			if cur+d >= globalBest-epsilon {
				return
			}
		}
		if d < bestDelta {
			best, bestDelta, found = m, d, true
		}
	}
	n := pr.Processes()
	for p := 0; p < n; p++ {
		for q := p + 1; q < n; q++ {
			if a.HostOf[p] == a.HostOf[q] {
				continue
			}
			evals++
			admit(move{p: p, q: q, host: -1}, pr.SwapDelta(a, p, q))
		}
		for h := 0; h < pr.Net.Hosts(); h++ {
			if h == a.HostOf[p] || a.Load(h) >= pr.SlotsPerHost {
				continue
			}
			evals++
			admit(move{p: p, q: -1, host: h}, pr.MoveDelta(a, p, h))
		}
	}
	return best, bestDelta, evals, found
}
