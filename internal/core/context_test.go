package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"commsched/internal/fault"
	"commsched/internal/mapping"
	"commsched/internal/simnet"
	"commsched/internal/topology"
)

// Every long-running entry point of the façade must surface a cancelled
// context as an error wrapping context.Canceled — never a bare sentinel
// or a silent partial result — so callers (and the durable runner) can
// distinguish "stop requested" from "computation failed".
func TestFacadeHonorsCancelledContext(t *testing.T) {
	net, err := topology.RandomIrregular(16, 3, rand.New(rand.NewSource(2000)), topology.Config{})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := sys.RandomMapping(4, 100)
	if err != nil {
		t.Fatal(err)
	}
	cfg := simnet.Config{
		VirtualChannels: 2, MessageFlits: 16,
		WarmupCycles: 2000, MeasureCycles: 10000, Seed: 7, InjectionRate: 0.1,
	}
	plan, err := fault.RandomPlan(net, fault.PlanSpec{LinkFailures: 1}, rand.New(rand.NewSource(500)))
	if err != nil {
		t.Fatal(err)
	}
	ds, err := sys.Degrade(plan)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	cases := []struct {
		name string
		call func() error
	}{
		{"Schedule", func() error {
			_, err := sys.Schedule(ctx, ScheduleOptions{Clusters: 4, Seed: 42})
			return err
		}},
		{"ScheduleWeighted", func() error {
			_, err := sys.ScheduleWeighted(ctx, []int{8, 8}, []float64{1, 2}, 42)
			return err
		}},
		{"SimulateSweep", func() error {
			_, err := sys.SimulateSweep(ctx, p, cfg, simnet.LinearRates(3, 0.3))
			return err
		}},
		{"SimulateSweepMany", func() error {
			_, err := sys.SimulateSweepMany(ctx, []*mapping.Partition{p}, cfg, simnet.LinearRates(3, 0.3))
			return err
		}},
		{"Repair", func() error {
			_, err := ds.Repair(ctx, p, 42)
			return err
		}},
		{"Degraded.Schedule", func() error {
			_, err := ds.Schedule(ctx, ScheduleOptions{Clusters: 4, Seed: 42})
			return err
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.call()
			if err == nil {
				t.Fatal("cancelled context returned nil error")
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want errors.Is(err, context.Canceled)", err)
			}
		})
	}
}
