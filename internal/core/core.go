// Package core is the public façade of the library: it bundles a network
// with its routing algorithm and table of equivalent distances into a
// System, exposes the paper's quality criterion, runs the
// communication-aware scheduling technique (Tabu search by default), and
// drives the flit-level simulator to evaluate mappings — the complete
// pipeline of the paper in a handful of calls:
//
//	net, _ := topology.RandomIrregular(16, 3, rng, topology.Config{})
//	sys, _ := core.NewSystem(net, core.Options{})
//	sched, _ := sys.Schedule(core.ScheduleOptions{Clusters: 4, Seed: 1})
//	metrics, _ := sys.Simulate(sched.Partition, simnet.Config{InjectionRate: 0.1})
package core

import (
	"context"
	"crypto/sha256"
	"fmt"
	"math/rand"
	"sync"

	"commsched/internal/distance"
	"commsched/internal/mapping"
	"commsched/internal/obs"
	"commsched/internal/par"
	"commsched/internal/quality"
	"commsched/internal/routing"
	"commsched/internal/runstate"
	"commsched/internal/search"
	"commsched/internal/simnet"
	"commsched/internal/topology"
	"commsched/internal/traffic"
)

// Metric selects the distance model driving the scheduler.
type Metric int

const (
	// MetricResistance is the paper's equivalent-distance model
	// (electrical resistance over shortest legal paths).
	MetricResistance Metric = iota
	// MetricHops uses plain legal hop counts — the ablation baseline.
	MetricHops
)

// Options configures system construction.
type Options struct {
	// Root pins the up*/down* spanning-tree root to a specific switch;
	// nil auto-elects (highest degree, lowest ID on ties).
	Root *int
	// Metric selects the distance model (default MetricResistance).
	Metric Metric
}

// System is a characterized network: topology + routing + distance table.
type System struct {
	net    *topology.Network
	rt     *routing.UpDown
	tab    *distance.Table
	eval   *quality.Evaluator
	metric Metric

	fpOnce sync.Once
	fp     string
}

// fingerprint identifies the characterized system (topology + routing
// root + distance metric) for durable unit keys: two systems with equal
// fingerprints produce interchangeable checkpoint units.
func (s *System) fingerprint() string {
	s.fpOnce.Do(func() {
		data, err := s.net.MarshalJSON()
		if err != nil {
			// An unserializable network disables checkpointing for this
			// system rather than risking a key collision.
			s.fp = ""
			return
		}
		h := sha256.New()
		h.Write(data)
		fmt.Fprintf(h, "|root=%d|metric=%d", s.rt.Root(), s.metric)
		s.fp = fmt.Sprintf("%x", h.Sum(nil)[:8])
	})
	return s.fp
}

// NewSystem characterizes a network: builds up*/down* routing and computes
// the table of equivalent distances (or hop distances, per opts.Metric).
func NewSystem(net *topology.Network, opts Options) (*System, error) {
	sp := obs.StartSpan("core.characterize",
		obs.F("switches", net.Switches()),
		obs.F("hosts", net.Hosts()),
		obs.F("metric", int(opts.Metric)))
	root := -1
	if opts.Root != nil {
		root = *opts.Root
		if root < 0 || root >= net.Switches() {
			return nil, fmt.Errorf("core: root %d out of range [0,%d)", root, net.Switches())
		}
	}
	rt, err := routing.NewUpDown(net, root)
	if err != nil {
		return nil, err
	}
	var tab *distance.Table
	switch opts.Metric {
	case MetricResistance:
		tab, err = distance.Compute(net, rt)
		if err != nil {
			return nil, err
		}
	case MetricHops:
		tab = distance.HopTable(net, rt)
	default:
		return nil, fmt.Errorf("core: unknown metric %d", opts.Metric)
	}
	sp.End(obs.F("root", rt.Root()))
	return &System{net: net, rt: rt, tab: tab, eval: quality.NewEvaluator(tab), metric: opts.Metric}, nil
}

// Network returns the system's topology.
func (s *System) Network() *topology.Network { return s.net }

// Routing returns the up*/down* routing structure.
func (s *System) Routing() *routing.UpDown { return s.rt }

// DistanceTable returns the table of equivalent distances.
func (s *System) DistanceTable() *distance.Table { return s.tab }

// Evaluator returns the quality evaluator over the distance table.
func (s *System) Evaluator() *quality.Evaluator { return s.eval }

// Quality is the paper's full quality report for one mapping.
type Quality struct {
	// FG is the global similarity function (intra-cluster cost).
	FG float64
	// DG is the global dissimilarity function (inter-cluster cost).
	DG float64
	// Cc = DG / FG is the clustering coefficient the scheduler maximizes.
	Cc float64
}

// Evaluate computes F_G, D_G, and Cc for a partition. A partition that
// does not cover the system's switches is rejected with an error (the
// underlying evaluator treats a mismatch as a programming error and
// panics; the façade keeps that panic unreachable).
func (s *System) Evaluate(p *mapping.Partition) (Quality, error) {
	if p == nil {
		return Quality{}, fmt.Errorf("core: Evaluate needs a partition")
	}
	if p.N() != s.net.Switches() {
		return Quality{}, fmt.Errorf("core: partition covers %d switches, system has %d", p.N(), s.net.Switches())
	}
	return Quality{
		FG: s.eval.Similarity(p),
		DG: s.eval.Dissimilarity(p),
		Cc: s.eval.ClusteringCoefficient(p),
	}, nil
}

// ScheduleOptions configures a scheduling run.
type ScheduleOptions struct {
	// Clusters is the number of equal-size logical clusters (ignored when
	// Sizes is set). The paper's evaluation uses 4.
	Clusters int
	// Sizes optionally gives explicit cluster sizes in switches (the
	// unequal-requirements extension).
	Sizes []int
	// Searcher overrides the heuristic (default: the paper's Tabu).
	Searcher search.Searcher
	// Seed drives the random restarts.
	Seed int64
	// RecordTrace asks Tabu-like searchers for their trajectory.
	RecordTrace bool
}

// Schedule is the result of the communication-aware scheduling technique.
type Schedule struct {
	// Partition is the chosen mapping of clusters to switches.
	Partition *mapping.Partition
	// Quality holds F_G, D_G, and Cc of the partition.
	Quality Quality
	// Search carries the raw searcher result (trace, cost counters).
	Search *search.Result
}

// Schedule runs the scheduling technique: it searches for the partition
// minimizing F_G (maximizing Cc) over the system's distance table. A nil
// ctx means context.Background; cancelling it stops the search promptly
// with an error wrapping ctx.Err().
func (s *System) Schedule(ctx context.Context, opts ScheduleOptions) (*Schedule, error) {
	sp, ctx := obs.StartSpanCtx(ctx, "core.schedule",
		obs.F("clusters", opts.Clusters),
		obs.F("seed", opts.Seed))
	var spec search.Spec
	var err error
	if opts.Sizes != nil {
		if err := s.validateSizes(opts.Sizes); err != nil {
			return nil, err
		}
		spec = search.Spec{Sizes: opts.Sizes}
	} else {
		if opts.Clusters <= 0 {
			return nil, fmt.Errorf("core: ScheduleOptions needs Clusters or Sizes")
		}
		spec, err = search.BalancedSpec(s.net.Switches(), opts.Clusters)
		if err != nil {
			return nil, err
		}
	}
	searcher := opts.Searcher
	if searcher == nil {
		tb := search.NewTabu()
		tb.RecordTrace = opts.RecordTrace
		searcher = tb
	}
	// A whole scheduling run (10 Tabu restarts) is one durable unit: the
	// key pins the system, the cluster spec, the searcher's type and
	// configuration, and the seed — everything its result depends on.
	key := ""
	if runstate.Enabled() && s.fingerprint() != "" {
		key = fmt.Sprintf("schedule/sys=%s/%s", s.fingerprint(), runstate.KeyHash(struct {
			Sizes    []int
			Searcher string
			Seed     int64
		}{spec.Sizes, fmt.Sprintf("%T%+v", searcher, searcher), opts.Seed}))
		if sched, ok := s.lookupSchedule(key); ok {
			sp.End(obs.F("cc", sched.Quality.Cc), obs.F("replayed", true))
			return sched, nil
		}
	}
	res, err := searcher.Search(ctx, s.eval, spec, rand.New(rand.NewSource(opts.Seed)))
	if err != nil {
		return nil, err
	}
	q, err := s.Evaluate(res.Best)
	if err != nil {
		return nil, err
	}
	if key != "" {
		runstate.RecordCtx(ctx, key, scheduleUnit{
			Assign:       res.Best.Assign(),
			M:            res.Best.M(),
			BestIntraSum: res.BestIntraSum,
			BestF:        res.BestF,
			Trace:        res.Trace,
			Evaluations:  res.Evaluations,
			Iterations:   res.Iterations,
		})
	}
	sp.End(obs.F("cc", q.Cc), obs.F("fg", q.FG), obs.F("evaluations", res.Evaluations))
	return &Schedule{
		Partition: res.Best,
		Quality:   q,
		Search:    res,
	}, nil
}

// scheduleUnit is the durable form of a search.Result: the winning
// assignment plus every numeric field a caller can observe, so a
// replayed Schedule is indistinguishable from a recomputed one.
type scheduleUnit struct {
	Assign       []int               `json:"assign"`
	M            int                 `json:"m"`
	BestIntraSum float64             `json:"best_intra_sum"`
	BestF        float64             `json:"best_f"`
	Trace        []search.TracePoint `json:"trace,omitempty"`
	Evaluations  int                 `json:"evaluations"`
	Iterations   int                 `json:"iterations"`
}

// lookupSchedule replays a checkpointed scheduling run. Any decoding or
// validation failure reads as a miss: the run is recomputed (and the
// stale unit overwritten), never trusted blindly.
func (s *System) lookupSchedule(key string) (*Schedule, bool) {
	var u scheduleUnit
	if !runstate.Lookup(key, &u) {
		return nil, false
	}
	p, err := mapping.New(u.Assign, u.M)
	if err != nil {
		return nil, false
	}
	q, err := s.Evaluate(p)
	if err != nil {
		return nil, false
	}
	return &Schedule{
		Partition: p,
		Quality:   q,
		Search: &search.Result{
			Best:         p,
			BestIntraSum: u.BestIntraSum,
			BestF:        u.BestF,
			Trace:        u.Trace,
			Evaluations:  u.Evaluations,
			Iterations:   u.Iterations,
		},
	}, true
}

// validateSizes checks an explicit cluster-size vector against the
// system before it can reach the evaluator (whose mismatch handling is a
// panic, not an error).
func (s *System) validateSizes(sizes []int) error {
	if len(sizes) == 0 {
		return fmt.Errorf("core: empty cluster-size list")
	}
	total := 0
	for c, sz := range sizes {
		if sz <= 0 {
			return fmt.Errorf("core: cluster %d has non-positive size %d", c, sz)
		}
		total += sz
	}
	if total != s.net.Switches() {
		return fmt.Errorf("core: cluster sizes sum to %d, system has %d switches", total, s.net.Switches())
	}
	return nil
}

// ScheduleWeighted runs the scheduling technique with per-cluster traffic
// weights — the paper's future-work extension where applications have
// unequal communication requirements. Sizes[i] is cluster i's switch
// count, Weights[i] its relative traffic intensity; heavier clusters get
// the better-connected switch sets.
// A nil ctx means context.Background.
func (s *System) ScheduleWeighted(ctx context.Context, sizes []int, weights []float64, seed int64) (*Schedule, error) {
	if len(sizes) != len(weights) {
		return nil, fmt.Errorf("core: %d sizes vs %d weights", len(sizes), len(weights))
	}
	if err := s.validateSizes(sizes); err != nil {
		return nil, err
	}
	we, err := quality.NewWeightedEvaluator(s.tab, weights)
	if err != nil {
		return nil, err
	}
	res, err := search.NewTabu().SearchObjective(ctx, we, search.Spec{Sizes: sizes}, rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, err
	}
	q, err := s.Evaluate(res.Best)
	if err != nil {
		return nil, err
	}
	return &Schedule{
		Partition: res.Best,
		Quality:   q,
		Search:    res,
	}, nil
}

// RandomMapping draws one random balanced mapping — the paper's R_i
// baseline points.
func (s *System) RandomMapping(clusters int, seed int64) (*mapping.Partition, error) {
	return mapping.Random(s.net.Switches(), clusters, rand.New(rand.NewSource(seed)))
}

// IntraClusterPattern builds the paper's traffic pattern (every message to
// a peer of the sender's own logical cluster) for a partition.
func (s *System) IntraClusterPattern(p *mapping.Partition) (traffic.Pattern, error) {
	if p == nil {
		return nil, fmt.Errorf("core: IntraClusterPattern needs a partition")
	}
	pm, err := mapping.NewProcessMap(s.net, p)
	if err != nil {
		return nil, err
	}
	return traffic.NewIntraCluster(pm)
}

// Simulate runs the flit-level simulator for one mapping under the
// paper's intra-cluster workload at the configured injection rate. When
// cfg.HostCluster is unset, it is filled from the partition so the
// returned metrics include the per-application breakdown.
func (s *System) Simulate(p *mapping.Partition, cfg simnet.Config) (simnet.Metrics, error) {
	defer obs.StartSpan("core.simulate", obs.F("rate", cfg.InjectionRate)).End()
	if p == nil {
		return simnet.Metrics{}, fmt.Errorf("core: Simulate needs a partition")
	}
	pm, err := mapping.NewProcessMap(s.net, p)
	if err != nil {
		return simnet.Metrics{}, err
	}
	pattern, err := traffic.NewIntraCluster(pm)
	if err != nil {
		return simnet.Metrics{}, err
	}
	if cfg.HostCluster == nil {
		labels := make([]int, s.net.Hosts())
		for h := range labels {
			labels[h] = pm.HostCluster(h)
		}
		cfg.HostCluster = labels
	}
	sim, err := simnet.New(s.net, s.rt, pattern, cfg)
	if err != nil {
		return simnet.Metrics{}, err
	}
	return sim.Run(), nil
}

// SimulateSweep runs the simulator across a load ladder (the paper's
// S1…S9) for one mapping. A nil ctx means context.Background;
// cancellation stops all in-flight runs promptly.
func (s *System) SimulateSweep(ctx context.Context, p *mapping.Partition, cfg simnet.Config, rates []float64) ([]simnet.SweepPoint, error) {
	pattern, err := s.IntraClusterPattern(p)
	if err != nil {
		return nil, err
	}
	if runstate.Enabled() && s.fingerprint() != "" {
		// Scope every sweep point to this exact (system, mapping) pair so
		// checkpointed points can never leak across figures or mappings.
		ctx = runstate.WithScope(ctx,
			fmt.Sprintf("sys=%s/map=%s", s.fingerprint(), runstate.KeyHash(p.Assign())))
	}
	return simnet.Sweep(ctx, s.net, s.rt, pattern, cfg, rates)
}

// SimulateSweepMany runs SimulateSweep for several mappings and returns
// the sweeps in input order. The mappings execute concurrently (each
// sweep additionally parallelizes over its rates); every run stays
// deterministic per (mapping, rate) seed, so the result is identical to
// calling SimulateSweep in a loop. A nil ctx means context.Background; a
// cancellation or first error stops the remaining work.
func (s *System) SimulateSweepMany(ctx context.Context, ps []*mapping.Partition, cfg simnet.Config, rates []float64) ([][]simnet.SweepPoint, error) {
	sp, ctx := obs.StartSpanCtx(ctx, "core.simulate_sweep_many",
		obs.F("mappings", len(ps)), obs.F("points", len(rates)))
	out := make([][]simnet.SweepPoint, len(ps))
	err := par.ForEach(ctx, len(ps), func(ctx context.Context, i int) error {
		pts, err := s.SimulateSweep(ctx, ps[i], cfg, rates)
		if err != nil {
			return fmt.Errorf("core: sweep for mapping %d: %w", i, err)
		}
		out[i] = pts
		return nil
	})
	if err != nil {
		return nil, err
	}
	sp.End()
	return out, nil
}

// SimulatePattern runs the simulator with an arbitrary traffic pattern —
// the future-work extension beyond pure intra-cluster traffic.
func (s *System) SimulatePattern(pattern traffic.Pattern, cfg simnet.Config) (simnet.Metrics, error) {
	sim, err := simnet.New(s.net, s.rt, pattern, cfg)
	if err != nil {
		return simnet.Metrics{}, err
	}
	return sim.Run(), nil
}
