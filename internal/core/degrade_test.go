package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"commsched/internal/fault"
	"commsched/internal/mapping"
	"commsched/internal/simnet"
	"commsched/internal/topology"
)

// sys16 characterizes the 16-switch seeded network used across the
// degraded-mode tests.
func sys16(t *testing.T) *System {
	t.Helper()
	net, err := topology.RandomIrregular(16, 3, rand.New(rand.NewSource(2000)), topology.Config{})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// linkPlan draws a connectivity-preserving plan with k link failures.
func linkPlan(t *testing.T, sys *System, k int, seed int64) fault.Plan {
	t.Helper()
	plan, err := fault.RandomPlan(sys.Network(), fault.PlanSpec{LinkFailures: k}, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func TestDegradeLinkFailures(t *testing.T) {
	sys := sys16(t)
	plan := linkPlan(t, sys, 2, 1)
	ds, err := sys.Degrade(plan)
	if err != nil {
		t.Fatal(err)
	}
	if !ds.Faults.Identity() {
		t.Fatal("pure link failures must not renumber switches")
	}
	if ds.RootChanged {
		t.Fatal("root did not die, must not report a re-election")
	}
	if ds.Network().Switches() != 16 {
		t.Fatalf("degraded network has %d switches, want 16", ds.Network().Switches())
	}
	if got, want := len(ds.Network().Links()), len(sys.Network().Links())-2; got != want {
		t.Fatalf("degraded network has %d links, want %d", got, want)
	}
	full := 16 * 15 / 2
	if ds.RecomputedPairs <= 0 || ds.RecomputedPairs > full {
		t.Fatalf("RecomputedPairs = %d, want in (0,%d]", ds.RecomputedPairs, full)
	}
	// The incremental rebuild must agree with characterizing from scratch.
	fresh, err := NewSystem(ds.Network(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		for j := 0; j < 16; j++ {
			a, b := ds.DistanceTable().At(i, j), fresh.DistanceTable().At(i, j)
			if diff := a - b; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("delta table (%d,%d) = %v, fresh = %v", i, j, a, b)
			}
		}
	}
}

func TestDegradeSwitchFailureCompactsAndReroutes(t *testing.T) {
	sys := sys16(t)
	plan, err := fault.RandomPlan(sys.Network(), fault.PlanSpec{SwitchFailures: 1}, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	ds, err := sys.Degrade(plan)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Faults.Identity() {
		t.Fatal("switch death must renumber")
	}
	if ds.Network().Switches() != 15 {
		t.Fatalf("degraded network has %d switches, want 15", ds.Network().Switches())
	}
	if ds.DistanceTable().N() != 15 {
		t.Fatalf("distance table covers %d, want 15", ds.DistanceTable().N())
	}
}

func TestDegradeRootDeath(t *testing.T) {
	sys := sys16(t)
	root := sys.Routing().Root()
	plan := fault.Plan{Name: "kill-root", Events: []fault.Event{{Kind: fault.SwitchDown, Switch: root}}}
	ds, err := sys.Degrade(plan)
	if err != nil {
		// Killing the root may partition this topology; then the error
		// must say so and the test has nothing more to check.
		t.Skipf("killing root partitions the seeded net: %v", err)
	}
	if !ds.RootChanged {
		t.Fatal("root died but RootChanged is false")
	}
	if r := ds.Routing().Root(); r < 0 || r >= ds.Network().Switches() {
		t.Fatalf("no valid root re-elected: %d", r)
	}
}

func TestDegradePartitioningPlanRejected(t *testing.T) {
	// A path graph: removing any link partitions it.
	var links []topology.Link
	for s := 0; s < 5; s++ {
		links = append(links, topology.Link{A: s, B: s + 1})
	}
	net, err := topology.New("path-6", 6, links, topology.Config{})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	plan := fault.Plan{Events: []fault.Event{{Kind: fault.LinkDown, Link: topology.Link{A: 2, B: 3}}}}
	if _, err := sys.Degrade(plan); err == nil {
		t.Fatal("partitioning plan accepted")
	}
}

func TestProjectPartitionDropsDeadSwitches(t *testing.T) {
	sys := sys16(t)
	sched, err := sys.Schedule(nil, ScheduleOptions{Clusters: 4, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := fault.RandomPlan(sys.Network(), fault.PlanSpec{SwitchFailures: 1}, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	ds, err := sys.Degrade(plan)
	if err != nil {
		t.Fatal(err)
	}
	proj, err := ds.ProjectPartition(sched.Partition)
	if err != nil {
		t.Fatal(err)
	}
	if proj.N() != 15 || proj.M() != 4 {
		t.Fatalf("projected shape %dx%d, want 15x4", proj.N(), proj.M())
	}
	// Surviving switches keep their cluster through the renumbering.
	dead := plan.Events[0].Switch
	for old := 0; old < 16; old++ {
		next := ds.Faults.OldToNew[old]
		if old == dead {
			if next != -1 {
				t.Fatalf("dead switch %d mapped to %d", old, next)
			}
			continue
		}
		if proj.Cluster(next) != sched.Partition.Cluster(old) {
			t.Fatalf("switch %d changed cluster across projection", old)
		}
	}
}

func TestRepairRecoversQualityCheaply(t *testing.T) {
	sys := sys16(t)
	sched, err := sys.Schedule(nil, ScheduleOptions{Clusters: 4, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 3; k++ {
		plan := linkPlan(t, sys, k, int64(10+k))
		ds, err := sys.Degrade(plan)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := ds.Repair(nil, sched.Partition, 42)
		if err != nil {
			t.Fatal(err)
		}
		// The repair never worsens the projected mapping's quality.
		if rep.Schedule.Quality.FG > rep.FromQuality.FG+1e-9 {
			t.Fatalf("k=%d: repair worsened F_G: %.4f > %.4f",
				k, rep.Schedule.Quality.FG, rep.FromQuality.FG)
		}
		// From-scratch reschedule on the degraded system as the yardstick.
		scratch, err := ds.Schedule(nil, ScheduleOptions{Clusters: 4, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		// Acceptance: repaired Cc within 10% of the from-scratch optimum.
		if rep.Schedule.Quality.Cc < 0.9*scratch.Quality.Cc {
			t.Fatalf("k=%d: repaired Cc %.4f below 90%% of rescheduled %.4f",
				k, rep.Schedule.Quality.Cc, scratch.Quality.Cc)
		}
		if rep.Moved < 0 || rep.Moved > 16 {
			t.Fatalf("k=%d: Moved = %d out of range", k, rep.Moved)
		}
	}
}

func TestRepairCancellable(t *testing.T) {
	sys := sys16(t)
	sched, err := sys.Schedule(nil, ScheduleOptions{Clusters: 4, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := sys.Degrade(linkPlan(t, sys, 2, 7))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ds.Repair(ctx, sched.Partition, 42); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if _, err := ds.Schedule(ctx, ScheduleOptions{Clusters: 4, Seed: 1}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Schedule err = %v, want context.Canceled", err)
	}
}

func TestLinkEventsFromPlan(t *testing.T) {
	sys := sys16(t)
	links := sys.Network().Links()
	dead := 5
	plan := fault.Plan{Events: []fault.Event{
		{Kind: fault.LinkDown, Link: links[0], At: 100},
		{Kind: fault.FlakyLink, Link: links[1], At: 200, RepairAt: 400},
		{Kind: fault.SwitchDown, Switch: dead, At: 300},
	}}
	evs := sys.LinkEventsFromPlan(plan)
	want := 2 + sys.Network().Degree(dead)
	// links[0] or links[1] may touch the dead switch; then dedup shrinks
	// the list — just bound and spot-check.
	if len(evs) < sys.Network().Degree(dead) || len(evs) > want {
		t.Fatalf("got %d events, want within [%d,%d]", len(evs), sys.Network().Degree(dead), want)
	}
	foundRepair := false
	for _, ev := range evs {
		if ev.RepairAt != 0 {
			foundRepair = true
			if ev.At != 200 || ev.RepairAt != 400 {
				t.Fatalf("flaky event times wrong: %+v", ev)
			}
		}
		if !sys.Network().HasLink(ev.A, ev.B) {
			t.Fatalf("event on nonexistent link: %+v", ev)
		}
	}
	if !foundRepair {
		t.Fatal("flaky link did not survive conversion")
	}
}

// Façade hardening: malformed inputs must come back as errors, never as
// panics from the quality/mapping layers.
func TestFacadeNeverPanics(t *testing.T) {
	sys := sys16(t)
	wrong, err := mapping.Balanced(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Evaluate(nil); err == nil {
		t.Fatal("Evaluate(nil) accepted")
	}
	if _, err := sys.Evaluate(wrong); err == nil {
		t.Fatal("Evaluate on mismatched partition accepted")
	}
	if _, err := sys.Simulate(nil, simnet.Config{MeasureCycles: 10}); err == nil {
		t.Fatal("Simulate(nil) accepted")
	}
	if _, err := sys.IntraClusterPattern(nil); err == nil {
		t.Fatal("IntraClusterPattern(nil) accepted")
	}
	if _, err := sys.Schedule(nil, ScheduleOptions{Sizes: []int{4, 4}}); err == nil {
		t.Fatal("sizes summing to 8 of 16 accepted")
	}
	if _, err := sys.Schedule(nil, ScheduleOptions{Sizes: []int{16, 0}}); err == nil {
		t.Fatal("zero-size cluster accepted")
	}
	if _, err := sys.ScheduleWeighted(nil, []int{4, 4}, []float64{1, 1}, 1); err == nil {
		t.Fatal("weighted sizes summing to 8 of 16 accepted")
	}
	if _, err := sys.ScheduleWeighted(nil, []int{8, 8}, []float64{1}, 1); err == nil {
		t.Fatal("weights/sizes length mismatch accepted")
	}
}

// Degrade→Repair must round-trip at the maximum survivable failure
// count: push RandomPlan to the largest k it accepts on the paper's
// 16-switch instance, then verify the repaired schedule is a valid
// balanced partition of the survivors that never worsens the projected
// pre-failure mapping.
func TestDegradeRepairAtMaxSurvivableFailures(t *testing.T) {
	net, err := topology.RandomIrregular(16, 3, rand.New(rand.NewSource(2000)), topology.Config{})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := sys.Schedule(nil, ScheduleOptions{Clusters: 4, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}

	// Find the maximum k RandomPlan can absorb (deterministic per seed).
	maxK, lastPlan := 0, fault.Plan{}
	for k := 1; k <= len(net.Links()); k++ {
		plan, err := fault.RandomPlan(net, fault.PlanSpec{LinkFailures: k}, rand.New(rand.NewSource(500)))
		if err != nil {
			break
		}
		maxK, lastPlan = k, plan
	}
	if maxK < 2 {
		t.Fatalf("expected the 16-switch instance to survive >= 2 link failures, got %d", maxK)
	}

	ds, err := sys.Degrade(lastPlan)
	if err != nil {
		t.Fatalf("max survivable plan (k=%d) must degrade cleanly: %v", maxK, err)
	}
	rep, err := ds.Repair(nil, sched.Partition, 42)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schedule.Partition.N() != ds.Network().Switches() {
		t.Fatalf("repair covers %d switches, degraded network has %d",
			rep.Schedule.Partition.N(), ds.Network().Switches())
	}
	// Cluster sizes survive the round-trip: repair preserves the
	// projected partition's shape.
	for c := 0; c < rep.From.M(); c++ {
		if rep.From.Size(c) != rep.Schedule.Partition.Size(c) {
			t.Fatalf("cluster %d resized %d -> %d across repair",
				c, rep.From.Size(c), rep.Schedule.Partition.Size(c))
		}
	}
	if rep.Schedule.Quality.Cc < rep.FromQuality.Cc-1e-9 {
		t.Fatalf("repair worsened Cc: %.4f < %.4f", rep.Schedule.Quality.Cc, rep.FromQuality.Cc)
	}
	if rep.Moved < 0 || rep.Moved > ds.Network().Switches() {
		t.Fatalf("moved = %d out of range", rep.Moved)
	}
}
