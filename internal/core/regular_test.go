package core

import (
	"testing"

	"commsched/internal/mapping"
	"commsched/internal/simnet"
	"commsched/internal/topology"
)

// The paper claims the technique applies to regular topologies too. Drive
// the full pipeline end to end on each regular family.
func TestPipelineOnRegularTopologies(t *testing.T) {
	builders := []struct {
		name     string
		build    func() (*topology.Network, error)
		clusters int
	}{
		{"mesh-4x4", func() (*topology.Network, error) { return topology.Mesh2D(4, 4, topology.Config{}) }, 4},
		{"torus-4x4", func() (*topology.Network, error) { return topology.Torus2D(4, 4, topology.Config{}) }, 4},
		{"hypercube-4", func() (*topology.Network, error) { return topology.Hypercube(4, topology.Config{}) }, 4},
		{"ring-12", func() (*topology.Network, error) { return topology.Ring(12, topology.Config{}) }, 4},
	}
	for _, b := range builders {
		b := b
		t.Run(b.name, func(t *testing.T) {
			net, err := b.build()
			if err != nil {
				t.Fatal(err)
			}
			sys, err := NewSystem(net, Options{})
			if err != nil {
				t.Fatal(err)
			}
			sched, err := sys.Schedule(nil, ScheduleOptions{Clusters: b.clusters, Seed: 5})
			if err != nil {
				t.Fatal(err)
			}
			if sched.Quality.Cc <= 0 {
				t.Fatalf("degenerate Cc on %s", b.name)
			}
			// Scheduled beats random on Cc.
			rnd, err := sys.RandomMapping(b.clusters, 3)
			if err != nil {
				t.Fatal(err)
			}
			if cc := mustCc(t, sys, rnd); cc > sched.Quality.Cc {
				t.Fatalf("%s: random Cc %.3f beat scheduled %.3f",
					b.name, cc, sched.Quality.Cc)
			}
			// And the simulator runs on it.
			m, err := sys.Simulate(sched.Partition, simnet.Config{
				InjectionRate: 0.1, WarmupCycles: 200, MeasureCycles: 1000, Seed: 2,
			})
			if err != nil {
				t.Fatal(err)
			}
			if m.DeliveredMessages == 0 {
				t.Fatalf("%s: nothing delivered", b.name)
			}
		})
	}
}

// On a mesh, the natural quadrant clustering must beat a striped one.
func TestMeshQuadrantsBeatStripes(t *testing.T) {
	net, err := topology.Mesh2D(4, 4, topology.Config{})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	quad := make([]int, 16)
	stripe := make([]int, 16)
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			quad[r*4+c] = (r/2)*2 + c/2
			stripe[r*4+c] = c
		}
	}
	qp, err := mapping.New(quad, 4)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := mapping.New(stripe, 4)
	if err != nil {
		t.Fatal(err)
	}
	qcc, scc := mustCc(t, sys, qp), mustCc(t, sys, sp)
	if qcc <= scc {
		t.Fatalf("quadrants Cc %.3f not above stripes %.3f", qcc, scc)
	}
}
