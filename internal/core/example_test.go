package core_test

import (
	"fmt"
	"log"
	"math/rand"

	"commsched/internal/core"
	"commsched/internal/mapping"
	"commsched/internal/topology"
)

// ExampleSystem_Schedule runs the paper's pipeline on the designed
// 24-switch rings network: the scheduler recovers the four rings exactly.
func ExampleSystem_Schedule() {
	net, err := topology.InterconnectedRings(4, 6, 1, topology.Config{})
	if err != nil {
		log.Fatal(err)
	}
	sys, err := core.NewSystem(net, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	sched, err := sys.Schedule(nil, core.ScheduleOptions{Clusters: 4, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(sched.Partition)
	// Output:
	// (0,1,2,3,4,5) (6,7,8,9,10,11) (12,13,14,15,16,17) (18,19,20,21,22,23)
}

// ExampleSystem_Evaluate scores a hand-built mapping with the paper's
// quality functions.
func ExampleSystem_Evaluate() {
	net, err := topology.Ring(8, topology.Config{})
	if err != nil {
		log.Fatal(err)
	}
	sys, err := core.NewSystem(net, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	// Two contiguous arcs of the ring: a natural 2-way clustering.
	good, err := mapping.New([]int{0, 0, 0, 0, 1, 1, 1, 1}, 2)
	if err != nil {
		log.Fatal(err)
	}
	// Alternating switches: the worst possible clustering.
	bad, err := mapping.New([]int{0, 1, 0, 1, 0, 1, 0, 1}, 2)
	if err != nil {
		log.Fatal(err)
	}
	gq, err := sys.Evaluate(good)
	if err != nil {
		log.Fatal(err)
	}
	bq, err := sys.Evaluate(bad)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("contiguous Cc > alternating Cc: %v\n", gq.Cc > bq.Cc)
	// Output:
	// contiguous Cc > alternating Cc: true
}

// ExampleSystem_RandomMapping shows the R_i baseline draw.
func ExampleSystem_RandomMapping() {
	net, err := topology.RandomIrregular(8, 3, rand.New(rand.NewSource(1)), topology.Config{})
	if err != nil {
		log.Fatal(err)
	}
	sys, err := core.NewSystem(net, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	p, err := sys.RandomMapping(4, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(p.M(), "clusters of", p.Size(0), "switches")
	// Output:
	// 4 clusters of 2 switches
}
