package core

import (
	"context"
	"fmt"
	"math/rand"

	"commsched/internal/distance"
	"commsched/internal/fault"
	"commsched/internal/mapping"
	"commsched/internal/obs"
	"commsched/internal/quality"
	"commsched/internal/routing"
	"commsched/internal/search"
	"commsched/internal/simnet"
	"commsched/internal/topology"
)

// DegradedSystem is a System re-characterized after a failure plan: the
// degraded topology with its re-derived up*/down* routing and distance
// table, plus the bookkeeping needed to carry an existing schedule over.
type DegradedSystem struct {
	*System
	// Faults records what the plan removed and how switch IDs were
	// compacted (Identity when no switch died).
	Faults *fault.Degraded
	// RootChanged reports that the spanning-tree root had to be
	// re-elected because the original root switch died.
	RootChanged bool
	// RecomputedPairs counts the distance-table entries that were
	// re-solved rather than carried over (n·(n−1)/2 on a full rebuild).
	RecomputedPairs int
}

// Degrade applies a failure plan to the system and re-characterizes the
// surviving network: routing is re-derived (keeping the old root when it
// survived, re-electing otherwise), verified deadlock-free, and the
// distance table is rebuilt — incrementally, re-solving only the pairs
// whose legal routes changed, when no switch died and the resistance
// metric is in use. A plan that partitions the network is rejected with
// a descriptive error; no call path panics.
func (s *System) Degrade(plan fault.Plan) (*DegradedSystem, error) {
	sp := obs.StartSpan("core.degrade", obs.F("events", len(plan.Events)))
	d, err := fault.Apply(s.net, plan)
	if err != nil {
		return nil, fmt.Errorf("core: degrade: %w", err)
	}
	oldRoot := s.rt.Root()
	newRoot := d.OldToNew[oldRoot]
	rt, err := routing.NewUpDown(d.Net, newRoot) // -1 re-elects when the root died
	if err != nil {
		return nil, fmt.Errorf("core: degrade: %w", err)
	}
	if err := rt.VerifyDeadlockFree(); err != nil {
		return nil, fmt.Errorf("core: degrade: %w", err)
	}
	var (
		tab        *distance.Table
		recomputed int
	)
	switch s.metric {
	case MetricResistance:
		if d.Identity() {
			tab, recomputed, err = distance.ComputeDelta(d.Net, rt, s.rt, s.tab)
		} else {
			tab, err = distance.Compute(d.Net, rt)
			n := d.Net.Switches()
			recomputed = n * (n - 1) / 2
		}
		if err != nil {
			return nil, fmt.Errorf("core: degrade: %w", err)
		}
	case MetricHops:
		tab = distance.HopTable(d.Net, rt)
	default:
		return nil, fmt.Errorf("core: unknown metric %d", s.metric)
	}
	sp.End(
		obs.F("switches", d.Net.Switches()),
		obs.F("recomputed_pairs", recomputed),
		obs.F("root_changed", newRoot < 0))
	return &DegradedSystem{
		System: &System{
			net:    d.Net,
			rt:     rt,
			tab:    tab,
			eval:   quality.NewEvaluator(tab),
			metric: s.metric,
		},
		Faults:          d,
		RootChanged:     newRoot < 0,
		RecomputedPairs: recomputed,
	}, nil
}

// ProjectPartition carries a pre-failure schedule onto the degraded
// network: dead switches are dropped and the survivors keep their
// cluster, relabeled through the ID compaction. A cluster that lost all
// of its switches makes the old schedule unusable and is an error.
func (ds *DegradedSystem) ProjectPartition(p *mapping.Partition) (*mapping.Partition, error) {
	if p == nil {
		return nil, fmt.Errorf("core: ProjectPartition needs a partition")
	}
	if p.N() != len(ds.Faults.OldToNew) {
		return nil, fmt.Errorf("core: partition covers %d switches, pre-failure network had %d",
			p.N(), len(ds.Faults.OldToNew))
	}
	m := p.M()
	assign := make([]int, ds.net.Switches())
	alive := make([]int, m)
	for old, next := range ds.Faults.OldToNew {
		if next < 0 {
			continue
		}
		c := p.Cluster(old)
		assign[next] = c
		alive[c]++
	}
	for c, n := range alive {
		if n == 0 {
			return nil, fmt.Errorf("core: cluster %d lost all of its switches to the failure plan", c)
		}
	}
	proj, err := mapping.New(assign, m)
	if err != nil {
		return nil, fmt.Errorf("core: projecting partition: %w", err)
	}
	return proj, nil
}

// RepairResult is the outcome of warm-start rescheduling on a degraded
// system.
type RepairResult struct {
	// Schedule is the repaired mapping with its quality on the degraded
	// network.
	Schedule *Schedule
	// From is the projected pre-failure mapping the search started from.
	From *mapping.Partition
	// FromQuality is From's quality on the degraded network — the
	// "unrepaired" operating point.
	FromQuality Quality
	// Moved counts the switches whose cluster changed between From and
	// the repaired mapping: the migration cost of adopting the repair.
	Moved int
}

// Repair reschedules an existing mapping on the degraded network by
// warm-starting the paper's Tabu search from the projected pre-failure
// partition. Because steepest-descent only leaves the start through
// improving (or tabu-escape) moves, the result tends to move far fewer
// switches than a from-scratch reschedule while recovering most of its
// clustering coefficient. A nil ctx means context.Background.
func (ds *DegradedSystem) Repair(ctx context.Context, old *mapping.Partition, seed int64) (*RepairResult, error) {
	sp, ctx := obs.StartSpanCtx(ctx, "core.repair", obs.F("seed", seed))
	proj, err := ds.ProjectPartition(old)
	if err != nil {
		return nil, err
	}
	sizes := make([]int, proj.M())
	for c := range sizes {
		sizes[c] = proj.Size(c)
	}
	fromQ, err := ds.Evaluate(proj)
	if err != nil {
		return nil, err
	}
	res, err := search.NewTabu().SearchFrom(ctx, ds.eval, search.Spec{Sizes: sizes},
		rand.New(rand.NewSource(seed)), proj)
	if err != nil {
		return nil, fmt.Errorf("core: repair: %w", err)
	}
	q, err := ds.Evaluate(res.Best)
	if err != nil {
		return nil, err
	}
	moved, err := mapping.Moves(proj, res.Best)
	if err != nil {
		return nil, err
	}
	sp.End(
		obs.F("moved", moved),
		obs.F("cc_before", fromQ.Cc),
		obs.F("cc_after", q.Cc))
	return &RepairResult{
		Schedule:    &Schedule{Partition: res.Best, Quality: q, Search: res},
		From:        proj,
		FromQuality: fromQ,
		Moved:       moved,
	}, nil
}

// LinkEventsFromPlan converts a failure plan into the simulator's
// mid-run link-event timeline, for simulating the window between a
// failure and the reconfiguration that reacts to it. Link failures map
// one-to-one; a switch failure becomes the simultaneous death of every
// link incident to the switch. Events whose links do not exist on the
// system's network are skipped (the simulator would reject them).
func (s *System) LinkEventsFromPlan(plan fault.Plan) []simnet.LinkEvent {
	var out []simnet.LinkEvent
	seen := make(map[topology.Link]bool)
	add := func(a, b int, at, repairAt int64) {
		l := topology.NormalizeLink(a, b)
		if !s.net.HasLink(l.A, l.B) || seen[l] {
			return
		}
		seen[l] = true
		out = append(out, simnet.LinkEvent{A: l.A, B: l.B, At: at, RepairAt: repairAt})
	}
	for _, ev := range plan.Events {
		switch ev.Kind {
		case fault.LinkDown:
			add(ev.Link.A, ev.Link.B, ev.At, 0)
		case fault.FlakyLink:
			add(ev.Link.A, ev.Link.B, ev.At, ev.RepairAt)
		case fault.SwitchDown:
			if ev.Switch < 0 || ev.Switch >= s.net.Switches() {
				continue
			}
			for _, nb := range s.net.Neighbors(ev.Switch) {
				add(ev.Switch, nb, ev.At, 0)
			}
		}
	}
	return out
}
