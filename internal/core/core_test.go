package core

import (
	"math/rand"
	"testing"

	"commsched/internal/mapping"
	"commsched/internal/search"
	"commsched/internal/simnet"
	"commsched/internal/topology"
	"commsched/internal/traffic"
)

// mustCc evaluates a partition and fails the test on error.
func mustCc(t *testing.T, sys *System, p *mapping.Partition) float64 {
	t.Helper()
	q, err := sys.Evaluate(p)
	if err != nil {
		t.Fatal(err)
	}
	return q.Cc
}

func net16(t *testing.T) *topology.Network {
	t.Helper()
	net, err := topology.RandomIrregular(16, 3, rand.New(rand.NewSource(1)), topology.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestNewSystemDefaults(t *testing.T) {
	sys, err := NewSystem(net16(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Network().Switches() != 16 {
		t.Fatal("network not retained")
	}
	if sys.DistanceTable().N() != 16 {
		t.Fatal("table size wrong")
	}
	if sys.Routing().Root() < 0 || sys.Routing().Root() >= 16 {
		t.Fatal("no root elected")
	}
	if sys.Evaluator() == nil {
		t.Fatal("nil evaluator")
	}
}

func TestNewSystemExplicitRoot(t *testing.T) {
	root := 5
	sys, err := NewSystem(net16(t), Options{Root: &root})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Routing().Root() != 5 {
		t.Fatalf("root = %d, want 5", sys.Routing().Root())
	}
	bad := 99
	if _, err := NewSystem(net16(t), Options{Root: &bad}); err == nil {
		t.Fatal("out-of-range root accepted")
	}
	neg := -2
	if _, err := NewSystem(net16(t), Options{Root: &neg}); err == nil {
		t.Fatal("negative explicit root accepted")
	}
}

func TestNewSystemHopMetric(t *testing.T) {
	net := net16(t)
	res, err := NewSystem(net, Options{Metric: MetricResistance})
	if err != nil {
		t.Fatal(err)
	}
	hop, err := NewSystem(net, Options{Metric: MetricHops})
	if err != nil {
		t.Fatal(err)
	}
	// Hop distances are integers >= resistance distances.
	diff := false
	for i := 0; i < 16; i++ {
		for j := 0; j < 16; j++ {
			if hop.DistanceTable().At(i, j) < res.DistanceTable().At(i, j)-1e-9 {
				t.Fatalf("hop table below resistance table at (%d,%d)", i, j)
			}
			if hop.DistanceTable().At(i, j) != res.DistanceTable().At(i, j) {
				diff = true
			}
		}
	}
	if !diff {
		t.Fatal("hop and resistance tables identical — resistance model lost path multiplicity")
	}
	if _, err := NewSystem(net, Options{Metric: Metric(42)}); err == nil {
		t.Fatal("unknown metric accepted")
	}
}

func TestScheduleDefaultTabu(t *testing.T) {
	sys, err := NewSystem(net16(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := sys.Schedule(nil, ScheduleOptions{Clusters: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if sched.Partition.M() != 4 || sched.Partition.N() != 16 {
		t.Fatal("wrong partition shape")
	}
	if sched.Quality.Cc <= 0 || sched.Quality.FG <= 0 {
		t.Fatalf("degenerate quality: %+v", sched.Quality)
	}
	// The scheduled mapping must beat random mappings on Cc.
	for seed := int64(0); seed < 10; seed++ {
		r, err := sys.RandomMapping(4, seed)
		if err != nil {
			t.Fatal(err)
		}
		if cc := mustCc(t, sys, r); cc >= sched.Quality.Cc {
			t.Fatalf("random mapping (seed %d) Cc %v >= scheduled %v", seed, cc, sched.Quality.Cc)
		}
	}
}

func TestScheduleOptionsValidation(t *testing.T) {
	sys, err := NewSystem(net16(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Schedule(nil, ScheduleOptions{}); err == nil {
		t.Fatal("missing Clusters/Sizes accepted")
	}
	if _, err := sys.Schedule(nil, ScheduleOptions{Clusters: 5}); err == nil {
		t.Fatal("indivisible cluster count accepted")
	}
}

func TestScheduleExplicitSizes(t *testing.T) {
	sys, err := NewSystem(net16(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := sys.Schedule(nil, ScheduleOptions{Sizes: []int{2, 6, 8}, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if sched.Partition.Size(0) != 2 || sched.Partition.Size(1) != 6 || sched.Partition.Size(2) != 8 {
		t.Fatal("explicit sizes not honored")
	}
}

func TestScheduleCustomSearcher(t *testing.T) {
	sys, err := NewSystem(net16(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := sys.Schedule(nil, ScheduleOptions{Clusters: 4, Searcher: search.NewGreedy(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sched.Partition == nil {
		t.Fatal("nil partition from custom searcher")
	}
}

func TestScheduleTraceRecording(t *testing.T) {
	sys, err := NewSystem(net16(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := sys.Schedule(nil, ScheduleOptions{Clusters: 4, Seed: 1, RecordTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.Search.Trace) == 0 {
		t.Fatal("no trace recorded")
	}
}

func TestScheduleWeighted(t *testing.T) {
	sys, err := NewSystem(net16(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	sizes := []int{4, 4, 4, 4}
	sched, err := sys.ScheduleWeighted(nil, sizes, []float64{50, 1, 1, 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sched.Partition.M() != 4 {
		t.Fatal("wrong cluster count")
	}
	// The heavy cluster must end up at least as compact as any other: its
	// intra-cluster cost per pair cannot exceed the loosest cluster's.
	ev := sys.Evaluator()
	heavy := ev.ClusterSimilarity(sched.Partition, 0)
	worst := heavy
	for c := 1; c < 4; c++ {
		if v := ev.ClusterSimilarity(sched.Partition, c); v > worst {
			worst = v
		}
	}
	if heavy > worst {
		t.Fatalf("heavy cluster cost %v above loosest cluster %v", heavy, worst)
	}
	if _, err := sys.ScheduleWeighted(nil, sizes, []float64{1, 2}, 3); err == nil {
		t.Fatal("mismatched sizes/weights accepted")
	}
	if _, err := sys.ScheduleWeighted(nil, sizes, []float64{1, 1, 1, -1}, 3); err == nil {
		t.Fatal("negative weight accepted")
	}
}

func TestSimulateEndToEnd(t *testing.T) {
	sys, err := NewSystem(net16(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := sys.Schedule(nil, ScheduleOptions{Clusters: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	m, err := sys.Simulate(sched.Partition, simnet.Config{
		InjectionRate: 0.05, WarmupCycles: 500, MeasureCycles: 2000, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.DeliveredMessages == 0 {
		t.Fatal("nothing delivered end to end")
	}
	// Per-application breakdown is filled automatically from the partition.
	if len(m.PerCluster) != 4 {
		t.Fatalf("PerCluster has %d entries, want 4", len(m.PerCluster))
	}
}

func TestSimulateSweep(t *testing.T) {
	sys, err := NewSystem(net16(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := sys.RandomMapping(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	points, err := sys.SimulateSweep(nil, p, simnet.Config{WarmupCycles: 200, MeasureCycles: 800, Seed: 4},
		simnet.LinearRates(3, 0.3))
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("sweep returned %d points, want 3", len(points))
	}
}

func TestSimulatePattern(t *testing.T) {
	sys, err := NewSystem(net16(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	u, err := traffic.NewUniform(sys.Network().Hosts())
	if err != nil {
		t.Fatal(err)
	}
	m, err := sys.SimulatePattern(u, simnet.Config{
		InjectionRate: 0.05, WarmupCycles: 200, MeasureCycles: 1000, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.DeliveredMessages == 0 {
		t.Fatal("uniform pattern delivered nothing")
	}
}

func TestIntraClusterPatternSizeMismatch(t *testing.T) {
	sys, err := NewSystem(net16(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := mapping.Balanced(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.IntraClusterPattern(p); err == nil {
		t.Fatal("mismatched partition accepted")
	}
	if _, err := sys.Simulate(p, simnet.Config{InjectionRate: 0.1}); err == nil {
		t.Fatal("Simulate accepted mismatched partition")
	}
	if _, err := sys.SimulateSweep(nil, p, simnet.Config{}, []float64{0.1}); err == nil {
		t.Fatal("SimulateSweep accepted mismatched partition")
	}
}
