package core

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"

	"commsched/internal/runstate"
	"commsched/internal/simnet"
	"commsched/internal/topology"
)

func runstateSystem(t *testing.T) *System {
	t.Helper()
	net, err := topology.RandomIrregular(8, 3, rand.New(rand.NewSource(1)), topology.Config{})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func tinyCfg() simnet.Config {
	return simnet.Config{
		VirtualChannels: 2, MessageFlits: 8,
		WarmupCycles: 100, MeasureCycles: 400, Seed: 7,
	}
}

func openTestStore(t *testing.T, dir string) *runstate.Store {
	t.Helper()
	s, err := runstate.Open(dir, runstate.Identity{Command: "core-test"})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// sweepJSON canonicalizes a sweep for bit-identity comparison. Metrics
// keeps unexported accumulators that are meaningless after finalization
// and are deliberately not persisted; every observable output (CSV
// columns, Saturated(), plots) reads only the exported fields, which is
// exactly what the JSON encoding captures.
func sweepJSON(t *testing.T, pts []simnet.SweepPoint) string {
	t.Helper()
	data, err := json.Marshal(pts)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// A resumed sweep must be bit-identical to an uninterrupted one: the
// checkpointed points come back from disk with the exact float64 values
// that were computed.
func TestSimulateSweepResumeBitIdentical(t *testing.T) {
	sys := runstateSystem(t)
	p, err := sys.RandomMapping(4, 100)
	if err != nil {
		t.Fatal(err)
	}
	rates := simnet.LinearRates(4, 0.3)

	// Reference: no store installed.
	want, err := sys.SimulateSweep(nil, p, tinyCfg(), rates)
	if err != nil {
		t.Fatal(err)
	}

	// First durable run records every point.
	dir := t.TempDir()
	st := openTestStore(t, dir)
	runstate.SetStore(st)
	got1, err := sys.SimulateSweep(nil, p, tinyCfg(), rates)
	runstate.SetStore(nil)
	if err != nil {
		t.Fatal(err)
	}
	if sweepJSON(t, got1) != sweepJSON(t, want) {
		t.Fatal("recording run differs from plain run")
	}
	if st.Stats().Recorded != int64(len(rates)) {
		t.Fatalf("recorded = %d, want %d", st.Stats().Recorded, len(rates))
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Resumed run replays every point from disk — no simulation at all —
	// and must still be bit-identical.
	st2 := openTestStore(t, dir)
	runstate.SetStore(st2)
	got2, err := sys.SimulateSweep(nil, p, tinyCfg(), rates)
	runstate.SetStore(nil)
	if err != nil {
		t.Fatal(err)
	}
	if sweepJSON(t, got2) != sweepJSON(t, want) {
		t.Fatal("resumed run differs from uninterrupted run")
	}
	stats := st2.Stats()
	if stats.Replayed != int64(len(rates)) || stats.Hits != int64(len(rates)) {
		t.Fatalf("replayed=%d hits=%d, want %d each", stats.Replayed, stats.Hits, len(rates))
	}
	st2.Close()
}

// Distinct mappings on the same system must never share sweep units.
func TestSweepUnitsScopedPerMapping(t *testing.T) {
	sys := runstateSystem(t)
	p1, err := sys.RandomMapping(4, 100)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := sys.RandomMapping(4, 101)
	if err != nil {
		t.Fatal(err)
	}
	rates := simnet.LinearRates(2, 0.2)

	st := openTestStore(t, t.TempDir())
	runstate.SetStore(st)
	defer runstate.SetStore(nil)
	defer st.Close()

	s1, err := sys.SimulateSweep(nil, p1, tinyCfg(), rates)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := sys.SimulateSweep(nil, p2, tinyCfg(), rates)
	if err != nil {
		t.Fatal(err)
	}
	if st.Stats().Hits != 0 {
		t.Fatalf("hits = %d; second mapping must not reuse the first mapping's units", st.Stats().Hits)
	}
	if sweepJSON(t, s1) == sweepJSON(t, s2) {
		t.Fatal("different mappings produced identical sweeps — scoping is vacuous")
	}
}

// A checkpointed Schedule must replay to an observably identical result:
// same partition, same quality, same search counters and trace.
func TestScheduleResumeIdentical(t *testing.T) {
	sys := runstateSystem(t)
	opts := ScheduleOptions{Clusters: 4, Seed: 42, RecordTrace: true}

	want, err := sys.Schedule(nil, opts)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	st := openTestStore(t, dir)
	runstate.SetStore(st)
	got1, err := sys.Schedule(nil, opts)
	if err != nil {
		runstate.SetStore(nil)
		t.Fatal(err)
	}
	if st.Stats().Recorded != 1 {
		runstate.SetStore(nil)
		t.Fatalf("recorded = %d, want 1", st.Stats().Recorded)
	}
	// Same process, same store: replay from memory.
	got2, err := sys.Schedule(nil, opts)
	runstate.SetStore(nil)
	if err != nil {
		t.Fatal(err)
	}
	st.Close()

	// Fresh store instance: replay from disk.
	st2 := openTestStore(t, dir)
	runstate.SetStore(st2)
	got3, err := sys.Schedule(nil, opts)
	runstate.SetStore(nil)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Stats().Hits != 1 {
		t.Fatalf("disk hits = %d, want 1", st2.Stats().Hits)
	}
	st2.Close()

	for i, got := range []*Schedule{got1, got2, got3} {
		if !got.Partition.Equal(want.Partition) {
			t.Fatalf("run %d: partition differs", i)
		}
		if got.Quality != want.Quality {
			t.Fatalf("run %d: quality %+v, want %+v", i, got.Quality, want.Quality)
		}
		if got.Search.BestIntraSum != want.Search.BestIntraSum ||
			got.Search.BestF != want.Search.BestF ||
			got.Search.Evaluations != want.Search.Evaluations ||
			got.Search.Iterations != want.Search.Iterations {
			t.Fatalf("run %d: search counters differ: %+v vs %+v", i, got.Search, want.Search)
		}
		if !reflect.DeepEqual(got.Search.Trace, want.Search.Trace) {
			t.Fatalf("run %d: trace differs", i)
		}
	}
}

// Different seeds (and different searcher configs) must map to different
// schedule units.
func TestScheduleUnitsKeyedBySeed(t *testing.T) {
	sys := runstateSystem(t)
	st := openTestStore(t, t.TempDir())
	runstate.SetStore(st)
	defer runstate.SetStore(nil)
	defer st.Close()

	a, err := sys.Schedule(nil, ScheduleOptions{Clusters: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := sys.Schedule(nil, ScheduleOptions{Clusters: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if st.Stats().Hits != 0 {
		t.Fatalf("hits = %d; distinct seeds must not share units", st.Stats().Hits)
	}
	_, _ = a, b
}

// The durable layer depends on encoding/json round-tripping float64
// exactly (shortest round-trip representation): a Metrics value pushed
// through Marshal/Unmarshal must compare equal field-for-field on every
// exported field, or resumed CSVs could drift in the last ulp.
func TestMetricsJSONRoundTripExact(t *testing.T) {
	sys := runstateSystem(t)
	p, err := sys.RandomMapping(4, 100)
	if err != nil {
		t.Fatal(err)
	}
	cfg := tinyCfg()
	cfg.InjectionRate = 0.17 // not representable exactly in binary — the interesting case
	m, err := sys.Simulate(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back simnet.Metrics
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	// Encoding the decoded value must reproduce the original bytes: Go's
	// shortest-round-trip float64 formatting guarantees this, and the
	// whole durable layer leans on it.
	again, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(again) {
		t.Fatalf("metrics JSON not stable across round-trip:\n got %s\nwant %s", again, data)
	}
	// Spot-check the awkward floats with exact comparison.
	if back.AcceptedTraffic != m.AcceptedTraffic || back.AvgLatency != m.AvgLatency ||
		back.AvgSourceQueueFlits != m.AvgSourceQueueFlits {
		t.Fatal("derived float fields drifted across round-trip")
	}
	if back.Saturated() != m.Saturated() {
		t.Fatal("Saturated() differs after round-trip")
	}
}
