package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a solve encounters a (numerically) singular
// system.
var ErrSingular = errors.New("linalg: singular matrix")

// Solve solves A·x = b by Gaussian elimination with partial pivoting and
// returns x. A and b are not modified. It returns ErrSingular when a pivot
// smaller than the numerical tolerance is encountered.
func Solve(a *Matrix, b []float64) ([]float64, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: Solve requires a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	if a.Rows != len(b) {
		return nil, fmt.Errorf("linalg: Solve dimension mismatch: %dx%d vs vec(%d)", a.Rows, a.Cols, len(b))
	}
	n := a.Rows
	// Work on copies; callers keep their inputs.
	m := a.Clone()
	x := make([]float64, n)
	copy(x, b)

	tol := pivotTolerance(m)
	for col := 0; col < n; col++ {
		// Partial pivoting: pick the row with the largest magnitude in col.
		pivot := col
		maxAbs := math.Abs(m.At(col, col))
		for r := col + 1; r < n; r++ {
			if a := math.Abs(m.At(r, col)); a > maxAbs {
				maxAbs, pivot = a, r
			}
		}
		if maxAbs < tol {
			return nil, ErrSingular
		}
		if pivot != col {
			swapRows(m, pivot, col)
			x[pivot], x[col] = x[col], x[pivot]
		}
		inv := 1.0 / m.At(col, col)
		for r := col + 1; r < n; r++ {
			f := m.At(r, col) * inv
			if f == 0 {
				continue
			}
			m.Set(r, col, 0)
			for c := col + 1; c < n; c++ {
				m.Add(r, c, -f*m.At(col, c))
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= m.At(i, j) * x[j]
		}
		x[i] = s / m.At(i, i)
	}
	return x, nil
}

// pivotTolerance computes a scale-aware singularity threshold.
func pivotTolerance(m *Matrix) float64 {
	scale := m.MaxAbs()
	if scale == 0 {
		scale = 1
	}
	return scale * float64(m.Rows) * 1e-14
}

func swapRows(m *Matrix, i, j int) {
	ri := m.Data[i*m.Cols : (i+1)*m.Cols]
	rj := m.Data[j*m.Cols : (j+1)*m.Cols]
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

// Cholesky computes the lower-triangular factor L with A = L·Lᵀ for a
// symmetric positive-definite matrix A. It returns ErrSingular when A is
// not positive definite to working precision.
func Cholesky(a *Matrix) (*Matrix, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: Cholesky requires a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if s <= 0 {
					return nil, ErrSingular
				}
				l.Set(i, i, math.Sqrt(s))
			} else {
				l.Set(i, j, s/l.At(j, j))
			}
		}
	}
	return l, nil
}

// SolveCholesky solves A·x = b given the Cholesky factor L of A
// (forward then backward substitution).
func SolveCholesky(l *Matrix, b []float64) ([]float64, error) {
	n := l.Rows
	if n != len(b) {
		return nil, fmt.Errorf("linalg: SolveCholesky dimension mismatch: %d vs %d", n, len(b))
	}
	// Forward: L·y = b
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for j := 0; j < i; j++ {
			s -= l.At(i, j) * y[j]
		}
		d := l.At(i, i)
		if d == 0 {
			return nil, ErrSingular
		}
		y[i] = s / d
	}
	// Backward: Lᵀ·x = y
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= l.At(j, i) * x[j]
		}
		x[i] = s / l.At(i, i)
	}
	return x, nil
}
