package linalg

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func unitEdges(pairs [][2]int) []WeightedEdge {
	es := make([]WeightedEdge, len(pairs))
	for i, p := range pairs {
		es[i] = WeightedEdge{U: p[0], V: p[1], Weight: 1}
	}
	return es
}

func TestLaplacianStructure(t *testing.T) {
	// Triangle on 3 nodes.
	l := Laplacian(3, unitEdges([][2]int{{0, 1}, {1, 2}, {0, 2}}))
	for i := 0; i < 3; i++ {
		if l.At(i, i) != 2 {
			t.Fatalf("degree of node %d = %v, want 2", i, l.At(i, i))
		}
		rowSum := 0.0
		for j := 0; j < 3; j++ {
			rowSum += l.At(i, j)
		}
		if rowSum != 0 {
			t.Fatalf("row %d sums to %v, want 0", i, rowSum)
		}
	}
	if !l.Symmetric(0) {
		t.Fatal("Laplacian not symmetric")
	}
}

func TestLaplacianIgnoresSelfLoops(t *testing.T) {
	l := Laplacian(2, []WeightedEdge{{U: 0, V: 0, Weight: 5}, {U: 0, V: 1, Weight: 1}})
	if l.At(0, 0) != 1 {
		t.Fatalf("self loop affected Laplacian: L[0][0] = %v, want 1", l.At(0, 0))
	}
}

func TestLaplacianParallelEdgesAccumulate(t *testing.T) {
	l := Laplacian(2, unitEdges([][2]int{{0, 1}, {0, 1}}))
	if l.At(0, 1) != -2 {
		t.Fatalf("parallel edges: L[0][1] = %v, want -2", l.At(0, 1))
	}
}

func TestEffectiveResistanceSingleEdge(t *testing.T) {
	r, err := EffectiveResistance(2, unitEdges([][2]int{{0, 1}}), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(r, 1, 1e-12) {
		t.Fatalf("R = %v, want 1", r)
	}
}

func TestEffectiveResistanceSeries(t *testing.T) {
	// Path 0-1-2: two unit resistors in series = 2 Ω.
	r, err := EffectiveResistance(3, unitEdges([][2]int{{0, 1}, {1, 2}}), 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(r, 2, 1e-12) {
		t.Fatalf("series R = %v, want 2", r)
	}
}

func TestEffectiveResistanceParallel(t *testing.T) {
	// Two parallel unit resistors = 0.5 Ω.
	r, err := EffectiveResistance(2, unitEdges([][2]int{{0, 1}, {0, 1}}), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(r, 0.5, 1e-12) {
		t.Fatalf("parallel R = %v, want 0.5", r)
	}
}

func TestEffectiveResistanceSquare(t *testing.T) {
	// Cycle 0-1-2-3-0, opposite corners: (1+1) ∥ (1+1) = 1 Ω.
	edges := unitEdges([][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	r, err := EffectiveResistance(4, edges, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(r, 1, 1e-12) {
		t.Fatalf("square diagonal R = %v, want 1", r)
	}
	// Adjacent corners: 1 ∥ 3 = 0.75 Ω.
	r, err = EffectiveResistance(4, edges, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(r, 0.75, 1e-12) {
		t.Fatalf("square edge R = %v, want 0.75", r)
	}
}

func TestEffectiveResistanceWheatstoneBalanced(t *testing.T) {
	// Balanced Wheatstone bridge: bridge edge carries no current, so R = 1.
	// Nodes: 0 (s), 1, 2, 3 (t); all arms unit, bridge 1-2 unit.
	edges := unitEdges([][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}, {1, 2}})
	r, err := EffectiveResistance(4, edges, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(r, 1, 1e-12) {
		t.Fatalf("balanced bridge R = %v, want 1", r)
	}
}

func TestEffectiveResistanceSameNode(t *testing.T) {
	r, err := EffectiveResistance(2, unitEdges([][2]int{{0, 1}}), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r != 0 {
		t.Fatalf("R(i,i) = %v, want 0", r)
	}
}

func TestEffectiveResistanceDisconnected(t *testing.T) {
	_, err := EffectiveResistance(4, unitEdges([][2]int{{0, 1}, {2, 3}}), 0, 3)
	if !errors.Is(err, ErrDisconnected) {
		t.Fatalf("err = %v, want ErrDisconnected", err)
	}
}

func TestEffectiveResistanceIgnoresOtherComponents(t *testing.T) {
	// A disconnected extra component must not break the solve.
	edges := unitEdges([][2]int{{0, 1}, {2, 3}})
	r, err := EffectiveResistance(4, edges, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(r, 1, 1e-12) {
		t.Fatalf("R = %v, want 1", r)
	}
}

func TestEffectiveResistanceOutOfRange(t *testing.T) {
	if _, err := EffectiveResistance(2, nil, 0, 5); err == nil {
		t.Fatal("expected out-of-range error")
	}
	if _, err := EffectiveResistance(2, nil, -1, 0); err == nil {
		t.Fatal("expected out-of-range error")
	}
}

func TestEffectiveResistanceWeighted(t *testing.T) {
	// Conductance 2 (i.e. 0.5 Ω resistor) in series with conductance 1.
	edges := []WeightedEdge{{U: 0, V: 1, Weight: 2}, {U: 1, V: 2, Weight: 1}}
	r, err := EffectiveResistance(3, edges, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(r, 1.5, 1e-12) {
		t.Fatalf("weighted series R = %v, want 1.5", r)
	}
}

// Property: effective resistance is symmetric in its terminals, at most the
// shortest-path hop distance, and positive for distinct connected nodes.
func TestQuickResistanceProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		// Random connected graph: spanning path + extra random edges.
		var edges []WeightedEdge
		for i := 1; i < n; i++ {
			edges = append(edges, WeightedEdge{U: i - 1, V: i, Weight: 1})
		}
		extra := rng.Intn(2 * n)
		for k := 0; k < extra; k++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				edges = append(edges, WeightedEdge{U: u, V: v, Weight: 1})
			}
		}
		s, tt := rng.Intn(n), rng.Intn(n)
		r1, err := EffectiveResistance(n, edges, s, tt)
		if err != nil {
			return false
		}
		r2, err := EffectiveResistance(n, edges, tt, s)
		if err != nil {
			return false
		}
		if !almostEq(r1, r2, 1e-9) {
			return false
		}
		if s == tt {
			return r1 == 0
		}
		// Path graph base guarantees hop distance ≤ |s-t|; extra parallel
		// edges can only lower resistance (Rayleigh monotonicity).
		hop := float64(abs(s - tt))
		return r1 > 0 && r1 <= hop+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Property (Rayleigh monotonicity): adding an edge never increases the
// effective resistance between any pair.
func TestQuickRayleighMonotonicity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(8)
		var edges []WeightedEdge
		for i := 1; i < n; i++ {
			edges = append(edges, WeightedEdge{U: i - 1, V: i, Weight: 1})
		}
		extra := rng.Intn(n)
		for k := 0; k < extra; k++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				edges = append(edges, WeightedEdge{U: u, V: v, Weight: 1})
			}
		}
		s, tt := rng.Intn(n), rng.Intn(n)
		before, err := EffectiveResistance(n, edges, s, tt)
		if err != nil {
			return false
		}
		// Add one random edge.
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			v = (u + 1) % n
		}
		after, err := EffectiveResistance(n, append(edges, WeightedEdge{U: u, V: v, Weight: 1}), s, tt)
		if err != nil {
			return false
		}
		return after <= before+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
