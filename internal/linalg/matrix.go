// Package linalg provides the small dense linear-algebra kernel needed to
// compute effective resistances on network graphs: dense matrices, Gaussian
// elimination with partial pivoting, Cholesky factorization, and graph
// Laplacian construction.
//
// The package is intentionally minimal and dependency-free (stdlib only).
// Matrices are row-major dense float64; sizes in this project are tiny
// (tens of nodes), so asymptotics beyond O(n³) solves are irrelevant and
// clarity wins.
package linalg

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense row-major matrix of float64 values.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix returns a zero-valued rows×cols matrix.
// It panics if rows or cols is negative.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: invalid dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// FromRows builds a matrix from a slice of equal-length rows.
// It panics on ragged input.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			panic(fmt.Sprintf("linalg: ragged row %d: got %d values, want %d", i, len(r), cols))
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 {
	m.boundsCheck(i, j)
	return m.Data[i*m.Cols+j]
}

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) {
	m.boundsCheck(i, j)
	m.Data[i*m.Cols+j] = v
}

// Add adds v to the element at row i, column j.
func (m *Matrix) Add(i, j int, v float64) {
	m.boundsCheck(i, j)
	m.Data[i*m.Cols+j] += v
}

func (m *Matrix) boundsCheck(i, j int) {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("linalg: index (%d,%d) out of range for %dx%d matrix", i, j, m.Rows, m.Cols))
	}
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Row returns row i as a freshly allocated slice.
func (m *Matrix) Row(i int) []float64 {
	out := make([]float64, m.Cols)
	copy(out, m.Data[i*m.Cols:(i+1)*m.Cols])
	return out
}

// Transpose returns a new matrix that is the transpose of m.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns the matrix product m·b.
// It panics when the inner dimensions disagree.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: dimension mismatch %dx%d · %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.Data[i*m.Cols+k]
			if a == 0 {
				continue
			}
			for j := 0; j < b.Cols; j++ {
				out.Data[i*out.Cols+j] += a * b.Data[k*b.Cols+j]
			}
		}
	}
	return out
}

// MulVec returns the matrix-vector product m·x.
func (m *Matrix) MulVec(x []float64) []float64 {
	if m.Cols != len(x) {
		panic(fmt.Sprintf("linalg: dimension mismatch %dx%d · vec(%d)", m.Rows, m.Cols, len(x)))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		s := 0.0
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// Symmetric reports whether m is square and symmetric to within tol.
func (m *Matrix) Symmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// MaxAbs returns the largest absolute element value, or 0 for an empty matrix.
func (m *Matrix) MaxAbs() float64 {
	max := 0.0
	for _, v := range m.Data {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%8.4f", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
