package linalg

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSparseLaplacianMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(10)
		var edges []WeightedEdge
		for i := 1; i < n; i++ {
			edges = append(edges, WeightedEdge{U: i - 1, V: i, Weight: 1 + rng.Float64()})
		}
		for k := 0; k < n; k++ {
			u, v := rng.Intn(n), rng.Intn(n)
			edges = append(edges, WeightedEdge{U: u, V: v, Weight: rng.Float64()})
		}
		dense := Laplacian(n, edges)
		sparse := NewSparseLaplacian(n, edges)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		want := dense.MulVec(x)
		got := sparse.MulVec(x, nil)
		for i := range want {
			if !almostEq(want[i], got[i], 1e-9) {
				t.Fatalf("trial %d: sparse MulVec[%d] = %v, dense = %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestSparseLaplacianIgnoresSelfLoops(t *testing.T) {
	s := NewSparseLaplacian(2, []WeightedEdge{{U: 0, V: 0, Weight: 9}, {U: 0, V: 1, Weight: 1}})
	y := s.MulVec([]float64{1, 0}, nil)
	if y[0] != 1 || y[1] != -1 {
		t.Fatalf("self loop leaked into Laplacian: %v", y)
	}
}

func TestEffectiveResistanceCGMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(12)
		var edges []WeightedEdge
		for i := 1; i < n; i++ {
			edges = append(edges, WeightedEdge{U: i - 1, V: i, Weight: 1})
		}
		for k := 0; k < n; k++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				edges = append(edges, WeightedEdge{U: u, V: v, Weight: 1})
			}
		}
		s, tt := rng.Intn(n), rng.Intn(n)
		want, err := EffectiveResistance(n, edges, s, tt)
		if err != nil {
			t.Fatal(err)
		}
		got, err := EffectiveResistanceCG(n, edges, s, tt)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEq(got, want, 1e-7) {
			t.Fatalf("trial %d: CG %v, dense %v", trial, got, want)
		}
	}
}

func TestEffectiveResistanceCGKnownValues(t *testing.T) {
	// Series: 2 Ω.
	r, err := EffectiveResistanceCG(3, unitEdges([][2]int{{0, 1}, {1, 2}}), 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(r, 2, 1e-9) {
		t.Fatalf("series = %v, want 2", r)
	}
	// Parallel: 0.5 Ω.
	r, err = EffectiveResistanceCG(2, unitEdges([][2]int{{0, 1}, {0, 1}}), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(r, 0.5, 1e-9) {
		t.Fatalf("parallel = %v, want 0.5", r)
	}
	// Same node: 0.
	r, err = EffectiveResistanceCG(2, unitEdges([][2]int{{0, 1}}), 1, 1)
	if err != nil || r != 0 {
		t.Fatalf("self = %v, %v", r, err)
	}
}

func TestEffectiveResistanceCGErrors(t *testing.T) {
	if _, err := EffectiveResistanceCG(2, nil, 0, 5); err == nil {
		t.Fatal("out-of-range terminal accepted")
	}
	_, err := EffectiveResistanceCG(4, unitEdges([][2]int{{0, 1}, {2, 3}}), 0, 3)
	if !errors.Is(err, ErrDisconnected) {
		t.Fatalf("err = %v, want ErrDisconnected", err)
	}
	// Foreign components must not break the solve.
	r, err := EffectiveResistanceCG(4, unitEdges([][2]int{{0, 1}, {2, 3}}), 0, 1)
	if err != nil || !almostEq(r, 1, 1e-9) {
		t.Fatalf("R = %v, err = %v", r, err)
	}
}

func TestSolveCGValidation(t *testing.T) {
	s := NewSparseLaplacian(3, unitEdges([][2]int{{0, 1}, {1, 2}}))
	if _, err := s.SolveCG([]float64{1}, []bool{true, true, true}, CGOptions{}); err == nil {
		t.Fatal("short rhs accepted")
	}
	if _, err := s.SolveCG([]float64{1, 0, 0}, []bool{true}, CGOptions{}); err == nil {
		t.Fatal("short mask accepted")
	}
}

func TestSolveCGZeroRHS(t *testing.T) {
	s := NewSparseLaplacian(3, unitEdges([][2]int{{0, 1}, {1, 2}}))
	x, err := s.SolveCG(make([]float64, 3), []bool{true, true, false}, CGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range x {
		if v != 0 {
			t.Fatal("zero rhs must give zero solution")
		}
	}
}

func TestCGLargeGrid(t *testing.T) {
	// A 30×30 grid (900 nodes) — far beyond what the dense path is meant
	// for; CG must converge and match a known series/parallel sanity bound.
	const side = 30
	n := side * side
	var edges []WeightedEdge
	id := func(r, c int) int { return r*side + c }
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			if c+1 < side {
				edges = append(edges, WeightedEdge{U: id(r, c), V: id(r, c+1), Weight: 1})
			}
			if r+1 < side {
				edges = append(edges, WeightedEdge{U: id(r, c), V: id(r+1, c), Weight: 1})
			}
		}
	}
	r, err := EffectiveResistanceCG(n, edges, id(0, 0), id(side-1, side-1))
	if err != nil {
		t.Fatal(err)
	}
	// Grid resistance between opposite corners is far below the 2·(side−1)
	// single-path bound and above the parallel-capacity lower bound.
	if r <= 0 || r >= float64(2*(side-1)) {
		t.Fatalf("grid corner resistance = %v out of sane range", r)
	}
}

// Property: CG and the dense solver agree on random connected graphs.
func TestQuickCGDenseAgreement(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(15)
		var edges []WeightedEdge
		for i := 1; i < n; i++ {
			edges = append(edges, WeightedEdge{U: i - 1, V: i, Weight: 0.5 + rng.Float64()})
		}
		extra := rng.Intn(2 * n)
		for k := 0; k < extra; k++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				edges = append(edges, WeightedEdge{U: u, V: v, Weight: 0.5 + rng.Float64()})
			}
		}
		s, tt := rng.Intn(n), rng.Intn(n)
		a, err1 := EffectiveResistance(n, edges, s, tt)
		b, err2 := EffectiveResistanceCG(n, edges, s, tt)
		if err1 != nil || err2 != nil {
			return err1 != nil && err2 != nil // both fail together or not at all
		}
		return almostEq(a, b, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
