package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewMatrixZeroed(t *testing.T) {
	m := NewMatrix(3, 4)
	if m.Rows != 3 || m.Cols != 4 {
		t.Fatalf("dims = %dx%d, want 3x4", m.Rows, m.Cols)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("At(%d,%d) = %v, want 0", i, j, m.At(i, j))
			}
		}
	}
}

func TestNewMatrixPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative dimensions")
		}
	}()
	NewMatrix(-1, 2)
}

func TestSetAtRoundTrip(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 42.5)
	if got := m.At(1, 2); got != 42.5 {
		t.Fatalf("At(1,2) = %v, want 42.5", got)
	}
	m.Add(1, 2, 0.5)
	if got := m.At(1, 2); got != 43 {
		t.Fatalf("after Add, At(1,2) = %v, want 43", got)
	}
}

func TestBoundsCheckPanics(t *testing.T) {
	m := NewMatrix(2, 2)
	cases := [][2]int{{-1, 0}, {0, -1}, {2, 0}, {0, 2}}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for index (%d,%d)", c[0], c[1])
				}
			}()
			m.At(c[0], c[1])
		}()
	}
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Fatalf("FromRows produced wrong layout: %v", m.Data)
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for ragged rows")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestFromRowsEmpty(t *testing.T) {
	m := FromRows(nil)
	if m.Rows != 0 || m.Cols != 0 {
		t.Fatalf("empty FromRows got %dx%d", m.Rows, m.Cols)
	}
}

func TestIdentityMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})
	i3 := Identity(3)
	p := a.Mul(i3)
	for k := range a.Data {
		if p.Data[k] != a.Data[k] {
			t.Fatalf("A·I != A at flat index %d: %v vs %v", k, p.Data[k], a.Data[k])
		}
	}
}

func TestMulKnown(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	p := a.Mul(b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	for k := range want.Data {
		if p.Data[k] != want.Data[k] {
			t.Fatalf("A·B = %v, want %v", p.Data, want.Data)
		}
	}
}

func TestMulDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on inner-dimension mismatch")
		}
	}()
	NewMatrix(2, 3).Mul(NewMatrix(2, 3))
}

func TestMulVec(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	got := a.MulVec([]float64{1, 1})
	if got[0] != 3 || got[1] != 7 {
		t.Fatalf("MulVec = %v, want [3 7]", got)
	}
}

func TestTranspose(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.Transpose()
	if at.Rows != 3 || at.Cols != 2 {
		t.Fatalf("transpose dims = %dx%d, want 3x2", at.Rows, at.Cols)
	}
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			if a.At(i, j) != at.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	c := a.Clone()
	c.Set(0, 0, 99)
	if a.At(0, 0) != 1 {
		t.Fatal("Clone shares backing storage with original")
	}
}

func TestRowCopies(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	r := a.Row(0)
	r[0] = 99
	if a.At(0, 0) != 1 {
		t.Fatal("Row returned a view, want a copy")
	}
}

func TestSymmetric(t *testing.T) {
	s := FromRows([][]float64{{1, 2}, {2, 1}})
	if !s.Symmetric(0) {
		t.Fatal("symmetric matrix reported asymmetric")
	}
	ns := FromRows([][]float64{{1, 2}, {3, 1}})
	if ns.Symmetric(0.5) {
		t.Fatal("asymmetric matrix reported symmetric")
	}
	if !ns.Symmetric(2) {
		t.Fatal("tolerance not honored")
	}
	if NewMatrix(2, 3).Symmetric(1) {
		t.Fatal("non-square matrix cannot be symmetric")
	}
}

func TestMaxAbs(t *testing.T) {
	a := FromRows([][]float64{{-7, 2}, {3, 4}})
	if a.MaxAbs() != 7 {
		t.Fatalf("MaxAbs = %v, want 7", a.MaxAbs())
	}
	if NewMatrix(0, 0).MaxAbs() != 0 {
		t.Fatal("MaxAbs of empty matrix should be 0")
	}
}

func TestStringContainsValues(t *testing.T) {
	a := FromRows([][]float64{{1.5}})
	if s := a.String(); len(s) == 0 {
		t.Fatal("String() returned empty")
	}
}

// Property: (AB)ᵀ == BᵀAᵀ for random small matrices.
func TestQuickTransposeProduct(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		m := 1 + rng.Intn(6)
		k := 1 + rng.Intn(6)
		a := randomMatrix(rng, n, m)
		b := randomMatrix(rng, m, k)
		lhs := a.Mul(b).Transpose()
		rhs := b.Transpose().Mul(a.Transpose())
		for i := range lhs.Data {
			if !almostEq(lhs.Data[i], rhs.Data[i], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func randomMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}
