package linalg

import (
	"errors"
	"fmt"
)

// WeightedEdge is an undirected edge with a conductance (1/resistance)
// weight. Nodes are indices in [0, n).
type WeightedEdge struct {
	U, V   int
	Weight float64
}

// Laplacian builds the n×n graph Laplacian L = D − A for the given
// undirected weighted edges. Parallel edges accumulate (their conductances
// add, exactly like parallel resistors). Self loops are ignored: they do
// not affect effective resistance.
func Laplacian(n int, edges []WeightedEdge) *Matrix {
	l := NewMatrix(n, n)
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		l.Add(e.U, e.U, e.Weight)
		l.Add(e.V, e.V, e.Weight)
		l.Add(e.U, e.V, -e.Weight)
		l.Add(e.V, e.U, -e.Weight)
	}
	return l
}

// ErrDisconnected is returned by EffectiveResistance when the two terminal
// nodes are not connected in the given edge set.
var ErrDisconnected = errors.New("linalg: terminals are not connected")

// EffectiveResistance computes the electrical effective resistance between
// nodes s and t in the resistor network described by edges (weights are
// conductances; a unit resistor has weight 1). n is the number of nodes.
//
// Method: inject 1 A at s, extract 1 A at t, ground node t (delete its row
// and column from the Laplacian), solve the reduced system for the node
// potentials, and return V(s) − V(t) = V(s).
//
// The reduced ("grounded") Laplacian of a connected component containing t
// is symmetric positive definite, so Cholesky is used; if the component
// containing s does not contain t the system is singular and
// ErrDisconnected is returned.
func EffectiveResistance(n int, edges []WeightedEdge, s, t int) (float64, error) {
	if s < 0 || s >= n || t < 0 || t >= n {
		return 0, fmt.Errorf("linalg: terminal out of range: s=%d t=%d n=%d", s, t, n)
	}
	if s == t {
		return 0, nil
	}
	lap := Laplacian(n, edges)

	// Keep only the nodes in the connected component of s and t — nodes in
	// other components make the grounded Laplacian singular even though the
	// resistance between s and t is well defined.
	comp := componentOf(n, edges, s)
	if !comp[t] {
		return 0, ErrDisconnected
	}
	idx := make([]int, 0, n) // old index -> position among kept rows
	pos := make([]int, n)
	for i := 0; i < n; i++ {
		pos[i] = -1
	}
	for i := 0; i < n; i++ {
		if comp[i] && i != t { // ground t: drop its row/col
			pos[i] = len(idx)
			idx = append(idx, i)
		}
	}
	m := len(idx)
	red := NewMatrix(m, m)
	for a := 0; a < m; a++ {
		for b := 0; b < m; b++ {
			red.Set(a, b, lap.At(idx[a], idx[b]))
		}
	}
	rhs := make([]float64, m)
	rhs[pos[s]] = 1 // inject 1 A at s (the matching −1 sits at grounded t)

	l, err := Cholesky(red)
	if err != nil {
		// Fall back to pivoted Gaussian elimination for borderline
		// conditioning; if that also fails the component is degenerate.
		x, gerr := Solve(red, rhs)
		if gerr != nil {
			return 0, gerr
		}
		return x[pos[s]], nil
	}
	x, err := SolveCholesky(l, rhs)
	if err != nil {
		return 0, err
	}
	return x[pos[s]], nil
}

// componentOf returns a membership mask of the connected component of
// start under the given edges.
func componentOf(n int, edges []WeightedEdge, start int) []bool {
	adj := make([][]int, n)
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		adj[e.U] = append(adj[e.U], e.V)
		adj[e.V] = append(adj[e.V], e.U)
	}
	seen := make([]bool, n)
	queue := []int{start}
	seen[start] = true
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range adj[u] {
			if !seen[v] {
				seen[v] = true
				queue = append(queue, v)
			}
		}
	}
	return seen
}
