package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveKnown(t *testing.T) {
	a := FromRows([][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	})
	b := []float64{8, -11, -3}
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if !almostEq(x[i], want[i], 1e-10) {
			t.Fatalf("x = %v, want %v", x, want)
		}
	}
}

func TestSolveIdentity(t *testing.T) {
	b := []float64{3, -4, 5}
	x, err := Solve(Identity(3), b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range b {
		if x[i] != b[i] {
			t.Fatalf("I·x = b gives x = %v, want %v", x, b)
		}
	}
}

func TestSolveSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Solve(a, []float64{1, 2}); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestSolveNonSquare(t *testing.T) {
	if _, err := Solve(NewMatrix(2, 3), []float64{1, 2}); err == nil {
		t.Fatal("expected error for non-square matrix")
	}
}

func TestSolveDimMismatch(t *testing.T) {
	if _, err := Solve(Identity(3), []float64{1, 2}); err == nil {
		t.Fatal("expected error for rhs length mismatch")
	}
}

func TestSolveNeedsPivoting(t *testing.T) {
	// Zero on the initial pivot position forces a row swap.
	a := FromRows([][]float64{
		{0, 1},
		{1, 0},
	})
	x, err := Solve(a, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 3, 1e-12) || !almostEq(x[1], 2, 1e-12) {
		t.Fatalf("x = %v, want [3 2]", x)
	}
}

func TestSolveDoesNotMutateInputs(t *testing.T) {
	a := FromRows([][]float64{{4, 1}, {1, 3}})
	b := []float64{1, 2}
	aCopy := a.Clone()
	bCopy := []float64{1, 2}
	if _, err := Solve(a, b); err != nil {
		t.Fatal(err)
	}
	for i := range a.Data {
		if a.Data[i] != aCopy.Data[i] {
			t.Fatal("Solve mutated the input matrix")
		}
	}
	for i := range b {
		if b[i] != bCopy[i] {
			t.Fatal("Solve mutated the rhs vector")
		}
	}
}

func TestCholeskyKnown(t *testing.T) {
	a := FromRows([][]float64{
		{4, 12, -16},
		{12, 37, -43},
		{-16, -43, 98},
	})
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	want := FromRows([][]float64{
		{2, 0, 0},
		{6, 1, 0},
		{-8, 5, 3},
	})
	for i := range want.Data {
		if !almostEq(l.Data[i], want.Data[i], 1e-10) {
			t.Fatalf("L = \n%v\nwant\n%v", l, want)
		}
	}
}

func TestCholeskyNotPD(t *testing.T) {
	a := FromRows([][]float64{{0, 0}, {0, 1}})
	if _, err := Cholesky(a); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestCholeskyNonSquare(t *testing.T) {
	if _, err := Cholesky(NewMatrix(2, 3)); err == nil {
		t.Fatal("expected error for non-square matrix")
	}
}

func TestSolveCholeskyMatchesSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(8)
		a := randomSPD(rng, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		l, err := Cholesky(a)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		x1, err := SolveCholesky(l, b)
		if err != nil {
			t.Fatal(err)
		}
		x2, err := Solve(a, b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range x1 {
			if !almostEq(x1[i], x2[i], 1e-7) {
				t.Fatalf("trial %d: cholesky and GE disagree: %v vs %v", trial, x1, x2)
			}
		}
	}
}

func TestSolveCholeskyDimMismatch(t *testing.T) {
	l, err := Cholesky(Identity(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SolveCholesky(l, []float64{1}); err == nil {
		t.Fatal("expected dimension mismatch error")
	}
}

// Property: for random well-conditioned systems, A·Solve(A,b) ≈ b.
func TestQuickSolveResidual(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		a := randomSPD(rng, n) // SPD ⇒ well conditioned enough for this size
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := Solve(a, b)
		if err != nil {
			return false
		}
		r := a.MulVec(x)
		for i := range b {
			if math.Abs(r[i]-b[i]) > 1e-6*(1+math.Abs(b[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// randomSPD returns MᵀM + n·I, which is symmetric positive definite.
func randomSPD(rng *rand.Rand, n int) *Matrix {
	m := randomMatrix(rng, n, n)
	spd := m.Transpose().Mul(m)
	for i := 0; i < n; i++ {
		spd.Add(i, i, float64(n))
	}
	return spd
}
