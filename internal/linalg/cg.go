package linalg

import (
	"fmt"
	"math"
)

// SparseSymmetric is a symmetric matrix in compressed adjacency form,
// specialized for graph Laplacians: per-row index/value lists plus the
// diagonal. It exists so effective-resistance computation scales past the
// dense O(n³) solves — on large networks the conjugate-gradient path
// only touches the O(E) nonzeros.
type SparseSymmetric struct {
	n    int
	diag []float64
	idx  [][]int32
	val  [][]float64
}

// NewSparseLaplacian builds the Laplacian of the weighted graph in sparse
// form. Parallel edges accumulate; self loops are ignored.
func NewSparseLaplacian(n int, edges []WeightedEdge) *SparseSymmetric {
	s := &SparseSymmetric{
		n:    n,
		diag: make([]float64, n),
		idx:  make([][]int32, n),
		val:  make([][]float64, n),
	}
	// Accumulate off-diagonals in maps first (edges may repeat).
	acc := make([]map[int32]float64, n)
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		s.diag[e.U] += e.Weight
		s.diag[e.V] += e.Weight
		for _, p := range [2][2]int{{e.U, e.V}, {e.V, e.U}} {
			if acc[p[0]] == nil {
				acc[p[0]] = make(map[int32]float64)
			}
			acc[p[0]][int32(p[1])] -= e.Weight
		}
	}
	for i := 0; i < n; i++ {
		for j, w := range acc[i] {
			s.idx[i] = append(s.idx[i], j)
			s.val[i] = append(s.val[i], w)
		}
	}
	return s
}

// N returns the dimension.
func (s *SparseSymmetric) N() int { return s.n }

// MulVec computes y = S·x into the provided slice (allocated when nil).
func (s *SparseSymmetric) MulVec(x, y []float64) []float64 {
	if y == nil {
		y = make([]float64, s.n)
	}
	for i := 0; i < s.n; i++ {
		acc := s.diag[i] * x[i]
		idx, val := s.idx[i], s.val[i]
		for k, j := range idx {
			acc += val[k] * x[j]
		}
		y[i] = acc
	}
	return y
}

// CGOptions tunes the conjugate-gradient solve.
type CGOptions struct {
	// Tol is the relative residual target (default 1e-10).
	Tol float64
	// MaxIter bounds iterations (default 4·n).
	MaxIter int
}

// SolveCG solves S·x = b for a symmetric positive (semi-)definite sparse
// matrix with Jacobi-preconditioned conjugate gradients. For a grounded
// Laplacian (one node's row/column removed — here encoded by passing
// mask[v]=false for the grounded node) the system is SPD and CG converges.
//
// mask selects the active subspace: entries with mask[i]==false are pinned
// to zero (their b entries are ignored). This avoids materializing the
// reduced matrix.
func (s *SparseSymmetric) SolveCG(b []float64, mask []bool, opts CGOptions) ([]float64, error) {
	if len(b) != s.n || len(mask) != s.n {
		return nil, fmt.Errorf("linalg: SolveCG dimension mismatch: n=%d b=%d mask=%d", s.n, len(b), len(mask))
	}
	if opts.Tol <= 0 {
		opts.Tol = 1e-10
	}
	if opts.MaxIter <= 0 {
		opts.MaxIter = 4 * s.n
	}
	// Jacobi preconditioner over the active subspace.
	minv := make([]float64, s.n)
	for i := 0; i < s.n; i++ {
		if mask[i] && s.diag[i] > 0 {
			minv[i] = 1 / s.diag[i]
		}
	}
	project := func(v []float64) {
		for i := range v {
			if !mask[i] {
				v[i] = 0
			}
		}
	}
	x := make([]float64, s.n)
	r := make([]float64, s.n)
	copy(r, b)
	project(r)
	z := make([]float64, s.n)
	for i := range z {
		z[i] = minv[i] * r[i]
	}
	p := make([]float64, s.n)
	copy(p, z)
	ap := make([]float64, s.n)

	dot := func(a, b []float64) float64 {
		t := 0.0
		for i := range a {
			t += a[i] * b[i]
		}
		return t
	}
	rz := dot(r, z)
	bnorm := math.Sqrt(dot(r, r))
	if bnorm == 0 {
		return x, nil
	}
	for iter := 0; iter < opts.MaxIter; iter++ {
		s.MulVec(p, ap)
		project(ap)
		pap := dot(p, ap)
		if pap <= 0 {
			return nil, fmt.Errorf("linalg: CG broke down (pᵀAp = %v) — matrix not SPD on the active subspace", pap)
		}
		alpha := rz / pap
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
		}
		if math.Sqrt(dot(r, r)) <= opts.Tol*bnorm {
			return x, nil
		}
		for i := range z {
			z[i] = minv[i] * r[i]
		}
		rzNew := dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	return nil, fmt.Errorf("linalg: CG did not converge in %d iterations", opts.MaxIter)
}

// EffectiveResistanceCG computes the effective resistance between s and t
// like EffectiveResistance, but with the sparse CG solver — the path used
// for large networks where dense Cholesky would be cubic.
func EffectiveResistanceCG(n int, edges []WeightedEdge, s, t int) (float64, error) {
	if s < 0 || s >= n || t < 0 || t >= n {
		return 0, fmt.Errorf("linalg: terminal out of range: s=%d t=%d n=%d", s, t, n)
	}
	if s == t {
		return 0, nil
	}
	comp := componentOf(n, edges, s)
	if !comp[t] {
		return 0, ErrDisconnected
	}
	lap := NewSparseLaplacian(n, edges)
	mask := make([]bool, n)
	for i := 0; i < n; i++ {
		mask[i] = comp[i] && i != t // ground t, drop foreign components
	}
	b := make([]float64, n)
	b[s] = 1
	x, err := lap.SolveCG(b, mask, CGOptions{})
	if err != nil {
		return 0, err
	}
	return x[s], nil
}
