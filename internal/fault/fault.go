// Package fault models deterministic failure scenarios on the paper's
// switch-based networks. Up*/down* routing exists precisely because "some
// nodes or links may fail" in a NOW (Autonet's design premise), yet a
// scheduler that was only ever exercised on healthy topologies panics or
// livelocks the first time a cable is pulled. This package provides the
// static half of the fault story: a Plan is a seeded, reproducible list of
// failure events (permanent link failures, whole-switch failures, and
// transient flaky links with repair times); Apply projects a healthy
// topology.Network into its degraded counterpart, reporting exactly which
// switches and links were lost and how switch IDs were compacted.
//
// The dynamic half — links dying mid-simulation with in-flight flits —
// lives in simnet (Config.LinkEvents); core.System.Degrade glues the two
// together and reschedules mappings onto the degraded system.
//
// Everything here returns explicit errors. Disconnecting the network is a
// legal thing for a fault plan to do; the caller learns which switches
// became unreachable instead of getting a panic three packages later.
package fault

import (
	"fmt"
	"math/rand"
	"sort"

	"commsched/internal/topology"
)

// Kind classifies a failure event.
type Kind int

const (
	// LinkDown is a permanent failure of one inter-switch link.
	LinkDown Kind = iota
	// SwitchDown is a permanent failure of a whole switching element:
	// every link at the switch dies and its attached workstations drop
	// out of the system.
	SwitchDown
	// FlakyLink is a transient link failure: the link dies at cycle At
	// and returns at cycle RepairAt. With RepairAt == 0 it never heals
	// and is equivalent to LinkDown.
	FlakyLink
)

// String names the kind for error messages and reports.
func (k Kind) String() string {
	switch k {
	case LinkDown:
		return "link-down"
	case SwitchDown:
		return "switch-down"
	case FlakyLink:
		return "flaky-link"
	default:
		return fmt.Sprintf("fault.Kind(%d)", int(k))
	}
}

// Event is one failure in a plan. The zero value is not a valid event;
// build them explicitly or through the Random* generators.
type Event struct {
	// Kind selects the failure type.
	Kind Kind
	// Link is the failing link (LinkDown and FlakyLink).
	Link topology.Link
	// Switch is the failing switch (SwitchDown).
	Switch int
	// At is the simulation cycle the failure strikes; 0 means the fault
	// is already present when the run (or the static analysis) starts.
	At int64
	// RepairAt is the cycle a FlakyLink heals (0 = never).
	RepairAt int64
}

// Permanent reports whether the event holds in the static (post-repair)
// view of the network: everything except a flaky link that heals.
func (e Event) Permanent() bool {
	return e.Kind != FlakyLink || e.RepairAt == 0
}

// Plan is a reproducible failure scenario.
type Plan struct {
	// Name labels the scenario in reports.
	Name string
	// Events lists the failures, in no particular order.
	Events []Event
}

// Links returns the distinct links failed by permanent link events.
func (p Plan) Links() []topology.Link {
	seen := map[topology.Link]bool{}
	var out []topology.Link
	for _, e := range p.Events {
		if (e.Kind == LinkDown || e.Kind == FlakyLink) && e.Permanent() && !seen[e.Link] {
			seen[e.Link] = true
			out = append(out, e.Link)
		}
	}
	return out
}

// Degraded is the static post-failure view of a network: the surviving
// switches, compacted into a fresh contiguous ID space so that routing,
// distance tables, and searchers operate on a plain connected
// topology.Network.
type Degraded struct {
	// Net is the degraded network over the surviving switches. When no
	// switch died, its switch IDs coincide with the original ones.
	Net *topology.Network
	// DeadSwitches lists failed switches by original ID, ascending.
	DeadSwitches []int
	// RemovedLinks lists the permanently removed links by original switch
	// IDs (explicit link failures plus all links at dead switches).
	RemovedLinks []topology.Link
	// OldToNew maps original switch IDs to degraded IDs (-1 = dead).
	OldToNew []int
	// NewToOld maps degraded switch IDs back to original IDs.
	NewToOld []int
}

// Identity reports whether switch IDs are unchanged (no switch died), so
// partitions and tables on the original network line up positionally with
// the degraded one.
func (d *Degraded) Identity() bool { return len(d.DeadSwitches) == 0 }

// Apply projects the permanent events of a plan onto a network. It
// validates every event against the topology and returns a descriptive
// error — never a panic — when the plan disconnects the surviving
// switches, kills every switch, or references links/switches that do not
// exist.
func Apply(net *topology.Network, plan Plan) (*Degraded, error) {
	n := net.Switches()
	dead := make([]bool, n)
	removed := map[topology.Link]bool{}
	for i, e := range plan.Events {
		switch e.Kind {
		case LinkDown, FlakyLink:
			l := topology.NormalizeLink(e.Link.A, e.Link.B)
			if l.A < 0 || l.B >= n || !net.HasLink(l.A, l.B) {
				return nil, fmt.Errorf("fault: event %d (%s): link %d-%d does not exist in %s",
					i, e.Kind, e.Link.A, e.Link.B, net.Name())
			}
			if e.Permanent() {
				removed[l] = true
			}
		case SwitchDown:
			if e.Switch < 0 || e.Switch >= n {
				return nil, fmt.Errorf("fault: event %d (%s): switch %d out of range [0,%d)",
					i, e.Kind, e.Switch, n)
			}
			dead[e.Switch] = true
		default:
			return nil, fmt.Errorf("fault: event %d has unknown kind %d", i, int(e.Kind))
		}
		if e.RepairAt != 0 && e.RepairAt <= e.At {
			return nil, fmt.Errorf("fault: event %d (%s): repair cycle %d not after failure cycle %d",
				i, e.Kind, e.RepairAt, e.At)
		}
	}
	// Links at dead switches die with the switch.
	for _, l := range net.Links() {
		if dead[l.A] || dead[l.B] {
			removed[l] = true
		}
	}

	d := &Degraded{OldToNew: make([]int, n)}
	for s := 0; s < n; s++ {
		if dead[s] {
			d.OldToNew[s] = -1
			d.DeadSwitches = append(d.DeadSwitches, s)
			continue
		}
		d.OldToNew[s] = len(d.NewToOld)
		d.NewToOld = append(d.NewToOld, s)
	}
	if len(d.NewToOld) == 0 {
		return nil, fmt.Errorf("fault: plan %q kills every switch of %s", plan.Name, net.Name())
	}
	for l := range removed {
		d.RemovedLinks = append(d.RemovedLinks, l)
	}
	sort.Slice(d.RemovedLinks, func(i, j int) bool {
		if d.RemovedLinks[i].A != d.RemovedLinks[j].A {
			return d.RemovedLinks[i].A < d.RemovedLinks[j].A
		}
		return d.RemovedLinks[i].B < d.RemovedLinks[j].B
	})

	// Surviving links, remapped into the compacted ID space.
	var links []topology.Link
	for _, l := range net.Links() {
		if removed[l] {
			continue
		}
		links = append(links, topology.NormalizeLink(d.OldToNew[l.A], d.OldToNew[l.B]))
	}
	name := net.Name() + "/degraded"
	if plan.Name != "" {
		name = net.Name() + "/" + plan.Name
	}
	deg, err := topology.New(name, len(d.NewToOld), links, topology.Config{
		Ports:          net.Ports(),
		HostsPerSwitch: net.HostsPerSwitch(),
	})
	if err != nil {
		return nil, fmt.Errorf("fault: degraded topology invalid: %w", err)
	}
	if unreachable := unreachableFrom0(deg); len(unreachable) > 0 {
		orig := make([]int, len(unreachable))
		for i, s := range unreachable {
			orig[i] = d.NewToOld[s]
		}
		return nil, fmt.Errorf("fault: plan %q partitions %s: switches %v unreachable from switch %d",
			plan.Name, net.Name(), orig, d.NewToOld[0])
	}
	d.Net = deg
	return d, nil
}

// unreachableFrom0 lists switches a BFS from switch 0 cannot reach.
func unreachableFrom0(net *topology.Network) []int {
	var out []int
	for s, dist := range net.BFSDistances(0) {
		if dist < 0 {
			out = append(out, s)
		}
	}
	return out
}

// PlanSpec parameterizes random plan generation.
type PlanSpec struct {
	// LinkFailures is the number of permanent link failures to inject.
	LinkFailures int
	// SwitchFailures is the number of whole-switch failures to inject.
	SwitchFailures int
	// At stamps every generated event with this failure cycle.
	At int64
}

// RandomPlan draws a connectivity-preserving failure plan: the requested
// number of switch and link failures, sampled with the given rng, such
// that the surviving switches stay connected. It errors when the topology
// cannot absorb that many failures (e.g. every remaining link is a
// bridge). Generation is deterministic for a given rng state.
func RandomPlan(net *topology.Network, spec PlanSpec, rng *rand.Rand) (Plan, error) {
	if spec.LinkFailures < 0 || spec.SwitchFailures < 0 {
		return Plan{}, fmt.Errorf("fault: negative failure counts %+v", spec)
	}
	plan := Plan{Name: fmt.Sprintf("rand-l%d-s%d", spec.LinkFailures, spec.SwitchFailures)}

	// Switch failures first: each removes a switch plus its links.
	deadCount := 0
	for deadCount < spec.SwitchFailures {
		perm := rng.Perm(net.Switches())
		picked := false
		for _, s := range perm {
			if planHasSwitch(plan, s) {
				continue
			}
			cand := plan
			cand.Events = append(append([]Event{}, plan.Events...),
				Event{Kind: SwitchDown, Switch: s, At: spec.At})
			if _, err := Apply(net, cand); err == nil {
				plan = cand
				deadCount++
				picked = true
				break
			}
		}
		if !picked {
			return Plan{}, fmt.Errorf("fault: cannot fail %d switches of %s without partitioning it (managed %d)",
				spec.SwitchFailures, net.Name(), deadCount)
		}
	}

	// Link failures on the remaining topology.
	linkCount := 0
	for linkCount < spec.LinkFailures {
		links := net.Links()
		order := rng.Perm(len(links))
		picked := false
		for _, li := range order {
			l := links[li]
			if planHasLink(plan, l) || planHasSwitch(plan, l.A) || planHasSwitch(plan, l.B) {
				continue
			}
			cand := plan
			cand.Events = append(append([]Event{}, plan.Events...),
				Event{Kind: LinkDown, Link: l, At: spec.At})
			if _, err := Apply(net, cand); err == nil {
				plan = cand
				linkCount++
				picked = true
				break
			}
		}
		if !picked {
			return Plan{}, fmt.Errorf("fault: cannot fail %d links of %s without partitioning it (managed %d)",
				spec.LinkFailures, net.Name(), linkCount)
		}
	}
	return plan, nil
}

func planHasLink(p Plan, l topology.Link) bool {
	c := topology.NormalizeLink(l.A, l.B)
	for _, e := range p.Events {
		if (e.Kind == LinkDown || e.Kind == FlakyLink) && topology.NormalizeLink(e.Link.A, e.Link.B) == c {
			return true
		}
	}
	return false
}

func planHasSwitch(p Plan, s int) bool {
	for _, e := range p.Events {
		if e.Kind == SwitchDown && e.Switch == s {
			return true
		}
	}
	return false
}
