package fault

import (
	"math/rand"
	"strings"
	"testing"

	"commsched/internal/topology"
)

// ring builds a ring of n switches (2-edge-connected, so any single link
// can fail without partitioning).
func ring(t *testing.T, n int) *topology.Network {
	t.Helper()
	links := make([]topology.Link, n)
	for i := 0; i < n; i++ {
		links[i] = topology.NormalizeLink(i, (i+1)%n)
	}
	net, err := topology.New("ring", n, links, topology.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// path builds a path graph: every link is a bridge.
func path(t *testing.T, n int) *topology.Network {
	t.Helper()
	links := make([]topology.Link, n-1)
	for i := 0; i < n-1; i++ {
		links[i] = topology.Link{A: i, B: i + 1}
	}
	net, err := topology.New("path", n, links, topology.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestApplyLinkFailure(t *testing.T) {
	net := ring(t, 6)
	d, err := Apply(net, Plan{Name: "one-link", Events: []Event{
		{Kind: LinkDown, Link: topology.Link{A: 0, B: 1}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Identity() {
		t.Fatal("link failure must not renumber switches")
	}
	if d.Net.Switches() != 6 || d.Net.NumLinks() != 5 {
		t.Fatalf("degraded net has %d switches / %d links", d.Net.Switches(), d.Net.NumLinks())
	}
	if d.Net.HasLink(0, 1) {
		t.Fatal("failed link survived")
	}
	if len(d.RemovedLinks) != 1 || d.RemovedLinks[0] != (topology.Link{A: 0, B: 1}) {
		t.Fatalf("RemovedLinks = %v", d.RemovedLinks)
	}
	if !d.Net.Connected() {
		t.Fatal("degraded ring must stay connected")
	}
}

func TestApplySwitchFailureCompactsIDs(t *testing.T) {
	net := ring(t, 6)
	d, err := Apply(net, Plan{Events: []Event{{Kind: SwitchDown, Switch: 2}}})
	if err != nil {
		t.Fatal(err)
	}
	if d.Identity() {
		t.Fatal("switch death must be reported as non-identity")
	}
	if got := d.DeadSwitches; len(got) != 1 || got[0] != 2 {
		t.Fatalf("DeadSwitches = %v", got)
	}
	if d.Net.Switches() != 5 {
		t.Fatalf("degraded switches = %d, want 5", d.Net.Switches())
	}
	// Old IDs 0,1,3,4,5 → new 0,1,2,3,4.
	wantOldToNew := []int{0, 1, -1, 2, 3, 4}
	for s, want := range wantOldToNew {
		if d.OldToNew[s] != want {
			t.Fatalf("OldToNew = %v, want %v", d.OldToNew, wantOldToNew)
		}
	}
	for newID, oldID := range d.NewToOld {
		if d.OldToNew[oldID] != newID {
			t.Fatalf("NewToOld inconsistent with OldToNew at %d", newID)
		}
	}
	// Ring minus one switch is a path over the survivors: links at
	// switch 2 (1-2, 2-3) are gone.
	if d.Net.HasLink(d.OldToNew[1], d.OldToNew[3]) {
		t.Fatal("phantom link through the dead switch")
	}
	if !d.Net.Connected() {
		t.Fatal("survivors must be connected")
	}
	if len(d.RemovedLinks) != 2 {
		t.Fatalf("RemovedLinks = %v, want the 2 links at switch 2", d.RemovedLinks)
	}
}

func TestApplyDisconnectionIsDescriptiveError(t *testing.T) {
	net := path(t, 5)
	_, err := Apply(net, Plan{Name: "cut-middle", Events: []Event{
		{Kind: LinkDown, Link: topology.Link{A: 2, B: 3}},
	}})
	if err == nil {
		t.Fatal("partitioning plan accepted")
	}
	if !strings.Contains(err.Error(), "unreachable") || !strings.Contains(err.Error(), "cut-middle") {
		t.Fatalf("error not descriptive: %v", err)
	}
}

func TestApplyValidation(t *testing.T) {
	net := ring(t, 4)
	cases := []struct {
		name string
		plan Plan
		want string
	}{
		{"missing link", Plan{Events: []Event{{Kind: LinkDown, Link: topology.Link{A: 0, B: 2}}}}, "does not exist"},
		{"switch out of range", Plan{Events: []Event{{Kind: SwitchDown, Switch: 9}}}, "out of range"},
		{"negative switch", Plan{Events: []Event{{Kind: SwitchDown, Switch: -1}}}, "out of range"},
		{"bad repair order", Plan{Events: []Event{{Kind: FlakyLink, Link: topology.Link{A: 0, B: 1}, At: 10, RepairAt: 5}}}, "repair"},
		{"unknown kind", Plan{Events: []Event{{Kind: Kind(42)}}}, "unknown kind"},
	}
	for _, tc := range cases {
		if _, err := Apply(net, tc.plan); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestApplyAllSwitchesDead(t *testing.T) {
	net := ring(t, 3)
	_, err := Apply(net, Plan{Name: "apocalypse", Events: []Event{
		{Kind: SwitchDown, Switch: 0},
		{Kind: SwitchDown, Switch: 1},
		{Kind: SwitchDown, Switch: 2},
	}})
	if err == nil || !strings.Contains(err.Error(), "every switch") {
		t.Fatalf("err = %v", err)
	}
}

func TestFlakyLinkWithRepairIsTransient(t *testing.T) {
	net := ring(t, 4)
	d, err := Apply(net, Plan{Events: []Event{
		{Kind: FlakyLink, Link: topology.Link{A: 0, B: 1}, At: 100, RepairAt: 500},
	}})
	if err != nil {
		t.Fatal(err)
	}
	// The static view is post-repair: the link survives.
	if !d.Net.HasLink(0, 1) {
		t.Fatal("healed flaky link removed from static view")
	}
	// Without a repair time it is permanent.
	d2, err := Apply(net, Plan{Events: []Event{
		{Kind: FlakyLink, Link: topology.Link{A: 0, B: 1}, At: 100},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if d2.Net.HasLink(0, 1) {
		t.Fatal("unrepaired flaky link survived the static view")
	}
}

func TestPlanLinks(t *testing.T) {
	p := Plan{Events: []Event{
		{Kind: LinkDown, Link: topology.Link{A: 0, B: 1}},
		{Kind: LinkDown, Link: topology.Link{A: 0, B: 1}},                      // duplicate
		{Kind: FlakyLink, Link: topology.Link{A: 1, B: 2}, At: 1, RepairAt: 2}, // heals
		{Kind: SwitchDown, Switch: 3},
	}}
	if got := p.Links(); len(got) != 1 || got[0] != (topology.Link{A: 0, B: 1}) {
		t.Fatalf("Links() = %v", got)
	}
}

func TestRandomPlanDeterministicAndConnected(t *testing.T) {
	net := ring(t, 8)
	p1, err := RandomPlan(net, PlanSpec{LinkFailures: 1}, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := RandomPlan(net, PlanSpec{LinkFailures: 1}, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if len(p1.Events) != 1 || len(p2.Events) != 1 || p1.Events[0] != p2.Events[0] {
		t.Fatalf("not deterministic: %v vs %v", p1.Events, p2.Events)
	}
	d, err := Apply(net, p1)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Net.Connected() {
		t.Fatal("random plan disconnected the net")
	}
}

func TestRandomPlanRespectsBridges(t *testing.T) {
	// On a path every link is a bridge: no link can fail.
	net := path(t, 5)
	if _, err := RandomPlan(net, PlanSpec{LinkFailures: 1}, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("bridge failure accepted on a path graph")
	}
	// A ring can lose exactly one link, never two.
	rn := ring(t, 5)
	if _, err := RandomPlan(rn, PlanSpec{LinkFailures: 2}, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("two ring links failed without partitioning — impossible")
	}
}

func TestRandomPlanSwitchFailures(t *testing.T) {
	net := ring(t, 8)
	p, err := RandomPlan(net, PlanSpec{SwitchFailures: 2}, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	d, err := Apply(net, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.DeadSwitches) != 2 {
		t.Fatalf("DeadSwitches = %v, want 2", d.DeadSwitches)
	}
	if !d.Net.Connected() {
		t.Fatal("survivors disconnected")
	}
}

// twoSwitch builds the minimal network: two switches, one link.
func twoSwitch(t *testing.T) *topology.Network {
	t.Helper()
	net, err := topology.New("pair", 2, []topology.Link{{A: 0, B: 1}}, topology.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestRandomPlanTwoSwitchLinkAlwaysRejected(t *testing.T) {
	// The only link of a 2-switch network is a bridge: no rng draw can
	// produce a connectivity-preserving link failure, for any seed.
	net := twoSwitch(t)
	for seed := int64(0); seed < 20; seed++ {
		_, err := RandomPlan(net, PlanSpec{LinkFailures: 1}, rand.New(rand.NewSource(seed)))
		if err == nil {
			t.Fatalf("seed %d: link failure on a 2-switch network must be rejected", seed)
		}
		if !strings.Contains(err.Error(), "cannot fail 1 links") {
			t.Fatalf("seed %d: unexpected error %v", seed, err)
		}
	}
}

func TestRandomPlanTwoSwitchSwitchFailure(t *testing.T) {
	// Failing one of two switches leaves a single connected switch — the
	// smallest survivable degradation.
	net := twoSwitch(t)
	plan, err := RandomPlan(net, PlanSpec{SwitchFailures: 1}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	d, err := Apply(net, plan)
	if err != nil {
		t.Fatal(err)
	}
	if d.Net.Switches() != 1 || len(d.DeadSwitches) != 1 {
		t.Fatalf("degraded = %d switches, %d dead", d.Net.Switches(), len(d.DeadSwitches))
	}
	// Both switches dead is never survivable.
	if _, err := RandomPlan(net, PlanSpec{SwitchFailures: 2}, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("failing both switches must be rejected")
	}
}

func TestRandomPlanDisconnectionRejectedDeterministically(t *testing.T) {
	// Every link of a path graph is a bridge; the rejection must be
	// deterministic (same error for every seed), not a lucky draw.
	net := path(t, 5)
	var first string
	for seed := int64(0); seed < 20; seed++ {
		_, err := RandomPlan(net, PlanSpec{LinkFailures: 1}, rand.New(rand.NewSource(seed)))
		if err == nil {
			t.Fatalf("seed %d: bridge failure slipped through", seed)
		}
		if first == "" {
			first = err.Error()
		} else if err.Error() != first {
			t.Fatalf("rejection not deterministic: %q vs %q", err.Error(), first)
		}
	}
}

func TestRandomPlanMaxSurvivableLinkFailures(t *testing.T) {
	// A ring of n switches survives exactly one link failure: after it the
	// ring is a path and every remaining link is a bridge.
	net := ring(t, 6)
	plan, err := RandomPlan(net, PlanSpec{LinkFailures: 1}, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if d, err := Apply(net, plan); err != nil || d.Net.Switches() != 6 {
		t.Fatalf("single link failure must apply cleanly: %v", err)
	}
	if _, err := RandomPlan(net, PlanSpec{LinkFailures: 2}, rand.New(rand.NewSource(7))); err == nil {
		t.Fatal("two link failures on a ring must be rejected (second is always a bridge)")
	}
}
