// Package traffic generates the workloads the paper's evaluation drives
// the simulator with: every host (one process per processor) injects
// fixed-size messages under a Bernoulli process, and destinations follow a
// pattern — the paper's pattern is uniform over the host's own logical
// cluster (100 % intra-cluster traffic).
//
// Additional patterns (global uniform, hotspot, and an intra/inter mix)
// support the future-work extensions the paper lists (traffic that is not
// fully intra-cluster).
package traffic

import (
	"fmt"
	"math/rand"

	"commsched/internal/mapping"
)

// Pattern selects a destination host for a message generated at src.
// Implementations must never return src itself and must be deterministic
// given the rng state.
type Pattern interface {
	// Destination draws a destination host for a message from src.
	Destination(src int, rng *rand.Rand) int
	// Name identifies the pattern in reports.
	Name() string
}

// IntraCluster sends every message to a uniformly chosen peer in the
// sender's own logical cluster — the paper's workload.
type IntraCluster struct {
	pm *mapping.ProcessMap
}

// NewIntraCluster builds the paper's intra-cluster pattern from a process
// map. Every cluster must hold at least two hosts, otherwise a host would
// have no legal destination.
func NewIntraCluster(pm *mapping.ProcessMap) (*IntraCluster, error) {
	for c := 0; c < pm.Clusters(); c++ {
		if len(pm.ClusterHosts(c)) < 2 {
			return nil, fmt.Errorf("traffic: cluster %d has %d hosts; intra-cluster traffic needs >= 2", c, len(pm.ClusterHosts(c)))
		}
	}
	return &IntraCluster{pm: pm}, nil
}

// Destination implements Pattern.
func (p *IntraCluster) Destination(src int, rng *rand.Rand) int {
	peers := p.pm.ClusterHosts(p.pm.HostCluster(src))
	for {
		d := peers[rng.Intn(len(peers))]
		if d != src {
			return d
		}
	}
}

// Name implements Pattern.
func (p *IntraCluster) Name() string { return "intra-cluster" }

// Uniform sends to a uniformly random other host in the whole machine.
type Uniform struct {
	hosts int
}

// NewUniform builds a global uniform pattern over `hosts` hosts (>= 2).
func NewUniform(hosts int) (*Uniform, error) {
	if hosts < 2 {
		return nil, fmt.Errorf("traffic: uniform pattern needs >= 2 hosts, got %d", hosts)
	}
	return &Uniform{hosts: hosts}, nil
}

// Destination implements Pattern.
func (p *Uniform) Destination(src int, rng *rand.Rand) int {
	for {
		d := rng.Intn(p.hosts)
		if d != src {
			return d
		}
	}
}

// Name implements Pattern.
func (p *Uniform) Name() string { return "uniform" }

// Hotspot directs a fraction of the traffic to a single hot host and the
// rest uniformly — a classic stress pattern.
type Hotspot struct {
	hosts    int
	hot      int
	fraction float64
	uniform  *Uniform
}

// NewHotspot builds a hotspot pattern: with probability fraction the
// destination is `hot`, otherwise global uniform.
func NewHotspot(hosts, hot int, fraction float64) (*Hotspot, error) {
	if hot < 0 || hot >= hosts {
		return nil, fmt.Errorf("traffic: hot host %d out of range [0,%d)", hot, hosts)
	}
	if fraction < 0 || fraction > 1 {
		return nil, fmt.Errorf("traffic: hotspot fraction %v out of [0,1]", fraction)
	}
	u, err := NewUniform(hosts)
	if err != nil {
		return nil, err
	}
	return &Hotspot{hosts: hosts, hot: hot, fraction: fraction, uniform: u}, nil
}

// Destination implements Pattern.
func (p *Hotspot) Destination(src int, rng *rand.Rand) int {
	if rng.Float64() < p.fraction && src != p.hot {
		return p.hot
	}
	return p.uniform.Destination(src, rng)
}

// Name implements Pattern.
func (p *Hotspot) Name() string { return "hotspot" }

// Mixed interpolates between the paper's pure intra-cluster pattern and
// global uniform traffic: each message is intra-cluster with probability
// IntraFraction — the paper's future-work scenario of imperfectly
// clustered applications.
type Mixed struct {
	intra         Pattern
	uniform       Pattern
	intraFraction float64
}

// NewMixed builds the mixture pattern.
func NewMixed(intra, uniform Pattern, intraFraction float64) (*Mixed, error) {
	if intraFraction < 0 || intraFraction > 1 {
		return nil, fmt.Errorf("traffic: intra fraction %v out of [0,1]", intraFraction)
	}
	return &Mixed{intra: intra, uniform: uniform, intraFraction: intraFraction}, nil
}

// Destination implements Pattern.
func (p *Mixed) Destination(src int, rng *rand.Rand) int {
	if rng.Float64() < p.intraFraction {
		return p.intra.Destination(src, rng)
	}
	return p.uniform.Destination(src, rng)
}

// Name implements Pattern.
func (p *Mixed) Name() string { return fmt.Sprintf("mixed-%.0f%%-intra", p.intraFraction*100) }
