package traffic

import (
	"math/rand"
	"testing"
)

// fixture: 4 hosts, 8 processes in 2 clusters, 2 per host.
// Cluster 0 = procs 0..3 on hosts 0,0,1,1; cluster 1 = procs 4..7 on 2,2,3,3.
func processFixture(t *testing.T) *ProcessIntra {
	t.Helper()
	hostOf := []int{0, 0, 1, 1, 2, 2, 3, 3}
	clusterOf := []int{0, 0, 0, 0, 1, 1, 1, 1}
	p, err := NewProcessIntra(4, hostOf, clusterOf)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewProcessIntraValidation(t *testing.T) {
	if _, err := NewProcessIntra(1, []int{0}, []int{0}); err == nil {
		t.Fatal("single host accepted")
	}
	if _, err := NewProcessIntra(4, []int{0, 1}, []int{0}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := NewProcessIntra(4, nil, nil); err == nil {
		t.Fatal("empty placement accepted")
	}
	if _, err := NewProcessIntra(4, []int{0, 9}, []int{0, 0}); err == nil {
		t.Fatal("out-of-range host accepted")
	}
	if _, err := NewProcessIntra(4, []int{0, 1}, []int{0, -1}); err == nil {
		t.Fatal("negative cluster accepted")
	}
	if _, err := NewProcessIntra(4, []int{0, 1, 2}, []int{0, 0, 1}); err == nil {
		t.Fatal("singleton cluster accepted")
	}
}

func TestProcessIntraStaysInClusterHosts(t *testing.T) {
	p := processFixture(t)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		// Host 0 runs cluster-0 processes; remote peers live on host 1 only.
		if d := p.Destination(0, rng); d != 1 {
			t.Fatalf("Destination(0) = %d, want 1", d)
		}
		if d := p.Destination(2, rng); d != 3 {
			t.Fatalf("Destination(2) = %d, want 3", d)
		}
	}
}

func TestProcessIntraNeverSelf(t *testing.T) {
	p := processFixture(t)
	rng := rand.New(rand.NewSource(2))
	for src := 0; src < 4; src++ {
		for i := 0; i < 500; i++ {
			if p.Destination(src, rng) == src {
				t.Fatalf("host %d sent to itself", src)
			}
		}
	}
}

func TestProcessIntraFullyLocalFallsBack(t *testing.T) {
	// Cluster 0 entirely on host 0 (2 slots): its communication is local,
	// so host 0 falls back to uniform remote traffic.
	hostOf := []int{0, 0, 1, 2}
	clusterOf := []int{0, 0, 1, 1}
	p, err := NewProcessIntra(3, hostOf, clusterOf)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		d := p.Destination(0, rng)
		if d == 0 {
			t.Fatal("fully local host sent to itself")
		}
		seen[d] = true
	}
	if !seen[1] || !seen[2] {
		t.Fatalf("fallback did not cover remote hosts: %v", seen)
	}
}

func TestProcessIntraIdleHostFallsBack(t *testing.T) {
	// Host 3 runs no process at all; it must still produce valid remote
	// destinations (the simulator drives every host at the offered rate).
	hostOf := []int{0, 1, 2, 0}
	clusterOf := []int{0, 0, 1, 1}
	p, err := NewProcessIntra(4, hostOf, clusterOf)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 300; i++ {
		if d := p.Destination(3, rng); d == 3 {
			t.Fatal("idle host sent to itself")
		}
	}
}

func TestRemoteFraction(t *testing.T) {
	p := processFixture(t)
	// Each cluster: 6 pairs, 2 local (co-hosted), 4 remote => 8/12.
	want := 8.0 / 12.0
	if got := p.RemoteFraction(); got != want {
		t.Fatalf("RemoteFraction = %v, want %v", got, want)
	}
	// All co-located on one host per cluster: fraction 0.
	q, err := NewProcessIntra(4, []int{0, 0, 1, 1}, []int{0, 0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if q.RemoteFraction() != 0 {
		t.Fatalf("co-located RemoteFraction = %v, want 0", q.RemoteFraction())
	}
}

func TestProcessIntraName(t *testing.T) {
	if processFixture(t).Name() == "" {
		t.Fatal("empty name")
	}
}
