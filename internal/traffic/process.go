package traffic

import (
	"fmt"
	"math/rand"
)

// ProcessIntra is the process-level analogue of IntraCluster for
// placements where hosts run several processes (possibly from different
// applications): a host's message is attributed to one of its resident
// processes (uniformly), and sent to the host of a uniformly chosen peer
// process of that cluster. Peers co-located on the sending host
// communicate through shared memory and generate no network traffic, so
// the draw retries; a host whose entire communication is local falls back
// to a uniform remote destination (it still produces the offered load the
// simulator is driven with, which keeps sweep comparisons fair).
type ProcessIntra struct {
	hostProcs    [][]int // host -> resident processes
	clusterProcs [][]int // cluster -> processes
	hostOf       []int   // process -> host
	clusterOf    []int   // process -> cluster
	hosts        int
}

// NewProcessIntra builds the pattern from a placement: hostOf maps each
// process to its host, clusterOf to its logical cluster.
func NewProcessIntra(hosts int, hostOf, clusterOf []int) (*ProcessIntra, error) {
	if hosts < 2 {
		return nil, fmt.Errorf("traffic: process pattern needs >= 2 hosts, got %d", hosts)
	}
	if len(hostOf) != len(clusterOf) || len(hostOf) == 0 {
		return nil, fmt.Errorf("traffic: hostOf (%d) and clusterOf (%d) must be equal and non-empty",
			len(hostOf), len(clusterOf))
	}
	p := &ProcessIntra{
		hostProcs: make([][]int, hosts),
		hostOf:    append([]int(nil), hostOf...),
		clusterOf: append([]int(nil), clusterOf...),
		hosts:     hosts,
	}
	maxC := -1
	for proc, h := range hostOf {
		if h < 0 || h >= hosts {
			return nil, fmt.Errorf("traffic: process %d on host %d, want [0,%d)", proc, h, hosts)
		}
		p.hostProcs[h] = append(p.hostProcs[h], proc)
		if c := clusterOf[proc]; c > maxC {
			maxC = c
		} else if c < 0 {
			return nil, fmt.Errorf("traffic: process %d has negative cluster", proc)
		}
	}
	p.clusterProcs = make([][]int, maxC+1)
	for proc, c := range clusterOf {
		p.clusterProcs[c] = append(p.clusterProcs[c], proc)
	}
	for c, procs := range p.clusterProcs {
		if len(procs) < 2 {
			return nil, fmt.Errorf("traffic: cluster %d has %d processes; intra-cluster traffic needs >= 2", c, len(procs))
		}
	}
	return p, nil
}

// Destination implements Pattern.
func (p *ProcessIntra) Destination(src int, rng *rand.Rand) int {
	residents := p.hostProcs[src]
	const tries = 16
	if len(residents) > 0 {
		for t := 0; t < tries; t++ {
			proc := residents[rng.Intn(len(residents))]
			peers := p.clusterProcs[p.clusterOf[proc]]
			peer := peers[rng.Intn(len(peers))]
			if d := p.hostOf[peer]; d != src {
				return d
			}
		}
	}
	// Idle host or fully local communication: uniform remote fallback.
	for {
		d := rng.Intn(p.hosts)
		if d != src {
			return d
		}
	}
}

// Name implements Pattern.
func (p *ProcessIntra) Name() string { return "process-intra-cluster" }

// RemoteFraction returns, for analysis, the fraction of process pairs of
// each cluster that are on different hosts under the placement — the share
// of communication that actually hits the network.
func (p *ProcessIntra) RemoteFraction() float64 {
	pairs, remote := 0, 0
	for _, procs := range p.clusterProcs {
		for i := 0; i < len(procs); i++ {
			for j := i + 1; j < len(procs); j++ {
				pairs++
				if p.hostOf[procs[i]] != p.hostOf[procs[j]] {
					remote++
				}
			}
		}
	}
	if pairs == 0 {
		return 0
	}
	return float64(remote) / float64(pairs)
}
