package traffic

import (
	"math/rand"
	"testing"

	"commsched/internal/mapping"
	"commsched/internal/topology"
)

func processMap(t *testing.T) *mapping.ProcessMap {
	t.Helper()
	net, err := topology.RandomIrregular(8, 3, rand.New(rand.NewSource(1)), topology.Config{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := mapping.Balanced(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	pm, err := mapping.NewProcessMap(net, p)
	if err != nil {
		t.Fatal(err)
	}
	return pm
}

func TestIntraClusterStaysInCluster(t *testing.T) {
	pm := processMap(t)
	p, err := NewIntraCluster(pm)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 2000; trial++ {
		src := rng.Intn(pm.Hosts())
		dst := p.Destination(src, rng)
		if dst == src {
			t.Fatal("destination equals source")
		}
		if pm.HostCluster(dst) != pm.HostCluster(src) {
			t.Fatalf("intra-cluster pattern crossed clusters: %d→%d", src, dst)
		}
	}
}

func TestIntraClusterCoversAllPeers(t *testing.T) {
	pm := processMap(t)
	p, err := NewIntraCluster(pm)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	seen := map[int]bool{}
	for trial := 0; trial < 5000; trial++ {
		seen[p.Destination(0, rng)] = true
	}
	peers := pm.Peers(0)
	if len(seen) != len(peers) {
		t.Fatalf("saw %d distinct destinations, want %d", len(seen), len(peers))
	}
}

func TestIntraClusterRejectsSingletonCluster(t *testing.T) {
	net, err := topology.RandomIrregular(8, 3, rand.New(rand.NewSource(1)), topology.Config{HostsPerSwitch: 1})
	if err != nil {
		t.Fatal(err)
	}
	p, err := mapping.Balanced(8, 8) // 1 switch => 1 host per cluster
	if err != nil {
		t.Fatal(err)
	}
	pm, err := mapping.NewProcessMap(net, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewIntraCluster(pm); err == nil {
		t.Fatal("singleton clusters accepted")
	}
}

func TestUniform(t *testing.T) {
	u, err := NewUniform(10)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	seen := map[int]bool{}
	for trial := 0; trial < 3000; trial++ {
		d := u.Destination(3, rng)
		if d == 3 {
			t.Fatal("uniform returned the source")
		}
		seen[d] = true
	}
	if len(seen) != 9 {
		t.Fatalf("uniform covered %d destinations, want 9", len(seen))
	}
	if _, err := NewUniform(1); err == nil {
		t.Fatal("degenerate uniform accepted")
	}
}

func TestHotspot(t *testing.T) {
	h, err := NewHotspot(10, 7, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	hot := 0
	const trials = 4000
	for i := 0; i < trials; i++ {
		if h.Destination(0, rng) == 7 {
			hot++
		}
	}
	// ~50% + 1/9 of the rest ≈ 0.55
	frac := float64(hot) / trials
	if frac < 0.45 || frac > 0.65 {
		t.Fatalf("hotspot fraction = %v, want ≈ 0.55", frac)
	}
	if _, err := NewHotspot(10, 10, 0.5); err == nil {
		t.Fatal("out-of-range hot host accepted")
	}
	if _, err := NewHotspot(10, 0, 1.5); err == nil {
		t.Fatal("fraction > 1 accepted")
	}
}

func TestHotspotFromHotHostAvoidsSelf(t *testing.T) {
	h, err := NewHotspot(4, 2, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 200; i++ {
		if h.Destination(2, rng) == 2 {
			t.Fatal("hot host sent to itself")
		}
	}
}

func TestMixed(t *testing.T) {
	pm := processMap(t)
	intra, err := NewIntraCluster(pm)
	if err != nil {
		t.Fatal(err)
	}
	uni, err := NewUniform(pm.Hosts())
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMixed(intra, uni, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	inCluster := 0
	const trials = 5000
	for i := 0; i < trials; i++ {
		src := rng.Intn(pm.Hosts())
		if pm.HostCluster(m.Destination(src, rng)) == pm.HostCluster(src) {
			inCluster++
		}
	}
	frac := float64(inCluster) / trials
	// 0.8 + 0.2 * P(uniform lands in own cluster ≈ 8/31) ≈ 0.85
	if frac < 0.78 || frac > 0.92 {
		t.Fatalf("mixed intra fraction = %v, want ≈ 0.85", frac)
	}
	if _, err := NewMixed(intra, uni, -0.1); err == nil {
		t.Fatal("negative fraction accepted")
	}
}

func TestNames(t *testing.T) {
	pm := processMap(t)
	intra, _ := NewIntraCluster(pm)
	uni, _ := NewUniform(4)
	hot, _ := NewHotspot(4, 0, 0.1)
	mix, _ := NewMixed(intra, uni, 0.5)
	for _, p := range []Pattern{intra, uni, hot, mix} {
		if p.Name() == "" {
			t.Fatal("empty pattern name")
		}
	}
}
