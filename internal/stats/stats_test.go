package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if Mean([]float64{2, 4, 6}) != 4 {
		t.Fatalf("Mean = %v, want 4", Mean([]float64{2, 4, 6}))
	}
}

func TestVarianceStdDev(t *testing.T) {
	if Variance([]float64{5}) != 0 {
		t.Fatal("variance of single sample must be 0")
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if !almostEq(Variance(xs), 4, 1e-12) {
		t.Fatalf("Variance = %v, want 4", Variance(xs))
	}
	if !almostEq(StdDev(xs), 2, 1e-12) {
		t.Fatalf("StdDev = %v, want 2", StdDev(xs))
	}
}

func TestPearsonPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{10, 20, 30, 40}
	r, err := Pearson(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(r, 1, 1e-12) {
		t.Fatalf("perfect positive correlation = %v, want 1", r)
	}
	neg := []float64{-1, -2, -3, -4}
	r, err = Pearson(xs, neg)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(r, -1, 1e-12) {
		t.Fatalf("perfect negative correlation = %v, want -1", r)
	}
}

func TestPearsonKnownValue(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 1, 4, 3, 5}
	r, err := Pearson(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(r, 0.8, 1e-12) {
		t.Fatalf("Pearson = %v, want 0.8", r)
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := Pearson([]float64{1}, []float64{2}); err == nil {
		t.Fatal("single pair accepted")
	}
	if _, err := Pearson([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Fatal("constant x accepted")
	}
	if _, err := Pearson([]float64{2, 3}, []float64{1, 1}); err == nil {
		t.Fatal("constant y accepted")
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 2})
	if min != -1 || max != 7 {
		t.Fatalf("MinMax = %v,%v, want -1,7", min, max)
	}
	min, max = MinMax(nil)
	if min != 0 || max != 0 {
		t.Fatal("MinMax(nil) != 0,0")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRow("b", "22", "extra")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "name") || !strings.Contains(lines[0], "value") {
		t.Fatalf("header missing: %q", lines[0])
	}
	if !strings.Contains(lines[2], "alpha") {
		t.Fatalf("row missing: %q", lines[2])
	}
	if !strings.Contains(lines[3], "extra") {
		t.Fatalf("extra cell missing: %q", lines[3])
	}
}

func TestTableAddRowf(t *testing.T) {
	tb := NewTable("a", "b")
	tb.AddRowf("%d %.2f", 3, 1.5)
	if !strings.Contains(tb.String(), "1.50") {
		t.Fatal("AddRowf formatting lost")
	}
}

// Property: Pearson is invariant under positive affine transforms and
// bounded by 1 in magnitude.
func TestQuickPearsonInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(20)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
			ys[i] = rng.NormFloat64()
		}
		r1, err := Pearson(xs, ys)
		if err != nil {
			return true // degenerate draw: constant input
		}
		if math.Abs(r1) > 1+1e-12 {
			return false
		}
		// Affine transform of x with positive scale.
		xt := make([]float64, n)
		for i := range xs {
			xt[i] = 3*xs[i] + 7
		}
		r2, err := Pearson(xt, ys)
		if err != nil {
			return false
		}
		return almostEq(r1, r2, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
