// Package stats provides the small statistical toolkit the paper's
// evaluation needs: means, standard deviations, and the Pearson
// correlation coefficient behind Figure 6 (correlation of the clustering
// coefficient with network performance), plus simple text-table
// formatting for the experiment reports.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs (0 for fewer than two
// samples).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Pearson returns the Pearson correlation coefficient of the paired
// samples, in [-1, 1]. It returns an error when the lengths differ, there
// are fewer than two pairs, or either variable is constant (the
// coefficient is undefined).
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("stats: Pearson needs paired samples, got %d vs %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return 0, fmt.Errorf("stats: Pearson needs >= 2 pairs, got %d", len(xs))
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, fmt.Errorf("stats: Pearson undefined for constant input")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// MinMax returns the smallest and largest values (0,0 for empty input).
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Table renders rows of cells as a fixed-width text table with a header —
// the output format of the benchmark harness and cmd/paperfigs.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; short rows are padded with empty cells and long
// rows extend the column count.
func (t *Table) AddRow(cells ...string) { t.rows = append(t.rows, cells) }

// AddRowf appends a row built from formatted values.
func (t *Table) AddRowf(format string, args ...any) {
	t.AddRow(strings.Fields(fmt.Sprintf(format, args...))...)
}

// String renders the table.
func (t *Table) String() string {
	cols := len(t.header)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	cell := func(row []string, c int) string {
		if c < len(row) {
			return row[c]
		}
		return ""
	}
	for c := 0; c < cols; c++ {
		w := len(cell(t.header, c))
		for _, r := range t.rows {
			if l := len(cell(r, c)); l > w {
				w = l
			}
		}
		widths[c] = w
	}
	var b strings.Builder
	writeRow := func(row []string) {
		for c := 0; c < cols; c++ {
			if c > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[c], cell(row, c))
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for c := 0; c < cols; c++ {
		if c > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", widths[c]))
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
