package routing

import (
	"commsched/internal/topology"
)

// ShortestPath is a PathProvider that supplies all minimal topological
// paths, ignoring routing restrictions. It is the ablation baseline that
// quantifies how much of the distance table's structure comes from the
// up*/down* restriction versus the raw topology.
type ShortestPath struct {
	net  *topology.Network
	dist [][]int // dist[s][t] = BFS hop distance
}

// NewShortestPath precomputes all-pairs BFS distances.
func NewShortestPath(net *topology.Network) *ShortestPath {
	n := net.Switches()
	sp := &ShortestPath{net: net, dist: make([][]int, n)}
	for s := 0; s < n; s++ {
		sp.dist[s] = net.BFSDistances(s)
	}
	return sp
}

// Distance returns the hop distance between s and t.
func (sp *ShortestPath) Distance(s, t int) int { return sp.dist[s][t] }

// PathLinks returns the links on at least one minimal path from s to t:
// link (u,v) qualifies iff d(s,u) + 1 + d(v,t) == d(s,t) in either
// direction.
func (sp *ShortestPath) PathLinks(s, t int) []topology.Link {
	if s == t {
		return nil
	}
	d := sp.dist[s][t]
	var out []topology.Link
	for _, l := range sp.net.Links() {
		if sp.dist[s][l.A]+1+sp.dist[l.B][t] == d || sp.dist[s][l.B]+1+sp.dist[l.A][t] == d {
			out = append(out, l)
		}
	}
	return out
}

// NextHops returns the neighbors of s that advance toward t along a
// minimal path. Unlike up*/down*, phase does not matter; Descending is
// always reported false.
func (sp *ShortestPath) NextHops(s, t int) []Hop {
	if s == t {
		return nil
	}
	var out []Hop
	for _, v := range sp.net.Neighbors(s) {
		if sp.dist[v][t] == sp.dist[s][t]-1 {
			out = append(out, Hop{To: v})
		}
	}
	return out
}
