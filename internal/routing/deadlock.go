package routing

import (
	"fmt"
	"sort"
)

// Channel is a directed physical channel (one direction of a link) in the
// channel dependency graph.
type Channel struct {
	From, To int
}

// DepGraph is the channel dependency graph of a routing algorithm on a
// network: an edge c1 → c2 means some message may hold c1 while requesting
// c2. By Dally & Seitz / Duato's theory, wormhole routing is deadlock-free
// when this graph is acyclic.
type DepGraph struct {
	channels []Channel
	index    map[Channel]int
	adj      [][]int
}

// newDepGraph builds an empty graph over the given channels.
func newDepGraph(channels []Channel) *DepGraph {
	g := &DepGraph{
		channels: channels,
		index:    make(map[Channel]int, len(channels)),
		adj:      make([][]int, len(channels)),
	}
	for i, c := range channels {
		g.index[c] = i
	}
	return g
}

// addDep records a dependency c1 → c2. Unknown channels panic: they
// indicate a bug in the graph construction, not bad input.
func (g *DepGraph) addDep(c1, c2 Channel) {
	i, ok := g.index[c1]
	if !ok {
		panic(fmt.Sprintf("routing: unknown channel %v", c1))
	}
	j, ok := g.index[c2]
	if !ok {
		panic(fmt.Sprintf("routing: unknown channel %v", c2))
	}
	g.adj[i] = append(g.adj[i], j)
}

// Channels returns the channel set, in construction order.
func (g *DepGraph) Channels() []Channel {
	out := make([]Channel, len(g.channels))
	copy(out, g.channels)
	return out
}

// Dependencies returns the dependency count (edges, with duplicates
// removed).
func (g *DepGraph) Dependencies() int {
	n := 0
	for i := range g.adj {
		seen := map[int]bool{}
		for _, j := range g.adj[i] {
			if !seen[j] {
				seen[j] = true
				n++
			}
		}
	}
	return n
}

// HasCycle reports whether the dependency graph contains a directed cycle
// (iterative three-color DFS).
func (g *DepGraph) HasCycle() bool {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, len(g.channels))
	type frame struct {
		node int
		next int
	}
	for start := range g.channels {
		if color[start] != white {
			continue
		}
		stack := []frame{{node: start}}
		color[start] = gray
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.next < len(g.adj[f.node]) {
				child := g.adj[f.node][f.next]
				f.next++
				switch color[child] {
				case gray:
					return true
				case white:
					color[child] = gray
					stack = append(stack, frame{node: child})
				}
				continue
			}
			color[f.node] = black
			stack = stack[:len(stack)-1]
		}
	}
	return false
}

// Cycle returns one directed cycle as a channel sequence (first == last),
// or nil when the graph is acyclic. Used to exhibit the deadlock a broken
// routing function would allow.
func (g *DepGraph) Cycle() []Channel {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, len(g.channels))
	parent := make([]int, len(g.channels))
	for i := range parent {
		parent[i] = -1
	}
	var cycle []Channel
	var dfs func(u int) bool
	dfs = func(u int) bool {
		color[u] = gray
		for _, v := range g.adj[u] {
			if color[v] == gray {
				// Reconstruct u → … → v → u backwards.
				cycle = []Channel{g.channels[v]}
				for x := u; x != v; x = parent[x] {
					cycle = append(cycle, g.channels[x])
				}
				cycle = append(cycle, g.channels[v])
				// Reverse into forward order.
				for l, r := 0, len(cycle)-1; l < r; l, r = l+1, r-1 {
					cycle[l], cycle[r] = cycle[r], cycle[l]
				}
				return true
			}
			if color[v] == white {
				parent[v] = u
				if dfs(v) {
					return true
				}
			}
		}
		color[u] = black
		return false
	}
	for i := range g.channels {
		if color[i] == white && dfs(i) {
			return cycle
		}
	}
	return nil
}

// allChannels enumerates both directions of every link, deterministically
// ordered.
func allChannels(links []Channel) []Channel {
	sort.Slice(links, func(i, j int) bool {
		if links[i].From != links[j].From {
			return links[i].From < links[j].From
		}
		return links[i].To < links[j].To
	})
	return links
}

// ChannelDependencyGraph builds the dependency graph induced by up*/down*
// routing: a message arriving at v on channel (u,v) is ascending when the
// link was traversed upward and descending otherwise, and may request any
// admissible next hop toward any destination.
func (ud *UpDown) ChannelDependencyGraph() *DepGraph {
	n := ud.net.Switches()
	var chans []Channel
	for _, l := range ud.net.Links() {
		chans = append(chans, Channel{l.A, l.B}, Channel{l.B, l.A})
	}
	g := newDepGraph(allChannels(chans))
	for _, c := range g.Channels() {
		descending := !ud.IsUp(c.From, c.To)
		for t := 0; t < n; t++ {
			if t == c.To {
				continue
			}
			for _, h := range ud.NextHops(c.To, t, descending) {
				g.addDep(c, Channel{c.To, h.To})
			}
		}
	}
	return g
}

// VerifyDeadlockFree checks the Dally & Seitz condition on the up*/down*
// channel dependency graph and returns an error exhibiting a dependency
// cycle if one exists. Up*/down* is deadlock-free by construction, so a
// failure here indicates a corrupted routing structure (e.g. built on a
// mutated topology); degraded-mode callers use it as a safety net before
// committing to a re-derived routing.
func (ud *UpDown) VerifyDeadlockFree() error {
	g := ud.ChannelDependencyGraph()
	if cyc := g.Cycle(); cyc != nil {
		return fmt.Errorf("routing: up*/down* channel dependency cycle on %s (root %d): %v",
			ud.net.Name(), ud.root, cyc)
	}
	return nil
}

// ChannelDependencyGraph builds the dependency graph of unrestricted
// minimal-path routing: a message that used channel (u,v) en route to t
// (that is, v is closer to t than u) may request any channel (v,w) that
// continues a minimal path. On cyclic topologies this graph has cycles —
// the deadlock hazard up*/down* exists to remove.
func (sp *ShortestPath) ChannelDependencyGraph() *DepGraph {
	n := sp.net.Switches()
	var chans []Channel
	for _, l := range sp.net.Links() {
		chans = append(chans, Channel{l.A, l.B}, Channel{l.B, l.A})
	}
	g := newDepGraph(allChannels(chans))
	for _, c := range g.Channels() {
		for t := 0; t < n; t++ {
			if t == c.To {
				continue
			}
			// Channel used toward t?
			if sp.dist[c.From][t] != sp.dist[c.To][t]+1 {
				continue
			}
			for _, h := range sp.NextHops(c.To, t) {
				g.addDep(c, Channel{c.To, h.To})
			}
		}
	}
	return g
}
