package routing

import (
	"math/rand"
	"testing"

	"commsched/internal/topology"
)

func TestShortestPathDistance(t *testing.T) {
	net := pathNet(t)
	sp := NewShortestPath(net)
	if sp.Distance(0, 3) != 3 || sp.Distance(2, 2) != 0 {
		t.Fatalf("distances wrong: %d, %d", sp.Distance(0, 3), sp.Distance(2, 2))
	}
}

func TestShortestPathLinksPath(t *testing.T) {
	net := pathNet(t)
	sp := NewShortestPath(net)
	links := sp.PathLinks(0, 3)
	if len(links) != 3 {
		t.Fatalf("PathLinks(0,3) = %v, want 3 links", links)
	}
	if sp.PathLinks(1, 1) != nil {
		t.Fatal("PathLinks(i,i) must be nil")
	}
}

func TestShortestPathLinksRing(t *testing.T) {
	// Ring of 4: opposite corners have two minimal paths; all 4 links used.
	net, err := topology.Ring(4, topology.Config{})
	if err != nil {
		t.Fatal(err)
	}
	sp := NewShortestPath(net)
	if got := len(sp.PathLinks(0, 2)); got != 4 {
		t.Fatalf("ring-4 PathLinks(0,2) = %d links, want 4", got)
	}
	// Adjacent: only the direct link.
	if got := len(sp.PathLinks(0, 1)); got != 1 {
		t.Fatalf("ring-4 PathLinks(0,1) = %d links, want 1", got)
	}
}

func TestShortestPathNextHops(t *testing.T) {
	net, err := topology.Ring(4, topology.Config{})
	if err != nil {
		t.Fatal(err)
	}
	sp := NewShortestPath(net)
	hops := sp.NextHops(0, 2)
	if len(hops) != 2 {
		t.Fatalf("NextHops(0→2) on ring-4 = %v, want two choices", hops)
	}
	if sp.NextHops(1, 1) != nil {
		t.Fatal("NextHops at destination must be nil")
	}
}

func TestShortestVersusUpDown(t *testing.T) {
	// On a tree, up*/down* forbids nothing: distances must coincide.
	net := mustNet(t, "tree", 5, []topology.Link{{A: 0, B: 1}, {A: 0, B: 2}, {A: 1, B: 3}, {A: 1, B: 4}})
	sp := NewShortestPath(net)
	ud, err := NewUpDown(net, 0)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 5; s++ {
		for tt := 0; tt < 5; tt++ {
			if sp.Distance(s, tt) != ud.Distance(s, tt) {
				t.Fatalf("tree distances differ at (%d,%d): bfs=%d updown=%d",
					s, tt, sp.Distance(s, tt), ud.Distance(s, tt))
			}
		}
	}
}

func TestShortestPathLinksConsistentWithDistance(t *testing.T) {
	net, err := topology.RandomIrregular(16, 3, rand.New(rand.NewSource(11)), topology.Config{})
	if err != nil {
		t.Fatal(err)
	}
	sp := NewShortestPath(net)
	for s := 0; s < 16; s++ {
		for tt := 0; tt < 16; tt++ {
			links := sp.PathLinks(s, tt)
			if s == tt {
				if links != nil {
					t.Fatal("self pair must have no path links")
				}
				continue
			}
			if len(links) < sp.Distance(s, tt) {
				t.Fatalf("PathLinks(%d,%d) has %d links; a single minimal path needs %d",
					s, tt, len(links), sp.Distance(s, tt))
			}
		}
	}
}
