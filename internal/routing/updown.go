// Package routing implements the up*/down* routing scheme used by Autonet
// networks (Schroeder et al.), the routing algorithm the paper assumes when
// characterizing irregular topologies, plus a plain shortest-path provider
// used as an ablation baseline.
//
// Up*/down* routing builds a BFS spanning tree rooted at an elected switch
// and orients every link: the "up" end of a link is the end closer to the
// root (ties broken by lower switch ID). A legal route is zero or more
// links traversed in the up direction followed by zero or more links in
// the down direction; the down→up transition is forbidden, which breaks
// all cyclic channel dependencies and makes the scheme deadlock-free — at
// the price of forbidding some minimal paths and concentrating traffic
// near the root (the behaviour the paper's distance table captures).
package routing

import (
	"fmt"

	"commsched/internal/topology"
)

// PathProvider is what the distance-table construction needs from a
// routing algorithm: pairwise route length and the set of links used by
// shortest routes. Implementations must be safe for concurrent readers —
// the table construction fans pairs out across goroutines.
type PathProvider interface {
	// Distance returns the length in hops of the shortest route the
	// algorithm supplies between switches s and t, 0 when s == t.
	Distance(s, t int) int
	// PathLinks returns the set of links that belong to at least one
	// shortest route from s to t.
	PathLinks(s, t int) []topology.Link
}

// Hop is one admissible next step of a routed message.
type Hop struct {
	// To is the neighbor switch to forward to.
	To int
	// Descending reports whether the message will have started its down
	// phase after taking this hop (once true, it stays true).
	Descending bool
}

// UpDown holds the spanning tree, link orientations, and per-pair legal
// shortest-path metadata for one network.
type UpDown struct {
	net   *topology.Network
	root  int
	level []int // BFS level of each switch from the root

	// dist[s][t] = legal shortest route length.
	dist [][]int
	// hops[s][t] = admissible next hops on legal shortest routes for a
	// message at s (still in its up phase) destined to t.
	// hopsDown[s][t] = the same for a message already descending.
	hops     [][][]Hop
	hopsDown [][][]Hop
}

// phase indices for the legality automaton.
const (
	phaseUp   = 0 // still allowed to take up links
	phaseDown = 1 // committed to down links only
)

// NewUpDown builds the up*/down* routing structure. root selects the
// spanning-tree root; pass a negative value to auto-elect (the
// highest-degree switch, ties broken by lowest ID — a common Autonet
// refinement that keeps tree depth low).
func NewUpDown(net *topology.Network, root int) (*UpDown, error) {
	n := net.Switches()
	if root >= n {
		return nil, fmt.Errorf("routing: root %d out of range [0,%d)", root, n)
	}
	if !net.Connected() {
		var unreachable []int
		for s, d := range net.BFSDistances(0) {
			if d < 0 {
				unreachable = append(unreachable, s)
			}
		}
		return nil, fmt.Errorf("routing: up*/down* requires a connected network: %s is partitioned, switches %v unreachable from switch 0",
			net.Name(), unreachable)
	}
	if root < 0 {
		root = electRoot(net)
	}
	ud := &UpDown{net: net, root: root, level: net.BFSDistances(root)}
	ud.computeAllPairs()
	return ud, nil
}

// electRoot returns the highest-degree switch, breaking ties by lowest ID.
func electRoot(net *topology.Network) int {
	best, bestDeg := 0, -1
	for s := 0; s < net.Switches(); s++ {
		if d := net.Degree(s); d > bestDeg {
			best, bestDeg = s, d
		}
	}
	return best
}

// Root returns the spanning-tree root switch.
func (ud *UpDown) Root() int { return ud.root }

// Level returns the BFS level (distance from the root) of switch s.
func (ud *UpDown) Level(s int) int { return ud.level[s] }

// IsUp reports whether traversing the link from switch `from` to switch
// `to` is an up-direction move. The up end of a link is the end nearer the
// root; between same-level endpoints the lower ID is the up end.
func (ud *UpDown) IsUp(from, to int) bool {
	lf, lt := ud.level[from], ud.level[to]
	if lf != lt {
		return lt < lf
	}
	return to < from
}

// Distance returns the legal shortest route length from s to t.
func (ud *UpDown) Distance(s, t int) int { return ud.dist[s][t] }

// NextHops returns the admissible next hops for a message at switch s
// destined to switch t, given whether it has already begun descending.
// All returned hops lie on legal routes of minimal remaining length.
// The result is shared; callers must not modify it.
func (ud *UpDown) NextHops(s, t int, descending bool) []Hop {
	if descending {
		return ud.hopsDown[s][t]
	}
	return ud.hops[s][t]
}

// computeAllPairs fills dist, hops and hopsDown via one backward BFS per
// destination over the 2·N-state legality automaton
// (switch × {up-phase, down-phase}).
func (ud *UpDown) computeAllPairs() {
	n := ud.net.Switches()
	ud.dist = make([][]int, n)
	ud.hops = make([][][]Hop, n)
	ud.hopsDown = make([][][]Hop, n)
	for s := 0; s < n; s++ {
		ud.dist[s] = make([]int, n)
		ud.hops[s] = make([][]Hop, n)
		ud.hopsDown[s] = make([][]Hop, n)
	}

	// db[p][v] = minimal legal hops from v (in phase p) to the target.
	db := [2][]int{make([]int, n), make([]int, n)}
	for t := 0; t < n; t++ {
		ud.backwardDistances(t, db)
		for s := 0; s < n; s++ {
			ud.dist[s][t] = db[phaseUp][s]
			ud.hops[s][t] = ud.admissibleHops(s, t, phaseUp, db)
			ud.hopsDown[s][t] = ud.admissibleHops(s, t, phaseDown, db)
		}
	}
}

// backwardDistances computes db[p][v]: the minimal number of hops needed
// to reach t from v when the message at v is in phase p. Arrival in either
// phase terminates. The automaton transitions, forward, are:
//
//	(v, up)   --up-link-->   (w, up)
//	(v, up)   --down-link--> (w, down)
//	(v, down) --down-link--> (w, down)
//
// We run a BFS on the reversed transition graph starting from both
// terminal states (t, up) and (t, down).
func (ud *UpDown) backwardDistances(t int, db [2][]int) {
	n := ud.net.Switches()
	const inf = int(^uint(0) >> 1)
	for v := 0; v < n; v++ {
		db[phaseUp][v] = inf
		db[phaseDown][v] = inf
	}
	type state struct{ v, p int }
	queue := make([]state, 0, 2*n)
	db[phaseUp][t] = 0
	db[phaseDown][t] = 0
	queue = append(queue, state{t, phaseUp}, state{t, phaseDown})
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		d := db[cur.p][cur.v]
		// Find predecessors (u, pu) with a forward transition to cur.
		for _, u := range ud.net.Neighbors(cur.v) {
			up := ud.IsUp(u, cur.v) // direction of the u→v move
			switch {
			case cur.p == phaseUp && up:
				// (u, up) --up--> (v, up)
				if db[phaseUp][u] == inf {
					db[phaseUp][u] = d + 1
					queue = append(queue, state{u, phaseUp})
				}
			case cur.p == phaseDown && !up:
				// (u, up) --down--> (v, down) and (u, down) --down--> (v, down)
				if db[phaseUp][u] == inf {
					db[phaseUp][u] = d + 1
					queue = append(queue, state{u, phaseUp})
				}
				if db[phaseDown][u] == inf {
					db[phaseDown][u] = d + 1
					queue = append(queue, state{u, phaseDown})
				}
			}
		}
	}
	// A message in the up phase may equivalently be "already descending"
	// with a shorter remaining distance via down links only; ensure
	// db[up] <= db[down] (taking a down link from the up phase is legal).
	for v := 0; v < n; v++ {
		if db[phaseDown][v] < db[phaseUp][v] {
			db[phaseUp][v] = db[phaseDown][v]
		}
	}
}

// admissibleHops lists the neighbor moves from (s, p) that stay on a
// minimal-length legal route to t.
func (ud *UpDown) admissibleHops(s, t, p int, db [2][]int) []Hop {
	if s == t {
		return nil
	}
	want := db[p][s] - 1
	var out []Hop
	for _, v := range ud.net.Neighbors(s) {
		up := ud.IsUp(s, v)
		if p == phaseUp && up {
			if db[phaseUp][v] == want {
				out = append(out, Hop{To: v, Descending: false})
			}
			continue
		}
		if !up { // down move, legal from both phases
			if db[phaseDown][v] == want {
				out = append(out, Hop{To: v, Descending: true})
			}
		}
	}
	return out
}

// PathLinks returns the set of links that lie on at least one legal
// shortest route from s to t — the resistor network of the paper's
// equivalent-distance computation.
func (ud *UpDown) PathLinks(s, t int) []topology.Link {
	if s == t {
		return nil
	}
	// Walk the admissible-hop DAG from (s, up); every traversed move is on
	// a minimal route by construction of admissibleHops.
	type state struct {
		v    int
		down bool
	}
	seenState := map[state]bool{}
	seenLink := map[topology.Link]bool{}
	var links []topology.Link
	stack := []state{{s, false}}
	seenState[stack[0]] = true
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if cur.v == t {
			continue
		}
		for _, h := range ud.NextHops(cur.v, t, cur.down) {
			l := topology.NormalizeLink(cur.v, h.To)
			if !seenLink[l] {
				seenLink[l] = true
				links = append(links, l)
			}
			ns := state{h.To, h.Descending}
			if !seenState[ns] {
				seenState[ns] = true
				stack = append(stack, ns)
			}
		}
	}
	return links
}

// CountShortestLegalPaths returns the number of distinct minimal legal
// routes from s to t without enumerating them (dynamic programming over
// the admissible-hop DAG). The count is the path-multiplicity signal the
// equivalent-distance model captures and plain hop counts discard.
func (ud *UpDown) CountShortestLegalPaths(s, t int) int {
	if s == t {
		return 1
	}
	type state struct {
		v    int
		down bool
	}
	memo := map[state]int{}
	var count func(st state) int
	count = func(st state) int {
		if st.v == t {
			return 1
		}
		if c, ok := memo[st]; ok {
			return c
		}
		memo[st] = 0 // admissible-hop DAG is acyclic; 0 guards misuse
		total := 0
		for _, h := range ud.NextHops(st.v, t, st.down) {
			total += count(state{h.To, h.Descending})
		}
		memo[st] = total
		return total
	}
	return count(state{s, false})
}

// ShortestLegalPaths enumerates every distinct minimal legal route from s
// to t as switch sequences. Intended for tests and small networks; the
// number of routes can grow combinatorially.
func (ud *UpDown) ShortestLegalPaths(s, t int) [][]int {
	if s == t {
		return [][]int{{s}}
	}
	var out [][]int
	var walk func(v int, down bool, path []int)
	walk = func(v int, down bool, path []int) {
		if v == t {
			cp := make([]int, len(path))
			copy(cp, path)
			out = append(out, cp)
			return
		}
		for _, h := range ud.NextHops(v, t, down) {
			walk(h.To, h.Descending, append(path, h.To))
		}
	}
	walk(s, false, []int{s})
	return out
}
