package routing

import (
	"math/rand"
	"testing"
	"testing/quick"

	"commsched/internal/topology"
)

func mustNet(t *testing.T, name string, n int, links []topology.Link) *topology.Network {
	t.Helper()
	net, err := topology.New(name, n, links, topology.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// pathNet is 0-1-2-3.
func pathNet(t *testing.T) *topology.Network {
	return mustNet(t, "path4", 4, []topology.Link{{A: 0, B: 1}, {A: 1, B: 2}, {A: 2, B: 3}})
}

func TestNewUpDownRequiresConnected(t *testing.T) {
	net := mustNet(t, "disc", 4, []topology.Link{{A: 0, B: 1}, {A: 2, B: 3}})
	if _, err := NewUpDown(net, -1); err == nil {
		t.Fatal("expected error for disconnected network")
	}
}

func TestNewUpDownRootRange(t *testing.T) {
	net := pathNet(t)
	if _, err := NewUpDown(net, 10); err == nil {
		t.Fatal("expected error for out-of-range root")
	}
}

func TestRootElection(t *testing.T) {
	// Star: center 1 has degree 3, others 1; auto-election must pick 1.
	net := mustNet(t, "star", 4, []topology.Link{{A: 0, B: 1}, {A: 1, B: 2}, {A: 1, B: 3}})
	ud, err := NewUpDown(net, -1)
	if err != nil {
		t.Fatal(err)
	}
	if ud.Root() != 1 {
		t.Fatalf("Root = %d, want 1 (highest degree)", ud.Root())
	}
	// Explicit root is honored.
	ud2, err := NewUpDown(net, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ud2.Root() != 3 {
		t.Fatalf("Root = %d, want 3", ud2.Root())
	}
}

func TestLevels(t *testing.T) {
	net := pathNet(t)
	ud, err := NewUpDown(net, 0)
	if err != nil {
		t.Fatal(err)
	}
	for s, want := range []int{0, 1, 2, 3} {
		if ud.Level(s) != want {
			t.Fatalf("Level(%d) = %d, want %d", s, ud.Level(s), want)
		}
	}
}

func TestIsUpOrientation(t *testing.T) {
	net := pathNet(t)
	ud, _ := NewUpDown(net, 0)
	if !ud.IsUp(1, 0) {
		t.Fatal("moving toward the root must be up")
	}
	if ud.IsUp(0, 1) {
		t.Fatal("moving away from the root must be down")
	}
}

func TestIsUpTieBreakByID(t *testing.T) {
	// Triangle rooted at 0: switches 1 and 2 are both level 1; the link
	// between them orients up toward the lower ID.
	net := mustNet(t, "tri", 3, []topology.Link{{A: 0, B: 1}, {A: 0, B: 2}, {A: 1, B: 2}})
	ud, _ := NewUpDown(net, 0)
	if !ud.IsUp(2, 1) || ud.IsUp(1, 2) {
		t.Fatal("same-level link must orient up toward the lower switch ID")
	}
}

func TestDistanceOnPath(t *testing.T) {
	net := pathNet(t)
	ud, _ := NewUpDown(net, 0)
	cases := []struct{ s, tt, want int }{
		{0, 0, 0}, {0, 3, 3}, {3, 0, 3}, {1, 2, 1}, {2, 1, 1},
	}
	for _, c := range cases {
		if got := ud.Distance(c.s, c.tt); got != c.want {
			t.Fatalf("Distance(%d,%d) = %d, want %d", c.s, c.tt, got, c.want)
		}
	}
}

// The classic up*/down* detour: on a ring rooted at 0, some minimal paths
// are forbidden because they would require a down→up transition.
func TestUpDownForbidsDownUpTransitions(t *testing.T) {
	// Ring of 6 rooted at 0. Levels: 0:0, 1:1, 5:1, 2:2, 4:2, 3:3.
	net, err := topology.Ring(6, topology.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ud, err := NewUpDown(net, 0)
	if err != nil {
		t.Fatal(err)
	}
	// From 2 to 4 the minimal topological path 2-3-4 goes down (2→3) then
	// up (3→4) — forbidden. Legal route must climb first: 2-1-0-5-4 or via
	// the 1↔5 structure; the legal distance must exceed the hop distance.
	if hop := net.BFSDistances(2)[4]; hop != 2 {
		t.Fatalf("sanity: hop distance 2→4 = %d, want 2", hop)
	}
	if got := ud.Distance(2, 4); got <= 2 {
		t.Fatalf("Distance(2,4) = %d; up*/down* must forbid the 2-3-4 path", got)
	}
	// Every enumerated route must be a legal up*-then-down* sequence.
	for _, path := range ud.ShortestLegalPaths(2, 4) {
		assertLegal(t, ud, path)
	}
}

func assertLegal(t *testing.T, ud *UpDown, path []int) {
	t.Helper()
	descending := false
	for i := 1; i < len(path); i++ {
		up := ud.IsUp(path[i-1], path[i])
		if up && descending {
			t.Fatalf("path %v makes a down→up transition at hop %d", path, i)
		}
		if !up {
			descending = true
		}
	}
}

func TestNextHopsAdvance(t *testing.T) {
	net := pathNet(t)
	ud, _ := NewUpDown(net, 0)
	hops := ud.NextHops(3, 0, false)
	if len(hops) != 1 || hops[0].To != 2 {
		t.Fatalf("NextHops(3→0) = %v, want single hop to 2", hops)
	}
	if ud.NextHops(2, 2, false) != nil {
		t.Fatal("NextHops at destination must be empty")
	}
}

func TestNextHopsDescendingRestricted(t *testing.T) {
	net := mustNet(t, "tri", 3, []topology.Link{{A: 0, B: 1}, {A: 0, B: 2}, {A: 1, B: 2}})
	ud, _ := NewUpDown(net, 0)
	// A message at 2 destined to 1: in the up phase it may take the direct
	// same-level link 2→1 (up, since 1 < 2).
	hops := ud.NextHops(2, 1, false)
	found := false
	for _, h := range hops {
		if h.To == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("NextHops(2→1, up) = %v, want direct hop to 1", hops)
	}
	// Once descending, the up link 2→1 is forbidden; only down continuation
	// could be legal, and from 2 there is none that reaches 1 in one hop.
	for _, h := range ud.NextHops(2, 1, true) {
		if !h.Descending {
			t.Fatalf("descending message offered non-descending hop %v", h)
		}
		if ud.IsUp(2, h.To) {
			t.Fatalf("descending message offered up hop %v", h)
		}
	}
}

func TestPathLinksOnPathGraph(t *testing.T) {
	net := pathNet(t)
	ud, _ := NewUpDown(net, 0)
	links := ud.PathLinks(0, 3)
	if len(links) != 3 {
		t.Fatalf("PathLinks(0,3) = %v, want all 3 path links", links)
	}
	if ud.PathLinks(2, 2) != nil {
		t.Fatal("PathLinks(i,i) must be empty")
	}
}

func TestPathLinksSubsetOfNetworkLinks(t *testing.T) {
	net, err := topology.RandomIrregular(16, 3, rand.New(rand.NewSource(5)), topology.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ud, err := NewUpDown(net, -1)
	if err != nil {
		t.Fatal(err)
	}
	valid := map[topology.Link]bool{}
	for _, l := range net.Links() {
		valid[l] = true
	}
	for s := 0; s < 16; s++ {
		for tt := 0; tt < 16; tt++ {
			for _, l := range ud.PathLinks(s, tt) {
				if !valid[l] {
					t.Fatalf("PathLinks(%d,%d) returned non-network link %v", s, tt, l)
				}
			}
		}
	}
}

func TestShortestLegalPathsProperties(t *testing.T) {
	net, err := topology.RandomIrregular(12, 3, rand.New(rand.NewSource(8)), topology.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ud, err := NewUpDown(net, -1)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 12; s++ {
		for tt := 0; tt < 12; tt++ {
			paths := ud.ShortestLegalPaths(s, tt)
			if len(paths) == 0 {
				t.Fatalf("no legal path %d→%d in a connected network", s, tt)
			}
			want := ud.Distance(s, tt)
			for _, p := range paths {
				if len(p)-1 != want {
					t.Fatalf("path %v has length %d, want %d", p, len(p)-1, want)
				}
				if p[0] != s || p[len(p)-1] != tt {
					t.Fatalf("path %v does not run %d→%d", p, s, tt)
				}
				assertLegal(t, ud, p)
			}
		}
	}
}

func TestPathLinksMatchEnumeratedPaths(t *testing.T) {
	// PathLinks must equal exactly the union of links appearing in the
	// enumerated minimal legal routes.
	net, err := topology.RandomIrregular(12, 3, rand.New(rand.NewSource(48)), topology.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ud, err := NewUpDown(net, -1)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 12; s++ {
		for tt := 0; tt < 12; tt++ {
			want := map[topology.Link]bool{}
			for _, path := range ud.ShortestLegalPaths(s, tt) {
				for i := 1; i < len(path); i++ {
					want[topology.NormalizeLink(path[i-1], path[i])] = true
				}
			}
			got := map[topology.Link]bool{}
			for _, l := range ud.PathLinks(s, tt) {
				got[l] = true
			}
			if len(got) != len(want) {
				t.Fatalf("(%d,%d): PathLinks has %d links, enumeration %d", s, tt, len(got), len(want))
			}
			for l := range want {
				if !got[l] {
					t.Fatalf("(%d,%d): link %v in enumerated paths missing from PathLinks", s, tt, l)
				}
			}
		}
	}
}

func TestCountShortestLegalPaths(t *testing.T) {
	net, err := topology.RandomIrregular(14, 3, rand.New(rand.NewSource(44)), topology.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ud, err := NewUpDown(net, -1)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 14; s++ {
		for tt := 0; tt < 14; tt++ {
			want := len(ud.ShortestLegalPaths(s, tt))
			if got := ud.CountShortestLegalPaths(s, tt); got != want {
				t.Fatalf("Count(%d,%d) = %d, enumeration found %d", s, tt, got, want)
			}
		}
	}
}

func TestCountShortestLegalPathsDiamond(t *testing.T) {
	// Diamond rooted at 0: two minimal legal routes 0→3.
	net := mustNet(t, "diamond", 4, []topology.Link{{A: 0, B: 1}, {A: 0, B: 2}, {A: 1, B: 3}, {A: 2, B: 3}})
	ud, err := NewUpDown(net, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := ud.CountShortestLegalPaths(0, 3); got != 2 {
		t.Fatalf("diamond count = %d, want 2", got)
	}
	if got := ud.CountShortestLegalPaths(1, 1); got != 1 {
		t.Fatalf("self count = %d, want 1", got)
	}
}

// Property: over random topologies, legal distance is symmetric-free (may
// be asymmetric!) but always >= hop distance, and hops from NextHops always
// reduce remaining legal distance by one.
func TestQuickUpDownInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		net, err := topology.RandomIrregular(12, 3, rng, topology.Config{})
		if err != nil {
			return false
		}
		ud, err := NewUpDown(net, -1)
		if err != nil {
			return false
		}
		sp := NewShortestPath(net)
		for s := 0; s < 12; s++ {
			for t := 0; t < 12; t++ {
				if ud.Distance(s, t) < sp.Distance(s, t) {
					return false // legal routes cannot beat BFS
				}
				if s == t {
					continue
				}
				for _, h := range ud.NextHops(s, t, false) {
					// Following an admissible hop must strictly reduce the
					// legal remaining distance for the *phase-aware* walk:
					// re-walk greedily to the destination and count hops.
					if !walkTerminates(ud, s, t) {
						return false
					}
					_ = h
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// walkTerminates greedily follows first admissible hops and checks the walk
// reaches t in exactly Distance(s,t) hops.
func walkTerminates(ud *UpDown, s, t int) bool {
	cur, down := s, false
	for steps := 0; steps <= ud.Distance(s, t); steps++ {
		if cur == t {
			return steps == ud.Distance(s, t)
		}
		hops := ud.NextHops(cur, t, down)
		if len(hops) == 0 {
			return false
		}
		cur, down = hops[0].To, hops[0].Descending
	}
	return cur == t
}
