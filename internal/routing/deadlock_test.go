package routing

import (
	"math/rand"
	"testing"

	"commsched/internal/topology"
)

func TestUpDownDependencyGraphAcyclic(t *testing.T) {
	// The core safety property: up*/down* routing is deadlock-free on
	// every topology — its channel dependency graph is acyclic.
	nets := []*topology.Network{}
	for _, seed := range []int64{1, 2, 3, 4} {
		net, err := topology.RandomIrregular(16, 3, rand.New(rand.NewSource(seed)), topology.Config{})
		if err != nil {
			t.Fatal(err)
		}
		nets = append(nets, net)
	}
	ring, err := topology.Ring(8, topology.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rings, err := topology.InterconnectedRings(4, 6, 1, topology.Config{})
	if err != nil {
		t.Fatal(err)
	}
	torus, err := topology.Torus2D(3, 3, topology.Config{})
	if err != nil {
		t.Fatal(err)
	}
	nets = append(nets, ring, rings, torus)

	for _, net := range nets {
		ud, err := NewUpDown(net, -1)
		if err != nil {
			t.Fatalf("%s: %v", net.Name(), err)
		}
		g := ud.ChannelDependencyGraph()
		if g.HasCycle() {
			t.Fatalf("%s: up*/down* dependency graph has a cycle: %v", net.Name(), g.Cycle())
		}
		if g.Cycle() != nil {
			t.Fatalf("%s: Cycle() disagrees with HasCycle()", net.Name())
		}
		if g.Dependencies() == 0 {
			t.Fatalf("%s: empty dependency graph (construction bug)", net.Name())
		}
	}
}

func TestShortestPathDependencyGraphCyclicOnRing(t *testing.T) {
	// Unrestricted minimal routing deadlocks on rings: messages chasing
	// each other around the cycle. The dependency graph must expose this.
	net, err := topology.Ring(6, topology.Config{})
	if err != nil {
		t.Fatal(err)
	}
	sp := NewShortestPath(net)
	g := sp.ChannelDependencyGraph()
	if !g.HasCycle() {
		t.Fatal("minimal routing on a ring reported deadlock-free — dependency construction wrong")
	}
	cycle := g.Cycle()
	if len(cycle) < 3 {
		t.Fatalf("degenerate cycle: %v", cycle)
	}
	if cycle[0] != cycle[len(cycle)-1] {
		t.Fatalf("cycle not closed: %v", cycle)
	}
	// Consecutive channels must chain (c1.To == c2.From).
	for i := 1; i < len(cycle); i++ {
		if cycle[i-1].To != cycle[i].From {
			t.Fatalf("cycle does not chain at %d: %v", i, cycle)
		}
	}
}

func TestShortestPathDependencyGraphAcyclicOnTree(t *testing.T) {
	// On a tree there is a single path per pair and no cyclic waiting.
	net := mustNet(t, "tree", 6, []topology.Link{
		{A: 0, B: 1}, {A: 0, B: 2}, {A: 1, B: 3}, {A: 1, B: 4}, {A: 2, B: 5},
	})
	sp := NewShortestPath(net)
	if sp.ChannelDependencyGraph().HasCycle() {
		t.Fatal("tree routing reported a dependency cycle")
	}
}

func TestDepGraphChannelsCopy(t *testing.T) {
	net, err := topology.Ring(4, topology.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ud, err := NewUpDown(net, 0)
	if err != nil {
		t.Fatal(err)
	}
	g := ud.ChannelDependencyGraph()
	cs := g.Channels()
	if len(cs) != 8 { // 4 links × 2 directions
		t.Fatalf("channels = %d, want 8", len(cs))
	}
	cs[0] = Channel{99, 99}
	if g.Channels()[0] == (Channel{99, 99}) {
		t.Fatal("Channels exposed internal storage")
	}
}
