package routing_test

import (
	"math/rand"
	"strings"
	"testing"

	"commsched/internal/fault"
	"commsched/internal/routing"
	"commsched/internal/topology"
)

func TestNewUpDownDisconnectedError(t *testing.T) {
	// Two triangles with no link between them.
	links := []topology.Link{
		{A: 0, B: 1}, {A: 1, B: 2}, {A: 0, B: 2},
		{A: 3, B: 4}, {A: 4, B: 5}, {A: 3, B: 5},
	}
	net, err := topology.New("two-islands", 6, links, topology.Config{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = routing.NewUpDown(net, -1)
	if err == nil {
		t.Fatal("up*/down* derived on a partitioned network")
	}
	msg := err.Error()
	for _, want := range []string{"partitioned", "two-islands", "3", "4", "5"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("error %q missing %q", msg, want)
		}
	}
}

func TestVerifyDeadlockFreeHealthy(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	net, err := topology.RandomIrregular(16, 3, rng, topology.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ud, err := routing.NewUpDown(net, -1)
	if err != nil {
		t.Fatal(err)
	}
	if err := ud.VerifyDeadlockFree(); err != nil {
		t.Fatal(err)
	}
}

// TestDegradedTopologiesStayDeadlockFree re-derives up*/down* on every
// degraded-but-connected topology produced by seeded fault plans (link
// failures, switch failures, and mixes) and checks the channel dependency
// graph stays acyclic.
func TestDegradedTopologiesStayDeadlockFree(t *testing.T) {
	rng := rand.New(rand.NewSource(2000))
	net, err := topology.RandomIrregular(16, 3, rng, topology.Config{})
	if err != nil {
		t.Fatal(err)
	}
	specs := []fault.PlanSpec{
		{LinkFailures: 1},
		{LinkFailures: 2},
		{LinkFailures: 3},
		{SwitchFailures: 1},
		{SwitchFailures: 2},
		{LinkFailures: 2, SwitchFailures: 1},
	}
	for seed := int64(0); seed < 5; seed++ {
		for _, spec := range specs {
			planRng := rand.New(rand.NewSource(1000 + seed))
			plan, err := fault.RandomPlan(net, spec, planRng)
			if err != nil {
				t.Fatalf("seed %d spec %+v: %v", seed, spec, err)
			}
			d, err := fault.Apply(net, plan)
			if err != nil {
				t.Fatalf("seed %d plan %s: %v", seed, plan.Name, err)
			}
			ud, err := routing.NewUpDown(d.Net, -1)
			if err != nil {
				t.Fatalf("seed %d plan %s: re-derivation failed: %v", seed, plan.Name, err)
			}
			if err := ud.VerifyDeadlockFree(); err != nil {
				t.Fatalf("seed %d plan %s: %v", seed, plan.Name, err)
			}
			// Every surviving pair must still be routable.
			n := d.Net.Switches()
			for s := 0; s < n; s++ {
				for u := 0; u < n; u++ {
					if s != u && ud.Distance(s, u) <= 0 {
						t.Fatalf("seed %d plan %s: no legal route %d→%d", seed, plan.Name, s, u)
					}
				}
			}
		}
	}
}

// TestRootReElection covers the degraded-mode corner where the spanning
// tree root dies: the caller re-elects by passing -1, and the new root
// must be a live switch of the degraded net.
func TestRootReElection(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	net, err := topology.RandomIrregular(16, 3, rng, topology.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ud, err := routing.NewUpDown(net, -1)
	if err != nil {
		t.Fatal(err)
	}
	oldRoot := ud.Root()
	plan := fault.Plan{Name: "kill-root", Events: []fault.Event{
		{Kind: fault.SwitchDown, Switch: oldRoot},
	}}
	d, err := fault.Apply(net, plan)
	if err != nil {
		t.Skipf("root removal partitions this instance: %v", err)
	}
	ud2, err := routing.NewUpDown(d.Net, -1)
	if err != nil {
		t.Fatal(err)
	}
	if r := ud2.Root(); r < 0 || r >= d.Net.Switches() {
		t.Fatalf("re-elected root %d out of range", r)
	}
	if err := ud2.VerifyDeadlockFree(); err != nil {
		t.Fatal(err)
	}
}
