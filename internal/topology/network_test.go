package topology

import (
	"math/rand"
	"testing"
)

func mustNew(t *testing.T, name string, n int, links []Link, cfg Config) *Network {
	t.Helper()
	net, err := New(name, n, links, cfg)
	if err != nil {
		t.Fatalf("New(%s): %v", name, err)
	}
	return net
}

func triangle(t *testing.T) *Network {
	return mustNew(t, "tri", 3, []Link{{0, 1}, {1, 2}, {0, 2}}, Config{})
}

func TestNewDefaults(t *testing.T) {
	n := triangle(t)
	if n.Ports() != DefaultPorts || n.HostsPerSwitch() != DefaultHostsPerSwitch {
		t.Fatalf("defaults not applied: ports=%d hosts=%d", n.Ports(), n.HostsPerSwitch())
	}
	if n.Hosts() != 12 {
		t.Fatalf("Hosts() = %d, want 12", n.Hosts())
	}
	if n.Name() != "tri" {
		t.Fatalf("Name() = %q", n.Name())
	}
}

func TestNewRejectsSelfLink(t *testing.T) {
	if _, err := New("bad", 2, []Link{{0, 0}}, Config{}); err == nil {
		t.Fatal("expected error for self link")
	}
}

func TestNewRejectsDuplicateLink(t *testing.T) {
	if _, err := New("bad", 2, []Link{{0, 1}, {1, 0}}, Config{}); err == nil {
		t.Fatal("expected error for duplicate link (paper: single link between neighbors)")
	}
}

func TestNewRejectsOutOfRange(t *testing.T) {
	if _, err := New("bad", 2, []Link{{0, 5}}, Config{}); err == nil {
		t.Fatal("expected error for out-of-range switch id")
	}
}

func TestNewRejectsZeroSwitches(t *testing.T) {
	if _, err := New("bad", 0, nil, Config{}); err == nil {
		t.Fatal("expected error for zero switches")
	}
}

func TestNewRejectsPortOverflow(t *testing.T) {
	// 8-port switch with 4 hosts leaves 4 ports; degree 5 must fail.
	links := []Link{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}}
	if _, err := New("bad", 6, links, Config{}); err == nil {
		t.Fatal("expected error for degree exceeding free ports")
	}
	// With more ports it becomes legal.
	if _, err := New("ok", 6, links, Config{Ports: 16}); err != nil {
		t.Fatalf("16-port switch should allow degree 5: %v", err)
	}
}

func TestLinksCanonicalAndSorted(t *testing.T) {
	n := mustNew(t, "x", 4, []Link{{3, 2}, {1, 0}, {2, 0}}, Config{})
	ls := n.Links()
	want := []Link{{0, 1}, {0, 2}, {2, 3}}
	if len(ls) != len(want) {
		t.Fatalf("links = %v, want %v", ls, want)
	}
	for i := range want {
		if ls[i] != want[i] {
			t.Fatalf("links = %v, want %v", ls, want)
		}
	}
}

func TestLinksReturnsCopy(t *testing.T) {
	n := triangle(t)
	ls := n.Links()
	ls[0] = Link{9, 9}
	if n.Links()[0] == (Link{9, 9}) {
		t.Fatal("Links() exposed internal storage")
	}
}

func TestNeighborsAndDegree(t *testing.T) {
	n := mustNew(t, "path", 3, []Link{{0, 1}, {1, 2}}, Config{})
	if d := n.Degree(1); d != 2 {
		t.Fatalf("Degree(1) = %d, want 2", d)
	}
	nb := n.Neighbors(1)
	if len(nb) != 2 || nb[0] != 0 || nb[1] != 2 {
		t.Fatalf("Neighbors(1) = %v, want [0 2]", nb)
	}
}

func TestHasLink(t *testing.T) {
	n := triangle(t)
	if !n.HasLink(0, 2) || !n.HasLink(2, 0) {
		t.Fatal("HasLink should be symmetric and true for existing links")
	}
	if n.HasLink(0, 0) {
		t.Fatal("HasLink(i,i) must be false")
	}
	p := mustNew(t, "path", 3, []Link{{0, 1}, {1, 2}}, Config{})
	if p.HasLink(0, 2) {
		t.Fatal("HasLink true for absent link")
	}
}

func TestHostSwitchMapping(t *testing.T) {
	n := triangle(t) // 4 hosts per switch
	cases := []struct{ host, sw int }{{0, 0}, {3, 0}, {4, 1}, {11, 2}}
	for _, c := range cases {
		if got := n.HostSwitch(c.host); got != c.sw {
			t.Fatalf("HostSwitch(%d) = %d, want %d", c.host, got, c.sw)
		}
	}
	hosts := n.SwitchHosts(1)
	if len(hosts) != 4 || hosts[0] != 4 || hosts[3] != 7 {
		t.Fatalf("SwitchHosts(1) = %v, want [4 5 6 7]", hosts)
	}
}

func TestHostSwitchPanicsOutOfRange(t *testing.T) {
	n := triangle(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range host")
		}
	}()
	n.HostSwitch(12)
}

func TestBFSDistances(t *testing.T) {
	n := mustNew(t, "path", 4, []Link{{0, 1}, {1, 2}, {2, 3}}, Config{})
	d := n.BFSDistances(0)
	want := []int{0, 1, 2, 3}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("BFSDistances(0) = %v, want %v", d, want)
		}
	}
}

func TestConnectedAndDiameter(t *testing.T) {
	n := mustNew(t, "path", 4, []Link{{0, 1}, {1, 2}, {2, 3}}, Config{})
	if !n.Connected() {
		t.Fatal("path should be connected")
	}
	if n.Diameter() != 3 {
		t.Fatalf("Diameter = %d, want 3", n.Diameter())
	}
	disc := mustNew(t, "disc", 4, []Link{{0, 1}, {2, 3}}, Config{})
	if disc.Connected() {
		t.Fatal("disconnected graph reported connected")
	}
	if disc.Diameter() != -1 {
		t.Fatalf("Diameter of disconnected = %d, want -1", disc.Diameter())
	}
}

func TestAverageDegreeAndHistogram(t *testing.T) {
	n := triangle(t)
	if n.AverageDegree() != 2 {
		t.Fatalf("AverageDegree = %v, want 2", n.AverageDegree())
	}
	h := n.DegreeHistogram()
	if h[2] != 3 || len(h) != 1 {
		t.Fatalf("DegreeHistogram = %v, want map[2:3]", h)
	}
}

func TestCutLinks(t *testing.T) {
	n := mustNew(t, "path", 4, []Link{{0, 1}, {1, 2}, {2, 3}}, Config{})
	if got := n.CutLinks([]int{0, 0, 1, 1}); got != 1 {
		t.Fatalf("CutLinks = %d, want 1", got)
	}
	if got := n.CutLinks([]int{0, 1, 0, 1}); got != 3 {
		t.Fatalf("CutLinks = %d, want 3", got)
	}
	if got := n.CutLinks([]int{7, 7, 7, 7}); got != 0 {
		t.Fatalf("CutLinks = %d, want 0", got)
	}
}

func TestEstimateBisectionWidthRing(t *testing.T) {
	// A ring's bisection width is exactly 2 and the estimator's greedy
	// descent finds it reliably.
	net, err := Ring(10, Config{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	if got := net.EstimateBisectionWidth(rng, 5); got != 2 {
		t.Fatalf("ring bisection estimate = %d, want 2", got)
	}
}

func TestEstimateBisectionWidthBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	net, err := RandomIrregular(16, 3, rng, Config{})
	if err != nil {
		t.Fatal(err)
	}
	got := net.EstimateBisectionWidth(rng, 3)
	if got < 1 || got > net.NumLinks() {
		t.Fatalf("bisection estimate %d out of (0,%d]", got, net.NumLinks())
	}
	// Tiny networks.
	single := mustNew(t, "one", 1, nil, Config{})
	if single.EstimateBisectionWidth(rng, 1) != 0 {
		t.Fatal("single switch bisection must be 0")
	}
}

func TestCutLinksPanicsOnBadLabeling(t *testing.T) {
	n := triangle(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for short labeling")
		}
	}()
	n.CutLinks([]int{0, 1})
}

func TestNormalizeLink(t *testing.T) {
	if NormalizeLink(5, 2) != (Link{2, 5}) {
		t.Fatal("NormalizeLink did not order endpoints")
	}
	if NormalizeLink(2, 5) != (Link{2, 5}) {
		t.Fatal("NormalizeLink changed ordered endpoints")
	}
}
