// Package topology models the switch-based interconnection networks the
// paper evaluates: irregular random topologies built from fixed-size
// switches with workstations attached, the specially designed
// rings-of-switches topology of Figure 4, and a few regular topologies
// (ring, mesh, torus, hypercube) used to show the technique applies to
// regular networks too.
//
// Terminology follows the paper: a "node" is a switching element; each
// switch has a fixed number of ports, some connected to hosts
// (workstations) and some to other switches. Two neighboring switches are
// connected by a single link and links are bidirectional (full duplex).
package topology

import (
	"fmt"
	"math/rand"
	"sort"
)

// Default switch parameters used throughout the paper's evaluation
// (Section 5.1): 8-port switches with 4 workstations attached, leaving 4
// ports for inter-switch links of which 3 are used by the generator.
const (
	DefaultPorts          = 8
	DefaultHostsPerSwitch = 4
	DefaultSwitchDegree   = 3
)

// Link is an undirected link between two switches. Invariant: A < B.
type Link struct {
	A, B int
}

// NormalizeLink returns the canonical (A<B) form of a link between u and v.
func NormalizeLink(u, v int) Link {
	if u > v {
		u, v = v, u
	}
	return Link{A: u, B: v}
}

// Network is an immutable switch-level interconnection network.
type Network struct {
	name           string
	switches       int
	hostsPerSwitch int
	ports          int
	links          []Link  // sorted, canonical, no duplicates
	adj            [][]int // adjacency lists, each sorted ascending
}

// Config carries the per-switch parameters of a network.
type Config struct {
	// Ports is the total port count of every switch (default 8).
	Ports int
	// HostsPerSwitch is the number of workstations attached to every
	// switch (default 4).
	HostsPerSwitch int
}

func (c Config) withDefaults() Config {
	if c.Ports == 0 {
		c.Ports = DefaultPorts
	}
	if c.HostsPerSwitch == 0 {
		c.HostsPerSwitch = DefaultHostsPerSwitch
	}
	return c
}

// New builds a network with the given number of switches and inter-switch
// links. It validates the paper's structural constraints:
//   - switch indices in range,
//   - no self links,
//   - a single link between any pair of neighboring switches,
//   - switch degree + hosts must fit in the port count.
func New(name string, switches int, links []Link, cfg Config) (*Network, error) {
	cfg = cfg.withDefaults()
	if switches <= 0 {
		return nil, fmt.Errorf("topology: network needs at least one switch, got %d", switches)
	}
	if cfg.HostsPerSwitch < 0 || cfg.Ports <= 0 {
		return nil, fmt.Errorf("topology: invalid config %+v", cfg)
	}
	seen := make(map[Link]bool, len(links))
	canon := make([]Link, 0, len(links))
	deg := make([]int, switches)
	for _, l := range links {
		if l.A == l.B {
			return nil, fmt.Errorf("topology: self link at switch %d", l.A)
		}
		if l.A < 0 || l.A >= switches || l.B < 0 || l.B >= switches {
			return nil, fmt.Errorf("topology: link %v out of range (switches=%d)", l, switches)
		}
		c := NormalizeLink(l.A, l.B)
		if seen[c] {
			return nil, fmt.Errorf("topology: duplicate link between switches %d and %d", c.A, c.B)
		}
		seen[c] = true
		canon = append(canon, c)
		deg[c.A]++
		deg[c.B]++
	}
	maxDeg := cfg.Ports - cfg.HostsPerSwitch
	for s, d := range deg {
		if d > maxDeg {
			return nil, fmt.Errorf("topology: switch %d has degree %d, exceeding the %d ports left by %d hosts on a %d-port switch",
				s, d, maxDeg, cfg.HostsPerSwitch, cfg.Ports)
		}
	}
	sort.Slice(canon, func(i, j int) bool {
		if canon[i].A != canon[j].A {
			return canon[i].A < canon[j].A
		}
		return canon[i].B < canon[j].B
	})
	adj := make([][]int, switches)
	for _, l := range canon {
		adj[l.A] = append(adj[l.A], l.B)
		adj[l.B] = append(adj[l.B], l.A)
	}
	for _, ns := range adj {
		sort.Ints(ns)
	}
	return &Network{
		name:           name,
		switches:       switches,
		hostsPerSwitch: cfg.HostsPerSwitch,
		ports:          cfg.Ports,
		links:          canon,
		adj:            adj,
	}, nil
}

// Name returns the human-readable topology name ("irregular-16/seed42", …).
func (n *Network) Name() string { return n.name }

// Switches returns the number of switching elements.
func (n *Network) Switches() int { return n.switches }

// Hosts returns the total number of workstations in the network.
func (n *Network) Hosts() int { return n.switches * n.hostsPerSwitch }

// HostsPerSwitch returns the number of workstations attached to each switch.
func (n *Network) HostsPerSwitch() int { return n.hostsPerSwitch }

// Ports returns the port count of each switch.
func (n *Network) Ports() int { return n.ports }

// Links returns a copy of the canonical link list.
func (n *Network) Links() []Link {
	out := make([]Link, len(n.links))
	copy(out, n.links)
	return out
}

// NumLinks returns the number of inter-switch links.
func (n *Network) NumLinks() int { return len(n.links) }

// Neighbors returns the sorted neighbor list of switch s. The returned
// slice must not be modified.
func (n *Network) Neighbors(s int) []int { return n.adj[s] }

// Degree returns the number of inter-switch links at switch s.
func (n *Network) Degree(s int) int { return len(n.adj[s]) }

// HasLink reports whether switches u and v are directly connected.
func (n *Network) HasLink(u, v int) bool {
	if u == v {
		return false
	}
	for _, w := range n.adj[u] {
		if w == v {
			return true
		}
		if w > v {
			break
		}
	}
	return false
}

// HostSwitch returns the switch a workstation is attached to. Hosts are
// numbered so that switch s carries hosts [s*H, (s+1)*H).
func (n *Network) HostSwitch(host int) int {
	if host < 0 || host >= n.Hosts() {
		panic(fmt.Sprintf("topology: host %d out of range [0,%d)", host, n.Hosts()))
	}
	return host / n.hostsPerSwitch
}

// SwitchHosts returns the workstation IDs attached to switch s.
func (n *Network) SwitchHosts(s int) []int {
	if s < 0 || s >= n.switches {
		panic(fmt.Sprintf("topology: switch %d out of range [0,%d)", s, n.switches))
	}
	out := make([]int, n.hostsPerSwitch)
	for i := range out {
		out[i] = s*n.hostsPerSwitch + i
	}
	return out
}

// BFSDistances returns hop distances from src to every switch (-1 where
// unreachable).
func (n *Network) BFSDistances(src int) []int {
	dist := make([]int, n.switches)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range n.adj[u] {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// Connected reports whether every switch is reachable from switch 0.
func (n *Network) Connected() bool {
	for _, d := range n.BFSDistances(0) {
		if d < 0 {
			return false
		}
	}
	return true
}

// Diameter returns the longest shortest-path hop distance between any pair
// of switches, or -1 if the network is disconnected.
func (n *Network) Diameter() int {
	diam := 0
	for s := 0; s < n.switches; s++ {
		for _, d := range n.BFSDistances(s) {
			if d < 0 {
				return -1
			}
			if d > diam {
				diam = d
			}
		}
	}
	return diam
}

// AverageDegree returns the mean inter-switch degree.
func (n *Network) AverageDegree() float64 {
	if n.switches == 0 {
		return 0
	}
	return 2 * float64(len(n.links)) / float64(n.switches)
}

// DegreeHistogram returns a map degree -> number of switches with that
// degree.
func (n *Network) DegreeHistogram() map[int]int {
	h := make(map[int]int)
	for s := 0; s < n.switches; s++ {
		h[len(n.adj[s])]++
	}
	return h
}

// EstimateBisectionWidth returns an upper-bound estimate of the bisection
// width: the minimum cut over `trials` random balanced bipartitions, each
// improved by greedy single-swap descent. Exact bisection width is
// NP-hard; this estimator is the standard quick proxy used when
// characterizing interconnection networks.
func (n *Network) EstimateBisectionWidth(rng *rand.Rand, trials int) int {
	if n.switches < 2 {
		return 0
	}
	if trials < 1 {
		trials = 1
	}
	best := len(n.links) + 1
	half := n.switches / 2
	for trial := 0; trial < trials; trial++ {
		perm := rng.Perm(n.switches)
		side := make([]int, n.switches)
		for i, s := range perm {
			if i < half {
				side[s] = 1
			}
		}
		cut := n.CutLinks(side)
		// Greedy descent: best swap of one switch from each side.
		improved := true
		for improved {
			improved = false
			for u := 0; u < n.switches && !improved; u++ {
				for v := u + 1; v < n.switches; v++ {
					if side[u] == side[v] {
						continue
					}
					side[u], side[v] = side[v], side[u]
					if c := n.CutLinks(side); c < cut {
						cut = c
						improved = true
						break
					}
					side[u], side[v] = side[v], side[u]
				}
			}
		}
		if cut < best {
			best = cut
		}
	}
	return best
}

// CutLinks counts the links whose endpoints carry different labels under
// the given switch labeling (e.g. a cluster assignment) — the raw
// topological cut a mapping induces. It panics when the labeling does not
// cover every switch.
func (n *Network) CutLinks(labels []int) int {
	if len(labels) != n.switches {
		panic(fmt.Sprintf("topology: labeling covers %d switches, network has %d", len(labels), n.switches))
	}
	cut := 0
	for _, l := range n.links {
		if labels[l.A] != labels[l.B] {
			cut++
		}
	}
	return cut
}
