package topology

import "fmt"

// InterconnectedRings builds the specially designed topology of the
// paper's Figure 4 generalized to `rings` rings of `size` switches each:
// every ring is a cycle, and consecutive rings (in a ring-of-rings
// arrangement) are joined by `bridges` links. With the default 8-port /
// 4-host switches each switch has 4 free ports, so ring degree 2 plus up
// to 2 bridge endpoints fits comfortably.
//
// The paper's instance is InterconnectedRings(4, 6, 1, cfg): a 24-switch
// network of four interconnected rings of six nodes whose natural 4-way
// partition is the four rings.
func InterconnectedRings(rings, size, bridges int, cfg Config) (*Network, error) {
	if rings < 2 || size < 3 {
		return nil, fmt.Errorf("topology: InterconnectedRings needs >=2 rings of >=3 switches, got %dx%d", rings, size)
	}
	if bridges < 1 || bridges > size/2 {
		return nil, fmt.Errorf("topology: bridges must be in [1,%d], got %d", size/2, bridges)
	}
	n := rings * size
	id := func(ring, pos int) int { return ring*size + pos%size }
	var links []Link
	// Ring cycles.
	for r := 0; r < rings; r++ {
		for p := 0; p < size; p++ {
			links = append(links, NormalizeLink(id(r, p), id(r, p+1)))
		}
	}
	// Bridges between consecutive rings, spread around each ring so bridge
	// endpoints do not collide between the "previous" and "next" side.
	for r := 0; r < rings; r++ {
		next := (r + 1) % rings
		for b := 0; b < bridges; b++ {
			from := id(r, b*2)    // even positions host outgoing bridges
			to := id(next, b*2+1) // odd positions host incoming bridges
			links = append(links, NormalizeLink(from, to))
		}
	}
	name := fmt.Sprintf("rings-%dx%d", rings, size)
	return New(name, n, links, cfg)
}

// RingClusters returns the switch index sets of each ring of an
// InterconnectedRings network — the ground-truth partition the scheduling
// technique is expected to rediscover (paper Figure 4).
func RingClusters(rings, size int) [][]int {
	out := make([][]int, rings)
	for r := 0; r < rings; r++ {
		ring := make([]int, size)
		for p := 0; p < size; p++ {
			ring[p] = r*size + p
		}
		out[r] = ring
	}
	return out
}

// Ring builds a simple cycle of n switches.
func Ring(n int, cfg Config) (*Network, error) {
	if n < 3 {
		return nil, fmt.Errorf("topology: Ring needs >=3 switches, got %d", n)
	}
	links := make([]Link, n)
	for i := 0; i < n; i++ {
		links[i] = NormalizeLink(i, (i+1)%n)
	}
	return New(fmt.Sprintf("ring-%d", n), n, links, cfg)
}

// Mesh2D builds a rows×cols 2-D mesh.
func Mesh2D(rows, cols int, cfg Config) (*Network, error) {
	if rows < 1 || cols < 1 || rows*cols < 2 {
		return nil, fmt.Errorf("topology: Mesh2D needs at least 2 switches, got %dx%d", rows, cols)
	}
	var links []Link
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				links = append(links, NormalizeLink(id(r, c), id(r, c+1)))
			}
			if r+1 < rows {
				links = append(links, NormalizeLink(id(r, c), id(r+1, c)))
			}
		}
	}
	return New(fmt.Sprintf("mesh-%dx%d", rows, cols), rows*cols, links, cfg)
}

// Torus2D builds a rows×cols 2-D torus (mesh with wraparound links).
// Dimensions below 3 would create duplicate wrap links, so both must be >=3.
func Torus2D(rows, cols int, cfg Config) (*Network, error) {
	if rows < 3 || cols < 3 {
		return nil, fmt.Errorf("topology: Torus2D needs dimensions >=3, got %dx%d", rows, cols)
	}
	var links []Link
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			links = append(links, NormalizeLink(id(r, c), id(r, (c+1)%cols)))
			links = append(links, NormalizeLink(id(r, c), id((r+1)%rows, c)))
		}
	}
	return New(fmt.Sprintf("torus-%dx%d", rows, cols), rows*cols, links, cfg)
}

// Hypercube builds a dim-dimensional binary hypercube (2^dim switches).
// Note that dim > Ports-HostsPerSwitch would not be buildable with the
// default switch size; the constructor reports that via New's validation.
func Hypercube(dim int, cfg Config) (*Network, error) {
	if dim < 1 || dim > 16 {
		return nil, fmt.Errorf("topology: Hypercube dimension must be in [1,16], got %d", dim)
	}
	n := 1 << dim
	var links []Link
	for v := 0; v < n; v++ {
		for b := 0; b < dim; b++ {
			w := v ^ (1 << b)
			if v < w {
				links = append(links, Link{A: v, B: w})
			}
		}
	}
	return New(fmt.Sprintf("hypercube-%d", dim), n, links, cfg)
}
