package topology

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRandomIrregularPaperConstraints(t *testing.T) {
	// The paper's sizes: 16 to 24 switches, degree 3, 8-port switches with
	// 4 workstations each.
	for _, n := range []int{16, 18, 20, 22, 24} {
		rng := rand.New(rand.NewSource(int64(n)))
		net, err := RandomIrregular(n, DefaultSwitchDegree, rng, Config{})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if net.Switches() != n {
			t.Fatalf("n=%d: Switches() = %d", n, net.Switches())
		}
		if !net.Connected() {
			t.Fatalf("n=%d: not connected", n)
		}
		for s := 0; s < n; s++ {
			if net.Degree(s) != 3 {
				t.Fatalf("n=%d: switch %d has degree %d, want 3 (paper: 3 of 4 free ports used)", n, s, net.Degree(s))
			}
		}
		if net.Hosts() != 4*n {
			t.Fatalf("n=%d: Hosts() = %d, want %d", n, net.Hosts(), 4*n)
		}
	}
}

func TestRandomIrregularDeterministic(t *testing.T) {
	a, err := RandomIrregular(16, 3, rand.New(rand.NewSource(42)), Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomIrregular(16, 3, rand.New(rand.NewSource(42)), Config{})
	if err != nil {
		t.Fatal(err)
	}
	la, lb := a.Links(), b.Links()
	if len(la) != len(lb) {
		t.Fatal("same seed produced different link counts")
	}
	for i := range la {
		if la[i] != lb[i] {
			t.Fatal("same seed produced different topologies")
		}
	}
}

func TestRandomIrregularDifferentSeedsDiffer(t *testing.T) {
	a, _ := RandomIrregular(16, 3, rand.New(rand.NewSource(1)), Config{})
	b, _ := RandomIrregular(16, 3, rand.New(rand.NewSource(2)), Config{})
	la, lb := a.Links(), b.Links()
	same := len(la) == len(lb)
	if same {
		for i := range la {
			if la[i] != lb[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical topologies (suspicious)")
	}
}

func TestRandomIrregularErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := RandomIrregular(16, 1, rng, Config{}); err == nil {
		t.Fatal("degree 1 must be rejected")
	}
	if _, err := RandomIrregular(4, 5, rng, Config{Ports: 16}); err == nil {
		t.Fatal("degree >= switches must be rejected")
	}
	if _, err := RandomIrregular(15, 3, rng, Config{}); err == nil {
		t.Fatal("odd switches x odd degree must be rejected")
	}
	if _, err := RandomIrregular(16, 5, rng, Config{}); err == nil {
		t.Fatal("degree exceeding free ports must be rejected")
	}
}

func TestRandomIrregularEvenDegree(t *testing.T) {
	// Degree 4 uses all four free ports; also covers odd switch count.
	net, err := RandomIrregular(15, 4, rand.New(rand.NewSource(3)), Config{})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < net.Switches(); s++ {
		if net.Degree(s) != 4 {
			t.Fatalf("switch %d degree = %d, want 4", s, net.Degree(s))
		}
	}
	if !net.Connected() {
		t.Fatal("not connected")
	}
}

// Property: for many seeds the generator keeps every invariant the paper
// imposes (regular degree, simple graph, connected).
func TestQuickRandomIrregularInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sizes := []int{8, 12, 16, 20, 24}
		n := sizes[rng.Intn(len(sizes))]
		net, err := RandomIrregular(n, 3, rng, Config{})
		if err != nil {
			return false
		}
		if !net.Connected() {
			return false
		}
		seen := map[Link]bool{}
		for _, l := range net.Links() {
			if l.A >= l.B || seen[l] {
				return false
			}
			seen[l] = true
		}
		for s := 0; s < n; s++ {
			if net.Degree(s) != 3 {
				return false
			}
		}
		return len(net.Links()) == 3*n/2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
