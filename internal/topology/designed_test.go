package topology

import "testing"

func TestInterconnectedRingsPaperInstance(t *testing.T) {
	// Figure 4's topology: 4 interconnected rings of 6 switches.
	net, err := InterconnectedRings(4, 6, 1, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if net.Switches() != 24 {
		t.Fatalf("Switches() = %d, want 24", net.Switches())
	}
	if !net.Connected() {
		t.Fatal("rings network not connected")
	}
	// Every switch participates in its ring (degree >= 2) and fits the
	// 4-free-port budget.
	for s := 0; s < 24; s++ {
		if d := net.Degree(s); d < 2 || d > 4 {
			t.Fatalf("switch %d degree = %d, want within [2,4]", s, d)
		}
	}
	// Each ring must be internally connected using only ring-internal links.
	for r, ring := range RingClusters(4, 6) {
		inRing := map[int]bool{}
		for _, s := range ring {
			inRing[s] = true
		}
		for _, s := range ring {
			cnt := 0
			for _, nb := range net.Neighbors(s) {
				if inRing[nb] {
					cnt++
				}
			}
			if cnt != 2 {
				t.Fatalf("ring %d switch %d has %d intra-ring neighbors, want 2", r, s, cnt)
			}
		}
	}
}

func TestInterconnectedRingsBridgeCount(t *testing.T) {
	net, err := InterconnectedRings(4, 6, 2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// 4 rings x 6 ring links + 4 x 2 bridges = 32 links.
	if got := net.NumLinks(); got != 32 {
		t.Fatalf("NumLinks = %d, want 32", got)
	}
}

func TestInterconnectedRingsErrors(t *testing.T) {
	if _, err := InterconnectedRings(1, 6, 1, Config{}); err == nil {
		t.Fatal("expected error for single ring")
	}
	if _, err := InterconnectedRings(4, 2, 1, Config{}); err == nil {
		t.Fatal("expected error for tiny rings")
	}
	if _, err := InterconnectedRings(4, 6, 0, Config{}); err == nil {
		t.Fatal("expected error for zero bridges")
	}
	if _, err := InterconnectedRings(4, 6, 4, Config{}); err == nil {
		t.Fatal("expected error for too many bridges")
	}
}

func TestRingClusters(t *testing.T) {
	cs := RingClusters(2, 3)
	if len(cs) != 2 || len(cs[0]) != 3 {
		t.Fatalf("RingClusters shape wrong: %v", cs)
	}
	if cs[1][0] != 3 || cs[1][2] != 5 {
		t.Fatalf("second ring = %v, want [3 4 5]", cs[1])
	}
}

func TestRing(t *testing.T) {
	net, err := Ring(5, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if net.NumLinks() != 5 || !net.Connected() {
		t.Fatalf("ring-5: links=%d connected=%v", net.NumLinks(), net.Connected())
	}
	if net.Diameter() != 2 {
		t.Fatalf("ring-5 diameter = %d, want 2", net.Diameter())
	}
	if _, err := Ring(2, Config{}); err == nil {
		t.Fatal("Ring(2) must fail")
	}
}

func TestMesh2D(t *testing.T) {
	net, err := Mesh2D(3, 4, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// links: 3*(4-1) horizontal + (3-1)*4 vertical = 9 + 8 = 17.
	if net.NumLinks() != 17 {
		t.Fatalf("mesh 3x4 links = %d, want 17", net.NumLinks())
	}
	if net.Diameter() != 5 {
		t.Fatalf("mesh 3x4 diameter = %d, want 5", net.Diameter())
	}
	if _, err := Mesh2D(1, 1, Config{}); err == nil {
		t.Fatal("1x1 mesh must fail")
	}
}

func TestTorus2D(t *testing.T) {
	net, err := Torus2D(3, 3, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// 2 links per switch pair direction: 3*3*2 = 18.
	if net.NumLinks() != 18 {
		t.Fatalf("torus 3x3 links = %d, want 18", net.NumLinks())
	}
	for s := 0; s < 9; s++ {
		if net.Degree(s) != 4 {
			t.Fatalf("torus switch %d degree = %d, want 4", s, net.Degree(s))
		}
	}
	if _, err := Torus2D(2, 3, Config{}); err == nil {
		t.Fatal("torus with dim < 3 must fail")
	}
}

func TestHypercube(t *testing.T) {
	net, err := Hypercube(3, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if net.Switches() != 8 || net.NumLinks() != 12 {
		t.Fatalf("Q3: switches=%d links=%d, want 8/12", net.Switches(), net.NumLinks())
	}
	if net.Diameter() != 3 {
		t.Fatalf("Q3 diameter = %d, want 3", net.Diameter())
	}
	// Dimension 5 exceeds the default 4 free ports.
	if _, err := Hypercube(5, Config{}); err == nil {
		t.Fatal("Q5 with default switch size must fail (degree 5 > 4 free ports)")
	}
	if _, err := Hypercube(5, Config{Ports: 12}); err != nil {
		t.Fatalf("Q5 with 12-port switches should work: %v", err)
	}
	if _, err := Hypercube(0, Config{}); err == nil {
		t.Fatal("Hypercube(0) must fail")
	}
}
