package topology

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// networkJSON is the wire form of a Network.
type networkJSON struct {
	Name           string `json:"name"`
	Switches       int    `json:"switches"`
	Ports          int    `json:"ports"`
	HostsPerSwitch int    `json:"hosts_per_switch"`
	Links          []Link `json:"links"`
}

// MarshalJSON encodes the network, including its per-switch configuration.
func (n *Network) MarshalJSON() ([]byte, error) {
	return json.Marshal(networkJSON{
		Name:           n.name,
		Switches:       n.switches,
		Ports:          n.ports,
		HostsPerSwitch: n.hostsPerSwitch,
		Links:          n.links,
	})
}

// UnmarshalNetworkJSON decodes a network previously produced by
// MarshalJSON, re-running all structural validation.
func UnmarshalNetworkJSON(data []byte) (*Network, error) {
	var w networkJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("topology: decoding network: %w", err)
	}
	return New(w.Name, w.Switches, w.Links, Config{Ports: w.Ports, HostsPerSwitch: w.HostsPerSwitch})
}

// WriteText writes a human-readable/editable description:
//
//	# comment
//	network <name> switches=<n> ports=<p> hosts=<h>
//	link <a> <b>
func (n *Network) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "network %s switches=%d ports=%d hosts=%d\n", n.name, n.switches, n.ports, n.hostsPerSwitch)
	for _, l := range n.links {
		fmt.Fprintf(bw, "link %d %d\n", l.A, l.B)
	}
	return bw.Flush()
}

// ParseText parses the format emitted by WriteText. Blank lines and lines
// starting with '#' are ignored.
func ParseText(r io.Reader) (*Network, error) {
	sc := bufio.NewScanner(r)
	var (
		name     string
		switches int
		cfg      Config
		links    []Link
		header   bool
	)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "network":
			if len(fields) < 2 {
				return nil, fmt.Errorf("topology: line %d: network header needs a name", lineNo)
			}
			name = fields[1]
			for _, f := range fields[2:] {
				key, val, ok := strings.Cut(f, "=")
				if !ok {
					return nil, fmt.Errorf("topology: line %d: bad attribute %q", lineNo, f)
				}
				var n int
				if _, err := fmt.Sscanf(val, "%d", &n); err != nil {
					return nil, fmt.Errorf("topology: line %d: bad value for %s: %q", lineNo, key, val)
				}
				switch key {
				case "switches":
					switches = n
				case "ports":
					cfg.Ports = n
				case "hosts":
					cfg.HostsPerSwitch = n
				default:
					return nil, fmt.Errorf("topology: line %d: unknown attribute %q", lineNo, key)
				}
			}
			header = true
		case "link":
			if len(fields) != 3 {
				return nil, fmt.Errorf("topology: line %d: link needs exactly two endpoints", lineNo)
			}
			var a, b int
			if _, err := fmt.Sscanf(fields[1]+" "+fields[2], "%d %d", &a, &b); err != nil {
				return nil, fmt.Errorf("topology: line %d: bad link endpoints: %v", lineNo, err)
			}
			links = append(links, Link{A: a, B: b})
		default:
			return nil, fmt.Errorf("topology: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !header {
		return nil, fmt.Errorf("topology: missing network header line")
	}
	return New(name, switches, links, cfg)
}
