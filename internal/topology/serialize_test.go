package topology

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	orig, err := RandomIrregular(16, 3, rand.New(rand.NewSource(9)), Config{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := orig.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalNetworkJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name() != orig.Name() || back.Switches() != orig.Switches() ||
		back.Ports() != orig.Ports() || back.HostsPerSwitch() != orig.HostsPerSwitch() {
		t.Fatal("metadata did not round-trip")
	}
	la, lb := orig.Links(), back.Links()
	if len(la) != len(lb) {
		t.Fatal("link count did not round-trip")
	}
	for i := range la {
		if la[i] != lb[i] {
			t.Fatal("links did not round-trip")
		}
	}
}

func TestUnmarshalRejectsInvalid(t *testing.T) {
	if _, err := UnmarshalNetworkJSON([]byte(`{"switches":2,"links":[{"A":0,"B":0}]}`)); err == nil {
		t.Fatal("expected validation error for self link in JSON")
	}
	if _, err := UnmarshalNetworkJSON([]byte(`not json`)); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestTextRoundTrip(t *testing.T) {
	orig := mustNew(t, "demo", 4, []Link{{0, 1}, {1, 2}, {2, 3}, {0, 3}}, Config{Ports: 8, HostsPerSwitch: 4})
	var buf bytes.Buffer
	if err := orig.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ParseText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name() != "demo" || back.Switches() != 4 || back.NumLinks() != 4 {
		t.Fatalf("text round-trip lost data: %s/%d/%d", back.Name(), back.Switches(), back.NumLinks())
	}
}

func TestParseTextComments(t *testing.T) {
	in := `# a comment

network c3 switches=3 ports=8 hosts=4
link 0 1
# middle comment
link 1 2
`
	net, err := ParseText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if net.NumLinks() != 2 {
		t.Fatalf("links = %d, want 2", net.NumLinks())
	}
}

func TestParseTextErrors(t *testing.T) {
	cases := []string{
		"link 0 1\n",                             // missing header
		"network\n",                              // header without name
		"network x switches=two\n",               // bad value
		"network x switches=2\nlink 0\n",         // bad link arity
		"network x switches=2\nlink a b\n",       // bad endpoints
		"network x switches=2\nfrobnicate 1 2\n", // unknown directive
		"network x switches=2 color=3\n",         // unknown attribute
		"network x switches=2 ports\n",           // attribute without '='
		"network x switches=2\nlink 0 5\n",       // out of range (validation)
	}
	for i, in := range cases {
		if _, err := ParseText(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: expected parse error for %q", i, in)
		}
	}
}
