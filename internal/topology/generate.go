package topology

import (
	"fmt"
	"math/rand"
	"sort"
)

// RandomIrregular generates a random irregular topology under the paper's
// Section 5.1 constraints: every switch has exactly `degree` inter-switch
// links (default 3 of the 4 free ports of an 8-port switch with 4 hosts),
// neighboring switches are connected by a single link, and the network is
// connected.
//
// The generator builds a Hamiltonian cycle over a random switch permutation
// (guaranteeing connectivity and degree 2) and then adds random perfect
// matchings between still-open ports until the target degree is reached,
// followed by randomizing 2-opt link swaps that preserve degree,
// simplicity, and connectivity. For odd degree, switches*degree must be
// even, i.e. the switch count must be even — the paper's sizes (16…24) are.
func RandomIrregular(switches, degree int, rng *rand.Rand, cfg Config) (*Network, error) {
	cfg = cfg.withDefaults()
	if degree < 2 {
		return nil, fmt.Errorf("topology: RandomIrregular needs degree >= 2, got %d", degree)
	}
	if degree >= switches {
		return nil, fmt.Errorf("topology: degree %d impossible with %d switches", degree, switches)
	}
	if switches*degree%2 != 0 {
		return nil, fmt.Errorf("topology: %d switches of degree %d give an odd number of port ends", switches, degree)
	}
	if degree > cfg.Ports-cfg.HostsPerSwitch {
		return nil, fmt.Errorf("topology: degree %d exceeds the %d free ports per switch", degree, cfg.Ports-cfg.HostsPerSwitch)
	}

	const maxAttempts = 200
	for attempt := 0; attempt < maxAttempts; attempt++ {
		links, ok := tryRandomRegular(switches, degree, rng)
		if !ok {
			continue
		}
		name := fmt.Sprintf("irregular-%d", switches)
		net, err := New(name, switches, links, cfg)
		if err != nil {
			return nil, err // structural bug in the generator, not bad luck
		}
		if !net.Connected() {
			continue
		}
		shuffleLinks(net, rng, 4*len(links))
		return net, nil
	}
	return nil, fmt.Errorf("topology: failed to generate a connected %d-regular graph on %d switches after %d attempts",
		degree, switches, maxAttempts)
}

// tryRandomRegular attempts one construction of a simple degree-regular
// graph: a Hamiltonian cycle (connectivity + degree 2), then extra random
// Hamiltonian cycles (+2 degree each), then a single perfect matching when
// the remaining degree is odd (which requires an even switch count — the
// parity check in RandomIrregular guarantees matching feasibility).
// Returns ok=false when a random cycle or matching collides with an
// existing link (caller retries from scratch).
func tryRandomRegular(n, degree int, rng *rand.Rand) ([]Link, bool) {
	used := make(map[Link]bool)
	var links []Link
	add := func(u, v int) bool {
		if u == v {
			return false
		}
		c := NormalizeLink(u, v)
		if used[c] {
			return false
		}
		used[c] = true
		links = append(links, c)
		return true
	}
	addCycle := func() bool {
		perm := rng.Perm(n)
		for i := 0; i < n; i++ {
			if !add(perm[i], perm[(i+1)%n]) {
				return false
			}
		}
		return true
	}
	remaining := degree
	for remaining >= 2 {
		if !addCycle() {
			return nil, false
		}
		remaining -= 2
	}
	if remaining == 1 {
		p := rng.Perm(n)
		for i := 0; i < n; i += 2 {
			if !add(p[i], p[i+1]) {
				return nil, false
			}
		}
	}
	return links, true
}

// shuffleLinks performs random 2-opt swaps — replace links (a,b),(c,d) with
// (a,c),(b,d) — that preserve degree, keep the graph simple, and keep it
// connected. This removes the structural bias of the cycle+matching
// construction.
func shuffleLinks(net *Network, rng *rand.Rand, swaps int) {
	for k := 0; k < swaps; k++ {
		if len(net.links) < 2 {
			return
		}
		i := rng.Intn(len(net.links))
		j := rng.Intn(len(net.links))
		if i == j {
			continue
		}
		l1, l2 := net.links[i], net.links[j]
		a, b, c, d := l1.A, l1.B, l2.A, l2.B
		// Two rewirings are possible; pick one at random.
		var n1, n2 Link
		if rng.Intn(2) == 0 {
			n1, n2 = NormalizeLink(a, c), NormalizeLink(b, d)
		} else {
			n1, n2 = NormalizeLink(a, d), NormalizeLink(b, c)
		}
		if n1.A == n1.B || n2.A == n2.B || n1 == n2 {
			continue
		}
		if net.HasLink(n1.A, n1.B) || net.HasLink(n2.A, n2.B) {
			continue
		}
		net.replaceLinks(i, j, n1, n2)
		if !net.Connected() {
			// Undo: the new links are at positions found by value.
			net.undoReplace(n1, n2, l1, l2)
		}
	}
	net.rebuild()
}

// replaceLinks swaps the links at positions i and j for n1 and n2 and
// refreshes adjacency.
func (n *Network) replaceLinks(i, j int, n1, n2 Link) {
	n.links[i], n.links[j] = n1, n2
	n.rebuild()
}

// undoReplace restores links o1,o2 in place of n1,n2.
func (n *Network) undoReplace(n1, n2, o1, o2 Link) {
	for k := range n.links {
		if n.links[k] == n1 {
			n.links[k] = o1
			break
		}
	}
	for k := range n.links {
		if n.links[k] == n2 {
			n.links[k] = o2
			break
		}
	}
	n.rebuild()
}

// rebuild refreshes the adjacency lists and canonical link order after an
// in-place link mutation.
func (n *Network) rebuild() {
	sort.Slice(n.links, func(i, j int) bool {
		if n.links[i].A != n.links[j].A {
			return n.links[i].A < n.links[j].A
		}
		return n.links[i].B < n.links[j].B
	})
	adj := make([][]int, n.switches)
	for _, l := range n.links {
		adj[l.A] = append(adj[l.A], l.B)
		adj[l.B] = append(adj[l.B], l.A)
	}
	for _, ns := range adj {
		sortInts(ns)
	}
	n.adj = adj
}

func sortInts(a []int) {
	// Insertion sort: adjacency lists here have at most a handful of
	// entries, and this avoids importing sort in the hot path.
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
