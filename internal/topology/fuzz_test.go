package topology

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseText: arbitrary input must either parse into a valid network
// or return an error — never panic — and parsed networks must round-trip.
func FuzzParseText(f *testing.F) {
	f.Add("network x switches=3 ports=8 hosts=4\nlink 0 1\nlink 1 2\n")
	f.Add("# comment\nnetwork y switches=2\nlink 0 1\n")
	f.Add("network z switches=1\n")
	f.Add("garbage\n")
	f.Add("network w switches=2 ports=abc\n")
	f.Add("link 1 2")
	f.Fuzz(func(t *testing.T, input string) {
		net, err := ParseText(strings.NewReader(input))
		if err != nil {
			return
		}
		// Whatever parsed must satisfy the invariants New enforces and
		// survive a write/parse round trip.
		var buf bytes.Buffer
		if err := net.WriteText(&buf); err != nil {
			t.Fatalf("WriteText failed on parsed network: %v", err)
		}
		back, err := ParseText(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v\noriginal input: %q", err, input)
		}
		if back.Switches() != net.Switches() || back.NumLinks() != net.NumLinks() {
			t.Fatalf("round trip changed the network: %d/%d vs %d/%d",
				net.Switches(), net.NumLinks(), back.Switches(), back.NumLinks())
		}
	})
}

// FuzzUnmarshalNetworkJSON: arbitrary bytes must never panic the decoder.
func FuzzUnmarshalNetworkJSON(f *testing.F) {
	f.Add([]byte(`{"name":"x","switches":2,"ports":8,"hosts_per_switch":4,"links":[{"A":0,"B":1}]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{"switches":-5}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		net, err := UnmarshalNetworkJSON(data)
		if err != nil {
			return
		}
		if net.Switches() <= 0 {
			t.Fatalf("decoder accepted a network with %d switches", net.Switches())
		}
	})
}
