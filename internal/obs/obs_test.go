package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// restoreSink guards the package-global sink across tests.
func restoreSink(t *testing.T) {
	t.Helper()
	prev := CurrentSink()
	t.Cleanup(func() { SetSink(prev) })
}

func TestDisabledByDefault(t *testing.T) {
	restoreSink(t)
	SetSink(nil)
	if Enabled() {
		t.Fatal("expected observability off with no sink installed")
	}
	// All helpers must be safe no-ops.
	Event("x", F("k", 1))
	Emit(Record{Kind: "event", Name: "y"})
	StartSpan("z").End()
	var sp *Span
	sp.End() // nil receiver
}

func TestMemorySinkCapturesEventsAndSpans(t *testing.T) {
	restoreSink(t)
	mem := &Memory{}
	SetSink(mem)
	Event("search.restart", F("restart", 3), F("best", 1.5))
	sp := StartSpan("core.schedule", F("seed", int64(42)))
	time.Sleep(time.Millisecond)
	sp.End(F("cc", 2.0))
	SetSink(nil)
	Event("dropped")

	if got := mem.Len(); got != 2 {
		t.Fatalf("captured %d records, want 2", got)
	}
	evs := mem.ByName("search.restart")
	if len(evs) != 1 || evs[0].Kind != "event" {
		t.Fatalf("bad event records: %+v", evs)
	}
	spans := mem.ByName("core.schedule")
	if len(spans) != 1 || spans[0].Kind != "span" {
		t.Fatalf("bad span records: %+v", spans)
	}
	if spans[0].Dur <= 0 {
		t.Fatalf("span duration not recorded: %v", spans[0].Dur)
	}
	if len(spans[0].Fields) != 2 {
		t.Fatalf("span fields not merged: %+v", spans[0].Fields)
	}
}

func TestJSONLFormat(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	j.Emit(Record{Time: time.Unix(0, 0), Kind: "event", Name: "a", Fields: []Field{F("x", 1), F("s", "v")}})
	j.Emit(Record{Time: time.Unix(1, 0), Kind: "span", Name: "b", Dur: 1500 * time.Microsecond})
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var lines []map[string]any
	for sc.Scan() {
		var obj map[string]any
		if err := json.Unmarshal(sc.Bytes(), &obj); err != nil {
			t.Fatalf("line %q not JSON: %v", sc.Text(), err)
		}
		lines = append(lines, obj)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	if lines[0]["name"] != "a" || lines[0]["x"] != float64(1) || lines[0]["s"] != "v" {
		t.Fatalf("bad event line: %v", lines[0])
	}
	if lines[1]["kind"] != "span" || lines[1]["dur_ms"] != 1.5 {
		t.Fatalf("bad span line: %v", lines[1])
	}
}

func TestOpenJSONLWritesFile(t *testing.T) {
	restoreSink(t)
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	j, err := OpenJSONL(path)
	if err != nil {
		t.Fatal(err)
	}
	SetSink(j)
	Event("hello", F("n", 7))
	SetSink(nil)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var obj map[string]any
	if err := json.Unmarshal(bytes.TrimSpace(data), &obj); err != nil {
		t.Fatalf("trace not parseable: %v", err)
	}
	if obj["name"] != "hello" || obj["n"] != float64(7) {
		t.Fatalf("bad trace content: %v", obj)
	}
}

func TestConcurrentEmission(t *testing.T) {
	restoreSink(t)
	mem := &Memory{}
	SetSink(mem)
	defer SetSink(nil)
	var wg sync.WaitGroup
	const workers, each = 8, 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				Event("tick", F("worker", w), F("i", i))
			}
		}(w)
	}
	wg.Wait()
	if got := mem.Len(); got != workers*each {
		t.Fatalf("captured %d records, want %d", got, workers*each)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram("q", []float64{0, 1, 2, 4})
	for _, v := range []float64{0, 0, 1, 3, 100} {
		h.Observe(v)
	}
	want := []int64{2, 1, 0, 1, 1}
	got := h.BucketCounts()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket counts %v, want %v", got, want)
		}
	}
	if h.Count() != 5 {
		t.Fatalf("count %d, want 5", h.Count())
	}
	if h.Mean() != (0+0+1+3+100)/5.0 {
		t.Fatalf("mean %v", h.Mean())
	}
	r := h.Record()
	if r.Kind != "hist" || r.Name != "q" {
		t.Fatalf("bad record: %+v", r)
	}
}

func TestPowersOfTwoBounds(t *testing.T) {
	got := PowersOfTwoBounds(4)
	want := []float64{0, 1, 2, 4, 8}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestCounterAndGauge(t *testing.T) {
	restoreSink(t)
	mem := &Memory{}
	SetSink(mem)
	defer SetSink(nil)
	var c Counter
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Add(1)
			}
		}()
	}
	wg.Wait()
	if c.Load() != 4000 {
		t.Fatalf("counter %d, want 4000", c.Load())
	}
	c.EmitValue("pairs.recomputed", F("ctx", "test"))
	if len(mem.ByName("pairs.recomputed")) != 1 {
		t.Fatal("counter flush not captured")
	}
	var g Gauge
	g.Set(17)
	if g.Load() != 17 {
		t.Fatalf("gauge %d, want 17", g.Load())
	}
}

func TestCPUProfileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cpu.pprof")
	stop, err := StartCPUProfile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile is non-trivial.
	x := 0
	for i := 0; i < 1_000_00; i++ {
		x += i * i
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil || fi.Size() == 0 {
		t.Fatalf("cpu profile missing or empty: %v", err)
	}
}

func TestCLISetup(t *testing.T) {
	restoreSink(t)
	dir := t.TempDir()
	metrics := filepath.Join(dir, "m.jsonl")
	heap := filepath.Join(dir, "heap.pprof")
	cleanup, err := CLISetup(metrics, "", heap)
	if err != nil {
		t.Fatal(err)
	}
	if !Enabled() {
		t.Fatal("sink not installed")
	}
	Event("run", F("ok", true))
	if err := cleanup(); err != nil {
		t.Fatal(err)
	}
	if Enabled() {
		t.Fatal("sink not uninstalled by cleanup")
	}
	if data, err := os.ReadFile(metrics); err != nil || len(data) == 0 {
		t.Fatalf("metrics file missing or empty: %v", err)
	}
	if fi, err := os.Stat(heap); err != nil || fi.Size() == 0 {
		t.Fatalf("heap profile missing or empty: %v", err)
	}
}

// BenchmarkDisabledEvent measures the default-path cost the acceptance
// criterion bounds: with no sink installed, the guard must be one atomic
// load (sub-nanosecond on current hardware).
func BenchmarkDisabledEvent(b *testing.B) {
	SetSink(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if Enabled() {
			Event("never", F("i", i))
		}
	}
}

// BenchmarkDisabledSpan measures the nil-span fast path.
func BenchmarkDisabledSpan(b *testing.B) {
	SetSink(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		StartSpan("never").End()
	}
}

// BenchmarkMemoryEvent measures the enabled path into the memory sink.
func BenchmarkMemoryEvent(b *testing.B) {
	mem := &Memory{}
	SetSink(mem)
	defer SetSink(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Event("tick", F("i", i))
	}
}
