package obs

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestOpenJSONLTickerFlush(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	j, err := OpenJSONL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	j.Emit(Record{Kind: "event", Name: "tick", Time: time.Unix(0, 0)})
	// Without an explicit Flush, the background ticker must drain the
	// buffer to the file within a couple of intervals.
	deadline := time.Now().Add(5 * FlushInterval)
	for {
		data, err := os.ReadFile(path)
		if err == nil && strings.Contains(string(data), `"tick"`) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("record not flushed by ticker within %v (file: %q)", 5*FlushInterval, data)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestJSONLCloseFsyncs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	j, err := OpenJSONL(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Emit(Record{Kind: "event", Name: "final", Time: time.Unix(0, 0)})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"final"`) {
		t.Fatalf("record missing after Close: %q", data)
	}
	// Close must be idempotent enough not to deadlock on the stopped
	// ticker goroutine.
	if err := j.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestScanJSONLinesTolerant(t *testing.T) {
	input := `{"a":1}
{"b":2}

{"c":3}
{"torn":tru`
	var seen []string
	skipped, err := ScanJSONLines(strings.NewReader(input), func(line []byte) error {
		seen = append(seen, string(line))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 1 {
		t.Fatalf("skipped = %d, want 1 (the torn trailing line)", skipped)
	}
	want := []string{`{"a":1}`, `{"b":2}`, `{"c":3}`}
	if len(seen) != len(want) {
		t.Fatalf("seen = %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("seen[%d] = %q, want %q", i, seen[i], want[i])
		}
	}
}

func TestScanJSONLinesCompleteFinalLine(t *testing.T) {
	// A final line without a newline that IS valid JSON (clean shutdown
	// without a trailing newline) must be delivered, not skipped.
	var seen int
	skipped, err := ScanJSONLines(strings.NewReader(`{"a":1}`), func([]byte) error {
		seen++
		return nil
	})
	if err != nil || skipped != 0 || seen != 1 {
		t.Fatalf("valid unterminated line: seen=%d skipped=%d err=%v", seen, skipped, err)
	}
}

func TestScanJSONLinesPropagatesCallbackError(t *testing.T) {
	boom := errors.New("boom")
	_, err := ScanJSONLines(strings.NewReader("{\"a\":1}\n{\"b\":2}\n"), func(line []byte) error {
		if strings.Contains(string(line), "b") {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestJSONLTraceRemainsParsableAfterCrashStyleStop(t *testing.T) {
	// Emit a burst, flush, then append a torn fragment by hand — the
	// reading side must recover every whole record.
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	j, err := OpenJSONL(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		j.Emit(Record{Kind: "event", Name: "e", Time: time.Unix(int64(i), 0)})
	}
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"ts":"2026-01-01T00:00:0`)
	f.Close()

	in, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	var whole int
	skipped, err := ScanJSONLines(in, func(line []byte) error {
		var obj map[string]any
		if err := json.Unmarshal(line, &obj); err != nil {
			return err
		}
		whole++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if whole != 10 || skipped != 1 {
		t.Fatalf("whole=%d skipped=%d, want 10/1", whole, skipped)
	}
	j.Close()
}
