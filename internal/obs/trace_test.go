package obs

import (
	"context"
	"strings"
	"testing"
)

// TestTraceparentRoundTrip formats and reparses every flag combination.
func TestTraceparentRoundTrip(t *testing.T) {
	SeedIDs(7)
	for _, sampled := range []bool{false, true} {
		sc := SpanContext{Trace: NewTraceID(), Span: NewSpanID(), Sampled: sampled}
		h := sc.Traceparent()
		if len(h) != 55 {
			t.Fatalf("traceparent %q is %d bytes, want 55", h, len(h))
		}
		got, err := ParseTraceparent(h)
		if err != nil {
			t.Fatalf("reparsing %q: %v", h, err)
		}
		if got != sc {
			t.Fatalf("round trip drifted: sent %+v got %+v", sc, got)
		}
	}
}

// TestTraceparentMalformed is the malformed-header table: every entry
// must be rejected, never panic, and never yield a valid context.
func TestTraceparentMalformed(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"short", "00-abc"},
		{"bad delimiters", "00_0af7651916cd43dd8448eb211c80319c_b7ad6b7169203331_01"},
		{"uppercase trace", "00-0AF7651916CD43DD8448EB211C80319C-b7ad6b7169203331-01"},
		{"uppercase span", "00-0af7651916cd43dd8448eb211c80319c-B7AD6B7169203331-01"},
		{"zero trace", "00-00000000000000000000000000000000-b7ad6b7169203331-01"},
		{"zero span", "00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01"},
		{"version ff", "ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"},
		{"nonhex version", "zz-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"},
		{"nonhex flags", "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-zz"},
		{"v00 trailing data", "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-extra"},
		{"v01 trailing junk without dash", "01-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01x"},
		{"truncated flags", "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-0"},
		{"unicode", "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-0é"},
	}
	for _, tc := range cases {
		if sc, err := ParseTraceparent(tc.in); err == nil {
			t.Errorf("%s: %q parsed to %+v, want error", tc.name, tc.in, sc)
		}
	}
}

// TestTraceparentFutureVersion checks the W3C forward-compatibility rule:
// a higher version with well-formed leading fields parses, with or
// without dash-separated trailing data.
func TestTraceparentFutureVersion(t *testing.T) {
	for _, in := range []string{
		"01-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
		"cc-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-what-future-holds",
	} {
		sc, err := ParseTraceparent(in)
		if err != nil {
			t.Fatalf("future version %q rejected: %v", in, err)
		}
		if sc.Trace.String() != "0af7651916cd43dd8448eb211c80319c" || sc.Span.String() != "b7ad6b7169203331" {
			t.Fatalf("future version %q misparsed: %+v", in, sc)
		}
		if !sc.Sampled {
			t.Fatalf("future version %q lost the sampled flag", in)
		}
	}
}

// TestSeededIDsDeterministic pins the seeded-generation contract: a fixed
// seed reproduces the exact ID sequence.
func TestSeededIDsDeterministic(t *testing.T) {
	SeedIDs(42)
	a1, b1, c1 := NewTraceID(), NewSpanID(), NewSpanID()
	SeedIDs(42)
	a2, b2, c2 := NewTraceID(), NewSpanID(), NewSpanID()
	if a1 != a2 || b1 != b2 || c1 != c2 {
		t.Fatalf("seeded ID stream is not reproducible: (%s,%s,%s) vs (%s,%s,%s)", a1, b1, c1, a2, b2, c2)
	}
	SeedIDs(43)
	if a3 := NewTraceID(); a3 == a1 {
		t.Fatalf("different seeds produced the same trace id %s", a3)
	}
}

// TestStartSpanCtxPropagation checks that nested spans share one trace and
// chain parent links, and that the emitted records carry the lineage.
func TestStartSpanCtxPropagation(t *testing.T) {
	mem := &Memory{}
	SetSink(mem)
	defer SetSink(nil)
	SeedIDs(1)

	root, ctx := StartSpanCtx(context.Background(), "outer")
	child, _ := StartSpanCtx(ctx, "inner")
	if root.Context().Trace != child.Context().Trace {
		t.Fatalf("child left the trace: %s vs %s", root.Context().Trace, child.Context().Trace)
	}
	child.End()
	root.End()

	spans := map[string]Record{}
	for _, r := range mem.Records() {
		spans[r.Name] = r
	}
	in, out := spans["inner"], spans["outer"]
	if in.Trace.IsZero() || in.Trace != out.Trace {
		t.Fatalf("records carry different traces: %s vs %s", in.Trace, out.Trace)
	}
	if in.Parent != out.Span {
		t.Fatalf("inner's parent %s is not outer's span %s", in.Parent, out.Span)
	}
	if out.Parent != (SpanID{}) {
		t.Fatalf("outer is a root but has parent %s", out.Parent)
	}
}

// TestStartSpanCtxJoinsInboundContext checks a W3C header context is
// honored as the parent (the HTTP-admission stitch).
func TestStartSpanCtxJoinsInboundContext(t *testing.T) {
	mem := &Memory{}
	SetSink(mem)
	defer SetSink(nil)

	inbound, err := ParseTraceparent("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01")
	if err != nil {
		t.Fatal(err)
	}
	ctx := WithSpanContext(context.Background(), inbound)
	sp, _ := StartSpanCtx(ctx, "server")
	sp.End()

	r := mem.Records()[0]
	if r.Trace != inbound.Trace {
		t.Fatalf("server span trace %s, want inbound %s", r.Trace, inbound.Trace)
	}
	if r.Parent != inbound.Span {
		t.Fatalf("server span parent %s, want inbound span %s", r.Parent, inbound.Span)
	}
}

// TestStartSpanCtxDisabled pins the disabled-path contract: nil span,
// untouched context, no allocation of a child identity.
func TestStartSpanCtxDisabled(t *testing.T) {
	SetSink(nil)
	ctx := context.Background()
	sp, got := StartSpanCtx(ctx, "never")
	if sp != nil {
		t.Fatalf("disabled StartSpanCtx returned a span")
	}
	if got != ctx {
		t.Fatalf("disabled StartSpanCtx derived a new context")
	}
	sp.End() // must not panic
	if sp.Context().Valid() {
		t.Fatalf("nil span has a valid context")
	}
}

// TestRootSpanContextFallback checks the process-wide root installed by
// resumable CLI runs is adopted by spans whose context carries no trace.
func TestRootSpanContextFallback(t *testing.T) {
	mem := &Memory{}
	SetSink(mem)
	defer SetSink(nil)
	root := SpanContext{Trace: TraceIDFromBytes([]byte("run-identity")), Span: NewSpanID()}
	SetRootSpanContext(root)
	defer SetRootSpanContext(SpanContext{})

	sp, _ := StartSpanCtx(context.Background(), "adopted")
	sp.End()
	if r := mem.Records()[0]; r.Trace != root.Trace || r.Parent != root.Span {
		t.Fatalf("span did not adopt the process root: %+v", r)
	}

	// An explicit context still wins over the process root.
	other := SpanContext{Trace: NewTraceID(), Span: NewSpanID()}
	sp2, _ := StartSpanCtx(WithSpanContext(context.Background(), other), "explicit")
	sp2.End()
	if r := mem.Records()[1]; r.Trace != other.Trace {
		t.Fatalf("explicit context lost to the process root: %+v", r)
	}
}

// TestWideEvent checks the wide-event contract: kind "wide", trace
// stamped from the context.
func TestWideEvent(t *testing.T) {
	mem := &Memory{}
	SetSink(mem)
	defer SetSink(nil)
	sc := SpanContext{Trace: NewTraceID(), Span: NewSpanID()}
	Wide(WithSpanContext(context.Background(), sc), "job.wide", F("tenant", "t1"), F("queue_wait_ms", 12.5))
	r := mem.Records()[0]
	if r.Kind != "wide" || r.Name != "job.wide" {
		t.Fatalf("wide record mis-shaped: %+v", r)
	}
	if r.Trace != sc.Trace || r.Span != sc.Span {
		t.Fatalf("wide record lost the trace: %+v", r)
	}
	obj := RecordObject(r)
	if obj["trace"] != sc.Trace.String() || obj["tenant"] != "t1" {
		t.Fatalf("wire object lost fields: %v", obj)
	}
}

// TestTraceIDFromBytes pins the deterministic root-trace constructor.
func TestTraceIDFromBytes(t *testing.T) {
	a := TraceIDFromBytes([]byte{1, 2, 3})
	b := TraceIDFromBytes([]byte{1, 2, 3})
	if a != b || a.IsZero() {
		t.Fatalf("TraceIDFromBytes not deterministic/non-zero: %s vs %s", a, b)
	}
	if z := TraceIDFromBytes(nil); z.IsZero() {
		t.Fatalf("empty input produced the invalid all-zero trace id")
	}
	long := TraceIDFromBytes([]byte(strings.Repeat("x", 64)))
	if long.IsZero() {
		t.Fatalf("long input produced zero id")
	}
}

// BenchmarkDisabledStartSpanCtx measures the tracing disabled path — it
// must stay at one atomic load, like every other emission helper.
func BenchmarkDisabledStartSpanCtx(b *testing.B) {
	SetSink(nil)
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp, _ := StartSpanCtx(ctx, "bench")
		sp.End()
	}
}
