package obs

import "math"

// Histogram counts observations into fixed upper-bound buckets, tracking
// count, sum, min, and max. It is not safe for concurrent use — each
// owner (e.g. one simulator run) keeps its own and flushes it with Emit.
type Histogram struct {
	name   string
	bounds []float64 // ascending upper bounds; an implicit +Inf follows
	counts []int64   // len(bounds)+1, last is the overflow bucket
	count  int64
	sum    float64
	min    float64
	max    float64
}

// NewHistogram builds a histogram with the given ascending upper bounds.
// An observation v lands in the first bucket with v <= bound, or in the
// overflow bucket past the last bound.
func NewHistogram(name string, bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{
		name:   name,
		bounds: b,
		counts: make([]int64, len(b)+1),
		min:    math.Inf(1),
		max:    math.Inf(-1),
	}
}

// PowersOfTwoBounds returns {0, 1, 2, 4, …, 2^(n-1)} — the occupancy
// bucket ladder used for queue-depth histograms.
func PowersOfTwoBounds(n int) []float64 {
	bounds := make([]float64, 0, n+1)
	bounds = append(bounds, 0)
	v := 1.0
	for i := 0; i < n; i++ {
		bounds = append(bounds, v)
		v *= 2
	}
	return bounds
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count }

// Mean returns the average observation (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// BucketCounts returns a copy of the per-bucket counts (the last entry is
// the overflow bucket).
func (h *Histogram) BucketCounts() []int64 {
	out := make([]int64, len(h.counts))
	copy(out, h.counts)
	return out
}

// Record builds the flush record: kind "hist" with bounds, counts, count,
// sum, mean, min, and max fields, plus any extras.
func (h *Histogram) Record(fields ...Field) Record {
	min, max := h.min, h.max
	if h.count == 0 {
		min, max = 0, 0
	}
	fs := append([]Field{
		F("bounds", h.bounds),
		F("counts", h.BucketCounts()),
		F("count", h.count),
		F("sum", h.sum),
		F("mean", h.Mean()),
		F("min", min),
		F("max", max),
	}, fields...)
	return Record{Kind: "hist", Name: h.name, Fields: fs}
}

// Emit flushes the histogram into the stream (no-op when disabled).
func (h *Histogram) Emit(fields ...Field) {
	if !Enabled() {
		return
	}
	Emit(h.Record(fields...))
}
