package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// Sink receives every emitted record. Implementations must be safe for
// concurrent use: searchers, sweep workers, and distance workers emit
// from multiple goroutines.
type Sink interface {
	Emit(r Record)
}

// Nop is a Sink that drops everything; installing it is equivalent to
// enabling the pipeline without output (useful to measure emission cost).
type Nop struct{}

// Emit implements Sink.
func (Nop) Emit(Record) {}

// Fanout tees every record to each member sink in order — how a command
// runs a JSONL trace, the live telemetry registry/SSE hub, and a Chrome
// trace recorder off one emission stream. Members must individually be
// safe for concurrent use; Fanout adds no locking of its own.
type Fanout []Sink

// Emit implements Sink.
func (f Fanout) Emit(r Record) {
	for _, s := range f {
		s.Emit(r)
	}
}

// Memory collects records in memory — the test and inspection sink.
type Memory struct {
	mu      sync.Mutex
	records []Record
}

// Emit implements Sink.
func (m *Memory) Emit(r Record) {
	m.mu.Lock()
	m.records = append(m.records, r)
	m.mu.Unlock()
}

// Records returns a copy of everything captured so far.
func (m *Memory) Records() []Record {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Record, len(m.records))
	copy(out, m.records)
	return out
}

// ByName returns the captured records with the given name.
func (m *Memory) ByName(name string) []Record {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []Record
	for _, r := range m.records {
		if r.Name == name {
			out = append(out, r)
		}
	}
	return out
}

// Len returns the number of captured records.
func (m *Memory) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.records)
}

// Reset discards everything captured so far.
func (m *Memory) Reset() {
	m.mu.Lock()
	m.records = nil
	m.mu.Unlock()
}

// JSONL writes one JSON object per record — the machine-readable trace
// format behind the CLIs' -metrics flag. Reserved keys are "ts", "kind",
// "name", and "dur_ms"; field keys are flattened into the same object, so
// instrumentation must avoid those names. Keys are emitted sorted
// (encoding/json map order), making traces diff-friendly.
type JSONL struct {
	mu  sync.Mutex
	w   *bufio.Writer
	c   io.Closer
	err error
}

// NewJSONL wraps a writer. Close (or Flush) must be called to drain the
// internal buffer.
func NewJSONL(w io.Writer) *JSONL {
	j := &JSONL{w: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		j.c = c
	}
	return j
}

// OpenJSONL creates (truncates) a trace file at path.
func OpenJSONL(path string) (*JSONL, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: opening trace %s: %w", path, err)
	}
	return NewJSONL(f), nil
}

// RecordObject flattens a record into the wire object shared by the JSONL
// sink and the telemetry SSE stream: reserved keys "ts", "kind", "name",
// and "dur_ms", with the record's fields merged into the same map.
func RecordObject(r Record) map[string]any {
	obj := make(map[string]any, len(r.Fields)+4)
	obj["ts"] = r.Time.UTC().Format("2006-01-02T15:04:05.000000Z07:00")
	obj["kind"] = r.Kind
	obj["name"] = r.Name
	if r.Dur > 0 {
		obj["dur_ms"] = float64(r.Dur.Microseconds()) / 1000
	}
	for _, f := range r.Fields {
		obj[f.Key] = f.Value
	}
	return obj
}

// Emit implements Sink.
func (j *JSONL) Emit(r Record) {
	line, err := json.Marshal(RecordObject(r))
	j.mu.Lock()
	defer j.mu.Unlock()
	if err != nil {
		if j.err == nil {
			j.err = fmt.Errorf("obs: encoding record %q: %w", r.Name, err)
		}
		return
	}
	if j.err != nil {
		return
	}
	if _, err := j.w.Write(append(line, '\n')); err != nil {
		j.err = err
	}
}

// Err returns the first encoding or write error seen so far without
// flushing — a cheap mid-run health check for long-running services.
func (j *JSONL) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Flush drains the buffer and reports the first write error.
func (j *JSONL) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.w.Flush(); err != nil && j.err == nil {
		j.err = err
	}
	return j.err
}

// Close flushes and closes the underlying file when there is one.
func (j *JSONL) Close() error {
	err := j.Flush()
	if j.c != nil {
		if cerr := j.c.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}
