package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// Sink receives every emitted record. Implementations must be safe for
// concurrent use: searchers, sweep workers, and distance workers emit
// from multiple goroutines.
type Sink interface {
	Emit(r Record)
}

// Nop is a Sink that drops everything; installing it is equivalent to
// enabling the pipeline without output (useful to measure emission cost).
type Nop struct{}

// Emit implements Sink.
func (Nop) Emit(Record) {}

// Fanout tees every record to each member sink in order — how a command
// runs a JSONL trace, the live telemetry registry/SSE hub, and a Chrome
// trace recorder off one emission stream. Members must individually be
// safe for concurrent use; Fanout adds no locking of its own.
type Fanout []Sink

// Emit implements Sink.
func (f Fanout) Emit(r Record) {
	for _, s := range f {
		s.Emit(r)
	}
}

// Memory collects records in memory — the test and inspection sink.
type Memory struct {
	mu      sync.Mutex
	records []Record
}

// Emit implements Sink.
func (m *Memory) Emit(r Record) {
	m.mu.Lock()
	m.records = append(m.records, r)
	m.mu.Unlock()
}

// Records returns a copy of everything captured so far.
func (m *Memory) Records() []Record {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Record, len(m.records))
	copy(out, m.records)
	return out
}

// ByName returns the captured records with the given name.
func (m *Memory) ByName(name string) []Record {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []Record
	for _, r := range m.records {
		if r.Name == name {
			out = append(out, r)
		}
	}
	return out
}

// Len returns the number of captured records.
func (m *Memory) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.records)
}

// Reset discards everything captured so far.
func (m *Memory) Reset() {
	m.mu.Lock()
	m.records = nil
	m.mu.Unlock()
}

// JSONL writes one JSON object per record — the machine-readable trace
// format behind the CLIs' -metrics flag. Reserved keys are "ts", "kind",
// "name", "dur_ms", "trace", "span", and "parent"; field keys are
// flattened into the same object, so
// instrumentation must avoid those names. Keys are emitted sorted
// (encoding/json map order), making traces diff-friendly.
type JSONL struct {
	mu     sync.Mutex
	w      *bufio.Writer
	c      io.Closer
	f      *os.File // non-nil for file-backed sinks; enables fsync on Close
	err    error
	closed bool
	stop   chan struct{} // closes the ticker-flush goroutine, nil when none
	done   chan struct{}
}

// FlushInterval is how often a file-backed JSONL sink drains its buffer
// to the OS, bounding how much trace a crash can lose to buffering.
const FlushInterval = time.Second

// NewJSONL wraps a writer. Close (or Flush) must be called to drain the
// internal buffer.
func NewJSONL(w io.Writer) *JSONL {
	j := &JSONL{w: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		j.c = c
	}
	return j
}

// OpenJSONL creates (truncates) a trace file at path. File-backed sinks
// are crash-safe: the buffer is flushed every FlushInterval by a
// background ticker, and Close fsyncs before closing, so an interrupted
// run loses at most the final second of trace (plus, possibly, one torn
// trailing line — which every reader in this module tolerates, see
// ScanJSONLines).
func OpenJSONL(path string) (*JSONL, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: opening trace %s: %w", path, err)
	}
	j := NewJSONL(f)
	j.f = f
	j.stop = make(chan struct{})
	j.done = make(chan struct{})
	go j.flushLoop()
	return j, nil
}

func (j *JSONL) flushLoop() {
	defer close(j.done)
	t := time.NewTicker(FlushInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			j.Flush()
		case <-j.stop:
			return
		}
	}
}

// RecordObject flattens a record into the wire object shared by the JSONL
// sink and the telemetry SSE stream: reserved keys "ts", "kind", "name",
// "dur_ms", and — for records inside a trace — "trace", "span", and
// "parent" (lowercase hex), with the record's fields merged into the same
// map.
func RecordObject(r Record) map[string]any {
	obj := make(map[string]any, len(r.Fields)+7)
	obj["ts"] = r.Time.UTC().Format("2006-01-02T15:04:05.000000Z07:00")
	obj["kind"] = r.Kind
	obj["name"] = r.Name
	if r.Dur > 0 {
		obj["dur_ms"] = float64(r.Dur.Microseconds()) / 1000
	}
	if !r.Trace.IsZero() {
		obj["trace"] = r.Trace.String()
	}
	if !r.Span.IsZero() {
		obj["span"] = r.Span.String()
	}
	if !r.Parent.IsZero() {
		obj["parent"] = r.Parent.String()
	}
	for _, f := range r.Fields {
		obj[f.Key] = f.Value
	}
	return obj
}

// Emit implements Sink.
func (j *JSONL) Emit(r Record) {
	line, err := json.Marshal(RecordObject(r))
	j.mu.Lock()
	defer j.mu.Unlock()
	if err != nil {
		if j.err == nil {
			j.err = fmt.Errorf("obs: encoding record %q: %w", r.Name, err)
		}
		return
	}
	if j.err != nil {
		return
	}
	if _, err := j.w.Write(append(line, '\n')); err != nil {
		j.err = err
	}
}

// Err returns the first encoding or write error seen so far without
// flushing — a cheap mid-run health check for long-running services.
func (j *JSONL) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Flush drains the buffer and reports the first write error.
func (j *JSONL) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.w.Flush(); err != nil && j.err == nil {
		j.err = err
	}
	return j.err
}

// Close stops the ticker flusher, flushes, fsyncs file-backed sinks, and
// closes the underlying file when there is one. It is idempotent.
func (j *JSONL) Close() error {
	j.mu.Lock()
	if j.closed {
		err := j.err
		j.mu.Unlock()
		return err
	}
	j.closed = true
	j.mu.Unlock()
	if j.stop != nil {
		close(j.stop)
		<-j.done
		j.stop = nil
	}
	err := j.Flush()
	if j.f != nil {
		if serr := j.f.Sync(); serr != nil && err == nil {
			err = serr
		}
	}
	if j.c != nil {
		if cerr := j.c.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

// ScanJSONLines feeds each newline-terminated line of r to fn, skipping
// blank lines. A final line without a trailing newline — the torn append
// of a crashed writer — is passed to fn only if it parses as a complete
// JSON value; otherwise it is counted in the skipped return, never an
// error. This is the shared crash-tolerance contract for every JSONL
// reader in the module (obs traces, runstate journals).
func ScanJSONLines(r io.Reader, fn func(line []byte) error) (skipped int, err error) {
	br := bufio.NewReader(r)
	for {
		line, rerr := br.ReadBytes('\n')
		complete := rerr == nil
		line = bytes.TrimSpace(line)
		if len(line) > 0 {
			if complete || json.Valid(line) {
				if ferr := fn(line); ferr != nil {
					return skipped, ferr
				}
			} else {
				skipped++
			}
		}
		if rerr != nil {
			if rerr == io.EOF {
				return skipped, nil
			}
			return skipped, rerr
		}
	}
}
