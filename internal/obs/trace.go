package obs

import (
	"context"
	"encoding/hex"
	"fmt"
	"os"
	"sync/atomic"
	"time"
)

// This file is the causal-tracing layer of obs: 128-bit trace IDs, 64-bit
// span IDs, W3C traceparent interchange, and context.Context carriage, so
// one submission's journey — HTTP admission, queue wait, par workers,
// searcher restarts, sweep points, and a SIGKILL+resume replay — shares a
// single trace ID end to end.
//
// Cost model matches the rest of the package: with no sink installed,
// StartSpanCtx returns after one atomic load and the context is returned
// untouched. ID generation itself never blocks and never allocates; it is
// a seeded splitmix64 stream, so a fixed seed (SeedIDs) makes every ID of
// a run reproducible in allocation order.

// TraceID is a 128-bit W3C trace identifier. The zero value means "no
// trace".
type TraceID [16]byte

// SpanID is a 64-bit W3C span identifier. The zero value means "no span".
type SpanID [8]byte

// IsZero reports whether the ID is the absent value.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports whether the ID is the absent value.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the ID as 32 lowercase hex digits.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// String renders the ID as 16 lowercase hex digits.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// ParseTraceID parses 32 lowercase hex digits; the all-zero ID is invalid
// per the W3C spec.
func ParseTraceID(s string) (TraceID, error) {
	var t TraceID
	if len(s) != 32 {
		return t, fmt.Errorf("obs: trace id must be 32 hex digits, got %d", len(s))
	}
	if err := decodeLowerHex(t[:], s); err != nil {
		return TraceID{}, err
	}
	if t.IsZero() {
		return TraceID{}, fmt.Errorf("obs: all-zero trace id is invalid")
	}
	return t, nil
}

// ParseSpanID parses 16 lowercase hex digits; the all-zero ID is invalid.
func ParseSpanID(s string) (SpanID, error) {
	var id SpanID
	if len(s) != 16 {
		return id, fmt.Errorf("obs: span id must be 16 hex digits, got %d", len(s))
	}
	if err := decodeLowerHex(id[:], s); err != nil {
		return SpanID{}, err
	}
	if id.IsZero() {
		return SpanID{}, fmt.Errorf("obs: all-zero span id is invalid")
	}
	return id, nil
}

// decodeLowerHex decodes exactly len(dst)*2 lowercase hex digits. The
// W3C traceparent grammar admits only lowercase, so uppercase input is an
// error rather than being normalized away.
func decodeLowerHex(dst []byte, s string) error {
	for i := 0; i < len(s); i++ {
		c := s[i]
		var v byte
		switch {
		case c >= '0' && c <= '9':
			v = c - '0'
		case c >= 'a' && c <= 'f':
			v = c - 'a' + 10
		default:
			return fmt.Errorf("obs: invalid hex digit %q at position %d", c, i)
		}
		if i%2 == 0 {
			dst[i/2] = v << 4
		} else {
			dst[i/2] |= v
		}
	}
	return nil
}

// SpanContext is the propagated identity of one point in a trace: which
// trace, and which span is the current parent. It is what travels in a
// context.Context, a traceparent header, a job record, and a checkpoint.
type SpanContext struct {
	Trace TraceID
	Span  SpanID
	// Sampled is the W3C sampled flag (bit 0 of trace-flags). This module
	// records every span of an enabled sink, so the flag is carried for
	// interoperability, not consulted.
	Sampled bool
}

// Valid reports whether both IDs are present.
func (sc SpanContext) Valid() bool { return !sc.Trace.IsZero() && !sc.Span.IsZero() }

// Traceparent renders the context as a W3C traceparent header value,
// version 00: "00-<32 hex trace>-<16 hex span>-<flags>".
func (sc SpanContext) Traceparent() string {
	flags := "00"
	if sc.Sampled {
		flags = "01"
	}
	return "00-" + sc.Trace.String() + "-" + sc.Span.String() + "-" + flags
}

// ParseTraceparent parses a W3C traceparent header value. Version 00 must
// be exactly 55 characters; unknown future versions are accepted when
// their first four fields parse (per the spec's forward-compatibility
// rule), version "ff" is always invalid. The zero-value SpanContext plus
// an error comes back for anything malformed — callers treat that as "no
// inbound trace" and mint a fresh root.
func ParseTraceparent(s string) (SpanContext, error) {
	// version "-" trace-id "-" parent-id "-" trace-flags
	if len(s) < 55 {
		return SpanContext{}, fmt.Errorf("obs: traceparent too short (%d bytes)", len(s))
	}
	if s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return SpanContext{}, fmt.Errorf("obs: traceparent field delimiters misplaced")
	}
	var version [1]byte
	if err := decodeLowerHex(version[:], s[0:2]); err != nil {
		return SpanContext{}, fmt.Errorf("obs: traceparent version: %w", err)
	}
	if version[0] == 0xff {
		return SpanContext{}, fmt.Errorf("obs: traceparent version ff is forbidden")
	}
	if version[0] == 0 && len(s) != 55 {
		return SpanContext{}, fmt.Errorf("obs: version-00 traceparent must be 55 bytes, got %d", len(s))
	}
	if version[0] != 0 && len(s) > 55 && s[55] != '-' {
		return SpanContext{}, fmt.Errorf("obs: traceparent trailing data must be dash-separated")
	}
	trace, err := ParseTraceID(s[3:35])
	if err != nil {
		return SpanContext{}, err
	}
	span, err := ParseSpanID(s[36:52])
	if err != nil {
		return SpanContext{}, err
	}
	var flags [1]byte
	if err := decodeLowerHex(flags[:], s[53:55]); err != nil {
		return SpanContext{}, fmt.Errorf("obs: traceparent flags: %w", err)
	}
	return SpanContext{Trace: trace, Span: span, Sampled: flags[0]&0x01 != 0}, nil
}

// ---- seeded-deterministic ID generation ----

// idState is the splitmix64 state behind NewTraceID/NewSpanID. It starts
// from a process-unique value so concurrent daemons do not collide, and
// SeedIDs pins it for reproducible traces (tests, seeded experiment runs).
var idState atomic.Uint64

func init() {
	idState.Store(uint64(time.Now().UnixNano()) ^ uint64(os.Getpid())<<32 ^ 0x9e3779b97f4a7c15)
}

// SeedIDs makes ID generation deterministic: after SeedIDs(s), the k-th
// generated 64-bit word is a pure function of (s, k). Commands seed it
// from their -seed flag so a rerun reproduces its trace IDs.
func SeedIDs(seed int64) { idState.Store(uint64(seed)) }

// nextIDWord advances the shared splitmix64 stream by one word.
func nextIDWord() uint64 {
	x := idState.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// NewTraceID draws a fresh non-zero 128-bit trace ID.
func NewTraceID() TraceID {
	var t TraceID
	for t.IsZero() {
		hi, lo := nextIDWord(), nextIDWord()
		for i := 0; i < 8; i++ {
			t[i] = byte(hi >> (56 - 8*i))
			t[8+i] = byte(lo >> (56 - 8*i))
		}
	}
	return t
}

// NewSpanID draws a fresh non-zero 64-bit span ID.
func NewSpanID() SpanID {
	var s SpanID
	for s.IsZero() {
		w := nextIDWord()
		for i := 0; i < 8; i++ {
			s[i] = byte(w >> (56 - 8*i))
		}
	}
	return s
}

// TraceIDFromBytes derives a trace ID from arbitrary identity bytes (a
// run-identity hash): the deterministic root-trace constructor used by
// resumable CLI runs, so an interrupted run and its resume share a trace
// by construction, not by luck. At least one bit is forced on so the
// result is never the invalid all-zero ID.
func TraceIDFromBytes(b []byte) TraceID {
	var t TraceID
	copy(t[:], b)
	if t.IsZero() {
		t[15] = 1
	}
	return t
}

// NewChild returns the context of a new span in the same trace: same
// trace ID (a fresh trace when the receiver is invalid), fresh span ID.
func (sc SpanContext) NewChild() SpanContext {
	child := SpanContext{Trace: sc.Trace, Span: NewSpanID(), Sampled: sc.Sampled}
	if sc.Trace.IsZero() {
		child.Trace = NewTraceID()
		child.Sampled = true
	}
	return child
}

// ---- context carriage ----

type spanCtxKey struct{}

// WithSpanContext attaches a span context to ctx; child spans started
// under it (StartSpanCtx) parent themselves there.
func WithSpanContext(ctx context.Context, sc SpanContext) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, spanCtxKey{}, sc)
}

// rootSpanCtx is the process-wide fallback span context: commands with a
// durable root trace install it (runctl), so deep experiment loops that
// still pass a bare context join the run's one trace instead of minting a
// fresh trace per top-level span.
var rootSpanCtx atomic.Pointer[SpanContext]

// SetRootSpanContext installs (or with an invalid context, clears) the
// process-wide fallback returned by SpanContextFrom when the context
// carries none.
func SetRootSpanContext(sc SpanContext) {
	if !sc.Valid() {
		rootSpanCtx.Store(nil)
		return
	}
	rootSpanCtx.Store(&sc)
}

// SpanContextFrom extracts the span context carried by ctx, falling back
// to the installed process root; the zero SpanContext when neither is set.
func SpanContextFrom(ctx context.Context) SpanContext {
	if ctx != nil {
		if sc, ok := ctx.Value(spanCtxKey{}).(SpanContext); ok {
			return sc
		}
	}
	if p := rootSpanCtx.Load(); p != nil {
		return *p
	}
	return SpanContext{}
}

// ---- ctx-aware span + event emission ----

// StartSpanCtx opens a span as a child of the context's span context and
// returns the derived context carrying the new span, so nested
// instrumentation points chain into one tree. With no sink installed it
// returns (nil, ctx) after one atomic load — the context is not even
// inspected. A context without a trace starts a fresh root trace.
func StartSpanCtx(ctx context.Context, name string, fields ...Field) (*Span, context.Context) {
	if global.Load() == nil {
		return nil, ctx
	}
	parent := SpanContextFrom(ctx)
	child := parent.NewChild()
	return StartSpanAt(child, parent.Span, name, fields...), WithSpanContext(ctx, child)
}

// StartSpanAt opens a span with an explicit identity and parent — for
// callers that minted the child context themselves before consulting obs
// (the HTTP middleware, which must echo a traceparent whether or not a
// sink is installed). Nil when no sink is installed.
func StartSpanAt(sc SpanContext, parent SpanID, name string, fields ...Field) *Span {
	if global.Load() == nil {
		return nil
	}
	return &Span{name: name, start: time.Now(), fields: fields, sc: sc, parent: parent}
}

// EventCtx emits a point event stamped with the context's trace and span,
// so discrete facts (a retry, a queue-depth change, a salvage) land inside
// the trace that caused them.
func EventCtx(ctx context.Context, name string, fields ...Field) {
	b := global.Load()
	if b == nil {
		return
	}
	sc := SpanContextFrom(ctx)
	b.s.Emit(Record{Time: time.Now(), Kind: "event", Name: name,
		Trace: sc.Trace, Span: sc.Span, Fields: fields})
}

// Wide emits one canonical wide event: a single record carrying
// everything there is to know about a unit of work (a job, a checkpoint
// unit), stamped with the context's trace. Wide events are the
// per-job/per-unit analytics contract — one JSONL line answers "what
// happened to this job" without joining dozens of narrow events.
func Wide(ctx context.Context, name string, fields ...Field) {
	b := global.Load()
	if b == nil {
		return
	}
	sc := SpanContextFrom(ctx)
	b.s.Emit(Record{Time: time.Now(), Kind: "wide", Name: name,
		Trace: sc.Trace, Span: sc.Span, Fields: fields})
}
