// Package obs is the repo's zero-dependency observability layer: counters,
// gauges, fixed-bucket histograms, span-style timers, and point events,
// all flowing through one pluggable Sink.
//
// The paper's claims are quantitative (Cc as a bandwidth proxy, Tabu
// convergence within ~20 iterations, saturation-point shifts in the
// wormhole simulator), so the instrumented hot paths — searchers, the
// distance-table construction, and the flit-level simulator — emit
// machine-readable records that make a whole run reproducible and
// diagnosable from its trace.
//
// Cost model: the default state has no sink installed and every emission
// helper returns immediately after one atomic pointer load; hot loops
// additionally guard with Enabled() so that field slices are never built.
// Installing a sink (SetSink, or CLISetup from a command's -metrics flag)
// turns the stream on process-wide.
package obs

import (
	"sync/atomic"
	"time"
)

// Field is one key/value attribute of a Record. Values should be plain
// scalars, strings, or small slices so every sink can encode them.
type Field struct {
	Key   string
	Value any
}

// F builds a Field.
func F(key string, value any) Field { return Field{Key: key, Value: value} }

// Record is one observability datum. Kind is "event" for point-in-time
// facts, "span" for timed regions (Dur is set), "hist" for flushed
// histograms (bucket data travels in Fields), and "wide" for canonical
// per-unit wide events (see Wide).
type Record struct {
	// Time is the event time (span start time for spans).
	Time time.Time
	// Kind is "event", "span", "hist", or "wide".
	Kind string
	// Name identifies the instrumentation point, e.g. "search.restart".
	Name string
	// Dur is the elapsed time of a span (zero otherwise).
	Dur time.Duration
	// Trace / Span / Parent are the causal identity of the record: the
	// trace it belongs to, its own span ID (spans only), and the parent
	// span. All zero for records emitted outside any trace.
	Trace  TraceID
	Span   SpanID
	Parent SpanID
	// Fields carries the record's attributes.
	Fields []Field
}

// sinkBox wraps the Sink interface value so the global can live in an
// atomic.Pointer.
type sinkBox struct{ s Sink }

var global atomic.Pointer[sinkBox]

// Enabled reports whether a sink is installed. Hot loops check it before
// assembling fields; a false result costs one atomic load.
func Enabled() bool { return global.Load() != nil }

// SetSink installs the process-wide sink. Passing nil uninstalls it and
// restores the free default. The sink must be safe for concurrent use.
func SetSink(s Sink) {
	if s == nil {
		global.Store(nil)
		return
	}
	global.Store(&sinkBox{s: s})
}

// CurrentSink returns the installed sink, or nil when observability is
// off.
func CurrentSink() Sink {
	if b := global.Load(); b != nil {
		return b.s
	}
	return nil
}

// Emit forwards a fully built record to the sink; it is dropped when no
// sink is installed. A zero Time is stamped with the current time.
func Emit(r Record) {
	b := global.Load()
	if b == nil {
		return
	}
	if r.Time.IsZero() {
		r.Time = time.Now()
	}
	b.s.Emit(r)
}

// Event emits a point-in-time record.
func Event(name string, fields ...Field) {
	b := global.Load()
	if b == nil {
		return
	}
	b.s.Emit(Record{Time: time.Now(), Kind: "event", Name: name, Fields: fields})
}

// Progress emits a standardized progress event for a long-running task:
// done items out of total. Sinks that aggregate (the telemetry registry)
// turn these into live progress/ETA gauges keyed by task; the JSONL sink
// records them like any other event. No-op when observability is off.
func Progress(task string, done, total int64) {
	b := global.Load()
	if b == nil {
		return
	}
	b.s.Emit(Record{Time: time.Now(), Kind: "event", Name: "progress",
		Fields: []Field{F("task", task), F("done", done), F("total", total)}})
}

// Span is a timed region. StartSpan returns nil when observability is
// off, and a nil *Span is safe to End — call sites stay branchless:
//
//	defer obs.StartSpan("core.schedule").End()
type Span struct {
	name   string
	start  time.Time
	fields []Field
	sc     SpanContext
	parent SpanID
}

// Context returns the span's own span context (zero for spans opened with
// the trace-less StartSpan, and for a nil span).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.sc
}

// StartSpan opens a span; the fields given here are recorded alongside
// any fields passed to End.
func StartSpan(name string, fields ...Field) *Span {
	if global.Load() == nil {
		return nil
	}
	// When a process root trace is installed (runctl), even legacy
	// context-free spans join it as direct children, so no
	// instrumentation point falls outside the run's trace.
	if p := rootSpanCtx.Load(); p != nil {
		return &Span{name: name, start: time.Now(), fields: fields, sc: p.NewChild(), parent: p.Span}
	}
	return &Span{name: name, start: time.Now(), fields: fields}
}

// End closes the span and emits its record. Extra fields are appended to
// the ones given at StartSpan. End on a nil span is a no-op.
func (s *Span) End(fields ...Field) {
	if s == nil {
		return
	}
	b := global.Load()
	if b == nil {
		return
	}
	b.s.Emit(Record{
		Time:   s.start,
		Kind:   "span",
		Name:   s.name,
		Dur:    time.Since(s.start),
		Trace:  s.sc.Trace,
		Span:   s.sc.Span,
		Parent: s.parent,
		Fields: append(s.fields, fields...),
	})
}

// Counter is a cumulative atomic counter for concurrent accumulation
// (e.g. pair rebuilds across distance workers). Flush it into the stream
// with EmitValue.
type Counter struct{ v atomic.Int64 }

// Add increments the counter.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// EmitValue emits the counter as an event with a "value" field.
func (c *Counter) EmitValue(name string, fields ...Field) {
	if !Enabled() {
		return
	}
	Event(name, append(fields, F("value", c.v.Load()))...)
}

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores the current level.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Load returns the current level.
func (g *Gauge) Load() int64 { return g.v.Load() }
