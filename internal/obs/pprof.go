package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPUProfile begins a CPU profile at path and returns the stop
// function that finalizes and closes it.
func StartCPUProfile(path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: creating cpu profile %s: %w", path, err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("obs: starting cpu profile: %w", err)
	}
	return func() error {
		pprof.StopCPUProfile()
		return f.Close()
	}, nil
}

// WriteHeapProfile snapshots the heap to path (after a GC, so the profile
// reflects live objects).
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: creating heap profile %s: %w", path, err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("obs: writing heap profile: %w", err)
	}
	return nil
}

// CLISetup wires the standard observability flags of the repo's commands:
// metricsPath installs a JSONL sink (empty = observability off) and
// cpuProfile starts a CPU profile (empty = none). The returned cleanup
// stops the profile, flushes and uninstalls the sink, and writes
// memProfile when non-empty; commands defer it around their run.
func CLISetup(metricsPath, cpuProfile, memProfile string) (cleanup func() error, err error) {
	var (
		sink    *JSONL
		stopCPU func() error
	)
	if metricsPath != "" {
		sink, err = OpenJSONL(metricsPath)
		if err != nil {
			return nil, err
		}
		SetSink(sink)
	}
	if cpuProfile != "" {
		stopCPU, err = StartCPUProfile(cpuProfile)
		if err != nil {
			if sink != nil {
				SetSink(nil)
				sink.Close()
			}
			return nil, err
		}
	}
	return func() error {
		var first error
		if stopCPU != nil {
			first = stopCPU()
		}
		if memProfile != "" {
			if err := WriteHeapProfile(memProfile); err != nil && first == nil {
				first = err
			}
		}
		if sink != nil {
			SetSink(nil)
			if err := sink.Close(); err != nil && first == nil {
				first = err
			}
		}
		return first
	}, nil
}
