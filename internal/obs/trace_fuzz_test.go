package obs

import (
	"strings"
	"testing"
)

// FuzzParseTraceparent drives the W3C header parser with arbitrary input.
// Invariants: never panic; on success the context is valid, survives a
// format/reparse round trip, and — for version 00 — re-formats to the
// canonical lowercase input.
func FuzzParseTraceparent(f *testing.F) {
	f.Add("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01")
	f.Add("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-00")
	f.Add("cc-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-future")
	f.Add("ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01")
	f.Add("00-00000000000000000000000000000000-b7ad6b7169203331-01")
	f.Add("00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01")
	f.Add("")
	f.Add("00-")
	f.Add(strings.Repeat("-", 55))
	f.Fuzz(func(t *testing.T, in string) {
		sc, err := ParseTraceparent(in)
		if err != nil {
			if sc.Valid() {
				t.Fatalf("error %v but context %+v is valid", err, sc)
			}
			return
		}
		if !sc.Valid() {
			t.Fatalf("accepted %q but context %+v is invalid", in, sc)
		}
		out := sc.Traceparent()
		back, err := ParseTraceparent(out)
		if err != nil {
			t.Fatalf("reformatted %q -> %q does not reparse: %v", in, out, err)
		}
		if back != sc {
			t.Fatalf("round trip drifted: %+v -> %q -> %+v", sc, out, back)
		}
		if strings.HasPrefix(in, "00-") && len(in) == 55 && out != in {
			t.Fatalf("version-00 input %q did not reformat identically: %q", in, out)
		}
	})
}
