package heft

import (
	"math"
	"math/rand"
	"testing"

	"commsched/internal/mapping"
	"commsched/internal/metatask"
	"commsched/internal/search"
)

// This file is the schedule-validity property suite: across 1,000+
// seeded random DAG instances (all three generator families, varied
// sizes, heterogeneity, CCR, and comm models), every HEFT schedule and
// every Tabu-refined placement must satisfy the Validate invariants —
// precedence with communication delay, per-processor exclusivity, and
// makespan = max finish. It runs inside the ordinary `go test ./...`
// tier, so the invariants gate every change to the scheduler.

// randomComm draws either the uniform model or a random symmetric
// matrix, so the properties hold across comm-cost structures too.
func randomComm(procs int, rng *rand.Rand) CommModel {
	if rng.Intn(2) == 0 {
		return UniformComm{N: procs}
	}
	cost := make([][]float64, procs)
	for p := range cost {
		cost[p] = make([]float64, procs)
	}
	for p := 0; p < procs; p++ {
		for q := p + 1; q < procs; q++ {
			c := 0.2 + 3*rng.Float64()
			cost[p][q], cost[q][p] = c, c
		}
	}
	m, err := NewMatrixComm(cost)
	if err != nil {
		panic(err)
	}
	return m
}

// randomInstance draws one DAG from a seed-selected family with
// seed-varied shape parameters.
func randomInstance(t *testing.T, seed int64) (*metatask.DAG, CommModel) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	procs := 2 + rng.Intn(4)
	hetero := 0.3 + 2.5*rng.Float64()
	ccr := 3 * rng.Float64()
	var (
		d   *metatask.DAG
		err error
	)
	switch seed % 3 {
	case 0:
		d, err = metatask.GenerateLayeredDAG(2+rng.Intn(4), 1+rng.Intn(5), procs, hetero, ccr, rng)
	case 1:
		d, err = metatask.GenerateForkJoinDAG(1+rng.Intn(3), 1+rng.Intn(6), procs, hetero, ccr, rng)
	default:
		d, err = metatask.GenerateRandomDAG(2+rng.Intn(30), procs, rng.Float64()/2, hetero, ccr, rng)
	}
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	return d, randomComm(procs, rng)
}

// TestScheduleValidityProperty: 1,050 randomized instances; every HEFT
// schedule must validate, and on a sampled subset the Tabu-refined
// placement must validate too and never worsen the makespan.
func TestScheduleValidityProperty(t *testing.T) {
	const instances = 1050
	refined := 0
	for seed := int64(0); seed < instances; seed++ {
		d, cm := randomInstance(t, seed)
		s, err := ScheduleDAG(d, cm)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := Validate(d, cm, s); err != nil {
			t.Fatalf("seed %d (%s, %d tasks): HEFT schedule invalid: %v", seed, d.Name, d.Tasks(), err)
		}
		// Makespan can never beat the critical-path-free lower bound: the
		// largest single best-processor task time.
		lb := 0.0
		for task := 0; task < d.Tasks(); task++ {
			best := math.Inf(1)
			for p := 0; p < d.Procs(); p++ {
				if d.Comp[task][p] < best {
					best = d.Comp[task][p]
				}
			}
			if best > lb {
				lb = best
			}
		}
		if s.Makespan < lb-1e-9 {
			t.Fatalf("seed %d: makespan %v below lower bound %v", seed, s.Makespan, lb)
		}
		// Refine every 25th instance (Tabu over every instance would
		// dominate the suite's runtime without adding coverage).
		if seed%25 == 0 {
			r, _, err := RefinePlacement(nil, d, cm, s, search.NewTabu(), rand.New(rand.NewSource(seed+1)))
			if err != nil {
				t.Fatalf("seed %d: refine: %v", seed, err)
			}
			if err := Validate(d, cm, r); err != nil {
				t.Fatalf("seed %d (%s): refined schedule invalid: %v", seed, d.Name, err)
			}
			if r.Makespan > s.Makespan+1e-9 {
				t.Fatalf("seed %d: refined makespan %v worse than HEFT %v", seed, r.Makespan, s.Makespan)
			}
			refined++
		}
	}
	if refined < 40 {
		t.Fatalf("only %d refined instances checked", refined)
	}
}

// TestPlacementObjectiveDeltaConsistency: the cached SwapDelta of the
// search adapter must equal the brute-force makespan difference of the
// swapped placement, across random partitions and swap pairs.
func TestPlacementObjectiveDeltaConsistency(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		d, err := metatask.GenerateRandomDAG(16, 4, 0.25, 1.5, 1.5, rng)
		if err != nil {
			t.Fatal(err)
		}
		cm := randomComm(4, rng)
		s, err := ScheduleDAG(d, cm)
		if err != nil {
			t.Fatal(err)
		}
		used := UsedProcs(s.ProcOf)
		if len(used) < 2 {
			continue
		}
		clusterOf := map[int]int{}
		for c, p := range used {
			clusterOf[p] = c
		}
		assign := make([]int, d.Tasks())
		for task, p := range s.ProcOf {
			assign[task] = clusterOf[p]
		}
		part, err := mapping.New(assign, len(used))
		if err != nil {
			t.Fatal(err)
		}
		obj, err := NewPlacementObjective(d, cm, used)
		if err != nil {
			t.Fatal(err)
		}
		base := obj.IntraSum(part)
		for trial := 0; trial < 20; trial++ {
			u, v := rng.Intn(d.Tasks()), rng.Intn(d.Tasks())
			delta := obj.SwapDelta(part, u, v)
			if part.Cluster(u) == part.Cluster(v) {
				if delta != 0 {
					t.Fatalf("seed %d: same-cluster swap delta %v", seed, delta)
				}
				continue
			}
			// Brute force: evaluate the swapped placement directly.
			swapped := make([]int, d.Tasks())
			for task := range swapped {
				swapped[task] = used[part.Cluster(task)]
			}
			swapped[u], swapped[v] = swapped[v], swapped[u]
			es, err := EvaluatePlacement(d, cm, swapped)
			if err != nil {
				t.Fatal(err)
			}
			if want := es.Makespan - base; math.Abs(delta-want) > 1e-9 {
				t.Fatalf("seed %d trial %d: SwapDelta %v, brute force %v", seed, trial, delta, want)
			}
		}
	}
}
