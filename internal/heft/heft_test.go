package heft

import (
	"math"
	"math/rand"
	"testing"

	"commsched/internal/metatask"
	"commsched/internal/search"
)

// classicDAG builds the canonical 10-task, 3-processor HEFT example
// (Topcuoglu, Hariri, Wu, TPDS 2002, Figure 2 / Table 1) whose upward
// ranks and final makespan are published — the known-answer instance.
func classicDAG(t *testing.T) *metatask.DAG {
	t.Helper()
	comp := [][]float64{
		{14, 16, 9},
		{13, 19, 18},
		{11, 13, 19},
		{13, 8, 17},
		{12, 13, 10},
		{13, 16, 9},
		{7, 15, 11},
		{5, 11, 14},
		{18, 12, 20},
		{21, 7, 16},
	}
	// Edge data = the paper's transfer costs (unit bandwidth).
	edges := []metatask.DAGEdge{
		{From: 0, To: 1, Data: 18},
		{From: 0, To: 2, Data: 12},
		{From: 0, To: 3, Data: 9},
		{From: 0, To: 4, Data: 11},
		{From: 0, To: 5, Data: 14},
		{From: 1, To: 7, Data: 19},
		{From: 1, To: 8, Data: 16},
		{From: 2, To: 6, Data: 23},
		{From: 3, To: 7, Data: 27},
		{From: 3, To: 8, Data: 23},
		{From: 4, To: 8, Data: 13},
		{From: 5, To: 7, Data: 15},
		{From: 6, To: 9, Data: 17},
		{From: 7, To: 9, Data: 11},
		{From: 8, To: 9, Data: 13},
	}
	d, err := metatask.NewDAG("classic10", comp, edges)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestClassicRanks pins the published upward ranks of the 10-task
// example (paper Table: rank_u(n_1)=108.000 ... rank_u(n_10)=14.667).
func TestClassicRanks(t *testing.T) {
	d := classicDAG(t)
	ranks := Ranks(d, UniformComm{N: 3})
	want := []float64{108, 77, 80, 80, 69, 63.333, 42.667, 35.667, 44.333, 14.667}
	for i, w := range want {
		if math.Abs(ranks[i]-w) > 0.001 {
			t.Errorf("rank(n%d) = %.3f, want %.3f", i+1, ranks[i], w)
		}
	}
}

// TestClassicSchedule pins the published HEFT result on the known-answer
// instance: makespan 80 with the insertion-based policy.
func TestClassicSchedule(t *testing.T) {
	d := classicDAG(t)
	cm := UniformComm{N: 3}
	s, err := ScheduleDAG(d, cm)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(d, cm, s); err != nil {
		t.Fatalf("classic schedule invalid: %v", err)
	}
	if math.Abs(s.Makespan-80) > 0.001 {
		t.Fatalf("classic makespan = %.3f, want 80.000 (schedule %+v)", s.Makespan, s.ProcOf)
	}
	// The priority list of the paper: n1, n3, n4, n2, n5, n6, n9, n7, n8,
	// n10 (ties 80.0 between n3/n4 broken by index).
	want := []int{0, 2, 3, 1, 4, 5, 8, 6, 7, 9}
	for i, task := range want {
		if s.Order[i] != task {
			t.Fatalf("scheduling order[%d] = n%d, want n%d (full order %v)", i, s.Order[i]+1, task+1, s.Order)
		}
	}
}

// TestEvaluatePlacementReproducesHEFT: re-evaluating the placement HEFT
// chose must reproduce the identical schedule — the evaluator and the
// scheduler share order, ready-time, and slot-search semantics.
func TestEvaluatePlacementReproducesHEFT(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		d, err := metatask.GenerateRandomDAG(25, 4, 0.2, 1.5, 1.0, rng)
		if err != nil {
			t.Fatal(err)
		}
		cm := UniformComm{N: 4}
		s, err := ScheduleDAG(d, cm)
		if err != nil {
			t.Fatal(err)
		}
		e, err := EvaluatePlacement(d, cm, s.ProcOf)
		if err != nil {
			t.Fatal(err)
		}
		if e.Makespan != s.Makespan {
			t.Fatalf("seed %d: evaluator makespan %v != scheduler %v", seed, e.Makespan, s.Makespan)
		}
		for task := range s.Start {
			if e.Start[task] != s.Start[task] || e.Finish[task] != s.Finish[task] {
				t.Fatalf("seed %d: task %d interval differs: [%v,%v] vs [%v,%v]",
					seed, task, e.Start[task], e.Finish[task], s.Start[task], s.Finish[task])
			}
		}
	}
}

func TestCommModels(t *testing.T) {
	if _, err := NewMatrixComm(nil); err == nil {
		t.Error("empty matrix accepted")
	}
	if _, err := NewMatrixComm([][]float64{{1}}); err == nil {
		t.Error("non-zero diagonal accepted")
	}
	if _, err := NewMatrixComm([][]float64{{0, -1}, {-1, 0}}); err == nil {
		t.Error("negative cost accepted")
	}
	m, err := NewMatrixComm([][]float64{{0, 2}, {2, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Cost(0, 1) != 2 || m.Cost(1, 1) != 0 {
		t.Fatalf("matrix costs wrong: %v %v", m.Cost(0, 1), m.Cost(1, 1))
	}
	if got := meanCost(m); got != 2 {
		t.Fatalf("meanCost = %v, want 2", got)
	}
	if got := meanCost(UniformComm{N: 1}); got != 0 {
		t.Fatalf("single-proc meanCost = %v, want 0", got)
	}
}

func TestScheduleDAGRejectsMismatchedModel(t *testing.T) {
	d := classicDAG(t)
	if _, err := ScheduleDAG(d, UniformComm{N: 2}); err == nil {
		t.Error("processor-count mismatch accepted")
	}
	if _, err := EvaluatePlacement(d, UniformComm{N: 3}, []int{0}); err == nil {
		t.Error("short placement accepted")
	}
	if _, err := EvaluatePlacement(d, UniformComm{N: 3}, []int{9, 0, 0, 0, 0, 0, 0, 0, 0, 0}); err == nil {
		t.Error("out-of-range placement accepted")
	}
}

// TestValidateCatchesViolations corrupts valid schedules along each
// invariant and requires Validate to object.
func TestValidateCatchesViolations(t *testing.T) {
	d := classicDAG(t)
	cm := UniformComm{N: 3}
	fresh := func() *Schedule {
		s, err := ScheduleDAG(d, cm)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	s := fresh()
	s.Makespan *= 2
	if err := Validate(d, cm, s); err == nil {
		t.Error("inflated makespan passed")
	}
	s = fresh()
	s.Start[9] = 0 // far before its predecessors finish
	s.Finish[9] = d.Comp[9][s.ProcOf[9]]
	if err := Validate(d, cm, s); err == nil {
		t.Error("precedence violation passed")
	}
	s = fresh()
	s.Finish[3] = s.Start[3] // finish != start + cost
	if err := Validate(d, cm, s); err == nil {
		t.Error("inconsistent interval passed")
	}
	s = fresh()
	// Put every task on processor 0 at its original times: overlaps.
	for task := range s.ProcOf {
		s.ProcOf[task] = 0
	}
	if err := Validate(d, cm, s); err == nil {
		t.Error("overlapping tasks passed")
	}
}

// TestRefineNeverWorsens: Tabu refinement warm-starts at the HEFT
// placement, so its makespan can only improve or stay.
func TestRefineNeverWorsens(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		d, err := metatask.GenerateLayeredDAG(4, 4, 4, 2, 2, rng)
		if err != nil {
			t.Fatal(err)
		}
		cm := UniformComm{N: 4}
		s, err := ScheduleDAG(d, cm)
		if err != nil {
			t.Fatal(err)
		}
		refined, res, err := RefinePlacement(nil, d, cm, s, search.NewTabu(), rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		if err := Validate(d, cm, refined); err != nil {
			t.Fatalf("seed %d: refined schedule invalid: %v", seed, err)
		}
		if refined.Makespan > s.Makespan+1e-9 {
			t.Fatalf("seed %d: refinement worsened makespan: %v > %v", seed, refined.Makespan, s.Makespan)
		}
		if res.Evaluations == 0 {
			t.Fatalf("seed %d: refinement did no work", seed)
		}
	}
}
