package heft

import (
	"context"
	"fmt"
	"math/rand"

	"commsched/internal/mapping"
	"commsched/internal/metatask"
	"commsched/internal/obs"
	"commsched/internal/search"
)

// placementEval evaluates fixed placements repeatedly with shared
// rank/order/timeline buffers — the hot loop of Tabu refinement calls it
// O(tasks²) times per iteration.
type placementEval struct {
	d         *metatask.DAG
	cm        CommModel
	order     []int
	finish    []float64
	procOf    []int
	timelines []procTimeline
}

func newPlacementEval(d *metatask.DAG, cm CommModel) *placementEval {
	ranks := Ranks(d, cm)
	return &placementEval{
		d:         d,
		cm:        cm,
		order:     rankOrder(ranks),
		finish:    make([]float64, d.Tasks()),
		procOf:    make([]int, d.Tasks()),
		timelines: make([]procTimeline, d.Procs()),
	}
}

// makespan schedules the placement in rank order with insertion-based
// slot search (the EvaluatePlacement semantics) and returns only the
// makespan.
func (pe *placementEval) makespan(procOf []int) float64 {
	for p := range pe.timelines {
		pe.timelines[p].start = pe.timelines[p].start[:0]
		pe.timelines[p].finish = pe.timelines[p].finish[:0]
	}
	mk := 0.0
	for _, t := range pe.order {
		p := procOf[t]
		ready := 0.0
		for _, ei := range pe.d.Pred(t) {
			e := pe.d.Edges[ei]
			arrive := pe.finish[e.From] + e.Data*pe.cm.Cost(procOf[e.From], p)
			if arrive > ready {
				ready = arrive
			}
		}
		at := pe.timelines[p].insert(ready, pe.d.Comp[t][p])
		pe.finish[t] = at + pe.d.Comp[t][p]
		if pe.finish[t] > mk {
			mk = pe.finish[t]
		}
	}
	return mk
}

// PlacementObjective adapts the makespan evaluator to search.Objective,
// so the Tabu searcher (and any swap-move searcher) can refine task
// placements exactly as it refines switch partitions. Partition cluster
// c stands for processor ProcIDs[c]; swap moves exchange the processors
// of two tasks.
//
// The adapter caches the makespan of the partition it last evaluated
// (Tabu probes O(tasks²) swaps against one base partition per
// iteration), so SwapDelta costs one evaluation, not two. It is not safe
// for concurrent use; give each goroutine its own instance.
type PlacementObjective struct {
	d       *metatask.DAG
	cm      CommModel
	procIDs []int
	eval    *placementEval

	baseAssign []int
	baseVal    float64
	haveBase   bool
	scratch    []int
}

// NewPlacementObjective builds the adapter. procIDs maps partition
// clusters to processors (a refinement is free to cover only the
// processors the seed schedule actually used).
func NewPlacementObjective(d *metatask.DAG, cm CommModel, procIDs []int) (*PlacementObjective, error) {
	if err := checkModel(d, cm); err != nil {
		return nil, err
	}
	if len(procIDs) == 0 {
		return nil, fmt.Errorf("heft: empty processor list")
	}
	for _, p := range procIDs {
		if p < 0 || p >= d.Procs() {
			return nil, fmt.Errorf("heft: processor id %d outside [0,%d)", p, d.Procs())
		}
	}
	return &PlacementObjective{
		d:          d,
		cm:         cm,
		procIDs:    append([]int(nil), procIDs...),
		eval:       newPlacementEval(d, cm),
		baseAssign: make([]int, d.Tasks()),
		scratch:    make([]int, d.Tasks()),
	}, nil
}

// fill translates a partition into a processor assignment in scratch.
func (o *PlacementObjective) fill(p *mapping.Partition, dst []int) {
	for t := range dst {
		dst[t] = o.procIDs[p.Cluster(t)]
	}
}

// base returns the cached makespan of p, refreshing the cache when p's
// assignment changed since the last call.
func (o *PlacementObjective) base(p *mapping.Partition) float64 {
	same := o.haveBase
	for t := 0; same && t < len(o.baseAssign); t++ {
		same = o.baseAssign[t] == o.procIDs[p.Cluster(t)]
	}
	if !same {
		o.fill(p, o.baseAssign)
		o.baseVal = o.eval.makespan(o.baseAssign)
		o.haveBase = true
	}
	return o.baseVal
}

// IntraSum implements search.Objective: the makespan of the placement
// (the name is the searchers' historical term for "objective value").
func (o *PlacementObjective) IntraSum(p *mapping.Partition) float64 {
	return o.base(p)
}

// SwapDelta implements search.Objective: the makespan change if tasks u
// and v exchanged processors.
func (o *PlacementObjective) SwapDelta(p *mapping.Partition, u, v int) float64 {
	cu, cv := p.Cluster(u), p.Cluster(v)
	if cu == cv {
		return 0
	}
	before := o.base(p)
	copy(o.scratch, o.baseAssign)
	o.scratch[u], o.scratch[v] = o.procIDs[cv], o.procIDs[cu]
	return o.eval.makespan(o.scratch) - before
}

// UsedProcs returns the sorted distinct processors of a placement.
func UsedProcs(procOf []int) []int {
	seen := map[int]bool{}
	var used []int
	for _, p := range procOf {
		if !seen[p] {
			seen[p] = true
			used = append(used, p)
		}
	}
	for i := 1; i < len(used); i++ {
		for j := i; j > 0 && used[j] < used[j-1]; j-- {
			used[j], used[j-1] = used[j-1], used[j]
		}
	}
	return used
}

// RefinePlacement warm-starts the given Tabu searcher from a seed
// schedule's placement via search.Tabu.SearchFrom and returns the
// refined schedule. The search's swap neighborhood exchanges the
// processors of task pairs over the processors the seed actually used,
// so the refined makespan never exceeds the seed's. The result is a
// pure function of (DAG, comm model, seed placement, tabu parameters).
func RefinePlacement(ctx context.Context, d *metatask.DAG, cm CommModel, seed *Schedule, tb *search.Tabu, rng *rand.Rand) (*Schedule, *search.Result, error) {
	if len(seed.ProcOf) != d.Tasks() {
		return nil, nil, fmt.Errorf("heft: seed placement covers %d tasks, DAG has %d", len(seed.ProcOf), d.Tasks())
	}
	sp, ctx := obs.StartSpanCtx(ctx, "heft.refine", obs.F("tasks", d.Tasks()), obs.F("procs", d.Procs()))
	used := UsedProcs(seed.ProcOf)
	clusterOf := make(map[int]int, len(used))
	for c, p := range used {
		clusterOf[p] = c
	}
	assign := make([]int, d.Tasks())
	for t, p := range seed.ProcOf {
		assign[t] = clusterOf[p]
	}
	start, err := mapping.New(assign, len(used))
	if err != nil {
		return nil, nil, fmt.Errorf("heft: seed placement not partitionable: %w", err)
	}
	sizes := make([]int, start.M())
	for c := range sizes {
		sizes[c] = start.Size(c)
	}
	obj, err := NewPlacementObjective(d, cm, used)
	if err != nil {
		return nil, nil, err
	}
	res, err := tb.SearchFrom(ctx, obj, search.Spec{Sizes: sizes}, rng, start)
	if err != nil {
		return nil, nil, err
	}
	procOf := make([]int, d.Tasks())
	for t := range procOf {
		procOf[t] = used[res.Best.Cluster(t)]
	}
	refined, err := EvaluatePlacement(d, cm, procOf)
	if err != nil {
		return nil, nil, err
	}
	sp.End(obs.F("seed_makespan", seed.Makespan), obs.F("refined_makespan", refined.Makespan),
		obs.F("evaluations", res.Evaluations))
	return refined, res, nil
}
