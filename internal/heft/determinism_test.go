package heft

import (
	"math/rand"
	"reflect"
	"testing"

	"commsched/internal/metatask"
	"commsched/internal/search"
)

// Determinism contract of the DAG scheduler stack, mirroring the Tabu
// determinism tests: the same seeds must produce byte-identical
// schedules — HEFT proper, the placement evaluator, and the Tabu-refined
// placement — run after run. The adversarial-search half of the contract
// (serial vs par.ForEach CSV identity) lives in
// internal/experiments/adversarial_test.go.

func schedulesEqual(t *testing.T, label string, a, b *Schedule) {
	t.Helper()
	if !reflect.DeepEqual(a.ProcOf, b.ProcOf) {
		t.Fatalf("%s: placements differ: %v vs %v", label, a.ProcOf, b.ProcOf)
	}
	if !reflect.DeepEqual(a.Start, b.Start) || !reflect.DeepEqual(a.Finish, b.Finish) {
		t.Fatalf("%s: intervals differ", label)
	}
	if a.Makespan != b.Makespan {
		t.Fatalf("%s: makespans differ: %v vs %v", label, a.Makespan, b.Makespan)
	}
	if !reflect.DeepEqual(a.Order, b.Order) {
		t.Fatalf("%s: orders differ: %v vs %v", label, a.Order, b.Order)
	}
}

// TestHEFTDeterministic: regenerating the instance from the same seed
// and rescheduling must reproduce the identical Schedule, for every
// generator family.
func TestHEFTDeterministic(t *testing.T) {
	build := func(seed int64) (*metatask.DAG, CommModel, *Schedule) {
		rng := rand.New(rand.NewSource(seed))
		var (
			d   *metatask.DAG
			err error
		)
		switch seed % 3 {
		case 0:
			d, err = metatask.GenerateLayeredDAG(3, 4, 4, 1.5, 1, rng)
		case 1:
			d, err = metatask.GenerateForkJoinDAG(2, 5, 4, 1.5, 1, rng)
		default:
			d, err = metatask.GenerateRandomDAG(24, 4, 0.2, 1.5, 1, rng)
		}
		if err != nil {
			t.Fatal(err)
		}
		cm := randomComm(4, rng)
		s, err := ScheduleDAG(d, cm)
		if err != nil {
			t.Fatal(err)
		}
		return d, cm, s
	}
	for seed := int64(0); seed < 9; seed++ {
		_, _, a := build(seed)
		_, _, b := build(seed)
		schedulesEqual(t, "HEFT repeat", a, b)
	}
}

// TestRefineDeterministic: the Tabu-refined placement must also be an
// exact function of the seeds.
func TestRefineDeterministic(t *testing.T) {
	run := func() *Schedule {
		rng := rand.New(rand.NewSource(77))
		d, err := metatask.GenerateRandomDAG(28, 4, 0.25, 2, 2, rng)
		if err != nil {
			t.Fatal(err)
		}
		cm := UniformComm{N: 4}
		s, err := ScheduleDAG(d, cm)
		if err != nil {
			t.Fatal(err)
		}
		r, _, err := RefinePlacement(nil, d, cm, s, search.NewTabu(), rand.New(rand.NewSource(78)))
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	schedulesEqual(t, "refine repeat", run(), run())
}
