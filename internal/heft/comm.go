package heft

import (
	"fmt"

	"commsched/internal/distance"
)

// CommModel prices inter-processor communication: Cost(p, q) is the
// transfer cost per unit of edge data between processors p and q. A task
// and its successor on the same processor communicate for free
// (Cost(p, p) must be 0), matching the classic HEFT assumption.
type CommModel interface {
	// Procs returns the number of processors the model covers.
	Procs() int
	// Cost returns the per-unit-data transfer cost between p and q.
	Cost(p, q int) float64
}

// UniformComm is the textbook model: unit cost between distinct
// processors, zero locally — the model under which the classic 10-task
// HEFT example reproduces its published makespan.
type UniformComm struct {
	// N is the processor count.
	N int
}

// Procs implements CommModel.
func (u UniformComm) Procs() int { return u.N }

// Cost implements CommModel.
func (u UniformComm) Cost(p, q int) float64 {
	if p == q {
		return 0
	}
	return 1
}

// MatrixComm prices communication with an explicit symmetric cost
// matrix — the bridge from the paper's network model to DAG scheduling.
type MatrixComm struct {
	cost [][]float64
}

// NewMatrixComm validates a square matrix with a zero diagonal and
// non-negative entries.
func NewMatrixComm(cost [][]float64) (*MatrixComm, error) {
	n := len(cost)
	if n == 0 {
		return nil, fmt.Errorf("heft: empty comm matrix")
	}
	for p, row := range cost {
		if len(row) != n {
			return nil, fmt.Errorf("heft: ragged comm row %d", p)
		}
		for q, v := range row {
			if p == q && v != 0 {
				return nil, fmt.Errorf("heft: non-zero local comm cost at proc %d", p)
			}
			if v < 0 {
				return nil, fmt.Errorf("heft: negative comm cost at (%d,%d)", p, q)
			}
		}
	}
	return &MatrixComm{cost: cost}, nil
}

// CommFromTable derives processor communication costs from the paper's
// table of equivalent distances: processor p lives at switch procSwitch[p]
// and Cost(p, q) = T(procSwitch[p], procSwitch[q]). Two processors may
// share a switch (their cost is then 0 — co-located compute units).
func CommFromTable(tab *distance.Table, procSwitch []int) (*MatrixComm, error) {
	if len(procSwitch) == 0 {
		return nil, fmt.Errorf("heft: no processors")
	}
	for p, s := range procSwitch {
		if s < 0 || s >= tab.N() {
			return nil, fmt.Errorf("heft: processor %d placed at switch %d, table covers [0,%d)", p, s, tab.N())
		}
	}
	cost := make([][]float64, len(procSwitch))
	for p := range cost {
		cost[p] = make([]float64, len(procSwitch))
		for q := range cost[p] {
			if p != q {
				cost[p][q] = tab.At(procSwitch[p], procSwitch[q])
			}
		}
	}
	return &MatrixComm{cost: cost}, nil
}

// Procs implements CommModel.
func (m *MatrixComm) Procs() int { return len(m.cost) }

// Cost implements CommModel.
func (m *MatrixComm) Cost(p, q int) float64 { return m.cost[p][q] }

// meanCost returns the average off-diagonal cost — the c̄ normalization
// of HEFT's upward ranks. A single-processor model has no transfers and
// returns 0.
func meanCost(cm CommModel) float64 {
	n := cm.Procs()
	if n < 2 {
		return 0
	}
	s := 0.0
	for p := 0; p < n; p++ {
		for q := p + 1; q < n; q++ {
			s += cm.Cost(p, q)
		}
	}
	return s / float64(n*(n-1)/2)
}
