// Package heft implements the HEFT list scheduler (Heterogeneous
// Earliest Finish Time, Topcuoglu/Hariri/Wu) for the precedence-
// constrained task graphs of internal/metatask: upward ranks computed
// over mean compute and mean communication costs set the scheduling
// priority, and each task is placed on the processor minimizing its
// finish time with insertion-based slot search (a task may fill an idle
// gap between two already-scheduled tasks).
//
// Beside the scheduler proper, the package provides the makespan
// evaluator for *fixed* placements (EvaluatePlacement) — the DAG
// counterpart of quality.Cc — an adapter satisfying search.Objective so
// the existing Tabu/anneal/genetic searchers can refine a HEFT-seeded
// placement through search.Tabu.SearchFrom, and the schedule-validity
// checker (Validate) that the property tests and the CI dag-smoke job
// run over every schedule.
package heft

import (
	"context"
	"fmt"
	"math"
	"sort"

	"commsched/internal/metatask"
	"commsched/internal/obs"
)

// Schedule is a complete assignment of tasks to processors and time.
type Schedule struct {
	// ProcOf maps task -> processor.
	ProcOf []int
	// Start and Finish are each task's scheduled interval;
	// Finish[t] = Start[t] + Comp[t][ProcOf[t]].
	Start, Finish []float64
	// Makespan is the maximum finish time.
	Makespan float64
	// Ranks are the upward ranks the priority list was built from.
	Ranks []float64
	// Order is the scheduling order (decreasing rank, ties by task index).
	Order []int
}

// Ranks computes the upward rank of every task:
//
//	rank(t) = w̄(t) + max over successors s of (c̄(t,s) + rank(s))
//
// with w̄ the mean compute cost across processors and c̄ the edge data
// scaled by the mean off-diagonal communication cost of the model.
func Ranks(d *metatask.DAG, cm CommModel) []float64 {
	mean := meanCost(cm)
	ranks := make([]float64, d.Tasks())
	topo := d.Topo()
	for i := len(topo) - 1; i >= 0; i-- {
		t := topo[i]
		best := 0.0
		for _, ei := range d.Succ(t) {
			e := d.Edges[ei]
			if v := e.Data*mean + ranks[e.To]; v > best {
				best = v
			}
		}
		ranks[t] = d.MeanComp(t) + best
	}
	return ranks
}

// rankEpsilon tolerates the float drift of mean-compute divisions when
// comparing ranks: analytically tied tasks (the classic example's
// n3/n4, both exactly 80) must fall back to the index tie-break, not to
// the noise of their last ulp. Any true rank gap across an edge is at
// least the predecessor's mean compute cost — many orders of magnitude
// larger.
const rankEpsilon = 1e-9

// rankOrder returns the tasks sorted by decreasing upward rank, ties
// broken by ascending task index (the classic example's ordering). The
// order is guaranteed topological: across any edge, rank(from) exceeds
// rank(to) by at least the positive w̄(from).
func rankOrder(ranks []float64) []int {
	order := make([]int, len(ranks))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ra, rb := ranks[order[a]], ranks[order[b]]
		if diff := ra - rb; diff > rankEpsilon*(1+math.Abs(ra)) || diff < -rankEpsilon*(1+math.Abs(ra)) {
			return ra > rb
		}
		return order[a] < order[b]
	})
	return order
}

// procTimeline is one processor's scheduled intervals in start order.
type procTimeline struct {
	start, finish []float64
}

// insert finds the earliest start >= ready that fits dur on the
// timeline — either inside an idle gap between scheduled intervals
// (insertion-based slot search) or after the last one — and records it.
func (tl *procTimeline) insert(ready, dur float64) float64 {
	at := ready
	slot := len(tl.start)
	for i := 0; i < len(tl.start); i++ {
		gapStart := ready
		if i > 0 && tl.finish[i-1] > gapStart {
			gapStart = tl.finish[i-1]
		}
		if gapStart+dur <= tl.start[i]+slotEpsilon {
			at, slot = gapStart, i
			break
		}
	}
	if slot == len(tl.start) && len(tl.start) > 0 {
		if last := tl.finish[len(tl.finish)-1]; last > at {
			at = last
		}
	}
	tl.start = append(tl.start, 0)
	tl.finish = append(tl.finish, 0)
	copy(tl.start[slot+1:], tl.start[slot:])
	copy(tl.finish[slot+1:], tl.finish[slot:])
	tl.start[slot] = at
	tl.finish[slot] = at + dur
	return at
}

// peek returns the start insert would choose without mutating the
// timeline.
func (tl *procTimeline) peek(ready, dur float64) float64 {
	at := ready
	for i := 0; i < len(tl.start); i++ {
		gapStart := ready
		if i > 0 && tl.finish[i-1] > gapStart {
			gapStart = tl.finish[i-1]
		}
		if gapStart+dur <= tl.start[i]+slotEpsilon {
			return gapStart
		}
	}
	if len(tl.start) > 0 {
		if last := tl.finish[len(tl.finish)-1]; last > at {
			at = last
		}
	}
	return at
}

// slotEpsilon absorbs float drift when checking whether a task fits a
// gap exactly; durations are O(1..10²), so 1e-9 is far below any real
// slack.
const slotEpsilon = 1e-9

// checkModel validates that the DAG and comm model agree on the
// processor count.
func checkModel(d *metatask.DAG, cm CommModel) error {
	if d.Procs() != cm.Procs() {
		return fmt.Errorf("heft: DAG has %d processors, comm model %d", d.Procs(), cm.Procs())
	}
	return nil
}

// ScheduleDAG runs HEFT proper: tasks in decreasing upward-rank order,
// each placed on the processor minimizing its earliest finish time under
// insertion-based slot search. The result is a pure function of the DAG
// and the comm model.
func ScheduleDAG(d *metatask.DAG, cm CommModel) (*Schedule, error) {
	return ScheduleDAGCtx(context.Background(), d, cm)
}

// ScheduleDAGCtx is ScheduleDAG carrying a caller context so the
// scheduling span joins the caller's trace (a Background context falls
// back to the process root trace, when one is installed). The context
// carries identity only — HEFT itself never blocks, so there is no
// cancellation point to honor.
func ScheduleDAGCtx(ctx context.Context, d *metatask.DAG, cm CommModel) (*Schedule, error) {
	if err := checkModel(d, cm); err != nil {
		return nil, err
	}
	sp, _ := obs.StartSpanCtx(ctx, "heft.schedule", obs.F("tasks", d.Tasks()), obs.F("procs", d.Procs()))
	ranks := Ranks(d, cm)
	order := rankOrder(ranks)
	s := &Schedule{
		ProcOf: make([]int, d.Tasks()),
		Start:  make([]float64, d.Tasks()),
		Finish: make([]float64, d.Tasks()),
		Ranks:  ranks,
		Order:  order,
	}
	timelines := make([]procTimeline, d.Procs())
	for _, t := range order {
		bestP, bestStart, bestFinish := -1, 0.0, math.Inf(1)
		for p := 0; p < d.Procs(); p++ {
			ready := readyTime(d, cm, s, t, p)
			at := timelines[p].peek(ready, d.Comp[t][p])
			if finish := at + d.Comp[t][p]; finish < bestFinish-slotEpsilon {
				bestP, bestStart, bestFinish = p, at, finish
			}
		}
		timelines[bestP].insert(bestStart, d.Comp[t][bestP])
		s.ProcOf[t] = bestP
		s.Start[t] = bestStart
		s.Finish[t] = bestFinish
		if bestFinish > s.Makespan {
			s.Makespan = bestFinish
		}
	}
	sp.End(obs.F("makespan", s.Makespan))
	return s, nil
}

// readyTime returns the earliest moment task t's inputs are available on
// processor p: every predecessor must have finished and shipped its data.
func readyTime(d *metatask.DAG, cm CommModel, s *Schedule, t, p int) float64 {
	ready := 0.0
	for _, ei := range d.Pred(t) {
		e := d.Edges[ei]
		arrive := s.Finish[e.From] + e.Data*cm.Cost(s.ProcOf[e.From], p)
		if arrive > ready {
			ready = arrive
		}
	}
	return ready
}

// EvaluatePlacement computes the schedule of a *fixed* task-to-processor
// placement: tasks keep HEFT's rank priority order but each goes to its
// assigned processor, with the same insertion-based slot search. This is
// the makespan evaluator the searchers minimize when refining a
// HEFT-seeded placement — the DAG-workload analogue of quality.Cc.
func EvaluatePlacement(d *metatask.DAG, cm CommModel, procOf []int) (*Schedule, error) {
	if err := checkModel(d, cm); err != nil {
		return nil, err
	}
	if len(procOf) != d.Tasks() {
		return nil, fmt.Errorf("heft: placement covers %d tasks, DAG has %d", len(procOf), d.Tasks())
	}
	for t, p := range procOf {
		if p < 0 || p >= d.Procs() {
			return nil, fmt.Errorf("heft: task %d placed on processor %d, want [0,%d)", t, p, d.Procs())
		}
	}
	ranks := Ranks(d, cm)
	order := rankOrder(ranks)
	s := &Schedule{
		ProcOf: append([]int(nil), procOf...),
		Start:  make([]float64, d.Tasks()),
		Finish: make([]float64, d.Tasks()),
		Ranks:  ranks,
		Order:  order,
	}
	timelines := make([]procTimeline, d.Procs())
	for _, t := range order {
		p := procOf[t]
		ready := readyTime(d, cm, s, t, p)
		at := timelines[p].insert(ready, d.Comp[t][p])
		s.Start[t] = at
		s.Finish[t] = at + d.Comp[t][p]
		if s.Finish[t] > s.Makespan {
			s.Makespan = s.Finish[t]
		}
	}
	return s, nil
}

// validityEpsilon is the tolerance of the schedule checker: all times
// come from sums of O(10²) costs, so any true violation is far larger.
const validityEpsilon = 1e-6

// Validate checks the schedule-validity invariants the property tests
// and the CI dag-smoke job enforce:
//
//  1. precedence: no task starts before every predecessor's finish plus
//     the communication delay between their processors;
//  2. exclusivity: no processor runs two tasks concurrently;
//  3. consistency: Finish = Start + compute cost, and Makespan equals
//     the maximum finish time.
func Validate(d *metatask.DAG, cm CommModel, s *Schedule) error {
	if err := checkModel(d, cm); err != nil {
		return err
	}
	n := d.Tasks()
	if len(s.ProcOf) != n || len(s.Start) != n || len(s.Finish) != n {
		return fmt.Errorf("heft: schedule covers %d/%d/%d tasks, DAG has %d",
			len(s.ProcOf), len(s.Start), len(s.Finish), n)
	}
	maxFinish := 0.0
	for t := 0; t < n; t++ {
		p := s.ProcOf[t]
		if p < 0 || p >= d.Procs() {
			return fmt.Errorf("heft: task %d on invalid processor %d", t, p)
		}
		if s.Start[t] < -validityEpsilon {
			return fmt.Errorf("heft: task %d starts at %g before time 0", t, s.Start[t])
		}
		if want := s.Start[t] + d.Comp[t][p]; math.Abs(s.Finish[t]-want) > validityEpsilon {
			return fmt.Errorf("heft: task %d finish %g != start %g + cost %g", t, s.Finish[t], s.Start[t], d.Comp[t][p])
		}
		if s.Finish[t] > maxFinish {
			maxFinish = s.Finish[t]
		}
	}
	if math.Abs(maxFinish-s.Makespan) > validityEpsilon {
		return fmt.Errorf("heft: makespan %g != max finish %g", s.Makespan, maxFinish)
	}
	for _, e := range d.Edges {
		earliest := s.Finish[e.From] + e.Data*cm.Cost(s.ProcOf[e.From], s.ProcOf[e.To])
		if s.Start[e.To] < earliest-validityEpsilon {
			return fmt.Errorf("heft: task %d starts at %g before predecessor %d's data arrives at %g",
				e.To, s.Start[e.To], e.From, earliest)
		}
	}
	// Exclusivity: sort each processor's tasks by start and require
	// non-overlap.
	byProc := make([][]int, d.Procs())
	for t := 0; t < n; t++ {
		byProc[s.ProcOf[t]] = append(byProc[s.ProcOf[t]], t)
	}
	for p, tasks := range byProc {
		sort.Slice(tasks, func(a, b int) bool {
			if s.Start[tasks[a]] != s.Start[tasks[b]] {
				return s.Start[tasks[a]] < s.Start[tasks[b]]
			}
			return tasks[a] < tasks[b]
		})
		for i := 1; i < len(tasks); i++ {
			prev, cur := tasks[i-1], tasks[i]
			if s.Start[cur] < s.Finish[prev]-validityEpsilon {
				return fmt.Errorf("heft: tasks %d and %d overlap on processor %d ([%g,%g] vs [%g,%g])",
					prev, cur, p, s.Start[prev], s.Finish[prev], s.Start[cur], s.Finish[cur])
			}
		}
	}
	return nil
}
