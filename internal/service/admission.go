package service

import (
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Limits are the admission-control knobs of the service. The zero value
// of each knob disables that check, except QueueDepth which must be
// positive (an unbounded queue is the failure mode this package exists
// to prevent).
type Limits struct {
	// QueueDepth bounds the number of jobs queued but not yet running.
	// Past it, submissions get 429 + Retry-After — backpressure, not an
	// OOM kill an hour later.
	QueueDepth int
	// TenantRate is the sustained submissions/second each tenant may
	// make (token bucket; 0 = unlimited).
	TenantRate float64
	// TenantBurst is the bucket depth (defaults to max(1, TenantRate)).
	TenantBurst int
	// TenantJobs caps one tenant's queued+running jobs (0 = unlimited),
	// so a single tenant cannot occupy the whole queue.
	TenantJobs int
	// ShedBytes is the heap watermark: when the process heap exceeds
	// it, new work is shed with 429 until pressure clears (0 = off).
	ShedBytes uint64
}

// Decision is the admission verdict for one submission.
type Decision struct {
	// OK: admitted; the caller owns one queue slot + one tenant slot
	// and must Release them when the job leaves the system.
	OK bool
	// Code is the HTTP status to return when !OK (429 or 503).
	Code int
	// Reason is the machine-readable rejection class: "draining",
	// "shedding", "queue_full", "rate_limited", or "quota".
	Reason string
	// RetryAfter is the client's suggested backoff (0 = do not retry,
	// e.g. draining).
	RetryAfter time.Duration
}

func (d Decision) Error() string {
	return fmt.Sprintf("admission rejected: %s (retry after %s)", d.Reason, d.RetryAfter)
}

// bucket is one tenant's token bucket.
type bucket struct {
	tokens float64
	last   time.Time
}

// Admission enforces the limits. It tracks queue depth and per-tenant
// occupancy itself (Admit reserves, Release returns), so the check and
// the reservation are one atomic step — two racing submissions can
// never both squeeze into the last queue slot.
type Admission struct {
	lim  Limits
	now  func() time.Time
	heap func() uint64

	mu       sync.Mutex
	buckets  map[string]*bucket
	occupied map[string]int // per-tenant queued+running
	queued   int
	draining bool

	// rejection counters by reason, for /readyz and tests
	rejected map[string]int64
	admitted int64
}

// NewAdmission builds an admission controller. now and heap are
// injectable for tests; nil means wall clock and a cached
// runtime.MemStats probe.
func NewAdmission(lim Limits, now func() time.Time, heap func() uint64) (*Admission, error) {
	if lim.QueueDepth <= 0 {
		return nil, fmt.Errorf("service: QueueDepth must be positive (a bounded queue is the point)")
	}
	if lim.TenantRate > 0 && lim.TenantBurst <= 0 {
		lim.TenantBurst = int(lim.TenantRate)
		if lim.TenantBurst < 1 {
			lim.TenantBurst = 1
		}
	}
	if now == nil {
		now = time.Now
	}
	if heap == nil {
		heap = cachedHeapProbe(250 * time.Millisecond)
	}
	return &Admission{
		lim:      lim,
		now:      now,
		heap:     heap,
		buckets:  make(map[string]*bucket),
		occupied: make(map[string]int),
		rejected: make(map[string]int64),
	}, nil
}

// cachedHeapProbe samples runtime.ReadMemStats at most once per refresh
// interval — the admission hot path must not stop the world per request.
func cachedHeapProbe(refresh time.Duration) func() uint64 {
	var (
		mu   sync.Mutex
		last time.Time
		v    uint64
	)
	return func() uint64 {
		mu.Lock()
		defer mu.Unlock()
		if time.Since(last) >= refresh {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			v = ms.HeapAlloc
			last = time.Now()
		}
		return v
	}
}

// SetDraining flips the admission gate for graceful shutdown: while
// draining, every submission is refused with 503 and no Retry-After
// (this instance is going away; the client should go elsewhere).
func (a *Admission) SetDraining(on bool) {
	a.mu.Lock()
	a.draining = on
	a.mu.Unlock()
}

// Draining reports the gate state.
func (a *Admission) Draining() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.draining
}

// Shedding reports whether the heap watermark is currently exceeded.
func (a *Admission) Shedding() bool {
	return a.lim.ShedBytes > 0 && a.heap() > a.lim.ShedBytes
}

// Admit runs every check in severity order and, on success, reserves one
// queue slot and one tenant slot. The caller must pair it with
// MarkRunning (when a worker picks the job up) and Release (when the
// job leaves the system).
func (a *Admission) Admit(tenant string) Decision {
	// The heap probe does not need the lock (and may be slow-ish on its
	// refresh tick).
	shedding := a.Shedding()

	a.mu.Lock()
	defer a.mu.Unlock()
	reject := func(code int, reason string, retry time.Duration) Decision {
		a.rejected[reason]++
		return Decision{Code: code, Reason: reason, RetryAfter: retry}
	}
	if a.draining {
		return reject(503, "draining", 0)
	}
	if shedding {
		// Under memory pressure the fastest relief is finishing what is
		// already in flight; tell clients to come back after a GC cycle
		// has had a chance to run.
		return reject(429, "shedding", 5*time.Second)
	}
	if a.queued >= a.lim.QueueDepth {
		// Suggest a backoff proportional to the backlog: a full queue
		// of slow jobs should not invite an instant retry storm.
		retry := time.Second + time.Duration(a.queued)*50*time.Millisecond
		if retry > 30*time.Second {
			retry = 30 * time.Second
		}
		return reject(429, "queue_full", retry)
	}
	if a.lim.TenantJobs > 0 && a.occupied[tenant] >= a.lim.TenantJobs {
		return reject(429, "quota", time.Second)
	}
	if a.lim.TenantRate > 0 {
		b := a.buckets[tenant]
		now := a.now()
		if b == nil {
			b = &bucket{tokens: float64(a.lim.TenantBurst), last: now}
			a.buckets[tenant] = b
		}
		b.tokens += now.Sub(b.last).Seconds() * a.lim.TenantRate
		b.last = now
		if max := float64(a.lim.TenantBurst); b.tokens > max {
			b.tokens = max
		}
		if b.tokens < 1 {
			need := (1 - b.tokens) / a.lim.TenantRate
			return reject(429, "rate_limited", time.Duration(need*float64(time.Second))+time.Millisecond)
		}
		b.tokens--
	}
	a.queued++
	a.occupied[tenant]++
	a.admitted++
	return Decision{OK: true}
}

// MarkRunning moves one reservation from the queue to execution: the
// queue slot frees (new submissions may take it) while the tenant still
// owns an occupancy slot until Release.
func (a *Admission) MarkRunning() {
	a.mu.Lock()
	if a.queued > 0 {
		a.queued--
	}
	a.mu.Unlock()
}

// Requeue returns a previously-running reservation to the queue — the
// restart path for jobs recovered from a durable store. It bypasses the
// admission checks: the job was already admitted in a previous life.
func (a *Admission) Requeue(tenant string) {
	a.mu.Lock()
	a.queued++
	a.occupied[tenant]++
	a.mu.Unlock()
}

// Release returns a tenant occupancy slot (job reached a terminal or
// parked state). stillQueued also returns the queue slot (the job never
// started).
func (a *Admission) Release(tenant string, stillQueued bool) {
	a.mu.Lock()
	if stillQueued && a.queued > 0 {
		a.queued--
	}
	if a.occupied[tenant] > 0 {
		a.occupied[tenant]--
		if a.occupied[tenant] == 0 {
			delete(a.occupied, tenant)
		}
	}
	a.mu.Unlock()
}

// AdmissionStats is the controller's observable state.
type AdmissionStats struct {
	Queued   int              `json:"queued"`
	Admitted int64            `json:"admitted"`
	Rejected map[string]int64 `json:"rejected,omitempty"`
	Draining bool             `json:"draining"`
	Shedding bool             `json:"shedding"`
}

// Stats snapshots the counters.
func (a *Admission) Stats() AdmissionStats {
	shedding := a.Shedding()
	a.mu.Lock()
	defer a.mu.Unlock()
	rej := make(map[string]int64, len(a.rejected))
	for k, v := range a.rejected {
		rej[k] = v
	}
	return AdmissionStats{
		Queued:   a.queued,
		Admitted: a.admitted,
		Rejected: rej,
		Draining: a.draining,
		Shedding: shedding,
	}
}
