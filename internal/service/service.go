package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"commsched/internal/obs"
	"commsched/internal/par"
)

// ErrInvalid wraps submission errors that are the client's fault (400),
// as opposed to admission rejections (Decision: 429/503) and internal
// failures (500).
var ErrInvalid = errors.New("service: invalid job spec")

// Config assembles a Service. Zero fields get safe defaults; only
// Limits.QueueDepth is mandatory.
type Config struct {
	// Store persists jobs (default: a fresh MemStore). Use
	// OpenDurableStore for a daemon that must survive SIGKILL.
	Store JobStore
	// Runner executes jobs (default: a CoreRunner with Policy and
	// CkptRoot below).
	Runner Runner
	// Limits are the admission-control knobs.
	Limits Limits
	// Workers is the executor pool size (default GOMAXPROCS).
	Workers int
	// Policy is the per-unit robustness policy jobs run under.
	Policy par.Policy
	// CkptRoot is where per-job checkpoint directories live ("" = no
	// mid-job durability; pair with a DurableStore via CkptRoot(state)).
	CkptRoot string
	// Clock is injectable time (default time.Now).
	Clock func() time.Time
	// BatchMax / BatchWait tune the evaluation batcher.
	BatchMax  int
	BatchWait time.Duration
}

// Service is the scheduling daemon's engine: admission → bounded queue →
// worker pool → store, with a coalescing batcher for synchronous
// evaluations. HTTP lives in http.go; the engine is fully drivable (and
// tested) without a socket.
type Service struct {
	store    JobStore
	runner   Runner
	adm      *Admission
	batcher  *Batcher
	lim      Limits
	clock    func() time.Time
	ckptRoot string
	workers  int

	queue chan string
	seq   atomic.Int64
	wg    sync.WaitGroup

	mu            sync.Mutex
	started       bool
	drained       bool
	jobCtx        context.Context
	jobCancel     context.CancelFunc
	dequeueCtx    context.Context
	dequeueCancel context.CancelFunc

	submitted atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
	parked    atomic.Int64
	running   atomic.Int64
}

// New assembles a service; call Start to begin executing jobs.
func New(cfg Config) (*Service, error) {
	adm, err := NewAdmission(cfg.Limits, cfg.Clock, nil)
	if err != nil {
		return nil, err
	}
	if cfg.Store == nil {
		cfg.Store = NewMemStore()
	}
	if cfg.Runner == nil {
		cfg.Runner = &CoreRunner{Policy: cfg.Policy, CkptRoot: cfg.CkptRoot}
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	return &Service{
		store:    cfg.Store,
		runner:   cfg.Runner,
		adm:      adm,
		batcher:  NewBatcher(cfg.BatchMax, cfg.BatchWait),
		lim:      cfg.Limits,
		clock:    cfg.Clock,
		ckptRoot: cfg.CkptRoot,
		workers:  cfg.Workers,
	}, nil
}

// Start recovers persisted jobs and launches the worker pool. Recovery
// re-enqueues every non-terminal job: queued jobs keep their place (by
// submission order), and jobs that were running or parked when the
// previous process died are re-run — resuming from their per-job
// checkpoints when the runner finds them.
func (s *Service) Start(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return fmt.Errorf("service: already started")
	}
	s.started = true
	s.jobCtx, s.jobCancel = context.WithCancel(ctx)
	s.dequeueCtx, s.dequeueCancel = context.WithCancel(s.jobCtx)

	jobs := s.store.List()
	s.seq.Store(s.store.MaxSeq())
	var recovered []Job
	for _, j := range jobs {
		switch j.State {
		case StateQueued:
			recovered = append(recovered, j)
		case StateRunning, StateParked:
			j.State = StateQueued
			j.Error = ""
			if err := s.store.Update(&j); err != nil {
				return err
			}
			recovered = append(recovered, j)
		}
	}
	// The channel must hold every recovered job plus a full admission
	// window; admission accounting keeps it from ever filling past that.
	s.queue = make(chan string, s.lim.QueueDepth+len(recovered))
	for _, j := range recovered {
		s.adm.Requeue(j.Spec.Tenant)
		s.queue <- j.ID
		s.submitted.Add(1)
	}
	if n := len(recovered); n > 0 {
		obs.Event("service.recovered", obs.F("value", int64(n)))
	}
	for w := 0; w < s.workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	return nil
}

// Submit validates, admits, journals, and enqueues one job. The
// returned error is nil (job accepted), a Decision (admission rejected
// it — translate to 429/503), or wraps ErrInvalid (400).
func (s *Service) Submit(spec JobSpec) (Job, error) {
	return s.SubmitCtx(context.Background(), spec)
}

// SubmitCtx is Submit with trace carriage: the context's span context
// (minted by the HTTP trace middleware from the client's traceparent)
// becomes the job's causal identity, journaled with the record so every
// later transition — including a resume in a different process — lands
// in the submission's trace.
func (s *Service) SubmitCtx(ctx context.Context, spec JobSpec) (Job, error) {
	net, err := spec.ResolveNetwork()
	if err != nil {
		return Job{}, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	sha, err := TopologySHA(net)
	if err != nil {
		return Job{}, err
	}
	if d := s.adm.Admit(spec.Tenant); !d.OK {
		obs.Event("service.rejected", obs.F("reason", d.Reason))
		return Job{}, d
	}
	seq := s.seq.Add(1)
	job := Job{
		ID:          fmt.Sprintf("j%06d-%s", seq, sha[:8]),
		Seq:         seq,
		Spec:        spec,
		TopologySHA: sha,
		State:       StateQueued,
		SubmittedAt: s.clock().UTC(),
	}
	if sc := obs.SpanContextFrom(ctx); sc.Valid() {
		job.Trace = sc.Trace.String()
		job.Span = sc.Span.String()
	}
	if err := s.store.Create(&job); err != nil {
		s.adm.Release(spec.Tenant, true)
		return Job{}, fmt.Errorf("service: persisting job: %w", err)
	}
	select {
	case s.queue <- job.ID:
	default:
		// Admission accounting sizes the channel; reaching this means a
		// bug, but a hung client is worse than a spurious rejection.
		s.adm.Release(spec.Tenant, true)
		job.State = StateFailed
		job.Error = "internal queue overflow"
		_ = s.store.Update(&job)
		return Job{}, Decision{Code: 429, Reason: "queue_full", RetryAfter: time.Second}
	}
	n := s.submitted.Add(1)
	obs.Event("service.submitted", obs.F("value", n), obs.F("job", job.ID), obs.F("tenant", spec.Tenant))
	s.emitDepth()
	return job, nil
}

// Evaluate is the synchronous, batched path: concurrent requests against
// the same topology coalesce into one characterization. Only the cheap
// admission gates apply (draining, shedding, tenant rate) — an
// evaluation holds no queue slot.
func (s *Service) Evaluate(ctx context.Context, spec JobSpec) (EvaluateResult, error) {
	spec.Kind = KindEvaluate
	net, err := spec.ResolveNetwork()
	if err != nil {
		return EvaluateResult{}, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	if s.adm.Draining() {
		return EvaluateResult{}, Decision{Code: 503, Reason: "draining"}
	}
	if s.adm.Shedding() {
		return EvaluateResult{}, Decision{Code: 429, Reason: "shedding", RetryAfter: 5 * time.Second}
	}
	sha, err := TopologySHA(net)
	if err != nil {
		return EvaluateResult{}, err
	}
	return s.batcher.Evaluate(ctx, sha, net, spec.Assign, spec.M)
}

// Get returns one job's record.
func (s *Service) Get(id string) (Job, bool) { return s.store.Get(id) }

// List returns all job records in submission order.
func (s *Service) List() []Job { return s.store.List() }

func (s *Service) worker() {
	defer s.wg.Done()
	for {
		// The stop order wins over a ready queue: once a drain begins, no
		// new job may start even if both select cases are ready.
		select {
		case <-s.dequeueCtx.Done():
			return
		default:
		}
		select {
		case <-s.dequeueCtx.Done():
			return
		case id := <-s.queue:
			s.runJob(id)
		}
	}
}

// runJob drives one job from queued to a terminal (or parked) state,
// journaling every transition so a SIGKILL at any instant is recoverable.
func (s *Service) runJob(id string) {
	job, ok := s.store.Get(id)
	if !ok || job.State != StateQueued {
		return // duplicate enqueue or an already-handled record
	}
	s.adm.MarkRunning()
	s.emitDepth()
	job.State = StateRunning
	job.StartedAt = s.clock().UTC()
	job.Attempts++
	queueWait := job.StartedAt.Sub(job.SubmittedAt)
	if queueWait < 0 {
		queueWait = 0
	}
	job.QueueWaitMs = float64(queueWait.Microseconds()) / 1000
	if err := s.store.Update(&job); err != nil {
		obs.Event("service.store_error", obs.F("err", err.Error()))
	}
	s.running.Add(1)
	ctx := s.jobTraceCtx(&job)
	obs.EventCtx(ctx, "service.latency",
		obs.F("state", "queued"), obs.F("seconds", queueWait.Seconds()), obs.F("job", job.ID))
	s.emitJobState(ctx, &job)

	result, info, runErr := s.runner.Run(ctx, &job)
	s.running.Add(-1)
	runDur := s.clock().UTC().Sub(job.StartedAt)

	switch {
	case runErr != nil && s.jobCtx.Err() != nil:
		// Interrupted by shutdown, not by its own failure: park it with
		// its checkpoints; a restarted daemon re-runs it from them.
		job.State = StateParked
		job.Error = runErr.Error()
		s.parked.Add(1)
	case runErr != nil:
		job.State = StateFailed
		job.Error = runErr.Error()
		job.FinishedAt = s.clock().UTC()
		s.failed.Add(1)
	default:
		job.State = StateDone
		job.Result = result
		job.Salvaged = info.Salvaged
		job.FinishedAt = s.clock().UTC()
		s.completed.Add(1)
		if s.ckptRoot != "" {
			// The result is journaled in the job record; the per-job
			// checkpoint directory is now redundant bytes.
			os.RemoveAll(filepath.Join(s.ckptRoot, job.ID)) //nolint:errcheck // best-effort GC
		}
	}
	if err := s.store.Update(&job); err != nil {
		obs.Event("service.store_error", obs.F("err", err.Error()))
	}
	s.adm.Release(job.Spec.Tenant, false)
	obs.EventCtx(ctx, "service.latency",
		obs.F("state", "running"), obs.F("seconds", runDur.Seconds()), obs.F("job", job.ID))
	s.emitJobState(ctx, &job)
	s.emitJobWide(ctx, &job, runDur)
	s.emitDepth()
	obs.Progress("service.jobs", s.completed.Load()+s.failed.Load(), s.submitted.Load())
}

// jobTraceCtx derives the job's execution context: the daemon's job
// context carrying the journaled submission span context, so every span
// and event the run emits — in this process or a post-SIGKILL successor —
// stitches under the submission.
func (s *Service) jobTraceCtx(j *Job) context.Context {
	tid, terr := obs.ParseTraceID(j.Trace)
	sid, serr := obs.ParseSpanID(j.Span)
	if terr != nil || serr != nil {
		return s.jobCtx
	}
	return obs.WithSpanContext(s.jobCtx, obs.SpanContext{Trace: tid, Span: sid, Sampled: true})
}

func (s *Service) emitJobState(ctx context.Context, j *Job) {
	obs.EventCtx(ctx, "service.job",
		obs.F("job", j.ID),
		obs.F("state", string(j.State)),
		obs.F("attempts", j.Attempts),
		obs.F("tenant", j.Spec.Tenant))
}

// emitJobWide emits the canonical per-job wide event: one record carrying
// everything an operator asks of a finished (or parked) job — identity,
// tenant, lifecycle, queue wait, run time, attempts, salvage count, and
// the headline result quantities — so a single JSONL line joins the
// trace to the paper's numbers.
func (s *Service) emitJobWide(ctx context.Context, j *Job, runDur time.Duration) {
	if !obs.Enabled() {
		return
	}
	fields := []obs.Field{
		obs.F("job", j.ID),
		obs.F("tenant", j.Spec.Tenant),
		obs.F("kind", string(j.Spec.Kind)),
		obs.F("state", string(j.State)),
		obs.F("attempts", j.Attempts),
		obs.F("salvaged", j.Salvaged),
		obs.F("queue_wait_ms", j.QueueWaitMs),
		obs.F("run_ms", float64(runDur.Microseconds())/1000),
		obs.F("seed", j.Spec.Seed),
		obs.F("topology_sha", j.TopologySHA),
	}
	if j.Error != "" {
		fields = append(fields, obs.F("err", j.Error))
	}
	if j.State == StateDone && len(j.Result) > 0 {
		// Headline quantities shared by the result documents; absent
		// fields stay zero and are omitted below.
		var head struct {
			Cc          float64 `json:"cc"`
			Evaluations int     `json:"evaluations"`
			Iterations  int     `json:"iterations"`
			Throughput  float64 `json:"throughput"`
		}
		if json.Unmarshal(j.Result, &head) == nil {
			if head.Cc != 0 {
				fields = append(fields, obs.F("cc", head.Cc))
			}
			if head.Evaluations > 0 {
				fields = append(fields, obs.F("evaluations", head.Evaluations), obs.F("iterations", head.Iterations))
			}
			if head.Throughput != 0 {
				fields = append(fields, obs.F("throughput", head.Throughput))
			}
		}
	}
	obs.Wide(ctx, "job.wide", fields...)
}

func (s *Service) emitDepth() {
	st := s.adm.Stats()
	obs.Event("service.queue_depth", obs.F("value", int64(st.Queued)))
}

// Drain is the graceful-shutdown sequence: stop admitting (readyz and
// submissions flip to 503), let running jobs finish within the deadline,
// hard-cancel (and park) whatever remains, then flush and close the
// store. Jobs still queued stay journaled as queued and re-enqueue on
// the next start. A clean drain returns nil — the daemon exits 0.
func (s *Service) Drain(deadline time.Duration) error {
	s.mu.Lock()
	if !s.started || s.drained {
		s.mu.Unlock()
		return s.store.Close()
	}
	s.drained = true
	s.mu.Unlock()

	s.adm.SetDraining(true)
	obs.Event("service.draining", obs.F("value", int64(1)))
	s.dequeueCancel()

	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	timer := time.NewTimer(deadline)
	defer timer.Stop()
	select {
	case <-done:
	case <-timer.C:
		// Deadline: order in-flight jobs to park. The runner observes
		// the cancellation between units, journals "parked", and the
		// worker exits.
		s.jobCancel()
		<-done
	}
	s.jobCancel() // release the context either way
	return s.store.Close()
}

// ServiceStats is the engine's observable state (served at /readyz).
type ServiceStats struct {
	Admission AdmissionStats `json:"admission"`
	Running   int64          `json:"running"`
	Submitted int64          `json:"submitted"`
	Completed int64          `json:"completed"`
	Failed    int64          `json:"failed"`
	Parked    int64          `json:"parked"`
	Workers   int            `json:"workers"`
	QueueCap  int            `json:"queue_cap"`
	Batches   int64          `json:"eval_batches"`
	Coalesced int64          `json:"eval_coalesced"`
}

// Stats snapshots the counters.
func (s *Service) Stats() ServiceStats {
	batches, coalesced := s.batcher.Stats()
	return ServiceStats{
		Admission: s.adm.Stats(),
		Running:   s.running.Load(),
		Submitted: s.submitted.Load(),
		Completed: s.completed.Load(),
		Failed:    s.failed.Load(),
		Parked:    s.parked.Load(),
		Workers:   s.workers,
		QueueCap:  s.lim.QueueDepth,
		Batches:   batches,
		Coalesced: coalesced,
	}
}
