package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// stubRunner is a controllable Runner: it can block until released,
// fail, or return a canned result — no simulation cost in engine tests.
type stubRunner struct {
	block  chan struct{} // when non-nil, Run waits for close(block) or ctx
	err    error
	result json.RawMessage
	runs   atomic.Int64
}

func (r *stubRunner) Run(ctx context.Context, job *Job) (json.RawMessage, RunInfo, error) {
	r.runs.Add(1)
	if r.block != nil {
		select {
		case <-r.block:
		case <-ctx.Done():
			return nil, RunInfo{}, ctx.Err()
		}
	}
	if r.err != nil {
		return nil, RunInfo{}, r.err
	}
	res := r.result
	if res == nil {
		res = json.RawMessage(`{"ok":true}`)
	}
	return res, RunInfo{}, nil
}

func newTestService(t *testing.T, cfg Config) *Service {
	t.Helper()
	if cfg.Limits.QueueDepth == 0 {
		cfg.Limits.QueueDepth = 8
	}
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	svc, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := svc.Start(context.Background()); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() { svc.Drain(2 * time.Second) }) //nolint:errcheck // teardown
	return svc
}

func waitState(t *testing.T, svc *Service, id string, want JobState) Job {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if j, ok := svc.Get(id); ok && j.State == want {
			return j
		}
		time.Sleep(5 * time.Millisecond)
	}
	j, _ := svc.Get(id)
	t.Fatalf("job %s never reached %s (now %s, err %q)", id, want, j.State, j.Error)
	return Job{}
}

func TestServiceRunsJobToCompletion(t *testing.T) {
	svc := newTestService(t, Config{Runner: &stubRunner{}})
	job, err := svc.Submit(specEval())
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if job.State != StateQueued || job.ID == "" || job.SubmittedAt.IsZero() {
		t.Fatalf("accepted job = %+v", job)
	}
	done := waitState(t, svc, job.ID, StateDone)
	if string(done.Result) != `{"ok":true}` || done.Attempts != 1 {
		t.Fatalf("done job = %+v", done)
	}
	if done.StartedAt.IsZero() || done.FinishedAt.IsZero() {
		t.Fatalf("missing timestamps: %+v", done)
	}
	st := svc.Stats()
	if st.Completed != 1 || st.Failed != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestServiceInvalidSpecRejected(t *testing.T) {
	svc := newTestService(t, Config{Runner: &stubRunner{}})
	_, err := svc.Submit(JobSpec{Kind: "nonsense"})
	if !errors.Is(err, ErrInvalid) {
		t.Fatalf("want ErrInvalid, got %v", err)
	}
	if _, err := svc.Submit(JobSpec{Kind: KindEvaluate}); !errors.Is(err, ErrInvalid) {
		t.Fatalf("missing network/generate: want ErrInvalid, got %v", err)
	}
}

func TestServiceFailedJob(t *testing.T) {
	svc := newTestService(t, Config{Runner: &stubRunner{err: errors.New("kaboom")}})
	job, err := svc.Submit(specEval())
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	failed := waitState(t, svc, job.ID, StateFailed)
	if failed.Error != "kaboom" || failed.Result != nil {
		t.Fatalf("failed job = %+v", failed)
	}
}

func TestServiceBackpressureAt429ThenRecovers(t *testing.T) {
	block := make(chan struct{})
	svc := newTestService(t, Config{
		Runner:  &stubRunner{block: block},
		Workers: 1,
		Limits:  Limits{QueueDepth: 2},
	})
	// One job runs (blocked in the worker), two fill the queue.
	var ids []string
	for i := 0; i < 3; i++ {
		j, err := svc.Submit(specEval())
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids = append(ids, j.ID)
		if i == 0 {
			waitState(t, svc, j.ID, StateRunning)
		}
	}
	_, err := svc.Submit(specEval())
	var d Decision
	if !errors.As(err, &d) || d.Code != 429 || d.Reason != "queue_full" {
		t.Fatalf("full queue must 429 queue_full, got %v", err)
	}
	if d.RetryAfter <= 0 {
		t.Fatalf("429 must carry Retry-After, got %+v", d)
	}
	// Unblock: everything completes and admission opens again.
	close(block)
	for _, id := range ids {
		waitState(t, svc, id, StateDone)
	}
	if _, err := svc.Submit(specEval()); err != nil {
		t.Fatalf("drained queue must admit again: %v", err)
	}
}

func TestServiceTenantQuota(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	svc := newTestService(t, Config{
		Runner: &stubRunner{block: block},
		Limits: Limits{QueueDepth: 8, TenantJobs: 1},
	})
	spec := specEval()
	spec.Tenant = "alice"
	if _, err := svc.Submit(spec); err != nil {
		t.Fatalf("first: %v", err)
	}
	_, err := svc.Submit(spec)
	var d Decision
	if !errors.As(err, &d) || d.Reason != "quota" {
		t.Fatalf("tenant over quota must be rejected, got %v", err)
	}
	other := specEval()
	other.Tenant = "bob"
	if _, err := svc.Submit(other); err != nil {
		t.Fatalf("other tenant must pass: %v", err)
	}
}

func TestServiceDrainFinishesRunningJobs(t *testing.T) {
	block := make(chan struct{})
	svc := newTestService(t, Config{Runner: &stubRunner{block: block}, Workers: 1, Limits: Limits{QueueDepth: 4}})
	running, err := svc.Submit(specEval())
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitState(t, svc, running.ID, StateRunning)
	queued, err := svc.Submit(specEval())
	if err != nil {
		t.Fatalf("submit: %v", err)
	}

	drained := make(chan error, 1)
	go func() { drained <- svc.Drain(10 * time.Second) }()
	// Draining: new submissions are refused with 503.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err := svc.Submit(specEval())
		var d Decision
		if errors.As(err, &d) && d.Code == 503 && d.Reason == "draining" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("submissions during drain must 503, got %v", err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(block) // the running job finishes within the deadline
	if err := <-drained; err != nil {
		t.Fatalf("clean drain must return nil, got %v", err)
	}
	if j, _ := svc.Get(running.ID); j.State != StateDone {
		t.Fatalf("running job must finish during a roomy drain, got %s", j.State)
	}
	// The queued job was never started: it stays queued for a restart.
	if j, _ := svc.Get(queued.ID); j.State != StateQueued {
		t.Fatalf("undrained queued job must stay queued, got %s", j.State)
	}
}

func TestServiceDrainDeadlineParksRunningJobs(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	svc := newTestService(t, Config{Runner: &stubRunner{block: block}, Workers: 1, Limits: Limits{QueueDepth: 4}})
	job, err := svc.Submit(specEval())
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitState(t, svc, job.ID, StateRunning)
	if err := svc.Drain(50 * time.Millisecond); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if j, _ := svc.Get(job.ID); j.State != StateParked {
		t.Fatalf("job past the drain deadline must park, got %s (%q)", j.State, j.Error)
	}
	if svc.Stats().Parked != 1 {
		t.Fatalf("stats = %+v", svc.Stats())
	}
}

// Restart recovery: a store holding queued, running, and parked jobs
// re-enqueues all of them (running/parked first journal back to queued),
// in submission order, and they complete under the new process.
func TestServiceRecoveryReenqueuesNonTerminal(t *testing.T) {
	store := NewMemStore()
	seed := []Job{
		{ID: "q1", Seq: 1, Spec: specEval(), State: StateQueued},
		{ID: "r1", Seq: 2, Spec: specEval(), State: StateRunning, Attempts: 1},
		{ID: "p1", Seq: 3, Spec: specEval(), State: StateParked, Attempts: 2, Error: "interrupted"},
		{ID: "d1", Seq: 4, Spec: specEval(), State: StateDone, Result: json.RawMessage(`{}`)},
	}
	for i := range seed {
		if err := store.Create(&seed[i]); err != nil {
			t.Fatalf("seeding: %v", err)
		}
	}
	svc := newTestService(t, Config{Store: store, Runner: &stubRunner{}, Limits: Limits{QueueDepth: 2}})
	// QueueDepth 2 < 3 recovered jobs: recovery must still fit them all.
	for _, id := range []string{"q1", "r1", "p1"} {
		j := waitState(t, svc, id, StateDone)
		if j.Attempts < 1 {
			t.Fatalf("%s attempts = %d", id, j.Attempts)
		}
		if id == "p1" && j.Error != "" {
			t.Fatalf("resumed job must clear its park error, got %q", j.Error)
		}
	}
	if j, _ := svc.Get("d1"); j.State != StateDone {
		t.Fatalf("terminal job must not re-run, got %s", j.State)
	}
	// Recovered reservations were released: the bounded queue admits new
	// work again up to its normal watermark.
	for i := 0; i < 2; i++ {
		j, err := svc.Submit(specEval())
		if err != nil {
			t.Fatalf("post-recovery submit %d: %v", i, err)
		}
		waitState(t, svc, j.ID, StateDone)
	}
}

func TestServiceStartTwiceRefused(t *testing.T) {
	svc := newTestService(t, Config{Runner: &stubRunner{}})
	if err := svc.Start(context.Background()); err == nil {
		t.Fatal("second Start must be refused")
	}
}

func TestServiceJobIDsUniqueAcrossRestart(t *testing.T) {
	store := NewMemStore()
	j := Job{ID: "old", Seq: 7, Spec: specEval(), State: StateDone}
	if err := store.Create(&j); err != nil {
		t.Fatalf("seed: %v", err)
	}
	svc := newTestService(t, Config{Store: store, Runner: &stubRunner{}})
	nj, err := svc.Submit(specEval())
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if nj.Seq <= 7 {
		t.Fatalf("new Seq %d must exceed the recovered MaxSeq 7", nj.Seq)
	}
}

// The synchronous evaluate path respects drain.
func TestServiceEvaluateDuringDrainRefused(t *testing.T) {
	svc := newTestService(t, Config{Runner: &stubRunner{}})
	if err := svc.Drain(time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}
	_, err := svc.Evaluate(context.Background(), specEval())
	var d Decision
	if !errors.As(err, &d) || d.Code != 503 {
		t.Fatalf("evaluate during drain must 503, got %v", err)
	}
}

func TestServiceEvaluateBatchedAnswers(t *testing.T) {
	svc := newTestService(t, Config{Runner: &stubRunner{}, BatchWait: 5 * time.Millisecond})
	res, err := svc.Evaluate(context.Background(), specEval())
	if err != nil {
		t.Fatalf("evaluate: %v", err)
	}
	if res.Cc <= 0 {
		t.Fatalf("Cc = %v, want positive", res.Cc)
	}
	// Determinism: the same spec scores identically.
	again, err := svc.Evaluate(context.Background(), specEval())
	if err != nil || again != res {
		t.Fatalf("evaluate not deterministic: %+v vs %+v (%v)", res, again, err)
	}
}

// Sanity: the emitted job IDs embed the topology hash and stay unique
// under concurrent submissions.
func TestServiceConcurrentSubmissionUniqueness(t *testing.T) {
	svc := newTestService(t, Config{Runner: &stubRunner{}, Limits: Limits{QueueDepth: 512}, Workers: 4})
	const n = 100
	ids := make(chan string, n)
	for i := 0; i < n; i++ {
		go func() {
			j, err := svc.Submit(specEval())
			if err != nil {
				ids <- fmt.Sprintf("err:%v", err)
				return
			}
			ids <- j.ID
		}()
	}
	seen := map[string]bool{}
	for i := 0; i < n; i++ {
		id := <-ids
		if seen[id] {
			t.Fatalf("duplicate job ID %s", id)
		}
		seen[id] = true
	}
}
