package service

import (
	"fmt"
	"path/filepath"

	"commsched/internal/runstate"
)

// storeSchema is folded into the durable store's identity; bump it when
// the journaled Job record changes incompatibly, so a daemon never
// misreads a state directory written by an older build (it refuses with
// runstate.ErrIdentityMismatch instead).
const storeSchema = 1

// storeIdentity pins a daemon state directory to this service schema.
func storeIdentity() runstate.Identity {
	return runstate.Identity{
		Command: "commschedd",
		Seeds:   map[string]int64{"store_schema": storeSchema},
	}
}

// DurableStore is the JobStore that survives SIGKILL: every Create and
// Update appends the full job record to a runstate write-ahead journal
// and fsyncs before returning, keyed by job ID (later records for the
// same job overwrite earlier ones on replay). A restarted daemon reloads
// the latest record of every job; the service then re-enqueues the
// queued ones and re-runs the interrupted ones from their per-job
// checkpoints.
type DurableStore struct {
	mem *MemStore
	st  *runstate.Store
	dir string
}

// jobsDir / ckptRoot are the layout of a daemon state directory.
func jobsDir(state string) string { return filepath.Join(state, "jobs") }

// CkptRoot returns where per-job checkpoint directories live under a
// daemon state directory.
func CkptRoot(state string) string { return filepath.Join(state, "ckpt") }

// OpenDurableStore opens (or creates) the job journal under the daemon
// state directory. A directory written by an incompatible schema is
// refused with an error wrapping runstate.ErrIdentityMismatch.
func OpenDurableStore(state string) (*DurableStore, error) {
	if state == "" {
		return nil, fmt.Errorf("service: empty state directory")
	}
	st, err := runstate.Open(jobsDir(state), storeIdentity())
	if err != nil {
		return nil, err
	}
	d := &DurableStore{mem: NewMemStore(), st: st, dir: state}
	for _, key := range st.Keys("job/") {
		var j Job
		if !st.Lookup(key, &j) || j.ID == "" {
			// A record that no longer decodes is dropped rather than
			// resurrected half-read; Keys/Lookup already skipped torn
			// journal tails.
			continue
		}
		if err := d.mem.Create(&j); err != nil {
			return nil, fmt.Errorf("service: replaying %s: %w", key, err)
		}
	}
	return d, nil
}

// Dir returns the daemon state directory this store persists under.
func (d *DurableStore) Dir() string { return d.dir }

func (d *DurableStore) record(j *Job) {
	d.st.Record("job/"+j.ID, j)
}

// Create implements JobStore: the record is journaled (and fsync'd)
// before the in-memory view admits it, so an acknowledged job can never
// be lost to a crash.
func (d *DurableStore) Create(j *Job) error {
	if err := d.mem.Create(j); err != nil {
		return err
	}
	d.record(j)
	return nil
}

// Update implements JobStore.
func (d *DurableStore) Update(j *Job) error {
	if err := d.mem.Update(j); err != nil {
		return err
	}
	d.record(j)
	return nil
}

// Get implements JobStore.
func (d *DurableStore) Get(id string) (Job, bool) { return d.mem.Get(id) }

// List implements JobStore.
func (d *DurableStore) List() []Job { return d.mem.List() }

// MaxSeq implements JobStore.
func (d *DurableStore) MaxSeq() int64 { return d.mem.MaxSeq() }

// Stats exposes the underlying checkpoint counters (for /readyz).
func (d *DurableStore) Stats() runstate.Stats { return d.st.Stats() }

// Close snapshots and closes the journal, surfacing the first write
// error the store swallowed while the daemon was serving.
func (d *DurableStore) Close() error { return d.st.Close() }
