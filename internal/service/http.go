package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"commsched/internal/obs"
)

// Mux builds the daemon's HTTP API on a standard ServeMux:
//
//	POST /jobs              submit a job (202 + job record, or 400/429/503)
//	GET  /jobs              list jobs (filter with ?state= and ?tenant=)
//	GET  /jobs/{id}         one job's record
//	GET  /jobs/{id}/result  the result document alone (409 until done)
//	POST /evaluate          synchronous, batched F_G/D_G/Cc evaluation
//	GET  /healthz           liveness: the process is up (always 200)
//	GET  /readyz            readiness: admission state (503 when draining)
//
// tel, when non-nil, is a telemetry server handler; its observability
// routes (/metrics, /events, /runs, /debug/pprof/) are mounted on the
// same port so one address serves API and telemetry alike. Liveness and
// readiness are deliberately distinct: a draining daemon is alive (do
// not restart it — it is checkpointing) but not ready (send work
// elsewhere).
func (s *Service) Mux(tel http.Handler) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", withTrace("/jobs", s.handleSubmit))
	mux.HandleFunc("GET /jobs", withTrace("/jobs", s.handleList))
	mux.HandleFunc("GET /jobs/{id}", withTrace("/jobs/{id}", s.handleGet))
	mux.HandleFunc("GET /jobs/{id}/result", withTrace("/jobs/{id}/result", s.handleResult))
	mux.HandleFunc("POST /evaluate", withTrace("/evaluate", s.handleEvaluate))
	mux.HandleFunc("GET /healthz", withTrace("/healthz", s.handleHealthz))
	mux.HandleFunc("GET /readyz", withTrace("/readyz", s.handleReadyz))
	if tel != nil {
		mux.Handle("/metrics", tel)
		mux.Handle("/events", tel)
		mux.Handle("/runs", tel)
		mux.Handle("/trace/", tel)
		mux.Handle("/debug/pprof/", tel)
	}
	return mux
}

// statusWriter captures the response code for the http.request span.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// withTrace is the W3C trace-context middleware: it joins the client's
// traceparent (or mints a fresh root when the header is absent or
// malformed), opens a request span as its child, echoes the span's own
// traceparent in the response so the client can correlate, and attaches
// the span context to the request context for everything downstream
// (admission, the runner, error bodies). The header round trip works
// whether or not an obs sink is installed; only the span emission is
// gated.
func withTrace(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		parent, _ := obs.ParseTraceparent(r.Header.Get("traceparent"))
		sc := parent.NewChild()
		w.Header().Set("traceparent", sc.Traceparent())
		sp := obs.StartSpanAt(sc, parent.Span, "http.request",
			obs.F("endpoint", endpoint), obs.F("method", r.Method))
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r.WithContext(obs.WithSpanContext(r.Context(), sc)))
		sp.End(obs.F("status", sw.code))
	}
}

// maxBodyBytes bounds any request body: the largest legitimate payload
// is an explicit topology document plus spec fields.
const maxBodyBytes = MaxNetworkBytes + 64*1024

type apiError struct {
	Error      string  `json:"error"`
	Reason     string  `json:"reason,omitempty"`
	RetryAfter float64 `json:"retry_after_seconds,omitempty"`
	// TraceID / JobID are the machine-readable correlation handles: the
	// request's trace (always present under the trace middleware) and the
	// job involved when one is known, so a client's audit log can tie a
	// 429/503/500 back to the submission that caused it.
	TraceID string `json:"trace_id,omitempty"`
	JobID   string `json:"job_id,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone; nothing to do
}

// correlate stamps an error body with the request's trace ID and, when
// known, the job ID.
func correlate(r *http.Request, jobID string, e apiError) apiError {
	if sc := obs.SpanContextFrom(r.Context()); sc.Valid() {
		e.TraceID = sc.Trace.String()
	}
	e.JobID = jobID
	return e
}

// writeError translates the service's error taxonomy to HTTP: Decision →
// its own code with a Retry-After header, ErrInvalid → 400, anything
// else → 500. Every body carries the request's trace ID (and the job ID
// when the caller knows one).
func writeError(w http.ResponseWriter, r *http.Request, jobID string, err error) {
	var d Decision
	if errors.As(err, &d) {
		if d.RetryAfter > 0 {
			secs := int(d.RetryAfter.Round(time.Second) / time.Second)
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(secs))
		}
		writeJSON(w, d.Code, correlate(r, jobID, apiError{Error: d.Error(), Reason: d.Reason, RetryAfter: d.RetryAfter.Seconds()}))
		return
	}
	if errors.Is(err, ErrInvalid) {
		writeJSON(w, http.StatusBadRequest, correlate(r, jobID, apiError{Error: err.Error(), Reason: "invalid"}))
		return
	}
	writeJSON(w, http.StatusInternalServerError, correlate(r, jobID, apiError{Error: err.Error()}))
}

func decodeSpec(w http.ResponseWriter, r *http.Request) (JobSpec, bool) {
	var spec JobSpec
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, correlate(r, "", apiError{Error: fmt.Sprintf("decoding job spec: %v", err), Reason: "invalid"}))
		return JobSpec{}, false
	}
	return spec, true
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	spec, ok := decodeSpec(w, r)
	if !ok {
		return
	}
	job, err := s.SubmitCtx(r.Context(), spec)
	if err != nil {
		writeError(w, r, "", err)
		return
	}
	w.Header().Set("Location", "/jobs/"+job.ID)
	writeJSON(w, http.StatusAccepted, job)
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	state := r.URL.Query().Get("state")
	tenant := r.URL.Query().Get("tenant")
	jobs := s.List()
	out := make([]Job, 0, len(jobs))
	for _, j := range jobs {
		if state != "" && string(j.State) != state {
			continue
		}
		if tenant != "" && j.Spec.Tenant != tenant {
			continue
		}
		// The listing is an index; results can be megabytes across
		// thousands of jobs, so fetch them per job.
		j.Result = nil
		out = append(out, j)
	}
	writeJSON(w, http.StatusOK, struct {
		Jobs []Job `json:"jobs"`
	}{out})
}

func (s *Service) handleGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ok := s.Get(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, correlate(r, id, apiError{Error: "no such job", Reason: "not_found"}))
		return
	}
	writeJSON(w, http.StatusOK, job)
}

func (s *Service) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ok := s.Get(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, correlate(r, id, apiError{Error: "no such job", Reason: "not_found"}))
		return
	}
	switch job.State {
	case StateDone:
		w.Header().Set("Content-Type", "application/json")
		w.Write(job.Result) //nolint:errcheck // client gone; nothing to do
	case StateFailed:
		writeJSON(w, http.StatusConflict, correlate(r, id, apiError{Error: job.Error, Reason: "failed"}))
	default:
		// Not done yet: tell the poller how things stand and to come back.
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusConflict, correlate(r, id, apiError{Error: fmt.Sprintf("job is %s", job.State), Reason: string(job.State), RetryAfter: 1}))
	}
}

func (s *Service) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	spec, ok := decodeSpec(w, r)
	if !ok {
		return
	}
	res, err := s.Evaluate(r.Context(), spec)
	if err != nil {
		writeError(w, r, "", err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Service) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Status string `json:"status"`
	}{"ok"})
}

type readyzDoc struct {
	Ready  bool         `json:"ready"`
	Reason string       `json:"reason,omitempty"`
	Stats  ServiceStats `json:"stats"`
}

func (s *Service) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	st := s.Stats()
	doc := readyzDoc{Ready: true, Stats: st}
	code := http.StatusOK
	switch {
	case st.Admission.Draining:
		doc.Ready, doc.Reason, code = false, "draining", http.StatusServiceUnavailable
	case st.Admission.Shedding:
		doc.Ready, doc.Reason, code = false, "shedding", http.StatusServiceUnavailable
	}
	writeJSON(w, code, doc)
}
