package service

import (
	"fmt"
	"sort"
	"sync"
)

// JobStore persists job records. The service writes a job's record on
// every state transition; Create/Update must be durable before they
// return (for the durable backend: appended to the write-ahead journal
// and fsync'd), so a SIGKILL at any instant loses at most work, never an
// admitted job. All methods are safe for concurrent use.
type JobStore interface {
	// Create stores a new job record; the job's ID must be unused.
	Create(j *Job) error
	// Update overwrites the record of an existing job.
	Update(j *Job) error
	// Get returns a copy of the job (deep enough that callers can't
	// race the store), or false when the ID is unknown.
	Get(id string) (Job, bool)
	// List returns copies of all jobs, ordered by submission Seq.
	List() []Job
	// MaxSeq returns the highest Seq ever stored (0 when empty) — the
	// restart-safe floor for new sequence numbers.
	MaxSeq() int64
	// Close releases the backing resources (snapshots + fsync for the
	// durable backend) and returns the first persistent write error.
	Close() error
}

// MemStore is the in-memory JobStore: full service semantics, no
// durability. The durable backend embeds one as its read cache.
type MemStore struct {
	mu   sync.Mutex
	jobs map[string]Job
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{jobs: make(map[string]Job)}
}

// clone deep-copies the aliasing fields of a job record so store copies
// never share slices with caller-held ones.
func clone(j Job) Job {
	if j.Result != nil {
		j.Result = append([]byte(nil), j.Result...)
	}
	if j.Spec.Network != nil {
		j.Spec.Network = append([]byte(nil), j.Spec.Network...)
	}
	if j.Spec.Assign != nil {
		j.Spec.Assign = append([]int(nil), j.Spec.Assign...)
	}
	if j.Spec.Rates != nil {
		j.Spec.Rates = append([]float64(nil), j.Spec.Rates...)
	}
	if j.Spec.Generate != nil {
		g := *j.Spec.Generate
		j.Spec.Generate = &g
	}
	return j
}

// Create implements JobStore.
func (m *MemStore) Create(j *Job) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.jobs[j.ID]; ok {
		return fmt.Errorf("service: job %s already exists", j.ID)
	}
	m.jobs[j.ID] = clone(*j)
	return nil
}

// Update implements JobStore.
func (m *MemStore) Update(j *Job) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.jobs[j.ID]; !ok {
		return fmt.Errorf("service: job %s does not exist", j.ID)
	}
	m.jobs[j.ID] = clone(*j)
	return nil
}

// Get implements JobStore.
func (m *MemStore) Get(id string) (Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Job{}, false
	}
	return clone(j), true
}

// List implements JobStore.
func (m *MemStore) List() []Job {
	m.mu.Lock()
	out := make([]Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		out = append(out, clone(j))
	}
	m.mu.Unlock()
	sort.Slice(out, func(a, b int) bool { return out[a].Seq < out[b].Seq })
	return out
}

// MaxSeq implements JobStore.
func (m *MemStore) MaxSeq() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var max int64
	for _, j := range m.jobs {
		if j.Seq > max {
			max = j.Seq
		}
	}
	return max
}

// Close implements JobStore (a no-op for the in-memory backend).
func (m *MemStore) Close() error { return nil }
