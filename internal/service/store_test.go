package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"path/filepath"
	"testing"

	"commsched/internal/runstate"
)

func specEval() JobSpec {
	return JobSpec{
		Kind:     KindEvaluate,
		Generate: &GenerateSpec{Kind: "ring", Switches: 4},
		Assign:   []int{0, 1, 0, 1},
		M:        2,
	}
}

func TestMemStoreBasics(t *testing.T) {
	m := NewMemStore()
	j := Job{ID: "a", Seq: 1, Spec: specEval(), State: StateQueued}
	if err := m.Create(&j); err != nil {
		t.Fatalf("create: %v", err)
	}
	if err := m.Create(&j); err == nil {
		t.Fatal("duplicate create must fail")
	}
	if err := m.Update(&Job{ID: "nope"}); err == nil {
		t.Fatal("update of unknown job must fail")
	}
	j.State = StateDone
	j.Result = json.RawMessage(`{"x":1}`)
	if err := m.Update(&j); err != nil {
		t.Fatalf("update: %v", err)
	}
	got, ok := m.Get("a")
	if !ok || got.State != StateDone {
		t.Fatalf("get = %+v, %v", got, ok)
	}
	// Copies must not alias: mutating what Get returned cannot corrupt
	// the store, and mutating the caller's job after Create cannot either.
	got.Result[2] = 'y'
	got.Spec.Assign[0] = 9
	again, _ := m.Get("a")
	if string(again.Result) != `{"x":1}` || again.Spec.Assign[0] != 0 {
		t.Fatalf("store shares memory with callers: %s %v", again.Result, again.Spec.Assign)
	}
	if m.MaxSeq() != 1 {
		t.Fatalf("MaxSeq = %d, want 1", m.MaxSeq())
	}
}

func TestMemStoreListOrdersBySeq(t *testing.T) {
	m := NewMemStore()
	for _, seq := range []int64{3, 1, 2} {
		m.Create(&Job{ID: string(rune('a' + seq)), Seq: seq}) //nolint:errcheck // ids are unique
	}
	list := m.List()
	if len(list) != 3 || list[0].Seq != 1 || list[2].Seq != 3 {
		t.Fatalf("list must order by Seq, got %+v", list)
	}
}

func TestDurableStoreSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	ds, err := OpenDurableStore(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	j1 := Job{ID: "j1", Seq: 1, Spec: specEval(), State: StateQueued}
	j2 := Job{ID: "j2", Seq: 2, Spec: specEval(), State: StateQueued}
	if err := ds.Create(&j1); err != nil {
		t.Fatalf("create: %v", err)
	}
	if err := ds.Create(&j2); err != nil {
		t.Fatalf("create: %v", err)
	}
	j1.State = StateDone
	j1.Result = json.RawMessage(`{"cc":2.5}`)
	if err := ds.Update(&j1); err != nil {
		t.Fatalf("update: %v", err)
	}
	if err := ds.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	re, err := OpenDurableStore(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	if re.MaxSeq() != 2 {
		t.Fatalf("MaxSeq after reopen = %d, want 2", re.MaxSeq())
	}
	got, ok := re.Get("j1")
	if !ok || got.State != StateDone {
		t.Fatalf("reopened j1 = %+v (ok=%v): the LAST journaled record must win", got, ok)
	}
	// The snapshot may re-indent embedded raw JSON; the value must match.
	var buf bytes.Buffer
	if err := json.Compact(&buf, got.Result); err != nil || buf.String() != `{"cc":2.5}` {
		t.Fatalf("reopened result = %q (%v)", got.Result, err)
	}
	if got, ok := re.Get("j2"); !ok || got.State != StateQueued {
		t.Fatalf("reopened j2 = %+v (ok=%v)", got, ok)
	}
}

// The SIGKILL shape: the first store is never Closed, yet every record
// it acknowledged must be visible to a fresh open — Create/Update fsync
// the journal before returning.
func TestDurableStoreSurvivesKillWithoutClose(t *testing.T) {
	dir := t.TempDir()
	ds, err := OpenDurableStore(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	j := Job{ID: "j1", Seq: 1, Spec: specEval(), State: StateQueued}
	if err := ds.Create(&j); err != nil {
		t.Fatalf("create: %v", err)
	}
	j.State = StateRunning
	j.Attempts = 1
	if err := ds.Update(&j); err != nil {
		t.Fatalf("update: %v", err)
	}
	// No Close: the process "died" here.
	re, err := OpenDurableStore(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	got, ok := re.Get("j1")
	if !ok || got.State != StateRunning || got.Attempts != 1 {
		t.Fatalf("un-Closed store lost an acknowledged record: %+v (ok=%v)", got, ok)
	}
}

// A state directory written by a different schema (or a different tool
// entirely) must be refused with ErrIdentityMismatch — never silently
// reinterpreted as an empty job table.
func TestDurableStoreSchemaMismatchRefused(t *testing.T) {
	dir := t.TempDir()
	alien, err := runstate.Open(jobsDir(dir), runstate.Identity{
		Command: "commschedd",
		Seeds:   map[string]int64{"store_schema": storeSchema + 1},
	})
	if err != nil {
		t.Fatalf("seeding alien store: %v", err)
	}
	alien.Record("job/x", Job{ID: "x"})
	if err := alien.Close(); err != nil {
		t.Fatalf("alien close: %v", err)
	}
	_, err = OpenDurableStore(dir)
	if !errors.Is(err, runstate.ErrIdentityMismatch) {
		t.Fatalf("want ErrIdentityMismatch, got %v", err)
	}
}

func TestCkptRootLayout(t *testing.T) {
	if got := CkptRoot("/state"); got != filepath.Join("/state", "ckpt") {
		t.Fatalf("CkptRoot = %q", got)
	}
}
