package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"commsched/internal/obs"
)

const testTraceparent = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"

func postSpecTraced(t *testing.T, url string, spec JobSpec) *http.Response {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", testTraceparent)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestTraceRoundTrip submits with a known traceparent and checks the
// whole correlation chain: the echoed header stays in the client's
// trace (fresh span), the job record journals the trace, and the wide
// event plus the runner spans carry it.
func TestTraceRoundTrip(t *testing.T) {
	mem := &obs.Memory{}
	obs.SetSink(mem)
	defer obs.SetSink(nil)

	_, ts := newTestAPI(t, Config{Runner: &stubRunner{result: json.RawMessage(`{"cc":3.25}`)}})
	resp := postSpecTraced(t, ts.URL+"/jobs", specEval())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", resp.StatusCode)
	}
	echoed, err := obs.ParseTraceparent(resp.Header.Get("traceparent"))
	if err != nil {
		t.Fatalf("response traceparent %q: %v", resp.Header.Get("traceparent"), err)
	}
	want, _ := obs.ParseTraceparent(testTraceparent)
	if echoed.Trace != want.Trace {
		t.Fatalf("echoed trace %s, want the submitted %s", echoed.Trace, want.Trace)
	}
	if echoed.Span == want.Span {
		t.Fatal("echo must be a fresh child span, not the client's own")
	}
	job := decodeBody[Job](t, resp)
	if job.Trace != want.Trace.String() {
		t.Fatalf("job journaled trace %q, want %s", job.Trace, want.Trace)
	}
	if job.Span == "" {
		t.Fatal("job journaled no admission span")
	}

	// Wait for the terminal wide event.
	deadline := time.Now().Add(10 * time.Second)
	var wide obs.Record
	for {
		if recs := mem.ByName("job.wide"); len(recs) > 0 {
			wide = recs[0]
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no job.wide event")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if wide.Trace != want.Trace {
		t.Fatalf("wide event trace %s, want %s", wide.Trace, want.Trace)
	}
	obj := obs.RecordObject(wide)
	if obj["state"] != "done" || obj["job"] != job.ID {
		t.Fatalf("wide event = %v", obj)
	}
	if _, ok := obj["queue_wait_ms"]; !ok {
		t.Fatal("wide event missing queue_wait_ms")
	}

	// The queue-wait latency event shares the trace too.
	var sawQueued bool
	for _, r := range mem.ByName("service.latency") {
		if obs.RecordObject(r)["state"] == "queued" && r.Trace == want.Trace {
			sawQueued = true
		}
	}
	if !sawQueued {
		t.Fatal("no queued-state service.latency event in the submission's trace")
	}
}

// TestTraceMintedWithoutHeader checks a header-less submission still gets
// a trace: minted at admission, echoed, and journaled.
func TestTraceMintedWithoutHeader(t *testing.T) {
	_, ts := newTestAPI(t, Config{Runner: &stubRunner{result: json.RawMessage(`{}`)}})
	resp := postSpec(t, ts, "/jobs", specEval())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", resp.StatusCode)
	}
	sc, err := obs.ParseTraceparent(resp.Header.Get("traceparent"))
	if err != nil {
		t.Fatalf("minted traceparent %q: %v", resp.Header.Get("traceparent"), err)
	}
	job := decodeBody[Job](t, resp)
	if job.Trace != sc.Trace.String() {
		t.Fatalf("job trace %q, echoed %s", job.Trace, sc.Trace)
	}
}

// TestErrorBodiesCarryTrace checks the satellite contract: error JSON
// carries trace_id (and job_id when known) so audits can correlate.
func TestErrorBodiesCarryTrace(t *testing.T) {
	_, ts := newTestAPI(t, Config{Runner: &stubRunner{result: json.RawMessage(`{}`)}})

	// 400: invalid spec.
	resp := postSpecTraced(t, ts.URL+"/jobs", JobSpec{Kind: "bogus"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid submit = %d, want 400", resp.StatusCode)
	}
	e := decodeBody[apiError](t, resp)
	want, _ := obs.ParseTraceparent(testTraceparent)
	if e.TraceID != want.Trace.String() {
		t.Fatalf("400 body trace_id = %q, want %s", e.TraceID, want.Trace)
	}

	// 404: unknown job — body names both the trace and the job asked for.
	req, err := http.NewRequest("GET", ts.URL+"/jobs/nope", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("traceparent", testTraceparent)
	r404, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer r404.Body.Close()
	if r404.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", r404.StatusCode)
	}
	e = decodeBody[apiError](t, r404)
	if e.TraceID != want.Trace.String() || e.JobID != "nope" {
		t.Fatalf("404 body = %+v, want trace %s and job nope", e, want.Trace)
	}
}

// TestResultHasNoTraceFields pins the determinism contract: trace
// identity lives in job status, never inside the result document.
func TestResultHasNoTraceFields(t *testing.T) {
	svc, _ := newTestAPI(t, Config{})
	job, err := svc.Submit(specEval())
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		j, _ := svc.Get(job.ID)
		if j.State.Terminal() {
			if j.State != StateDone {
				t.Fatalf("job failed: %s", j.Error)
			}
			if strings.Contains(string(j.Result), "trace") {
				t.Fatalf("result document leaked trace fields: %s", j.Result)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
