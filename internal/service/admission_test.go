package service

import (
	"testing"
	"time"
)

// fakeClock is an injectable, manually-advanced clock.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}
func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func mustAdmission(t *testing.T, lim Limits, clock *fakeClock, heap func() uint64) *Admission {
	t.Helper()
	a, err := NewAdmission(lim, clock.now, heap)
	if err != nil {
		t.Fatalf("NewAdmission: %v", err)
	}
	return a
}

func TestAdmissionRequiresBoundedQueue(t *testing.T) {
	if _, err := NewAdmission(Limits{}, nil, nil); err == nil {
		t.Fatal("QueueDepth 0 must be refused: an unbounded queue defeats the package")
	}
}

func TestAdmissionQueueFullBackpressure(t *testing.T) {
	clock := newFakeClock()
	a := mustAdmission(t, Limits{QueueDepth: 2}, clock, func() uint64 { return 0 })
	for i := 0; i < 2; i++ {
		if d := a.Admit("t"); !d.OK {
			t.Fatalf("admission %d under the watermark must pass: %+v", i, d)
		}
	}
	d := a.Admit("t")
	if d.OK || d.Code != 429 || d.Reason != "queue_full" {
		t.Fatalf("at the watermark want 429 queue_full, got %+v", d)
	}
	if d.RetryAfter <= 0 {
		t.Fatalf("queue_full must carry a Retry-After, got %s", d.RetryAfter)
	}
	// A job starting frees a queue slot (the tenant slot stays occupied).
	a.MarkRunning()
	if d := a.Admit("t"); !d.OK {
		t.Fatalf("freed queue slot must admit again: %+v", d)
	}
}

func TestAdmissionTenantQuota(t *testing.T) {
	clock := newFakeClock()
	a := mustAdmission(t, Limits{QueueDepth: 10, TenantJobs: 2}, clock, func() uint64 { return 0 })
	a.Admit("alice")
	a.Admit("alice")
	if d := a.Admit("alice"); d.OK || d.Reason != "quota" {
		t.Fatalf("third concurrent job of one tenant must hit quota, got %+v", d)
	}
	if d := a.Admit("bob"); !d.OK {
		t.Fatalf("quota is per tenant; bob must pass: %+v", d)
	}
	// Quota counts queued+running: running jobs still occupy it...
	a.MarkRunning()
	if d := a.Admit("alice"); d.OK {
		t.Fatalf("a running job still occupies the quota, got %+v", d)
	}
	// ...until Release.
	a.Release("alice", false)
	if d := a.Admit("alice"); !d.OK {
		t.Fatalf("released slot must admit again: %+v", d)
	}
}

func TestAdmissionTokenBucketRate(t *testing.T) {
	clock := newFakeClock()
	a := mustAdmission(t, Limits{QueueDepth: 100, TenantRate: 2, TenantBurst: 2}, clock, func() uint64 { return 0 })
	if d := a.Admit("t"); !d.OK {
		t.Fatalf("burst token 1: %+v", d)
	}
	if d := a.Admit("t"); !d.OK {
		t.Fatalf("burst token 2: %+v", d)
	}
	d := a.Admit("t")
	if d.OK || d.Reason != "rate_limited" {
		t.Fatalf("empty bucket must rate-limit, got %+v", d)
	}
	if d.RetryAfter <= 0 || d.RetryAfter > time.Second {
		t.Fatalf("rate 2/s deficit of one token suggests ~500ms, got %s", d.RetryAfter)
	}
	// Half a second refills one token at 2/s.
	clock.advance(500 * time.Millisecond)
	if d := a.Admit("t"); !d.OK {
		t.Fatalf("refilled token must admit: %+v", d)
	}
	// Tokens cap at the burst: a long idle period is not a license to flood.
	clock.advance(time.Hour)
	a.Admit("t")
	a.Admit("t")
	if d := a.Admit("t"); d.OK {
		t.Fatalf("bucket must cap at burst 2 after idling, got %+v", d)
	}
}

func TestAdmissionDraining(t *testing.T) {
	clock := newFakeClock()
	a := mustAdmission(t, Limits{QueueDepth: 10}, clock, func() uint64 { return 0 })
	a.SetDraining(true)
	d := a.Admit("t")
	if d.OK || d.Code != 503 || d.Reason != "draining" {
		t.Fatalf("draining must refuse with 503, got %+v", d)
	}
	if d.RetryAfter != 0 {
		t.Fatalf("a draining instance is going away; no Retry-After, got %s", d.RetryAfter)
	}
}

func TestAdmissionHeapWatermarkSheds(t *testing.T) {
	clock := newFakeClock()
	heap := uint64(0)
	a := mustAdmission(t, Limits{QueueDepth: 10, ShedBytes: 1 << 20}, clock, func() uint64 { return heap })
	if d := a.Admit("t"); !d.OK {
		t.Fatalf("below the watermark: %+v", d)
	}
	heap = 2 << 20
	d := a.Admit("t")
	if d.OK || d.Code != 429 || d.Reason != "shedding" {
		t.Fatalf("above the watermark want 429 shedding, got %+v", d)
	}
	heap = 0
	if d := a.Admit("t"); !d.OK {
		t.Fatalf("pressure cleared must admit again: %+v", d)
	}
}

func TestAdmissionStatsCountRejections(t *testing.T) {
	clock := newFakeClock()
	a := mustAdmission(t, Limits{QueueDepth: 1}, clock, func() uint64 { return 0 })
	a.Admit("t")
	a.Admit("t")
	a.Admit("t")
	st := a.Stats()
	if st.Admitted != 1 || st.Rejected["queue_full"] != 2 || st.Queued != 1 {
		t.Fatalf("stats = %+v, want 1 admitted, 2 queue_full, 1 queued", st)
	}
}
