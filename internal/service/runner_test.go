package service

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"commsched/internal/par"
	"commsched/internal/runstate"
)

func specSweep() JobSpec {
	return JobSpec{
		Kind:          KindSweep,
		Generate:      &GenerateSpec{Kind: "ring", Switches: 8},
		Assign:        []int{0, 0, 1, 1, 2, 2, 3, 3},
		M:             4,
		Rates:         []float64{0.05, 0.1, 0.15},
		WarmupCycles:  20,
		MeasureCycles: 60,
		Seed:          42,
	}
}

// makeJob resolves the spec far enough to carry the topology hash the
// checkpoint identity pins on — what Submit does for real jobs.
func makeJob(t *testing.T, spec JobSpec) *Job {
	t.Helper()
	net, err := spec.ResolveNetwork()
	if err != nil {
		t.Fatalf("resolve: %v", err)
	}
	sha, err := TopologySHA(net)
	if err != nil {
		t.Fatalf("sha: %v", err)
	}
	return &Job{ID: "jtest", Seq: 1, Spec: spec, TopologySHA: sha}
}

// The acceptance bar: a job that resumes from a checkpoint must produce
// the same bytes as one that ran start-to-finish, and as one that ran
// with no checkpointing at all.
func TestCoreRunnerSweepReplayByteIdentical(t *testing.T) {
	job := makeJob(t, specSweep())

	fresh := &CoreRunner{}
	want, _, err := fresh.Run(context.Background(), job)
	if err != nil {
		t.Fatalf("fresh run: %v", err)
	}

	ckpt := &CoreRunner{CkptRoot: t.TempDir()}
	first, _, err := ckpt.Run(context.Background(), job)
	if err != nil {
		t.Fatalf("checkpointed run: %v", err)
	}
	// Second run over the same directory replays every point.
	replayed, _, err := ckpt.Run(context.Background(), job)
	if err != nil {
		t.Fatalf("replayed run: %v", err)
	}
	if !bytes.Equal(want, first) || !bytes.Equal(want, replayed) {
		t.Fatalf("results diverge:\n  fresh    %s\n  ckpt     %s\n  replayed %s", want, first, replayed)
	}
}

// Proof the replay path is actually taken: a checkpointed point is
// trusted verbatim, not recomputed. We plant an impossible latency and
// expect it back in the result.
func TestCoreRunnerSweepTrustsCheckpointedPoints(t *testing.T) {
	job := makeJob(t, specSweep())
	root := t.TempDir()

	id, err := jobIdentity(job)
	if err != nil {
		t.Fatalf("identity: %v", err)
	}
	ck, err := runstate.Open(filepath.Join(root, job.ID), id)
	if err != nil {
		t.Fatalf("seeding checkpoint: %v", err)
	}
	planted := SweepResultPoint{Index: 1, Rate: job.Spec.Rates[0], AvgLatency: 123456}
	ck.Record("point/000", planted)
	if err := ck.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	r := &CoreRunner{CkptRoot: root}
	raw, _, err := r.Run(context.Background(), job)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var res SweepResult
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(res.Points) != 3 || res.Points[0].AvgLatency != 123456 {
		t.Fatalf("checkpointed point must replay verbatim, got %+v", res.Points)
	}
	if res.Points[1].AvgLatency == 0 || res.Points[1].AvgLatency == 123456 {
		t.Fatalf("uncheckpointed points must still be simulated, got %+v", res.Points[1])
	}
}

// Satellite: a checkpoint directory written under a different identity —
// another job's leftovers, an incompatible schema — must fail the job
// with ErrIdentityMismatch. Never a panic, never a silent re-run against
// alien state. Exercised end-to-end through the service so the failure
// lands in the job record.
func TestServiceIdentityMismatchFailsJob(t *testing.T) {
	root := t.TempDir()
	spec := specSweep()
	net, err := spec.ResolveNetwork()
	if err != nil {
		t.Fatalf("resolve: %v", err)
	}
	sha, err := TopologySHA(net)
	if err != nil {
		t.Fatalf("sha: %v", err)
	}
	// The first job of a fresh store gets a predictable ID; squat on its
	// checkpoint directory with an alien identity before it is born.
	firstID := "j000001-" + sha[:8]
	alien, err := runstate.Open(filepath.Join(root, firstID), runstate.Identity{Command: "not-commschedd"})
	if err != nil {
		t.Fatalf("alien open: %v", err)
	}
	alien.Record("point/000", SweepResultPoint{Index: 1})
	if err := alien.Close(); err != nil {
		t.Fatalf("alien close: %v", err)
	}

	svc := newTestService(t, Config{CkptRoot: root})
	job, err := svc.Submit(spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if job.ID != firstID {
		t.Fatalf("job ID %s, squatted on %s", job.ID, firstID)
	}
	failed := waitState(t, svc, job.ID, StateFailed)
	if !strings.Contains(failed.Error, "identity mismatch") {
		t.Fatalf("job error = %q, want an identity-mismatch report", failed.Error)
	}
	if failed.Result != nil {
		t.Fatalf("a refused job must carry no result, got %s", failed.Result)
	}
}

// A broken checkpoint location (not a mismatch — simply unusable)
// degrades to running without durability rather than failing the job.
func TestCoreRunnerCheckpointDegradesOnOpenFailure(t *testing.T) {
	job := makeJob(t, specSweep())
	// CkptRoot is a file: every per-job mkdir under it must fail.
	rootFile := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(rootFile, []byte("not a directory"), 0o644); err != nil {
		t.Fatalf("seeding file: %v", err)
	}
	r := &CoreRunner{CkptRoot: rootFile}
	raw, _, err := r.Run(context.Background(), job)
	if err != nil {
		t.Fatalf("run must degrade, not fail: %v", err)
	}
	var res SweepResult
	if err := json.Unmarshal(raw, &res); err != nil || len(res.Points) != 3 {
		t.Fatalf("degraded run must still produce the sweep: %v %s", err, raw)
	}
}

// Salvage: points that fail permanently are kept as Incomplete under the
// error budget; one failure past the budget fails the job.
func TestCoreRunnerSweepSalvagesUnderBudget(t *testing.T) {
	job := makeJob(t, specSweep()) // 3 points
	hostile := par.Policy{Timeout: time.Nanosecond, ErrorBudget: 3}
	r := &CoreRunner{Policy: hostile}
	raw, info, err := r.Run(context.Background(), job)
	if err != nil {
		t.Fatalf("run within budget: %v", err)
	}
	if info.Salvaged != 3 {
		t.Fatalf("salvaged = %d, want 3", info.Salvaged)
	}
	var res SweepResult
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatalf("decode: %v", err)
	}
	for i, pt := range res.Points {
		if !pt.Incomplete {
			t.Fatalf("point %d must be marked incomplete: %+v", i, pt)
		}
	}
	if res.Throughput != 0 {
		t.Fatalf("throughput over incomplete points must stay 0, got %v", res.Throughput)
	}

	// Budget one short of the failures: the job fails.
	r = &CoreRunner{Policy: par.Policy{Timeout: time.Nanosecond, ErrorBudget: 2}}
	if _, _, err := r.Run(context.Background(), job); err == nil {
		t.Fatal("exhausted budget must fail the job")
	}
}

func TestCoreRunnerRefusesExhaustiveOnLargeNetworks(t *testing.T) {
	spec := JobSpec{
		Kind:      KindSchedule,
		Generate:  &GenerateSpec{Kind: "ring", Switches: 16},
		Clusters:  4,
		Heuristic: "exhaustive",
	}
	job := makeJob(t, spec)
	r := &CoreRunner{}
	if _, _, err := r.Run(context.Background(), job); err == nil || !strings.Contains(err.Error(), "refused") {
		t.Fatalf("exhaustive on 16 switches must be refused, got %v", err)
	}
}

func TestCoreRunnerScheduleDeterministic(t *testing.T) {
	spec := JobSpec{
		Kind:      KindSchedule,
		Generate:  &GenerateSpec{Kind: "irregular", Switches: 8, Degree: 3},
		Clusters:  4,
		Heuristic: "greedy",
		Seed:      7,
	}
	job := makeJob(t, spec)
	r := &CoreRunner{}
	a, _, err := r.Run(context.Background(), job)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	b, _, err := r.Run(context.Background(), job)
	if err != nil {
		t.Fatalf("rerun: %v", err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("schedule not deterministic:\n%s\n%s", a, b)
	}
}
