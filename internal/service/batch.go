package service

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"commsched/internal/obs"
	"commsched/internal/topology"
)

// evalCall is one caller waiting inside a batch; the response channel is
// buffered so the flusher never blocks on a caller that gave up.
type evalCall struct {
	assign []int
	m      int
	resp   chan evalReply
}

type evalReply struct {
	res EvaluateResult
	err error
}

// evalGroup is the open batch for one topology SHA.
type evalGroup struct {
	net   *topology.Network
	calls []*evalCall
	timer *time.Timer
	gen   int // guards against a timer firing for a batch already flushed by size
}

// Batcher coalesces concurrent evaluation requests against the same
// topology (keyed by its SHA-256) into one batched flush: the expensive
// part of an evaluation is characterizing the system (routing + the
// O(n²) distance table), so N concurrent requests for one topology
// should pay it once, not N times. A batch flushes when it reaches
// MaxBatch calls or when MaxWait elapses after its first call —
// whichever comes first — and every caller gets its answer on its own
// response channel.
type Batcher struct {
	// MaxBatch is the size flush threshold (default 16).
	MaxBatch int
	// MaxWait is the age flush threshold (default 10ms): the latency
	// cost the first caller pays so followers can ride along.
	MaxWait time.Duration

	// flush evaluates all calls of one batch; injectable for tests. The
	// default (set by NewBatcher) characterizes the system once and
	// evaluates each assignment against it.
	flush func(sha string, g *evalGroup)

	mu     sync.Mutex
	groups map[string]*evalGroup

	batches   atomic.Int64
	coalesced atomic.Int64
}

// NewBatcher builds a batcher with the default system-building flush.
func NewBatcher(maxBatch int, maxWait time.Duration) *Batcher {
	b := &Batcher{MaxBatch: maxBatch, MaxWait: maxWait, groups: make(map[string]*evalGroup)}
	if b.MaxBatch <= 0 {
		b.MaxBatch = 16
	}
	if b.MaxWait <= 0 {
		b.MaxWait = 10 * time.Millisecond
	}
	b.flush = b.evaluateGroup
	return b
}

// Evaluate joins (or opens) the batch for the network's SHA and blocks
// until the batch flushes or ctx ends. The caller resolves the network
// itself (admission has validated it already).
func (b *Batcher) Evaluate(ctx context.Context, sha string, net *topology.Network, assign []int, m int) (EvaluateResult, error) {
	call := &evalCall{assign: assign, m: m, resp: make(chan evalReply, 1)}

	b.mu.Lock()
	g := b.groups[sha]
	if g == nil {
		g = &evalGroup{net: net}
		b.groups[sha] = g
		gen := g.gen
		g.timer = time.AfterFunc(b.MaxWait, func() { b.flushByAge(sha, gen) })
	} else {
		b.coalesced.Add(1)
	}
	g.calls = append(g.calls, call)
	var ready *evalGroup
	if len(g.calls) >= b.MaxBatch {
		ready = b.takeLocked(sha, g)
	}
	b.mu.Unlock()

	if ready != nil {
		// The size-triggered flush runs on the filling caller's
		// goroutine: no worker pool to saturate, and the batch's own
		// submitters pay for their batch.
		b.runFlush(sha, ready)
	}

	select {
	case r := <-call.resp:
		return r.res, r.err
	case <-ctx.Done():
		return EvaluateResult{}, fmt.Errorf("service: evaluate cancelled: %w", ctx.Err())
	}
}

// takeLocked removes the open group for sha (caller holds b.mu).
func (b *Batcher) takeLocked(sha string, g *evalGroup) *evalGroup {
	delete(b.groups, sha)
	g.gen++
	if g.timer != nil {
		g.timer.Stop()
	}
	return g
}

// flushByAge is the timer path: flush whatever accumulated, unless the
// batch already flushed by size (gen moved on).
func (b *Batcher) flushByAge(sha string, gen int) {
	b.mu.Lock()
	g := b.groups[sha]
	if g == nil || g.gen != gen {
		b.mu.Unlock()
		return
	}
	ready := b.takeLocked(sha, g)
	b.mu.Unlock()
	b.runFlush(sha, ready)
}

func (b *Batcher) runFlush(sha string, g *evalGroup) {
	b.batches.Add(1)
	if obs.Enabled() {
		obs.Event("service.batch",
			obs.F("value", b.batches.Load()),
			obs.F("size", len(g.calls)),
			obs.F("sha", sha[:min(12, len(sha))]))
	}
	b.flush(sha, g)
}

// evaluateGroup is the default flush: one system characterization per
// batch, one cheap evaluation per call.
func (b *Batcher) evaluateGroup(_ string, g *evalGroup) {
	sys, err := newSystemSafe(g.net)
	if err != nil {
		for _, c := range g.calls {
			c.resp <- evalReply{err: err}
		}
		return
	}
	for _, c := range g.calls {
		q, err := evaluateAssign(sys, c.assign, c.m)
		c.resp <- evalReply{res: q, err: err}
	}
}

// Stats returns (batches flushed, calls that rode an existing batch).
func (b *Batcher) Stats() (batches, coalesced int64) {
	return b.batches.Load(), b.coalesced.Load()
}
