package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"

	"commsched/internal/core"
	"commsched/internal/mapping"
	"commsched/internal/obs"
	"commsched/internal/par"
	"commsched/internal/runstate"
	"commsched/internal/search"
	"commsched/internal/simnet"
	"commsched/internal/topology"
)

// RunInfo is the runner's execution metadata, surfaced in the job status
// alongside the result.
type RunInfo struct {
	// Salvaged counts sweep points that failed permanently but were
	// kept as Incomplete under the job's error budget.
	Salvaged int
}

// Runner executes one job and returns its canonical result document.
// Implementations must be deterministic in the job spec: two runs of
// equal specs — including a run resumed from a checkpoint after a crash
// — must return byte-identical results.
type Runner interface {
	Run(ctx context.Context, job *Job) (json.RawMessage, RunInfo, error)
}

// CoreRunner runs jobs through the core façade.
type CoreRunner struct {
	// Policy is the per-unit robustness policy (attempt deadline,
	// retries with seeded backoff, error budget for sweep points). It is
	// applied per job via par.Policy.RunUnit — never installed globally.
	Policy par.Policy
	// CkptRoot, when set, gives every job a checkpoint directory
	// CkptRoot/<jobID>: completed sweep points (and the scheduled
	// mapping) are journaled there, so a daemon killed mid-job resumes
	// the job instead of restarting it.
	CkptRoot string
}

// newSystemSafe characterizes a network with a final panic net: the
// façade validates its inputs, but a long-lived daemon survives even a
// façade bug as a failed job, never as a crash.
func newSystemSafe(net *topology.Network) (sys *core.System, err error) {
	defer func() {
		if r := recover(); r != nil {
			sys, err = nil, fmt.Errorf("service: characterization panic: %v", r)
		}
	}()
	return core.NewSystem(net, core.Options{})
}

// evaluateAssign validates and scores one explicit assignment.
func evaluateAssign(sys *core.System, assign []int, m int) (EvaluateResult, error) {
	p, err := mapping.New(assign, m)
	if err != nil {
		return EvaluateResult{}, err
	}
	q, err := sys.Evaluate(p)
	if err != nil {
		return EvaluateResult{}, err
	}
	return EvaluateResult{FG: q.FG, DG: q.DG, Cc: q.Cc}, nil
}

// pickSearcher maps a spec's heuristic name onto a searcher. Exhaustive
// search is only admitted on toy networks; its cost is superexponential
// and this is an online service.
func pickSearcher(name string, switches int) (search.Searcher, error) {
	switch name {
	case "", "tabu":
		return search.NewTabu(), nil
	case "greedy":
		return search.NewGreedy(), nil
	case "sa":
		return search.NewAnneal(), nil
	case "ga":
		return search.NewGenetic(), nil
	case "gsa":
		return search.NewGSA(), nil
	case "random":
		return &search.RandomSample{Samples: 1000}, nil
	case "exhaustive":
		if switches > 10 {
			return nil, fmt.Errorf("exhaustive search refused for %d switches (cap 10)", switches)
		}
		return search.NewExhaustive(), nil
	default:
		return nil, fmt.Errorf("unknown heuristic %q", name)
	}
}

// jobIdentity pins a per-job checkpoint directory to the exact job: the
// spec (canonical JSON), the resolved topology hash, and the seed. A
// directory holding anything else — another job's leftovers, a journal
// from an incompatible schema — is refused with ErrIdentityMismatch and
// the job fails loudly instead of silently re-running or mixing results.
func jobIdentity(job *Job) (runstate.Identity, error) {
	spec, err := json.Marshal(job.Spec)
	if err != nil {
		return runstate.Identity{}, fmt.Errorf("service: encoding spec: %w", err)
	}
	return runstate.Identity{
		Command:    "commschedd/job",
		Scale:      spec,
		Seeds:      map[string]int64{"seed": job.Spec.Seed},
		Topologies: map[string]string{"topology": job.TopologySHA},
	}, nil
}

// openJobCheckpoint opens the job's checkpoint store. An identity
// mismatch is a hard error (the job must fail, not re-run against alien
// state); any other open failure degrades to running without
// checkpoints — a broken checkpoint disk must not take the job down.
func (r *CoreRunner) openJobCheckpoint(job *Job) (*runstate.Store, error) {
	if r.CkptRoot == "" {
		return nil, nil
	}
	id, err := jobIdentity(job)
	if err != nil {
		return nil, err
	}
	ck, err := runstate.Open(filepath.Join(r.CkptRoot, job.ID), id)
	if err != nil {
		if errors.Is(err, runstate.ErrIdentityMismatch) {
			return nil, fmt.Errorf("service: job %s checkpoint rejected: %w", job.ID, err)
		}
		obs.Event("service.ckpt_degraded", obs.F("job", job.ID), obs.F("err", err.Error()))
		return nil, nil
	}
	return ck, nil
}

// Run implements Runner.
func (r *CoreRunner) Run(ctx context.Context, job *Job) (json.RawMessage, RunInfo, error) {
	sp, ctx := obs.StartSpanCtx(ctx, "service.run",
		obs.F("job", job.ID), obs.F("kind", string(job.Spec.Kind)))
	res, info, err := r.run(ctx, job)
	sp.End(obs.F("err", err != nil), obs.F("salvaged", info.Salvaged))
	return res, info, err
}

func (r *CoreRunner) run(ctx context.Context, job *Job) (json.RawMessage, RunInfo, error) {
	var info RunInfo
	net, err := job.Spec.ResolveNetwork()
	if err != nil {
		return nil, info, err
	}
	sys, err := newSystemSafe(net)
	if err != nil {
		return nil, info, err
	}

	var result any
	switch job.Spec.Kind {
	case KindEvaluate:
		var out EvaluateResult
		err := r.Policy.RunUnit(ctx, "service.evaluate", 0, func(ctx context.Context) error {
			var uerr error
			out, uerr = evaluateAssign(sys, job.Spec.Assign, job.Spec.M)
			return uerr
		})
		if err != nil {
			return nil, info, err
		}
		result = out

	case KindSchedule:
		sched, err := r.schedule(ctx, sys, job)
		if err != nil {
			return nil, info, err
		}
		result = ScheduleResult{
			Assign:      sched.Partition.Assign(),
			M:           sched.Partition.M(),
			FG:          sched.Quality.FG,
			DG:          sched.Quality.DG,
			Cc:          sched.Quality.Cc,
			Evaluations: sched.Search.Evaluations,
			Iterations:  sched.Search.Iterations,
		}

	case KindSweep:
		out, salvaged, err := r.sweep(ctx, sys, job)
		info.Salvaged = salvaged
		if err != nil {
			return nil, info, err
		}
		result = *out

	default:
		return nil, info, fmt.Errorf("service: unknown job kind %q", job.Spec.Kind)
	}
	// Result documents encode canonically: fixed struct field order, no
	// maps anywhere, so equal specs yield byte-equal results.
	data, err := json.Marshal(result)
	if err != nil {
		return nil, info, fmt.Errorf("service: encoding result: %w", err)
	}
	return data, info, nil
}

// schedule runs the search under the job policy as one unit.
func (r *CoreRunner) schedule(ctx context.Context, sys *core.System, job *Job) (*core.Schedule, error) {
	searcher, err := pickSearcher(job.Spec.Heuristic, sys.Network().Switches())
	if err != nil {
		return nil, err
	}
	var sched *core.Schedule
	err = r.Policy.RunUnit(ctx, "service.schedule", 0, func(ctx context.Context) error {
		var uerr error
		sched, uerr = sys.Schedule(ctx, core.ScheduleOptions{
			Clusters: job.Spec.Clusters,
			Searcher: searcher,
			Seed:     job.Spec.Seed,
		})
		return uerr
	})
	return sched, err
}

// sweepMapping is the durable form of the mapping a sweep simulates,
// checkpointed so a resumed job never repeats the search.
type sweepMapping struct {
	Assign []int   `json:"assign"`
	M      int     `json:"m"`
	Cc     float64 `json:"cc"`
}

// sweep simulates the job's mapping across its rate ladder, one
// checkpointable unit per point: a daemon killed between points resumes
// exactly where it stopped, and the resumed result is byte-identical
// because every point is a pure function of (spec, index).
func (r *CoreRunner) sweep(ctx context.Context, sys *core.System, job *Job) (*SweepResult, int, error) {
	ck, err := r.openJobCheckpoint(job)
	if err != nil {
		return nil, 0, err
	}
	if ck != nil {
		defer func() {
			if cerr := ck.Close(); cerr != nil {
				// The job's numbers are in hand (or it failed for its
				// own reasons); a failing checkpoint disk degrades
				// durability, not the answer.
				obs.Event("service.ckpt_degraded", obs.F("job", job.ID), obs.F("err", cerr.Error()))
			}
		}()
	}

	// Resolve the mapping: explicit assign, checkpointed search result,
	// or a fresh (deterministic) schedule.
	var mp sweepMapping
	switch {
	case len(job.Spec.Assign) > 0:
		mp = sweepMapping{Assign: job.Spec.Assign, M: job.Spec.M}
		if mp.M == 0 {
			mp.M = job.Spec.Clusters
		}
	case ck != nil && ck.Lookup("mapping", &mp) && len(mp.Assign) > 0:
		// replayed from the checkpoint
	default:
		sched, err := r.schedule(ctx, sys, job)
		if err != nil {
			return nil, 0, err
		}
		mp = sweepMapping{Assign: sched.Partition.Assign(), M: sched.Partition.M(), Cc: sched.Quality.Cc}
		if ck != nil {
			ck.Record("mapping", mp)
		}
	}
	p, err := mapping.New(mp.Assign, mp.M)
	if err != nil {
		return nil, 0, err
	}
	if q, err := sys.Evaluate(p); err == nil {
		mp.Cc = q.Cc
	} else {
		return nil, 0, err
	}

	out := &SweepResult{Assign: mp.Assign, M: mp.M, Cc: mp.Cc}
	salvaged := 0
	budget := r.Policy.ErrorBudget
	for i, rate := range job.Spec.Rates {
		if cerr := ctx.Err(); cerr != nil {
			return nil, salvaged, fmt.Errorf("service: sweep stopped at point %d: %w", i+1, cerr)
		}
		key := fmt.Sprintf("point/%03d", i)
		var pt SweepResultPoint
		if ck != nil && ck.Lookup(key, &pt) {
			out.Points = append(out.Points, pt)
			r.emitUnitWide(ctx, job, key, rate, &pt, true)
			continue
		}
		cfg := simnet.Config{
			MessageFlits:  job.Spec.MessageFlits,
			WarmupCycles:  job.Spec.WarmupCycles,
			MeasureCycles: job.Spec.MeasureCycles,
			InjectionRate: rate,
			// One deterministic seed per point, independent of resume
			// history and of every other point.
			Seed: job.Spec.Seed + int64(i+1)*1000003,
		}
		var m simnet.Metrics
		uerr := r.Policy.RunUnit(ctx, "service.sweep", i, func(ctx context.Context) error {
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
			var serr error
			m, serr = sys.Simulate(p, cfg)
			return serr
		})
		switch {
		case uerr == nil:
			pt = SweepResultPoint{
				Index:           i + 1,
				Rate:            rate,
				OfferedTraffic:  m.OfferedTraffic,
				AcceptedTraffic: m.AcceptedTraffic,
				AvgLatency:      m.AvgLatency,
				AvgTotalLatency: m.AvgTotalLatency,
				Saturated:       m.Saturated(),
			}
		case ctx.Err() != nil:
			// A drain/cancel order, not a point failure: surface it so
			// the service parks the job.
			return nil, salvaged, uerr
		case salvaged < budget:
			salvaged++
			pt = SweepResultPoint{Index: i + 1, Rate: rate, Incomplete: true}
			obs.Event("service.point_salvaged", obs.F("job", job.ID), obs.F("err", uerr.Error()))
		default:
			return nil, salvaged, uerr
		}
		out.Points = append(out.Points, pt)
		if ck != nil {
			ck.Record(key, pt)
		}
		r.emitUnitWide(ctx, job, key, rate, &pt, false)
		obs.Progress("job:"+job.ID, int64(len(out.Points)), int64(len(job.Spec.Rates)))
	}

	// Throughput over complete points only.
	for _, pt := range out.Points {
		if !pt.Incomplete && pt.AcceptedTraffic > out.Throughput {
			out.Throughput = pt.AcceptedTraffic
		}
	}
	return out, salvaged, nil
}

// emitUnitWide emits the canonical per-checkpoint-unit wide event: one
// record per sweep point, whether computed fresh or replayed from the
// journal of a killed predecessor — the replay is part of the job's
// causal story and shares its trace.
func (r *CoreRunner) emitUnitWide(ctx context.Context, job *Job, unit string, rate float64, pt *SweepResultPoint, replayed bool) {
	if !obs.Enabled() {
		return
	}
	obs.Wide(ctx, "unit.wide",
		obs.F("job", job.ID),
		obs.F("unit", unit),
		obs.F("replayed", replayed),
		obs.F("incomplete", pt.Incomplete),
		obs.F("rate", rate),
		obs.F("accepted", pt.AcceptedTraffic),
		obs.F("latency", pt.AvgLatency))
}
