package service

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"commsched/internal/topology"
)

func testRing(t *testing.T, n int) *topology.Network {
	t.Helper()
	net, err := topology.Ring(n, topology.Config{})
	if err != nil {
		t.Fatalf("ring: %v", err)
	}
	return net
}

// captureFlush replaces the batcher's flush with one that records batch
// sizes and answers every call. The returned accessor snapshots the
// batches seen so far under the recorder's own lock.
func captureFlush(b *Batcher) func() [][]int {
	var (
		mu    sync.Mutex
		sizes [][]int
	)
	b.flush = func(_ string, g *evalGroup) {
		batch := []int{}
		for _, c := range g.calls {
			batch = append(batch, c.m)
		}
		mu.Lock()
		sizes = append(sizes, batch)
		mu.Unlock()
		for i, c := range g.calls {
			c.resp <- evalReply{res: EvaluateResult{Cc: float64(i)}}
		}
	}
	return func() [][]int {
		mu.Lock()
		defer mu.Unlock()
		return append([][]int(nil), sizes...)
	}
}

func TestBatcherFlushesBySize(t *testing.T) {
	b := NewBatcher(3, time.Hour) // age flush effectively off
	sizes := captureFlush(b)
	net := testRing(t, 4)
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := b.Evaluate(context.Background(), "sha-a", net, []int{0, 1, 0, 1}, 2+i); err != nil {
				t.Errorf("evaluate: %v", err)
			}
		}(i)
	}
	wg.Wait()
	if len(sizes()) != 1 || len((sizes())[0]) != 3 {
		t.Fatalf("three calls at MaxBatch 3 must flush as one batch, got %v", sizes())
	}
	batches, coalesced := b.Stats()
	if batches != 1 || coalesced != 2 {
		t.Fatalf("stats = (%d batches, %d coalesced), want (1, 2)", batches, coalesced)
	}
}

func TestBatcherFlushesByAge(t *testing.T) {
	b := NewBatcher(100, 5*time.Millisecond)
	sizes := captureFlush(b)
	net := testRing(t, 4)
	if _, err := b.Evaluate(context.Background(), "sha-b", net, []int{0, 1, 0, 1}, 2); err != nil {
		t.Fatalf("evaluate: %v", err)
	}
	if len(sizes()) != 1 || len((sizes())[0]) != 1 {
		t.Fatalf("a lone call must flush by age, got %v", sizes())
	}
}

func TestBatcherKeysByTopology(t *testing.T) {
	b := NewBatcher(2, 20*time.Millisecond)
	sizes := captureFlush(b)
	net := testRing(t, 4)
	var wg sync.WaitGroup
	for _, sha := range []string{"sha-1", "sha-1", "sha-2"} {
		wg.Add(1)
		go func(sha string) {
			defer wg.Done()
			b.Evaluate(context.Background(), sha, net, []int{0, 1, 0, 1}, 2) //nolint:errcheck // sizes checked below
		}(sha)
	}
	wg.Wait()
	if len(sizes()) != 2 {
		t.Fatalf("distinct topologies must not share a batch, got %v", sizes())
	}
}

func TestBatcherCancelledCallerDoesNotBlockFlush(t *testing.T) {
	b := NewBatcher(2, time.Hour)
	net := testRing(t, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// The cancelled caller returns immediately; its buffered response
	// channel lets the eventual flush proceed without a reader.
	if _, err := b.Evaluate(ctx, "sha-c", net, []int{0, 1, 0, 1}, 2); err == nil {
		t.Fatal("cancelled evaluate must error")
	}
	done := make(chan struct{})
	go func() {
		b.Evaluate(context.Background(), "sha-c", net, []int{0, 1, 0, 1}, 2) //nolint:errcheck // completion is the assertion
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("flush deadlocked on the departed caller")
	}
}

// The default flush path computes real quality numbers, and every caller
// in a batch gets the answer for its own assignment.
func TestBatcherDefaultFlushEvaluates(t *testing.T) {
	b := NewBatcher(2, time.Hour)
	net := testRing(t, 8)
	sha := "sha-real"
	type ans struct {
		res EvaluateResult
		err error
	}
	out := make(chan ans, 2)
	assigns := [][]int{
		{0, 0, 0, 0, 1, 1, 1, 1}, // contiguous halves
		{0, 1, 0, 1, 0, 1, 0, 1}, // interleaved
	}
	for _, a := range assigns {
		go func(a []int) {
			r, err := b.Evaluate(context.Background(), sha, net, a, 2)
			out <- ans{r, err}
		}(a)
	}
	var got []EvaluateResult
	for i := 0; i < 2; i++ {
		a := <-out
		if a.err != nil {
			t.Fatalf("evaluate: %v", a.err)
		}
		got = append(got, a.res)
	}
	if got[0].Cc == got[1].Cc {
		t.Fatalf("distinct assignments must score differently on a ring, both %v", got[0])
	}
	for _, r := range got {
		if r.Cc <= 0 {
			t.Fatalf("Cc must be positive, got %+v", r)
		}
	}
}

// Regression guard for the timer/size race: a timer firing after its
// batch already flushed by size must not flush the successor batch early.
func TestBatcherStaleTimerDoesNotDoubleFlush(t *testing.T) {
	b := NewBatcher(1, 10*time.Millisecond) // size 1: every call flushes instantly
	sizes := captureFlush(b)
	net := testRing(t, 4)
	for i := 0; i < 5; i++ {
		if _, err := b.Evaluate(context.Background(), "sha-d", net, []int{0, 1, 0, 1}, 2); err != nil {
			t.Fatalf("evaluate %d: %v", i, err)
		}
	}
	time.Sleep(30 * time.Millisecond) // let stale timers fire
	if len(sizes()) != 5 {
		t.Fatalf("want 5 single-call batches, got %d: %v", len(sizes()), sizes())
	}
	for i, s := range sizes() {
		if len(s) != 1 {
			t.Fatalf("batch %d has %d calls, want 1 (%v)", i, len(s), fmt.Sprint(sizes()))
		}
	}
}
