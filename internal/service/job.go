// Package service is the scheduling-as-a-service layer: a long-lived,
// multi-tenant daemon (cmd/commschedd) that accepts topology + workload
// submissions over HTTP/JSON, runs mapping searches and simulations as
// queued jobs through the core façade, and streams progress and results.
//
// Robustness is the package's headline, not an afterthought:
//
//   - admission control: a bounded job queue with backpressure (429 +
//     Retry-After), per-tenant token-bucket rate limits and concurrent-job
//     quotas, request-size validation in front of the panic-hardened
//     façade, and a heap watermark that sheds new work before memory
//     pressure kills in-flight jobs;
//   - durability: with a state directory every job transition is
//     journaled through internal/runstate before the client sees a 202,
//     so jobs survive SIGKILL — queued jobs re-enqueue and interrupted
//     jobs resume from their per-job checkpoints on restart;
//   - per-job execution policies: internal/par's per-attempt deadlines,
//     seeded-backoff retries, and error budget, with partial results
//     salvaged into the job status instead of discarded;
//   - graceful degradation: SIGTERM stops admission, lets running jobs
//     finish or park within a deadline, checkpoints, and exits 0.
package service

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"math/rand"
	"time"

	"commsched/internal/topology"
)

// JobKind selects what a job computes.
type JobKind string

const (
	// KindSchedule runs the communication-aware scheduling technique and
	// returns the best partition with its quality coefficients.
	KindSchedule JobKind = "schedule"
	// KindSweep simulates a mapping across a load ladder and returns one
	// latency/traffic point per rate (the paper's S1…Sn curves).
	KindSweep JobKind = "sweep"
	// KindEvaluate computes F_G/D_G/Cc for a given assignment.
	KindEvaluate JobKind = "evaluate"
)

// JobState is the lifecycle of a job.
type JobState string

const (
	// StateQueued: admitted and journaled, waiting for a worker.
	StateQueued JobState = "queued"
	// StateRunning: a worker is executing it.
	StateRunning JobState = "running"
	// StateDone: finished; Result holds the payload.
	StateDone JobState = "done"
	// StateFailed: failed permanently (after per-unit retries).
	StateFailed JobState = "failed"
	// StateParked: interrupted by a drain deadline; its checkpoints are
	// retained and a restarted daemon resumes it.
	StateParked JobState = "parked"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool { return s == StateDone || s == StateFailed }

// GenerateSpec asks the service to instantiate one of the module's
// topology generators instead of shipping an explicit link list.
type GenerateSpec struct {
	// Kind is the generator: irregular, rings, ring, mesh, torus, or
	// hypercube.
	Kind string `json:"kind"`
	// Switches / Degree parameterize irregular and ring.
	Switches int `json:"switches,omitempty"`
	Degree   int `json:"degree,omitempty"`
	// Rings / RingSize / Bridges parameterize rings.
	Rings    int `json:"rings,omitempty"`
	RingSize int `json:"ring_size,omitempty"`
	Bridges  int `json:"bridges,omitempty"`
	// Rows / Cols parameterize mesh and torus; Dim the hypercube.
	Rows int `json:"rows,omitempty"`
	Cols int `json:"cols,omitempty"`
	Dim  int `json:"dim,omitempty"`
	// Seed drives the irregular generator.
	Seed int64 `json:"seed,omitempty"`
}

// JobSpec is the client-supplied description of one job. Everything a
// result depends on lives here, so equal specs produce byte-identical
// results — the contract the durable resume path is tested against.
type JobSpec struct {
	// Tenant identifies the submitter for quotas and rate limits
	// (empty = the "anonymous" tenant).
	Tenant string `json:"tenant,omitempty"`
	// Kind selects the computation.
	Kind JobKind `json:"kind"`
	// Network is an explicit topology (the JSON form emitted by
	// topogen/topology.MarshalJSON); mutually exclusive with Generate.
	Network json.RawMessage `json:"network,omitempty"`
	// Generate instantiates a named generator instead.
	Generate *GenerateSpec `json:"generate,omitempty"`
	// Clusters is the number of equal-size logical clusters
	// (schedule/sweep).
	Clusters int `json:"clusters,omitempty"`
	// Heuristic picks the searcher (default "tabu").
	Heuristic string `json:"heuristic,omitempty"`
	// Seed drives the search restarts and the simulation RNG.
	Seed int64 `json:"seed,omitempty"`
	// Rates is the injection-rate ladder of a sweep.
	Rates []float64 `json:"rates,omitempty"`
	// WarmupCycles / MeasureCycles / MessageFlits bound the simulation
	// effort of a sweep (zero = simulator defaults).
	WarmupCycles  int `json:"warmup_cycles,omitempty"`
	MeasureCycles int `json:"measure_cycles,omitempty"`
	MessageFlits  int `json:"message_flits,omitempty"`
	// Assign + M give an explicit mapping: the subject of an evaluate
	// job, or the mapping a sweep simulates (a sweep without Assign
	// schedules first and simulates the winner).
	Assign []int `json:"assign,omitempty"`
	M      int   `json:"m,omitempty"`
}

// Validation caps: the façade behind the service is panic-hardened, but
// admission still refuses work whose cost is out of any proportion to an
// online request — resource exhaustion is an availability bug too.
const (
	// MaxSwitches bounds the topology size (the distance table is an
	// O(n²) set of CG solves).
	MaxSwitches = 128
	// MaxRates bounds the sweep ladder length.
	MaxRates = 64
	// MaxMeasureCycles / MaxWarmupCycles bound one simulation run.
	MaxMeasureCycles = 200000
	MaxWarmupCycles  = 50000
	// MaxNetworkBytes bounds an explicit topology document.
	MaxNetworkBytes = 1 << 20
)

// Validate checks structural sanity and the service's size caps. It does
// not instantiate the topology; ResolveNetwork does (and re-validates
// through the topology package's own constructors).
func (s *JobSpec) Validate() error {
	switch s.Kind {
	case KindSchedule, KindSweep, KindEvaluate:
	default:
		return fmt.Errorf("unknown job kind %q (want schedule, sweep, or evaluate)", s.Kind)
	}
	if (s.Network == nil) == (s.Generate == nil) {
		return fmt.Errorf("exactly one of network or generate must be set")
	}
	if len(s.Network) > MaxNetworkBytes {
		return fmt.Errorf("network document is %d bytes (cap %d)", len(s.Network), MaxNetworkBytes)
	}
	if g := s.Generate; g != nil {
		n := g.Switches
		switch g.Kind {
		case "rings":
			n = g.Rings * g.RingSize
		case "mesh", "torus":
			n = g.Rows * g.Cols
		case "hypercube":
			n = 1 << uint(min(g.Dim, 31))
		}
		if n > MaxSwitches {
			return fmt.Errorf("generated topology has %d switches (cap %d)", n, MaxSwitches)
		}
	}
	if len(s.Rates) > MaxRates {
		return fmt.Errorf("%d sweep rates (cap %d)", len(s.Rates), MaxRates)
	}
	for _, r := range s.Rates {
		if r <= 0 || r > 4 {
			return fmt.Errorf("rate %v out of range (0, 4]", r)
		}
	}
	if s.MeasureCycles < 0 || s.MeasureCycles > MaxMeasureCycles {
		return fmt.Errorf("measure_cycles %d out of range [0, %d]", s.MeasureCycles, MaxMeasureCycles)
	}
	if s.WarmupCycles < 0 || s.WarmupCycles > MaxWarmupCycles {
		return fmt.Errorf("warmup_cycles %d out of range [0, %d]", s.WarmupCycles, MaxWarmupCycles)
	}
	if s.MessageFlits < 0 || s.MessageFlits > 1024 {
		return fmt.Errorf("message_flits %d out of range [0, 1024]", s.MessageFlits)
	}
	switch s.Kind {
	case KindEvaluate:
		if len(s.Assign) == 0 || s.M <= 0 {
			return fmt.Errorf("evaluate needs assign and m")
		}
	case KindSchedule:
		if s.Clusters <= 0 {
			return fmt.Errorf("schedule needs clusters > 0")
		}
	case KindSweep:
		if len(s.Rates) == 0 {
			return fmt.Errorf("sweep needs at least one rate")
		}
		if len(s.Assign) == 0 && s.Clusters <= 0 {
			return fmt.Errorf("sweep needs clusters > 0 (or an explicit assign)")
		}
	}
	return nil
}

// ResolveNetwork instantiates and fully validates the job's topology —
// every structural check of the topology package runs before the job is
// admitted, so nothing malformed ever reaches a worker.
func (s *JobSpec) ResolveNetwork() (*topology.Network, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if s.Network != nil {
		return topology.UnmarshalNetworkJSON(s.Network)
	}
	g := s.Generate
	cfg := topology.Config{}
	switch g.Kind {
	case "irregular":
		return topology.RandomIrregular(g.Switches, g.Degree, rand.New(rand.NewSource(g.Seed)), cfg)
	case "rings":
		return topology.InterconnectedRings(g.Rings, g.RingSize, g.Bridges, cfg)
	case "ring":
		return topology.Ring(g.Switches, cfg)
	case "mesh":
		return topology.Mesh2D(g.Rows, g.Cols, cfg)
	case "torus":
		return topology.Torus2D(g.Rows, g.Cols, cfg)
	case "hypercube":
		return topology.Hypercube(g.Dim, cfg)
	default:
		return nil, fmt.Errorf("unknown generator kind %q", g.Kind)
	}
}

// TopologySHA is the SHA-256 of the resolved network's canonical JSON —
// the key the batcher coalesces on and the identity a per-job checkpoint
// directory is pinned to.
func TopologySHA(net *topology.Network) (string, error) {
	data, err := net.MarshalJSON()
	if err != nil {
		return "", fmt.Errorf("service: hashing topology: %w", err)
	}
	sum := sha256.Sum256(data)
	return fmt.Sprintf("%x", sum[:]), nil
}

// Job is one submission's full record. The store journals it on every
// transition, so the latest journaled state is what a restarted daemon
// recovers.
type Job struct {
	// ID is unique across the daemon's lifetime including restarts.
	ID string `json:"id"`
	// Seq orders submissions (and seeds the ID).
	Seq int64 `json:"seq"`
	// Spec is the client's submission, verbatim.
	Spec JobSpec `json:"spec"`
	// TopologySHA identifies the resolved network.
	TopologySHA string `json:"topology_sha"`
	// State is the lifecycle position.
	State JobState `json:"state"`
	// Error is the permanent failure, when State == failed.
	Error string `json:"error,omitempty"`
	// Result is the canonical result document, when State == done. It
	// depends only on Spec — never on timing, worker, or resume history.
	Result json.RawMessage `json:"result,omitempty"`
	// Trace / Span are the causal identity of the submission: the trace ID
	// (from the client's traceparent, or minted at admission) and the
	// admission span's ID. They are journaled with the job, so a daemon
	// killed mid-run stitches the resumed work into the same trace. They
	// are status metadata — never part of Result.
	Trace string `json:"trace,omitempty"`
	Span  string `json:"span,omitempty"`
	// QueueWaitMs is how long the job waited between submission and worker
	// pickup, in milliseconds (set when it starts running).
	QueueWaitMs float64 `json:"queue_wait_ms,omitempty"`
	// Attempts counts worker pickups (>1 after a resume).
	Attempts int `json:"attempts"`
	// Salvaged counts sweep points salvaged as incomplete under the
	// error budget.
	Salvaged int `json:"salvaged,omitempty"`
	// SubmittedAt / StartedAt / FinishedAt are wall-clock markers; they
	// are status metadata, deliberately outside Result.
	SubmittedAt time.Time `json:"submitted_at"`
	StartedAt   time.Time `json:"started_at,omitempty"`
	FinishedAt  time.Time `json:"finished_at,omitempty"`
}

// ScheduleResult is the result document of a schedule job.
type ScheduleResult struct {
	Assign      []int   `json:"assign"`
	M           int     `json:"m"`
	FG          float64 `json:"fg"`
	DG          float64 `json:"dg"`
	Cc          float64 `json:"cc"`
	Evaluations int     `json:"evaluations"`
	Iterations  int     `json:"iterations"`
}

// SweepResultPoint is one operating point of a sweep job's result.
type SweepResultPoint struct {
	Index           int     `json:"index"`
	Rate            float64 `json:"rate"`
	OfferedTraffic  float64 `json:"offered"`
	AcceptedTraffic float64 `json:"accepted"`
	AvgLatency      float64 `json:"latency"`
	AvgTotalLatency float64 `json:"latency_total"`
	Saturated       bool    `json:"saturated"`
	// Incomplete marks a point that failed permanently but was salvaged
	// under the job's error budget; its numbers are zero.
	Incomplete bool `json:"incomplete,omitempty"`
}

// SweepResult is the result document of a sweep job.
type SweepResult struct {
	Assign     []int              `json:"assign"`
	M          int                `json:"m"`
	Cc         float64            `json:"cc"`
	Points     []SweepResultPoint `json:"points"`
	Throughput float64            `json:"throughput"`
}

// EvaluateResult is the result document of an evaluate job (and of the
// synchronous batched /evaluate endpoint).
type EvaluateResult struct {
	FG float64 `json:"fg"`
	DG float64 `json:"dg"`
	Cc float64 `json:"cc"`
}
