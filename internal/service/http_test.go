package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func newTestAPI(t *testing.T, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	svc := newTestService(t, cfg)
	ts := httptest.NewServer(svc.Mux(nil))
	t.Cleanup(ts.Close)
	return svc, ts
}

func postSpec(t *testing.T, ts *httptest.Server, path string, spec JobSpec) *http.Response {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func decodeBody[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return v
}

func TestAPISubmitAndFetchResult(t *testing.T) {
	_, ts := newTestAPI(t, Config{Runner: &stubRunner{result: json.RawMessage(`{"cc":3.25}`)}})
	resp := postSpec(t, ts, "/jobs", specEval())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", resp.StatusCode)
	}
	job := decodeBody[Job](t, resp)
	if loc := resp.Header.Get("Location"); loc != "/jobs/"+job.ID {
		t.Fatalf("Location = %q", loc)
	}

	// Poll the result endpoint the way a client would: 409 + Retry-After
	// until done, then the raw result document.
	deadline := time.Now().Add(10 * time.Second)
	for {
		r, err := http.Get(ts.URL + "/jobs/" + job.ID + "/result")
		if err != nil {
			t.Fatalf("GET result: %v", err)
		}
		if r.StatusCode == http.StatusOK {
			doc := decodeBody[map[string]float64](t, r)
			r.Body.Close()
			if doc["cc"] != 3.25 {
				t.Fatalf("result = %v", doc)
			}
			break
		}
		if r.StatusCode != http.StatusConflict || r.Header.Get("Retry-After") == "" {
			t.Fatalf("pending result = %d (Retry-After %q), want 409 with Retry-After", r.StatusCode, r.Header.Get("Retry-After"))
		}
		r.Body.Close()
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The job record itself.
	r, err := http.Get(ts.URL + "/jobs/" + job.ID)
	if err != nil {
		t.Fatalf("GET job: %v", err)
	}
	defer r.Body.Close()
	got := decodeBody[Job](t, r)
	if got.State != StateDone || got.ID != job.ID {
		t.Fatalf("job = %+v", got)
	}
}

func TestAPIBadRequests(t *testing.T) {
	_, ts := newTestAPI(t, Config{Runner: &stubRunner{}})
	cases := []struct {
		name, body string
	}{
		{"malformed JSON", `{`},
		{"unknown field", `{"kind":"evaluate","bogus":1}`},
		{"invalid spec", `{"kind":"nonsense"}`},
	}
	for _, c := range cases {
		resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s = %d, want 400", c.name, resp.StatusCode)
		}
		resp.Body.Close()
	}
	// Oversized body.
	big := fmt.Sprintf(`{"kind":"evaluate","network":{"pad":%q}}`, strings.Repeat("x", maxBodyBytes))
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatalf("oversized: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized body = %d, want 400", resp.StatusCode)
	}
}

func TestAPIUnknownJob(t *testing.T) {
	_, ts := newTestAPI(t, Config{Runner: &stubRunner{}})
	for _, path := range []string{"/jobs/nope", "/jobs/nope/result"} {
		r, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if r.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s = %d, want 404", path, r.StatusCode)
		}
		r.Body.Close()
	}
}

func TestAPIFailedJobResult(t *testing.T) {
	svc, ts := newTestAPI(t, Config{Runner: &stubRunner{err: fmt.Errorf("kaboom")}})
	resp := postSpec(t, ts, "/jobs", specEval())
	job := decodeBody[Job](t, resp)
	waitState(t, svc, job.ID, StateFailed)
	r, err := http.Get(ts.URL + "/jobs/" + job.ID + "/result")
	if err != nil {
		t.Fatalf("GET result: %v", err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusConflict {
		t.Fatalf("failed result = %d, want 409", r.StatusCode)
	}
	e := decodeBody[apiError](t, r)
	if e.Reason != "failed" || e.Error != "kaboom" {
		t.Fatalf("error doc = %+v", e)
	}
}

func TestAPIListFilters(t *testing.T) {
	svc, ts := newTestAPI(t, Config{Runner: &stubRunner{}})
	alice := specEval()
	alice.Tenant = "alice"
	bob := specEval()
	bob.Tenant = "bob"
	a, err := svc.Submit(alice)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if _, err := svc.Submit(bob); err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitState(t, svc, a.ID, StateDone)

	r, err := http.Get(ts.URL + "/jobs?tenant=alice")
	if err != nil {
		t.Fatalf("GET list: %v", err)
	}
	defer r.Body.Close()
	list := decodeBody[struct {
		Jobs []Job `json:"jobs"`
	}](t, r)
	if len(list.Jobs) != 1 || list.Jobs[0].Spec.Tenant != "alice" {
		t.Fatalf("tenant filter = %+v", list.Jobs)
	}
	// Listings are an index: results are stripped even for done jobs.
	if list.Jobs[0].Result != nil {
		t.Fatalf("listing must strip results, got %s", list.Jobs[0].Result)
	}

	r2, err := http.Get(ts.URL + "/jobs?state=done&tenant=bob")
	if err != nil {
		t.Fatalf("GET list: %v", err)
	}
	defer r2.Body.Close()
	both := decodeBody[struct {
		Jobs []Job `json:"jobs"`
	}](t, r2)
	for _, j := range both.Jobs {
		if j.State != StateDone || j.Spec.Tenant != "bob" {
			t.Fatalf("combined filter leaked %+v", j)
		}
	}
}

func TestAPIBackpressureHasRetryAfterHeader(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	_, ts := newTestAPI(t, Config{
		Runner:  &stubRunner{block: block},
		Workers: 1,
		Limits:  Limits{QueueDepth: 1},
	})
	// Fill the queue, then expect 429 with a Retry-After header.
	var last *http.Response
	for i := 0; i < 4; i++ {
		last = postSpec(t, ts, "/jobs", specEval())
		if last.StatusCode == http.StatusTooManyRequests {
			break
		}
	}
	if last.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("queue never filled: last = %d", last.StatusCode)
	}
	if last.Header.Get("Retry-After") == "" {
		t.Fatal("429 must carry a Retry-After header")
	}
	e := decodeBody[apiError](t, last)
	if e.Reason != "queue_full" || e.RetryAfter <= 0 {
		t.Fatalf("429 doc = %+v", e)
	}
}

func TestAPIEvaluate(t *testing.T) {
	_, ts := newTestAPI(t, Config{Runner: &stubRunner{}, BatchWait: time.Millisecond})
	resp := postSpec(t, ts, "/evaluate", specEval())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("evaluate = %d, want 200", resp.StatusCode)
	}
	res := decodeBody[EvaluateResult](t, resp)
	if res.Cc <= 0 {
		t.Fatalf("Cc = %v, want positive", res.Cc)
	}
}

func TestAPIHealthzVsReadyz(t *testing.T) {
	svc, ts := newTestAPI(t, Config{Runner: &stubRunner{}})
	for _, path := range []string{"/healthz", "/readyz"} {
		r, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if r.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d, want 200", path, r.StatusCode)
		}
		r.Body.Close()
	}
	if err := svc.Drain(time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}
	// Draining: alive but not ready.
	r, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET healthz: %v", err)
	}
	if r.StatusCode != http.StatusOK {
		t.Fatalf("draining healthz = %d, want 200", r.StatusCode)
	}
	r.Body.Close()
	r, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatalf("GET readyz: %v", err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz = %d, want 503", r.StatusCode)
	}
	doc := decodeBody[readyzDoc](t, r)
	if doc.Ready || doc.Reason != "draining" {
		t.Fatalf("readyz doc = %+v", doc)
	}
}

// The package-level acceptance test: 1000+ concurrent submissions
// against a small queue. Every request gets 202 or 429 (never a hang,
// never a 5xx), every accepted job reaches a terminal state exactly
// once, and no two accepted submissions share an ID.
func TestAPIThousandConcurrentSubmissionsLoseNothing(t *testing.T) {
	svc, ts := newTestAPI(t, Config{
		Runner:  &stubRunner{},
		Workers: 4,
		Limits:  Limits{QueueDepth: 64},
	})
	const n = 1000
	type outcome struct {
		code int
		id   string
	}
	out := make(chan outcome, n)
	var wg sync.WaitGroup
	client := ts.Client()
	body, _ := json.Marshal(specEval())
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := client.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
			if err != nil {
				out <- outcome{code: -1}
				return
			}
			defer resp.Body.Close()
			o := outcome{code: resp.StatusCode}
			if resp.StatusCode == http.StatusAccepted {
				var j Job
				if err := json.NewDecoder(resp.Body).Decode(&j); err == nil {
					o.id = j.ID
				}
			}
			out <- o
		}()
	}
	wg.Wait()
	close(out)

	accepted := map[string]bool{}
	counts := map[int]int{}
	for o := range out {
		counts[o.code]++
		if o.code == http.StatusAccepted {
			if o.id == "" {
				t.Fatal("202 without a job ID")
			}
			if accepted[o.id] {
				t.Fatalf("duplicate job ID %s", o.id)
			}
			accepted[o.id] = true
		}
	}
	t.Logf("outcomes: %v", counts)
	if counts[-1] > 0 {
		t.Fatalf("%d transport errors", counts[-1])
	}
	if counts[http.StatusAccepted]+counts[http.StatusTooManyRequests] != n {
		t.Fatalf("every request must be 202 or 429, got %v", counts)
	}
	if counts[http.StatusAccepted] == 0 {
		t.Fatal("no request was accepted")
	}

	// Zero lost jobs: every accepted ID reaches done.
	deadline := time.Now().Add(30 * time.Second)
	for id := range accepted {
		for {
			j, ok := svc.Get(id)
			if !ok {
				t.Fatalf("accepted job %s vanished", id)
			}
			if j.State == StateDone {
				break
			}
			if j.State == StateFailed {
				t.Fatalf("accepted job %s failed: %s", id, j.Error)
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s stuck in %s", id, j.State)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	st := svc.Stats()
	if int(st.Completed) != len(accepted) {
		t.Fatalf("completed %d != accepted %d", st.Completed, len(accepted))
	}
}
