package par

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestZeroPolicyIsTransparent(t *testing.T) {
	SetPolicy(Policy{})
	if CurrentPolicy().Active() {
		t.Fatal("zero policy must be inactive")
	}
	boom := errors.New("boom")
	err := RunUnit(context.Background(), "u", 0, func(context.Context) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("zero policy must not retry or rewrap terminally: %v", err)
	}
}

func TestRetrySucceedsWithinBudget(t *testing.T) {
	SetPolicy(Policy{Retries: 3})
	defer SetPolicy(Policy{})
	ResetCounters()
	var calls atomic.Int64
	err := RunUnit(context.Background(), "u", 0, func(context.Context) error {
		if calls.Add(1) < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("unit should succeed on 3rd attempt: %v", err)
	}
	if calls.Load() != 3 {
		t.Fatalf("calls = %d, want 3", calls.Load())
	}
	if Retried() != 2 {
		t.Fatalf("retried = %d, want 2", Retried())
	}
}

func TestRetryExhaustion(t *testing.T) {
	SetPolicy(Policy{Retries: 2})
	defer SetPolicy(Policy{})
	boom := errors.New("boom")
	var calls atomic.Int64
	err := RunUnit(context.Background(), "u", 7, func(context.Context) error {
		calls.Add(1)
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("exhausted retry must wrap the last error: %v", err)
	}
	if calls.Load() != 3 {
		t.Fatalf("calls = %d, want 3 (1 + 2 retries)", calls.Load())
	}
}

func TestPanicIsRetried(t *testing.T) {
	SetPolicy(Policy{Retries: 1})
	defer SetPolicy(Policy{})
	var calls atomic.Int64
	err := RunUnit(context.Background(), "u", 0, func(context.Context) error {
		if calls.Add(1) == 1 {
			panic("first attempt explodes")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("panic should be recovered and retried: %v", err)
	}
}

func TestTimeoutPerAttempt(t *testing.T) {
	SetPolicy(Policy{Timeout: 10 * time.Millisecond, Retries: 1})
	defer SetPolicy(Policy{})
	var calls atomic.Int64
	err := RunUnit(context.Background(), "u", 0, func(ctx context.Context) error {
		if calls.Add(1) == 1 {
			<-ctx.Done() // cooperative unit notices its deadline
			return fmt.Errorf("unit timed out: %w", ctx.Err())
		}
		return nil
	})
	if err != nil {
		t.Fatalf("timed-out attempt should be retried with a fresh deadline: %v", err)
	}
	if calls.Load() != 2 {
		t.Fatalf("calls = %d, want 2", calls.Load())
	}
}

func TestOuterCancellationNotRetried(t *testing.T) {
	SetPolicy(Policy{Retries: 5})
	defer SetPolicy(Policy{})
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int64
	err := RunUnit(ctx, "u", 0, func(ctx context.Context) error {
		calls.Add(1)
		cancel()
		return fmt.Errorf("wrapped: %w", ctx.Err())
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("cancelled unit retried %d times; must not retry", calls.Load()-1)
	}
}

func TestForEachAppliesPolicy(t *testing.T) {
	SetPolicy(Policy{Retries: 2})
	defer SetPolicy(Policy{})
	var firstTry atomic.Int64
	results := make([]int, 8)
	err := ForEach(context.Background(), 8, func(_ context.Context, i int) error {
		if i == 3 && firstTry.Add(1) == 1 {
			return errors.New("flaky item")
		}
		results[i] = i + 1
		return nil
	})
	if err != nil {
		t.Fatalf("flaky item should have been retried: %v", err)
	}
	for i, r := range results {
		if r != i+1 {
			t.Fatalf("results[%d] = %d, want %d", i, r, i+1)
		}
	}
}

func TestForEachPartialSalvage(t *testing.T) {
	SetPolicy(Policy{ErrorBudget: 2})
	defer SetPolicy(Policy{})
	ResetCounters()
	boom := errors.New("dead unit")
	results := make([]int, 10)
	errs, err := ForEachPartial(context.Background(), "sweep", 10, func(_ context.Context, i int) error {
		if i == 2 || i == 5 {
			return boom
		}
		results[i] = 1
		return nil
	})
	if err != nil {
		t.Fatalf("2 failures within budget 2 must not abort: %v", err)
	}
	if len(errs) != 2 || errs[0].Index != 2 || errs[1].Index != 5 {
		t.Fatalf("salvaged units = %+v, want indices 2 and 5", errs)
	}
	for _, e := range errs {
		if !errors.Is(e.Err, boom) {
			t.Fatalf("unit error must wrap the cause: %v", e.Err)
		}
	}
	for i, r := range results {
		want := 1
		if i == 2 || i == 5 {
			want = 0
		}
		if r != want {
			t.Fatalf("results[%d] = %d, want %d", i, r, want)
		}
	}
	if Salvaged() != 2 {
		t.Fatalf("salvaged = %d, want 2", Salvaged())
	}
}

func TestForEachPartialBudgetExhausted(t *testing.T) {
	SetPolicy(Policy{ErrorBudget: 1})
	defer SetPolicy(Policy{})
	_, err := ForEachPartial(context.Background(), "sweep", 50, func(_ context.Context, i int) error {
		return errors.New("everything is broken")
	})
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
}

func TestForEachPartialNoBudgetFailsFast(t *testing.T) {
	SetPolicy(Policy{})
	boom := errors.New("boom")
	errs, err := ForEachPartial(context.Background(), "sweep", 4, func(_ context.Context, i int) error {
		if i == 1 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("without a budget any failure must abort: %v", err)
	}
	if len(errs) != 1 {
		t.Fatalf("errs = %+v", errs)
	}
}

func TestForEachPartialCancellationNotSalvaged(t *testing.T) {
	SetPolicy(Policy{ErrorBudget: 100})
	defer SetPolicy(Policy{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := ForEachPartial(ctx, "sweep", 10, func(ctx context.Context, i int) error {
		return ctx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run must surface cancellation, got %v", err)
	}
}

func TestBackoffHonorsCancellation(t *testing.T) {
	SetPolicy(Policy{Retries: 10, Backoff: time.Hour})
	defer SetPolicy(Policy{})
	ctx, cancel := context.WithCancel(context.Background())
	start := time.Now()
	done := make(chan error, 1)
	go func() {
		done <- RunUnit(ctx, "u", 0, func(context.Context) error { return errors.New("always fails") })
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("unit cannot have succeeded")
		}
		if time.Since(start) > 5*time.Second {
			t.Fatal("backoff did not honor cancellation")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("RunUnit stuck in backoff after cancellation")
	}
}
