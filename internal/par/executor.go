package par

import (
	"context"
	"sync/atomic"
)

// Executor runs a parallel loop: fn(ctx, i) for every i in [0, n),
// first error wins. The local bounded-worker pool (forEach) is the
// default implementation; the lease-backed distributed pool in
// internal/lease is another. fn arrives already wrapped in the unit
// Policy (retries, deadlines, salvage), so an executor only decides
// *where and when* items run, never how failures are handled.
type Executor interface {
	RunLoop(ctx context.Context, name string, n int, fn func(ctx context.Context, i int) error) error
}

var executor atomic.Pointer[Executor]

// SetExecutor installs a process-wide loop executor that top-level
// parallel loops route through (runctl installs the distributed pool
// here when -workers-dir is set). A nil argument restores the local
// pool.
func SetExecutor(e Executor) {
	if e == nil {
		executor.Store(nil)
		return
	}
	executor.Store(&e)
}

// CurrentExecutor returns the installed executor, or nil when loops run
// on the local pool.
func CurrentExecutor() Executor {
	if p := executor.Load(); p != nil {
		return *p
	}
	return nil
}

type executorScopeKey struct{}

// WithExecutorScope marks the context as already inside a distributed
// unit. Loops nested under the marker run on the local pool: a unit is
// the granularity of lease-based distribution, and fanning its interior
// back out across workers would deadlock the dispatcher on itself.
func WithExecutorScope(ctx context.Context) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, executorScopeKey{}, true)
}

// InExecutor reports whether ctx is inside a distributed unit.
func InExecutor(ctx context.Context) bool {
	if ctx == nil {
		return false
	}
	in, _ := ctx.Value(executorScopeKey{}).(bool)
	return in
}

// runLoop routes a loop to the installed executor when one is set and
// this is a top-level loop worth distributing; everything else runs on
// the local bounded-worker pool. Single-item loops stay local — the
// lease round-trip would cost more than the parallelism is worth.
func runLoop(ctx context.Context, name string, n int, fn func(ctx context.Context, i int) error) error {
	if ctx == nil {
		ctx = RootContext()
	}
	if e := CurrentExecutor(); e != nil && n > 1 && !InExecutor(ctx) {
		return e.RunLoop(ctx, name, n, fn)
	}
	return forEach(ctx, n, fn)
}
