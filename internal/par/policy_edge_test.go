package par

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// A budget of zero must behave exactly like ForEach: the first
// permanently-failed unit aborts the loop, nothing is salvaged.
func TestForEachPartialErrorBudgetZeroFailsFast(t *testing.T) {
	SetPolicy(Policy{Retries: 1, ErrorBudget: 0})
	defer SetPolicy(Policy{})
	ResetCounters()
	boom := errors.New("boom")
	failed, err := ForEachPartial(context.Background(), "u", 8, func(_ context.Context, i int) error {
		if i == 3 {
			return boom
		}
		return nil
	})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("budget 0 must abort on the failed unit, got err=%v", err)
	}
	if errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("budget 0 is fail-fast, not a zero-size budget: %v", err)
	}
	if Salvaged() != 0 {
		t.Fatalf("budget 0 must salvage nothing, salvaged %d", Salvaged())
	}
	if len(failed) != 1 || failed[0].Index != 3 {
		t.Fatalf("failed units = %v, want exactly unit 3", failed)
	}
}

// A budget exhausted exactly on the last unit is still a successful
// partial run: the budget bounds failures, it is not a tripwire at the
// boundary.
func TestForEachPartialBudgetExactlyOnLastUnit(t *testing.T) {
	SetPolicy(Policy{ErrorBudget: 2})
	defer SetPolicy(Policy{})
	ResetCounters()
	const n = 6
	boom := errors.New("boom")
	// Units fail in index order (workers=1 would guarantee it; instead
	// fail the last two indices and let any order land the same counts).
	failed, err := ForEachPartial(context.Background(), "u", n, func(_ context.Context, i int) error {
		if i >= n-2 {
			return boom
		}
		return nil
	})
	if err != nil {
		t.Fatalf("exactly-at-budget run must succeed, got %v", err)
	}
	if len(failed) != 2 {
		t.Fatalf("want 2 salvaged failures, got %v", failed)
	}
	if failed[0].Index != n-2 || failed[1].Index != n-1 {
		t.Fatalf("failed indices = %v, want [%d %d] sorted", failed, n-2, n-1)
	}
	if Salvaged() != 2 {
		t.Fatalf("salvaged counter = %d, want 2", Salvaged())
	}

	// One more failure — budget+1 — must abort with ErrBudgetExhausted.
	ResetCounters()
	_, err = ForEachPartial(context.Background(), "u", n, func(_ context.Context, i int) error {
		if i >= n-3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("budget+1 failures must exhaust the budget, got %v", err)
	}
}

// A deadline expiring mid-backoff must stop the retry loop promptly with
// the unit's error — not sleep out the full backoff, not start another
// attempt.
func TestRetryThenTimeoutDeadlineExpiresMidBackoff(t *testing.T) {
	SetPolicy(Policy{Retries: 5, Backoff: time.Hour})
	defer SetPolicy(Policy{})
	ResetCounters()
	boom := errors.New("boom")
	var attempts atomic.Int64
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := RunUnit(ctx, "u", 0, func(context.Context) error {
		attempts.Add(1)
		return boom
	})
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("RunUnit slept through the deadline: %s", elapsed)
	}
	if !errors.Is(err, boom) {
		t.Fatalf("the unit's own error must surface, got %v", err)
	}
	if got := attempts.Load(); got != 1 {
		t.Fatalf("no attempt may start after the deadline: %d attempts", got)
	}
}

// The per-attempt timeout composing with retries: each attempt gets a
// fresh deadline, and when the outer context dies between attempts the
// loop stops instead of burning the remaining retries.
func TestRetryThenTimeoutPerAttemptDeadlines(t *testing.T) {
	SetPolicy(Policy{Timeout: 20 * time.Millisecond, Retries: 2, Backoff: time.Millisecond})
	defer SetPolicy(Policy{})
	ResetCounters()
	var attempts atomic.Int64
	err := RunUnit(context.Background(), "u", 0, func(ctx context.Context) error {
		attempts.Add(1)
		<-ctx.Done() // run the attempt into its deadline
		return ctx.Err()
	})
	if err == nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want the final timeout surfaced, got %v", err)
	}
	if got := attempts.Load(); got != 3 {
		t.Fatalf("timeouts are retryable: want 1+2 attempts, got %d", got)
	}
}

// The backoff schedule of a unit is a pure function of (policy seed,
// unit name, unit index): identical across runs, workers, and resumes;
// decorrelated across units.
func TestBackoffScheduleReproducible(t *testing.T) {
	p := Policy{Retries: 4, Backoff: 100 * time.Millisecond, Seed: 7}
	a := p.BackoffSchedule("sweep", 3, 4)
	b := p.BackoffSchedule("sweep", 3, 4)
	if len(a) != 4 {
		t.Fatalf("want 4 delays, got %v", a)
	}
	for k := range a {
		if a[k] != b[k] {
			t.Fatalf("schedule not reproducible: %v vs %v", a, b)
		}
		base := p.Backoff << uint(k)
		lo := time.Duration(float64(base) * 0.5)
		hi := time.Duration(float64(base) * 1.5)
		if a[k] < lo || a[k] >= hi {
			t.Fatalf("delay %d = %s outside jitter range [%s, %s)", k, a[k], lo, hi)
		}
	}
	if c := p.BackoffSchedule("sweep", 4, 4); c[0] == a[0] && c[1] == a[1] {
		t.Fatalf("neighboring units share a schedule: %v vs %v", a, c)
	}
	if d := (Policy{Retries: 4, Backoff: 100 * time.Millisecond, Seed: 8}).BackoffSchedule("sweep", 3, 4); d[0] == a[0] && d[1] == a[1] {
		t.Fatalf("policy seed does not perturb the schedule: %v vs %v", a, d)
	}
}

// The schedule clamps: base<<k past 30s (or overflowing) pins to the
// 30s ceiling before jitter.
func TestBackoffScheduleClamps(t *testing.T) {
	p := Policy{Backoff: 20 * time.Second, Seed: 1}
	sched := p.BackoffSchedule("u", 0, 3)
	for k := 1; k < len(sched); k++ {
		if sched[k] >= time.Duration(float64(30*time.Second)*1.5) {
			t.Fatalf("delay %d = %s exceeds the jittered 30s ceiling", k, sched[k])
		}
	}
}
