// Package par provides the bounded-worker fan-out pattern used by every
// parallel loop in the module: GOMAXPROCS workers pull indices from an
// atomic counter, the first error (or recovered panic) cancels the rest,
// and a context cancellation is honored between items. Results are
// written by index, so a parallel loop is observably identical to the
// sequential one it replaces.
package par

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"commsched/internal/obs"
)

// ForEach runs fn(ctx, i) for every i in [0, n) across at most
// min(GOMAXPROCS, n) goroutines and returns the first error. A nil ctx
// means Background; cancellation stops workers between items and is
// surfaced as the (wrapped) context error. A panicking fn is recovered
// into an error instead of crashing the process. fn must write its result
// into caller-owned storage at index i; distinct indices never race.
//
// When a process-wide Policy is installed (SetPolicy), each item runs
// under it: a per-attempt deadline and bounded retries with backoff.
// The error budget is the domain of ForEachPartial; here any
// permanently-failed item still aborts the loop.
func ForEach(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	if CurrentPolicy().Active() {
		inner := fn
		fn = func(ctx context.Context, i int) error {
			return RunUnit(ctx, "par.foreach", i, func(ctx context.Context) error { return inner(ctx, i) })
		}
	}
	return runLoop(ctx, "par.foreach", n, fn)
}

// rootCtx is the process-wide root context installed by SetRootContext.
// A nil ctx passed to ForEach/ForEachPartial resolves to it, so deep
// experiment loops that predate context threading become cancellable
// (Ctrl-C, SIGTERM) without a signature change on every call path.
var rootCtx atomic.Pointer[context.Context]

// SetRootContext installs the context that a nil ctx resolves to in this
// package (commands install their signal-bound root context here via
// runctl). A nil argument restores context.Background.
func SetRootContext(ctx context.Context) {
	if ctx == nil {
		rootCtx.Store(nil)
		return
	}
	rootCtx.Store(&ctx)
}

// RootContext returns the installed root context (Background when none).
func RootContext() context.Context {
	if p := rootCtx.Load(); p != nil {
		return *p
	}
	return context.Background()
}

// forEach is the raw bounded-worker loop, with no unit policy applied.
func forEach(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return nil
	}
	if ctx == nil {
		ctx = RootContext()
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	var (
		wg     sync.WaitGroup
		next   atomic.Int64
		done   atomic.Int64
		failed atomic.Pointer[error]
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					err := fmt.Errorf("par: worker panic: %v", r)
					failed.CompareAndSwap(nil, &err)
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() != nil {
					return
				}
				if err := ctx.Err(); err != nil {
					err = fmt.Errorf("par: cancelled at item %d: %w", i, err)
					failed.CompareAndSwap(nil, &err)
					return
				}
				if obs.Enabled() {
					// Items are coarse (a full simulation run, a search
					// restart), so a per-item span is cheap relative to the
					// work; the worker field maps the item onto its worker's
					// thread lane in the Chrome trace view, and the derived
					// context hands each item its own span as parent so
					// nested instrumentation trees under the right item.
					sp, ictx := obs.StartSpanCtx(ctx, "par.item", obs.F("worker", worker), obs.F("index", i))
					err := fn(ictx, i)
					sp.End(obs.F("err", err != nil))
					obs.Progress("par.foreach", done.Add(1), int64(n))
					if err != nil {
						failed.CompareAndSwap(nil, &err)
						return
					}
					continue
				}
				if err := fn(ctx, i); err != nil {
					failed.CompareAndSwap(nil, &err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if errp := failed.Load(); errp != nil {
		return *errp
	}
	return nil
}
