package par

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"commsched/internal/obs"
)

// Policy is the per-unit robustness policy applied by RunUnit (and
// therefore by ForEach/ForEachPartial): a deadline for each attempt,
// a bounded number of retries with exponential backoff + jitter for
// units that fail, panic, or time out, and an error budget after which
// ForEachPartial stops retrying and salvages what it has. The zero
// Policy disables all of it — exactly the historical behavior.
type Policy struct {
	// Timeout bounds each attempt via context.WithTimeout. Enforcement
	// is cooperative: the unit must honor its context (all simulation
	// and search loops in this module do). Zero means no deadline.
	Timeout time.Duration
	// Retries is how many additional attempts a failed unit gets.
	Retries int
	// Backoff is the base delay before the first retry; attempt k waits
	// Backoff * 2^k scaled by a jitter factor in [0.5, 1.5). Zero with
	// Retries > 0 retries immediately.
	Backoff time.Duration
	// ErrorBudget is the number of units ForEachPartial lets fail (after
	// their retries) before it aborts the remainder of the loop. Zero
	// means no budget: any failed unit aborts, like ForEach.
	ErrorBudget int
}

// Active reports whether the policy changes anything over the zero value.
func (p Policy) Active() bool {
	return p.Timeout > 0 || p.Retries > 0 || p.ErrorBudget > 0
}

var policy atomic.Pointer[Policy]

// SetPolicy installs the process-wide unit policy (commands plumb their
// -timeout/-retries/-errorbudget flags here). A nil pointer — or the
// zero Policy — restores the default fail-fast behavior.
func SetPolicy(p Policy) {
	if !p.Active() {
		policy.Store(nil)
		return
	}
	policy.Store(&p)
}

// CurrentPolicy returns the installed policy (zero when none).
func CurrentPolicy() Policy {
	if p := policy.Load(); p != nil {
		return *p
	}
	return Policy{}
}

// retried and salvaged are process-lifetime counters for the commands'
// end-of-run warning lines ("N units salvaged as incomplete").
var (
	retriedCount  atomic.Int64
	salvagedCount atomic.Int64
)

// Retried returns how many unit attempts were retried so far.
func Retried() int64 { return retriedCount.Load() }

// Salvaged returns how many units exhausted their retries and were
// dropped under an error budget (their results are tagged incomplete).
func Salvaged() int64 { return salvagedCount.Load() }

// ResetCounters zeroes the retry/salvage counters (tests only).
func ResetCounters() {
	retriedCount.Store(0)
	salvagedCount.Store(0)
}

// RunUnit executes one unit of work under the installed policy: each
// attempt gets its own deadline, a panic is recovered into an error, and
// failures are retried with exponential backoff + jitter until the
// retry budget runs out. Cancellation of the outer ctx is never retried
// — a cancelled run must stop, not thrash.
func RunUnit(ctx context.Context, name string, i int, fn func(ctx context.Context) error) error {
	p := CurrentPolicy()
	if !p.Active() {
		return runAttempt(ctx, fn)
	}
	var err error
	for attempt := 0; ; attempt++ {
		actx, cancel := ctx, context.CancelFunc(func() {})
		if p.Timeout > 0 {
			actx, cancel = context.WithTimeout(ctx, p.Timeout)
		}
		err = runAttempt(actx, fn)
		cancel()
		if err == nil {
			return nil
		}
		// An outer cancellation is a command to stop; only unit-local
		// failures (panics, timeouts, real errors) are retryable.
		if ctx.Err() != nil {
			return err
		}
		if attempt >= p.Retries {
			return fmt.Errorf("par: unit %s[%d] failed after %d attempt(s): %w", name, i, attempt+1, err)
		}
		retriedCount.Add(1)
		if obs.Enabled() {
			obs.Event("par.retry",
				obs.F("value", retriedCount.Load()),
				obs.F("unit", fmt.Sprintf("%s[%d]", name, i)),
				obs.F("attempt", attempt+1),
				obs.F("err", err.Error()))
		}
		if p.Backoff > 0 {
			if serr := sleepBackoff(ctx, p.Backoff, attempt, int64(i)); serr != nil {
				return err
			}
		}
	}
}

// runAttempt invokes fn with panic recovery.
func runAttempt(ctx context.Context, fn func(ctx context.Context) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("par: unit panic: %v", r)
		}
	}()
	return fn(ctx)
}

// sleepBackoff waits base * 2^attempt scaled by jitter in [0.5, 1.5),
// returning early (with the ctx error) when the run is cancelled. The
// jitter source is seeded per unit — it perturbs only timing, never
// results, so determinism of the science is untouched.
func sleepBackoff(ctx context.Context, base time.Duration, attempt int, seed int64) error {
	d := base << uint(attempt)
	const maxBackoff = 30 * time.Second
	if d <= 0 || d > maxBackoff {
		d = maxBackoff
	}
	jitter := 0.5 + rand.New(rand.NewSource(seed^int64(attempt)<<17)).Float64()
	d = time.Duration(float64(d) * jitter)
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// UnitError describes one unit that failed permanently (all retries
// exhausted) but was salvaged under the error budget.
type UnitError struct {
	Index int
	Err   error
}

func (u UnitError) Error() string { return fmt.Sprintf("unit %d: %v", u.Index, u.Err) }

// ErrBudgetExhausted is wrapped into the error ForEachPartial returns
// when more units failed than the policy's ErrorBudget allows.
var ErrBudgetExhausted = errors.New("par: error budget exhausted")

// ForEachPartial is ForEach with graceful degradation: units run under
// the installed Policy (deadline + retries), and a unit that still fails
// is recorded — not fatal — until more than Policy.ErrorBudget units
// have failed. It returns the salvaged units' errors (sorted by index)
// alongside the loop error: (nil, nil) is a complete run, (errs, nil) a
// partial-but-acceptable one whose failed indices hold no result, and
// (errs, err) an aborted run. Cancellation is never salvaged: a
// cancelled run always returns the cancellation error.
func ForEachPartial(ctx context.Context, name string, n int, fn func(ctx context.Context, i int) error) ([]UnitError, error) {
	if n <= 0 {
		return nil, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	budget := CurrentPolicy().ErrorBudget
	var (
		mu     sync.Mutex
		failed []UnitError
	)
	err := forEach(ctx, n, func(ctx context.Context, i int) error {
		uerr := RunUnit(ctx, name, i, func(ctx context.Context) error { return fn(ctx, i) })
		if uerr == nil {
			return nil
		}
		if ctx.Err() != nil {
			// Cancellation is a stop order, not a salvageable failure.
			return uerr
		}
		mu.Lock()
		defer mu.Unlock()
		failed = append(failed, UnitError{Index: i, Err: uerr})
		nFailed := len(failed)
		if budget > 0 && nFailed <= budget {
			salvagedCount.Add(1)
			if obs.Enabled() {
				obs.Event("par.salvaged",
					obs.F("value", salvagedCount.Load()),
					obs.F("unit", fmt.Sprintf("%s[%d]", name, i)),
					obs.F("err", uerr.Error()))
			}
			return nil // degrade gracefully: skip this unit, keep the loop alive
		}
		if budget > 0 {
			return fmt.Errorf("%w: %d unit(s) of %s failed (budget %d), last: %v",
				ErrBudgetExhausted, nFailed, name, budget, uerr)
		}
		return uerr
	})
	mu.Lock()
	defer mu.Unlock()
	sort.Slice(failed, func(a, b int) bool { return failed[a].Index < failed[b].Index })
	if err != nil {
		return failed, err
	}
	return failed, nil
}

// FormatUnitErrors renders salvaged-unit errors for a warning line.
func FormatUnitErrors(errs []UnitError) string {
	parts := make([]string, 0, len(errs))
	for _, e := range errs {
		parts = append(parts, e.Error())
	}
	return strings.Join(parts, "; ")
}
