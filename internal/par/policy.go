package par

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"commsched/internal/obs"
)

// Policy is the per-unit robustness policy applied by RunUnit (and
// therefore by ForEach/ForEachPartial): a deadline for each attempt,
// a bounded number of retries with exponential backoff + jitter for
// units that fail, panic, or time out, and an error budget after which
// ForEachPartial stops retrying and salvages what it has. The zero
// Policy disables all of it — exactly the historical behavior.
type Policy struct {
	// Timeout bounds each attempt via context.WithTimeout. Enforcement
	// is cooperative: the unit must honor its context (all simulation
	// and search loops in this module do). Zero means no deadline.
	Timeout time.Duration
	// Retries is how many additional attempts a failed unit gets.
	Retries int
	// Backoff is the base delay before the first retry; attempt k waits
	// Backoff * 2^k scaled by a jitter factor in [0.5, 1.5). Zero with
	// Retries > 0 retries immediately.
	Backoff time.Duration
	// ErrorBudget is the number of units ForEachPartial lets fail (after
	// their retries) before it aborts the remainder of the loop. Zero
	// means no budget: any failed unit aborts, like ForEach.
	ErrorBudget int
	// Seed perturbs the per-unit backoff jitter. Every unit derives its
	// own RNG from (Seed, unit name, unit index), so a unit's retry
	// schedule is identical across runs and resumes no matter how the
	// loop's workers interleave — while distinct units still decorrelate.
	Seed int64
}

// Active reports whether the policy changes anything over the zero value.
func (p Policy) Active() bool {
	return p.Timeout > 0 || p.Retries > 0 || p.ErrorBudget > 0
}

var policy atomic.Pointer[Policy]

// SetPolicy installs the process-wide unit policy (commands plumb their
// -timeout/-retries/-errorbudget flags here). A nil pointer — or the
// zero Policy — restores the default fail-fast behavior.
func SetPolicy(p Policy) {
	if !p.Active() {
		policy.Store(nil)
		return
	}
	policy.Store(&p)
}

// CurrentPolicy returns the installed policy (zero when none).
func CurrentPolicy() Policy {
	if p := policy.Load(); p != nil {
		return *p
	}
	return Policy{}
}

// retried and salvaged are process-lifetime counters for the commands'
// end-of-run warning lines ("N units salvaged as incomplete").
var (
	retriedCount  atomic.Int64
	salvagedCount atomic.Int64
)

// Retried returns how many unit attempts were retried so far.
func Retried() int64 { return retriedCount.Load() }

// Salvaged returns how many units exhausted their retries and were
// dropped under an error budget (their results are tagged incomplete).
func Salvaged() int64 { return salvagedCount.Load() }

// ResetCounters zeroes the retry/salvage counters (tests only).
func ResetCounters() {
	retriedCount.Store(0)
	salvagedCount.Store(0)
}

// RunUnit executes one unit of work under the installed policy: each
// attempt gets its own deadline, a panic is recovered into an error, and
// failures are retried with exponential backoff + jitter until the
// retry budget runs out. Cancellation of the outer ctx is never retried
// — a cancelled run must stop, not thrash.
func RunUnit(ctx context.Context, name string, i int, fn func(ctx context.Context) error) error {
	return CurrentPolicy().RunUnit(ctx, name, i, fn)
}

// RunUnit executes one unit under this specific policy, regardless of
// what (if anything) is installed process-wide — the form long-lived
// services use to give every job its own deadlines and retry budgets
// without fighting over a global. When observability is on, the unit
// runs inside a "par.unit" span chained to the caller's trace, so every
// retry and timeout lands under the job that caused it.
func (p Policy) RunUnit(ctx context.Context, name string, i int, fn func(ctx context.Context) error) error {
	sp, ctx := obs.StartSpanCtx(ctx, "par.unit", obs.F("unit", name), obs.F("index", i))
	err := p.runUnit(ctx, name, i, fn)
	sp.End(obs.F("err", err != nil))
	return err
}

func (p Policy) runUnit(ctx context.Context, name string, i int, fn func(ctx context.Context) error) error {
	if !p.Active() {
		return runAttempt(ctx, fn)
	}
	// One jitter RNG per unit, seeded from the unit's identity alone.
	// Attempt k draws the k-th value, so the whole retry schedule of a
	// unit is a pure function of (policy seed, name, index) — never of
	// which worker ran it or what its neighbors were doing.
	var jitter *rand.Rand
	if p.Backoff > 0 {
		jitter = rand.New(rand.NewSource(unitSeed(p.Seed, name, i)))
	}
	var err error
	for attempt := 0; ; attempt++ {
		actx, cancel := ctx, context.CancelFunc(func() {})
		if p.Timeout > 0 {
			actx, cancel = context.WithTimeout(ctx, p.Timeout)
		}
		err = runAttempt(actx, fn)
		cancel()
		if err == nil {
			return nil
		}
		// An outer cancellation is a command to stop; only unit-local
		// failures (panics, timeouts, real errors) are retryable.
		if ctx.Err() != nil {
			return err
		}
		if attempt >= p.Retries {
			return fmt.Errorf("par: unit %s[%d] failed after %d attempt(s): %w", name, i, attempt+1, err)
		}
		retriedCount.Add(1)
		if obs.Enabled() {
			obs.EventCtx(ctx, "par.retry",
				obs.F("value", retriedCount.Load()),
				obs.F("unit", fmt.Sprintf("%s[%d]", name, i)),
				obs.F("attempt", attempt+1),
				obs.F("err", err.Error()))
		}
		if p.Backoff > 0 {
			if serr := sleepBackoff(ctx, p.Backoff, attempt, jitter); serr != nil {
				return err
			}
		}
	}
}

// runAttempt invokes fn with panic recovery.
func runAttempt(ctx context.Context, fn func(ctx context.Context) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("par: unit panic: %v", r)
		}
	}()
	return fn(ctx)
}

// unitSeed folds the policy seed, unit name, and unit index into the
// seed of the unit's jitter RNG (FNV-1a over the identity). Jitter
// perturbs only timing, never results, so determinism of the science is
// untouched either way — but a seeded schedule is reproducible when a
// retry storm needs debugging under -resume.
func unitSeed(policySeed int64, name string, i int) int64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(b byte) { h ^= uint64(b); h *= prime64 }
	for j := 0; j < len(name); j++ {
		mix(name[j])
	}
	for _, v := range [2]uint64{uint64(i), uint64(policySeed)} {
		for b := 0; b < 8; b++ {
			mix(byte(v >> (8 * b)))
		}
	}
	return int64(h)
}

// sleepBackoff waits base * 2^attempt scaled by the unit RNG's next
// jitter draw in [0.5, 1.5), returning early (with the ctx error) when
// the run is cancelled.
func sleepBackoff(ctx context.Context, base time.Duration, attempt int, rng *rand.Rand) error {
	d := base << uint(attempt)
	const maxBackoff = 30 * time.Second
	if d <= 0 || d > maxBackoff {
		d = maxBackoff
	}
	jitter := 0.5 + rng.Float64()
	d = time.Duration(float64(d) * jitter)
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// BackoffSchedule returns the exact backoff delays a unit would sleep
// under the policy — attempt k's delay before retry k+1 — without
// sleeping. Exposed so tests (and capacity planning) can assert the
// reproducibility contract: the schedule depends only on the policy and
// the unit's identity.
func (p Policy) BackoffSchedule(name string, i, attempts int) []time.Duration {
	if p.Backoff <= 0 || attempts <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(unitSeed(p.Seed, name, i)))
	out := make([]time.Duration, attempts)
	const maxBackoff = 30 * time.Second
	for k := range out {
		d := p.Backoff << uint(k)
		if d <= 0 || d > maxBackoff {
			d = maxBackoff
		}
		out[k] = time.Duration(float64(d) * (0.5 + rng.Float64()))
	}
	return out
}

// UnitError describes one unit that failed permanently (all retries
// exhausted) but was salvaged under the error budget.
type UnitError struct {
	Index int
	Err   error
}

func (u UnitError) Error() string { return fmt.Sprintf("unit %d: %v", u.Index, u.Err) }

// ErrBudgetExhausted is wrapped into the error ForEachPartial returns
// when more units failed than the policy's ErrorBudget allows.
var ErrBudgetExhausted = errors.New("par: error budget exhausted")

// ForEachPartial is ForEach with graceful degradation: units run under
// the installed Policy (deadline + retries), and a unit that still fails
// is recorded — not fatal — until more than Policy.ErrorBudget units
// have failed. It returns the salvaged units' errors (sorted by index)
// alongside the loop error: (nil, nil) is a complete run, (errs, nil) a
// partial-but-acceptable one whose failed indices hold no result, and
// (errs, err) an aborted run. Cancellation is never salvaged: a
// cancelled run always returns the cancellation error.
func ForEachPartial(ctx context.Context, name string, n int, fn func(ctx context.Context, i int) error) ([]UnitError, error) {
	if n <= 0 {
		return nil, nil
	}
	if ctx == nil {
		ctx = RootContext()
	}
	budget := CurrentPolicy().ErrorBudget
	var (
		mu     sync.Mutex
		failed []UnitError
	)
	err := runLoop(ctx, name, n, func(ctx context.Context, i int) error {
		uerr := RunUnit(ctx, name, i, func(ctx context.Context) error { return fn(ctx, i) })
		if uerr == nil {
			return nil
		}
		if ctx.Err() != nil {
			// Cancellation is a stop order, not a salvageable failure.
			return uerr
		}
		mu.Lock()
		defer mu.Unlock()
		failed = append(failed, UnitError{Index: i, Err: uerr})
		nFailed := len(failed)
		if budget > 0 && nFailed <= budget {
			salvagedCount.Add(1)
			if obs.Enabled() {
				obs.EventCtx(ctx, "par.salvaged",
					obs.F("value", salvagedCount.Load()),
					obs.F("unit", fmt.Sprintf("%s[%d]", name, i)),
					obs.F("err", uerr.Error()))
			}
			return nil // degrade gracefully: skip this unit, keep the loop alive
		}
		if budget > 0 {
			return fmt.Errorf("%w: %d unit(s) of %s failed (budget %d), last: %v",
				ErrBudgetExhausted, nFailed, name, budget, uerr)
		}
		return uerr
	})
	mu.Lock()
	defer mu.Unlock()
	sort.Slice(failed, func(a, b int) bool { return failed[a].Index < failed[b].Index })
	if err != nil {
		return failed, err
	}
	return failed, nil
}

// FormatUnitErrors renders salvaged-unit errors for a warning line.
func FormatUnitErrors(errs []UnitError) string {
	parts := make([]string, 0, len(errs))
	for _, e := range errs {
		parts = append(parts, e.Error())
	}
	return strings.Join(parts, "; ")
}
