package par

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
)

func TestForEachVisitsEveryIndexOnce(t *testing.T) {
	const n = 1000
	counts := make([]atomic.Int64, n)
	if err := ForEach(nil, n, func(_ context.Context, i int) error {
		counts[i].Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
}

func TestForEachZeroItems(t *testing.T) {
	if err := ForEach(nil, 0, func(context.Context, int) error {
		t.Fatal("fn called for empty range")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestForEachFirstErrorWins(t *testing.T) {
	sentinel := errors.New("boom")
	err := ForEach(nil, 100, func(_ context.Context, i int) error {
		if i == 7 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("got %v, want the sentinel error", err)
	}
}

func TestForEachRecoversPanic(t *testing.T) {
	err := ForEach(nil, 10, func(_ context.Context, i int) error {
		if i == 3 {
			panic("kaboom")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("panic not surfaced as error: %v", err)
	}
}

func TestForEachHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := ForEach(ctx, 1000, func(context.Context, int) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}
