// Package strategy implements the paper's Section 1 vision of an "ideal
// scheduling strategy" for heterogeneous systems: given the applications'
// computational and communication requirements, it estimates which
// resource is the system bottleneck and chooses either a
// computation-aware mapping (meta-task heuristics over machines of
// different computing power) or the paper's communication-aware mapping
// (process-level Tabu over the table of equivalent distances).
//
// The paper leaves this integration as future work; this package builds
// the simplest credible version: utilization-based bottleneck detection
// plus dispatch to the two scheduler families implemented in this module.
package strategy

import (
	"fmt"
	"math/rand"

	"commsched/internal/distance"
	"commsched/internal/metatask"
	"commsched/internal/procsched"
	"commsched/internal/routing"
	"commsched/internal/topology"
)

// Application describes one parallel application's requirements.
type Application struct {
	// Name labels the application in reports.
	Name string
	// Processes is the number of processes (one processor each).
	Processes int
	// CPUDemand is the compute work per process, in normalized work units.
	CPUDemand float64
	// CommIntensity is the traffic each process offers, in
	// flits/cycle/process.
	CommIntensity float64
}

// System is a heterogeneous NOW: a characterized network plus per-host
// relative computing power (the heterogeneity the paper's title is about).
type System struct {
	Net *topology.Network
	// Routing and Table characterize the communication substrate.
	Routing *routing.UpDown
	Table   *distance.Table
	// HostSpeed is each workstation's relative computing power (> 0).
	HostSpeed []float64
}

// NewSystem builds and validates a heterogeneous system. A nil hostSpeed
// means a homogeneous machine (all speeds 1).
func NewSystem(net *topology.Network, rt *routing.UpDown, tab *distance.Table, hostSpeed []float64) (*System, error) {
	if tab.N() != net.Switches() {
		return nil, fmt.Errorf("strategy: table covers %d switches, network has %d", tab.N(), net.Switches())
	}
	if hostSpeed == nil {
		hostSpeed = make([]float64, net.Hosts())
		for i := range hostSpeed {
			hostSpeed[i] = 1
		}
	}
	if len(hostSpeed) != net.Hosts() {
		return nil, fmt.Errorf("strategy: %d host speeds for %d hosts", len(hostSpeed), net.Hosts())
	}
	for h, s := range hostSpeed {
		if s <= 0 {
			return nil, fmt.Errorf("strategy: host %d has non-positive speed %v", h, s)
		}
	}
	return &System{Net: net, Routing: rt, Table: tab, HostSpeed: hostSpeed}, nil
}

// Bottleneck identifies the limiting resource.
type Bottleneck int

const (
	// CPUBound means the processors saturate before the network.
	CPUBound Bottleneck = iota
	// NetworkBound means the interconnect saturates first.
	NetworkBound
)

// String renders the bottleneck kind.
func (b Bottleneck) String() string {
	if b == NetworkBound {
		return "network-bound"
	}
	return "cpu-bound"
}

// Analysis is the bottleneck estimate for an application mix.
type Analysis struct {
	// CPUUtilization is total demanded work per unit time divided by the
	// machine's aggregate computing power.
	CPUUtilization float64
	// NetworkUtilization is the estimated aggregate link load divided by
	// the aggregate link bandwidth.
	NetworkUtilization float64
	// Bottleneck is the larger of the two.
	Bottleneck Bottleneck
}

// Analyze estimates both utilizations. The network estimate multiplies
// each application's offered flit rate by the network's mean legal route
// length (every flit occupies one link per hop) and divides by the total
// directed-link bandwidth — the standard back-of-envelope capacity model.
func (s *System) Analyze(apps []Application) (*Analysis, error) {
	if err := s.validateApps(apps); err != nil {
		return nil, err
	}
	totalSpeed := 0.0
	for _, sp := range s.HostSpeed {
		totalSpeed += sp
	}
	demand, offered := 0.0, 0.0
	for _, a := range apps {
		demand += float64(a.Processes) * a.CPUDemand
		offered += float64(a.Processes) * a.CommIntensity
	}
	n := s.Net.Switches()
	meanHops, pairs := 0.0, 0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				meanHops += float64(s.Routing.Distance(i, j))
				pairs++
			}
		}
	}
	if pairs > 0 {
		meanHops /= float64(pairs)
	}
	linkBandwidth := float64(2 * s.Net.NumLinks()) // one flit/cycle per direction
	an := &Analysis{
		CPUUtilization: demand / totalSpeed,
	}
	if linkBandwidth > 0 {
		an.NetworkUtilization = offered * meanHops / linkBandwidth
	}
	if an.NetworkUtilization > an.CPUUtilization {
		an.Bottleneck = NetworkBound
	}
	return an, nil
}

func (s *System) validateApps(apps []Application) error {
	if len(apps) == 0 {
		return fmt.Errorf("strategy: no applications")
	}
	total := 0
	for i, a := range apps {
		if a.Processes < 1 {
			return fmt.Errorf("strategy: application %d has %d processes", i, a.Processes)
		}
		if a.CPUDemand < 0 || a.CommIntensity < 0 {
			return fmt.Errorf("strategy: application %d has negative requirements", i)
		}
		total += a.Processes
	}
	if total > s.Net.Hosts() {
		return fmt.Errorf("strategy: %d processes exceed %d processors", total, s.Net.Hosts())
	}
	return nil
}

// Placement is a unified scheduling outcome.
type Placement struct {
	// HostOf maps the global process index (applications concatenated in
	// order) to its processor.
	HostOf []int
	// ClusterOf maps the global process index to its application.
	ClusterOf []int
	// Analysis is the bottleneck estimate that drove the choice.
	Analysis Analysis
	// Scheduler names the mapping technique used.
	Scheduler string
}

// Schedule analyzes the mix and dispatches: network-bound mixes get the
// paper's communication-aware process-level Tabu; CPU-bound mixes get the
// MCT meta-task heuristic over the heterogeneous processors (ETC built
// from CPUDemand / HostSpeed).
func (s *System) Schedule(apps []Application, seed int64) (*Placement, error) {
	an, err := s.Analyze(apps)
	if err != nil {
		return nil, err
	}
	clusterOf := make([]int, 0)
	for c, a := range apps {
		for i := 0; i < a.Processes; i++ {
			clusterOf = append(clusterOf, c)
		}
	}
	pl := &Placement{ClusterOf: clusterOf, Analysis: *an}
	if an.Bottleneck == NetworkBound {
		pr, err := procsched.NewProblem(s.Net, s.Table, clusterOf, 1)
		if err != nil {
			return nil, err
		}
		res := procsched.Tabu(pr, procsched.TabuOptions{}, rand.New(rand.NewSource(seed)))
		pl.HostOf = res.Best.HostOf
		pl.Scheduler = "communication-aware-tabu"
		return pl, nil
	}
	// CPU-bound: meta-task MCT with one slot per processor.
	time := make([][]float64, len(clusterOf))
	for p := range time {
		row := make([]float64, s.Net.Hosts())
		demand := apps[clusterOf[p]].CPUDemand
		if demand <= 0 {
			demand = 1e-9 // pure-communication process: negligible work
		}
		for h := 0; h < s.Net.Hosts(); h++ {
			row[h] = demand / s.HostSpeed[h]
		}
		time[p] = row
	}
	etc, err := metatask.NewETC(time)
	if err != nil {
		return nil, err
	}
	sched := metatask.MCT{}.Map(etc)
	// MCT may stack several processes on one machine; with one process
	// per processor required, spill overflow to the fastest free hosts.
	pl.HostOf, err = onePerHost(sched.MachineOf, s.HostSpeed)
	if err != nil {
		return nil, err
	}
	pl.Scheduler = "computation-aware-mct"
	return pl, nil
}

// onePerHost enforces the one-process-per-processor constraint: processes
// keep their MCT machine when free, otherwise they move to the fastest
// still-free host.
func onePerHost(machineOf []int, speed []float64) ([]int, error) {
	if len(machineOf) > len(speed) {
		return nil, fmt.Errorf("strategy: %d processes, %d processors", len(machineOf), len(speed))
	}
	used := make([]bool, len(speed))
	out := make([]int, len(machineOf))
	var overflow []int
	for p, m := range machineOf {
		if !used[m] {
			used[m] = true
			out[p] = m
			continue
		}
		overflow = append(overflow, p)
	}
	for _, p := range overflow {
		best := -1
		for h := range speed {
			if used[h] {
				continue
			}
			if best < 0 || speed[h] > speed[best] {
				best = h
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("strategy: ran out of processors")
		}
		used[best] = true
		out[p] = best
	}
	return out, nil
}
