package strategy

import (
	"math/rand"
	"testing"

	"commsched/internal/distance"
	"commsched/internal/procsched"
	"commsched/internal/routing"
	"commsched/internal/topology"
)

// hetSystem builds an 8-switch NOW where the first 16 hosts are 4x faster
// than the rest.
func hetSystem(t *testing.T) *System {
	t.Helper()
	net, err := topology.RandomIrregular(8, 3, rand.New(rand.NewSource(5)), topology.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := routing.NewUpDown(net, -1)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := distance.Compute(net, rt)
	if err != nil {
		t.Fatal(err)
	}
	speed := make([]float64, net.Hosts())
	for h := range speed {
		if h < 16 {
			speed[h] = 4
		} else {
			speed[h] = 1
		}
	}
	sys, err := NewSystem(net, rt, tab, speed)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestNewSystemValidation(t *testing.T) {
	net, err := topology.RandomIrregular(8, 3, rand.New(rand.NewSource(5)), topology.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := routing.NewUpDown(net, -1)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := distance.Compute(net, rt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSystem(net, rt, tab, []float64{1}); err == nil {
		t.Fatal("wrong speed count accepted")
	}
	bad := make([]float64, net.Hosts())
	if _, err := NewSystem(net, rt, tab, bad); err == nil {
		t.Fatal("zero speed accepted")
	}
	// nil speeds = homogeneous.
	sys, err := NewSystem(net, rt, tab, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sys.HostSpeed[0] != 1 {
		t.Fatal("homogeneous default not applied")
	}
}

func TestAnalyzeBottleneckDirections(t *testing.T) {
	sys := hetSystem(t)
	// Compute-heavy, communication-light.
	cpu := []Application{{Name: "hpc", Processes: 24, CPUDemand: 10, CommIntensity: 0.001}}
	an, err := sys.Analyze(cpu)
	if err != nil {
		t.Fatal(err)
	}
	if an.Bottleneck != CPUBound {
		t.Fatalf("compute-heavy mix classified %v (cpu=%.3f net=%.3f)",
			an.Bottleneck, an.CPUUtilization, an.NetworkUtilization)
	}
	// Streaming-heavy, compute-light (the paper's video-on-demand case).
	net := []Application{{Name: "vod", Processes: 24, CPUDemand: 0.01, CommIntensity: 0.5}}
	an, err = sys.Analyze(net)
	if err != nil {
		t.Fatal(err)
	}
	if an.Bottleneck != NetworkBound {
		t.Fatalf("streaming mix classified %v (cpu=%.3f net=%.3f)",
			an.Bottleneck, an.CPUUtilization, an.NetworkUtilization)
	}
	if CPUBound.String() == NetworkBound.String() {
		t.Fatal("bottleneck strings collide")
	}
}

func TestAnalyzeValidation(t *testing.T) {
	sys := hetSystem(t)
	if _, err := sys.Analyze(nil); err == nil {
		t.Fatal("empty mix accepted")
	}
	if _, err := sys.Analyze([]Application{{Processes: 0}}); err == nil {
		t.Fatal("zero processes accepted")
	}
	if _, err := sys.Analyze([]Application{{Processes: 5, CPUDemand: -1}}); err == nil {
		t.Fatal("negative demand accepted")
	}
	if _, err := sys.Analyze([]Application{{Processes: 1000, CPUDemand: 1}}); err == nil {
		t.Fatal("over-capacity mix accepted")
	}
}

func TestScheduleNetworkBoundUsesCommAware(t *testing.T) {
	sys := hetSystem(t)
	apps := []Application{
		{Name: "vod1", Processes: 12, CPUDemand: 0.01, CommIntensity: 0.5},
		{Name: "vod2", Processes: 12, CPUDemand: 0.01, CommIntensity: 0.5},
	}
	pl, err := sys.Schedule(apps, 1)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Scheduler != "communication-aware-tabu" {
		t.Fatalf("scheduler = %q", pl.Scheduler)
	}
	if len(pl.HostOf) != 24 || len(pl.ClusterOf) != 24 {
		t.Fatal("placement incomplete")
	}
	// Its communication objective must beat a random placement's.
	pr, err := procsched.NewProblem(sys.Net, sys.Table, pl.ClusterOf, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, err := pr.NewAssignment(pl.HostOf)
	if err != nil {
		t.Fatal(err)
	}
	rnd := pr.RandomAssignment(rand.New(rand.NewSource(9)))
	if pr.Cost(a) >= pr.Cost(rnd) {
		t.Fatalf("comm-aware placement cost %v not below random %v", pr.Cost(a), pr.Cost(rnd))
	}
}

func TestScheduleCPUBoundUsesFastHosts(t *testing.T) {
	sys := hetSystem(t)
	apps := []Application{{Name: "hpc", Processes: 16, CPUDemand: 10, CommIntensity: 0.0001}}
	pl, err := sys.Schedule(apps, 1)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Scheduler != "computation-aware-mct" {
		t.Fatalf("scheduler = %q", pl.Scheduler)
	}
	// 16 processes, 16 fast hosts: every process must land on a fast host.
	seen := map[int]bool{}
	for _, h := range pl.HostOf {
		if h >= 16 {
			t.Fatalf("process placed on slow host %d despite free fast hosts", h)
		}
		if seen[h] {
			t.Fatalf("host %d assigned twice", h)
		}
		seen[h] = true
	}
}

func TestScheduleOnePerHostOverflow(t *testing.T) {
	sys := hetSystem(t)
	// More processes than fast hosts: placement must still be one per
	// processor, spilling to slow hosts.
	apps := []Application{{Name: "hpc", Processes: 30, CPUDemand: 10, CommIntensity: 0}}
	pl, err := sys.Schedule(apps, 1)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, h := range pl.HostOf {
		if seen[h] {
			t.Fatalf("host %d assigned twice", h)
		}
		seen[h] = true
	}
}
