// Package runstate is the durable-execution layer: it makes the long
// pipelines of the reproduction (figure sweeps, search restarts,
// resilience trials) crash-safe and resumable. Every completed unit of
// work — one sweep point, one scheduling run, one resilience row — is
// recorded in a write-ahead journal as soon as it finishes; a run
// restarted with the same checkpoint directory replays the journal and
// re-executes only the missing units. Because every unit in this module
// is a pure function of its key (seeds, topology hash, configuration),
// a resumed run is bit-identical to an uninterrupted one.
//
// On-disk layout of a checkpoint directory:
//
//	identity.json  — schema version + run identity (command, scale,
//	                 seeds, topology SHA-256 hashes), written once via
//	                 atomic rename; a resume against a directory whose
//	                 identity differs is refused with ErrIdentityMismatch.
//	journal.jsonl  — the write-ahead log: one JSON object per completed
//	                 unit, appended and fsync'd per record. A torn final
//	                 line (crash mid-write) is tolerated: it is skipped
//	                 and counted, never fatal.
//	snapshot.json  — a compaction of the journal, written via
//	                 tmp-file + fsync + atomic rename on Close; after a
//	                 successful snapshot the journal is truncated.
//
// Like obs, the package has a process-wide install point (SetStore) with
// a one-atomic-load disabled path, so instrumented loops cost nothing
// when no -resume flag is given.
package runstate

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"commsched/internal/obs"
)

// SchemaVersion is bumped whenever the journal or snapshot format
// changes incompatibly; directories written by another schema are
// refused instead of being misread.
const SchemaVersion = 1

// ErrIdentityMismatch reports a resume attempt against a checkpoint
// directory produced by a run with different identity (other command,
// scale, seeds, or topologies). Results of the two runs are not
// interchangeable, so the resume is refused.
var ErrIdentityMismatch = errors.New("runstate: checkpoint identity mismatch")

// Identity pins a checkpoint directory to one reproducible run: two runs
// may share a directory exactly when their identities are equal. Commands
// build it from their run manifest (seeds, topology hashes) plus the
// effort scale.
type Identity struct {
	// Schema is filled by Open; callers leave it zero.
	Schema int `json:"schema"`
	// Command is the producing binary ("paperfigs", "netsim", ...).
	Command string `json:"command"`
	// Scale is the JSON encoding of the run's simulation scale/effort.
	Scale json.RawMessage `json:"scale,omitempty"`
	// Seeds are the run's canonical seeds.
	Seeds map[string]int64 `json:"seeds,omitempty"`
	// Topologies maps instance names to SHA-256 hashes of their
	// canonical serialization.
	Topologies map[string]string `json:"topologies,omitempty"`
}

// canonical returns the comparison form of an identity: its JSON
// encoding with the schema pinned (Go marshals maps with sorted keys, so
// equal identities encode to equal bytes).
func (id Identity) canonical() ([]byte, error) {
	id.Schema = SchemaVersion
	return json.Marshal(id)
}

// Stats are the store's lifetime counters.
type Stats struct {
	// Replayed counts units loaded from disk at Open — work a resumed
	// run does not repeat.
	Replayed int64 `json:"replayed"`
	// Recorded counts units journaled by this process.
	Recorded int64 `json:"recorded"`
	// Hits counts lookups answered from the store.
	Hits int64 `json:"hits"`
	// SkippedPartial counts torn or corrupt journal lines tolerated at
	// Open (at most the crash-interrupted final append on a healthy
	// filesystem).
	SkippedPartial int64 `json:"skipped_partial"`
}

// Store is one open checkpoint directory. All methods are safe for
// concurrent use; sweep workers record units in parallel.
type Store struct {
	dir string

	mu      sync.Mutex
	units   map[string]json.RawMessage
	journal *os.File
	err     error // first write error, surfaced at Close

	replayed       atomic.Int64
	recorded       atomic.Int64
	hits           atomic.Int64
	skippedPartial atomic.Int64
}

type journalLine struct {
	V       int             `json:"v"`
	Key     string          `json:"key"`
	Payload json.RawMessage `json:"payload"`
}

type snapshotFile struct {
	Schema int                        `json:"schema"`
	Units  map[string]json.RawMessage `json:"units"`
}

// Open creates (or resumes) a checkpoint directory. On a fresh directory
// it writes the identity atomically and starts an empty journal; on an
// existing one it verifies the identity, loads the snapshot, replays the
// journal — tolerating a torn trailing line — and reopens the journal
// for appends. Counters are mirrored into the obs stream so /metrics
// reports checkpoint replay and write activity.
func Open(dir string, id Identity) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("runstate: empty checkpoint directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runstate: creating %s: %w", dir, err)
	}
	want, err := id.canonical()
	if err != nil {
		return nil, fmt.Errorf("runstate: encoding identity: %w", err)
	}
	idPath := filepath.Join(dir, "identity.json")
	if data, err := os.ReadFile(idPath); err == nil {
		var have Identity
		if err := json.Unmarshal(data, &have); err != nil {
			return nil, fmt.Errorf("runstate: %s is not a checkpoint identity: %w", idPath, err)
		}
		got, err := have.canonical()
		if err != nil {
			return nil, err
		}
		if !bytes.Equal(got, want) {
			return nil, fmt.Errorf("%w: %s holds %s, this run is %s",
				ErrIdentityMismatch, dir, summarize(got), summarize(want))
		}
	} else if os.IsNotExist(err) {
		if err := writeFileAtomic(idPath, append(append([]byte{}, want...), '\n')); err != nil {
			return nil, err
		}
	} else {
		return nil, fmt.Errorf("runstate: reading %s: %w", idPath, err)
	}

	s := &Store{dir: dir, units: make(map[string]json.RawMessage)}
	if err := s.loadSnapshot(); err != nil {
		return nil, err
	}
	if err := s.replayJournal(); err != nil {
		return nil, err
	}
	j, err := os.OpenFile(s.journalPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("runstate: opening journal: %w", err)
	}
	s.journal = j
	s.replayed.Store(int64(len(s.units)))

	if obs.Enabled() {
		obs.Event("runstate.replayed", obs.F("value", s.replayed.Load()), obs.F("dir", dir))
		obs.Event("runstate.skipped_partial", obs.F("value", s.skippedPartial.Load()))
		s.emitStatus()
	}
	return s, nil
}

// summarize shortens a canonical identity for error messages.
func summarize(canon []byte) string {
	sum := sha256.Sum256(canon)
	if len(canon) > 96 {
		return fmt.Sprintf("%s… (sha256 %x)", canon[:96], sum[:6])
	}
	return fmt.Sprintf("%s (sha256 %x)", canon, sum[:6])
}

func (s *Store) journalPath() string  { return filepath.Join(s.dir, "journal.jsonl") }
func (s *Store) snapshotPath() string { return filepath.Join(s.dir, "snapshot.json") }

// Dir returns the checkpoint directory path.
func (s *Store) Dir() string { return s.dir }

func (s *Store) loadSnapshot() error {
	data, err := os.ReadFile(s.snapshotPath())
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("runstate: reading snapshot: %w", err)
	}
	var snap snapshotFile
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("runstate: snapshot corrupt (delete %s to restart): %w", s.snapshotPath(), err)
	}
	if snap.Schema != SchemaVersion {
		return fmt.Errorf("runstate: snapshot schema %d, this binary speaks %d", snap.Schema, SchemaVersion)
	}
	for k, v := range snap.Units {
		s.units[k] = v
	}
	return nil
}

// replayJournal loads every well-formed journal line. Lines that do not
// parse — the torn final append of a killed process — are skipped and
// counted, matching the crash-tolerance contract of all JSONL readers in
// this module.
func (s *Store) replayJournal() error {
	f, err := os.Open(s.journalPath())
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("runstate: opening journal: %w", err)
	}
	defer f.Close()
	skipped, err := obs.ScanJSONLines(f, func(line []byte) error {
		var jl journalLine
		if err := json.Unmarshal(line, &jl); err != nil || jl.Key == "" || jl.V != SchemaVersion {
			s.skippedPartial.Add(1)
			return nil
		}
		s.units[jl.Key] = jl.Payload
		return nil
	})
	if err != nil {
		return fmt.Errorf("runstate: replaying journal: %w", err)
	}
	s.skippedPartial.Add(int64(skipped))
	return nil
}

// Lookup fetches a completed unit into out (a pointer). It returns false
// when the unit has not been recorded; decoding failure of a recorded
// unit is treated as absence (the unit is recomputed and re-recorded).
func (s *Store) Lookup(key string, out any) bool {
	s.mu.Lock()
	payload, ok := s.units[key]
	s.mu.Unlock()
	if !ok {
		return false
	}
	if err := json.Unmarshal(payload, out); err != nil {
		return false
	}
	s.hits.Add(1)
	return true
}

// Record journals one completed unit: the line is appended and fsync'd
// before Record returns, so a SIGKILL immediately after never loses the
// unit. Write failures are remembered (first error wins), reported once
// through obs, and surfaced at Close — the run itself keeps going; a
// broken checkpoint disk must not fail otherwise-healthy science.
func (s *Store) Record(key string, payload any) {
	data, err := json.Marshal(payload)
	if err != nil {
		s.fail(fmt.Errorf("runstate: encoding unit %q: %w", key, err))
		return
	}
	line, err := json.Marshal(journalLine{V: SchemaVersion, Key: key, Payload: data})
	if err != nil {
		s.fail(fmt.Errorf("runstate: encoding journal line %q: %w", key, err))
		return
	}
	line = append(line, '\n')
	s.mu.Lock()
	if s.err == nil && s.journal != nil {
		if _, werr := s.journal.Write(line); werr != nil {
			s.failLocked(fmt.Errorf("runstate: journal append: %w", werr))
		} else if serr := s.journal.Sync(); serr != nil {
			s.failLocked(fmt.Errorf("runstate: journal fsync: %w", serr))
		} else {
			s.units[key] = data
		}
	}
	s.mu.Unlock()
	n := s.recorded.Add(1)
	if obs.Enabled() {
		obs.Event("runstate.recorded", obs.F("value", n), obs.F("key", key))
		s.emitStatus()
	}
}

func (s *Store) fail(err error) {
	s.mu.Lock()
	s.failLocked(err)
	s.mu.Unlock()
}

// failLocked records the first store error; callers hold s.mu.
func (s *Store) failLocked(err error) {
	if s.err == nil {
		s.err = err
		obs.Event("runstate.error", obs.F("err", err.Error()))
	}
}

// Stats returns the store's counters.
func (s *Store) Stats() Stats {
	return Stats{
		Replayed:       s.replayed.Load(),
		Recorded:       s.recorded.Load(),
		Hits:           s.hits.Load(),
		SkippedPartial: s.skippedPartial.Load(),
	}
}

// Units returns the number of completed units currently known.
func (s *Store) Units() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.units)
}

// Keys returns the sorted unit keys that start with prefix ("" = all).
// Long-lived services use this to enumerate their journaled records on
// restart; one-shot sweeps never need it.
func (s *Store) Keys(prefix string) []string {
	s.mu.Lock()
	keys := make([]string, 0, len(s.units))
	for k := range s.units {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	s.mu.Unlock()
	sort.Strings(keys)
	return keys
}

// emitStatus mirrors the resumable state into the obs stream; the
// telemetry registry retains the latest one for /runs.
func (s *Store) emitStatus() {
	s.mu.Lock()
	units := len(s.units)
	s.mu.Unlock()
	obs.Event("runstate.status",
		obs.F("dir", s.dir),
		obs.F("units", units),
		obs.F("replayed", s.replayed.Load()),
		obs.F("recorded", s.recorded.Load()),
		obs.F("skipped_partial", s.skippedPartial.Load()))
}

// Snapshot compacts the store: all known units are written to
// snapshot.json via tmp-file + fsync + atomic rename, and on success the
// journal is truncated (its content is now redundant). Crash-safe at
// every point: until the rename lands, the old snapshot + journal pair
// is intact.
func (s *Store) Snapshot() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := snapshotFile{Schema: SchemaVersion, Units: s.units}
	data, err := json.MarshalIndent(snap, "", " ")
	if err != nil {
		return fmt.Errorf("runstate: encoding snapshot: %w", err)
	}
	if err := writeFileAtomic(s.snapshotPath(), append(data, '\n')); err != nil {
		return err
	}
	if s.journal != nil {
		if err := s.journal.Truncate(0); err != nil {
			return fmt.Errorf("runstate: truncating journal after snapshot: %w", err)
		}
		if _, err := s.journal.Seek(0, 0); err != nil {
			return fmt.Errorf("runstate: rewinding journal: %w", err)
		}
	}
	return nil
}

// Close snapshots, releases the journal, emits a final status, and
// returns the first error the store swallowed while running.
func (s *Store) Close() error {
	err := s.Snapshot()
	s.mu.Lock()
	if s.journal != nil {
		if cerr := s.journal.Close(); cerr != nil && err == nil {
			err = cerr
		}
		s.journal = nil
	}
	if s.err != nil && err == nil {
		err = s.err
	}
	s.mu.Unlock()
	if obs.Enabled() {
		s.emitStatus()
	}
	return err
}

// writeFileAtomic writes data to path via tmp file + fsync + rename, so
// readers (and crashes) only ever observe the old or the new content.
func writeFileAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("runstate: creating temp file: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("runstate: writing %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("runstate: fsync %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("runstate: closing %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("runstate: publishing %s: %w", path, err)
	}
	return nil
}

// ---- process-wide install point (mirrors obs.SetSink) ----

var global atomic.Pointer[Store]

// SetStore installs (or, with nil, uninstalls) the process-wide store.
func SetStore(s *Store) {
	if s == nil {
		global.Store(nil)
		return
	}
	global.Store(s)
}

// Current returns the installed store, or nil when durable execution is
// off.
func Current() *Store { return global.Load() }

// Enabled reports whether a store is installed; the disabled path is one
// atomic load.
func Enabled() bool { return global.Load() != nil }

// Lookup consults the installed store; false (cheaply) when none is.
func Lookup(key string, out any) bool {
	s := global.Load()
	if s == nil {
		return false
	}
	return s.Lookup(key, out)
}

// Record journals a unit on the installed store; no-op when none is.
func Record(key string, payload any) {
	if s := global.Load(); s != nil {
		s.Record(key, payload)
	}
}

// KeyHash renders any JSON-encodable value as a short stable hash — the
// building block of unit keys ("the sweep config, whatever its fields").
func KeyHash(v any) string {
	data, err := json.Marshal(v)
	if err != nil {
		// An unencodable key component falls back to a constant that can
		// never collide with a real hash, disabling caching for the unit.
		return "unhashable"
	}
	sum := sha256.Sum256(data)
	return fmt.Sprintf("%x", sum[:8])
}

// ---- unit scope through context ----

type scopeKey struct{}

// WithScope attaches a unit-key scope (e.g. the system + mapping
// fingerprint of a sweep) to the context, so deep loops can build
// self-describing keys without new parameters on every call path.
func WithScope(ctx context.Context, scope string) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, scopeKey{}, scope)
}

// ScopeFrom returns the attached scope, or "" when none (in which case
// checkpointing of scope-keyed units is skipped — an unidentifiable unit
// must never be cached).
func ScopeFrom(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	if s, ok := ctx.Value(scopeKey{}).(string); ok {
		return s
	}
	return ""
}
