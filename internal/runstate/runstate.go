// Package runstate is the durable-execution layer: it makes the long
// pipelines of the reproduction (figure sweeps, search restarts,
// resilience trials) crash-safe and resumable. Every completed unit of
// work — one sweep point, one scheduling run, one resilience row — is
// recorded in a write-ahead journal as soon as it finishes; a run
// restarted with the same checkpoint directory replays the journal and
// re-executes only the missing units. Because every unit in this module
// is a pure function of its key (seeds, topology hash, configuration),
// a resumed run is bit-identical to an uninterrupted one.
//
// On-disk layout of a checkpoint directory:
//
//	identity.json  — schema version + run identity (command, scale,
//	                 seeds, topology SHA-256 hashes), written once via
//	                 atomic rename; a resume against a directory whose
//	                 identity differs is refused with ErrIdentityMismatch.
//	journal.jsonl  — the write-ahead log: one JSON object per completed
//	                 unit, appended and fsync'd per record. A torn final
//	                 line (crash mid-write) is tolerated: it is skipped
//	                 and counted, never fatal.
//	snapshot.json  — a compaction of the journal, written via
//	                 tmp-file + fsync + atomic rename on Close; after a
//	                 successful snapshot the journal is truncated.
//
// Like obs, the package has a process-wide install point (SetStore) with
// a one-atomic-load disabled path, so instrumented loops cost nothing
// when no -resume flag is given.
package runstate

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"commsched/internal/obs"
)

// SchemaVersion is bumped whenever the journal or snapshot format
// changes incompatibly; directories written by another schema are
// refused instead of being misread.
const SchemaVersion = 1

// ErrIdentityMismatch reports a resume attempt against a checkpoint
// directory produced by a run with different identity (other command,
// scale, seeds, or topologies). Results of the two runs are not
// interchangeable, so the resume is refused.
var ErrIdentityMismatch = errors.New("runstate: checkpoint identity mismatch")

// Identity pins a checkpoint directory to one reproducible run: two runs
// may share a directory exactly when their identities are equal. Commands
// build it from their run manifest (seeds, topology hashes) plus the
// effort scale.
type Identity struct {
	// Schema is filled by Open; callers leave it zero.
	Schema int `json:"schema"`
	// Command is the producing binary ("paperfigs", "netsim", ...).
	Command string `json:"command"`
	// Scale is the JSON encoding of the run's simulation scale/effort.
	Scale json.RawMessage `json:"scale,omitempty"`
	// Seeds are the run's canonical seeds.
	Seeds map[string]int64 `json:"seeds,omitempty"`
	// Topologies maps instance names to SHA-256 hashes of their
	// canonical serialization.
	Topologies map[string]string `json:"topologies,omitempty"`
}

// canonical returns the comparison form of an identity: its JSON
// encoding with the schema pinned (Go marshals maps with sorted keys, so
// equal identities encode to equal bytes).
func (id Identity) canonical() ([]byte, error) {
	id.Schema = SchemaVersion
	return json.Marshal(id)
}

// Stats are the store's lifetime counters.
type Stats struct {
	// Replayed counts units loaded from disk at Open — work a resumed
	// run does not repeat.
	Replayed int64 `json:"replayed"`
	// Recorded counts units journaled by this process.
	Recorded int64 `json:"recorded"`
	// Hits counts lookups answered from the store.
	Hits int64 `json:"hits"`
	// SkippedPartial counts torn or corrupt journal lines tolerated at
	// Open (at most the crash-interrupted final append on a healthy
	// filesystem).
	SkippedPartial int64 `json:"skipped_partial"`
	// Conflicts counts keys journaled more than once under distinct
	// fencing tokens — a zombie worker racing its successor, or a
	// speculative duplicate. The highest token wins the merge.
	Conflicts int64 `json:"conflicts"`
	// DeterminismViolations counts conflicting records whose payload
	// bytes differed. Every unit in this module is a pure function of its
	// key, so this gauge is expected to stay zero; anything else is a
	// reproducibility bug worth stopping for.
	DeterminismViolations int64 `json:"determinism_violations"`
}

// Store is one open checkpoint directory. All methods are safe for
// concurrent use; sweep workers record units in parallel.
//
// In shared (distributed) mode — OpenWorker — every worker process
// appends to its own journal-<worker>.jsonl, and the merged view is the
// union of all journals with the highest fencing token winning each key.
// Snapshot compaction is disabled in shared mode: journals stay
// append-only so no worker ever truncates state a sibling still needs.
type Store struct {
	dir      string
	workerID string // "" in solo mode
	shared   bool

	mu      sync.Mutex
	units   map[string]unitEntry
	journal *os.File
	err     error // first write error, surfaced at Close
	// offsets tracks how far each sibling journal has been consumed by
	// Refresh; only complete (newline-terminated) lines are ingested, so
	// a sibling's in-flight append is picked up on a later pass instead
	// of being misread as torn.
	offsets map[string]int64

	replayed       atomic.Int64
	recorded       atomic.Int64
	hits           atomic.Int64
	skippedPartial atomic.Int64
	conflicts      atomic.Int64
	determinism    atomic.Int64
}

// unitEntry is one merged unit: its payload and the fencing token it was
// journaled under (0 for solo-mode records).
type unitEntry struct {
	data  json.RawMessage
	token uint64
}

type journalLine struct {
	V       int             `json:"v"`
	Key     string          `json:"key"`
	Payload json.RawMessage `json:"payload"`
	// Token is the fencing token of the lease (or speculation) the unit
	// was computed under; 0 in solo mode. On merge the highest token
	// wins, so a zombie that lost its lease can never clobber the
	// successor's result.
	Token uint64 `json:"token,omitempty"`
	// Worker is the journaling worker's ID (shared mode only).
	Worker string `json:"worker,omitempty"`
}

type snapshotFile struct {
	Schema int                        `json:"schema"`
	Units  map[string]json.RawMessage `json:"units"`
}

// Open creates (or resumes) a checkpoint directory. On a fresh directory
// it writes the identity atomically and starts an empty journal; on an
// existing one it verifies the identity, loads the snapshot, replays the
// journal — tolerating a torn trailing line — and reopens the journal
// for appends. Counters are mirrored into the obs stream so /metrics
// reports checkpoint replay and write activity.
func Open(dir string, id Identity) (*Store, error) {
	return open(dir, id, "")
}

// OpenWorker opens a checkpoint directory in shared (distributed) mode:
// this process journals to journal-<workerID>.jsonl and the replayed
// view merges every worker's journal, highest fencing token winning each
// key. The identity contract is unchanged — all workers of a run must
// agree on it, which refuses mixed-command or mixed-scale fleets.
func OpenWorker(dir string, id Identity, workerID string) (*Store, error) {
	if workerID == "" {
		return nil, fmt.Errorf("runstate: shared mode needs a worker ID")
	}
	return open(dir, id, workerID)
}

func open(dir string, id Identity, workerID string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("runstate: empty checkpoint directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runstate: creating %s: %w", dir, err)
	}
	want, err := id.canonical()
	if err != nil {
		return nil, fmt.Errorf("runstate: encoding identity: %w", err)
	}
	idPath := filepath.Join(dir, "identity.json")
	if data, err := os.ReadFile(idPath); err == nil {
		var have Identity
		if err := json.Unmarshal(data, &have); err != nil {
			return nil, fmt.Errorf("runstate: %s is not a checkpoint identity: %w", idPath, err)
		}
		got, err := have.canonical()
		if err != nil {
			return nil, err
		}
		if !bytes.Equal(got, want) {
			return nil, fmt.Errorf("%w: %s holds %s, this run is %s",
				ErrIdentityMismatch, dir, summarize(got), summarize(want))
		}
	} else if os.IsNotExist(err) {
		if err := writeFileAtomic(idPath, append(append([]byte{}, want...), '\n')); err != nil {
			return nil, err
		}
	} else {
		return nil, fmt.Errorf("runstate: reading %s: %w", idPath, err)
	}

	s := &Store{
		dir: dir, workerID: workerID, shared: workerID != "",
		units:   make(map[string]unitEntry),
		offsets: make(map[string]int64),
	}
	if err := s.loadSnapshot(); err != nil {
		return nil, err
	}
	if s.shared {
		// A previous incarnation of this worker ID may have been killed
		// mid-append; seal the torn tail with a newline so the reopened
		// journal's next record starts on a fresh line (the sealed
		// garbage line is skipped and counted on every replay).
		if err := sealTornTail(s.journalPath()); err != nil {
			return nil, err
		}
		if err := s.refreshLocked(true); err != nil {
			return nil, err
		}
	} else if err := s.replayJournal(); err != nil {
		return nil, err
	}
	j, err := os.OpenFile(s.journalPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("runstate: opening journal: %w", err)
	}
	s.journal = j
	s.replayed.Store(int64(len(s.units)))

	if obs.Enabled() {
		obs.Event("runstate.replayed", obs.F("value", s.replayed.Load()), obs.F("dir", dir))
		obs.Event("runstate.skipped_partial", obs.F("value", s.skippedPartial.Load()))
		s.emitStatus()
	}
	return s, nil
}

// summarize shortens a canonical identity for error messages.
func summarize(canon []byte) string {
	sum := sha256.Sum256(canon)
	if len(canon) > 96 {
		return fmt.Sprintf("%s… (sha256 %x)", canon[:96], sum[:6])
	}
	return fmt.Sprintf("%s (sha256 %x)", canon, sum[:6])
}

func (s *Store) journalPath() string {
	if s.shared {
		return filepath.Join(s.dir, "journal-"+sanitizeWorker(s.workerID)+".jsonl")
	}
	return filepath.Join(s.dir, "journal.jsonl")
}
func (s *Store) snapshotPath() string { return filepath.Join(s.dir, "snapshot.json") }

// Dir returns the checkpoint directory path.
func (s *Store) Dir() string { return s.dir }

// Worker returns the worker ID ("" in solo mode).
func (s *Store) Worker() string { return s.workerID }

// Shared reports whether the store is in distributed (shared-directory)
// mode.
func (s *Store) Shared() bool { return s.shared }

// sanitizeWorker keeps worker-derived file names flat and portable.
func sanitizeWorker(id string) string {
	var b strings.Builder
	for i := 0; i < len(id); i++ {
		c := id[i]
		if c == '/' || c == '\\' || c == 0 || c == '.' {
			b.WriteByte('_')
			continue
		}
		b.WriteByte(c)
	}
	return b.String()
}

// sealTornTail appends a newline to path when its last byte is not one —
// the torn final append of a SIGKILLed writer — so reopening the file
// with O_APPEND cannot splice a fresh record onto the garbage.
func sealTornTail(path string) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("runstate: sealing journal tail: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return err
	}
	if st.Size() == 0 {
		return nil
	}
	buf := make([]byte, 1)
	if _, err := f.ReadAt(buf, st.Size()-1); err != nil {
		return err
	}
	if buf[0] == '\n' {
		return nil
	}
	if _, err := f.WriteAt([]byte{'\n'}, st.Size()); err != nil {
		return fmt.Errorf("runstate: sealing journal tail: %w", err)
	}
	return f.Sync()
}

func (s *Store) loadSnapshot() error {
	data, err := os.ReadFile(s.snapshotPath())
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("runstate: reading snapshot: %w", err)
	}
	var snap snapshotFile
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("runstate: snapshot corrupt (delete %s to restart): %w", s.snapshotPath(), err)
	}
	if snap.Schema != SchemaVersion {
		return fmt.Errorf("runstate: snapshot schema %d, this binary speaks %d", snap.Schema, SchemaVersion)
	}
	for k, v := range snap.Units {
		s.units[k] = unitEntry{data: v}
	}
	return nil
}

// Refresh ingests any new complete lines sibling workers appended to
// their journals since the last call (shared mode; a no-op otherwise).
// The distributed executor calls it before replaying units completed by
// other workers, so their recorded payloads answer the local lookups.
func (s *Store) Refresh() error {
	if !s.shared {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.refreshLocked(false)
}

// refreshLocked scans every journal-*.jsonl (plus the solo journal.jsonl
// a directory may hold from a pre-distributed run) and ingests complete
// lines past the remembered offsets. includeOwn is set for the initial
// replay at Open; afterwards this process's own appends are ingested at
// Record time and its file is skipped.
func (s *Store) refreshLocked(includeOwn bool) error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("runstate: scanning %s: %w", s.dir, err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "journal") || !strings.HasSuffix(name, ".jsonl") {
			continue
		}
		if !includeOwn && filepath.Join(s.dir, name) == s.journalPath() {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := s.refreshFile(name); err != nil {
			return err
		}
	}
	return nil
}

// refreshFile ingests the complete lines of one journal file past its
// remembered offset. A line that fails to parse — the sealed torn tail
// of a killed incarnation — is counted and skipped; an incomplete final
// line (a sibling's append in flight) is left for the next pass.
func (s *Store) refreshFile(name string) error {
	path := filepath.Join(s.dir, name)
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("runstate: opening %s: %w", name, err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return err
	}
	off := s.offsets[name]
	if st.Size() <= off {
		return nil
	}
	buf := make([]byte, st.Size()-off)
	if _, err := f.ReadAt(buf, off); err != nil && err != io.EOF {
		return fmt.Errorf("runstate: reading %s: %w", name, err)
	}
	last := bytes.LastIndexByte(buf, '\n')
	if last < 0 {
		return nil // only an in-flight partial line so far
	}
	complete := buf[:last+1]
	s.offsets[name] = off + int64(last+1)
	for len(complete) > 0 {
		nl := bytes.IndexByte(complete, '\n')
		line := complete[:nl]
		complete = complete[nl+1:]
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var jl journalLine
		if err := json.Unmarshal(line, &jl); err != nil || jl.Key == "" || jl.V != SchemaVersion {
			s.skippedPartial.Add(1)
			continue
		}
		s.ingestLocked(jl.Key, jl.Payload, jl.Token)
	}
	return nil
}

// ingestLocked merges one journaled record into the unit map under the
// fencing rule: the highest token wins, duplicates count as conflicts,
// and byte-diverging duplicates count as determinism violations (every
// unit is a pure function of its key, so divergence is a bug surfaced
// loudly, never silently resolved).
func (s *Store) ingestLocked(key string, data json.RawMessage, token uint64) {
	old, ok := s.units[key]
	if !ok {
		s.units[key] = unitEntry{data: data, token: token}
		return
	}
	if token == old.token {
		if !bytes.Equal(data, old.data) {
			s.determinism.Add(1)
			obs.Event("runstate.determinism_violation", obs.F("value", s.determinism.Load()), obs.F("key", key))
		}
		if token == 0 {
			// Tokenless re-record (solo mode refreshing a stale unit):
			// last write wins, the historical behavior. Fenced tokens are
			// globally unique, so an equal nonzero token is a re-read of
			// the same line and keeps the first copy.
			s.units[key] = unitEntry{data: data, token: token}
		}
		return
	}
	s.conflicts.Add(1)
	if !bytes.Equal(data, old.data) {
		s.determinism.Add(1)
		obs.Event("runstate.determinism_violation", obs.F("value", s.determinism.Load()), obs.F("key", key))
	}
	if token > old.token {
		s.units[key] = unitEntry{data: data, token: token}
	}
}

// replayJournal loads every well-formed journal line. Lines that do not
// parse — the torn final append of a killed process — are skipped and
// counted, matching the crash-tolerance contract of all JSONL readers in
// this module.
func (s *Store) replayJournal() error {
	f, err := os.Open(s.journalPath())
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("runstate: opening journal: %w", err)
	}
	defer f.Close()
	skipped, err := obs.ScanJSONLines(f, func(line []byte) error {
		var jl journalLine
		if err := json.Unmarshal(line, &jl); err != nil || jl.Key == "" || jl.V != SchemaVersion {
			s.skippedPartial.Add(1)
			return nil
		}
		s.ingestLocked(jl.Key, jl.Payload, jl.Token)
		return nil
	})
	if err != nil {
		return fmt.Errorf("runstate: replaying journal: %w", err)
	}
	s.skippedPartial.Add(int64(skipped))
	return nil
}

// Lookup fetches a completed unit into out (a pointer). It returns false
// when the unit has not been recorded; decoding failure of a recorded
// unit is treated as absence (the unit is recomputed and re-recorded).
func (s *Store) Lookup(key string, out any) bool {
	s.mu.Lock()
	entry, ok := s.units[key]
	s.mu.Unlock()
	if !ok {
		return false
	}
	if err := json.Unmarshal(entry.data, out); err != nil {
		return false
	}
	s.hits.Add(1)
	return true
}

// Record journals one completed unit: the line is appended and fsync'd
// before Record returns, so a SIGKILL immediately after never loses the
// unit. Write failures are remembered (first error wins), reported once
// through obs, and surfaced at Close — the run itself keeps going; a
// broken checkpoint disk must not fail otherwise-healthy science.
func (s *Store) Record(key string, payload any) {
	s.RecordToken(key, payload, 0)
}

// RecordToken is Record under a fencing token: the journal line carries
// the token of the lease (or speculation) the unit was computed under,
// and the merge keeps the highest token per key. Distributed executions
// thread their token through the context (WithToken), so instrumented
// loops never see the difference.
func (s *Store) RecordToken(key string, payload any, token uint64) {
	data, err := json.Marshal(payload)
	if err != nil {
		s.fail(fmt.Errorf("runstate: encoding unit %q: %w", key, err))
		return
	}
	line, err := json.Marshal(journalLine{V: SchemaVersion, Key: key, Payload: data, Token: token, Worker: s.workerID})
	if err != nil {
		s.fail(fmt.Errorf("runstate: encoding journal line %q: %w", key, err))
		return
	}
	line = append(line, '\n')
	s.mu.Lock()
	if s.err == nil && s.journal != nil {
		if _, werr := s.journal.Write(line); werr != nil {
			s.failLocked(fmt.Errorf("runstate: journal append: %w", werr))
		} else if serr := s.journal.Sync(); serr != nil {
			s.failLocked(fmt.Errorf("runstate: journal fsync: %w", serr))
		} else {
			s.ingestLocked(key, data, token)
		}
	}
	s.mu.Unlock()
	n := s.recorded.Add(1)
	if obs.Enabled() {
		obs.Event("runstate.recorded", obs.F("value", n), obs.F("key", key))
		s.emitStatus()
	}
}

func (s *Store) fail(err error) {
	s.mu.Lock()
	s.failLocked(err)
	s.mu.Unlock()
}

// failLocked records the first store error; callers hold s.mu.
func (s *Store) failLocked(err error) {
	if s.err == nil {
		s.err = err
		obs.Event("runstate.error", obs.F("err", err.Error()))
	}
}

// Stats returns the store's counters.
func (s *Store) Stats() Stats {
	return Stats{
		Replayed:              s.replayed.Load(),
		Recorded:              s.recorded.Load(),
		Hits:                  s.hits.Load(),
		SkippedPartial:        s.skippedPartial.Load(),
		Conflicts:             s.conflicts.Load(),
		DeterminismViolations: s.determinism.Load(),
	}
}

// Units returns the number of completed units currently known.
func (s *Store) Units() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.units)
}

// Keys returns the sorted unit keys that start with prefix ("" = all).
// Long-lived services use this to enumerate their journaled records on
// restart; one-shot sweeps never need it.
func (s *Store) Keys(prefix string) []string {
	s.mu.Lock()
	keys := make([]string, 0, len(s.units))
	for k := range s.units {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	s.mu.Unlock()
	sort.Strings(keys)
	return keys
}

// emitStatus mirrors the resumable state into the obs stream; the
// telemetry registry retains the latest one for /runs.
func (s *Store) emitStatus() {
	s.mu.Lock()
	units := len(s.units)
	s.mu.Unlock()
	obs.Event("runstate.status",
		obs.F("dir", s.dir),
		obs.F("worker", s.workerID),
		obs.F("units", units),
		obs.F("replayed", s.replayed.Load()),
		obs.F("recorded", s.recorded.Load()),
		obs.F("hits", s.hits.Load()),
		obs.F("skipped_partial", s.skippedPartial.Load()),
		obs.F("conflicts", s.conflicts.Load()),
		obs.F("determinism_violations", s.determinism.Load()))
}

// Snapshot compacts the store: all known units are written to
// snapshot.json via tmp-file + fsync + atomic rename, and on success the
// journal is truncated (its content is now redundant). Crash-safe at
// every point: until the rename lands, the old snapshot + journal pair
// is intact.
func (s *Store) Snapshot() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.shared {
		// Shared directories stay append-only: a worker compacting "its"
		// view would truncate nothing it owns exclusively and could race
		// every sibling's replay. Journals are merged at read time instead.
		return nil
	}
	units := make(map[string]json.RawMessage, len(s.units))
	for k, v := range s.units {
		units[k] = v.data
	}
	snap := snapshotFile{Schema: SchemaVersion, Units: units}
	data, err := json.MarshalIndent(snap, "", " ")
	if err != nil {
		return fmt.Errorf("runstate: encoding snapshot: %w", err)
	}
	if err := writeFileAtomic(s.snapshotPath(), append(data, '\n')); err != nil {
		return err
	}
	if s.journal != nil {
		if err := s.journal.Truncate(0); err != nil {
			return fmt.Errorf("runstate: truncating journal after snapshot: %w", err)
		}
		if _, err := s.journal.Seek(0, 0); err != nil {
			return fmt.Errorf("runstate: rewinding journal: %w", err)
		}
	}
	return nil
}

// Close snapshots, releases the journal, emits a final status, and
// returns the first error the store swallowed while running.
func (s *Store) Close() error {
	err := s.Snapshot()
	s.mu.Lock()
	if s.journal != nil {
		if cerr := s.journal.Close(); cerr != nil && err == nil {
			err = cerr
		}
		s.journal = nil
	}
	if s.err != nil && err == nil {
		err = s.err
	}
	s.mu.Unlock()
	if obs.Enabled() {
		s.emitStatus()
	}
	return err
}

// writeFileAtomic writes data to path via tmp file + fsync + rename, so
// readers (and crashes) only ever observe the old or the new content.
func writeFileAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("runstate: creating temp file: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("runstate: writing %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("runstate: fsync %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("runstate: closing %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("runstate: publishing %s: %w", path, err)
	}
	return nil
}

// ---- process-wide install point (mirrors obs.SetSink) ----

var global atomic.Pointer[Store]

// SetStore installs (or, with nil, uninstalls) the process-wide store.
func SetStore(s *Store) {
	if s == nil {
		global.Store(nil)
		return
	}
	global.Store(s)
}

// Current returns the installed store, or nil when durable execution is
// off.
func Current() *Store { return global.Load() }

// Enabled reports whether a store is installed; the disabled path is one
// atomic load.
func Enabled() bool { return global.Load() != nil }

// Lookup consults the installed store; false (cheaply) when none is.
func Lookup(key string, out any) bool {
	s := global.Load()
	if s == nil {
		return false
	}
	return s.Lookup(key, out)
}

// Record journals a unit on the installed store; no-op when none is.
func Record(key string, payload any) {
	if s := global.Load(); s != nil {
		s.Record(key, payload)
	}
}

// RecordCtx journals a unit under the fencing token carried by the
// context (WithToken). Instrumented loops call this form so a unit
// computed inside a distributed lease (or a speculative duplicate) is
// journaled under the token that authorized it; outside distributed
// execution the token is 0 and the behavior is exactly Record.
func RecordCtx(ctx context.Context, key string, payload any) {
	if s := global.Load(); s != nil {
		s.RecordToken(key, payload, TokenFrom(ctx))
	}
}

// Refresh ingests sibling workers' new journal records on the installed
// store (shared mode; no-op otherwise or when no store is installed).
func Refresh() error {
	if s := global.Load(); s != nil {
		return s.Refresh()
	}
	return nil
}

// KeyHash renders any JSON-encodable value as a short stable hash — the
// building block of unit keys ("the sweep config, whatever its fields").
func KeyHash(v any) string {
	data, err := json.Marshal(v)
	if err != nil {
		// An unencodable key component falls back to a constant that can
		// never collide with a real hash, disabling caching for the unit.
		return "unhashable"
	}
	sum := sha256.Sum256(data)
	return fmt.Sprintf("%x", sum[:8])
}

// ---- unit scope through context ----

type scopeKey struct{}

// WithScope attaches a unit-key scope (e.g. the system + mapping
// fingerprint of a sweep) to the context, so deep loops can build
// self-describing keys without new parameters on every call path.
func WithScope(ctx context.Context, scope string) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, scopeKey{}, scope)
}

// ScopeFrom returns the attached scope, or "" when none (in which case
// checkpointing of scope-keyed units is skipped — an unidentifiable unit
// must never be cached).
func ScopeFrom(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	if s, ok := ctx.Value(scopeKey{}).(string); ok {
		return s
	}
	return ""
}

type tokenKey struct{}

// WithToken attaches a fencing token to the context. The distributed
// executor wraps each leased (or speculative) unit's context with its
// token, so every RecordCtx inside the unit — however deep — journals
// under the token that authorized the work.
func WithToken(ctx context.Context, token uint64) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, tokenKey{}, token)
}

// TokenFrom returns the attached fencing token (0 when none — solo
// execution).
func TokenFrom(ctx context.Context) uint64 {
	if ctx == nil {
		return 0
	}
	if t, ok := ctx.Value(tokenKey{}).(uint64); ok {
		return t
	}
	return 0
}
