package runstate

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func sharedIdentity() Identity {
	return Identity{Command: "shared-test", Seeds: map[string]int64{"s": 7}}
}

func openWorkerT(t *testing.T, dir, worker string) *Store {
	t.Helper()
	st, err := OpenWorker(dir, sharedIdentity(), worker)
	if err != nil {
		t.Fatalf("OpenWorker(%s): %v", worker, err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func TestSharedModeMergesSiblingJournals(t *testing.T) {
	dir := t.TempDir()
	a := openWorkerT(t, dir, "a")
	b := openWorkerT(t, dir, "b")
	a.RecordToken("unit/0", "from-a", 1)
	b.RecordToken("unit/1", "from-b", 2)

	// Each worker sees only its own record until it refreshes.
	var v string
	if a.Lookup("unit/1", &v) {
		t.Fatal("a saw b's record before Refresh")
	}
	if err := a.Refresh(); err != nil {
		t.Fatal(err)
	}
	if !a.Lookup("unit/1", &v) || v != "from-b" {
		t.Fatalf("a after refresh: unit/1 = %q, want from-b", v)
	}
	if err := b.Refresh(); err != nil {
		t.Fatal(err)
	}
	if !b.Lookup("unit/0", &v) || v != "from-a" {
		t.Fatalf("b after refresh: unit/0 = %q, want from-a", v)
	}

	// A third worker joining late replays the union at Open.
	c := openWorkerT(t, dir, "c")
	if c.Units() != 2 {
		t.Fatalf("late joiner sees %d units, want 2", c.Units())
	}
}

func TestSharedModeHighestTokenWins(t *testing.T) {
	dir := t.TempDir()
	a := openWorkerT(t, dir, "a")
	b := openWorkerT(t, dir, "b")

	// Identical payloads under distinct tokens: the normal zombie/successor
	// race. A conflict is counted, no determinism violation, highest token
	// retained.
	a.RecordToken("unit/0", 42, 3)
	b.RecordToken("unit/0", 42, 9)
	if err := b.Refresh(); err != nil {
		t.Fatal(err)
	}
	if got := b.Stats().Conflicts; got != 1 {
		t.Fatalf("conflicts = %d, want 1", got)
	}
	if got := b.Stats().DeterminismViolations; got != 0 {
		t.Fatalf("determinism violations = %d, want 0", got)
	}

	// The merge is order-independent: a ingests b's higher token after its
	// own and must keep b's copy; re-reading the same lines changes nothing.
	if err := a.Refresh(); err != nil {
		t.Fatal(err)
	}
	if err := a.Refresh(); err != nil {
		t.Fatal(err)
	}
	if got := a.Stats().Conflicts; got != 1 {
		t.Fatalf("a conflicts = %d, want 1 (idempotent refresh)", got)
	}

	// A lower token arriving later must NOT regress the winner.
	c := openWorkerT(t, dir, "c")
	c.RecordToken("unit/1", "new", 20)
	c.RecordToken("unit/1", "old", 10) // zombie journaling after the successor
	var v string
	if !c.Lookup("unit/1", &v) || v != "new" {
		t.Fatalf("unit/1 = %q, want token-20 record to win", v)
	}
	if got := c.Stats().DeterminismViolations; got == 0 {
		t.Fatal("byte-diverging conflict not counted as determinism violation")
	}
}

func TestSharedModeTokenZeroKeepsLastWins(t *testing.T) {
	dir := t.TempDir()
	a := openWorkerT(t, dir, "a")
	a.RecordToken("unit/0", "first", 0)
	a.RecordToken("unit/0", "second", 0)
	var v string
	if !a.Lookup("unit/0", &v) || v != "second" {
		t.Fatalf("tokenless re-record: unit/0 = %q, want last-wins %q", v, "second")
	}
}

func TestSharedModeSealsOwnTornTail(t *testing.T) {
	dir := t.TempDir()
	w := openWorkerT(t, dir, "w1")
	w.RecordToken("unit/0", 1, 1)
	path := filepath.Join(dir, "journal-w1.jsonl")
	w.Close()

	// Simulate a SIGKILL mid-append: a torn, newline-less final line.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"v":1,"key":"unit/1","payl`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// The restarted incarnation seals the tail so siblings stop treating
	// it as an in-flight append, skips it, and keeps the good line.
	w2 := openWorkerT(t, dir, "w1")
	var v int
	if !w2.Lookup("unit/0", &v) || v != 1 {
		t.Fatalf("good line lost after reopen: %v", v)
	}
	if w2.Lookup("unit/1", &v) {
		t.Fatal("torn line resurrected")
	}
	if got := w2.Stats().SkippedPartial; got != 1 {
		t.Fatalf("skipped-partial counter = %d, want 1", got)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 || data[len(data)-1] != '\n' {
		t.Fatal("torn tail not sealed with a newline")
	}

	// A sibling refreshing past the sealed tail skips it too, without
	// stalling on the rest of the file.
	sib := openWorkerT(t, dir, "w2")
	w2.RecordToken("unit/2", 3, 2)
	if err := sib.Refresh(); err != nil {
		t.Fatal(err)
	}
	if !sib.Lookup("unit/2", &v) || v != 3 {
		t.Fatalf("sibling missed post-seal append: %v", v)
	}
}

func TestSharedModeForeignInFlightLineWaits(t *testing.T) {
	dir := t.TempDir()
	a := openWorkerT(t, dir, "a")

	// A sibling's append caught mid-write: complete line + partial line.
	foreign := filepath.Join(dir, "journal-b.jsonl")
	full := `{"v":1,"key":"unit/0","payload":7,"token":4,"worker":"b"}` + "\n"
	if err := os.WriteFile(foreign, []byte(full+`{"v":1,"key":"un`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := a.Refresh(); err != nil {
		t.Fatal(err)
	}
	var v int
	if !a.Lookup("unit/0", &v) || v != 7 {
		t.Fatalf("complete foreign line not ingested: %v", v)
	}
	if got := a.Stats().SkippedPartial; got != 0 {
		t.Fatalf("in-flight partial wrongly counted as torn (%d)", got)
	}

	// The append completes; the next refresh picks up exactly the rest.
	rest := `it/1","payload":8,"token":5,"worker":"b"}` + "\n"
	f, err := os.OpenFile(foreign, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(rest); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := a.Refresh(); err != nil {
		t.Fatal(err)
	}
	if !a.Lookup("unit/1", &v) || v != 8 {
		t.Fatalf("completed line not ingested on second refresh: %v", v)
	}
}

func TestSharedModeDisablesSnapshot(t *testing.T) {
	dir := t.TempDir()
	w := openWorkerT(t, dir, "w1")
	for i := 0; i < 10; i++ {
		w.RecordToken(fmt.Sprintf("unit/%d", i), i, uint64(i+1))
	}
	if err := w.Snapshot(); err != nil {
		t.Fatalf("Snapshot in shared mode: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "snapshot.json")); !os.IsNotExist(err) {
		t.Fatal("shared mode wrote a snapshot; journals must stay authoritative")
	}
}

func TestTokenContextRoundTrip(t *testing.T) {
	ctx := WithToken(context.Background(), 42)
	if got := TokenFrom(ctx); got != 42 {
		t.Fatalf("TokenFrom = %d, want 42", got)
	}
	if got := TokenFrom(context.Background()); got != 0 {
		t.Fatalf("TokenFrom without token = %d, want 0", got)
	}
}
