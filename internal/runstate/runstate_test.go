package runstate

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"commsched/internal/obs"
)

func testIdentity() Identity {
	return Identity{
		Command:    "test",
		Scale:      json.RawMessage(`{"cycles":100}`),
		Seeds:      map[string]int64{"sim": 7, "topology": 2000},
		Topologies: map[string]string{"irregular-16": "abc123"},
	}
}

type point struct {
	Index   int     `json:"index"`
	Rate    float64 `json:"rate"`
	Latency float64 `json:"latency"`
}

func TestRecordReopenReplay(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, testIdentity())
	if err != nil {
		t.Fatal(err)
	}
	want := []point{{0, 0.05, 21.5}, {1, 0.1, 23.75}, {2, 0.15, 31.0625}}
	for i, p := range want {
		s.Record(fmt.Sprintf("sweep/p%d", i), p)
	}
	if st := s.Stats(); st.Recorded != 3 || st.Replayed != 0 {
		t.Fatalf("stats after record: %+v", st)
	}
	// Simulate a crash: drop the store without Close (no snapshot), then
	// reopen and expect every unit back from the journal alone.
	s.mu.Lock()
	s.journal.Close()
	s.journal = nil
	s.mu.Unlock()

	s2, err := Open(dir, testIdentity())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if st := s2.Stats(); st.Replayed != 3 {
		t.Fatalf("replayed = %d, want 3 (stats %+v)", st.Replayed, st)
	}
	for i, p := range want {
		var got point
		if !s2.Lookup(fmt.Sprintf("sweep/p%d", i), &got) {
			t.Fatalf("unit p%d missing after replay", i)
		}
		if got != p {
			t.Fatalf("unit p%d = %+v, want %+v (must be bit-identical)", i, got, p)
		}
	}
	if !s2.Lookup("sweep/p0", &point{}) {
		t.Fatal("second lookup failed")
	}
	if st := s2.Stats(); st.Hits < 4 {
		t.Fatalf("hits = %d, want >= 4", st.Hits)
	}
}

func TestTornTrailingLineTolerated(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, testIdentity())
	if err != nil {
		t.Fatal(err)
	}
	s.Record("a", point{0, 0.05, 20})
	s.Record("b", point{1, 0.10, 30})
	s.mu.Lock()
	s.journal.Close()
	s.journal = nil
	s.mu.Unlock()

	// Simulate a crash mid-append: a truncated JSON fragment with no
	// trailing newline.
	j := filepath.Join(dir, "journal.jsonl")
	f, err := os.OpenFile(j, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"v":1,"key":"c","payload":{"ind`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := Open(dir, testIdentity())
	if err != nil {
		t.Fatalf("torn trailing line must not fail Open: %v", err)
	}
	defer s2.Close()
	st := s2.Stats()
	if st.Replayed != 2 {
		t.Fatalf("replayed = %d, want 2", st.Replayed)
	}
	if st.SkippedPartial != 1 {
		t.Fatalf("skipped_partial = %d, want 1", st.SkippedPartial)
	}
	if s2.Lookup("c", &point{}) {
		t.Fatal("torn unit must not be visible")
	}
	// The torn unit can be recomputed and re-recorded on the resumed run.
	s2.Record("c", point{2, 0.15, 40})
	var got point
	if !s2.Lookup("c", &got) || got.Index != 2 {
		t.Fatalf("re-recorded unit not visible: %+v", got)
	}
}

func TestIdentityMismatchRefused(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, testIdentity())
	if err != nil {
		t.Fatal(err)
	}
	s.Close()

	other := testIdentity()
	other.Seeds["sim"] = 8
	if _, err := Open(dir, other); !errors.Is(err, ErrIdentityMismatch) {
		t.Fatalf("err = %v, want ErrIdentityMismatch", err)
	}

	// Same identity still resumes.
	s2, err := Open(dir, testIdentity())
	if err != nil {
		t.Fatal(err)
	}
	s2.Close()
}

func TestSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, testIdentity())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		s.Record(fmt.Sprintf("u%d", i), point{Index: i})
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Close snapshots and truncates the journal.
	if fi, err := os.Stat(filepath.Join(dir, "journal.jsonl")); err != nil || fi.Size() != 0 {
		t.Fatalf("journal not truncated after snapshot: %v size %d", err, fi.Size())
	}
	data, err := os.ReadFile(filepath.Join(dir, "snapshot.json"))
	if err != nil {
		t.Fatal(err)
	}
	var snap snapshotFile
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Schema != SchemaVersion || len(snap.Units) != 5 {
		t.Fatalf("snapshot = schema %d, %d units", snap.Schema, len(snap.Units))
	}

	// Resume from the snapshot, add more units, crash, resume again:
	// snapshot + journal must merge.
	s2, err := Open(dir, testIdentity())
	if err != nil {
		t.Fatal(err)
	}
	if st := s2.Stats(); st.Replayed != 5 {
		t.Fatalf("replayed from snapshot = %d, want 5", st.Replayed)
	}
	s2.Record("u5", point{Index: 5})
	s2.mu.Lock()
	s2.journal.Close()
	s2.journal = nil
	s2.mu.Unlock()

	s3, err := Open(dir, testIdentity())
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if st := s3.Stats(); st.Replayed != 6 {
		t.Fatalf("replayed from snapshot+journal = %d, want 6", st.Replayed)
	}
}

func TestSchemaVersionRefused(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, testIdentity())
	if err != nil {
		t.Fatal(err)
	}
	s.Record("a", point{})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Forge a future-schema snapshot.
	path := filepath.Join(dir, "snapshot.json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	forged := strings.Replace(string(data), `"schema": 1`, `"schema": 99`, 1)
	if forged == string(data) {
		t.Fatal("test assumes indented snapshot schema field")
	}
	if err := os.WriteFile(path, []byte(forged), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, testIdentity()); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("future schema must be refused, got %v", err)
	}
}

func TestConcurrentRecord(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, testIdentity())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				key := fmt.Sprintf("w%d/u%d", w, i)
				s.Record(key, point{Index: i})
				var got point
				if !s.Lookup(key, &got) {
					t.Errorf("lookup %s failed right after record", key)
				}
			}
		}(w)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, testIdentity())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if st := s2.Stats(); st.Replayed != 200 {
		t.Fatalf("replayed = %d, want 200", st.Replayed)
	}
}

func TestGlobalStoreAndScope(t *testing.T) {
	if Enabled() || Lookup("x", &point{}) {
		t.Fatal("store must start disabled")
	}
	Record("x", point{}) // must be a no-op, not a panic

	dir := t.TempDir()
	s, err := Open(dir, testIdentity())
	if err != nil {
		t.Fatal(err)
	}
	SetStore(s)
	defer SetStore(nil)
	if !Enabled() || Current() != s {
		t.Fatal("SetStore did not install")
	}
	Record("x", point{Index: 9})
	var got point
	if !Lookup("x", &got) || got.Index != 9 {
		t.Fatalf("global lookup = %+v", got)
	}

	ctx := WithScope(context.Background(), "sys=abc/map=def")
	if ScopeFrom(ctx) != "sys=abc/map=def" {
		t.Fatal("scope not round-tripped")
	}
	if ScopeFrom(context.Background()) != "" || ScopeFrom(nil) != "" {
		t.Fatal("missing scope must be empty")
	}
	s.Close()
}

func TestKeyHashStable(t *testing.T) {
	type cfg struct {
		A int
		B float64
	}
	h1 := KeyHash(cfg{1, 0.25})
	h2 := KeyHash(cfg{1, 0.25})
	h3 := KeyHash(cfg{2, 0.25})
	if h1 != h2 {
		t.Fatalf("hash not deterministic: %s vs %s", h1, h2)
	}
	if h1 == h3 {
		t.Fatal("distinct configs must hash differently")
	}
	if KeyHash(func() {}) != "unhashable" {
		t.Fatal("unencodable values must degrade to the unhashable sentinel")
	}
}

func TestObsCountersEmitted(t *testing.T) {
	mem := &obs.Memory{}
	obs.SetSink(mem)
	defer obs.SetSink(nil)

	dir := t.TempDir()
	s, err := Open(dir, testIdentity())
	if err != nil {
		t.Fatal(err)
	}
	s.Record("a", point{})
	s.Close()

	s2, err := Open(dir, testIdentity())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()

	var sawReplay bool
	for _, r := range mem.ByName("runstate.replayed") {
		for _, f := range r.Fields {
			if f.Key == "value" {
				if v, ok := f.Value.(int64); ok && v > 0 {
					sawReplay = true
				}
			}
		}
	}
	if !sawReplay {
		t.Fatal("no runstate.replayed event with positive value on resume")
	}
	if len(mem.ByName("runstate.recorded")) == 0 {
		t.Fatal("no runstate.recorded events")
	}
	if len(mem.ByName("runstate.status")) == 0 {
		t.Fatal("no runstate.status events")
	}
}
