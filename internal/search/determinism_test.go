package search

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"commsched/internal/topology"
)

// Determinism contract of Tabu: for one rng state, the sequential and
// parallel modes must return the exact same Result — not merely a best
// value within tolerance. Both modes pre-draw one seed per restart and
// run every restart fully independently, so scheduling and worker count
// cannot influence the outcome.

// tabuResultsEqual asserts exact field-for-field agreement of two
// results (the trace is exempt: parallel mode rejects RecordTrace).
func tabuResultsEqual(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if a.BestIntraSum != b.BestIntraSum {
		t.Errorf("%s: BestIntraSum %v vs %v", label, a.BestIntraSum, b.BestIntraSum)
	}
	if a.BestF != b.BestF {
		t.Errorf("%s: BestF %v vs %v", label, a.BestF, b.BestF)
	}
	if a.Evaluations != b.Evaluations {
		t.Errorf("%s: Evaluations %d vs %d", label, a.Evaluations, b.Evaluations)
	}
	if a.Iterations != b.Iterations {
		t.Errorf("%s: Iterations %d vs %d", label, a.Iterations, b.Iterations)
	}
	if !a.Best.Canonical().Equal(b.Best.Canonical()) {
		t.Errorf("%s: best partitions differ: %v vs %v", label, a.Best, b.Best)
	}
}

// TestTabuSerialParallelIdentical: same seed, serial vs parallel — the
// whole Result must match exactly on several instances and cluster
// shapes.
func TestTabuSerialParallelIdentical(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			net, err := topology.RandomIrregular(16, 3, rand.New(rand.NewSource(seed)), topology.Config{})
			if err != nil {
				t.Fatal(err)
			}
			e := evalFor(t, net)
			sp := spec(t, 16, 4)

			serial := NewTabu()
			par := NewTabu()
			par.Parallel = true

			rs, err := serial.Search(nil, e, sp, rand.New(rand.NewSource(seed*71)))
			if err != nil {
				t.Fatal(err)
			}
			rp, err := par.Search(nil, e, sp, rand.New(rand.NewSource(seed*71)))
			if err != nil {
				t.Fatal(err)
			}
			tabuResultsEqual(t, "serial vs parallel", rs, rp)

			// Same mode, same seed, run twice: repeatable.
			rs2, err := serial.Search(nil, e, sp, rand.New(rand.NewSource(seed*71)))
			if err != nil {
				t.Fatal(err)
			}
			tabuResultsEqual(t, "serial repeat", rs, rs2)
		})
	}
}

// TestTabuParallelWorkerCountIndependent: the parallel result must not
// depend on how many workers the runtime grants.
func TestTabuParallelWorkerCountIndependent(t *testing.T) {
	net, err := topology.RandomIrregular(16, 3, rand.New(rand.NewSource(3)), topology.Config{})
	if err != nil {
		t.Fatal(err)
	}
	e := evalFor(t, net)
	sp := spec(t, 16, 4)
	par := NewTabu()
	par.Parallel = true

	run := func() *Result {
		r, err := par.Search(nil, e, sp, rand.New(rand.NewSource(17)))
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	base := run()
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	single := run()
	runtime.GOMAXPROCS(old)
	tabuResultsEqual(t, "GOMAXPROCS independence", base, single)
}

// TestTabuObjectivePathMatchesSearch: SearchObjective over the plain
// evaluator must agree exactly with Search (minus the F normalization
// Search adds), in both modes — i.e. the generic-objective entry point
// runs the identical procedure.
func TestTabuObjectivePathMatchesSearch(t *testing.T) {
	net, err := topology.RandomIrregular(16, 3, rand.New(rand.NewSource(11)), topology.Config{})
	if err != nil {
		t.Fatal(err)
	}
	e := evalFor(t, net)
	sp := spec(t, 16, 4)
	for _, parallel := range []bool{false, true} {
		tb := NewTabu()
		tb.Parallel = parallel
		rs, err := tb.Search(nil, e, sp, rand.New(rand.NewSource(23)))
		if err != nil {
			t.Fatal(err)
		}
		ro, err := tb.SearchObjective(nil, e, sp, rand.New(rand.NewSource(23)))
		if err != nil {
			t.Fatal(err)
		}
		label := fmt.Sprintf("objective path (parallel=%v)", parallel)
		if rs.BestIntraSum != ro.BestIntraSum {
			t.Errorf("%s: BestIntraSum %v vs %v", label, rs.BestIntraSum, ro.BestIntraSum)
		}
		if !rs.Best.Canonical().Equal(ro.Best.Canonical()) {
			t.Errorf("%s: best partitions differ", label)
		}
		if rs.Evaluations != ro.Evaluations || rs.Iterations != ro.Iterations {
			t.Errorf("%s: counters differ: %d/%d vs %d/%d",
				label, rs.Evaluations, rs.Iterations, ro.Evaluations, ro.Iterations)
		}
	}
}
