package search

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"commsched/internal/mapping"
	"commsched/internal/obs"
	"commsched/internal/quality"
)

// Genetic is a permutation-encoded genetic algorithm: a chromosome is a
// permutation of the switches; consecutive blocks of the permutation (with
// the spec's cluster sizes) define the partition. Crossover is
// order-preserving (OX1), mutation is a random transposition, selection is
// tournament with elitism.
type Genetic struct {
	// Population is the number of chromosomes.
	Population int
	// Generations is the number of evolution rounds.
	Generations int
	// Elite chromosomes survive unchanged each generation.
	Elite int
	// TournamentK is the tournament size for parent selection.
	TournamentK int
	// MutationRate is the per-child probability of a transposition.
	MutationRate float64
}

// NewGenetic returns a Genetic searcher with a cost budget comparable to
// the other heuristics on the paper's network sizes.
func NewGenetic() *Genetic {
	return &Genetic{Population: 40, Generations: 80, Elite: 4, TournamentK: 3, MutationRate: 0.4}
}

// Name implements Searcher.
func (g *Genetic) Name() string { return "genetic" }

// chromosome is a permutation plus its cached objective value.
type chromosome struct {
	perm []int
	val  float64
}

// Search implements Searcher.
func (g *Genetic) Search(ctx context.Context, e *quality.Evaluator, spec Spec, rng *rand.Rand) (*Result, error) {
	ctx = orBackground(ctx)
	if err := spec.validate(e); err != nil {
		return nil, err
	}
	sp, sctx := obs.StartSpanCtx(ctx, "search.genetic", obs.F("population", g.Population), obs.F("generations", g.Generations))
	ctx = sctx
	res := &Result{}
	n := spec.N()
	pop := make([]chromosome, g.Population)
	for i := range pop {
		pop[i] = chromosome{perm: rng.Perm(n)}
		pop[i].val = g.value(e, spec, pop[i].perm)
		res.Evaluations++
	}
	for gen := 0; gen < g.Generations; gen++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("search: genetic cancelled: %w", err)
		}
		sort.Slice(pop, func(i, j int) bool { return pop[i].val < pop[j].val })
		next := make([]chromosome, 0, g.Population)
		for i := 0; i < g.Elite && i < len(pop); i++ {
			next = append(next, pop[i])
		}
		for len(next) < g.Population {
			a := g.tournament(pop, rng)
			b := g.tournament(pop, rng)
			child := orderCrossover(a.perm, b.perm, rng)
			if rng.Float64() < g.MutationRate {
				i, j := rng.Intn(n), rng.Intn(n)
				child[i], child[j] = child[j], child[i]
			}
			c := chromosome{perm: child, val: g.value(e, spec, child)}
			res.Evaluations++
			next = append(next, c)
		}
		if obs.Enabled() {
			// pop is still sorted from the selection step above.
			obs.EventCtx(ctx, "search.generation",
				obs.F("heuristic", "genetic"),
				obs.F("generation", gen),
				obs.F("best", pop[0].val),
				obs.F("worst", pop[len(pop)-1].val),
				obs.F("evaluations", res.Evaluations))
			obs.Progress("search.genetic", int64(gen+1), int64(g.Generations))
		}
		pop = next
		res.Iterations++
	}
	sort.Slice(pop, func(i, j int) bool { return pop[i].val < pop[j].val })
	best, err := partitionFromPerm(spec, pop[0].perm)
	if err != nil {
		return nil, err
	}
	res.Best = best
	res = finishResult(e, res)
	sp.End(obs.F("best", res.BestIntraSum), obs.F("evaluations", res.Evaluations), obs.F("iterations", res.Iterations))
	return res, nil
}

// tournament picks the best of K random chromosomes.
func (g *Genetic) tournament(pop []chromosome, rng *rand.Rand) chromosome {
	best := pop[rng.Intn(len(pop))]
	for k := 1; k < g.TournamentK; k++ {
		c := pop[rng.Intn(len(pop))]
		if c.val < best.val {
			best = c
		}
	}
	return best
}

// value evaluates a permutation chromosome.
func (g *Genetic) value(e *quality.Evaluator, spec Spec, perm []int) float64 {
	p, err := partitionFromPerm(spec, perm)
	if err != nil {
		// A permutation of the right length always yields a valid
		// partition; this is unreachable.
		panic("search: invalid chromosome: " + err.Error())
	}
	return e.IntraSum(p)
}

// partitionFromPerm maps permutation slots to clusters per the spec sizes.
func partitionFromPerm(spec Spec, perm []int) (*mapping.Partition, error) {
	assign := make([]int, len(perm))
	i := 0
	for c, sz := range spec.Sizes {
		for k := 0; k < sz; k++ {
			assign[perm[i]] = c
			i++
		}
	}
	return mapping.New(assign, spec.M())
}

// orderCrossover implements OX1: copy a random segment from parent a,
// fill the remaining slots with b's genes in b's order.
func orderCrossover(a, b []int, rng *rand.Rand) []int {
	n := len(a)
	lo := rng.Intn(n)
	hi := lo + rng.Intn(n-lo)
	child := make([]int, n)
	used := make([]bool, n)
	for i := range child {
		child[i] = -1
	}
	for i := lo; i <= hi; i++ {
		child[i] = a[i]
		used[a[i]] = true
	}
	pos := 0
	for _, gene := range b {
		if used[gene] {
			continue
		}
		for child[pos] != -1 {
			pos++
		}
		child[pos] = gene
	}
	return child
}
