package search

import (
	"math/rand"
	"testing"

	"commsched/internal/distance"
	"commsched/internal/quality"
	"commsched/internal/routing"
	"commsched/internal/topology"
)

func weightedEval(t *testing.T, weights []float64, topoSeed int64) *quality.WeightedEvaluator {
	t.Helper()
	net, err := topology.RandomIrregular(16, 3, rand.New(rand.NewSource(topoSeed)), topology.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ud, err := routing.NewUpDown(net, -1)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := distance.Compute(net, ud)
	if err != nil {
		t.Fatal(err)
	}
	we, err := quality.NewWeightedEvaluator(tab, weights)
	if err != nil {
		t.Fatal(err)
	}
	return we
}

func TestSearchObjectiveUnitWeightsMatchesPlainSearch(t *testing.T) {
	we := weightedEval(t, []float64{1, 1, 1, 1}, 21)
	sp := spec(t, 16, 4)
	plain, err := NewTabu().Search(nil, we.Base(), sp, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	weighted, err := NewTabu().SearchObjective(nil, we, sp, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if plain.BestIntraSum != weighted.BestIntraSum {
		t.Fatalf("unit-weight objective diverged: %v vs %v", plain.BestIntraSum, weighted.BestIntraSum)
	}
	if !plain.Best.Canonical().Equal(weighted.Best.Canonical()) {
		t.Fatal("unit-weight objective found a different partition")
	}
}

func TestSearchObjectiveFavorsHeavyCluster(t *testing.T) {
	// Cluster 0 carries 100x the traffic; the weighted search must give it
	// an intra cost no worse than what the unweighted search gives it.
	we := weightedEval(t, []float64{100, 1, 1, 1}, 22)
	sp := spec(t, 16, 4)
	plain, err := NewTabu().Search(nil, we.Base(), sp, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	weighted, err := NewTabu().SearchObjective(nil, we, sp, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	heavyPlain := we.Base().ClusterSimilarity(plain.Best, 0)
	heavyWeighted := we.Base().ClusterSimilarity(weighted.Best, 0)
	if heavyWeighted > heavyPlain+1e-9 {
		t.Fatalf("weighted search gave the heavy cluster cost %v, unweighted gave %v",
			heavyWeighted, heavyPlain)
	}
	// And the weighted objective itself must be at least as good as the
	// plain partition scored under the weights.
	if weighted.BestIntraSum > we.IntraSum(plain.Best)+1e-9 {
		t.Fatalf("weighted search (%v) lost to the unweighted partition under its own objective (%v)",
			weighted.BestIntraSum, we.IntraSum(plain.Best))
	}
}

func TestSearchObjectiveValidation(t *testing.T) {
	we := weightedEval(t, []float64{1, 1, 1, 1}, 23)
	if _, err := NewTabu().SearchObjective(nil, we, Spec{}, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("empty spec accepted")
	}
	if _, err := NewTabu().SearchObjective(nil, we, Spec{Sizes: []int{4, 0}}, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("zero-size cluster accepted")
	}
}
