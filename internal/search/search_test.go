package search

import (
	"math"
	"math/rand"
	"testing"

	"commsched/internal/distance"
	"commsched/internal/mapping"
	"commsched/internal/quality"
	"commsched/internal/routing"
	"commsched/internal/topology"
)

// blockTable builds an n-switch table with k perfect blocks of size n/k:
// distance eps inside a block, 10 across blocks. The optimal partition
// into k clusters is obviously the blocks.
func blockTable(t *testing.T, n, k int) *distance.Table {
	t.Helper()
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
	}
	per := n / k
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if i/per == j/per {
				d[i][j] = 0.5
			} else {
				d[i][j] = 10
			}
		}
	}
	tab, err := distance.FromMatrix(d)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

// blockOptimal is the IntraSum of the block partition of blockTable.
func blockOptimal(n, k int) float64 {
	per := n / k
	pairs := k * per * (per - 1) / 2
	return float64(pairs) * 0.25
}

func evalFor(t *testing.T, net *topology.Network) *quality.Evaluator {
	t.Helper()
	ud, err := routing.NewUpDown(net, -1)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := distance.Compute(net, ud)
	if err != nil {
		t.Fatal(err)
	}
	return quality.NewEvaluator(tab)
}

func spec(t *testing.T, n, m int) Spec {
	t.Helper()
	s, err := BalancedSpec(n, m)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBalancedSpec(t *testing.T) {
	s := spec(t, 16, 4)
	if s.N() != 16 || s.M() != 4 {
		t.Fatalf("N=%d M=%d", s.N(), s.M())
	}
	if _, err := BalancedSpec(10, 4); err == nil {
		t.Fatal("indivisible spec accepted")
	}
	if _, err := BalancedSpec(0, 0); err == nil {
		t.Fatal("empty spec accepted")
	}
}

func TestSpecValidate(t *testing.T) {
	e := quality.NewEvaluator(blockTable(t, 8, 2))
	if err := (Spec{Sizes: []int{4, 4}}).validate(e); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	if err := (Spec{}).validate(e); err == nil {
		t.Fatal("empty spec accepted")
	}
	if err := (Spec{Sizes: []int{4, 0, 4}}).validate(e); err == nil {
		t.Fatal("zero-size cluster accepted")
	}
	if err := (Spec{Sizes: []int{4, 3}}).validate(e); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

// allSearchers returns every heuristic with its default parameters.
func allSearchers() []Searcher {
	return []Searcher{
		NewTabu(), NewGreedy(), NewAnneal(), NewGenetic(), NewGSA(),
		NewRandomSample(), NewExhaustive(), NewAStar(),
	}
}

func TestAllSearchersFindBlockOptimumSmall(t *testing.T) {
	// 8 switches, 2 blocks — tiny enough that every heuristic except the
	// single random draw must find the planted optimum.
	tab := blockTable(t, 8, 2)
	e := quality.NewEvaluator(tab)
	sp := spec(t, 8, 2)
	want := blockOptimal(8, 2)
	for _, s := range allSearchers() {
		if s.Name() == "random" {
			continue
		}
		res, err := s.Search(nil, e, sp, rand.New(rand.NewSource(1)))
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if math.Abs(res.BestIntraSum-want) > 1e-9 {
			t.Errorf("%s: best = %v, want planted optimum %v", s.Name(), res.BestIntraSum, want)
		}
		// The best partition must group the blocks.
		p := res.Best.Canonical()
		for s2 := 0; s2 < 8; s2++ {
			if p.Cluster(s2) != s2/4 {
				t.Errorf("%s: partition %v does not match planted blocks", s.Name(), res.Best)
				break
			}
		}
	}
}

func TestSearchersRejectBadSpec(t *testing.T) {
	e := quality.NewEvaluator(blockTable(t, 8, 2))
	bad := Spec{Sizes: []int{3, 3}}
	for _, s := range allSearchers() {
		if _, err := s.Search(nil, e, bad, rand.New(rand.NewSource(1))); err == nil {
			t.Errorf("%s accepted a mismatched spec", s.Name())
		}
	}
}

func TestSearchersDeterministicPerSeed(t *testing.T) {
	e := quality.NewEvaluator(blockTable(t, 12, 3))
	sp := spec(t, 12, 3)
	for _, s := range allSearchers() {
		r1, err := s.Search(nil, e, sp, rand.New(rand.NewSource(7)))
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		r2, err := s.Search(nil, e, sp, rand.New(rand.NewSource(7)))
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if r1.BestIntraSum != r2.BestIntraSum {
			t.Errorf("%s: same seed gave %v then %v", s.Name(), r1.BestIntraSum, r2.BestIntraSum)
		}
		if !r1.Best.Canonical().Equal(r2.Best.Canonical()) {
			t.Errorf("%s: same seed gave different partitions", s.Name())
		}
	}
}

func TestTabuMatchesExhaustiveOnRealTopology(t *testing.T) {
	// The paper's optimality check: on networks up to 16 switches, the
	// Tabu minimum equals the exhaustive minimum. 12 switches keeps the
	// test fast (12!/(4!³·3!) = 5775 partitions).
	net, err := topology.RandomIrregular(12, 3, rand.New(rand.NewSource(77)), topology.Config{})
	if err != nil {
		t.Fatal(err)
	}
	e := evalFor(t, net)
	sp := spec(t, 12, 3)
	ex, err := NewExhaustive().Search(nil, e, sp, nil)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := NewTabu().Search(nil, e, sp, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tb.BestIntraSum-ex.BestIntraSum) > 1e-9 {
		t.Fatalf("tabu best %v != exhaustive optimum %v", tb.BestIntraSum, ex.BestIntraSum)
	}
}

func TestTabuTraceRecordsRestarts(t *testing.T) {
	e := quality.NewEvaluator(blockTable(t, 12, 3))
	sp := spec(t, 12, 3)
	tb := NewTabu()
	tb.RecordTrace = true
	res, err := tb.Search(nil, e, sp, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) == 0 {
		t.Fatal("trace empty with RecordTrace")
	}
	// Figure 1's shape: the trace spans all restarts and iterations are
	// nondecreasing.
	lastRestart, lastIter := -1, -1
	maxRestart := 0
	for _, tp := range res.Trace {
		if tp.Iteration < lastIter {
			t.Fatal("trace iterations not monotonic")
		}
		if tp.Restart < lastRestart {
			t.Fatal("trace restarts not monotonic")
		}
		lastIter, lastRestart = tp.Iteration, tp.Restart
		if tp.Restart > maxRestart {
			maxRestart = tp.Restart
		}
		if tp.F < 0 {
			t.Fatal("negative F in trace")
		}
	}
	if maxRestart != tb.Restarts-1 {
		t.Fatalf("trace covers %d restarts, want %d", maxRestart+1, tb.Restarts)
	}
}

func TestTabuBothStopCriteriaOccur(t *testing.T) {
	// The paper (Figure 1 discussion) observes both per-restart stop modes:
	// some seeds stop after reaching the same local minimum three times,
	// others run the full 20 iterations. Verify both appear across the
	// canonical configuration on a real instance.
	net, err := topology.RandomIrregular(16, 3, rand.New(rand.NewSource(2000)), topology.Config{})
	if err != nil {
		t.Fatal(err)
	}
	e := evalFor(t, net)
	sp := spec(t, 16, 4)
	tb := NewTabu()
	tb.RecordTrace = true
	res, err := tb.Search(nil, e, sp, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	// Count trace points per restart: a restart that ran all 20
	// iterations has 21 points (start + 20); shorter ones stopped early
	// via the repeat rule.
	perRestart := map[int]int{}
	for _, tp := range res.Trace {
		perRestart[tp.Restart]++
	}
	full, early := 0, 0
	for _, n := range perRestart {
		if n >= tb.MaxIterations+1 {
			full++
		} else {
			early++
		}
	}
	if early == 0 {
		t.Fatal("no restart stopped via the same-local-minimum rule")
	}
	if full == 0 {
		t.Fatal("no restart ran the full iteration budget")
	}
}

func TestTabuNoTraceByDefault(t *testing.T) {
	e := quality.NewEvaluator(blockTable(t, 8, 2))
	res, err := NewTabu().Search(nil, e, spec(t, 8, 2), rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) != 0 {
		t.Fatal("trace recorded without RecordTrace")
	}
}

func TestTabuBeatsSingleRandomDraw(t *testing.T) {
	net, err := topology.RandomIrregular(16, 3, rand.New(rand.NewSource(55)), topology.Config{})
	if err != nil {
		t.Fatal(err)
	}
	e := evalFor(t, net)
	sp := spec(t, 16, 4)
	tb, err := NewTabu().Search(nil, e, sp, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	rd, err := NewRandomSample().Search(nil, e, sp, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if tb.BestIntraSum >= rd.BestIntraSum {
		t.Fatalf("tabu (%v) did not beat a random draw (%v)", tb.BestIntraSum, rd.BestIntraSum)
	}
}

func TestExhaustiveCountsPartitions(t *testing.T) {
	// 6 switches into 2 unlabeled clusters of 3: 6!/(3!²·2!) = 10.
	e := quality.NewEvaluator(blockTable(t, 6, 2))
	res, err := NewExhaustive().Search(nil, e, spec(t, 6, 2), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Pruning may skip complete partitions, so Iterations <= 10; disable
	// pruning indirectly by checking it at least finds the optimum.
	if res.Iterations > 10 {
		t.Fatalf("enumerated %d partitions, want <= 10 (label symmetry must be broken)", res.Iterations)
	}
	if math.Abs(res.BestIntraSum-blockOptimal(6, 2)) > 1e-9 {
		t.Fatalf("exhaustive missed optimum: %v", res.BestIntraSum)
	}
}

func TestExhaustiveUnequalSizes(t *testing.T) {
	// Unequal clusters must not be treated as interchangeable.
	e := quality.NewEvaluator(blockTable(t, 6, 2))
	res, err := NewExhaustive().Search(nil, e, Spec{Sizes: []int{2, 4}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Size(0) != 2 || res.Best.Size(1) != 4 {
		t.Fatalf("sizes not honored: %d/%d", res.Best.Size(0), res.Best.Size(1))
	}
}

func TestExhaustiveLimit(t *testing.T) {
	e := quality.NewEvaluator(blockTable(t, 12, 3))
	x := &Exhaustive{Limit: 5}
	if _, err := x.Search(nil, e, spec(t, 12, 3), nil); err == nil {
		t.Fatal("limit not enforced")
	}
}

func TestGreedyDescends(t *testing.T) {
	net, err := topology.RandomIrregular(16, 3, rand.New(rand.NewSource(31)), topology.Config{})
	if err != nil {
		t.Fatal(err)
	}
	e := evalFor(t, net)
	sp := spec(t, 16, 4)
	g, err := NewGreedy().Search(nil, e, sp, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	// Greedy's local minimum admits no improving swap.
	p := g.Best
	for a := 0; a < 16; a++ {
		for b := a + 1; b < 16; b++ {
			if p.Cluster(a) == p.Cluster(b) {
				continue
			}
			if e.SwapDelta(p, a, b) < -1e-9 {
				t.Fatalf("greedy result improvable by swapping %d,%d", a, b)
			}
		}
	}
}

func TestAnnealImprovesOverStart(t *testing.T) {
	net, err := topology.RandomIrregular(16, 3, rand.New(rand.NewSource(41)), topology.Config{})
	if err != nil {
		t.Fatal(err)
	}
	e := evalFor(t, net)
	sp := spec(t, 16, 4)
	rng := rand.New(rand.NewSource(2))
	start, err := mapping.Random(16, 4, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewAnneal().Search(nil, e, sp, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestIntraSum > e.IntraSum(start) {
		t.Fatalf("annealing (%v) worse than its own start (%v)", res.BestIntraSum, e.IntraSum(start))
	}
	if res.Evaluations == 0 {
		t.Fatal("no evaluations recorded")
	}
}

func TestGeneticPreservesSpecSizes(t *testing.T) {
	e := quality.NewEvaluator(blockTable(t, 12, 3))
	res, err := NewGenetic().Search(nil, e, Spec{Sizes: []int{2, 4, 6}}, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Size(0) != 2 || res.Best.Size(1) != 4 || res.Best.Size(2) != 6 {
		t.Fatal("genetic broke the cluster sizes")
	}
}

func TestOrderCrossoverIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 100; trial++ {
		a := rng.Perm(10)
		b := rng.Perm(10)
		c := orderCrossover(a, b, rng)
		seen := make([]bool, 10)
		for _, g := range c {
			if g < 0 || g >= 10 || seen[g] {
				t.Fatalf("trial %d: child %v is not a permutation", trial, c)
			}
			seen[g] = true
		}
	}
}

func TestRandomSampleMultipleDraws(t *testing.T) {
	e := quality.NewEvaluator(blockTable(t, 8, 2))
	sp := spec(t, 8, 2)
	one, err := (&RandomSample{Samples: 1}).Search(nil, e, sp, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	many, err := (&RandomSample{Samples: 500}).Search(nil, e, sp, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	if many.BestIntraSum > one.BestIntraSum {
		t.Fatal("500 draws worse than 1 draw with the same seed prefix")
	}
	if many.Evaluations != 500 {
		t.Fatalf("Evaluations = %d, want 500", many.Evaluations)
	}
}

func TestParallelTabuDeterministicAndGood(t *testing.T) {
	net, err := topology.RandomIrregular(16, 3, rand.New(rand.NewSource(66)), topology.Config{})
	if err != nil {
		t.Fatal(err)
	}
	e := evalFor(t, net)
	sp := spec(t, 16, 4)
	par := NewTabu()
	par.Parallel = true
	r1, err := par.Search(nil, e, sp, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := par.Search(nil, e, sp, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	if r1.BestIntraSum != r2.BestIntraSum || !r1.Best.Canonical().Equal(r2.Best.Canonical()) {
		t.Fatal("parallel tabu nondeterministic for fixed seed")
	}
	// Parallel restarts must find the same optimum the sequential run does
	// on this instance (both match exhaustive on small networks).
	seq, err := NewTabu().Search(nil, e, sp, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r1.BestIntraSum-seq.BestIntraSum) > 1e-9 {
		t.Fatalf("parallel best %v != sequential best %v", r1.BestIntraSum, seq.BestIntraSum)
	}
	if r1.Evaluations == 0 {
		t.Fatal("parallel run lost its cost counters")
	}
}

func TestParallelTabuRejectsTrace(t *testing.T) {
	e := quality.NewEvaluator(blockTable(t, 8, 2))
	tb := NewTabu()
	tb.Parallel = true
	tb.RecordTrace = true
	if _, err := tb.Search(nil, e, spec(t, 8, 2), rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("trace recording with Parallel accepted")
	}
}

func TestTabuFindsRingClusters(t *testing.T) {
	// Figure 4: on the designed 4-rings-of-6 network, the search must
	// recover the rings as clusters.
	net, err := topology.InterconnectedRings(4, 6, 1, topology.Config{})
	if err != nil {
		t.Fatal(err)
	}
	e := evalFor(t, net)
	sp := spec(t, 24, 4)
	res, err := NewTabu().Search(nil, e, sp, rand.New(rand.NewSource(2020)))
	if err != nil {
		t.Fatal(err)
	}
	assign := make([]int, 24)
	for r, ring := range topology.RingClusters(4, 6) {
		for _, s := range ring {
			assign[s] = r
		}
	}
	truth, err := mapping.New(assign, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Best.Canonical().Equal(truth.Canonical()) {
		t.Fatalf("tabu partition %v does not match the rings %v (intra %v vs %v)",
			res.Best, truth, res.BestIntraSum, e.IntraSum(truth))
	}
}
