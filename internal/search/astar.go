package search

import (
	"container/heap"
	"context"
	"fmt"
	"math/rand"

	"commsched/internal/mapping"
	"commsched/internal/quality"
)

// AStar is the A* tree search the paper studied alongside Tabu (Kafil &
// Ahmad's optimal task assignment formulation): nodes are partial
// assignments of switches 0..s-1 to clusters, g is the intra-cluster cost
// already committed, and h is an admissible lower bound on the cost the
// remaining switches must add. With the exact h it expands few nodes but
// needs exponential memory in the worst case; MaxNodes bounds that, after
// which the best frontier node is completed greedily (making the searcher
// anytime rather than failing).
type AStar struct {
	// MaxNodes bounds the number of expanded nodes (0 = a sensible
	// default of 200k).
	MaxNodes int
}

// NewAStar returns an A* searcher with default bounds.
func NewAStar() *AStar { return &AStar{} }

// Name implements Searcher.
func (a *AStar) Name() string { return "a-star" }

// astarNode is one partial assignment in the open list.
type astarNode struct {
	assign []int   // assignment of switches [0, depth)
	counts []int   // per-cluster occupancy
	depth  int     // switches assigned so far
	g      float64 // committed intra-cluster cost
	f      float64 // g + admissible heuristic
}

// nodeHeap is a min-heap on f.
type nodeHeap []*astarNode

func (h nodeHeap) Len() int           { return len(h) }
func (h nodeHeap) Less(i, j int) bool { return h[i].f < h[j].f }
func (h nodeHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x any)        { *h = append(*h, x.(*astarNode)) }
func (h *nodeHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Search implements Searcher. rng is unused (A* is deterministic) but
// accepted for interface uniformity.
func (a *AStar) Search(ctx context.Context, e *quality.Evaluator, spec Spec, _ *rand.Rand) (*Result, error) {
	ctx = orBackground(ctx)
	if err := spec.validate(e); err != nil {
		return nil, err
	}
	maxNodes := a.MaxNodes
	if maxNodes <= 0 {
		maxNodes = 200_000
	}
	n := spec.N()
	m := spec.M()
	res := &Result{}

	// minPairCost[s] = the cheapest squared distance from switch s to any
	// other switch — the admissible per-pair bound used by h.
	minPair := make([]float64, n)
	for s := 0; s < n; s++ {
		best := -1.0
		for w := 0; w < n; w++ {
			if w == s {
				continue
			}
			if c := e.PairSquared(s, w); best < 0 || c < best {
				best = c
			}
		}
		minPair[s] = best
	}

	h := func(node *astarNode) float64 {
		// Every yet-unassigned switch s will join some cluster and gain at
		// least (size-1 of that cluster... unknown) — use the weakest safe
		// bound that is still useful: each unassigned switch will be paired
		// with at least (sizeOfItsCluster - 1) others, but cluster identity
		// is unknown, so bound by the minimum remaining co-membership
		// count over open clusters, times the switch's cheapest pair cost.
		minCo := n
		for c := 0; c < m; c++ {
			if left := spec.Sizes[c] - node.counts[c]; left > 0 {
				// A switch joining cluster c pairs with (size-1) switches;
				// of those, at least (counts[c]) pairs are already fixed.
				if co := spec.Sizes[c] - 1; co < minCo {
					minCo = co
				}
			}
		}
		if minCo == n {
			return 0
		}
		sum := 0.0
		for s := node.depth; s < n; s++ {
			// Each unassigned switch contributes at least minCo/2 pair
			// costs (each pair shared by two endpoints).
			sum += float64(minCo) / 2 * minPair[s]
		}
		return sum
	}

	start := &astarNode{assign: []int{}, counts: make([]int, m)}
	start.f = h(start)
	open := &nodeHeap{start}
	heap.Init(open)

	expanded := 0
	var incumbent *astarNode
	for open.Len() > 0 {
		if expanded%1024 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("search: a-star cancelled: %w", err)
			}
		}
		node := heap.Pop(open).(*astarNode)
		if incumbent != nil && node.f >= incumbent.g {
			break // best-first: nothing cheaper remains
		}
		if node.depth == n {
			incumbent = node
			break // first goal popped from a consistent heap is optimal
		}
		expanded++
		if expanded > maxNodes {
			// Budget exhausted: finish this node greedily.
			incumbent = a.completeGreedy(e, spec, node)
			break
		}
		s := node.depth
		openedEmpty := map[int]bool{}
		for c := 0; c < m; c++ {
			if node.counts[c] >= spec.Sizes[c] {
				continue
			}
			if node.counts[c] == 0 {
				// Symmetry breaking among empty clusters of equal size.
				if openedEmpty[spec.Sizes[c]] {
					continue
				}
				openedEmpty[spec.Sizes[c]] = true
			}
			add := 0.0
			for w := 0; w < s; w++ {
				if node.assign[w] == c {
					add += e.PairSquared(s, w)
				}
			}
			res.Evaluations++
			child := &astarNode{
				assign: append(append(make([]int, 0, s+1), node.assign...), c),
				counts: append([]int(nil), node.counts...),
				depth:  s + 1,
				g:      node.g + add,
			}
			child.counts[c]++
			child.f = child.g + h(child)
			heap.Push(open, child)
		}
	}
	if incumbent == nil {
		return nil, fmt.Errorf("search: a-star found no complete assignment")
	}
	p, err := mapping.New(incumbent.assign, m)
	if err != nil {
		return nil, err
	}
	res.Best = p
	res.Iterations = expanded
	return finishResult(e, res), nil
}

// completeGreedy extends a partial node by assigning each remaining switch
// to the open cluster with the cheapest marginal cost.
func (a *AStar) completeGreedy(e *quality.Evaluator, spec Spec, node *astarNode) *astarNode {
	cur := &astarNode{
		assign: append([]int(nil), node.assign...),
		counts: append([]int(nil), node.counts...),
		depth:  node.depth,
		g:      node.g,
	}
	n := spec.N()
	for s := cur.depth; s < n; s++ {
		bestC, bestAdd := -1, 0.0
		for c := 0; c < spec.M(); c++ {
			if cur.counts[c] >= spec.Sizes[c] {
				continue
			}
			add := 0.0
			for w := 0; w < s; w++ {
				if cur.assign[w] == c {
					add += e.PairSquared(s, w)
				}
			}
			if bestC < 0 || add < bestAdd {
				bestC, bestAdd = c, add
			}
		}
		cur.assign = append(cur.assign, bestC)
		cur.counts[bestC]++
		cur.g += bestAdd
	}
	cur.depth = n
	return cur
}
