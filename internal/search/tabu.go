package search

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"commsched/internal/mapping"
	"commsched/internal/obs"
	"commsched/internal/quality"
)

// Tabu is the paper's scheduling heuristic (Section 4.2): steepest-descent
// over pairwise inter-cluster swaps; at a local minimum, take the
// least-bad uphill swap and forbid its inverse for Tenure iterations;
// restart from fresh random mappings. A restart stops when the same local
// minimum has been reached RepeatLimit times or after MaxIterations
// iterations, whichever comes first.
type Tabu struct {
	// Restarts is the number of random starting mappings (paper: 10).
	Restarts int
	// MaxIterations bounds the iterations per restart (paper: 20).
	MaxIterations int
	// RepeatLimit stops a restart when the same local minimum value has
	// been reached this many times (paper: 3).
	RepeatLimit int
	// Tenure is h, the number of iterations the inverse of an uphill move
	// stays forbidden.
	Tenure int
	// RecordTrace enables TracePoint recording (Figure 1).
	RecordTrace bool
	// Parallel runs the restarts concurrently on GOMAXPROCS goroutines.
	// Both modes pre-draw one seed per restart from the caller's rng and
	// scope the aspiration criterion to the restart, so for a given rng
	// state the sequential and parallel runs return the identical Result
	// regardless of scheduling. Incompatible with RecordTrace.
	Parallel bool
}

// NewTabu returns a Tabu searcher with the paper's parameters.
func NewTabu() *Tabu {
	return &Tabu{Restarts: 10, MaxIterations: 20, RepeatLimit: 3, Tenure: 4}
}

// Name implements Searcher.
func (t *Tabu) Name() string { return "tabu" }

// valueEpsilon is the tolerance when comparing objective values for "same
// local minimum" detection; IntraSum values are O(N²·max(T)²) ≈ 10³, so
// 1e-9 relative noise is far below distinguishable minima.
const valueEpsilon = 1e-9

// Objective abstracts what the Tabu procedure needs from an objective
// function: the total intra-cluster cost of a partition and the O(cluster)
// incremental effect of a swap. Both quality.Evaluator and
// quality.WeightedEvaluator satisfy it.
type Objective interface {
	// IntraSum returns the objective value of the partition.
	IntraSum(p *mapping.Partition) float64
	// SwapDelta returns the objective change if u and v were swapped.
	SwapDelta(p *mapping.Partition, u, v int) float64
}

// Search implements Searcher.
func (t *Tabu) Search(ctx context.Context, e *quality.Evaluator, spec Spec, rng *rand.Rand) (*Result, error) {
	if err := spec.validate(e); err != nil {
		return nil, err
	}
	sp, sctx := obs.StartSpanCtx(orBackground(ctx), "search.tabu", obs.F("restarts", t.Restarts), obs.F("parallel", t.Parallel))
	res, err := t.searchObjective(sctx, e, spec, rng, func(p *mapping.Partition) float64 {
		return e.Similarity(p)
	})
	if err != nil {
		return nil, err
	}
	res = finishResult(e, res)
	sp.End(obs.F("best", res.BestIntraSum), obs.F("evaluations", res.Evaluations), obs.F("iterations", res.Iterations))
	return res, nil
}

// SearchObjective runs the identical Tabu procedure over an arbitrary
// swap-evaluable objective — the entry point for the weighted
// communication-requirements extension. Result.BestF is left zero (the
// paper's F_G normalization only applies to the unweighted objective).
func (t *Tabu) SearchObjective(ctx context.Context, obj Objective, spec Spec, rng *rand.Rand) (*Result, error) {
	if err := validateSpecShape(spec); err != nil {
		return nil, err
	}
	sp, sctx := obs.StartSpanCtx(orBackground(ctx), "search.tabu", obs.F("restarts", t.Restarts), obs.F("parallel", t.Parallel))
	res, err := t.searchObjective(sctx, obj, spec, rng, nil)
	if err != nil {
		return nil, err
	}
	sp.End(obs.F("best", res.BestIntraSum), obs.F("evaluations", res.Evaluations), obs.F("iterations", res.Iterations))
	return res, nil
}

// SearchFrom runs a single warm-started Tabu pass from an existing
// partition instead of random restarts — the repair scheduler for degraded
// networks: starting from the pre-failure mapping keeps the search near
// it, so the repaired mapping moves few switches. The start partition must
// match the spec; it is not mutated.
func (t *Tabu) SearchFrom(ctx context.Context, obj Objective, spec Spec, rng *rand.Rand, start *mapping.Partition) (*Result, error) {
	ctx = orBackground(ctx)
	if err := validateSpecShape(spec); err != nil {
		return nil, err
	}
	if start == nil {
		return nil, fmt.Errorf("search: SearchFrom needs a start partition")
	}
	if start.N() != spec.N() || start.M() != spec.M() {
		return nil, fmt.Errorf("search: start partition is %d switches / %d clusters, spec wants %d / %d",
			start.N(), start.M(), spec.N(), spec.M())
	}
	for c := 0; c < start.M(); c++ {
		if start.Size(c) != spec.Sizes[c] {
			return nil, fmt.Errorf("search: start cluster %d has %d switches, spec wants %d",
				c, start.Size(c), spec.Sizes[c])
		}
	}
	sp, sctx := obs.StartSpanCtx(ctx, "search.tabu_warm", obs.F("n", start.N()), obs.F("m", start.M()))
	res := &Result{}
	globalIter := 0
	if err := t.runRestart(sctx, obj, start.Clone(), res, 0, &globalIter, nil); err != nil {
		return nil, err
	}
	sp.End(obs.F("best", res.BestIntraSum), obs.F("evaluations", res.Evaluations), obs.F("iterations", res.Iterations))
	return res, nil
}

// validateSpecShape checks the parts of a spec that do not need an
// evaluator.
func validateSpecShape(spec Spec) error {
	if len(spec.Sizes) == 0 {
		return fmt.Errorf("search: empty spec")
	}
	for c, x := range spec.Sizes {
		if x <= 0 {
			return fmt.Errorf("search: cluster %d has non-positive size %d", c, x)
		}
	}
	return nil
}

// searchObjective is the shared Tabu core. traceF, when non-nil and
// RecordTrace is set, maps partitions to the recorded trace value.
//
// Restart seeds are pre-drawn sequentially from rng and every restart is
// fully independent (own starting partition, own incumbent for the
// aspiration criterion), so the sequential and parallel paths return the
// identical Result for one rng state.
func (t *Tabu) searchObjective(ctx context.Context, obj Objective, spec Spec, rng *rand.Rand, traceF func(*mapping.Partition) float64) (*Result, error) {
	if t.Parallel {
		return t.searchParallel(ctx, obj, spec, rng)
	}
	seeds := restartSeeds(rng, t.Restarts)
	merged := &Result{}
	globalIter := 0
	var record func(p *mapping.Partition, restart int)
	if t.RecordTrace && traceF != nil {
		record = func(p *mapping.Partition, restart int) {
			merged.Trace = append(merged.Trace, TracePoint{Iteration: globalIter, Restart: restart, F: traceF(p)})
		}
	}
	for restart, seed := range seeds {
		sub, err := t.runSeededRestart(ctx, obj, spec, seed, restart, &globalIter, record)
		if err != nil {
			return nil, err
		}
		mergeResult(merged, sub)
		obs.Progress("search.tabu", int64(restart+1), int64(len(seeds)))
	}
	return merged, nil
}

// restartSeeds pre-draws one seed per restart, making the set of starting
// partitions a pure function of the incoming rng state in both the
// sequential and parallel modes.
func restartSeeds(rng *rand.Rand, n int) []int64 {
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = rng.Int63()
	}
	return seeds
}

// runSeededRestart executes one independent restart from its pre-drawn
// seed and returns its private Result.
func (t *Tabu) runSeededRestart(ctx context.Context, obj Objective, spec Spec, seed int64, restart int, globalIter *int, record func(*mapping.Partition, int)) (*Result, error) {
	p, err := spec.randomPartition(rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, err
	}
	sub := &Result{}
	if err := t.runRestart(ctx, obj, p, sub, restart, globalIter, record); err != nil {
		return nil, err
	}
	return sub, nil
}

// mergeResult folds one restart's result into the aggregate, keeping the
// strictly better incumbent (first restart wins ties, matching the
// sequential visit order).
func mergeResult(dst, src *Result) {
	dst.Evaluations += src.Evaluations
	dst.Iterations += src.Iterations
	if dst.Best == nil || src.BestIntraSum < dst.BestIntraSum-valueEpsilon {
		dst.Best = src.Best
		dst.BestIntraSum = src.BestIntraSum
	}
}

// restartStats accumulates the observability counters of one Tabu
// restart: neighborhood-scan activity and move outcomes.
type restartStats struct {
	iterations  int     // accepted moves this restart
	evaluations int     // candidate evaluations this restart
	tabuHits    int     // candidate moves rejected by the tabu list
	aspirations int     // tabu moves admitted by the aspiration criterion
	improving   int     // accepted moves with negative delta
	uphill      int     // tabu-escape moves (non-negative delta)
	improvement float64 // total objective decrease from improving moves
}

// runRestart executes one Tabu pass from the given starting partition,
// updating res in place. The partition is mutated.
func (t *Tabu) runRestart(ctx context.Context, obj Objective, p *mapping.Partition, res *Result, restart int, globalIter *int, record func(*mapping.Partition, int)) error {
	start := obj.IntraSum(p)
	cur := start
	t.consider(obj, res, p, cur)
	if record != nil {
		record(p, restart)
	}

	// tabu[key] = first iteration at which the move is allowed again.
	tabu := map[[2]int]int{}
	localMinima := []float64{} // values of local minima reached this restart
	repeats := 0
	var stats restartStats

	for iter := 0; iter < t.MaxIterations; iter++ {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("search: tabu cancelled: %w", err)
		}
		*globalIter++
		bestU, bestV, bestDelta, found := t.bestMove(obj, p, tabu, iter, cur, res.BestIntraSum, &stats)
		sweep := evalsPerSweep(p)
		res.Evaluations += sweep
		stats.evaluations += sweep
		if !found {
			// Fully tabu neighborhood (tiny instances): nothing to do.
			break
		}
		if bestDelta >= -valueEpsilon {
			// Local minimum: record it, count repeats of the same value.
			repeats = countRepeat(localMinima, cur)
			localMinima = append(localMinima, cur)
			if repeats >= t.RepeatLimit {
				break
			}
			// Escape uphill with the smallest increase; forbid the
			// inverse move for Tenure iterations.
			tabu[moveKey(bestU, bestV)] = iter + 1 + t.Tenure
			stats.uphill++
		} else {
			stats.improving++
			stats.improvement -= bestDelta
		}
		p.Swap(bestU, bestV)
		cur += bestDelta
		res.Iterations++
		stats.iterations++
		t.consider(obj, res, p, cur)
		if record != nil {
			record(p, restart)
		}
	}
	if obs.Enabled() {
		tabuRate := 0.0
		if stats.evaluations > 0 {
			tabuRate = float64(stats.tabuHits) / float64(stats.evaluations)
		}
		obs.Event("search.restart",
			obs.F("heuristic", "tabu"),
			obs.F("restart", restart),
			obs.F("iterations", stats.iterations),
			obs.F("evaluations", stats.evaluations),
			obs.F("tabu_hits", stats.tabuHits),
			obs.F("tabu_hit_rate", tabuRate),
			obs.F("aspirations", stats.aspirations),
			obs.F("improving_moves", stats.improving),
			obs.F("uphill_moves", stats.uphill),
			obs.F("improvement", stats.improvement),
			obs.F("start", start),
			obs.F("final", cur),
			obs.F("best", res.BestIntraSum))
	}
	return nil
}

// searchParallel fans the restarts across GOMAXPROCS workers. It runs the
// exact per-restart procedure of the sequential path on the same pre-drawn
// seeds and merges in restart order, so the outcome is identical to the
// sequential run regardless of scheduling. A worker panic is recovered
// into a returned error.
func (t *Tabu) searchParallel(ctx context.Context, obj Objective, spec Spec, rng *rand.Rand) (*Result, error) {
	if t.RecordTrace {
		return nil, fmt.Errorf("search: Tabu trace recording is not supported with Parallel")
	}
	seeds := restartSeeds(rng, t.Restarts)
	results := make([]*Result, t.Restarts)
	errs := make([]error, t.Restarts)
	workers := runtime.GOMAXPROCS(0)
	if workers > t.Restarts {
		workers = t.Restarts
	}
	var wg sync.WaitGroup
	var next, finished atomic.Int64
	var panicked atomic.Pointer[error]
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					err := fmt.Errorf("search: tabu worker panic: %v", r)
					panicked.CompareAndSwap(nil, &err)
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= t.Restarts {
					return
				}
				iter := 0
				results[i], errs[i] = t.runSeededRestart(ctx, obj, spec, seeds[i], i, &iter, nil)
				obs.Progress("search.tabu", finished.Add(1), int64(t.Restarts))
			}
		}()
	}
	wg.Wait()
	if errp := panicked.Load(); errp != nil {
		return nil, *errp
	}
	merged := &Result{}
	for i := range results {
		if errs[i] != nil {
			return nil, errs[i]
		}
		mergeResult(merged, results[i])
	}
	return merged, nil
}

// bestMove scans all inter-cluster swaps and returns the non-tabu move
// with the smallest delta. Tabu moves are admissible when they would beat
// the global best (aspiration criterion). stats accumulates tabu-hit and
// aspiration counts for the restart's observability record.
func (t *Tabu) bestMove(e Objective, p *mapping.Partition, tabu map[[2]int]int, iter int, cur, globalBest float64, stats *restartStats) (u, v int, delta float64, found bool) {
	n := p.N()
	delta = math.Inf(1)
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if p.Cluster(a) == p.Cluster(b) {
				continue
			}
			d := e.SwapDelta(p, a, b)
			if until, isTabu := tabu[moveKey(a, b)]; isTabu && iter < until {
				// Aspiration: allow a tabu move only if it improves on the
				// best value seen anywhere.
				if globalBest == 0 || cur+d >= globalBest-valueEpsilon {
					stats.tabuHits++
					continue
				}
				stats.aspirations++
			}
			if d < delta {
				u, v, delta, found = a, b, d, true
			}
		}
	}
	return u, v, delta, found
}

// consider updates the incumbent best-so-far. The candidate is screened
// with the cheap running value, but the stored incumbent is re-evaluated
// from scratch: delta accumulation drifts in the last ulp, and the exact
// value keeps BestIntraSum identical across objective implementations
// that agree analytically (e.g. unit-weight WeightedEvaluator vs
// Evaluator).
func (t *Tabu) consider(obj Objective, res *Result, p *mapping.Partition, val float64) {
	if res.Best == nil || val < res.BestIntraSum-valueEpsilon {
		res.Best = p.Clone()
		res.BestIntraSum = obj.IntraSum(p)
	}
}

// countRepeat returns how many recorded minima match val (within
// tolerance), plus one for the current occurrence.
func countRepeat(minima []float64, val float64) int {
	c := 1
	for _, m := range minima {
		if math.Abs(m-val) <= valueEpsilon*(1+math.Abs(val)) {
			c++
		}
	}
	return c
}

// moveKey canonicalizes an (u,v) swap; the move and its inverse share one
// key, which is exactly what the tabu list must forbid.
func moveKey(u, v int) [2]int {
	if u > v {
		u, v = v, u
	}
	return [2]int{u, v}
}

// evalsPerSweep counts the candidate evaluations of one full neighborhood
// scan: all inter-cluster pairs.
func evalsPerSweep(p *mapping.Partition) int {
	n := p.N()
	same := 0
	for c := 0; c < p.M(); c++ {
		x := p.Size(c)
		same += x * (x - 1) / 2
	}
	return n*(n-1)/2 - same
}
