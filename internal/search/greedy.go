package search

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"commsched/internal/quality"
)

// Greedy is steepest-descent over swap moves: from each random start it
// repeatedly applies the best improving inter-cluster swap until a local
// minimum, with no escape mechanism. It is the "fast greedy" style
// baseline the Tabu variant improves on.
type Greedy struct {
	// Restarts is the number of random starting mappings.
	Restarts int
	// MaxIterations bounds descent length per restart (safety net; descent
	// terminates on its own at a local minimum).
	MaxIterations int
}

// NewGreedy returns a Greedy searcher with the same restart budget as the
// paper's Tabu configuration.
func NewGreedy() *Greedy { return &Greedy{Restarts: 10, MaxIterations: 1000} }

// Name implements Searcher.
func (g *Greedy) Name() string { return "greedy" }

// Search implements Searcher.
func (g *Greedy) Search(ctx context.Context, e *quality.Evaluator, spec Spec, rng *rand.Rand) (*Result, error) {
	ctx = orBackground(ctx)
	if err := spec.validate(e); err != nil {
		return nil, err
	}
	res := &Result{}
	for restart := 0; restart < g.Restarts; restart++ {
		p, err := spec.randomPartition(rng)
		if err != nil {
			return nil, err
		}
		cur := e.IntraSum(p)
		for iter := 0; iter < g.MaxIterations; iter++ {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("search: greedy cancelled: %w", err)
			}
			bestU, bestV := -1, -1
			bestDelta := math.Inf(1)
			n := p.N()
			for a := 0; a < n; a++ {
				for b := a + 1; b < n; b++ {
					if p.Cluster(a) == p.Cluster(b) {
						continue
					}
					if d := e.SwapDelta(p, a, b); d < bestDelta {
						bestU, bestV, bestDelta = a, b, d
					}
				}
			}
			res.Evaluations += evalsPerSweep(p)
			if bestU < 0 || bestDelta >= -valueEpsilon {
				break // local minimum
			}
			p.Swap(bestU, bestV)
			cur += bestDelta
			res.Iterations++
		}
		if res.Best == nil || cur < res.BestIntraSum-valueEpsilon {
			res.Best = p.Clone()
			res.BestIntraSum = cur
		}
	}
	return finishResult(e, res), nil
}
