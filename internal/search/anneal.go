package search

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"commsched/internal/obs"
	"commsched/internal/quality"
)

// Anneal is classic Simulated Annealing over swap moves: random swaps are
// always accepted when improving and accepted with probability
// exp(−Δ/temperature) otherwise, with geometric cooling.
type Anneal struct {
	// InitialTemp is the starting temperature; when zero, it is
	// auto-calibrated to the objective scale (mean |Δ| of random moves).
	InitialTemp float64
	// Cooling is the geometric cooling factor per step, in (0,1).
	Cooling float64
	// Steps is the number of proposed moves.
	Steps int
	// Restarts repeats the schedule from fresh random mappings.
	Restarts int
}

// NewAnneal returns an Anneal searcher with a budget comparable to the
// paper's Tabu configuration on the evaluated network sizes.
func NewAnneal() *Anneal {
	return &Anneal{Cooling: 0.995, Steps: 2000, Restarts: 3}
}

// Name implements Searcher.
func (a *Anneal) Name() string { return "simulated-annealing" }

// Search implements Searcher.
func (a *Anneal) Search(ctx context.Context, e *quality.Evaluator, spec Spec, rng *rand.Rand) (*Result, error) {
	ctx = orBackground(ctx)
	if err := spec.validate(e); err != nil {
		return nil, err
	}
	sp, sctx := obs.StartSpanCtx(ctx, "search.anneal", obs.F("restarts", a.Restarts), obs.F("steps", a.Steps))
	ctx = sctx
	res := &Result{}
	for restart := 0; restart < a.Restarts; restart++ {
		p, err := spec.randomPartition(rng)
		if err != nil {
			return nil, err
		}
		cur := e.IntraSum(p)
		start := cur
		if res.Best == nil || cur < res.BestIntraSum {
			res.Best = p.Clone()
			res.BestIntraSum = cur
		}
		temp := a.InitialTemp
		if temp <= 0 {
			temp = a.calibrate(e, spec, rng)
		}
		n := p.N()
		accepted, evals, improving := 0, 0, 0
		improvement := 0.0
		for step := 0; step < a.Steps; step++ {
			if step%256 == 0 {
				if err := ctx.Err(); err != nil {
					return nil, fmt.Errorf("search: annealing cancelled: %w", err)
				}
			}
			u, v := rng.Intn(n), rng.Intn(n)
			if p.Cluster(u) == p.Cluster(v) {
				continue
			}
			d := e.SwapDelta(p, u, v)
			res.Evaluations++
			evals++
			if d <= 0 || (temp > 0 && rng.Float64() < math.Exp(-d/temp)) {
				p.Swap(u, v)
				cur += d
				res.Iterations++
				accepted++
				if d < 0 {
					improving++
					improvement -= d
				}
				if cur < res.BestIntraSum-valueEpsilon {
					res.Best = p.Clone()
					res.BestIntraSum = cur
				}
			}
			temp *= a.Cooling
		}
		if obs.Enabled() {
			obs.EventCtx(ctx, "search.restart",
				obs.F("heuristic", "simulated-annealing"),
				obs.F("restart", restart),
				obs.F("iterations", accepted),
				obs.F("evaluations", evals),
				obs.F("improving_moves", improving),
				obs.F("improvement", improvement),
				obs.F("start", start),
				obs.F("final", cur),
				obs.F("final_temp", temp),
				obs.F("best", res.BestIntraSum))
			obs.Progress("search.anneal", int64(restart+1), int64(a.Restarts))
		}
	}
	res = finishResult(e, res)
	sp.End(obs.F("best", res.BestIntraSum), obs.F("evaluations", res.Evaluations), obs.F("iterations", res.Iterations))
	return res, nil
}

// calibrate estimates a starting temperature as the mean |Δ| over random
// moves from a random mapping, so that early acceptance is permissive on
// any objective scale.
func (a *Anneal) calibrate(e *quality.Evaluator, spec Spec, rng *rand.Rand) float64 {
	p, err := spec.randomPartition(rng)
	if err != nil {
		return 1
	}
	n := p.N()
	sum, cnt := 0.0, 0
	for k := 0; k < 64; k++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if p.Cluster(u) == p.Cluster(v) {
			continue
		}
		sum += math.Abs(e.SwapDelta(p, u, v))
		cnt++
	}
	if cnt == 0 || sum == 0 {
		return 1
	}
	return sum / float64(cnt)
}
