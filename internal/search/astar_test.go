package search

import (
	"math"
	"math/rand"
	"testing"

	"commsched/internal/quality"
	"commsched/internal/topology"
)

func TestAStarMatchesExhaustive(t *testing.T) {
	// A* must return the global optimum on instances small enough to
	// verify exhaustively.
	for _, seed := range []int64{1, 2, 3} {
		net, err := topology.RandomIrregular(12, 3, rand.New(rand.NewSource(seed)), topology.Config{})
		if err != nil {
			t.Fatal(err)
		}
		e := evalFor(t, net)
		sp := spec(t, 12, 3)
		ex, err := NewExhaustive().Search(nil, e, sp, nil)
		if err != nil {
			t.Fatal(err)
		}
		as, err := NewAStar().Search(nil, e, sp, nil)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(as.BestIntraSum-ex.BestIntraSum) > 1e-9 {
			t.Fatalf("seed %d: a-star %v != exhaustive %v", seed, as.BestIntraSum, ex.BestIntraSum)
		}
	}
}

func TestAStarExpandsFewerNodesThanExhaustive(t *testing.T) {
	net, err := topology.RandomIrregular(12, 3, rand.New(rand.NewSource(7)), topology.Config{})
	if err != nil {
		t.Fatal(err)
	}
	e := evalFor(t, net)
	sp := spec(t, 12, 3)
	ex, err := NewExhaustive().Search(nil, e, sp, nil)
	if err != nil {
		t.Fatal(err)
	}
	as, err := NewAStar().Search(nil, e, sp, nil)
	if err != nil {
		t.Fatal(err)
	}
	if as.Evaluations >= ex.Evaluations {
		t.Fatalf("a-star evaluated %d candidates, exhaustive only %d — heuristic pruning ineffective",
			as.Evaluations, ex.Evaluations)
	}
}

func TestAStarUnequalSizes(t *testing.T) {
	e := quality.NewEvaluator(blockTable(t, 6, 2))
	res, err := NewAStar().Search(nil, e, Spec{Sizes: []int{2, 4}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Size(0) != 2 || res.Best.Size(1) != 4 {
		t.Fatal("A* broke the cluster sizes")
	}
}

func TestAStarBudgetFallsBackGreedy(t *testing.T) {
	// A tiny node budget forces the anytime path; the result must still be
	// a valid partition (not necessarily optimal).
	net, err := topology.RandomIrregular(16, 3, rand.New(rand.NewSource(4)), topology.Config{})
	if err != nil {
		t.Fatal(err)
	}
	e := evalFor(t, net)
	sp := spec(t, 16, 4)
	a := &AStar{MaxNodes: 10}
	res, err := a.Search(nil, e, sp, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.N() != 16 || res.Best.M() != 4 {
		t.Fatal("budgeted A* returned malformed partition")
	}
	for c := 0; c < 4; c++ {
		if res.Best.Size(c) != 4 {
			t.Fatalf("cluster %d size %d", c, res.Best.Size(c))
		}
	}
}

func TestAStarRejectsBadSpec(t *testing.T) {
	e := quality.NewEvaluator(blockTable(t, 6, 2))
	if _, err := NewAStar().Search(nil, e, Spec{Sizes: []int{3}}, nil); err == nil {
		t.Fatal("bad spec accepted")
	}
}
