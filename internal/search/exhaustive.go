package search

import (
	"context"
	"fmt"
	"math/rand"

	"commsched/internal/mapping"
	"commsched/internal/quality"
)

// Exhaustive enumerates every distinct partition matching the spec and
// returns the global optimum. Clusters of equal size are interchangeable
// (the paper's logical clusters all have identical communication
// requirements), so label symmetry between same-size clusters is broken
// during enumeration: among empty same-size clusters, only the first may
// be opened.
//
// The search space for the paper's 16-switch case — 16 switches into four
// unlabeled clusters of 4 — has 16!/(4!⁴·4!) = 2 627 625 partitions, which
// enumerates in seconds and is how the paper verified Tabu's optimality on
// small networks.
type Exhaustive struct {
	// Limit aborts enumeration after this many search-tree nodes
	// (0 = unlimited). A safety valve for accidental large inputs.
	Limit int
}

// NewExhaustive returns an unlimited exhaustive searcher.
func NewExhaustive() *Exhaustive { return &Exhaustive{} }

// Name implements Searcher.
func (x *Exhaustive) Name() string { return "exhaustive" }

// ErrLimitExceeded reports that enumeration hit the configured limit.
var ErrLimitExceeded = fmt.Errorf("search: exhaustive enumeration limit exceeded")

// Search implements Searcher. rng is unused (the search is deterministic)
// but accepted for interface uniformity.
func (x *Exhaustive) Search(ctx context.Context, e *quality.Evaluator, spec Spec, _ *rand.Rand) (*Result, error) {
	ctx = orBackground(ctx)
	if err := spec.validate(e); err != nil {
		return nil, err
	}
	n := spec.N()
	m := spec.M()
	res := &Result{}
	assign := make([]int, n)
	remaining := make([]int, m)
	copy(remaining, spec.Sizes)

	// Incremental objective: partial[c] accumulates the squared distances
	// of pairs already placed inside cluster c; cost carries their sum.
	nodes, complete := 0, 0
	var rec func(s int, cost float64) error
	rec = func(s int, cost float64) error {
		nodes++
		if x.Limit > 0 && nodes > x.Limit {
			return ErrLimitExceeded
		}
		if nodes%4096 == 0 {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("search: exhaustive cancelled: %w", err)
			}
		}
		// Prune: a partial assignment whose intra cost already exceeds the
		// incumbent cannot improve (all increments are non-negative).
		if res.Best != nil && cost >= res.BestIntraSum {
			return nil
		}
		if s == n {
			complete++
			if res.Best == nil || cost < res.BestIntraSum {
				p, err := mapping.New(assign, m)
				if err != nil {
					return err
				}
				res.Best = p
				res.BestIntraSum = cost
			}
			return nil
		}
		openedEmpty := map[int]bool{} // size class -> an empty cluster already tried
		for c := 0; c < m; c++ {
			if remaining[c] == 0 {
				continue
			}
			if remaining[c] == spec.Sizes[c] {
				// Empty cluster: skip later empty clusters of the same size
				// (label symmetry).
				if openedEmpty[spec.Sizes[c]] {
					continue
				}
				openedEmpty[spec.Sizes[c]] = true
			}
			// Cost of adding switch s to cluster c: distances to members
			// already placed there (assign[w] is current for all w < s).
			add := 0.0
			for w := 0; w < s; w++ {
				if assign[w] == c {
					add += e.PairSquared(s, w)
				}
			}
			res.Evaluations++
			assign[s] = c
			remaining[c]--
			if err := rec(s+1, cost+add); err != nil {
				return err
			}
			remaining[c]++
		}
		return nil
	}
	if err := rec(0, 0); err != nil {
		return nil, err
	}
	res.Iterations = complete
	return finishResult(e, res), nil
}
