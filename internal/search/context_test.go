package search

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"commsched/internal/distance"
	"commsched/internal/mapping"
	"commsched/internal/quality"
	"commsched/internal/routing"
	"commsched/internal/topology"
)

// bigEvaluator builds an evaluator on a 16-switch irregular instance —
// large enough that every searcher runs for many iterations.
func bigEvaluator(t *testing.T) *quality.Evaluator {
	t.Helper()
	rng := rand.New(rand.NewSource(2000))
	net, err := topology.RandomIrregular(16, 3, rng, topology.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ud, err := routing.NewUpDown(net, -1)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := distance.Compute(net, ud)
	if err != nil {
		t.Fatal(err)
	}
	return quality.NewEvaluator(tab)
}

// TestSearchersHonorCancelledContext verifies every Searcher returns
// ctx.Err() when handed an already-cancelled context.
func TestSearchersHonorCancelledContext(t *testing.T) {
	e := bigEvaluator(t)
	sp, err := BalancedSpec(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	searchers := []Searcher{
		NewTabu(),
		&Tabu{Restarts: 4, MaxIterations: 20, RepeatLimit: 3, Tenure: 4, Parallel: true},
		NewAnneal(),
		NewGreedy(),
		NewGenetic(),
		NewGSA(),
		&RandomSample{Samples: 100000},
		NewExhaustive(),
		NewAStar(),
	}
	for _, s := range searchers {
		_, err := s.Search(ctx, e, sp, rand.New(rand.NewSource(1)))
		if err == nil {
			t.Errorf("%s: cancelled context produced a result", s.Name())
			continue
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: error %v does not wrap context.Canceled", s.Name(), err)
		}
	}
}

// TestSearchersNilContext verifies nil is accepted as Background.
func TestSearchersNilContext(t *testing.T) {
	e := bigEvaluator(t)
	sp, err := BalancedSpec(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewTabu().Search(nil, e, sp, rand.New(rand.NewSource(1))); err != nil {
		t.Fatal(err)
	}
}

func TestTabuSearchFromWarmStart(t *testing.T) {
	e := bigEvaluator(t)
	sp, err := BalancedSpec(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	cold, err := NewTabu().Search(nil, e, sp, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Warm-start from the cold optimum: must not get worse, and must not
	// mutate the start partition.
	start := cold.Best.Clone()
	warm, err := NewTabu().SearchFrom(nil, e, sp, rand.New(rand.NewSource(1)), start)
	if err != nil {
		t.Fatal(err)
	}
	if !start.Equal(cold.Best) {
		t.Fatal("SearchFrom mutated its start partition")
	}
	if warm.BestIntraSum > cold.BestIntraSum+valueEpsilon {
		t.Fatalf("warm start worsened the objective: %v > %v", warm.BestIntraSum, cold.BestIntraSum)
	}
	// From a random start it must descend to a local minimum at least as
	// good as the start.
	randStart, err := mapping.RandomSizes(sp.Sizes, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	startVal := e.IntraSum(randStart)
	res, err := NewTabu().SearchFrom(nil, e, sp, rand.New(rand.NewSource(2)), randStart)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestIntraSum > startVal+valueEpsilon {
		t.Fatalf("SearchFrom worsened a random start: %v > %v", res.BestIntraSum, startVal)
	}
}

func TestTabuSearchFromValidation(t *testing.T) {
	e := bigEvaluator(t)
	sp, err := BalancedSpec(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	tb := NewTabu()
	if _, err := tb.SearchFrom(nil, e, sp, rand.New(rand.NewSource(1)), nil); err == nil {
		t.Fatal("nil start accepted")
	}
	wrong, err := mapping.RandomSizes([]int{8, 8}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.SearchFrom(nil, e, sp, rand.New(rand.NewSource(1)), wrong); err == nil {
		t.Fatal("mismatched start accepted")
	}
	unbalanced, err := mapping.RandomSizes([]int{2, 2, 6, 6}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.SearchFrom(nil, e, sp, rand.New(rand.NewSource(1)), unbalanced); err == nil {
		t.Fatal("size-mismatched start accepted")
	}
}
