package search

import (
	"context"
	"fmt"
	"math/rand"

	"commsched/internal/quality"
)

// RandomSample is the no-intelligence baseline: draw Samples random
// mappings and keep the best. With Samples == 1 it produces exactly the
// paper's "random mapping" comparison points.
type RandomSample struct {
	// Samples is the number of random mappings drawn.
	Samples int
}

// NewRandomSample returns a single-draw random mapper (a paper R_i point).
func NewRandomSample() *RandomSample { return &RandomSample{Samples: 1} }

// Name implements Searcher.
func (r *RandomSample) Name() string { return "random" }

// Search implements Searcher.
func (r *RandomSample) Search(ctx context.Context, e *quality.Evaluator, spec Spec, rng *rand.Rand) (*Result, error) {
	ctx = orBackground(ctx)
	if err := spec.validate(e); err != nil {
		return nil, err
	}
	samples := r.Samples
	if samples < 1 {
		samples = 1
	}
	res := &Result{}
	for i := 0; i < samples; i++ {
		if i%1024 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("search: random sampling cancelled: %w", err)
			}
		}
		p, err := spec.randomPartition(rng)
		if err != nil {
			return nil, err
		}
		val := e.IntraSum(p)
		res.Evaluations++
		if res.Best == nil || val < res.BestIntraSum {
			res.Best = p
			res.BestIntraSum = val
		}
	}
	res.Iterations = samples
	return finishResult(e, res), nil
}
