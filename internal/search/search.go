// Package search implements the heuristic mapping searchers the paper
// studies: the Tabu search variant of Section 4.2 (the paper's chosen
// technique), plus Simulated Annealing, a Genetic Algorithm, Genetic
// Simulated Annealing, steepest-descent greedy, exhaustive enumeration
// (small networks), and a random-sampling baseline.
//
// All searchers minimize the similarity objective: the total squared
// intra-cluster equivalent distance (quality.Evaluator.IntraSum). Because
// swap moves preserve cluster sizes, minimizing IntraSum is equivalent to
// minimizing the paper's F_G and to maximizing the clustering coefficient
// Cc.
package search

import (
	"context"
	"fmt"
	"math/rand"

	"commsched/internal/mapping"
	"commsched/internal/quality"
)

// Spec describes the shape of the wanted partition: the size of each
// switch cluster. The paper's setting is four equal clusters.
type Spec struct {
	Sizes []int
}

// BalancedSpec returns a spec of m equal clusters over n switches.
func BalancedSpec(n, m int) (Spec, error) {
	if m <= 0 || n <= 0 || n%m != 0 {
		return Spec{}, fmt.Errorf("search: cannot split %d switches into %d equal clusters", n, m)
	}
	sizes := make([]int, m)
	for i := range sizes {
		sizes[i] = n / m
	}
	return Spec{Sizes: sizes}, nil
}

// N returns the total number of switches the spec covers.
func (s Spec) N() int {
	n := 0
	for _, x := range s.Sizes {
		n += x
	}
	return n
}

// M returns the number of clusters.
func (s Spec) M() int { return len(s.Sizes) }

// validate checks the spec against an evaluator.
func (s Spec) validate(e *quality.Evaluator) error {
	if len(s.Sizes) == 0 {
		return fmt.Errorf("search: empty spec")
	}
	for c, x := range s.Sizes {
		if x <= 0 {
			return fmt.Errorf("search: cluster %d has non-positive size %d", c, x)
		}
	}
	if s.N() != e.N() {
		return fmt.Errorf("search: spec covers %d switches, table covers %d", s.N(), e.N())
	}
	return nil
}

// randomPartition draws a random partition matching the spec.
func (s Spec) randomPartition(rng *rand.Rand) (*mapping.Partition, error) {
	return mapping.RandomSizes(s.Sizes, rng)
}

// TracePoint is one step of a search trajectory — the data behind the
// paper's Figure 1 (value of F at each Tabu iteration, restarts included).
type TracePoint struct {
	// Iteration is the global iteration counter across restarts.
	Iteration int
	// Restart is the index of the random seed this point belongs to.
	Restart int
	// F is the global similarity function F_G of the current mapping.
	F float64
}

// Result is the outcome of one search run.
type Result struct {
	// Best is the best mapping found.
	Best *mapping.Partition
	// BestIntraSum is the raw objective value of Best.
	BestIntraSum float64
	// BestF is the global similarity F_G of Best.
	BestF float64
	// Trace records the trajectory when the searcher supports it.
	Trace []TracePoint
	// Evaluations counts candidate objective evaluations (full or
	// incremental) — the cost measure used to compare heuristics.
	Evaluations int
	// Iterations counts accepted moves / generations.
	Iterations int
}

// Searcher finds a low-similarity partition for the given spec.
type Searcher interface {
	// Name identifies the heuristic in reports.
	Name() string
	// Search runs the heuristic. Implementations must be deterministic
	// given the evaluator, spec, and rng state, must honor ctx
	// cancellation promptly (returning ctx.Err(), possibly wrapped), and
	// must accept a nil ctx as context.Background().
	Search(ctx context.Context, e *quality.Evaluator, spec Spec, rng *rand.Rand) (*Result, error)
}

// orBackground normalizes a nil context so searcher internals can call
// ctx.Err() unconditionally.
func orBackground(ctx context.Context) context.Context {
	if ctx == nil {
		return context.Background()
	}
	return ctx
}

// finishResult fills the derived fields of a result from its best
// partition.
func finishResult(e *quality.Evaluator, r *Result) *Result {
	r.BestIntraSum = e.IntraSum(r.Best)
	r.BestF = e.Similarity(r.Best)
	return r
}
