package search

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"commsched/internal/quality"
)

// GSA is Genetic Simulated Annealing (Chen/Flann/Watson; Shroff et al.):
// a population-based search where each individual performs an annealed
// local move every generation — mutations that worsen the objective are
// accepted with Boltzmann probability under a shared cooling temperature —
// and the population is periodically recombined and re-seeded from its
// best members.
type GSA struct {
	// Population is the number of concurrent solutions.
	Population int
	// Generations is the number of rounds.
	Generations int
	// Cooling is the per-generation geometric temperature decay.
	Cooling float64
	// CrossoverEvery injects OX1 recombination every k generations
	// (0 disables recombination).
	CrossoverEvery int
}

// NewGSA returns a GSA searcher with defaults balanced against the other
// heuristics.
func NewGSA() *GSA {
	return &GSA{Population: 20, Generations: 150, Cooling: 0.97, CrossoverEvery: 10}
}

// Name implements Searcher.
func (g *GSA) Name() string { return "genetic-simulated-annealing" }

// Search implements Searcher.
func (g *GSA) Search(ctx context.Context, e *quality.Evaluator, spec Spec, rng *rand.Rand) (*Result, error) {
	ctx = orBackground(ctx)
	if err := spec.validate(e); err != nil {
		return nil, err
	}
	res := &Result{}
	n := spec.N()
	pop := make([]chromosome, g.Population)
	for i := range pop {
		pop[i] = chromosome{perm: rng.Perm(n)}
		pop[i].val = objectiveOfPerm(e, spec, pop[i].perm)
		res.Evaluations++
	}
	temp := g.calibrate(pop)
	for gen := 0; gen < g.Generations; gen++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("search: gsa cancelled: %w", err)
		}
		for i := range pop {
			// One annealed transposition per individual.
			a, b := rng.Intn(n), rng.Intn(n)
			if a == b {
				continue
			}
			cand := make([]int, n)
			copy(cand, pop[i].perm)
			cand[a], cand[b] = cand[b], cand[a]
			val := objectiveOfPerm(e, spec, cand)
			res.Evaluations++
			d := val - pop[i].val
			if d <= 0 || (temp > 0 && rng.Float64() < math.Exp(-d/temp)) {
				pop[i].perm, pop[i].val = cand, val
			}
		}
		if g.CrossoverEvery > 0 && gen%g.CrossoverEvery == g.CrossoverEvery-1 {
			g.recombine(e, spec, pop, rng, res)
		}
		temp *= g.Cooling
		res.Iterations++
	}
	sort.Slice(pop, func(i, j int) bool { return pop[i].val < pop[j].val })
	best, err := partitionFromPerm(spec, pop[0].perm)
	if err != nil {
		return nil, err
	}
	res.Best = best
	return finishResult(e, res), nil
}

// recombine replaces the worst half of the population with OX1 children
// of random better-half parents.
func (g *GSA) recombine(e *quality.Evaluator, spec Spec, pop []chromosome, rng *rand.Rand, res *Result) {
	sort.Slice(pop, func(i, j int) bool { return pop[i].val < pop[j].val })
	half := len(pop) / 2
	if half == 0 {
		return
	}
	for i := half; i < len(pop); i++ {
		a := pop[rng.Intn(half)]
		b := pop[rng.Intn(half)]
		child := orderCrossover(a.perm, b.perm, rng)
		pop[i] = chromosome{perm: child, val: objectiveOfPerm(e, spec, child)}
		res.Evaluations++
	}
}

// calibrate sets the initial temperature to the population's value spread.
func (g *GSA) calibrate(pop []chromosome) float64 {
	min, max := math.Inf(1), math.Inf(-1)
	for _, c := range pop {
		if c.val < min {
			min = c.val
		}
		if c.val > max {
			max = c.val
		}
	}
	if spread := max - min; spread > 0 {
		return spread / 2
	}
	return 1
}

// objectiveOfPerm evaluates a permutation chromosome against the spec.
func objectiveOfPerm(e *quality.Evaluator, spec Spec, perm []int) float64 {
	p, err := partitionFromPerm(spec, perm)
	if err != nil {
		panic("search: invalid chromosome: " + err.Error())
	}
	return e.IntraSum(p)
}
