// Package runctl wires the durable-execution layer into the command-line
// entry points: the -resume checkpoint directory and the
// -timeout/-retries/-errorbudget unit policy share identical semantics
// across paperfigs, netsim, commsched, and procsched, so the plumbing
// lives here once.
package runctl

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"commsched/internal/lease"
	"commsched/internal/obs"
	"commsched/internal/par"
	"commsched/internal/runstate"
)

// Signals binds the command's root context to SIGINT/SIGTERM: the first
// signal cancels the returned context (and the par root context, so even
// experiment loops that still pass a nil ctx stop between units), letting
// the deferred finish/Close paths flush runstate checkpoints and obs
// JSONL sinks instead of dropping them. After the first signal the
// handler is removed, so a second signal takes the default disposition
// and kills a run that is not winding down. The returned stop function
// restores default signal handling; call it on the way out.
func Signals(parent context.Context, warn io.Writer) (context.Context, context.CancelFunc) {
	if parent == nil {
		parent = context.Background()
	}
	ctx, cancel := context.WithCancel(parent)
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		select {
		case sig := <-ch:
			signal.Stop(ch)
			if warn != nil {
				fmt.Fprintf(warn, "runctl: %v received; stopping between units and flushing checkpoints (signal again to kill)\n", sig)
			}
			cancel()
		case <-ctx.Done():
		}
	}()
	par.SetRootContext(ctx)
	return ctx, func() {
		signal.Stop(ch)
		par.SetRootContext(nil)
		cancel()
	}
}

// Config carries the durable-run command-line options.
type Config struct {
	// ResumeDir is the checkpoint directory ("" = durable execution off).
	// A fresh directory starts a recorded run; an existing one resumes it,
	// replaying completed units and re-executing only the rest.
	ResumeDir string
	// Timeout is the per-unit deadline (0 = none).
	Timeout time.Duration
	// Retries is the per-unit retry budget.
	Retries int
	// ErrorBudget is how many units may fail permanently before the run
	// aborts; failed units within the budget are salvaged as incomplete.
	ErrorBudget int
	// WorkersDir enables distributed execution: a checkpoint directory
	// shared by several worker processes that lease units from each other
	// ("" = local execution). It doubles as the resume directory.
	WorkersDir string
	// WorkerID names this process in the lease protocol; "" derives
	// hostname-pid. Must be unique per live worker — restarting a crashed
	// worker under a new ID is always safe.
	WorkerID string
	// LeaseTTL is how long a worker may go without renewing a unit lease
	// before siblings may reclaim it.
	LeaseTTL time.Duration
	// Speculate enables duplicate execution of straggling units.
	Speculate bool
}

// Flags registers the durable-run flags on the default FlagSet and
// returns the destination Config. full controls whether the unit-policy
// flags are included (paperfigs/netsim) or just -resume
// (commsched/procsched, whose runs are single short units).
func Flags(full bool) *Config {
	cfg := &Config{}
	flag.StringVar(&cfg.ResumeDir, "resume", "",
		"checkpoint directory for durable runs: record completed units there and, when the directory already holds a compatible run, resume it instead of recomputing")
	if full {
		flag.DurationVar(&cfg.Timeout, "timeout", 10*time.Minute,
			"per-unit deadline (one sweep point, one search); 0 disables")
		flag.IntVar(&cfg.Retries, "retries", 1,
			"retry budget per unit for panics, timeouts, and transient errors")
		flag.IntVar(&cfg.ErrorBudget, "errorbudget", 0,
			"units allowed to fail permanently before the run aborts; failed units are salvaged as incomplete (0 = fail fast)")
	}
	flag.StringVar(&cfg.WorkersDir, "workers-dir", "",
		"shared checkpoint directory for distributed execution: every worker process started with the same -workers-dir (and identical arguments) leases units from it; implies -resume semantics on that directory")
	flag.StringVar(&cfg.WorkerID, "worker-id", "",
		"unique name of this worker in the lease protocol (default hostname-pid); restart a crashed worker under a fresh ID")
	flag.DurationVar(&cfg.LeaseTTL, "lease-ttl", 5*time.Second,
		"unit lease time-to-live: a worker silent this long is presumed dead and its units are reclaimed")
	flag.BoolVar(&cfg.Speculate, "speculate", false,
		"speculatively re-execute straggling units on idle workers (first completion wins; determinism keeps output identical)")
	return cfg
}

// Activate installs the unit policy and, when a resume (or shared
// workers) directory is set, opens the checkpoint store under the given
// run identity. With -workers-dir it additionally opens the lease
// manager and installs the distributed pool as the process-wide loop
// executor. It returns a finish function that uninstalls everything,
// prints the salvage warning and checkpoint/lease summaries to warn,
// and surfaces the store's first error.
func Activate(cfg Config, id runstate.Identity, warn io.Writer) (func() error, error) {
	if cfg.WorkersDir != "" && cfg.ResumeDir != "" && cfg.ResumeDir != cfg.WorkersDir {
		return nil, fmt.Errorf("runctl: -resume %q conflicts with -workers-dir %q (the workers directory is the checkpoint directory)", cfg.ResumeDir, cfg.WorkersDir)
	}
	par.SetPolicy(par.Policy{
		Timeout:     cfg.Timeout,
		Retries:     cfg.Retries,
		Backoff:     100 * time.Millisecond,
		ErrorBudget: cfg.ErrorBudget,
	})
	cleanup := func() { par.SetPolicy(par.Policy{}) }
	var st *runstate.Store
	var pool *lease.Pool
	switch {
	case cfg.WorkersDir != "":
		workerID := cfg.WorkerID
		if workerID == "" {
			host, _ := os.Hostname()
			if host == "" {
				host = "worker"
			}
			workerID = fmt.Sprintf("%s-%d", host, os.Getpid())
		}
		st, err := runstate.OpenWorker(cfg.WorkersDir, id, workerID)
		if err != nil {
			cleanup()
			return nil, err
		}
		mgr, err := lease.Open(cfg.WorkersDir, workerID, cfg.LeaseTTL)
		if err != nil {
			st.Close()
			cleanup()
			return nil, err
		}
		runstate.SetStore(st)
		pool = lease.NewPool(mgr, lease.PoolOptions{Speculate: cfg.Speculate})
		par.SetExecutor(pool)
		if warn != nil {
			fmt.Fprintf(warn, "lease: worker %s joined %s (ttl %v, %d unit(s) already on disk)\n",
				workerID, cfg.WorkersDir, mgr.TTL(), st.Units())
		}
		installRootTrace(id)
		return finishFunc(cfg, st, pool, warn), nil
	case cfg.ResumeDir != "":
		var err error
		st, err = runstate.Open(cfg.ResumeDir, id)
		if err != nil {
			cleanup()
			return nil, err
		}
		runstate.SetStore(st)
		if n := st.Stats().Replayed; n > 0 && warn != nil {
			fmt.Fprintf(warn, "runstate: resuming from %s: %d completed unit(s) will be replayed, not recomputed\n",
				cfg.ResumeDir, n)
		}
	}
	installRootTrace(id)
	return finishFunc(cfg, st, nil, warn), nil
}

// finishFunc builds Activate's teardown: uninstall the executor and
// policy, print the lease/salvage/checkpoint summaries, close the store.
func finishFunc(cfg Config, st *runstate.Store, pool *lease.Pool, warn io.Writer) func() error {
	return func() error {
		obs.SetRootSpanContext(obs.SpanContext{})
		par.SetExecutor(nil)
		par.SetPolicy(par.Policy{})
		if pool != nil && warn != nil {
			fmt.Fprintln(warn, pool.Stats().Summary())
		}
		if n := par.Salvaged(); n > 0 && warn != nil {
			fmt.Fprintf(warn, "warning: %d unit(s) failed permanently and were salvaged as incomplete; results are partial\n", n)
		}
		if st == nil {
			return nil
		}
		runstate.SetStore(nil)
		stats := st.Stats()
		if warn != nil {
			dir := cfg.ResumeDir
			if cfg.WorkersDir != "" {
				dir = cfg.WorkersDir
			}
			fmt.Fprintf(warn, "runstate: checkpoint %s: %d unit(s) recorded this run, %d replayed, %d on disk\n",
				dir, stats.Recorded, stats.Replayed, st.Units())
			if stats.Conflicts > 0 || stats.DeterminismViolations > 0 {
				fmt.Fprintf(warn, "runstate: merge: %d fencing conflict(s), %d determinism violation(s)\n",
					stats.Conflicts, stats.DeterminismViolations)
			}
		}
		return st.Close()
	}
}

// traceRootUnit is the durable form of the run's root span context — the
// "trace/root" checkpoint unit. Journaling it makes trace continuity an
// explicit contract: a -resume replays the recorded identity (even if the
// derivation scheme ever changes between versions), so the interrupted
// run and its resume stitch into one trace.
type traceRootUnit struct {
	Trace string `json:"trace"`
	Span  string `json:"span"`
}

// installRootTrace derives the run's root span context deterministically
// from the run identity (SHA-256 of its JSON encoding: bytes 0..16 are
// the trace ID, 16..24 the root span ID) and installs it as the
// process-wide fallback, so every span of the run — even from code that
// passes a bare context — lands in one trace. With a checkpoint store
// open, the context is journaled as the "trace/root" unit and replayed
// on resume.
func installRootTrace(id runstate.Identity) {
	data, err := json.Marshal(id)
	if err != nil {
		return
	}
	sum := sha256.Sum256(data)
	sc := obs.SpanContext{Trace: obs.TraceIDFromBytes(sum[:16]), Sampled: true}
	copy(sc.Span[:], sum[16:24])
	if sc.Span.IsZero() {
		sc.Span[7] = 1
	}
	var u traceRootUnit
	if runstate.Lookup("trace/root", &u) {
		if tr, terr := obs.ParseTraceID(u.Trace); terr == nil {
			if sp, serr := obs.ParseSpanID(u.Span); serr == nil {
				sc.Trace, sc.Span = tr, sp
			}
		}
	} else {
		runstate.Record("trace/root", traceRootUnit{Trace: sc.Trace.String(), Span: sc.Span.String()})
	}
	obs.SetRootSpanContext(sc)
}
