package runctl

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"commsched/internal/obs"
	"commsched/internal/par"
	"commsched/internal/runstate"
)

func testIdentity() runstate.Identity {
	return runstate.Identity{
		Command: "runctl-test",
		Seeds:   map[string]int64{"search": 42},
	}
}

func TestActivateInstallsPolicyOnly(t *testing.T) {
	var buf bytes.Buffer
	finish, err := Activate(Config{Timeout: time.Minute, Retries: 2}, testIdentity(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !par.CurrentPolicy().Active() {
		t.Fatal("unit policy not installed")
	}
	if runstate.Enabled() {
		t.Fatal("checkpoint store installed without -resume")
	}
	if err := finish(); err != nil {
		t.Fatal(err)
	}
	if par.CurrentPolicy().Active() {
		t.Fatal("unit policy not uninstalled by finish")
	}
}

func TestActivateResumeRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ckpt")
	id := testIdentity()

	var first bytes.Buffer
	finish, err := Activate(Config{ResumeDir: dir}, id, &first)
	if err != nil {
		t.Fatal(err)
	}
	if !runstate.Enabled() {
		t.Fatal("checkpoint store not installed")
	}
	runstate.Record("unit/a", map[string]int{"x": 7})
	if err := finish(); err != nil {
		t.Fatal(err)
	}
	if runstate.Enabled() {
		t.Fatal("store still installed after finish")
	}
	if !strings.Contains(first.String(), "recorded") {
		t.Fatalf("first run summary missing: %q", first.String())
	}

	var second bytes.Buffer
	finish, err = Activate(Config{ResumeDir: dir}, id, &second)
	if err != nil {
		t.Fatal(err)
	}
	var got map[string]int
	if !runstate.Lookup("unit/a", &got) || got["x"] != 7 {
		t.Fatalf("recorded unit not replayed on resume: %v", got)
	}
	if !strings.Contains(second.String(), "resuming from") {
		t.Fatalf("resume banner missing: %q", second.String())
	}
	if err := finish(); err != nil {
		t.Fatal(err)
	}
}

// TestRootTraceDeterministic pins the root-trace contract: the trace is
// a pure function of the run identity, is installed as the process-wide
// fallback for the duration of the run, and is uninstalled by finish.
func TestRootTraceDeterministic(t *testing.T) {
	id := testIdentity()
	finish, err := Activate(Config{}, id, nil)
	if err != nil {
		t.Fatal(err)
	}
	sc1 := obs.SpanContextFrom(nil)
	if !sc1.Valid() {
		t.Fatal("Activate installed no root span context")
	}
	if err := finish(); err != nil {
		t.Fatal(err)
	}
	if obs.SpanContextFrom(nil).Valid() {
		t.Fatal("finish left the root span context installed")
	}

	finish, err = Activate(Config{}, id, nil)
	if err != nil {
		t.Fatal(err)
	}
	sc2 := obs.SpanContextFrom(nil)
	if err := finish(); err != nil {
		t.Fatal(err)
	}
	if sc1 != sc2 {
		t.Fatalf("same identity yielded different root traces: %s vs %s", sc1.Traceparent(), sc2.Traceparent())
	}

	other := testIdentity()
	other.Seeds = map[string]int64{"search": 7}
	finish, err = Activate(Config{}, other, nil)
	if err != nil {
		t.Fatal(err)
	}
	sc3 := obs.SpanContextFrom(nil)
	if err := finish(); err != nil {
		t.Fatal(err)
	}
	if sc3.Trace == sc1.Trace {
		t.Fatal("different identities share a root trace")
	}
}

// TestRootTraceStitchedAcrossResume is the durable-trace contract: a run
// killed mid-way and resumed from its checkpoint directory continues the
// SAME trace, replayed from the journaled "trace/root" unit.
func TestRootTraceStitchedAcrossResume(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ckpt")
	id := testIdentity()

	finish, err := Activate(Config{ResumeDir: dir}, id, nil)
	if err != nil {
		t.Fatal(err)
	}
	first := obs.SpanContextFrom(nil)
	if !first.Valid() {
		t.Fatal("no root span context on the first run")
	}
	if err := finish(); err != nil {
		t.Fatal(err)
	}

	finish, err = Activate(Config{ResumeDir: dir}, id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resumed := obs.SpanContextFrom(nil)
	if err := finish(); err != nil {
		t.Fatal(err)
	}
	if resumed != first {
		t.Fatalf("resume minted a new root trace: %s, first run had %s", resumed.Traceparent(), first.Traceparent())
	}
}

func TestActivateRefusesForeignRun(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ckpt")
	finish, err := Activate(Config{ResumeDir: dir}, testIdentity(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := finish(); err != nil {
		t.Fatal(err)
	}

	other := testIdentity()
	other.Seeds = map[string]int64{"search": 7}
	if _, err := Activate(Config{ResumeDir: dir}, other, nil); err == nil {
		t.Fatal("resume under a different identity accepted")
	}
	if par.CurrentPolicy().Active() {
		t.Fatal("failed Activate left the unit policy installed")
	}
}
