package distance

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"commsched/internal/fault"
	"commsched/internal/routing"
	"commsched/internal/topology"
)

// Property-based checks of the equivalent-distance table: structural
// invariants on random irregular instances, closed forms on topologies
// where the effective resistance is known analytically, and agreement of
// the incremental rebuild with the from-scratch computation under random
// fault plans.

const propEps = 1e-9

// buildTable characterizes one random irregular instance.
func buildTable(t *testing.T, switches int, seed int64) (*topology.Network, *routing.UpDown, *Table) {
	t.Helper()
	net, err := topology.RandomIrregular(switches, 3, rand.New(rand.NewSource(seed)), topology.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := routing.NewUpDown(net, -1)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := Compute(net, rt)
	if err != nil {
		t.Fatal(err)
	}
	return net, rt, tab
}

// TestTableStructuralProperties checks, across random instances: zero
// diagonal, symmetry, strict positivity off the diagonal, and the
// resistance upper bound — parallel routes can only lower the equivalent
// distance, so T[i][j] never exceeds the legal hop distance.
func TestTableStructuralProperties(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			_, rt, tab := buildTable(t, 16, seed)
			n := tab.N()
			for i := 0; i < n; i++ {
				if tab.At(i, i) != 0 {
					t.Fatalf("T[%d][%d] = %v, want 0", i, i, tab.At(i, i))
				}
				for j := i + 1; j < n; j++ {
					d := tab.At(i, j)
					if math.Abs(d-tab.At(j, i)) > propEps {
						t.Fatalf("asymmetric: T[%d][%d]=%v T[%d][%d]=%v", i, j, d, j, i, tab.At(j, i))
					}
					if d <= 0 {
						t.Fatalf("T[%d][%d] = %v, want > 0", i, j, d)
					}
					hops := float64(rt.Distance(i, j))
					if d > hops+propEps {
						t.Fatalf("T[%d][%d] = %v exceeds hop distance %v", i, j, d, hops)
					}
					// A single minimal route means no parallelism: the
					// equivalent distance must equal the hop count.
					if rt.CountShortestLegalPaths(i, j) == 1 && math.Abs(d-hops) > propEps {
						t.Fatalf("unique route %d-%d: T=%v, want hop distance %v", i, j, d, hops)
					}
				}
			}
		})
	}
}

// TestPathClosedForm: on a path graph every pair has exactly one route, a
// series chain of unit resistors — T[i][j] = |i-j| exactly.
func TestPathClosedForm(t *testing.T) {
	const n = 7
	links := make([]topology.Link, 0, n-1)
	for i := 0; i < n-1; i++ {
		links = append(links, topology.Link{A: i, B: i + 1})
	}
	net, err := topology.New("path7", n, links, topology.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := routing.NewUpDown(net, -1)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := Compute(net, rt)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want := math.Abs(float64(i - j))
			if math.Abs(tab.At(i, j)-want) > propEps {
				t.Fatalf("path: T[%d][%d] = %v, want %v", i, j, tab.At(i, j), want)
			}
		}
	}
}

// TestStarClosedForm: on a star every route runs through the center —
// center↔leaf is one unit resistor (T = 1), leaf↔leaf two in series
// (T = 2). The center's degree exceeds the default port budget, so the
// instance needs a wider switch configuration.
func TestStarClosedForm(t *testing.T) {
	const leaves = 8
	links := make([]topology.Link, 0, leaves)
	for l := 1; l <= leaves; l++ {
		links = append(links, topology.Link{A: 0, B: l})
	}
	net, err := topology.New("star8", leaves+1, links, topology.Config{Ports: 16})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := routing.NewUpDown(net, -1)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := Compute(net, rt)
	if err != nil {
		t.Fatal(err)
	}
	for l := 1; l <= leaves; l++ {
		if math.Abs(tab.At(0, l)-1) > propEps {
			t.Fatalf("star: T[0][%d] = %v, want 1", l, tab.At(0, l))
		}
		for m := l + 1; m <= leaves; m++ {
			if math.Abs(tab.At(l, m)-2) > propEps {
				t.Fatalf("star: T[%d][%d] = %v, want 2", l, m, tab.At(l, m))
			}
		}
	}
}

// TestComputeDeltaMatchesFullCompute: after random link-only fault plans
// (switch IDs stable, so the incremental path applies) the table produced
// by ComputeDelta must agree entry for entry with a from-scratch Compute
// on the degraded network, and the recomputed-pair count must stay within
// its trivial bounds.
func TestComputeDeltaMatchesFullCompute(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			net, rt, tab := buildTable(t, 16, seed)
			rng := rand.New(rand.NewSource(seed * 31))
			plan, err := fault.RandomPlan(net, fault.PlanSpec{LinkFailures: 1 + rng.Intn(2)}, rng)
			if err != nil {
				t.Skipf("no connectivity-preserving plan for seed %d: %v", seed, err)
			}
			d, err := fault.Apply(net, plan)
			if err != nil {
				t.Fatal(err)
			}
			if !d.Identity() {
				t.Fatalf("link-only plan compacted switch IDs: %+v", d.DeadSwitches)
			}
			rt2, err := routing.NewUpDown(d.Net, rt.Root())
			if err != nil {
				t.Fatal(err)
			}
			delta, recomputed, err := ComputeDelta(d.Net, rt2, rt, tab)
			if err != nil {
				t.Fatal(err)
			}
			full, err := Compute(d.Net, rt2)
			if err != nil {
				t.Fatal(err)
			}
			n := full.N()
			if recomputed < 0 || recomputed > n*(n-1)/2 {
				t.Fatalf("recomputed %d pairs outside [0, %d]", recomputed, n*(n-1)/2)
			}
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if math.Abs(delta.At(i, j)-full.At(i, j)) > 1e-12 {
						t.Fatalf("T[%d][%d]: delta %v vs full %v", i, j, delta.At(i, j), full.At(i, j))
					}
				}
			}
		})
	}
}

// TestSumSquaresMatchesQuadraticMean ties the two table aggregates
// together: SumSquares must equal QuadraticMean × (number of pairs) on
// arbitrary instances.
func TestSumSquaresMatchesQuadraticMean(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		_, _, tab := buildTable(t, 12, seed)
		n := tab.N()
		pairs := float64(n * (n - 1) / 2)
		if got, want := tab.SumSquares(), tab.QuadraticMean()*pairs; math.Abs(got-want) > propEps {
			t.Fatalf("seed %d: SumSquares %v vs QuadraticMean*pairs %v", seed, got, want)
		}
	}
}
