package distance

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"commsched/internal/routing"
	"commsched/internal/topology"
)

// panicProvider panics on every call, modeling a routing structure
// corrupted by a topology change.
type panicProvider struct{}

func (panicProvider) Distance(s, t int) int { panic("corrupted provider") }
func (panicProvider) PathLinks(s, t int) []topology.Link {
	panic("corrupted provider")
}

func TestComputeRecoversWorkerPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	net, err := topology.RandomIrregular(12, 3, rng, topology.Config{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = Compute(net, panicProvider{})
	if err == nil {
		t.Fatal("worker panic not converted into an error")
	}
	if !strings.Contains(err.Error(), "panic") {
		t.Fatalf("error does not mention the panic: %v", err)
	}
}

func TestComputeDeltaMatchesFullRecompute(t *testing.T) {
	rng := rand.New(rand.NewSource(2000))
	net, err := topology.RandomIrregular(16, 3, rng, topology.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ud, err := routing.NewUpDown(net, -1)
	if err != nil {
		t.Fatal(err)
	}
	old, err := Compute(net, ud)
	if err != nil {
		t.Fatal(err)
	}

	// Remove one non-bridge link (keep IDs stable) and re-derive routing.
	var degraded *topology.Network
	for _, l := range net.Links() {
		var keep []topology.Link
		for _, k := range net.Links() {
			if k != l {
				keep = append(keep, k)
			}
		}
		cand, err := topology.New("degraded", net.Switches(), keep, topology.Config{
			Ports: net.Ports(), HostsPerSwitch: net.HostsPerSwitch(),
		})
		if err == nil && cand.Connected() {
			degraded = cand
			break
		}
	}
	if degraded == nil {
		t.Fatal("no removable link found")
	}
	ud2, err := routing.NewUpDown(degraded, -1)
	if err != nil {
		t.Fatal(err)
	}

	full, err := Compute(degraded, ud2)
	if err != nil {
		t.Fatal(err)
	}
	delta, recomputed, err := ComputeDelta(degraded, ud2, ud, old)
	if err != nil {
		t.Fatal(err)
	}
	n := degraded.Switches()
	total := n * (n - 1) / 2
	if recomputed <= 0 || recomputed > total {
		t.Fatalf("recomputed %d pairs of %d", recomputed, total)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if math.Abs(full.At(i, j)-delta.At(i, j)) > 1e-9 {
				t.Fatalf("delta table diverges at (%d,%d): %v vs %v", i, j, delta.At(i, j), full.At(i, j))
			}
		}
	}
	t.Logf("delta rebuild re-solved %d/%d pairs", recomputed, total)
}

func TestComputeDeltaNilOldFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net, err := topology.RandomIrregular(12, 3, rng, topology.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ud, err := routing.NewUpDown(net, -1)
	if err != nil {
		t.Fatal(err)
	}
	tab, recomputed, err := ComputeDelta(net, ud, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	n := net.Switches()
	if recomputed != n*(n-1)/2 {
		t.Fatalf("recomputed = %d, want all %d pairs", recomputed, n*(n-1)/2)
	}
	if tab.N() != n {
		t.Fatalf("table size %d", tab.N())
	}
}

func TestComputeDeltaSizeMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	net, err := topology.RandomIrregular(12, 3, rng, topology.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ud, err := routing.NewUpDown(net, -1)
	if err != nil {
		t.Fatal(err)
	}
	small, err := FromMatrix([][]float64{{0, 1}, {1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ComputeDelta(net, ud, ud, small); err == nil {
		t.Fatal("size mismatch accepted")
	}
}
