package distance

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"commsched/internal/routing"
	"commsched/internal/stats"
	"commsched/internal/topology"
)

func mustNet(t *testing.T, name string, n int, links []topology.Link) *topology.Network {
	t.Helper()
	net, err := topology.New(name, n, links, topology.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func updown(t *testing.T, net *topology.Network) *routing.UpDown {
	t.Helper()
	ud, err := routing.NewUpDown(net, -1)
	if err != nil {
		t.Fatal(err)
	}
	return ud
}

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestComputePathGraph(t *testing.T) {
	// On a path there is a single route per pair: resistance == hops.
	net := mustNet(t, "path", 4, []topology.Link{{A: 0, B: 1}, {A: 1, B: 2}, {A: 2, B: 3}})
	tab, err := Compute(net, updown(t, net))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := math.Abs(float64(i - j))
			if !almostEq(tab.At(i, j), want, 1e-9) {
				t.Fatalf("T[%d][%d] = %v, want %v", i, j, tab.At(i, j), want)
			}
		}
	}
}

func TestComputeCapturesPathMultiplicity(t *testing.T) {
	// Diamond: 0-1-3 and 0-2-3, plus nothing else. Rooted anywhere,
	// up*/down* allows both 2-hop routes 0→3 (up to root then down).
	// Two disjoint 2-resistor chains in parallel = 1 Ω < 2 hops.
	net := mustNet(t, "diamond", 4, []topology.Link{{A: 0, B: 1}, {A: 0, B: 2}, {A: 1, B: 3}, {A: 2, B: 3}})
	ud, err := routing.NewUpDown(net, 0)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := Compute(net, ud)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(tab.At(0, 3), 1, 1e-9) {
		t.Fatalf("T[0][3] = %v, want 1 (two parallel 2-hop routes)", tab.At(0, 3))
	}
	// Adjacent pair with a single minimal route: plain 1 Ω.
	if !almostEq(tab.At(0, 1), 1, 1e-9) {
		t.Fatalf("T[0][1] = %v, want 1", tab.At(0, 1))
	}
}

func TestEquivalentLEQHops(t *testing.T) {
	// Equivalent distance never exceeds the legal hop distance (extra
	// parallel paths can only reduce resistance).
	net, err := topology.RandomIrregular(16, 3, rand.New(rand.NewSource(21)), topology.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ud := updown(t, net)
	tab, err := Compute(net, ud)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		for j := 0; j < 16; j++ {
			if tab.At(i, j) > float64(ud.Distance(i, j))+1e-9 {
				t.Fatalf("T[%d][%d] = %v exceeds legal hop distance %d",
					i, j, tab.At(i, j), ud.Distance(i, j))
			}
		}
	}
}

func TestTableSymmetricZeroDiagonal(t *testing.T) {
	net, err := topology.RandomIrregular(12, 3, rand.New(rand.NewSource(4)), topology.Config{})
	if err != nil {
		t.Fatal(err)
	}
	tab, err := Compute(net, updown(t, net))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if tab.At(i, i) != 0 {
			t.Fatalf("diagonal T[%d][%d] = %v", i, i, tab.At(i, i))
		}
		for j := 0; j < 12; j++ {
			if tab.At(i, j) != tab.At(j, i) {
				t.Fatalf("asymmetric at (%d,%d)", i, j)
			}
			if i != j && tab.At(i, j) <= 0 {
				t.Fatalf("non-positive off-diagonal at (%d,%d): %v", i, j, tab.At(i, j))
			}
		}
	}
}

func TestComputeDeterministicUnderParallelism(t *testing.T) {
	// Compute fans pairs across goroutines; repeated runs must produce
	// bit-identical tables.
	net, err := topology.RandomIrregular(20, 3, rand.New(rand.NewSource(31)), topology.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ud := updown(t, net)
	a, err := Compute(net, ud)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compute(net, ud)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		for j := 0; j < 20; j++ {
			if a.At(i, j) != b.At(i, j) {
				t.Fatalf("parallel Compute nondeterministic at (%d,%d)", i, j)
			}
		}
	}
}

func TestComputeCGPathMatchesDense(t *testing.T) {
	// Force both solver paths on the same mid-size network and compare.
	net, err := topology.RandomIrregular(30, 3, rand.New(rand.NewSource(41)), topology.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ud := updown(t, net)
	old := cgThreshold
	defer func() { cgThreshold = old }()
	cgThreshold = 1 << 30
	dense, err := Compute(net, ud)
	if err != nil {
		t.Fatal(err)
	}
	cgThreshold = 0
	sparse, err := Compute(net, ud)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		for j := 0; j < 30; j++ {
			if !almostEq(dense.At(i, j), sparse.At(i, j), 1e-6) {
				t.Fatalf("solvers disagree at (%d,%d): dense %v, cg %v",
					i, j, dense.At(i, j), sparse.At(i, j))
			}
		}
	}
}

func TestComputeLargeNetwork(t *testing.T) {
	// 80 switches exercises the default CG path end to end.
	net, err := topology.RandomIrregular(80, 3, rand.New(rand.NewSource(42)), topology.Config{})
	if err != nil {
		t.Fatal(err)
	}
	tab, err := Compute(net, updown(t, net))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 80; i++ {
		for j := i + 1; j < 80; j++ {
			if tab.At(i, j) <= 0 {
				t.Fatalf("non-positive distance at (%d,%d)", i, j)
			}
		}
	}
}

func TestHopTable(t *testing.T) {
	net := mustNet(t, "path", 3, []topology.Link{{A: 0, B: 1}, {A: 1, B: 2}})
	tab := HopTable(net, routing.NewShortestPath(net))
	if tab.At(0, 2) != 2 || tab.At(0, 1) != 1 || tab.At(1, 1) != 0 {
		t.Fatalf("hop table wrong: %v", tab.String())
	}
}

func TestQuadraticMean(t *testing.T) {
	tab, err := FromMatrix([][]float64{
		{0, 1, 2},
		{1, 0, 3},
		{2, 3, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	// (1 + 4 + 9) / 3 pairs
	if !almostEq(tab.QuadraticMean(), 14.0/3, 1e-12) {
		t.Fatalf("QuadraticMean = %v, want %v", tab.QuadraticMean(), 14.0/3)
	}
	if !almostEq(tab.SumSquares(), 14, 1e-12) {
		t.Fatalf("SumSquares = %v, want 14", tab.SumSquares())
	}
}

func TestQuadraticMeanTinyTable(t *testing.T) {
	tab, err := FromMatrix([][]float64{{0}})
	if err != nil {
		t.Fatal(err)
	}
	if tab.QuadraticMean() != 0 {
		t.Fatal("QuadraticMean of a 1-switch table must be 0")
	}
}

func TestFromMatrixValidation(t *testing.T) {
	if _, err := FromMatrix([][]float64{{0, 1}, {1}}); err == nil {
		t.Fatal("ragged matrix accepted")
	}
	if _, err := FromMatrix([][]float64{{1}}); err == nil {
		t.Fatal("nonzero diagonal accepted")
	}
	if _, err := FromMatrix([][]float64{{0, -1}, {-1, 0}}); err == nil {
		t.Fatal("negative distance accepted")
	}
	if _, err := FromMatrix([][]float64{{0, 1}, {2, 0}}); err == nil {
		t.Fatal("asymmetric matrix accepted")
	}
}

func TestTriangleViolationsDetected(t *testing.T) {
	// T[0][2] = 10 > T[0][1] + T[1][2] = 2: the table is not a metric.
	tab, err := FromMatrix([][]float64{
		{0, 1, 10},
		{1, 0, 1},
		{10, 1, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := tab.TriangleViolations(1e-9); got != 2 { // (0,1,2) and (2,1,0)
		t.Fatalf("TriangleViolations = %d, want 2", got)
	}
	metric, _ := FromMatrix([][]float64{
		{0, 1, 1},
		{1, 0, 1},
		{1, 1, 0},
	})
	if metric.TriangleViolations(1e-9) != 0 {
		t.Fatal("metric table reported violations")
	}
}

func TestEquivalentDistanceCanViolateTriangleInequality(t *testing.T) {
	// The paper notes the table of distances is not a metric. The routing
	// restriction makes this easy to exhibit: on a ring of 6 rooted at 0,
	// up*/down* forbids the direct 2-3-4 walk for the pair (2,4) (it would
	// go down then up), so the only legal route is the 4-hop detour
	// through the root: T(2,4) = 4. Meanwhile 2-3 and 3-4 are direct
	// links: T(2,3) = T(3,4) = 1, and 4 > 1 + 1.
	net, err := topology.Ring(6, topology.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ud, err := routing.NewUpDown(net, 0)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := Compute(net, ud)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(tab.At(2, 3), 1, 1e-9) || !almostEq(tab.At(3, 4), 1, 1e-9) {
		t.Fatalf("direct links: T(2,3)=%v T(3,4)=%v, want 1", tab.At(2, 3), tab.At(3, 4))
	}
	if tab.At(2, 4) <= tab.At(2, 3)+tab.At(3, 4)+1e-9 {
		t.Fatalf("expected triangle violation; T(2,4)=%v", tab.At(2, 4))
	}
	if got := tab.TriangleViolations(1e-9); got == 0 {
		t.Fatal("TriangleViolations failed to count the (2,3,4) violation")
	}
}

func TestMaxDistance(t *testing.T) {
	tab, _ := FromMatrix([][]float64{
		{0, 1, 2},
		{1, 0, 3},
		{2, 3, 0},
	})
	if tab.MaxDistance() != 3 {
		t.Fatalf("MaxDistance = %v, want 3", tab.MaxDistance())
	}
}

func TestTableJSONRoundTrip(t *testing.T) {
	net, err := topology.RandomIrregular(8, 3, rand.New(rand.NewSource(2)), topology.Config{})
	if err != nil {
		t.Fatal(err)
	}
	tab, err := Compute(net, updown(t, net))
	if err != nil {
		t.Fatal(err)
	}
	data, err := tab.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalTableJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if !almostEq(tab.At(i, j), back.At(i, j), 1e-12) {
				t.Fatal("JSON round trip changed values")
			}
		}
	}
	if _, err := UnmarshalTableJSON([]byte(`{"n":3,"d":[[0]]}`)); err == nil {
		t.Fatal("inconsistent n accepted")
	}
	if _, err := UnmarshalTableJSON([]byte(`garbage`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

// The model's raison d'être: pairs with more minimal legal routes show a
// larger gap between hop distance and equivalent distance. Verified as a
// positive correlation between path multiplicity and (hops − resistance).
func TestPathMultiplicityDrivesResistanceGap(t *testing.T) {
	net, err := topology.RandomIrregular(16, 3, rand.New(rand.NewSource(51)), topology.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ud := updown(t, net)
	tab, err := Compute(net, ud)
	if err != nil {
		t.Fatal(err)
	}
	var multiplicity, gap []float64
	for i := 0; i < 16; i++ {
		for j := i + 1; j < 16; j++ {
			multiplicity = append(multiplicity, float64(ud.CountShortestLegalPaths(i, j)))
			gap = append(gap, float64(ud.Distance(i, j))-tab.At(i, j))
		}
	}
	r, err := stats.Pearson(multiplicity, gap)
	if err != nil {
		t.Fatal(err)
	}
	if r < 0.3 {
		t.Fatalf("multiplicity/gap correlation r = %.3f, want clearly positive", r)
	}
	// Single-route pairs must have gap exactly 0.
	for k, m := range multiplicity {
		if m == 1 && math.Abs(gap[k]) > 1e-9 {
			t.Fatalf("single-route pair has nonzero gap %v", gap[k])
		}
	}
}

// Property: equivalent distance of directly linked switches is <= 1 (the
// direct link is always among the shortest routes) and > 0.
func TestQuickDirectLinkResistance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		net, err := topology.RandomIrregular(12, 3, rng, topology.Config{})
		if err != nil {
			return false
		}
		ud, err := routing.NewUpDown(net, -1)
		if err != nil {
			return false
		}
		tab, err := Compute(net, ud)
		if err != nil {
			return false
		}
		for _, l := range net.Links() {
			d := tab.At(l.A, l.B)
			if d <= 0 || d > 1+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
