// Package distance implements the paper's model of communication cost: the
// table of equivalent distances (Arnau, Orduña, Ruiz, Duato — PDCS'99).
//
// For each pair of switches (i, j), only the links belonging to shortest
// paths *supplied by the routing algorithm* are kept; each kept link is
// replaced by a unit resistor; and the equivalent distance T[i][j] is the
// electrical equivalent resistance between i and j in that resistor
// network. A pair joined by many disjoint minimal routes therefore looks
// "closer" than a pair joined by a single route of the same hop length —
// capturing available bandwidth, not just latency.
//
// The table depends only on the topology and the routing algorithm, never
// on the traffic pattern, and in general does not satisfy the triangle
// inequality (it is not a metric).
package distance

import (
	"encoding/json"
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"commsched/internal/linalg"
	"commsched/internal/obs"
	"commsched/internal/routing"
	"commsched/internal/topology"
)

// Table is the symmetric N×N table of equivalent distances between
// switches.
type Table struct {
	n int
	d [][]float64
}

// Compute builds the table of equivalent distances for the network using
// the shortest paths supplied by the given routing algorithm. The N(N−1)/2
// effective-resistance solves are independent, so they are fanned out
// across GOMAXPROCS workers; the result is deterministic regardless of
// scheduling because each pair writes its own cells. A panic in a worker
// (e.g. a path provider misbehaving on a degraded topology) is recovered
// and surfaced as an error instead of crashing the process.
func Compute(net *topology.Network, provider routing.PathProvider) (*Table, error) {
	n := net.Switches()
	sp := obs.StartSpan("distance.compute", obs.F("switches", n), obs.F("pairs", n*(n-1)/2))
	t := newTable(n)
	err := forEachPair(n, func(i, j int) error {
		r, err := pairResistance(net, provider.PathLinks(i, j), i, j)
		if err != nil {
			return err
		}
		t.d[i][j] = r
		t.d[j][i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	sp.End()
	return t, nil
}

// ComputeDelta rebuilds the table after a topology change, re-solving only
// the pairs whose shortest-route link sets actually changed between the
// old and new path providers and copying the rest from the old table. Both
// providers must be defined over the same switch-ID space (use it only
// when no switch died, so IDs are stable); the returned count is the
// number of re-solved pairs.
func ComputeDelta(net *topology.Network, provider, oldProvider routing.PathProvider, old *Table) (*Table, int, error) {
	n := net.Switches()
	if old == nil || oldProvider == nil {
		t, err := Compute(net, provider)
		return t, n * (n - 1) / 2, err
	}
	if old.N() != n {
		return nil, 0, fmt.Errorf("distance: old table covers %d switches, network has %d", old.N(), n)
	}
	sp := obs.StartSpan("distance.compute_delta", obs.F("switches", n), obs.F("pairs", n*(n-1)/2))
	t := newTable(n)
	var recomputed atomic.Int64
	err := forEachPair(n, func(i, j int) error {
		links := provider.PathLinks(i, j)
		if sameLinkSet(links, oldProvider.PathLinks(i, j)) {
			t.d[i][j] = old.d[i][j]
			t.d[j][i] = old.d[j][i]
			return nil
		}
		recomputed.Add(1)
		r, err := pairResistance(net, links, i, j)
		if err != nil {
			return err
		}
		t.d[i][j] = r
		t.d[j][i] = r
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	sp.End(obs.F("recomputed", int(recomputed.Load())), obs.F("reused", n*(n-1)/2-int(recomputed.Load())))
	return t, int(recomputed.Load()), nil
}

// sameLinkSet reports whether two canonical link slices contain the same
// links, ignoring order.
func sameLinkSet(a, b []topology.Link) bool {
	if len(a) != len(b) {
		return false
	}
	if len(a) == 0 {
		return true
	}
	seen := make(map[topology.Link]bool, len(a))
	for _, l := range a {
		seen[l] = true
	}
	for _, l := range b {
		if !seen[l] {
			return false
		}
	}
	return true
}

// forEachPair fans fn out over all i<j pairs across GOMAXPROCS workers,
// converting worker panics into errors and stopping early on the first
// failure.
func forEachPair(n int, fn func(i, j int) error) error {
	type pair struct{ i, j int }
	pairs := make([]pair, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pairs = append(pairs, pair{i, j})
		}
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(pairs) {
		workers = len(pairs)
	}
	if workers < 1 {
		workers = 1
	}
	var (
		wg     sync.WaitGroup
		next   atomic.Int64
		failed atomic.Pointer[error]
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					err := fmt.Errorf("distance: worker panic: %v", r)
					failed.CompareAndSwap(nil, &err)
				}
			}()
			for {
				k := int(next.Add(1)) - 1
				if k >= len(pairs) || failed.Load() != nil {
					return
				}
				p := pairs[k]
				if err := fn(p.i, p.j); err != nil {
					failed.CompareAndSwap(nil, &err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if errp := failed.Load(); errp != nil {
		return *errp
	}
	return nil
}

// cgThreshold selects the solver: networks above this switch count use
// the sparse conjugate-gradient path (the dense Cholesky solve is cubic
// in the subgraph size). Overridable in tests.
var cgThreshold = 64

// pairResistance computes one cell: the effective resistance between i and
// j over the links of their shortest supplied routes.
func pairResistance(net *topology.Network, links []topology.Link, i, j int) (float64, error) {
	if len(links) == 0 {
		return 0, fmt.Errorf("distance: no route between switches %d and %d", i, j)
	}
	edges := make([]linalg.WeightedEdge, len(links))
	for k, l := range links {
		edges[k] = linalg.WeightedEdge{U: l.A, V: l.B, Weight: 1}
	}
	var (
		r   float64
		err error
	)
	if net.Switches() > cgThreshold {
		r, err = linalg.EffectiveResistanceCG(net.Switches(), edges, i, j)
	} else {
		r, err = linalg.EffectiveResistance(net.Switches(), edges, i, j)
	}
	if err != nil {
		return 0, fmt.Errorf("distance: resistance between %d and %d: %w", i, j, err)
	}
	return r, nil
}

// HopTable builds a plain hop-count table from the same path provider —
// the ablation baseline that ignores path multiplicity.
func HopTable(net *topology.Network, provider routing.PathProvider) *Table {
	n := net.Switches()
	t := newTable(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				t.d[i][j] = float64(provider.Distance(i, j))
			}
		}
	}
	return t
}

// FromMatrix wraps an explicit symmetric matrix of distances (used by
// tests and by deserialization). The diagonal must be zero.
func FromMatrix(d [][]float64) (*Table, error) {
	n := len(d)
	t := newTable(n)
	for i := range d {
		if len(d[i]) != n {
			return nil, fmt.Errorf("distance: row %d has %d entries, want %d", i, len(d[i]), n)
		}
		if d[i][i] != 0 {
			return nil, fmt.Errorf("distance: diagonal entry (%d,%d) = %v, want 0", i, i, d[i][i])
		}
		for j := range d[i] {
			if d[i][j] < 0 {
				return nil, fmt.Errorf("distance: negative distance at (%d,%d)", i, j)
			}
			if math.Abs(d[i][j]-d[j][i]) > 1e-9 {
				return nil, fmt.Errorf("distance: asymmetric entries at (%d,%d)", i, j)
			}
			t.d[i][j] = d[i][j]
		}
	}
	return t, nil
}

func newTable(n int) *Table {
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
	}
	return &Table{n: n, d: d}
}

// N returns the number of switches the table covers.
func (t *Table) N() int { return t.n }

// At returns the equivalent distance between switches i and j.
func (t *Table) At(i, j int) float64 { return t.d[i][j] }

// QuadraticMean returns the quadratic average of all pairwise distances,
//
//	Σ_{i<j} T[i][j]² / (N(N−1)/2),
//
// the normalization constant of the paper's global quality functions.
func (t *Table) QuadraticMean() float64 {
	if t.n < 2 {
		return 0
	}
	s := 0.0
	for i := 0; i < t.n; i++ {
		for j := i + 1; j < t.n; j++ {
			s += t.d[i][j] * t.d[i][j]
		}
	}
	return s / float64(t.n*(t.n-1)/2)
}

// SumSquares returns Σ_{i<j} T[i][j]².
func (t *Table) SumSquares() float64 {
	s := 0.0
	for i := 0; i < t.n; i++ {
		for j := i + 1; j < t.n; j++ {
			s += t.d[i][j] * t.d[i][j]
		}
	}
	return s
}

// TriangleViolations counts ordered triples (i,j,k) with
// T[i][k] > T[i][j] + T[j][k] + eps — the paper's observation that the
// table does not define a metric space.
func (t *Table) TriangleViolations(eps float64) int {
	count := 0
	for i := 0; i < t.n; i++ {
		for j := 0; j < t.n; j++ {
			if j == i {
				continue
			}
			for k := 0; k < t.n; k++ {
				if k == i || k == j {
					continue
				}
				if t.d[i][k] > t.d[i][j]+t.d[j][k]+eps {
					count++
				}
			}
		}
	}
	return count
}

// MaxDistance returns the largest entry.
func (t *Table) MaxDistance() float64 {
	max := 0.0
	for i := 0; i < t.n; i++ {
		for j := i + 1; j < t.n; j++ {
			if t.d[i][j] > max {
				max = t.d[i][j]
			}
		}
	}
	return max
}

// MarshalJSON encodes the table as {"n":N,"d":[[...]]}.
func (t *Table) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		N int         `json:"n"`
		D [][]float64 `json:"d"`
	}{t.n, t.d})
}

// UnmarshalTableJSON decodes a table written by MarshalJSON.
func UnmarshalTableJSON(data []byte) (*Table, error) {
	var w struct {
		N int         `json:"n"`
		D [][]float64 `json:"d"`
	}
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("distance: decoding table: %w", err)
	}
	if len(w.D) != w.N {
		return nil, fmt.Errorf("distance: table claims n=%d but has %d rows", w.N, len(w.D))
	}
	return FromMatrix(w.D)
}

// String renders the table with 3 decimal places for inspection.
func (t *Table) String() string {
	var b strings.Builder
	for i := 0; i < t.n; i++ {
		for j := 0; j < t.n; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%6.3f", t.d[i][j])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
