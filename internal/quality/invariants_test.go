package quality

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"commsched/internal/distance"
	"commsched/internal/mapping"
	"commsched/internal/routing"
	"commsched/internal/topology"
)

// Invariant checks of the quality evaluator against the raw definitions,
// over random instances and random partitions: the intra/inter split of
// the total squared distance, and agreement of the incremental swap delta
// (the quantity Tabu's inner loop accumulates) with from-scratch
// re-evaluation over whole move chains.

const invEps = 1e-9

// randomInstance builds an evaluator plus its distance table for one
// random irregular network.
func randomInstance(t *testing.T, switches int, seed int64) (*distance.Table, *Evaluator) {
	t.Helper()
	net, err := topology.RandomIrregular(switches, 3, rand.New(rand.NewSource(seed)), topology.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := routing.NewUpDown(net, -1)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := distance.Compute(net, rt)
	if err != nil {
		t.Fatal(err)
	}
	return tab, NewEvaluator(tab)
}

// bruteInterSum sums T² over unordered pairs in different clusters.
func bruteInterSum(e *Evaluator, p *mapping.Partition) float64 {
	s := 0.0
	for i := 0; i < p.N(); i++ {
		for j := i + 1; j < p.N(); j++ {
			if p.Cluster(i) != p.Cluster(j) {
				s += e.PairSquared(i, j)
			}
		}
	}
	return s
}

// TestIntraPlusInterEqualsSumSquares: every unordered pair is either
// intra- or inter-cluster, so IntraSum + InterSum must equal Σ_{i<j} T²
// for any partition — the identity Dissimilarity relies on to avoid a
// second O(N²) pass.
func TestIntraPlusInterEqualsSumSquares(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			tab, e := randomInstance(t, 16, seed)
			rng := rand.New(rand.NewSource(seed * 977))
			for trial := 0; trial < 10; trial++ {
				// Random composition of 16 switches into 2–5 clusters of
				// arbitrary (positive) sizes.
				m := 2 + rng.Intn(4)
				sizes := make([]int, m)
				for i := range sizes {
					sizes[i] = 1
				}
				for left := 16 - m; left > 0; left-- {
					sizes[rng.Intn(m)]++
				}
				p, err := mapping.RandomSizes(sizes, rng)
				if err != nil {
					t.Fatal(err)
				}
				intra := e.IntraSum(p)
				inter := bruteInterSum(e, p)
				if got, want := intra+inter, tab.SumSquares(); math.Abs(got-want) > invEps {
					t.Fatalf("trial %d (m=%d): intra %v + inter %v = %v, want SumSquares %v",
						trial, m, intra, inter, got, want)
				}
			}
		})
	}
}

// TestSwapDeltaChainMatchesFromScratch replays Tabu-style move chains:
// starting from a random partition, apply a sequence of random
// inter-cluster swaps, maintaining the objective incrementally through
// SwapDelta exactly as the search does, and check after every move that
// the running value matches a from-scratch IntraSum of the mutated
// partition. This catches both per-move delta errors and error
// accumulation across a chain.
func TestSwapDeltaChainMatchesFromScratch(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			_, e := randomInstance(t, 16, seed)
			rng := rand.New(rand.NewSource(seed * 1543))
			p, err := mapping.Random(16, 4, rng)
			if err != nil {
				t.Fatal(err)
			}
			running := e.IntraSum(p)
			for move := 0; move < 64; move++ {
				u, v := rng.Intn(16), rng.Intn(16)
				delta := e.SwapDelta(p, u, v)
				if p.Cluster(u) == p.Cluster(v) {
					if delta != 0 {
						t.Fatalf("move %d: same-cluster swap (%d,%d) has delta %v", move, u, v, delta)
					}
					continue
				}
				p.Swap(u, v)
				running += delta
				if fresh := e.IntraSum(p); math.Abs(running-fresh) > invEps {
					t.Fatalf("move %d: incremental objective %v drifted from fresh %v (swap %d,%d)",
						move, running, fresh, u, v)
				}
			}
		})
	}
}

// TestSwapDeltaIsAntisymmetric: undoing a swap must cost exactly the
// negated delta of doing it.
func TestSwapDeltaIsAntisymmetric(t *testing.T) {
	_, e := randomInstance(t, 12, 9)
	rng := rand.New(rand.NewSource(99))
	p, err := mapping.Random(12, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 32; trial++ {
		u, v := rng.Intn(12), rng.Intn(12)
		if p.Cluster(u) == p.Cluster(v) {
			continue
		}
		fwd := e.SwapDelta(p, u, v)
		p.Swap(u, v)
		back := e.SwapDelta(p, u, v)
		p.Swap(u, v)
		if math.Abs(fwd+back) > invEps {
			t.Fatalf("trial %d: forward delta %v, backward delta %v, sum %v != 0", trial, fwd, back, fwd+back)
		}
	}
}
