package quality

import (
	"fmt"

	"commsched/internal/distance"
	"commsched/internal/mapping"
)

// WeightedEvaluator generalizes the paper's quality functions to logical
// clusters with unequal communication requirements — the future-work
// scenario the paper's simplifying assumptions defer ("all the processes
// have the same communication requirements"). Cluster c's intra-cluster
// distance terms are scaled by Weights[c], so the search concentrates the
// heaviest-communicating application on the best-connected switches.
//
// With all weights equal to 1 it reduces exactly to Evaluator's
// similarity objective (tested invariant).
type WeightedEvaluator struct {
	base    *Evaluator
	weights []float64
}

// NewWeightedEvaluator wraps an evaluator with per-cluster traffic
// weights. Weights must be positive; their scale is irrelevant (only
// ratios matter for ranking mappings).
func NewWeightedEvaluator(tab *distance.Table, weights []float64) (*WeightedEvaluator, error) {
	if len(weights) == 0 {
		return nil, fmt.Errorf("quality: no cluster weights")
	}
	for c, w := range weights {
		if w <= 0 {
			return nil, fmt.Errorf("quality: weight of cluster %d is %v, want > 0", c, w)
		}
	}
	return &WeightedEvaluator{base: NewEvaluator(tab), weights: weights}, nil
}

// Base returns the unweighted evaluator over the same table.
func (we *WeightedEvaluator) Base() *Evaluator { return we.base }

// Weights returns a copy of the cluster weights.
func (we *WeightedEvaluator) Weights() []float64 {
	out := make([]float64, len(we.weights))
	copy(out, we.weights)
	return out
}

// checkClusters panics when the partition's cluster count does not match
// the weight vector — a programming error.
func (we *WeightedEvaluator) checkClusters(p *mapping.Partition) {
	if p.M() != len(we.weights) {
		panic(fmt.Sprintf("quality: partition has %d clusters, weights cover %d", p.M(), len(we.weights)))
	}
}

// IntraSum returns Σ_c w_c · F_{A_c}: the traffic-weighted intra-cluster
// cost, the objective a weighted search minimizes. The name matches
// Evaluator's so both satisfy search.Objective.
func (we *WeightedEvaluator) IntraSum(p *mapping.Partition) float64 {
	we.checkClusters(p)
	s := 0.0
	for c := 0; c < p.M(); c++ {
		s += we.weights[c] * we.base.ClusterSimilarity(p, c)
	}
	return s
}

// SwapDelta returns the change of WeightedIntraSum if u and v were
// swapped, in O(|A_u| + |A_v|) like the unweighted version.
func (we *WeightedEvaluator) SwapDelta(p *mapping.Partition, u, v int) float64 {
	cu, cv := p.Cluster(u), p.Cluster(v)
	if cu == cv {
		return 0
	}
	delta := 0.0
	for _, w := range p.MembersUnordered(cu) {
		if w == u {
			continue
		}
		delta += we.weights[cu] * (we.base.PairSquared(v, w) - we.base.PairSquared(u, w))
	}
	for _, w := range p.MembersUnordered(cv) {
		if w == v {
			continue
		}
		delta += we.weights[cv] * (we.base.PairSquared(u, w) - we.base.PairSquared(v, w))
	}
	return delta
}
