// Package quality implements the paper's Section 4.1 criterion for
// measuring how well a mapping of processes to processors fits the
// network: the similarity function F_G over intra-cluster equivalent
// distances, the dissimilarity function D_G over inter-cluster distances,
// and their quotient Cc = D_G / F_G — the clustering coefficient, a proxy
// for the intra-/inter-cluster bandwidth relationship that the scheduler
// maximizes.
package quality

import (
	"fmt"

	"commsched/internal/distance"
	"commsched/internal/mapping"
)

// Evaluator computes the paper's quality functions for partitions over a
// fixed table of equivalent distances. Construction precomputes the
// squared distances and the global normalization constant.
type Evaluator struct {
	n  int
	t2 [][]float64 // squared distances
	// sumSq = Σ_{i<j} T².  quadMean = sumSq / (N(N−1)/2).
	sumSq    float64
	quadMean float64
}

// NewEvaluator prepares an evaluator for the given distance table.
func NewEvaluator(tab *distance.Table) *Evaluator {
	n := tab.N()
	e := &Evaluator{n: n, t2: make([][]float64, n)}
	for i := 0; i < n; i++ {
		e.t2[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			d := tab.At(i, j)
			e.t2[i][j] = d * d
		}
	}
	e.sumSq = tab.SumSquares()
	e.quadMean = tab.QuadraticMean()
	return e
}

// N returns the number of switches the evaluator covers.
func (e *Evaluator) N() int { return e.n }

// PairSquared returns the squared equivalent distance T²(i,j) — the term
// the paper's quality functions sum over.
func (e *Evaluator) PairSquared(i, j int) float64 { return e.t2[i][j] }

// QuadraticMean returns the normalization constant (the quadratic average
// of all pairwise distances).
func (e *Evaluator) QuadraticMean() float64 { return e.quadMean }

// ClusterSimilarity returns F_{A_c}: the sum of squared intra-cluster
// distances of cluster c (paper Eq. 1).
func (e *Evaluator) ClusterSimilarity(p *mapping.Partition, c int) float64 {
	ms := p.MembersUnordered(c)
	s := 0.0
	for i := 0; i < len(ms); i++ {
		row := e.t2[ms[i]]
		for j := i + 1; j < len(ms); j++ {
			s += row[ms[j]]
		}
	}
	return s
}

// IntraSum returns Σ_c F_{A_c}: the total squared intra-cluster distance —
// the raw objective the searchers minimize (the denominators of F_G are
// constant under swap moves, so minimizing IntraSum minimizes F_G).
func (e *Evaluator) IntraSum(p *mapping.Partition) float64 {
	s := 0.0
	for c := 0; c < p.M(); c++ {
		s += e.ClusterSimilarity(p, c)
	}
	return s
}

// intraPairs returns Σ_c x_c(x_c−1)/2, the number of intra-cluster pairs
// (paper Eq. 3).
func intraPairs(p *mapping.Partition) int {
	n := 0
	for c := 0; c < p.M(); c++ {
		x := p.Size(c)
		n += x * (x - 1) / 2
	}
	return n
}

// interOrderedPairs returns Σ_c x_c(N−x_c), the number of ordered
// inter-cluster pairs (the denominator of D_G, paper Eq. 5).
func interOrderedPairs(p *mapping.Partition) int {
	n := 0
	for c := 0; c < p.M(); c++ {
		x := p.Size(c)
		n += x * (p.N() - x)
	}
	return n
}

// Similarity returns the global similarity function F_G (paper Eq. 2):
// the mean squared intra-cluster distance normalized by the quadratic
// average of all distances. Values near 0 mean compact clusters; values
// above 1 mean a worse-than-random mapping.
func (e *Evaluator) Similarity(p *mapping.Partition) float64 {
	e.check(p)
	pairs := intraPairs(p)
	if pairs == 0 || e.quadMean == 0 {
		return 0
	}
	return e.IntraSum(p) / float64(pairs) / e.quadMean
}

// ClusterDissimilarity returns D_{A_c}: the sum of squared distances from
// cluster c's switches to every switch outside c (paper Eq. 4).
func (e *Evaluator) ClusterDissimilarity(p *mapping.Partition, c int) float64 {
	s := 0.0
	for _, u := range p.MembersUnordered(c) {
		row := e.t2[u]
		for v := 0; v < e.n; v++ {
			if p.Cluster(v) != c {
				s += row[v]
			}
		}
	}
	return s
}

// Dissimilarity returns the global dissimilarity function D_G (paper
// Eq. 5). Values near 1 mean inter-cluster distances close to the global
// average; larger values mean better separated clusters.
//
// Identity used: Σ_c D_{A_c} counts every unordered inter-cluster pair
// twice, and Σ_{i<j}T² = IntraSum + interSum, so D_G is derived from the
// intra sum without a second O(N²) pass.
func (e *Evaluator) Dissimilarity(p *mapping.Partition) float64 {
	e.check(p)
	ordered := interOrderedPairs(p)
	if ordered == 0 || e.quadMean == 0 {
		return 0
	}
	interSum := e.sumSq - e.IntraSum(p) // unordered
	return 2 * interSum / float64(ordered) / e.quadMean
}

// ClusteringCoefficient returns Cc = D_G / F_G, the intra/inter bandwidth
// relationship the scheduler maximizes. It returns +Inf-free semantics:
// when F_G is zero (degenerate single-switch clusters), it returns 0 so
// that callers can treat the value as "undefined/worst" rather than
// propagate infinities.
func (e *Evaluator) ClusteringCoefficient(p *mapping.Partition) float64 {
	f := e.Similarity(p)
	if f == 0 {
		return 0
	}
	return e.Dissimilarity(p) / f
}

// SwapDelta returns the change in IntraSum if switches u and v (in
// different clusters) were swapped, in O(|A_u| + |A_v|) time. A negative
// delta improves (reduces) the similarity objective. Swapping within one
// cluster returns 0.
func (e *Evaluator) SwapDelta(p *mapping.Partition, u, v int) float64 {
	cu, cv := p.Cluster(u), p.Cluster(v)
	if cu == cv {
		return 0
	}
	rowU, rowV := e.t2[u], e.t2[v]
	delta := 0.0
	for _, w := range p.MembersUnordered(cu) {
		if w == u {
			continue
		}
		delta += rowV[w] - rowU[w]
	}
	for _, w := range p.MembersUnordered(cv) {
		if w == v {
			continue
		}
		delta += rowU[w] - rowV[w]
	}
	// The pair (u,v) itself: it was inter-cluster before and stays
	// inter-cluster after (u and v trade places), so it contributes no
	// change — but the member loops above each counted T²(u,v) once with
	// the wrong sign context: cluster cu's loop adds rowV[w] for w≠u which
	// never includes v (v ∉ cu), and likewise for cv's loop. No correction
	// needed.
	return delta
}

// check panics when the partition does not match the evaluator's table —
// a programming error, not a runtime condition.
func (e *Evaluator) check(p *mapping.Partition) {
	if p.N() != e.n {
		panic(fmt.Sprintf("quality: partition covers %d switches, table covers %d", p.N(), e.n))
	}
}
