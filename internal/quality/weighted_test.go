package quality

import (
	"math/rand"
	"testing"

	"commsched/internal/distance"
	"commsched/internal/mapping"
	"commsched/internal/routing"
	"commsched/internal/topology"
)

func weightedFixture(t *testing.T, weights []float64) (*WeightedEvaluator, *distance.Table) {
	t.Helper()
	net, err := topology.RandomIrregular(16, 3, rand.New(rand.NewSource(12)), topology.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ud, err := routing.NewUpDown(net, -1)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := distance.Compute(net, ud)
	if err != nil {
		t.Fatal(err)
	}
	we, err := NewWeightedEvaluator(tab, weights)
	if err != nil {
		t.Fatal(err)
	}
	return we, tab
}

func TestNewWeightedEvaluatorValidation(t *testing.T) {
	_, tab := weightedFixture(t, []float64{1, 1, 1, 1})
	if _, err := NewWeightedEvaluator(tab, nil); err == nil {
		t.Fatal("empty weights accepted")
	}
	if _, err := NewWeightedEvaluator(tab, []float64{1, 0}); err == nil {
		t.Fatal("zero weight accepted")
	}
	if _, err := NewWeightedEvaluator(tab, []float64{1, -2}); err == nil {
		t.Fatal("negative weight accepted")
	}
}

func TestWeightedUnitWeightsMatchUnweighted(t *testing.T) {
	we, _ := weightedFixture(t, []float64{1, 1, 1, 1})
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		p, err := mapping.Random(16, 4, rng)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEq(we.IntraSum(p), we.Base().IntraSum(p), 1e-9) {
			t.Fatalf("unit weights: weighted %v != unweighted %v", we.IntraSum(p), we.Base().IntraSum(p))
		}
	}
}

func TestWeightedSwapDeltaMatchesRecompute(t *testing.T) {
	we, _ := weightedFixture(t, []float64{1, 3, 0.5, 2})
	rng := rand.New(rand.NewSource(4))
	p, err := mapping.Random(16, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 100; trial++ {
		u, v := rng.Intn(16), rng.Intn(16)
		before := we.IntraSum(p)
		delta := we.SwapDelta(p, u, v)
		p.Swap(u, v)
		after := we.IntraSum(p)
		if !almostEq(after-before, delta, 1e-9) {
			t.Fatalf("trial %d: delta %v, recompute %v", trial, delta, after-before)
		}
	}
}

func TestWeightedSwapSameClusterZero(t *testing.T) {
	we, _ := weightedFixture(t, []float64{1, 3, 0.5, 2})
	p, err := mapping.Balanced(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if we.SwapDelta(p, 0, 1) != 0 {
		t.Fatal("same-cluster swap must have zero delta")
	}
}

func TestWeightedHeavyClusterDominates(t *testing.T) {
	// With one cluster's weight huge, its intra cost dominates: scaling it
	// must scale the contribution linearly.
	weBig, _ := weightedFixture(t, []float64{1000, 1, 1, 1})
	weUnit, _ := weightedFixture(t, []float64{1, 1, 1, 1})
	p, err := mapping.Balanced(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	c0 := weUnit.Base().ClusterSimilarity(p, 0)
	diff := weBig.IntraSum(p) - weUnit.IntraSum(p)
	if !almostEq(diff, 999*c0, 1e-6) {
		t.Fatalf("heavy-cluster contribution %v, want %v", diff, 999*c0)
	}
}

func TestWeightsCopied(t *testing.T) {
	we, _ := weightedFixture(t, []float64{1, 2, 3, 4})
	w := we.Weights()
	w[0] = 99
	if we.Weights()[0] == 99 {
		t.Fatal("Weights exposed internal storage")
	}
}

func TestWeightedPanicsOnClusterMismatch(t *testing.T) {
	we, _ := weightedFixture(t, []float64{1, 1})
	p, err := mapping.Balanced(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on cluster-count mismatch")
		}
	}()
	we.IntraSum(p)
}
