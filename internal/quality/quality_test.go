package quality

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"commsched/internal/distance"
	"commsched/internal/mapping"
	"commsched/internal/routing"
	"commsched/internal/topology"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// table4 is a hand-checkable 4-switch table: two tight pairs (0,1) and
// (2,3) at distance 1, everything across at distance 3.
func table4(t *testing.T) *distance.Table {
	t.Helper()
	tab, err := distance.FromMatrix([][]float64{
		{0, 1, 3, 3},
		{1, 0, 3, 3},
		{3, 3, 0, 1},
		{3, 3, 1, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestSimilarityHandComputed(t *testing.T) {
	e := NewEvaluator(table4(t))
	good, _ := mapping.New([]int{0, 0, 1, 1}, 2)
	// IntraSum = T²(0,1) + T²(2,3) = 1 + 1 = 2. intraPairs = 2.
	// quadMean = (1+9+9+9+9+1)/6 = 38/6.
	if !almostEq(e.IntraSum(good), 2, 1e-12) {
		t.Fatalf("IntraSum = %v, want 2", e.IntraSum(good))
	}
	wantF := (2.0 / 2.0) / (38.0 / 6.0)
	if !almostEq(e.Similarity(good), wantF, 1e-12) {
		t.Fatalf("F_G = %v, want %v", e.Similarity(good), wantF)
	}
}

func TestDissimilarityHandComputed(t *testing.T) {
	e := NewEvaluator(table4(t))
	good, _ := mapping.New([]int{0, 0, 1, 1}, 2)
	// Inter pairs (unordered): (0,2),(0,3),(1,2),(1,3) each 9 → 36.
	// Σ D_Ai counts them twice = 72; ordered pairs = 2·2·2+... = Σ x(N−x) = 2·2+2·2 = 8.
	// D_G = 72/8 / (38/6) = 9 / (38/6).
	wantD := 9.0 / (38.0 / 6.0)
	if !almostEq(e.Dissimilarity(good), wantD, 1e-12) {
		t.Fatalf("D_G = %v, want %v", e.Dissimilarity(good), wantD)
	}
}

func TestDissimilarityMatchesDirectDefinition(t *testing.T) {
	// Cross-check the derived Dissimilarity against Eq. 4/5 computed
	// literally via ClusterDissimilarity.
	e := NewEvaluator(table4(t))
	for _, assign := range [][]int{{0, 0, 1, 1}, {0, 1, 0, 1}, {0, 1, 1, 0}} {
		p, _ := mapping.New(assign, 2)
		sum := 0.0
		for c := 0; c < p.M(); c++ {
			sum += e.ClusterDissimilarity(p, c)
		}
		ordered := 0
		for c := 0; c < p.M(); c++ {
			ordered += p.Size(c) * (p.N() - p.Size(c))
		}
		want := sum / float64(ordered) / e.QuadraticMean()
		if !almostEq(e.Dissimilarity(p), want, 1e-12) {
			t.Fatalf("assign %v: derived D_G = %v, literal = %v", assign, e.Dissimilarity(p), want)
		}
	}
}

func TestClusteringCoefficientOrdersMappings(t *testing.T) {
	e := NewEvaluator(table4(t))
	good, _ := mapping.New([]int{0, 0, 1, 1}, 2)
	bad, _ := mapping.New([]int{0, 1, 0, 1}, 2)
	cg, cb := e.ClusteringCoefficient(good), e.ClusteringCoefficient(bad)
	if cg <= cb {
		t.Fatalf("Cc(good)=%v must exceed Cc(bad)=%v", cg, cb)
	}
}

func TestSimilarityRandomBaselineNearOne(t *testing.T) {
	// The paper: F_G ≈ 1 means intracluster cost like a random mapping.
	// Averaged over many random mappings, F_G must be close to 1.
	net, err := topology.RandomIrregular(16, 3, rand.New(rand.NewSource(10)), topology.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ud, err := routing.NewUpDown(net, -1)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := distance.Compute(net, ud)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEvaluator(tab)
	rng := rand.New(rand.NewSource(99))
	sum := 0.0
	const trials = 200
	for i := 0; i < trials; i++ {
		p, err := mapping.Random(16, 4, rng)
		if err != nil {
			t.Fatal(err)
		}
		sum += e.Similarity(p)
	}
	mean := sum / trials
	if mean < 0.85 || mean > 1.15 {
		t.Fatalf("mean F_G over random mappings = %v, want ≈ 1", mean)
	}
}

func TestSingletonClustersDissimilarityOne(t *testing.T) {
	// With every switch its own cluster there are no intra pairs and D_G
	// must be exactly 1 (paper: Cc compares against this reference).
	tab := table4(t)
	e := NewEvaluator(tab)
	p, _ := mapping.New([]int{0, 1, 2, 3}, 4)
	if got := e.Similarity(p); got != 0 {
		t.Fatalf("singleton F_G = %v, want 0", got)
	}
	if got := e.Dissimilarity(p); !almostEq(got, 1, 1e-12) {
		t.Fatalf("singleton D_G = %v, want 1", got)
	}
	if got := e.ClusteringCoefficient(p); got != 0 {
		t.Fatalf("degenerate Cc = %v, want 0 sentinel", got)
	}
}

func TestSwapDeltaMatchesRecompute(t *testing.T) {
	net, err := topology.RandomIrregular(16, 3, rand.New(rand.NewSource(3)), topology.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ud, err := routing.NewUpDown(net, -1)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := distance.Compute(net, ud)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEvaluator(tab)
	rng := rand.New(rand.NewSource(17))
	p, err := mapping.Random(16, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 100; trial++ {
		u, v := rng.Intn(16), rng.Intn(16)
		before := e.IntraSum(p)
		delta := e.SwapDelta(p, u, v)
		p.Swap(u, v)
		after := e.IntraSum(p)
		if !almostEq(after-before, delta, 1e-9) {
			t.Fatalf("trial %d: SwapDelta(%d,%d) = %v, recompute = %v", trial, u, v, delta, after-before)
		}
	}
}

func TestSwapDeltaSameClusterZero(t *testing.T) {
	e := NewEvaluator(table4(t))
	p, _ := mapping.New([]int{0, 0, 1, 1}, 2)
	if e.SwapDelta(p, 0, 1) != 0 {
		t.Fatal("same-cluster swap must have zero delta")
	}
}

func TestEvaluatorPanicsOnSizeMismatch(t *testing.T) {
	e := NewEvaluator(table4(t))
	p, _ := mapping.New([]int{0, 1}, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on partition/table size mismatch")
		}
	}()
	e.Similarity(p)
}

// Property: for any table and any balanced partition, the identity
// IntraSum + InterSum(unordered) == SumSquares holds, making
// F_G and D_G consistent.
func TestQuickSimilarityDissimilarityConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8
		// Random symmetric table.
		d := make([][]float64, n)
		for i := range d {
			d[i] = make([]float64, n)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				v := rng.Float64()*4 + 0.1
				d[i][j], d[j][i] = v, v
			}
		}
		tab, err := distance.FromMatrix(d)
		if err != nil {
			return false
		}
		e := NewEvaluator(tab)
		p, err := mapping.Random(n, 2, rng)
		if err != nil {
			return false
		}
		intra := e.IntraSum(p)
		interSum := 0.0
		for c := 0; c < p.M(); c++ {
			interSum += e.ClusterDissimilarity(p, c)
		}
		return almostEq(intra+interSum/2, tab.SumSquares(), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: for equal cluster-size multisets, minimizing F_G is exactly
// maximizing Cc — the equivalence Section 4.2 relies on when it searches
// on F alone.
func TestQuickMinFEquivalentToMaxCc(t *testing.T) {
	net, err := topology.RandomIrregular(12, 3, rand.New(rand.NewSource(77)), topology.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ud, err := routing.NewUpDown(net, -1)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := distance.Compute(net, ud)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEvaluator(tab)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p1, err := mapping.Random(12, 4, rng)
		if err != nil {
			return false
		}
		p2, err := mapping.Random(12, 4, rng)
		if err != nil {
			return false
		}
		f1, f2 := e.Similarity(p1), e.Similarity(p2)
		c1, c2 := e.ClusteringCoefficient(p1), e.ClusteringCoefficient(p2)
		if f1 == f2 {
			return c1 == c2
		}
		return (f1 < f2) == (c1 > c2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Cc of the ground-truth ring partition on the designed
// 4-rings-of-6 network beats random partitions (the paper's Figure 4/5
// premise).
func TestRingPartitionBeatsRandom(t *testing.T) {
	net, err := topology.InterconnectedRings(4, 6, 1, topology.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ud, err := routing.NewUpDown(net, -1)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := distance.Compute(net, ud)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEvaluator(tab)
	assign := make([]int, 24)
	for r, ring := range topology.RingClusters(4, 6) {
		for _, s := range ring {
			assign[s] = r
		}
	}
	truth, err := mapping.New(assign, 4)
	if err != nil {
		t.Fatal(err)
	}
	ccTruth := e.ClusteringCoefficient(truth)
	rng := rand.New(rand.NewSource(123))
	for i := 0; i < 20; i++ {
		p, err := mapping.Random(24, 4, rng)
		if err != nil {
			t.Fatal(err)
		}
		if cc := e.ClusteringCoefficient(p); cc >= ccTruth {
			t.Fatalf("random mapping %d has Cc=%v >= ground truth %v", i, cc, ccTruth)
		}
	}
}
