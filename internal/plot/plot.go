// Package plot renders the paper's figures as ASCII charts for the
// terminal: scatter/line series over numeric axes (Figures 3 and 5's
// latency-vs-traffic curves, Figure 1's search trace). It exists so the
// reproduction can show its figures without any plotting dependency.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one labeled curve.
type Series struct {
	// Label names the curve; its first rune becomes the plot marker.
	Label string
	// X and Y are the sample coordinates (equal length).
	X, Y []float64
}

// Chart is an ASCII chart under construction.
type Chart struct {
	title          string
	xLabel, yLabel string
	width, height  int
	series         []Series
}

// New creates a chart with the given title and plot-area size in
// characters (sensible minimums are enforced at render time).
func New(title string, width, height int) *Chart {
	return &Chart{title: title, width: width, height: height}
}

// Axes sets the axis labels.
func (c *Chart) Axes(x, y string) *Chart {
	c.xLabel, c.yLabel = x, y
	return c
}

// Add appends a series. Mismatched X/Y lengths are rejected at render.
func (c *Chart) Add(s Series) *Chart {
	c.series = append(c.series, s)
	return c
}

// Render draws the chart. Every series point maps to the nearest cell;
// later series overdraw earlier ones on collisions. An empty chart or a
// series with mismatched lengths returns an error.
func (c *Chart) Render() (string, error) {
	if len(c.series) == 0 {
		return "", fmt.Errorf("plot: no series")
	}
	w, h := c.width, c.height
	if w < 20 {
		w = 20
	}
	if h < 5 {
		h = 5
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range c.series {
		if len(s.X) != len(s.Y) {
			return "", fmt.Errorf("plot: series %q has %d x values and %d y values", s.Label, len(s.X), len(s.Y))
		}
		for i := range s.X {
			points++
			minX, maxX = math.Min(minX, s.X[i]), math.Max(maxX, s.X[i])
			minY, maxY = math.Min(minY, s.Y[i]), math.Max(maxY, s.Y[i])
		}
	}
	if points == 0 {
		return "", fmt.Errorf("plot: series contain no points")
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]rune, h)
	for r := range grid {
		grid[r] = make([]rune, w)
		for col := range grid[r] {
			grid[r][col] = ' '
		}
	}
	for _, s := range c.series {
		marker := '*'
		if s.Label != "" {
			marker = []rune(s.Label)[0]
		}
		for i := range s.X {
			col := int((s.X[i] - minX) / (maxX - minX) * float64(w-1))
			row := h - 1 - int((s.Y[i]-minY)/(maxY-minY)*float64(h-1))
			grid[row][col] = marker
		}
	}
	var b strings.Builder
	if c.title != "" {
		fmt.Fprintf(&b, "%s\n", c.title)
	}
	yHi := fmt.Sprintf("%.3g", maxY)
	yLo := fmt.Sprintf("%.3g", minY)
	margin := len(yHi)
	if len(yLo) > margin {
		margin = len(yLo)
	}
	for r := 0; r < h; r++ {
		switch r {
		case 0:
			fmt.Fprintf(&b, "%*s |", margin, yHi)
		case h - 1:
			fmt.Fprintf(&b, "%*s |", margin, yLo)
		default:
			fmt.Fprintf(&b, "%*s |", margin, "")
		}
		b.WriteString(strings.TrimRight(string(grid[r]), " "))
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%*s +%s\n", margin, "", strings.Repeat("-", w))
	fmt.Fprintf(&b, "%*s  %-*.3g%*.3g\n", margin, "", w/2, minX, w-w/2, maxX)
	if c.xLabel != "" || c.yLabel != "" {
		fmt.Fprintf(&b, "%*s  x: %s, y: %s\n", margin, "", c.xLabel, c.yLabel)
	}
	// Legend.
	var legend []string
	for _, s := range c.series {
		if s.Label != "" {
			legend = append(legend, fmt.Sprintf("%c=%s", []rune(s.Label)[0], s.Label))
		}
	}
	if len(legend) > 0 {
		fmt.Fprintf(&b, "%*s  %s\n", margin, "", strings.Join(legend, " "))
	}
	return b.String(), nil
}
