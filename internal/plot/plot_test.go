package plot

import (
	"strings"
	"testing"
)

func TestRenderBasics(t *testing.T) {
	out, err := New("demo", 40, 10).
		Axes("load", "latency").
		Add(Series{Label: "OP", X: []float64{0, 1, 2}, Y: []float64{10, 20, 40}}).
		Add(Series{Label: "R1", X: []float64{0, 1, 2}, Y: []float64{10, 60, 90}}).
		Render()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"demo", "O=OP", "R=R1", "x: load, y: latency", "90", "10"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// Markers present.
	if !strings.Contains(out, "O") || !strings.Contains(out, "R") {
		t.Fatalf("markers missing:\n%s", out)
	}
}

func TestRenderErrors(t *testing.T) {
	if _, err := New("x", 40, 10).Render(); err == nil {
		t.Fatal("empty chart accepted")
	}
	if _, err := New("x", 40, 10).Add(Series{Label: "a", X: []float64{1}, Y: nil}).Render(); err == nil {
		t.Fatal("mismatched series accepted")
	}
	if _, err := New("x", 40, 10).Add(Series{Label: "a"}).Render(); err == nil {
		t.Fatal("pointless chart accepted")
	}
}

func TestRenderDegenerateRanges(t *testing.T) {
	// Constant X and Y must not divide by zero.
	out, err := New("flat", 30, 6).
		Add(Series{Label: "c", X: []float64{5, 5}, Y: []float64{3, 3}}).
		Render()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "c") {
		t.Fatalf("marker missing:\n%s", out)
	}
}

func TestRenderTinyDimensionsClamped(t *testing.T) {
	out, err := New("tiny", 1, 1).
		Add(Series{Label: "p", X: []float64{0, 1}, Y: []float64{0, 1}}).
		Render()
	if err != nil {
		t.Fatal(err)
	}
	if len(strings.Split(out, "\n")) < 6 {
		t.Fatalf("clamping failed:\n%s", out)
	}
}

func TestMarkerPlacementCorners(t *testing.T) {
	// A two-point series spanning the range must hit the top-right and
	// bottom-left of the plot area.
	out, err := New("", 20, 5).
		Add(Series{Label: "z", X: []float64{0, 1}, Y: []float64{0, 1}}).
		Render()
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(out, "\n")
	top := lines[0]
	if !strings.HasSuffix(strings.TrimRight(top, " "), "z") {
		t.Fatalf("top-right marker missing: %q", top)
	}
}
