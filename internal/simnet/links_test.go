package simnet

import (
	"errors"
	"testing"

	"commsched/internal/routing"
	"commsched/internal/topology"
	"commsched/internal/traffic"
)

func TestLinkLoadsReported(t *testing.T) {
	r := newRig(t, 12, 4, 3, 1, true)
	sim, err := New(r.net, r.rt, r.pattern, Config{
		InjectionRate: 0.2, WarmupCycles: 500, MeasureCycles: 3000, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := sim.Run()
	if len(m.LinkLoads) == 0 {
		t.Fatal("no link loads reported")
	}
	var total int64
	for i, ll := range m.LinkLoads {
		if ll.Utilization < 0 || ll.Utilization > 1+1e-9 {
			t.Fatalf("link %d→%d utilization %v outside [0,1]", ll.From, ll.To, ll.Utilization)
		}
		if !r.net.HasLink(ll.From, ll.To) {
			t.Fatalf("reported load on non-existent link %d→%d", ll.From, ll.To)
		}
		if i > 0 && ll.Utilization > m.LinkLoads[i-1].Utilization {
			t.Fatal("LinkLoads not sorted by descending utilization")
		}
		total += ll.Flits
	}
	if total == 0 {
		t.Fatal("zero flits crossed any link at nonzero load")
	}
}

func TestUpDownConcentratesLoadNearRoot(t *testing.T) {
	// The paper's Section 2 observation: up*/down* overloads links near
	// the root. On a ring rooted at 0 under global uniform traffic, the
	// two root links must carry the most traffic, and the link "opposite"
	// the root (between the two deepest switches) the least — it is never
	// on a legal route except for its endpoints.
	net, err := topology.Ring(6, topology.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := routing.NewUpDown(net, 0)
	if err != nil {
		t.Fatal(err)
	}
	pattern, err := traffic.NewUniform(net.Hosts())
	if err != nil {
		t.Fatal(err)
	}
	sim, err := New(net, rt, pattern, Config{
		InjectionRate: 0.1, WarmupCycles: 1000, MeasureCycles: 6000, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := sim.Run()
	util := map[[2]int]float64{}
	for _, ll := range m.LinkLoads {
		a, b := ll.From, ll.To
		if a > b {
			a, b = b, a
		}
		util[[2]int{a, b}] += ll.Utilization
	}
	rootLoad := util[[2]int{0, 1}] + util[[2]int{0, 5}]
	oppositeLoad := util[[2]int{2, 3}] + util[[2]int{3, 4}]
	if rootLoad <= oppositeLoad {
		t.Fatalf("root links load %v not above opposite links %v — up*/down* hot-root effect missing",
			rootLoad, oppositeLoad)
	}
}

func TestDeterministicRoutingLowersThroughput(t *testing.T) {
	// Adaptive routing over all minimal legal continuations must accept at
	// least as much saturated traffic as single-path deterministic routing.
	r := newRig(t, 16, 4, 2, 9, true)
	run := func(det bool) float64 {
		sim, err := New(r.net, r.rt, r.pattern, Config{
			InjectionRate: 0.5, WarmupCycles: 1000, MeasureCycles: 4000, Seed: 13,
			DeterministicRouting: det,
		})
		if err != nil {
			t.Fatal(err)
		}
		return sim.Run().AcceptedTraffic
	}
	adaptive, deterministic := run(false), run(true)
	if deterministic > adaptive*1.05 {
		t.Fatalf("deterministic routing (%v) beat adaptive (%v) — suspicious", deterministic, adaptive)
	}
	if deterministic <= 0 {
		t.Fatal("deterministic routing delivered nothing")
	}
}

func TestFindSaturation(t *testing.T) {
	r := newRig(t, 12, 4, 3, 1, true)
	cfg := Config{WarmupCycles: 300, MeasureCycles: 1500, Seed: 37}
	rate, m, err := FindSaturation(nil, r.net, r.rt, r.pattern, cfg, 0.8, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if rate <= 0 || rate >= 0.8 {
		t.Fatalf("saturation rate %v out of expected interior range", rate)
	}
	if m.Saturated() {
		t.Fatal("returned metrics are from a saturated run")
	}
	// Just above the bracketing rate the network must saturate.
	c := cfg
	c.InjectionRate = rate + 0.1
	sim, err := New(r.net, r.rt, r.pattern, c)
	if err != nil {
		t.Fatal(err)
	}
	if above := sim.Run(); !above.Saturated() {
		t.Fatalf("rate %v above the bracket did not saturate", c.InjectionRate)
	}
}

func TestFindSaturationNeverSaturates(t *testing.T) {
	// With a tiny probe range the network never saturates: the max rate is
	// returned as-is.
	r := newRig(t, 12, 4, 3, 1, false)
	cfg := Config{WarmupCycles: 200, MeasureCycles: 800, Seed: 39}
	rate, m, err := FindSaturation(nil, r.net, r.rt, r.pattern, cfg, 0.02, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if rate != 0.02 || m.Saturated() {
		t.Fatalf("rate %v saturated=%v, want 0.02/false", rate, m.Saturated())
	}
}

func TestFindSaturationAlwaysSaturated(t *testing.T) {
	// A tolerance as wide as the probe range skips the bisection loop, so
	// the single (saturating) probe at maxRate leaves no non-saturated
	// point: the old code returned (0, Metrics{}, nil), silently handing
	// the caller a zero-value measurement. Now the last saturated probe's
	// metrics come back with a sentinel error.
	r := newRig(t, 12, 4, 3, 1, true)
	cfg := Config{WarmupCycles: 300, MeasureCycles: 1500, Seed: 37}
	rate, m, err := FindSaturation(nil, r.net, r.rt, r.pattern, cfg, 0.9, 0.85)
	if !errors.Is(err, ErrAlwaysSaturated) {
		t.Fatalf("err = %v, want ErrAlwaysSaturated", err)
	}
	if rate != 0 {
		t.Fatalf("rate = %v, want 0", rate)
	}
	if !m.Saturated() {
		t.Fatal("returned metrics must be the saturated probe's, not a zero value")
	}
	if m.OfferedTraffic == 0 || m.GeneratedMessages == 0 {
		t.Fatalf("metrics look zero-valued: %+v", m)
	}
}

func TestFindSaturationValidation(t *testing.T) {
	r := newRig(t, 8, 4, 1, 1, false)
	if _, _, err := FindSaturation(nil, r.net, r.rt, r.pattern, Config{MeasureCycles: 100}, 0, 0.1); err == nil {
		t.Fatal("zero maxRate accepted")
	}
	if _, _, err := FindSaturation(nil, r.net, r.rt, r.pattern, Config{MeasureCycles: 100}, 1.5, 0.1); err == nil {
		t.Fatal("maxRate above 1 accepted")
	}
}

func TestBimodalMessageSizes(t *testing.T) {
	r := newRig(t, 12, 4, 3, 1, true)
	// 90% short 4-flit control messages, 10% long 64-flit data messages.
	sim, err := New(r.net, r.rt, r.pattern, Config{
		InjectionRate: 0.15, MessageFlits: 4,
		BimodalFlits: 64, BimodalFraction: 0.1,
		WarmupCycles: 500, MeasureCycles: 5000, Seed: 29,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := sim.Run()
	if m.DeliveredMessages == 0 {
		t.Fatal("nothing delivered under bimodal sizes")
	}
	// Offered flit traffic still tracks the injection rate (scaled by the
	// mean message size): 0.15 × 4 hosts/switch = 0.6 flits/switch/cycle.
	want := 0.15 * 4
	if m.OfferedTraffic < want*0.8 || m.OfferedTraffic > want*1.2 {
		t.Fatalf("offered %.4f, want ≈ %.4f (size mix must not change flit load)", m.OfferedTraffic, want)
	}
	// Long messages make p99 latency far exceed p50.
	if m.LatencyP99 < m.LatencyP50*2 {
		t.Fatalf("p99 %.1f vs p50 %.1f: bimodal mix should widen the distribution",
			m.LatencyP99, m.LatencyP50)
	}
}

func TestBimodalValidation(t *testing.T) {
	r := newRig(t, 8, 4, 1, 1, false)
	bad := []Config{
		{BimodalFlits: -1},
		{BimodalFraction: -0.1},
		{BimodalFraction: 1.5},
		{BimodalFraction: 0.5}, // fraction without size
	}
	for i, cfg := range bad {
		if _, err := New(r.net, r.rt, r.pattern, cfg); err == nil {
			t.Errorf("case %d accepted: %+v", i, cfg)
		}
	}
}

func TestBimodalDrains(t *testing.T) {
	r := newRig(t, 8, 4, 2, 1, true)
	cfg := Config{
		InjectionRate: 0.2, MessageFlits: 4,
		BimodalFlits: 32, BimodalFraction: 0.2,
		WarmupCycles: 0, MeasureCycles: 1500, Seed: 31,
	}
	sim, err := New(r.net, r.rt, r.pattern, cfg.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	sim.measuring = true
	for c := 0; c < 1500; c++ {
		sim.step()
	}
	sim.cfg.InjectionRate = 0
	for c := 0; c < 60000; c++ {
		sim.step()
	}
	if got := sim.inflight(); got != 0 {
		t.Fatalf("%d flits stuck after drain with mixed sizes", got)
	}
}

func TestParallelSweepMatchesSequential(t *testing.T) {
	// Sweep runs points concurrently; the result must equal a hand-rolled
	// sequential execution with the same per-point seeds.
	r := newRig(t, 12, 4, 6, 2, true)
	cfg := Config{WarmupCycles: 200, MeasureCycles: 1500, Seed: 23}
	rates := LinearRates(5, 0.4)
	par, err := Sweep(nil, r.net, r.rt, r.pattern, cfg, rates)
	if err != nil {
		t.Fatal(err)
	}
	for i, rate := range rates {
		c := cfg
		c.InjectionRate = rate
		c.Seed = cfg.Seed*1000003 + int64(i)
		sim, err := New(r.net, r.rt, r.pattern, c)
		if err != nil {
			t.Fatal(err)
		}
		seq := sim.Run()
		got := par[i].Metrics
		if got.AcceptedTraffic != seq.AcceptedTraffic || got.AvgLatency != seq.AvgLatency ||
			got.GeneratedMessages != seq.GeneratedMessages {
			t.Fatalf("point %d: parallel %s != sequential %s", i, got.String(), seq.String())
		}
	}
}

func TestDeterministicRoutingDrains(t *testing.T) {
	// Deterministic up*/down* is also deadlock-free; a drain must empty
	// the network.
	r := newRig(t, 12, 4, 5, 2, true)
	cfg := Config{InjectionRate: 0.3, WarmupCycles: 0, MeasureCycles: 1500, Seed: 17,
		DeterministicRouting: true}
	sim, err := New(r.net, r.rt, r.pattern, cfg.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	sim.measuring = true
	for c := 0; c < 1500; c++ {
		sim.step()
	}
	sim.cfg.InjectionRate = 0
	for c := 0; c < 60000; c++ {
		sim.step()
	}
	if got := sim.inflight(); got != 0 {
		t.Fatalf("%d flits stuck after drain under deterministic routing", got)
	}
}

func TestCutThroughSwitching(t *testing.T) {
	r := newRig(t, 12, 4, 3, 1, true)
	// Cut-through needs buffers that hold a whole message.
	cfg := Config{
		InjectionRate: 0.2, MessageFlits: 8, BufferFlits: 8,
		CutThrough: true, WarmupCycles: 500, MeasureCycles: 3000, Seed: 41,
	}
	sim, err := New(r.net, r.rt, r.pattern, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := sim.Run()
	if m.DeliveredMessages == 0 {
		t.Fatal("cut-through delivered nothing")
	}
	// Undersized buffers must be rejected.
	bad := cfg
	bad.BufferFlits = 4
	if _, err := New(r.net, r.rt, r.pattern, bad); err == nil {
		t.Fatal("cut-through with undersized buffers accepted")
	}
	// Bimodal: the larger size bounds the requirement.
	bad2 := cfg
	bad2.BimodalFlits, bad2.BimodalFraction = 32, 0.1
	if _, err := New(r.net, r.rt, r.pattern, bad2); err == nil {
		t.Fatal("cut-through with undersized buffers for bimodal accepted")
	}
}

func TestCutThroughDrains(t *testing.T) {
	r := newRig(t, 12, 4, 5, 2, true)
	cfg := Config{
		InjectionRate: 0.3, MessageFlits: 8, BufferFlits: 8,
		CutThrough: true, WarmupCycles: 0, MeasureCycles: 1500, Seed: 43,
	}
	sim, err := New(r.net, r.rt, r.pattern, cfg.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	sim.measuring = true
	for c := 0; c < 1500; c++ {
		sim.step()
	}
	if !sim.Drain(60000) {
		t.Fatalf("%d flits stuck after cut-through drain", sim.inflight())
	}
	if sim.metrics.deliveredFlits != sim.metrics.offeredFlits {
		t.Fatal("flits lost under cut-through")
	}
}
