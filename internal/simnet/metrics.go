package simnet

import (
	"fmt"
	"sort"

	"commsched/internal/topology"
)

// Metrics aggregates one simulation run's measurement window.
type Metrics struct {
	measureStart      int64
	generatedMessages int64
	deliveredMessages int64
	offeredFlits      int64
	deliveredFlits    int64
	lostMessages      int64
	lostFlits         int64
	totalLatency      int64 // network latency (header injection → tail delivery)
	totalQueueLatency int64 // total latency (generation → tail delivery)

	// Derived (filled by finalize).

	// MeasuredCycles is the measurement window length.
	MeasuredCycles int
	// Switches is the network size used for traffic normalization.
	Switches int
	// GeneratedMessages counts messages created in the window.
	GeneratedMessages int64
	// DeliveredMessages counts messages created in the window and fully
	// delivered before its end (the latency sample set).
	DeliveredMessages int64
	// DeliveredFlits counts every flit consumed at a destination during
	// the window (including flits of messages generated before it).
	DeliveredFlits int64
	// OfferedTraffic is the generated load in flits/switch/cycle.
	OfferedTraffic float64
	// AcceptedTraffic is the delivered load in flits/switch/cycle — the
	// paper's "traffic" axis, and its "throughput" when maximal.
	AcceptedTraffic float64
	// LostMessages counts messages dropped by link failures during the
	// window (the worm held a channel of a dying link, or every
	// admissible hop was dead).
	LostMessages int64
	// LostFlits counts the not-yet-delivered flits of those messages.
	LostFlits int64
	// DeliveredFraction is delivered/(delivered+lost) messages — 1.0 on a
	// healthy run, below 1.0 when link failures destroyed traffic.
	DeliveredFraction float64
	// AvgLatency is the mean network latency in cycles (header injection
	// to tail delivery), the paper's latency measure.
	AvgLatency float64
	// AvgTotalLatency additionally includes source queueing (generation to
	// tail delivery).
	AvgTotalLatency float64
	// LinkLoads reports per-directed-link traffic, sorted by descending
	// utilization. It exposes the routing-induced load imbalance (e.g.
	// up*/down* concentrating traffic near the root).
	LinkLoads []LinkLoad
	// LatencyP50, LatencyP95 and LatencyP99 are network-latency
	// percentiles over the delivered-message sample set (0 when no
	// messages were delivered).
	LatencyP50, LatencyP95, LatencyP99 float64

	// AvgSourceQueueFlits is the mean number of flits waiting in the
	// source queues, per host, over the measurement window — an early
	// saturation indicator (it diverges past the saturation throughput).
	AvgSourceQueueFlits float64

	// PerCluster breaks delivery down by the sending application when
	// Config.HostCluster was provided, ordered by cluster index.
	PerCluster []ClusterMetrics

	// latencySamples collects per-message network latencies during the
	// window (cleared after finalize computes the percentiles).
	latencySamples []int64
	queueSamples   int64
	queueFlitsSum  int64
	clusterAcc     map[int]*clusterAccum
}

// ClusterMetrics is one application's share of the measurement window.
type ClusterMetrics struct {
	// Cluster is the application index (Config.HostCluster value).
	Cluster int
	// DeliveredMessages counts complete deliveries originated by the
	// cluster's hosts.
	DeliveredMessages int64
	// DeliveredFlits counts the corresponding flits.
	DeliveredFlits int64
	// AvgLatency is the cluster's mean network latency in cycles.
	AvgLatency float64
}

type clusterAccum struct {
	messages, flits, latency int64
}

// addClusterSample records one delivered message for a cluster.
func (m *Metrics) addClusterSample(cluster int, flits, latency int64) {
	if m.clusterAcc == nil {
		m.clusterAcc = make(map[int]*clusterAccum)
	}
	acc := m.clusterAcc[cluster]
	if acc == nil {
		acc = &clusterAccum{}
		m.clusterAcc[cluster] = acc
	}
	acc.messages++
	acc.flits += flits
	acc.latency += latency
}

// LinkLoad is the measured traffic of one directed inter-switch link.
type LinkLoad struct {
	// From and To identify the directed link.
	From, To int
	// Flits crossed the link during the measurement window.
	Flits int64
	// Utilization is Flits divided by the window length, in [0,1].
	Utilization float64
}

// finalizeLinks derives the sorted per-link load report. flits is indexed
// by dense directed-link ID, dirs maps IDs back to endpoints; links no
// flit crossed are omitted from the report.
func (m *Metrics) finalizeLinks(flits []int64, dirs []directedLink, cfg Config) {
	if cfg.MeasureCycles <= 0 {
		return
	}
	cyc := float64(cfg.MeasureCycles)
	for id, n := range flits {
		if n == 0 {
			continue
		}
		dl := dirs[id]
		m.LinkLoads = append(m.LinkLoads, LinkLoad{
			From: dl.from, To: dl.to, Flits: n, Utilization: float64(n) / cyc,
		})
	}
	sort.Slice(m.LinkLoads, func(i, j int) bool {
		if m.LinkLoads[i].Utilization != m.LinkLoads[j].Utilization {
			return m.LinkLoads[i].Utilization > m.LinkLoads[j].Utilization
		}
		if m.LinkLoads[i].From != m.LinkLoads[j].From {
			return m.LinkLoads[i].From < m.LinkLoads[j].From
		}
		return m.LinkLoads[i].To < m.LinkLoads[j].To
	})
}

// finalize derives the public fields.
func (m *Metrics) finalize(cfg Config, net *topology.Network) {
	m.MeasuredCycles = cfg.MeasureCycles
	m.Switches = net.Switches()
	m.GeneratedMessages = m.generatedMessages
	m.DeliveredMessages = m.deliveredMessages
	m.DeliveredFlits = m.deliveredFlits
	m.LostMessages = m.lostMessages
	m.LostFlits = m.lostFlits
	if total := m.deliveredMessages + m.lostMessages; total > 0 {
		m.DeliveredFraction = float64(m.deliveredMessages) / float64(total)
	} else {
		m.DeliveredFraction = 1
	}
	cyc := float64(cfg.MeasureCycles)
	sw := float64(net.Switches())
	if cyc > 0 && sw > 0 {
		m.OfferedTraffic = float64(m.offeredFlits) / cyc / sw
		m.AcceptedTraffic = float64(m.deliveredFlits) / cyc / sw
	}
	if m.deliveredMessages > 0 {
		m.AvgLatency = float64(m.totalLatency) / float64(m.deliveredMessages)
		m.AvgTotalLatency = float64(m.totalQueueLatency) / float64(m.deliveredMessages)
	}
	if m.queueSamples > 0 && net.Hosts() > 0 {
		m.AvgSourceQueueFlits = float64(m.queueFlitsSum) / float64(m.queueSamples) / float64(net.Hosts())
	}
	if m.clusterAcc != nil {
		for c, acc := range m.clusterAcc {
			cm := ClusterMetrics{Cluster: c, DeliveredMessages: acc.messages, DeliveredFlits: acc.flits}
			if acc.messages > 0 {
				cm.AvgLatency = float64(acc.latency) / float64(acc.messages)
			}
			m.PerCluster = append(m.PerCluster, cm)
		}
		sort.Slice(m.PerCluster, func(i, j int) bool { return m.PerCluster[i].Cluster < m.PerCluster[j].Cluster })
		m.clusterAcc = nil
	}
	if len(m.latencySamples) > 0 {
		sort.Slice(m.latencySamples, func(i, j int) bool { return m.latencySamples[i] < m.latencySamples[j] })
		m.LatencyP50 = float64(percentile(m.latencySamples, 0.50))
		m.LatencyP95 = float64(percentile(m.latencySamples, 0.95))
		m.LatencyP99 = float64(percentile(m.latencySamples, 0.99))
		m.latencySamples = nil
	}
}

// percentile returns the nearest-rank percentile of a sorted sample.
func percentile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Saturated reports whether the run failed to deliver (within tolerance)
// the traffic that was offered — the operating point is beyond the
// network's saturation throughput.
func (m *Metrics) Saturated() bool {
	if m.OfferedTraffic == 0 {
		return false
	}
	return m.AcceptedTraffic < 0.95*m.OfferedTraffic
}

// String summarizes the run.
func (m *Metrics) String() string {
	return fmt.Sprintf("offered=%.4f accepted=%.4f flits/switch/cycle, latency=%.1f cycles (%.1f incl. queueing), delivered=%d msgs",
		m.OfferedTraffic, m.AcceptedTraffic, m.AvgLatency, m.AvgTotalLatency, m.DeliveredMessages)
}
