package simnet

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// failureConfig is a moderate, non-saturating load: messages are in
// flight when links die, yet the network has spare capacity, so every
// lost worm is a delivery that would otherwise have completed.
func failureConfig() Config {
	return Config{
		InjectionRate: 0.06,
		WarmupCycles:  500,
		MeasureCycles: 3000,
		Seed:          7,
	}
}

func TestLinkEventValidation(t *testing.T) {
	r := newRig(t, 8, 4, 1, 1, false)
	cases := []struct {
		name string
		ev   LinkEvent
		want string
	}{
		{"missing link", LinkEvent{A: 0, B: 7, At: 10}, "does not exist"},
		{"negative cycle", LinkEvent{A: r.net.Links()[0].A, B: r.net.Links()[0].B, At: -1}, "negative"},
		{"repair before failure", LinkEvent{A: r.net.Links()[0].A, B: r.net.Links()[0].B, At: 100, RepairAt: 50}, "repair"},
	}
	for _, tc := range cases {
		cfg := failureConfig()
		cfg.LinkEvents = []LinkEvent{tc.ev}
		if tc.name == "missing link" && r.net.HasLink(0, 7) {
			t.Skip("test topology happens to have link 0-7")
		}
		_, err := New(r.net, r.rt, r.pattern, cfg)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestMidRunLinkFailureLosesTraffic(t *testing.T) {
	r := newRig(t, 16, 4, 2000, 1, false)
	cfg := failureConfig()

	healthy, err := New(r.net, r.rt, r.pattern, cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := healthy.Run()
	if base.LostMessages != 0 || base.DeliveredFraction != 1 {
		t.Fatalf("healthy run lost traffic: %+v", base)
	}

	// Kill three links mid-measurement (static routing keeps using them).
	links := r.net.Links()
	cfg.LinkEvents = []LinkEvent{
		{A: links[0].A, B: links[0].B, At: 1000},
		{A: links[1].A, B: links[1].B, At: 1200},
		{A: links[2].A, B: links[2].B, At: 1400},
	}
	sim, err := New(r.net, r.rt, r.pattern, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := sim.Run()
	if m.LostMessages == 0 {
		t.Fatal("no messages lost despite three dead links under load")
	}
	if m.LostFlits < m.LostMessages {
		t.Fatalf("lost %d messages but only %d flits", m.LostMessages, m.LostFlits)
	}
	if m.DeliveredFraction >= 1 {
		t.Fatalf("DeliveredFraction = %v, want < 1", m.DeliveredFraction)
	}
	if m.DeliveredFraction <= 0 {
		t.Fatalf("DeliveredFraction = %v: nothing delivered at all", m.DeliveredFraction)
	}
	// Losses must be visible as a delivery gap, not just counters: fewer
	// messages complete than in the healthy run at identical offered load.
	if m.DeliveredMessages >= base.DeliveredMessages {
		t.Fatalf("deliveries did not degrade: %d >= %d", m.DeliveredMessages, base.DeliveredMessages)
	}
}

func TestTransientLinkFailureRepairs(t *testing.T) {
	r := newRig(t, 16, 4, 2000, 1, false)
	cfg := failureConfig()
	links := r.net.Links()
	// Fail early in the window, repair halfway: after repair the link
	// carries traffic again, so losses stay bounded and the simulator
	// keeps delivering.
	cfg.LinkEvents = []LinkEvent{
		{A: links[0].A, B: links[0].B, At: 800, RepairAt: 2000},
	}
	sim, err := New(r.net, r.rt, r.pattern, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := sim.Run()
	permCfg := failureConfig()
	permCfg.LinkEvents = []LinkEvent{{A: links[0].A, B: links[0].B, At: 800}}
	permSim, err := New(r.net, r.rt, r.pattern, permCfg)
	if err != nil {
		t.Fatal(err)
	}
	perm := permSim.Run()
	if m.DeliveredMessages == 0 {
		t.Fatal("repaired run delivered nothing")
	}
	if m.LostMessages > perm.LostMessages {
		t.Fatalf("repaired link lost more (%d) than permanent failure (%d)", m.LostMessages, perm.LostMessages)
	}
}

// TestFailureRunStillDrains checks liveness: after losses the network
// still empties (no stuck flits from half-purged worms).
func TestFailureRunStillDrains(t *testing.T) {
	r := newRig(t, 16, 4, 2000, 1, false)
	cfg := failureConfig()
	links := r.net.Links()
	cfg.LinkEvents = []LinkEvent{
		{A: links[0].A, B: links[0].B, At: 1000},
		{A: links[3].A, B: links[3].B, At: 1100},
	}
	sim, err := New(r.net, r.rt, r.pattern, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim.Run()
	if !sim.Drain(200000) {
		t.Fatal("network failed to drain after link failures")
	}
}

func TestRunContextCancellation(t *testing.T) {
	r := newRig(t, 16, 4, 2000, 1, false)
	cfg := failureConfig()
	cfg.MeasureCycles = 1000000 // far longer than the cancelled run allows
	sim, err := New(r.net, r.rt, r.pattern, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sim.RunContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestSweepCancellation(t *testing.T) {
	r := newRig(t, 16, 4, 2000, 1, false)
	cfg := failureConfig()
	cfg.MeasureCycles = 1000000
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Sweep(ctx, r.net, r.rt, r.pattern, cfg, []float64{0.1, 0.2, 0.3})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	_, _, err = FindSaturation(ctx, r.net, r.rt, r.pattern, failureConfig(), 0.5, 0.1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("FindSaturation err = %v, want context.Canceled", err)
	}
}

func TestLoseMessageMultiBufferWorm(t *testing.T) {
	// Drop a worm whose flits span several buffers mid-flight and verify
	// the purge is complete: every flit gone, every virtual-channel
	// ownership and route released, the arena slot recycled, and the
	// network still able to drain. The global scan below double-checks
	// that the per-message residency trail really covers every buffer the
	// worm touched.
	r := newRig(t, 12, 4, 3, 1, true)
	sim, err := New(r.net, r.rt, r.pattern, Config{
		InjectionRate: 0.4, MessageFlits: 16, BufferFlits: 4,
		WarmupCycles: 1, MeasureCycles: 1, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Step until some message's flits occupy >= 3 distinct buffers.
	victim := none
	for c := 0; c < 2000 && victim == none; c++ {
		sim.step()
		span := make(map[int32]map[int32]bool)
		for bid := range sim.bufs {
			b := &sim.bufs[bid]
			for i := b.head; i < len(b.q); i++ {
				mi := b.q[i].msg
				if span[mi] == nil {
					span[mi] = make(map[int32]bool)
				}
				span[mi][int32(bid)] = true
			}
		}
		for mi, bs := range span {
			if len(bs) >= 3 {
				victim = mi
				break
			}
		}
	}
	if victim == none {
		t.Fatal("no worm spanning 3+ buffers appeared within 2000 cycles")
	}
	owned, routed, victimFlits := 0, 0, 0
	for bid := range sim.bufs {
		b := &sim.bufs[bid]
		if b.owner == victim {
			owned++
		}
		if b.routedMsg == victim {
			routed++
		}
		for i := b.head; i < len(b.q); i++ {
			if b.q[i].msg == victim {
				victimFlits++
			}
		}
	}
	if owned == 0 || routed == 0 {
		t.Fatalf("victim holds %d VCs and %d routes; want both > 0 mid-flight", owned, routed)
	}
	pre := sim.inflight()

	sim.loseMessage(victim)

	for bid := range sim.bufs {
		b := &sim.bufs[bid]
		if b.owner == victim {
			t.Fatalf("buffer %d still owned by the lost message", bid)
		}
		if b.routedMsg == victim {
			t.Fatalf("buffer %d still routed for the lost message", bid)
		}
		for i := b.head; i < len(b.q); i++ {
			if b.q[i].msg == victim {
				t.Fatalf("buffer %d still holds a flit of the lost message", bid)
			}
		}
	}
	if got := sim.inflight(); got != pre-victimFlits {
		t.Fatalf("inflight %d after purge, want %d - %d", got, pre, victimFlits)
	}
	recycled := false
	for _, mi := range sim.freeMsgs {
		if mi == victim {
			recycled = true
		}
	}
	if !recycled {
		t.Fatal("lost message's arena slot was not recycled")
	}
	if !sim.Drain(200000) {
		t.Fatal("network failed to drain after the purge")
	}
}
